type params = { seed : int; max_attempts : int }

let default_params = { seed = 7; max_attempts = 64 }

type result = {
  history : History.t;
  db_stats : Db.stats;
  attempts : int;
  committed : int;
  gave_up : int;
  ticks : int;
  elle : Elle_log.t option;
}

let abort_rate r =
  if r.attempts = 0 then 0.0
  else float_of_int (r.attempts - r.committed) /. float_of_int r.attempts

type attempt = {
  handle : Db.handle;
  program : Spec.prog_txn;
  mutable remaining : Spec.prog_op list;
  mutable number : int;  (** attempt number for this transaction *)
  mutable elle_ops : Elle_log.aop list;  (** reversed *)
}

type phase = Idle | Running of attempt

type session_state = {
  id : int;  (** 1-based session id *)
  mutable todo : Spec.prog_txn list;
  mutable phase : phase;
}

let has_appends (spec : Spec.t) =
  Array.exists
    (List.exists (List.exists (function Spec.Pappend _ -> true | _ -> false)))
    spec.sessions

let run ?(params = default_params) ~(db : Db.config) ~(spec : Spec.t) () =
  let append_mode = has_appends spec in
  if append_mode && db.Db.level = Isolation.Strict_serializable then
    invalid_arg "Scheduler.run: append workloads unsupported under 2PL";
  let engine = Db.create db in
  let rng = Rng.create params.seed in
  let intern = Intern.create () in
  let value_counter = Array.make (Spec.num_sessions spec + 1) 0 in
  let fresh_value s =
    value_counter.(s) <- value_counter.(s) + 1;
    (s * 10_000_000) + value_counter.(s)
  in
  let recorded : Txn.t list ref = ref [] in
  let elle_txns : Elle_log.txn list ref = ref [] in
  let attempts = ref 0 in
  let committed = ref 0 in
  let gave_up = ref 0 in
  let record (a : attempt) (status : Txn.status) ~commit_ts =
    let h = a.handle in
    recorded :=
      Txn.make ~id:(Db.handle_id h) ~session:(Db.handle_session h) ~status
        ~start_ts:(Db.handle_start h) ~commit_ts (Db.handle_ops h)
      :: !recorded;
    if append_mode then
      elle_txns :=
        {
          Elle_log.id = Db.handle_id h;
          session = Db.handle_session h;
          ops = List.rev a.elle_ops;
          status =
            (match status with
            | Txn.Committed -> Elle_log.Committed
            | Txn.Aborted -> Elle_log.Aborted);
        }
        :: !elle_txns
  in
  let sessions =
    Array.mapi
      (fun i todo -> { id = i + 1; todo; phase = Idle })
      spec.Spec.sessions
  in
  let begin_attempt s program number =
    incr attempts;
    let handle = Db.begin_txn engine ~session:s.id in
    s.phase <-
      Running { handle; program; remaining = program; number; elle_ops = [] }
  in
  (* The session aborted (doomed or commit-rejected): record the attempt
     and either retry the same program or give up. *)
  let handle_abort s (a : attempt) ~already_finished =
    if not already_finished then Db.abort engine a.handle;
    record a Txn.Aborted ~commit_ts:(Db.now engine);
    if a.number >= params.max_attempts then begin
      incr gave_up;
      s.phase <- Idle
    end
    else begin_attempt s a.program (a.number + 1)
  in
  let step s =
    match s.phase with
    | Idle -> (
        match s.todo with
        | [] -> ()
        | program :: rest ->
            s.todo <- rest;
            begin_attempt s program 1)
    | Running a -> (
        match a.remaining with
        | [] -> (
            match Db.commit engine a.handle with
            | Db.Committed ts ->
                incr committed;
                record a Txn.Committed ~commit_ts:ts;
                s.phase <- Idle
            | Db.Rejected _ -> handle_abort s a ~already_finished:true)
        | op :: rest -> (
            match op with
            | Spec.Pread k -> (
                match Db.read engine a.handle k with
                | Db.Rvalue v ->
                    if append_mode then
                      a.elle_ops <-
                        Elle_log.Read_list (k, Intern.get intern v)
                        :: a.elle_ops;
                    a.remaining <- rest
                | Db.Rblocked -> ()
                | Db.Rdoomed -> handle_abort s a ~already_finished:false)
            | Spec.Pwrite k -> (
                let v = fresh_value s.id in
                match Db.write engine a.handle k v with
                | Db.Wok -> a.remaining <- rest
                | Db.Wblocked -> ()
                | Db.Wdoomed -> handle_abort s a ~already_finished:false)
            | Spec.Pappend k -> (
                (* Executed as a read-modify-write over interned lists. *)
                match Db.read engine a.handle k with
                | Db.Rblocked -> ()
                | Db.Rdoomed -> handle_abort s a ~already_finished:false
                | Db.Rvalue list_id -> (
                    let element = fresh_value s.id in
                    let new_id =
                      Intern.put intern (Intern.get intern list_id @ [ element ])
                    in
                    match Db.write engine a.handle k new_id with
                    | Db.Wok ->
                        a.elle_ops <-
                          Elle_log.Append (k, element) :: a.elle_ops;
                        a.remaining <- rest
                    | Db.Wblocked | Db.Wdoomed ->
                        handle_abort s a ~already_finished:false))))
  in
  let unfinished () =
    Array.exists
      (fun s -> s.phase <> Idle || s.todo <> [])
      sessions
  in
  let live = Array.to_list sessions in
  let safety = ref (Spec.num_ops spec * params.max_attempts * 20 + 100_000) in
  while unfinished () do
    decr safety;
    if !safety <= 0 then failwith "Scheduler.run: no progress (livelock?)";
    let candidates =
      List.filter (fun s -> s.phase <> Idle || s.todo <> []) live
    in
    step (Rng.pick rng (Array.of_list candidates))
  done;
  let txns =
    List.sort (fun (a : Txn.t) b -> compare a.id b.id) !recorded
  in
  let history =
    History.make ~num_keys:spec.Spec.num_keys
      ~num_sessions:(Spec.num_sessions spec) txns
  in
  {
    history;
    db_stats = Db.stats engine;
    attempts = !attempts;
    committed = !committed;
    gave_up = !gave_up;
    ticks = Db.now engine;
    elle =
      (if append_mode then
         Some
           {
             Elle_log.txns = List.rev !elle_txns;
             num_keys = spec.Spec.num_keys;
             num_sessions = Spec.num_sessions spec;
           }
       else None);
  }
