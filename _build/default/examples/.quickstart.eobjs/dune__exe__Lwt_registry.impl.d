examples/lwt_registry.ml: Array Format Lwt Lwt_checker Lwt_gen Porcupine
