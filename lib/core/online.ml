(* Growable Pearce–Kelly graph with labelled edges: the PK structure has a
   fixed capacity, so on overflow the (acyclic) edges are replayed into a
   doubled instance. *)
module Grow = struct
  type t = {
    mutable pk : Pearce_kelly.t;
    mutable capacity : int;
    mutable edges : (int * int) list;  (** for rebuilds *)
    mutable edge_count : int;
    labels : (int * int, Deps.dep) Hashtbl.t;
  }

  let create () =
    {
      pk = Pearce_kelly.create 64;
      capacity = 64;
      edges = [];
      edge_count = 0;
      labels = Hashtbl.create 256;
    }

  let ensure t needed =
    if needed > t.capacity then begin
      let capacity = ref t.capacity in
      while needed > !capacity do
        capacity := 2 * !capacity
      done;
      let pk = Pearce_kelly.create !capacity in
      List.iter
        (fun (u, v) ->
          match Pearce_kelly.add_edge pk u v with
          | Ok () -> ()
          | Error _ -> assert false (* was acyclic before the grow *))
        t.edges;
      t.pk <- pk;
      t.capacity <- !capacity
    end

  (* [Error path]: vertex path [v; ...; u] for the rejected edge u -> v. *)
  let add_edge t u v lab =
    ensure t (1 + Stdlib.max u v);
    if not (Hashtbl.mem t.labels (u, v)) then Hashtbl.replace t.labels (u, v) lab;
    match Pearce_kelly.add_edge t.pk u v with
    | Ok () ->
        t.edges <- (u, v) :: t.edges;
        t.edge_count <- t.edge_count + 1;
        Ok ()
    | Error path -> Error path

  let label t u v =
    match Hashtbl.find_opt t.labels (u, v) with
    | Some l -> l
    | None -> Deps.Rt_chain
end

type t = {
  level : Checker.level;
  skew : int;
  graph : Grow.t;
  mutable next_vertex : int;
  vertex_txn : (int, Txn.id) Hashtbl.t;  (** helpers absent *)
  txn_vertex : (Txn.id, int) Hashtbl.t;  (** base vertex (SI: the d-vertex) *)
  writers : Flat_index.Writers.t;
      (** final / intermediate / aborted writer resolution, int-packed *)
  readers : (Op.key * Op.value, Txn.id list ref) Hashtbl.t;
  overwriters : (Op.key * Op.value, Txn.id list ref) Hashtbl.t;
  extender : (Op.key * Op.value, Txn.id * Op.value) Hashtbl.t;
  session_last : (int, Txn.id) Hashtbl.t;
  seen_ids : (Txn.id, unit) Hashtbl.t;
  (* SSER stream state *)
  mutable commits : (int * int) list;  (** (commit_ts, helper vertex), newest first *)
  mutable commits_arr : (int * int) array;  (** oldest first, rebuilt lazily *)
  mutable commits_dirty : bool;
  mutable last_commit : int;
  mutable count : int;
  mutable poisoned : Checker.violation option;
}

type step = Ok_so_far | Violation of Checker.violation

type stats = {
  s_txns_seen : int;
  s_vertices : int;
  s_edges : int;
  s_poisoned : bool;
}

let txns_seen t = t.count
let level t = t.level
let poisoned t = t.poisoned

let stats t =
  {
    s_txns_seen = t.count;
    s_vertices = t.next_vertex;
    s_edges = t.graph.Grow.edge_count;
    s_poisoned = t.poisoned <> None;
  }

let vertices_per_txn level = match level with Checker.SI -> 2 | _ -> 1

let alloc_vertices t (txn : Txn.t) =
  let base = t.next_vertex in
  let n = vertices_per_txn t.level in
  t.next_vertex <- base + n;
  Hashtbl.replace t.txn_vertex txn.Txn.id base;
  Hashtbl.replace t.vertex_txn base txn.Txn.id;
  if n = 2 then Hashtbl.replace t.vertex_txn (base + 1) txn.Txn.id;
  base

let create ?(skew = 0) ~level ~num_keys () =
  let t =
    {
      level;
      skew;
      graph = Grow.create ();
      next_vertex = 0;
      vertex_txn = Hashtbl.create 256;
      txn_vertex = Hashtbl.create 256;
      writers = Flat_index.Writers.create ~num_keys ~expected:1024;
      readers = Hashtbl.create 1024;
      overwriters = Hashtbl.create 256;
      extender = Hashtbl.create 256;
      session_last = Hashtbl.create 16;
      seen_ids = Hashtbl.create 1024;
      commits = [];
      commits_arr = [||];
      commits_dirty = false;
      last_commit = min_int;
      count = 0;
      poisoned = None;
    }
  in
  let init = History.init_txn ~num_keys in
  Hashtbl.replace t.seen_ids init.Txn.id ();
  List.iter
    (fun (k, v) -> Flat_index.Writers.set_final t.writers k v init.Txn.id)
    (Txn.final_writes init);
  ignore (alloc_vertices t init);
  t

let resolve t k v = Flat_index.Writers.resolve t.writers k v

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.replace tbl key (ref [ v ])

let list_of tbl key =
  match Hashtbl.find_opt tbl key with Some r -> !r | None -> []

(* Product encoding for SI over base vertices: dep edges fan out of both
   the d- and r-vertex into the target's d-vertex; anti edges go
   d-to-r (see Polysi for the correctness argument). *)
let encoded_edges level (u, v, lab) =
  match (level, lab) with
  | Checker.SI, (Deps.SO | Deps.WR _ | Deps.WW _) ->
      [ (u, v, lab); (u + 1, v, lab) ]
  | Checker.SI, Deps.RW _ -> [ (u, v + 1, lab) ]
  | Checker.SI, (Deps.RT | Deps.Rt_chain) -> []
  | _, lab -> [ (u, v, lab) ]

(* Map a rejected edge u -> v with PK path [v; ...; u] back to a
   transaction-level cycle.  Helper vertices and intra-product steps are
   dropped; the edge labels come from the label table. *)
let cycle_of_path t u path =
  let full = u :: path in
  let txn_of vtx = Hashtbl.find_opt t.vertex_txn vtx in
  let rec build acc = function
    | a :: (b :: _ as rest) ->
        let edge =
          match (txn_of a, txn_of b) with
          | Some ta, Some tb when ta <> tb ->
              Some (ta, Grow.label t.graph a b, tb)
          | _ -> None
        in
        build (match edge with Some e -> e :: acc | None -> acc) rest
    | [ last ] ->
        (* close the cycle back to u *)
        let edge =
          match (txn_of last, txn_of u) with
          | Some ta, Some tb when ta <> tb ->
              Some (ta, Grow.label t.graph last u, tb)
          | _ -> None
        in
        List.rev (match edge with Some e -> e :: acc | None -> acc)
    | [] -> List.rev acc
  in
  (* Runs through helpers collapse; label gaps as RT when endpoints
     differ but no direct label exists — Grow.label falls back to
     Rt_chain, rendered as RT for reporting. *)
  List.map
    (fun (a, lab, b) ->
      ((a, (match lab with Deps.Rt_chain -> Deps.RT | l -> l), b)))
    (build [] full)

let poison t v =
  t.poisoned <- Some v;
  Violation v

exception Cycle_found of Checker.violation

let add_all_edges t base_u base_v lab =
  List.iter
    (fun (u, v, l) ->
      match Grow.add_edge t.graph u v l with
      | Ok () -> ()
      | Error path ->
          raise (Cycle_found (Checker.Cyclic (cycle_of_path t u path))))
    (encoded_edges t.level (base_u, base_v, lab))

let add_raw_edge t u v lab =
  match Grow.add_edge t.graph u v lab with
  | Ok () -> ()
  | Error path ->
      raise (Cycle_found (Checker.Cyclic (cycle_of_path t u path)))

let divergence_screen t (txn : Txn.t) =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Some _ -> acc
      | None ->
          if Txn.writes_key txn k then (
            match Hashtbl.find_opt t.extender (k, v) with
            | Some (other, other_value) ->
                Some
                  (Checker.Diverged
                     {
                       Divergence.key = k;
                       writer =
                         (match resolve t k v with
                         | Index.Final w -> w
                         | Index.Intermediate w | Index.Aborted w -> w
                         | Index.Nobody -> -1);
                       reader1 = (other, other_value);
                       reader2 =
                         ( txn.Txn.id,
                           Option.value (Txn.write_of txn k) ~default:0 );
                     })
            | None ->
                Hashtbl.replace t.extender (k, v)
                  (txn.Txn.id, Option.value (Txn.write_of txn k) ~default:0);
                None)
          else None)
    None (Txn.external_reads txn)

let feed_committed t (txn : Txn.t) =
  let vtx = alloc_vertices t txn in
  (* Session order. *)
  let prev =
    match Hashtbl.find_opt t.session_last txn.Txn.session with
    | Some p -> p
    | None -> History.init_id
  in
  add_all_edges t (Hashtbl.find t.txn_vertex prev) vtx Deps.SO;
  Hashtbl.replace t.session_last txn.Txn.session txn.Txn.id;
  (* WR / WW / RW. *)
  List.iter
    (fun (k, v) ->
      match resolve t k v with
      | Index.Final w when w <> txn.Txn.id ->
          let wv = Hashtbl.find t.txn_vertex w in
          add_all_edges t wv vtx (Deps.WR k);
          List.iter
            (fun o ->
              if o <> txn.Txn.id then
                add_all_edges t vtx (Hashtbl.find t.txn_vertex o) (Deps.RW k))
            (list_of t.overwriters (k, v));
          if Txn.writes_key txn k then begin
            add_all_edges t wv vtx (Deps.WW k);
            List.iter
              (fun r ->
                if r <> txn.Txn.id then
                  add_all_edges t (Hashtbl.find t.txn_vertex r) vtx (Deps.RW k))
              (list_of t.readers (k, v));
            push t.overwriters (k, v) txn.Txn.id
          end;
          push t.readers (k, v) txn.Txn.id
      | _ -> () (* excluded by the screen *))
    (Txn.external_reads txn);
  (* Record writes for future resolution. *)
  List.iter
    (fun (k, v) -> Flat_index.Writers.set_final t.writers k v txn.Txn.id)
    (Txn.final_writes txn);
  List.iter
    (fun (k, v) -> Flat_index.Writers.set_intermediate t.writers k v txn.Txn.id)
    (Txn.intermediate_writes txn);
  (* SSER: real-time edges through the helper chain. *)
  if t.level = Checker.SSER then begin
    if t.commits_dirty then begin
      t.commits_arr <- Array.of_list (List.rev t.commits);
      t.commits_dirty <- false
    end;
    let arr = t.commits_arr in
    let lo = ref 0 and hi = ref (Array.length arr - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if fst arr.(mid) + t.skew < txn.Txn.start_ts then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best >= 0 then add_raw_edge t (snd arr.(!best)) vtx Deps.Rt_chain;
    let h = t.next_vertex in
    t.next_vertex <- h + 1;
    add_raw_edge t vtx h Deps.Rt_chain;
    (match t.commits with
    | (_, prev_h) :: _ -> add_raw_edge t prev_h h Deps.Rt_chain
    | [] -> ());
    t.commits <- (txn.Txn.commit_ts, h) :: t.commits;
    t.commits_dirty <- true;
    t.last_commit <- txn.Txn.commit_ts
  end

let add_txn t (txn : Txn.t) =
  match t.poisoned with
  | Some v -> Violation v
  | None -> (
      if Hashtbl.mem t.seen_ids txn.Txn.id || txn.Txn.id <= 0 then
        invalid_arg
          (Printf.sprintf "Online.add_txn: transaction id %d invalid or reused"
             txn.Txn.id);
      if
        t.level = Checker.SSER
        && txn.Txn.status = Txn.Committed
        && txn.Txn.commit_ts < t.last_commit
      then
        invalid_arg "Online.add_txn: SSER streams must arrive in commit order";
      Hashtbl.replace t.seen_ids txn.Txn.id ();
      t.count <- t.count + 1;
      match txn.Txn.status with
      | Txn.Aborted ->
          Array.iter
            (fun op ->
              match op with
              | Op.Write (k, v) ->
                  Flat_index.Writers.set_aborted t.writers k v txn.Txn.id
              | Op.Read _ -> ())
            txn.Txn.ops;
          Ok_so_far
      | Txn.Committed -> (
          let dup =
            List.find_opt
              (fun (k, v) -> resolve t k v <> Index.Nobody)
              (Txn.final_writes txn @ Txn.intermediate_writes txn)
          in
          match dup with
          | Some (k, v) ->
              poison t
                (Checker.Malformed
                   (Printf.sprintf "duplicate write of %d to x%d by T%d" v k
                      txn.Txn.id))
          | None -> (
              match Int_check.check_txn_with ~resolve:(resolve t) txn with
              | viol :: _ -> poison t (Checker.Intra viol)
              | [] -> (
                  match
                    if t.level = Checker.SI then divergence_screen t txn
                    else None
                  with
                  | Some v -> poison t v
                  | None -> (
                      try
                        feed_committed t txn;
                        Ok_so_far
                      with Cycle_found v -> poison t v)))))

let check_stream ?skew ~level ~num_keys txns =
  let t = create ?skew ~level ~num_keys () in
  let rec go n = function
    | [] -> Ok n
    | txn :: rest -> (
        match add_txn t txn with
        | Ok_so_far -> go (n + 1) rest
        | Violation v -> Error v)
  in
  go 0 txns
