lib/baselines/polygraph.ml: Array Hashtbl History Index Int_check List Op Printf Txn Unix
