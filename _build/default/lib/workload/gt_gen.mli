(** The general-transaction (GT) workload generator, following Cobra's
    (paper Section V-A1): configurable #objects, #txns and #ops/txn; each
    workload is 20% read-only, 40% write-only (blind writes) and 40%
    read-modify-write transactions, uniformly distributed across
    sessions. *)

type params = {
  num_sessions : int;
  num_txns : int;
  num_keys : int;
  ops_per_txn : int;
  dist : Distribution.kind;
  seed : int;
}

val default : params
(** 10 sessions × 1000 txns, 10 ops/txn, 100 keys, uniform. *)

val generate : params -> Spec.t
