lib/graph/cycle.mli: Digraph
