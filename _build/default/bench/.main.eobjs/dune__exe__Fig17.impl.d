bench/fig17.ml: Bench_util Checker Isolation List Polysi Printf Scheduler Stats
