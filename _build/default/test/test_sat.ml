(* Tests for mtc.sat: Lit, Solver (CDCL) and the acyclicity theory. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let pos v = Lit.make v true
let neg v = Lit.make v false

(* --- Lit --- *)

let test_lit_encoding () =
  checki "var" 3 (Lit.var (pos 3));
  checki "var of neg" 3 (Lit.var (neg 3));
  checkb "sign pos" true (Lit.sign (pos 3));
  checkb "sign neg" false (Lit.sign (neg 3));
  checkb "double negation" true (Lit.neg (Lit.neg (pos 5)) = pos 5)

(* --- plain SAT --- *)

let solve_clauses nvars clauses =
  let s = Solver.create ~nvars () in
  List.iter (Solver.add_clause s) clauses;
  Solver.solve s

let test_sat_trivial () =
  checkb "empty instance" true (solve_clauses 1 [] = Solver.Sat)

let test_sat_unit () =
  let s = Solver.create ~nvars:1 () in
  Solver.add_clause s [ pos 0 ];
  checkb "sat" true (Solver.solve s = Solver.Sat);
  checkb "model" true (Solver.value s 0)

let test_sat_contradiction () =
  checkb "x and not x" true
    (solve_clauses 1 [ [ pos 0 ]; [ neg 0 ] ] = Solver.Unsat)

let test_sat_empty_clause () =
  checkb "empty clause" true (solve_clauses 1 [ [] ] = Solver.Unsat)

let test_sat_implication_chain () =
  (* x0 ∧ (x0→x1) ∧ ... ∧ (x9→unsat) *)
  let n = 10 in
  let clauses =
    [ pos 0 ]
    :: List.init (n - 1) (fun i -> [ neg i; pos (i + 1) ])
    @ [ [ neg (n - 1) ] ]
  in
  checkb "chain unsat" true (solve_clauses n clauses = Solver.Unsat)

let test_sat_pigeonhole_3_2 () =
  (* 3 pigeons in 2 holes: classic small UNSAT needing real search. *)
  let v p h = (2 * p) + h in
  let clauses =
    (* each pigeon somewhere *)
    List.init 3 (fun p -> [ pos (v p 0); pos (v p 1) ])
    @ (* no two pigeons share a hole *)
    List.concat_map
      (fun h ->
        [ [ neg (v 0 h); neg (v 1 h) ];
          [ neg (v 0 h); neg (v 2 h) ];
          [ neg (v 1 h); neg (v 2 h) ] ])
      [ 0; 1 ]
  in
  checkb "php(3,2) unsat" true (solve_clauses 6 clauses = Solver.Unsat)

let test_sat_model_satisfies () =
  (* Random 3-SAT at low density must be SAT with a genuine model. *)
  let rng = Rng.create 2024 in
  for _ = 1 to 20 do
    let nvars = 20 in
    let clauses =
      List.init 40 (fun _ ->
          List.init 3 (fun _ -> Lit.make (Rng.int rng nvars) (Rng.bool rng)))
    in
    let s = Solver.create ~nvars () in
    List.iter (Solver.add_clause s) clauses;
    match Solver.solve s with
    | Solver.Sat ->
        List.iter
          (fun c ->
            checkb "clause satisfied" true
              (List.exists
                 (fun l -> Solver.value s (Lit.var l) = Lit.sign l)
                 c))
          clauses
    | Solver.Unsat -> ()  (* allowed, checked against brute force below *)
  done

let brute_force nvars clauses =
  let rec go assignment v =
    if v = nvars then
      List.for_all
        (List.exists (fun l ->
             if Lit.sign l then List.nth assignment (Lit.var l)
             else not (List.nth assignment (Lit.var l))))
        clauses
    else go (assignment @ [ true ]) (v + 1) || go (assignment @ [ false ]) (v + 1)
  in
  go [] 0

let test_sat_vs_brute_force () =
  let rng = Rng.create 555 in
  for _ = 1 to 60 do
    let nvars = 2 + Rng.int rng 7 in
    let nclauses = 1 + Rng.int rng 25 in
    let clauses =
      List.init nclauses (fun _ ->
          List.init
            (1 + Rng.int rng 3)
            (fun _ -> Lit.make (Rng.int rng nvars) (Rng.bool rng)))
    in
    let expected = brute_force nvars clauses in
    let got = solve_clauses nvars clauses = Solver.Sat in
    if got <> expected then
      Alcotest.failf "solver disagrees with brute force (nvars=%d)" nvars
  done

(* --- acyclicity theory --- *)

let test_acyc_fixed_cycle_rejected () =
  let a = Acyclicity.create ~n:3 in
  checkb "ok" true (Acyclicity.add_fixed a 0 1 = Ok ());
  checkb "ok" true (Acyclicity.add_fixed a 1 2 = Ok ());
  match Acyclicity.add_fixed a 2 0 with
  | Error path -> checkb "path ends at 2" true (List.rev path |> List.hd = 2)
  | Ok () -> Alcotest.fail "fixed cycle accepted"

let test_acyc_reaches () =
  let a = Acyclicity.create ~n:4 in
  ignore (Acyclicity.add_fixed a 0 1);
  ignore (Acyclicity.add_fixed a 1 2);
  checkb "0 reaches 2" true (Acyclicity.reaches a 0 2);
  checkb "2 not 0" false (Acyclicity.reaches a 2 0)

(* One variable choosing between edge (0->1) and edge (1->0), with fixed
   edge 1->0 already present: the solver must set the variable false. *)
let test_acyc_forces_choice () =
  let a = Acyclicity.create ~n:2 in
  ignore (Acyclicity.add_fixed a 1 0);
  let s = Solver.create ~theory:(Acyclicity.theory a) ~nvars:1 () in
  Acyclicity.attach a (pos 0) [ (0, 1) ];
  checkb "sat" true (Solver.solve s = Solver.Sat);
  checkb "variable forced false" false (Solver.value s 0)

let test_acyc_unsat_both_ways () =
  (* x true adds 0->1, x false adds... another var closes the other side;
     both polarities cycle => unsat. *)
  let a = Acyclicity.create ~n:2 in
  ignore (Acyclicity.add_fixed a 0 1);
  ignore (Acyclicity.add_fixed a 1 0 |> Result.is_error |> fun e ->
          if not e then failwith "should have failed");
  ()

let test_acyc_tournament_sat () =
  (* Order 4 vertices freely: variables x_{ij} pick directions; always
     satisfiable (any linear order works). *)
  let n = 4 in
  let a = Acyclicity.create ~n in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs := (i, j) :: !pairs
    done
  done;
  let s = Solver.create ~theory:(Acyclicity.theory a) ~nvars:(List.length !pairs) () in
  List.iteri
    (fun idx (i, j) ->
      Acyclicity.attach a (pos idx) [ (i, j) ];
      Acyclicity.attach a (neg idx) [ (j, i) ])
    !pairs;
  checkb "tournament orderable" true (Solver.solve s = Solver.Sat)

let test_acyc_forced_cycle_unsat () =
  (* Fixed path 0->1->2 plus a variable whose both polarities close a
     cycle: x true adds 2->0, x false adds 2->0 too. *)
  let a = Acyclicity.create ~n:3 in
  ignore (Acyclicity.add_fixed a 0 1);
  ignore (Acyclicity.add_fixed a 1 2);
  let s = Solver.create ~theory:(Acyclicity.theory a) ~nvars:1 () in
  Acyclicity.attach a (pos 0) [ (2, 0) ];
  Acyclicity.attach a (neg 0) [ (2, 0) ];
  checkb "unsat" true (Solver.solve s = Solver.Unsat)

let test_acyc_clauses_and_theory () =
  (* Clauses force x0; x0's edges close a cycle with x1's edges unless x1
     is false. *)
  let a = Acyclicity.create ~n:2 in
  let s = Solver.create ~theory:(Acyclicity.theory a) ~nvars:2 () in
  Acyclicity.attach a (pos 0) [ (0, 1) ];
  Acyclicity.attach a (pos 1) [ (1, 0) ];
  Solver.add_clause s [ pos 0 ];
  checkb "sat" true (Solver.solve s = Solver.Sat);
  checkb "x0 true" true (Solver.value s 0);
  checkb "x1 false" false (Solver.value s 1)

let test_acyc_random_orderings () =
  (* Random DAG directions: embed a hidden order, ask the solver to
     recover any acyclic orientation of random pairs (always SAT). *)
  let rng = Rng.create 31337 in
  for _ = 1 to 10 do
    let n = 8 in
    let a = Acyclicity.create ~n in
    let m = 16 in
    let pairs =
      List.init m (fun _ ->
          let i = Rng.int rng n in
          let j = (i + 1 + Rng.int rng (n - 1)) mod n in
          (i, j))
    in
    let s = Solver.create ~theory:(Acyclicity.theory a) ~nvars:m () in
    List.iteri
      (fun idx (i, j) ->
        Acyclicity.attach a (pos idx) [ (i, j) ];
        Acyclicity.attach a (neg idx) [ (j, i) ])
      pairs;
    checkb "orientable" true (Solver.solve s = Solver.Sat)
  done

let suite =
  [
    ("lit encoding", `Quick, test_lit_encoding);
    ("sat: trivial", `Quick, test_sat_trivial);
    ("sat: unit clause", `Quick, test_sat_unit);
    ("sat: contradiction", `Quick, test_sat_contradiction);
    ("sat: empty clause", `Quick, test_sat_empty_clause);
    ("sat: implication chain", `Quick, test_sat_implication_chain);
    ("sat: pigeonhole 3/2", `Quick, test_sat_pigeonhole_3_2);
    ("sat: models satisfy clauses", `Quick, test_sat_model_satisfies);
    ("sat: agrees with brute force", `Quick, test_sat_vs_brute_force);
    ("acyclicity: fixed cycle rejected", `Quick, test_acyc_fixed_cycle_rejected);
    ("acyclicity: reaches", `Quick, test_acyc_reaches);
    ("acyclicity: theory forces choice", `Quick, test_acyc_forces_choice);
    ("acyclicity: fixed contradiction", `Quick, test_acyc_unsat_both_ways);
    ("acyclicity: tournament satisfiable", `Quick, test_acyc_tournament_sat);
    ("acyclicity: forced cycle unsat", `Quick, test_acyc_forced_cycle_unsat);
    ("acyclicity: clauses + theory", `Quick, test_acyc_clauses_and_theory);
    ("acyclicity: random orientations", `Quick, test_acyc_random_orderings);
  ]
