(* The benchmark harness: one section per table/figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                   # everything
     dune exec bench/main.exe -- --only fig7    # one experiment
     dune exec bench/main.exe -- --list         # list experiment names
     dune exec bench/main.exe -- -j 8           # parallel config sweeps
     dune exec bench/main.exe -- --json out.jsonl   # machine-readable copy
     dune exec bench/main.exe -- --smoke        # tiny config per experiment *)

let experiments =
  [
    ("fig7", "SER verification: MTC-SER vs Cobra", Fig7.run);
    ("fig8", "SI verification: MTC-SI vs PolySI", Fig8.run);
    ("fig9", "SSER/LIN verification: MTC-SSER vs Porcupine", Fig9.run);
    ("fig10", "end-to-end SER: time + memory", Fig10.run);
    ("fig11", "abort rates: GT vs MT", Fig11.run);
    ("table2", "rediscovered bugs (+ figures 12/18 counterexamples)",
     fun () -> Table2.run ());
    ("fig13", "detection effectiveness + end-to-end time vs Elle (fig 14)",
     Fig13.run);
    ("fig17", "end-to-end SI: time + memory", Fig17.run);
    ("ablation", "design-choice ablations (RT encoding, divergence screen, pruning)",
     Ablation.run);
    ("kernels", "bechamel microbenchmarks of the verification kernels",
     Kernels.run);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--list] [--only <experiment>] [-j N] [--json FILE] \
     [--smoke]\n";
  exit 1

type opts = {
  mutable only : string option;
  mutable jobs : int;
  mutable json : string option;
  mutable list_only : bool;
}

let parse_args args =
  let o = { only = None; jobs = 1; json = None; list_only = false } in
  let rec go = function
    | [] -> o
    | "--list" :: rest ->
        o.list_only <- true;
        go rest
    | "--only" :: name :: rest ->
        o.only <- Some name;
        go rest
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            o.jobs <- (if n = 0 then Pool.default_size () else n);
            go rest
        | _ -> usage ())
    | "--json" :: file :: rest ->
        o.json <- Some file;
        go rest
    | "--smoke" :: rest ->
        Bench_util.smoke := true;
        go rest
    | _ -> usage ()
  in
  go args

let run_one ~json_oc (name, _, run) =
  Bench_util.begin_experiment ();
  let (), elapsed = Stats.time_it run in
  match json_oc with
  | None -> ()
  | Some oc ->
      output_string oc (Bench_util.experiment_json ~name ~elapsed_s:elapsed);
      flush oc

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  if o.list_only then
    List.iter
      (fun (name, descr, _) -> Printf.printf "%-8s %s\n" name descr)
      experiments
  else begin
    if o.jobs > 1 then Bench_util.pool := Some (Pool.create ~size:o.jobs ());
    let json_oc =
      Option.map
        (fun file ->
          try open_out file
          with Sys_error msg ->
            Printf.eprintf "cannot open --json file: %s\n" msg;
            exit 1)
        o.json
    in
    let selected =
      match o.only with
      | Some names ->
          (* comma-separated, run in listed order *)
          List.map
            (fun name ->
              match List.find_opt (fun (n, _, _) -> n = name) experiments with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown experiment %S; try --list\n" name;
                  exit 1)
            (String.split_on_char ',' names)
      | None ->
          Printf.printf
            "MTC benchmark harness — reproducing the paper's evaluation.\n\
             Shapes (who wins, trends), not absolute numbers, are the target;\n\
             see EXPERIMENTS.md for the paper-vs-measured comparison.\n";
          experiments
    in
    List.iter (run_one ~json_oc) selected;
    Option.iter close_out json_oc;
    Option.iter Pool.shutdown !Bench_util.pool
  end
