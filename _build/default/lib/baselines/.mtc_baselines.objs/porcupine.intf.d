lib/baselines/porcupine.mli: Lwt
