lib/baselines/elle.ml: Array Checker Cycle Digraph Elle_log Format Hashtbl History Index Int_check List Op Printf Txn
