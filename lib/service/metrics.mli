(** Process-wide service counters and per-feed latency histograms,
    thread-safe, dumpable as JSON via the [Stats] frame and on server
    shutdown.

    Backed by {!Obs.Metrics} instruments in a per-instance registry —
    {!registry} exposes it for Prometheus exposition
    ([mtc serve --metrics-port]). *)

type t

val create : unit -> t

val global : t
(** The instance [mtc serve] reports from. *)

val registry : t -> Obs.Metrics.registry
(** The underlying instrument registry (counter/gauge/histogram names
    are [mtc_]-prefixed). *)

val uptime_s : t -> float
(** Seconds since [create]. *)

(** {1 Recording} *)

val connection : t -> unit
val session_opened : t -> unit
val session_closed : t -> unit
val frame_in : t -> unit
val frame_out : t -> unit
val sync : t -> unit
val violation : t -> unit
val throttle : t -> unit
val protocol_error : t -> unit

val feed : t -> ns:int -> words:int -> unit
(** One transaction processed by a session worker, in [ns] nanoseconds,
    allocating [words] minor-heap words ([Gc.minor_words] delta on the
    processing domain). *)

val queue_depth : t -> int -> unit
(** Track the high-water mark of any session's ingress queue. *)

val wal_write : t -> bytes:int -> unit
(** One WAL append of [bytes] bytes. *)

val wal_fsync : t -> unit
(** Wire as the {!Wal.create} [on_fsync] hook. *)

val snapshot : t -> unit
(** One shard snapshot written. *)

val replay : t -> frames:int -> ms:float -> unit
(** Startup restore: [frames] WAL records replayed in [ms]
    milliseconds. *)

val open_conns : t -> int -> unit
(** Current open-connection count (gauge). *)

val epoll_wakeup : t -> unit
(** One event-loop wait that delivered at least one readiness event. *)

val gc_run : t -> ns:int -> reclaimed:int -> unit
(** One watermark compaction: pause of [ns] nanoseconds reclaiming
    [reclaimed] estimated words. *)

val live_words : t -> int -> unit
(** Current aggregate live-word estimate across all online checkers
    (gauge; the server refreshes it after feeds and compactions). *)

val pinned_sessions : t -> int -> unit
(** Current count of sessions flagged by the horizon-pin detector
    (gauge; the janitor recomputes it each tick). *)

val pin_fence : t -> unit
(** One session force-closed by the [--pin-fence close] policy. *)

(** {1 Reading} *)

val txns_fed : t -> int
val violations : t -> int
val throttles : t -> int
val sessions_opened : t -> int
val queue_high_water : t -> int

val feed_p50_ns : t -> int
val feed_p99_ns : t -> int
(** Percentiles are bucket upper edges (log-bucketed histogram): exact
    to within a factor of two. *)

val feed_words_mean : t -> float
val wal_bytes : t -> int
val wal_fsyncs : t -> int
val snapshots : t -> int
val replay_frames : t -> int
val open_conns_now : t -> int
val epoll_wakeups : t -> int
val gc_runs : t -> int
val gc_reclaimed_words : t -> int
val live_words_now : t -> int

val gc_p99_ns : t -> int
(** Compaction-pause p99; same bucket-edge caveat as the latency
    percentiles. *)

val pinned_sessions_now : t -> int
val pin_fences : t -> int

val feed_words_p50 : t -> int
val feed_words_p99 : t -> int
(** Per-feed allocated minor-heap words; same bucket-edge caveat as the
    latency percentiles. *)

val to_json : t -> string
(** One JSON object with every counter plus the feed-latency,
    feed-allocation and GC-pause summaries (count / mean / p50 / p99 /
    max; nanoseconds, minor-heap words and nanoseconds respectively). *)
