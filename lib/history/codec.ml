let to_string (h : History.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "mtc-history v1\n";
  Buffer.add_string buf (Printf.sprintf "keys %d\n" h.num_keys);
  Buffer.add_string buf (Printf.sprintf "sessions %d\n" h.num_sessions);
  Array.iter
    (fun (t : Txn.t) ->
      if t.id <> History.init_id then begin
        Buffer.add_string buf
          (Printf.sprintf "txn %d %d %s %d %d" t.id t.session
             (match t.status with Txn.Committed -> "C" | Txn.Aborted -> "A")
             t.start_ts t.commit_ts);
        Array.iter
          (fun op ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (Op.to_string op))
          t.ops;
        Buffer.add_char buf '\n'
      end)
    h.txns;
  Buffer.contents buf

(* Parsing is total: any malformed input — truncated op, unknown status,
   duplicate or out-of-order transaction id, key out of range — yields
   [Error] with the 1-based line number of the offending line in the
   original input (comment and blank lines count), never an exception. *)

exception Bad of string

let sp_parse = Obs.Trace.intern "parse"

let of_string s = Obs.Trace.with_span sp_parse @@ fun () ->
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let faill line fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "line %d: %s" line m))) fmt
  in
  (* (original line number, trimmed content), comments/blanks dropped *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) ->
           l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let parse_kv name (ln, line) =
    match String.split_on_char ' ' line with
    | [ k; v ] when k = name -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> faill ln "bad %s count %S" name v)
    | _ -> faill ln "expected %S header, got %S" (name ^ " <n>") line
  in
  let parse_txn (ln, line) =
    match String.split_on_char ' ' line with
    | "txn" :: id :: session :: status :: start :: commit :: ops ->
        let int what s =
          match int_of_string_opt s with
          | Some n -> n
          | None -> faill ln "bad %s %S" what s
        in
        let id = int "txn id" id in
        let session = int "session" session in
        let status =
          match status with
          | "C" -> Txn.Committed
          | "A" -> Txn.Aborted
          | other -> faill ln "bad status %S (want C or A)" other
        in
        let start_ts = int "start_ts" start in
        let commit_ts = int "commit_ts" commit in
        let ops =
          List.map
            (fun op_s ->
              match Op.of_string op_s with
              | Some op -> op
              | None -> faill ln "bad operation %S" op_s)
            ops
        in
        (ln, Txn.make ~id ~session ~status ~start_ts ~commit_ts ops)
    | _ -> faill ln "unparseable txn line %S" line
  in
  try
    match lines with
    | (_, header) :: rest when header = "mtc-history v1" -> (
        match rest with
        | keys_line :: sessions_line :: txn_lines ->
            let num_keys = parse_kv "keys" keys_line in
            let num_sessions = parse_kv "sessions" sessions_line in
            let txns = List.map parse_txn txn_lines in
            (* Ids must be the dense sequence 1..n in order (the implicit
               initial transaction is id 0): diagnose duplicates and gaps
               with their line before History.make would. *)
            List.iteri
              (fun i (ln, (t : Txn.t)) ->
                if t.Txn.id <> i + 1 then
                  if
                    List.exists
                      (fun (_, (u : Txn.t)) -> u.Txn.id = t.Txn.id)
                      (List.filteri (fun j _ -> j < i) txns)
                  then faill ln "duplicate txn id %d" t.Txn.id
                  else
                    faill ln "txn id %d out of order (expected %d)" t.Txn.id
                      (i + 1);
                if t.Txn.session < 1 || t.Txn.session > num_sessions then
                  faill ln "session %d out of [1,%d]" t.Txn.session num_sessions;
                Array.iter
                  (fun op ->
                    let k = Op.key op in
                    if k < 0 || k >= num_keys then
                      faill ln "key %d out of [0,%d)" k num_keys)
                  t.Txn.ops)
              txns;
            (* all History.make preconditions were just checked per line;
               keep the guard anyway so parsing stays total *)
            (try Ok (History.make ~num_keys ~num_sessions (List.map snd txns))
             with Invalid_argument m -> fail "%s" m)
        | _ -> fail "truncated header (want magic, keys, sessions)")
    | (ln, _) :: _ -> faill ln "missing magic line 'mtc-history v1'"
    | [] -> fail "empty input"
  with Bad m -> Error m

let save path h =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string h))

(* --- binary format ---------------------------------------------------

   Layout:
     "mtcbin1\n"                                magic, 8 bytes
     uvarint num_keys, num_sessions, block_size
     txn records (Binio.add_txn), ids 1..n in order,
       grouped into blocks of block_size txns
     footer at byte offset FOFF:
       uvarint num_txns, uvarint num_blocks,
       one uvarint absolute byte offset per block
     8-byte LE FOFF, then "mtcE"                trailer, 12 bytes

   The trailer is fixed-width so a loader can find the footer without
   scanning; the per-block offsets let domains decode disjoint txn
   ranges concurrently from one shared mmap.  The initial transaction is
   implicit, exactly as in the text format. *)

let bin_magic = "mtcbin1\n"
let bin_trailer_magic = "mtcE"
let default_block_size = 4096

module Bin_writer = struct
  type t = {
    oc : out_channel;
    buf : Buffer.t;
    block_size : int;
    num_keys : int;
    num_sessions : int;
    offsets : Int_vec.t;
    mutable count : int;  (* transactions written so far *)
    mutable flushed : int;  (* bytes already on disk *)
    mutable closed : bool;
  }

  let pos t = t.flushed + Buffer.length t.buf

  let flush t =
    Buffer.output_buffer t.oc t.buf;
    t.flushed <- t.flushed + Buffer.length t.buf;
    Buffer.clear t.buf

  let create ?(block_size = default_block_size) ~num_keys ~num_sessions path =
    if block_size < 1 then
      invalid_arg "Codec.Bin_writer.create: block_size must be >= 1";
    let oc = open_out_bin path in
    let buf = Buffer.create 65536 in
    Buffer.add_string buf bin_magic;
    Binio.add_uvarint buf num_keys;
    Binio.add_uvarint buf num_sessions;
    Binio.add_uvarint buf block_size;
    {
      oc;
      buf;
      block_size;
      num_keys;
      num_sessions;
      offsets = Int_vec.create 64;
      count = 0;
      flushed = 0;
      closed = false;
    }

  let add t (txn : Txn.t) =
    if t.closed then invalid_arg "Codec.Bin_writer.add: writer is closed";
    if txn.id <> t.count + 1 then
      invalid_arg
        (Printf.sprintf "Codec.Bin_writer.add: txn id %d, expected %d" txn.id
           (t.count + 1));
    if txn.session < 1 || txn.session > t.num_sessions then
      invalid_arg
        (Printf.sprintf "Codec.Bin_writer.add: T%d session %d out of [1,%d]"
           txn.id txn.session t.num_sessions);
    if txn.start_ts > txn.commit_ts then
      invalid_arg
        (Printf.sprintf
           "Codec.Bin_writer.add: T%d start_ts %d after commit_ts %d" txn.id
           txn.start_ts txn.commit_ts);
    Array.iter
      (fun op ->
        let k = Op.key op in
        if k < 0 || k >= t.num_keys then
          invalid_arg
            (Printf.sprintf "Codec.Bin_writer.add: T%d key %d out of [0,%d)"
               txn.id k t.num_keys))
      txn.ops;
    if t.count mod t.block_size = 0 then Int_vec.push t.offsets (pos t);
    Binio.add_txn t.buf txn;
    t.count <- t.count + 1;
    if Buffer.length t.buf >= 1 lsl 20 then flush t

  let close t =
    if not t.closed then begin
      t.closed <- true;
      let foff = pos t in
      Binio.add_uvarint t.buf t.count;
      Binio.add_uvarint t.buf (Int_vec.length t.offsets);
      for b = 0 to Int_vec.length t.offsets - 1 do
        Binio.add_uvarint t.buf (Int_vec.get t.offsets b)
      done;
      Buffer.add_int64_le t.buf (Int64.of_int foff);
      Buffer.add_string t.buf bin_trailer_magic;
      flush t;
      close_out t.oc
    end
end

let save_bin ?block_size path (h : History.t) =
  let w =
    Bin_writer.create ?block_size ~num_keys:h.num_keys
      ~num_sessions:h.num_sessions path
  in
  Fun.protect
    ~finally:(fun () -> Bin_writer.close w)
    (fun () ->
      Array.iter
        (fun (t : Txn.t) -> if t.id <> History.init_id then Bin_writer.add w t)
        h.txns)

let sp_parse_bin = Obs.Trace.intern "parse/bin"

let decode_bin ?pool src =
  let r = Binio.reader_of_source src in
  let total = Binio.Source.length src in
  let m = Binio.read_bytes r (String.length bin_magic) in
  if m <> bin_magic then Binio.fail "bad binary magic";
  let num_keys = Binio.read_uvarint r in
  let num_sessions = Binio.read_uvarint r in
  let block_size = Binio.read_uvarint r in
  if num_keys < 1 || num_sessions < 0 || block_size < 1 then
    Binio.fail "implausible binary header (%d keys, %d sessions, block %d)"
      num_keys num_sessions block_size;
  if total < Binio.pos r + 12 then Binio.fail "missing binary trailer";
  Binio.seek r (total - 12);
  let foff = ref 0 in
  for i = 0 to 7 do
    foff := !foff lor (Binio.read_byte r lsl (8 * i))
  done;
  if Binio.read_bytes r 4 <> bin_trailer_magic then
    Binio.fail "bad binary trailer magic";
  if !foff < 0 || !foff > total - 12 then
    Binio.fail "footer offset %d out of file" !foff;
  Binio.seek r !foff;
  let num_txns = Binio.read_uvarint r in
  let num_blocks = Binio.read_uvarint r in
  if
    num_txns < 0 || num_blocks < 0
    || num_blocks <> (num_txns + block_size - 1) / block_size
  then
    Binio.fail "footer disagrees with itself (%d txns, %d blocks)" num_txns
      num_blocks;
  let offsets = Array.init num_blocks (fun _ -> Binio.read_uvarint r) in
  Array.iter
    (fun o -> if o < 0 || o > !foff then Binio.fail "block offset %d out of file" o)
    offsets;
  let txns = Array.make (num_txns + 1) (History.init_txn ~num_keys) in
  (* Each block decodes its own txn range from its own cursor over the
     shared map; ids are dense and block-aligned, so every write lands
     in a distinct slot.  A decode failure propagates per the pool's
     lowest-index rule — the same block that would fail sequentially. *)
  Pool.tasks pool
    (List.init num_blocks (fun b () ->
         let br = Binio.reader_of_source ~pos:offsets.(b) src in
         let first = (b * block_size) + 1 in
         let last = Stdlib.min num_txns (first + block_size - 1) in
         for id = first to last do
           let t = Binio.read_txn br in
           if t.Txn.id <> id then
             Binio.fail "txn id %d where %d expected (block %d)" t.Txn.id id b;
           txns.(id) <- t
         done));
  (num_keys, num_sessions, txns)

let load_bin ?pool path =
  Obs.Trace.with_span sp_parse_bin @@ fun () ->
  try
    let src = Binio.Source.map_file path in
    let num_keys, num_sessions, txns = decode_bin ?pool src in
    try Ok (History.of_array ?pool ~num_keys ~num_sessions txns)
    with Invalid_argument m -> Error m
  with
  | Binio.Decode_error m -> Error (Printf.sprintf "%s: %s" path m)
  | Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | Sys_error m -> Error m

type format = Auto | Text | Bin

let format_of_string = function
  | "auto" -> Some Auto
  | "text" -> Some Text
  | "bin" -> Some Bin
  | _ -> None

let sniff_bin path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let buf = Bytes.create (String.length bin_magic) in
        match In_channel.really_input ic buf 0 (Bytes.length buf) with
        | Some () -> Bytes.to_string buf = bin_magic
        | None -> false)
  with Sys_error _ -> false

let load_text path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error m -> Error m

let load ?(format = Auto) ?pool path =
  match format with
  | Text -> load_text path
  | Bin -> load_bin ?pool path
  | Auto -> if sniff_bin path then load_bin ?pool path else load_text path
