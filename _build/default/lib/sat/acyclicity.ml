(* The theory graph is maintained as a Pearce–Kelly incremental
   topological order: asserting an edge literal inserts edges (amortized
   cheap), and backtracking removes them in O(1) per edge — deleting edges
   never invalidates a topological order.  A rejected insertion yields the
   vertex path of the would-be cycle, whose supporting literals become the
   conflict clause. *)

type t = {
  n : int;
  pk : Pearce_kelly.t;
  (* (u, v) -> stack of supports; [None] = fixed edge.  An edge lives in
     [pk] while its support stack is non-empty and the PK insertion
     succeeded. *)
  supports : (int * int, Lit.t option list ref) Hashtbl.t;
  attached : (Lit.t, (int * int) list) Hashtbl.t;
  (* fixed adjacency for the pruning oracle *)
  fixed_succ : int list array;
}

let create ~n =
  {
    n;
    pk = Pearce_kelly.create n;
    supports = Hashtbl.create 1024;
    attached = Hashtbl.create 256;
    fixed_succ = Array.make n [];
  }

let support_stack t u v =
  match Hashtbl.find_opt t.supports (u, v) with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.supports (u, v) r;
      r

(* Literals justifying the PK cycle path [v; ...; u] (closed by the new
   edge u -> v).  Fixed support is preferred: it contributes no literal. *)
let path_lits t path =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  List.filter_map
    (fun (a, b) ->
      match Hashtbl.find_opt t.supports (a, b) with
      | Some { contents = stack } ->
          if List.mem None stack then None
          else (match stack with l :: _ -> l | [] -> None)
      | None -> None)
    (pairs path)

let add_fixed t u v =
  match Pearce_kelly.add_edge t.pk u v with
  | Ok () ->
      let stack = support_stack t u v in
      stack := None :: !stack;
      t.fixed_succ.(u) <- v :: t.fixed_succ.(u);
      Ok ()
  | Error path -> Error path

let add_fixed_batch t edges =
  let result = ref (Ok ()) in
  List.iter
    (fun (u, v) ->
      if !result = Ok () && not (Pearce_kelly.mem_edge t.pk u v) then
        match add_fixed t u v with
        | Ok () -> ()
        | Error path -> result := Error path)
    edges;
  !result

let attach t lit edges =
  let existing =
    match Hashtbl.find_opt t.attached lit with Some e -> e | None -> []
  in
  Hashtbl.replace t.attached lit (existing @ edges)

let on_assign t lit =
  match Hashtbl.find_opt t.attached lit with
  | None -> None
  | Some edges ->
      let conflict = ref None in
      List.iter
        (fun (u, v) ->
          let stack = support_stack t u v in
          let already_present = !stack <> [] && Pearce_kelly.mem_edge t.pk u v in
          stack := Some lit :: !stack;
          if (not already_present) && !conflict = None then
            match Pearce_kelly.add_edge t.pk u v with
            | Ok () -> ()
            | Error path ->
                (* Cycle: u -> v -> ... -> u. *)
                let lits = List.sort_uniq compare (path_lits t path) in
                conflict :=
                  Some (lit :: List.filter (fun l -> l <> lit) lits))
        edges;
      !conflict

let on_unassign t lit =
  match Hashtbl.find_opt t.attached lit with
  | None -> ()
  | Some edges ->
      List.iter
        (fun (u, v) ->
          let stack = support_stack t u v in
          (match !stack with
          | Some l :: rest when l = lit -> stack := rest
          | _ ->
              (* Same literal attached to a duplicate edge entry: remove
                 the first matching support. *)
              let rec remove = function
                | [] -> []
                | Some l :: rest when l = lit -> rest
                | s :: rest -> s :: remove rest
              in
              stack := remove !stack);
          if !stack = [] then Pearce_kelly.remove_edge t.pk u v)
        (List.rev edges)

let theory t =
  { Solver.on_assign = on_assign t; on_unassign = on_unassign t }

let reaches t src dst =
  if src = dst then true
  else begin
    let visited = Array.make t.n false in
    let rec go u =
      u = dst
      || (not visited.(u))
         && begin
              visited.(u) <- true;
              List.exists go t.fixed_succ.(u)
            end
    in
    visited.(src) <- true;
    List.exists go t.fixed_succ.(src)
  end
