(* The streaming checker's hot path is flat ints end to end: a
   Pearce–Kelly graph grown in place (no edge replay on capacity
   doubling), edge labels in a packed-int map, and reader/overwriter/
   extender tiers on Flat_index — no tuple-keyed hashtables, no boxed
   list cells.  Feeding a committed transaction allocates a bounded
   amount (the transaction's own op-list views plus amortized vector
   growth), independent of how many transactions came before. *)

(* Int-packed dependency labels (same scheme as the Deps flat edge
   stream): 0/1/2 are the keyless constants, a keyed label packs as
   [4 + (key lsl 2) lor tag]. *)
let pack_dep = function
  | Deps.RT -> 0
  | Deps.SO -> 1
  | Deps.Rt_chain -> 2
  | Deps.WR k -> 4 + ((k lsl 2) lor 0)
  | Deps.WW k -> 4 + ((k lsl 2) lor 1)
  | Deps.RW k -> 4 + ((k lsl 2) lor 2)

let unpack_dep p =
  if p = 0 then Deps.RT
  else if p = 1 then Deps.SO
  else if p = 2 then Deps.Rt_chain
  else
    let q = p - 4 in
    let k = q lsr 2 in
    match q land 3 with 0 -> Deps.WR k | 1 -> Deps.WW k | _ -> Deps.RW k

(* Growable Pearce–Kelly graph with labelled edges.  Capacity doubles in
   place ({!Pearce_kelly.ensure}); a duplicate edge is accepted without
   touching the label or the count, and a rejected (cycle-closing) edge
   leaves no label behind — the label of the offending edge travels with
   the rejection instead (see {!cycle_of_path}). *)
module Grow = struct
  type t = {
    pk : Pearce_kelly.t;
    mutable capacity : int;
    mutable edge_count : int;  (** distinct edges accepted *)
    mutable labels : Flat_index.t;  (** packed (u lsl 31) lor v -> packed dep *)
  }

  let create () =
    {
      pk = Pearce_kelly.create 64;
      capacity = 64;
      edge_count = 0;
      labels = Flat_index.create ~capacity:256 ();
    }

  let edge_count t = t.edge_count

  let ensure t needed =
    if needed > t.capacity then begin
      let capacity = ref t.capacity in
      while needed > !capacity do
        capacity := 2 * !capacity
      done;
      Pearce_kelly.ensure t.pk !capacity;
      t.capacity <- !capacity
    end

  let edge_key u v = (u lsl 31) lor v

  (* [Error path]: vertex path [v; ...; u] for the rejected edge u -> v. *)
  let add_edge t u v lab =
    ensure t (1 + Stdlib.max u v);
    if Pearce_kelly.mem_edge t.pk u v then Ok () (* duplicate: no-op *)
    else
      match Pearce_kelly.add_edge t.pk u v with
      | Ok () ->
          Flat_index.set t.labels (edge_key u v) (pack_dep lab);
          t.edge_count <- t.edge_count + 1;
          Ok ()
      | Error path -> Error path

  let label t u v =
    let p = Flat_index.get t.labels (edge_key u v) in
    if p >= 0 then unpack_dep p else Deps.Rt_chain
end

(* Watermark GC policy.  [Gc_auto] compacts when the live-word estimate
   exceeds twice the post-GC floor (with a fixed minimum so tiny sessions
   never bother); [Gc_words n] compacts past an absolute ceiling. *)
type gc = Gc_off | Gc_auto | Gc_words of int

let gc_to_string = function
  | Gc_off -> "off"
  | Gc_auto -> "auto"
  | Gc_words n -> string_of_int n

let gc_of_string = function
  | "off" -> Some Gc_off
  | "auto" -> Some Gc_auto
  | s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some (Gc_words n)
      | _ -> None)

type t = {
  level : Checker.level;
  skew : int;
  ts_mode : Ts.mode;
  num_keys : int;
  graph : Grow.t;
  mutable next_vertex : int;
  mutable vertex_txn : Int_vec.t;  (** vertex -> txn id; -1 for helper vertices *)
  mutable txn_vertex : Flat_index.t;  (** txn id -> base vertex (SI: the d-vertex) *)
  mutable writers : Flat_index.Writers.t;
      (** final / intermediate / aborted writer resolution, int-packed *)
  mutable readers : Flat_index.Multi.t;
  mutable overwriters : Flat_index.Multi.t;
  mutable extender : Flat_index.Pairs.t;  (** (k, v) -> (reader txn, its write) *)
  session_last : Flat_index.t;  (** session -> last committed txn id *)
  mutable seen_ids : Flat_index.t;
  (* SSER stream state: commits in arrival (= commit_ts) order *)
  mutable commit_ts : Int_vec.t;
  mutable commit_helper : Int_vec.t;  (** helper vertex of the same commit *)
  mutable last_commit : int;
  mutable count : int;
  mutable poisoned : Checker.violation option;
  (* Watermark GC state (see {!gc_run}).  [total_vertices] is the
     logical allocation count — it keeps {!stats} identical between
     bounded and unbounded runs while [next_vertex] tracks the physical
     (possibly compacted) vertex space.  The install windows track, per
     key, the packed pairs of the two newest final installs; a version
     evicted from both slots is recorded in [dead_at] with the arrival
     position of its death and becomes prunable once every session's
     feed frontier has passed that position.  Aborted installs follow a
     different clock: a leaked aborted version (the MongoDB-style fault)
     stays readable until a committed write on the same key shadows it,
     however long that takes, so aborted pairs wait in [ab_pending] and
     die only when the next final install on their key arrives. *)
  gc_policy : gc;
  mutable gc_floor : int;  (** live words right after the last GC *)
  mutable gc_runs : int;
  mutable gc_reclaimed : int;  (** cumulative words reclaimed *)
  mutable gc_last_ns : int;  (** wall time of the last GC run *)
  mutable total_vertices : int;
  fin_cur : int array;  (** per key: packed pair of newest final install *)
  fin_prev : int array;
  ab_pending : Int_vec.t array;
      (** per key: aborted installs not yet shadowed by a final one *)
  mutable dead_at : Flat_index.t;  (** packed pair -> death position *)
  sessions : Flat_index.t;  (** session -> frontier slot *)
  sl_pos : Int_vec.t;  (** slot -> arrival position of the last fed txn *)
  sl_cts : Int_vec.t;  (** slot -> commit_ts frontier of the session *)
  (* Timestamp fast path (Vbox mode, {!Ts}): per-key version chains in
     commit-timestamp order, as cons chains threaded through flat int
     vectors (newest first — commit-order arrival, enforced for ts
     modes, keeps them sorted without insertion).  [Trust] attributes
     every external read to its predicted writer outright; [Verify]
     certifies the prediction against the value read and falls back per
     key to the value tables on a mismatch.  The tables themselves stay
     maintained in every mode — they also back the duplicate-write and
     divergence screens — so the online fast path changes read
     attribution (and supplies certification statistics), not table
     upkeep. *)
  mutable chain_head : Flat_index.t;  (** key -> newest chain node, or absent *)
  mutable ch_commit : Int_vec.t;
  mutable ch_writer : Int_vec.t;
  mutable ch_value : Int_vec.t;
  mutable ch_next : Int_vec.t;
  ts_slow : Bytes.t;  (** verify: per-key certification-failed flag *)
  mutable ts_fast : int;
  mutable ts_mismatched : int;
}

type step = Ok_so_far | Violation of Checker.violation

type stats = {
  s_txns_seen : int;
  s_vertices : int;
  s_edges : int;
  s_poisoned : bool;
  s_ts_fast : int;
  s_ts_mismatched : int;
  s_gc_runs : int;
  s_gc_reclaimed_words : int;
  s_live_words : int;
}

let txns_seen t = t.count
let level t = t.level
let ts_mode t = t.ts_mode
let poisoned t = t.poisoned
let gc_policy t = t.gc_policy
let gc_runs t = t.gc_runs
let gc_last_ns t = t.gc_last_ns
let gc_reclaimed_words t = t.gc_reclaimed

(* The GC horizon as it stands right now: the minimum arrival position
   across per-session frontiers (what a compaction running at this
   instant would use for H).  -1 before any session has fed. *)
let watermark_pos t =
  let n = Int_vec.length t.sl_pos in
  if n = 0 then -1
  else begin
    let h = ref max_int in
    for i = 0 to n - 1 do
      if Int_vec.get t.sl_pos i < !h then h := Int_vec.get t.sl_pos i
    done;
    !h
  end

let frontier_sessions t = Int_vec.length t.sl_pos

(* Rough live size in words of every structure the checker retains.
   O(physical vertices) — the adjacency walk in {!Pearce_kelly.words}
   dominates — so the auto-GC trigger samples it periodically rather
   than per feed. *)
let live_words t =
  Pearce_kelly.words t.graph.Grow.pk
  + Flat_index.words t.graph.Grow.labels
  + Array.length (Int_vec.data t.vertex_txn)
  + Flat_index.words t.txn_vertex
  + Flat_index.Writers.words t.writers
  + Flat_index.Multi.words t.readers
  + Flat_index.Multi.words t.overwriters
  + Flat_index.Pairs.words t.extender
  + Flat_index.words t.session_last
  + Flat_index.words t.seen_ids
  + Array.length (Int_vec.data t.commit_ts)
  + Array.length (Int_vec.data t.commit_helper)
  + Flat_index.words t.chain_head
  + Array.length (Int_vec.data t.ch_commit)
  + Array.length (Int_vec.data t.ch_writer)
  + Array.length (Int_vec.data t.ch_value)
  + Array.length (Int_vec.data t.ch_next)
  + Flat_index.words t.dead_at
  + (2 * Array.length t.fin_cur)
  + Array.fold_left
      (fun acc v -> acc + Array.length (Int_vec.data v))
      0 t.ab_pending
  + Flat_index.words t.sessions
  + Array.length (Int_vec.data t.sl_pos)
  + Array.length (Int_vec.data t.sl_cts)

let stats t =
  {
    s_txns_seen = t.count;
    s_vertices = t.total_vertices;
    s_edges = t.graph.Grow.edge_count;
    s_poisoned = t.poisoned <> None;
    s_ts_fast = t.ts_fast;
    s_ts_mismatched = t.ts_mismatched;
    s_gc_runs = t.gc_runs;
    s_gc_reclaimed_words = t.gc_reclaimed;
    s_live_words = live_words t;
  }

let vertices_per_txn level = match level with Checker.SI -> 2 | _ -> 1

let alloc_vertices t (txn : Txn.t) =
  let base = t.next_vertex in
  let n = vertices_per_txn t.level in
  t.next_vertex <- base + n;
  t.total_vertices <- t.total_vertices + n;
  Flat_index.set t.txn_vertex txn.Txn.id base;
  Int_vec.push t.vertex_txn txn.Txn.id;
  if n = 2 then Int_vec.push t.vertex_txn txn.Txn.id;
  base

let alloc_helper t =
  let h = t.next_vertex in
  t.next_vertex <- h + 1;
  t.total_vertices <- t.total_vertices + 1;
  Int_vec.push t.vertex_txn (-1);
  h

let create ?(skew = 0) ?(ts = Ts.Ignore) ?(gc = Gc_off) ~level ~num_keys () =
  let nk = Stdlib.max 0 num_keys in
  let t =
    {
      level;
      skew;
      ts_mode = ts;
      num_keys = nk;
      graph = Grow.create ();
      next_vertex = 0;
      vertex_txn = Int_vec.create 256;
      txn_vertex = Flat_index.create ~capacity:256 ();
      writers = Flat_index.Writers.create ~num_keys ~expected:1024;
      readers = Flat_index.Multi.create ~num_keys ();
      overwriters = Flat_index.Multi.create ~num_keys ();
      extender = Flat_index.Pairs.create ~num_keys ();
      session_last = Flat_index.create ~capacity:16 ();
      seen_ids = Flat_index.create ~capacity:1024 ();
      commit_ts = Int_vec.create 256;
      commit_helper = Int_vec.create 256;
      last_commit = min_int;
      count = 0;
      poisoned = None;
      chain_head = Flat_index.create ~capacity:(if ts = Ts.Ignore then 16 else 256) ();
      ch_commit = Int_vec.create 16;
      ch_writer = Int_vec.create 16;
      ch_value = Int_vec.create 16;
      ch_next = Int_vec.create 16;
      ts_slow =
        (if ts = Ts.Verify then Bytes.make num_keys '\000' else Bytes.empty);
      ts_fast = 0;
      ts_mismatched = 0;
      gc_policy = gc;
      gc_floor = 0;
      gc_runs = 0;
      gc_reclaimed = 0;
      gc_last_ns = 0;
      total_vertices = 0;
      fin_cur = Array.make nk (-1);
      fin_prev = Array.make nk (-1);
      ab_pending = Array.init nk (fun _ -> Int_vec.create 0);
      dead_at = Flat_index.create ~capacity:64 ();
      sessions = Flat_index.create ~capacity:16 ();
      sl_pos = Int_vec.create 16;
      sl_cts = Int_vec.create 16;
    }
  in
  let init = History.init_txn ~num_keys in
  Flat_index.set t.seen_ids init.Txn.id 1;
  let init_writes = Txn.final_writes init in
  List.iter
    (fun (k, v) ->
      Flat_index.Writers.set_final t.writers k v init.Txn.id;
      let p = Flat_index.pack_pair ~num_keys:nk k v in
      if p >= 0 then t.fin_cur.(k) <- p)
    init_writes;
  ignore (alloc_vertices t init);
  if ts <> Ts.Ignore then
    (* The initial version of every key sits at the bottom of its chain
       (commit_ts = min_int), so prediction is total over in-range keys
       — exactly {!Ts.predict}'s invariant. *)
    List.iter
      (fun (k, v) ->
        let n = Int_vec.length t.ch_commit in
        Int_vec.push t.ch_commit min_int;
        Int_vec.push t.ch_writer init.Txn.id;
        Int_vec.push t.ch_value v;
        Int_vec.push t.ch_next (-1);
        Flat_index.set t.chain_head k n)
      init_writes;
  t

let resolve t k v = Flat_index.Writers.resolve t.writers k v

(* --- watermark GC: retention bookkeeping ---------------------------- *)

(* A committed version record is prunable only once (a) it has been
   evicted from its key's install window — the two newest final installs
   (depth two because the causality fault serves exactly one version
   back) — and (b) every session's feed frontier has passed the arrival
   position where that eviction happened.  (a) covers what a conforming
   MVCC engine (or a supported fault) can still serve at the moment of
   death; (b) covers in-flight transactions of lagging sessions: any
   reader that can still observe the evicted version has a snapshot
   older than the evicting commit, so (sessions being serial, streams
   arriving in commit order) its session's frontier stays below the
   death position until the reader itself is fed.  Aborted installs get
   no window: a leaked aborted version is served until a committed write
   shadows it, so the pair waits in [ab_pending] and dies only at the
   next final install on its key — the same frontier argument then
   covers its in-flight readers.  Unpackable pairs never die (they spill
   anyway). *)

let maybe_dead t k p =
  if p >= 0 && p <> t.fin_cur.(k) && p <> t.fin_prev.(k) then
    Flat_index.set t.dead_at p t.count

let window_install t k v =
  let p = Flat_index.pack_pair ~num_keys:t.num_keys k v in
  if p >= 0 then begin
    if t.fin_cur.(k) <> p then begin
      let evicted = t.fin_prev.(k) in
      t.fin_prev.(k) <- t.fin_cur.(k);
      t.fin_cur.(k) <- p;
      maybe_dead t k evicted
    end;
    let pending = t.ab_pending.(k) in
    for i = 0 to Int_vec.length pending - 1 do
      Flat_index.set t.dead_at (Int_vec.get pending i) t.count
    done;
    Int_vec.clear pending
  end

let note_aborted t k v =
  let p = Flat_index.pack_pair ~num_keys:t.num_keys k v in
  if p >= 0 then Int_vec.push t.ab_pending.(k) p

(* Intermediate writes are unreadable by conforming engines and by every
   supported fault, so they die at their own install position. *)
let mark_dead_now t k v =
  let p = Flat_index.pack_pair ~num_keys:t.num_keys k v in
  if p >= 0 then Flat_index.set t.dead_at p t.count

(* Advance the session's feed frontier — on every fed transaction,
   committed or aborted. *)
let note_session t session commit_ts =
  let slot = Flat_index.get t.sessions session in
  if slot >= 0 then begin
    Int_vec.set t.sl_pos slot t.count;
    if commit_ts > Int_vec.get t.sl_cts slot then
      Int_vec.set t.sl_cts slot commit_ts
  end
  else begin
    let slot = Int_vec.length t.sl_pos in
    Flat_index.set t.sessions session slot;
    Int_vec.push t.sl_pos t.count;
    Int_vec.push t.sl_cts commit_ts
  end

(* The newest chain node of [k] with [commit_ts <= start_ts] — the
   writer an MVCC engine's visibility rule predicts the read observed.
   Chains are sorted newest-first (commit-order arrival is enforced for
   ts modes), and readers mostly observe recent versions, so the walk is
   short in the steady state.  -1 when the key has no chain (out of
   range). *)
let predict_node t k ~start_ts =
  let rec go n =
    if n < 0 then -1
    else if Int_vec.get t.ch_commit n <= start_ts then n
    else go (Int_vec.get t.ch_next n)
  in
  go (Flat_index.get t.chain_head k)

let push_chain t k ~commit_ts ~writer ~value =
  let n = Int_vec.length t.ch_commit in
  Int_vec.push t.ch_commit commit_ts;
  Int_vec.push t.ch_writer writer;
  Int_vec.push t.ch_value value;
  Int_vec.push t.ch_next (Flat_index.get t.chain_head k);
  Flat_index.set t.chain_head k n

(* Timestamp-assisted attribution of an external read.  [count]
   separates the certification statistics (tallied once, in the INT
   screen) from the edge-derivation re-resolution in [feed_committed],
   which sees the same reads a second time. *)
let resolve_ts t ~count ~start_ts k v =
  match t.ts_mode with
  | Ts.Ignore -> resolve t k v
  | Ts.Trust ->
      let n = predict_node t k ~start_ts in
      if n < 0 then resolve t k v
      else begin
        if count then t.ts_fast <- t.ts_fast + 1;
        Index.Final (Int_vec.get t.ch_writer n)
      end
  | Ts.Verify ->
      if k < 0 || k >= Bytes.length t.ts_slow
         || Bytes.unsafe_get t.ts_slow k = '\001'
      then resolve t k v
      else
        let n = predict_node t k ~start_ts in
        if n >= 0 && Int_vec.get t.ch_value n = v then begin
          if count then t.ts_fast <- t.ts_fast + 1;
          Index.Final (Int_vec.get t.ch_writer n)
        end
        else begin
          (* Certification mismatch: the timestamps lie about this key.
             Fall back to value resolution for it, permanently. *)
          Bytes.unsafe_set t.ts_slow k '\001';
          if count then t.ts_mismatched <- t.ts_mismatched + 1;
          resolve t k v
        end

(* Product encoding for SI over base vertices: dep edges fan out of both
   the d- and r-vertex into the target's d-vertex; anti edges go
   d-to-r (see Polysi for the correctness argument). *)
let encoded_edges level (u, v, lab) =
  match (level, lab) with
  | Checker.SI, (Deps.SO | Deps.WR _ | Deps.WW _) ->
      [ (u, v, lab); (u + 1, v, lab) ]
  | Checker.SI, Deps.RW _ -> [ (u, v + 1, lab) ]
  | Checker.SI, (Deps.RT | Deps.Rt_chain) -> []
  | _, lab -> [ (u, v, lab) ]

(* Map a rejected edge u -> v (attempted with label [lab]) and its PK
   path [v; ...; u] back to a transaction-level cycle.  Helper vertices
   and intra-product steps are dropped; the rejected edge carries its own
   label (it was never recorded — rejected edges leave no label behind),
   the rest come from the label table. *)
let cycle_of_path t u lab path =
  let full = u :: path in
  let txn_of vtx =
    let id = Int_vec.get t.vertex_txn vtx in
    if id < 0 then None else Some id
  in
  let label_of a b = if a = u then lab else Grow.label t.graph a b in
  let rec build acc = function
    | a :: (b :: _ as rest) ->
        let edge =
          match (txn_of a, txn_of b) with
          | Some ta, Some tb when ta <> tb -> Some (ta, label_of a b, tb)
          | _ -> None
        in
        build (match edge with Some e -> e :: acc | None -> acc) rest
    | [ last ] ->
        (* close the cycle back to u *)
        let edge =
          match (txn_of last, txn_of u) with
          | Some ta, Some tb when ta <> tb ->
              Some (ta, Grow.label t.graph last u, tb)
          | _ -> None
        in
        List.rev (match edge with Some e -> e :: acc | None -> acc)
    | [] -> List.rev acc
  in
  (* Runs through helpers collapse; label gaps as RT when endpoints
     differ but no direct label exists — the label table falls back to
     Rt_chain, rendered as RT for reporting. *)
  List.map
    (fun (a, lab, b) ->
      (a, (match lab with Deps.Rt_chain -> Deps.RT | l -> l), b))
    (build [] full)

let poison t v =
  t.poisoned <- Some v;
  Violation v

exception Cycle_found of Checker.violation

let add_all_edges t base_u base_v lab =
  List.iter
    (fun (u, v, l) ->
      match Grow.add_edge t.graph u v l with
      | Ok () -> ()
      | Error path ->
          raise (Cycle_found (Checker.Cyclic (cycle_of_path t u l path))))
    (encoded_edges t.level (base_u, base_v, lab))

let add_raw_edge t u v lab =
  match Grow.add_edge t.graph u v lab with
  | Ok () -> ()
  | Error path ->
      raise (Cycle_found (Checker.Cyclic (cycle_of_path t u lab path)))

let divergence_screen t (txn : Txn.t) =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Some _ -> acc
      | None ->
          if Txn.writes_key txn k then begin
            let other = Flat_index.Pairs.first t.extender k v in
            if other >= 0 then
              Some
                (Checker.Diverged
                   {
                     Divergence.key = k;
                     writer =
                       (match resolve t k v with
                       | Index.Final w -> w
                       | Index.Intermediate w | Index.Aborted w -> w
                       | Index.Nobody -> -1);
                     reader1 = (other, Flat_index.Pairs.second t.extender k v);
                     reader2 =
                       ( txn.Txn.id,
                         Option.value (Txn.write_of txn k) ~default:0 );
                   })
            else begin
              Flat_index.Pairs.set t.extender k v txn.Txn.id
                (Option.value (Txn.write_of txn k) ~default:0);
              None
            end
          end
          else None)
    None (Txn.external_reads txn)

let feed_committed t (txn : Txn.t) =
  let vtx = alloc_vertices t txn in
  (* Session order. *)
  let prev =
    let p = Flat_index.get t.session_last txn.Txn.session in
    if p >= 0 then p else History.init_id
  in
  add_all_edges t (Flat_index.get t.txn_vertex prev) vtx Deps.SO;
  Flat_index.set t.session_last txn.Txn.session txn.Txn.id;
  (* WR / WW / RW. *)
  List.iter
    (fun (k, v) ->
      match resolve_ts t ~count:false ~start_ts:txn.Txn.start_ts k v with
      | Index.Final w when w <> txn.Txn.id ->
          let wv = Flat_index.get t.txn_vertex w in
          add_all_edges t wv vtx (Deps.WR k);
          Flat_index.Multi.iter t.overwriters k v (fun o ->
              if o <> txn.Txn.id then
                add_all_edges t vtx (Flat_index.get t.txn_vertex o) (Deps.RW k));
          if Txn.writes_key txn k then begin
            add_all_edges t wv vtx (Deps.WW k);
            Flat_index.Multi.iter t.readers k v (fun r ->
                if r <> txn.Txn.id then
                  add_all_edges t
                    (Flat_index.get t.txn_vertex r)
                    vtx (Deps.RW k));
            Flat_index.Multi.push t.overwriters k v txn.Txn.id
          end;
          Flat_index.Multi.push t.readers k v txn.Txn.id
      | _ -> () (* excluded by the screen *))
    (Txn.external_reads txn);
  (* Record writes for future resolution. *)
  List.iter
    (fun (k, v) ->
      Flat_index.Writers.set_final t.writers k v txn.Txn.id;
      window_install t k v)
    (Txn.final_writes txn);
  List.iter
    (fun (k, v) ->
      Flat_index.Writers.set_intermediate t.writers k v txn.Txn.id;
      mark_dead_now t k v)
    (Txn.intermediate_writes txn);
  (* Timestamp modes: extend the per-key version chains.  After the
     resolutions above, so a transaction never predicts its own
     in-flight writes. *)
  if t.ts_mode <> Ts.Ignore then begin
    List.iter
      (fun (k, v) ->
        push_chain t k ~commit_ts:txn.Txn.commit_ts ~writer:txn.Txn.id
          ~value:v)
      (Txn.final_writes txn);
    if txn.Txn.commit_ts > t.last_commit then
      t.last_commit <- txn.Txn.commit_ts
  end;
  (* SSER: real-time edges through the helper chain.  Commits arrive in
     commit_ts order (enforced by add_txn), so the commit vectors are
     already sorted — binary search directly, no rebuild. *)
  if t.level = Checker.SSER then begin
    let len = Int_vec.length t.commit_ts in
    let lo = ref 0 and hi = ref (len - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if Int_vec.get t.commit_ts mid + t.skew < txn.Txn.start_ts then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best >= 0 then
      add_raw_edge t (Int_vec.get t.commit_helper !best) vtx Deps.Rt_chain;
    let h = alloc_helper t in
    add_raw_edge t vtx h Deps.Rt_chain;
    if len > 0 then
      add_raw_edge t (Int_vec.get t.commit_helper (len - 1)) h Deps.Rt_chain;
    Int_vec.push t.commit_ts txn.Txn.commit_ts;
    Int_vec.push t.commit_helper h;
    t.last_commit <- txn.Txn.commit_ts
  end

(* --- watermark GC: compaction --------------------------------------- *)

let sp_gc = Obs.Trace.intern "online/gc"

(* One GC run: establish the feed frontiers, drop every version record
   whose death the whole fleet of sessions has passed, truncate the
   version chains and the SSER real-time index to the reachable suffix,
   pin every vertex a future edge can still name, and compact the graph
   below the smallest pinned order index (the watermark).  Returns the
   estimated words reclaimed.  Safe only under the documented stream
   discipline: sessions are serial, streams arrive in commit order, and
   every session that will ever feed has fed at least once before the
   first GC (a session joining later must not read versions older than
   the current frontier). *)
let gc t =
  if t.poisoned <> None || Int_vec.length t.sl_pos = 0 then 0
  else begin
    let t0 = Obs.Trace.enter () in
    let ns0 = Obs.Clock.now_ns () in
    let before = live_words t in
    (* Feed frontiers: H = the arrival position every session has
       passed, S = the commit-ts every session has passed. *)
    let h = ref max_int and s = ref max_int in
    for i = 0 to Int_vec.length t.sl_pos - 1 do
      if Int_vec.get t.sl_pos i < !h then h := Int_vec.get t.sl_pos i;
      if Int_vec.get t.sl_cts i < !s then s := Int_vec.get t.sl_cts i
    done;
    let h = !h and s = !s in
    (* 1. Version chains (ts modes): per key keep the suffix newer than
       S plus one boundary node (the newest with commit_ts <= S) — any
       future prediction lands in that suffix because session seriality
       puts every future start_ts above S.  Chain survivors protect
       their value records, keeping prediction and value resolution
       consistent. *)
    let protected_ = Flat_index.create ~capacity:16 () in
    if t.ts_mode <> Ts.Ignore then begin
      let new_head = Flat_index.create ~capacity:256 () in
      let nc = Int_vec.create 16 and nw = Int_vec.create 16 in
      let nv = Int_vec.create 16 and nn = Int_vec.create 16 in
      let scratch = Int_vec.create 32 in
      Flat_index.iter t.chain_head (fun k head ->
          Int_vec.clear scratch;
          let n = ref head and stop = ref false in
          while (not !stop) && !n >= 0 do
            Int_vec.push scratch !n;
            if Int_vec.get t.ch_commit !n <= s then stop := true
            else n := Int_vec.get t.ch_next !n
          done;
          (* re-push oldest-kept first so newest-first iteration (and
             therefore prediction) is preserved *)
          for i = Int_vec.length scratch - 1 downto 0 do
            let n = Int_vec.get scratch i in
            let slot = Int_vec.length nc in
            Int_vec.push nc (Int_vec.get t.ch_commit n);
            Int_vec.push nw (Int_vec.get t.ch_writer n);
            Int_vec.push nv (Int_vec.get t.ch_value n);
            Int_vec.push nn (Flat_index.get new_head k);
            Flat_index.set new_head k slot;
            let p =
              Flat_index.pack_pair ~num_keys:t.num_keys k
                (Int_vec.get t.ch_value n)
            in
            if p >= 0 then Flat_index.set protected_ p 1
          done);
      t.chain_head <- new_head;
      t.ch_commit <- nc;
      t.ch_writer <- nw;
      t.ch_value <- nv;
      t.ch_next <- nn
    end;
    (* 2. Drop dead version records whose death every session has
       passed. *)
    let keep_pair p =
      Flat_index.mem protected_ p
      ||
      let d = Flat_index.get t.dead_at p in
      not (d >= 0 && d < h)
    in
    t.writers <- Flat_index.Writers.keep t.writers keep_pair;
    t.readers <- Flat_index.Multi.keep t.readers keep_pair;
    t.overwriters <- Flat_index.Multi.keep t.overwriters keep_pair;
    t.extender <- Flat_index.Pairs.keep t.extender keep_pair;
    t.dead_at <- Flat_index.filtered t.dead_at keep_pair;
    (* 3. SSER real-time index: a future search runs with start_ts > S,
       so it lands at or after the position S itself lands at — keep
       that suffix. *)
    let rt_start =
      if t.level <> Checker.SSER then 0
      else begin
        let len = Int_vec.length t.commit_ts in
        let lo = ref 0 and hi = ref (len - 1) and best = ref (-1) in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if Int_vec.get t.commit_ts mid + t.skew < s then begin
            best := mid;
            lo := mid + 1
          end
          else hi := mid - 1
        done;
        Stdlib.max 0 !best
      end
    in
    (* 4. Pin every vertex a future edge can name — session-order
       predecessors, resolvable writers, reader/overwriter chain
       members, version-chain writers, surviving real-time helpers.
       The watermark W is the smallest order index among them: every
       vertex at or above W survives, everything below can never be
       traversed again (every future DFS is bounded below by the order
       index of a pinned endpoint). *)
    let pk = t.graph.Grow.pk in
    let w = ref max_int in
    let consider v =
      let o = Pearce_kelly.order_index pk v in
      if o < !w then w := o
    in
    let si = t.level = Checker.SI in
    let pin_txn id =
      if id <> History.init_id then begin
        let base = Flat_index.get t.txn_vertex id in
        if base >= 0 then begin
          consider base;
          if si then consider (base + 1)
        end
      end
    in
    Flat_index.Writers.iter_final t.writers pin_txn;
    Flat_index.Multi.iter_members t.readers pin_txn;
    Flat_index.Multi.iter_members t.overwriters pin_txn;
    Flat_index.iter t.session_last (fun _ id -> pin_txn id);
    for i = 0 to Int_vec.length t.ch_writer - 1 do
      pin_txn (Int_vec.get t.ch_writer i)
    done;
    if t.level = Checker.SSER then
      for i = rt_start to Int_vec.length t.commit_helper - 1 do
        consider (Int_vec.get t.commit_helper i)
      done;
    let w = !w in
    (* 5. Compact the graph below the watermark (the implicit initial
       transaction always survives — it has no in-edges, so edges from
       it always take the consistent-record path) and migrate the edge
       labels in the same pass. *)
    let init_vcount = vertices_per_txn t.level in
    let pn = Pearce_kelly.n pk in
    let keep = Array.make pn false in
    for v = 0 to t.next_vertex - 1 do
      keep.(v) <- v < init_vcount || Pearce_kelly.order_index pk v >= w
    done;
    let old_labels = t.graph.Grow.labels in
    let new_labels = Flat_index.create ~capacity:256 () in
    let remap =
      Pearce_kelly.compact pk ~keep ~on_edge:(fun ou ov nu nv ->
          let p = Flat_index.get old_labels (Grow.edge_key ou ov) in
          if p >= 0 then Flat_index.set new_labels (Grow.edge_key nu nv) p)
    in
    t.graph.Grow.labels <- new_labels;
    t.graph.Grow.capacity <- Pearce_kelly.n pk;
    (* 6. Re-home the vertex-keyed side tables under the remap. *)
    let old_vt = t.vertex_txn in
    let nvt = Int_vec.create 256 in
    for v = 0 to t.next_vertex - 1 do
      if remap.(v) >= 0 then Int_vec.push nvt (Int_vec.get old_vt v)
    done;
    t.vertex_txn <- nvt;
    let ntv = Flat_index.create ~capacity:256 () in
    let nseen = Flat_index.create ~capacity:256 () in
    Flat_index.set nseen History.init_id 1;
    Flat_index.iter t.txn_vertex (fun id base ->
        if base < pn && remap.(base) >= 0 then begin
          Flat_index.set ntv id remap.(base);
          Flat_index.set nseen id 1
        end);
    t.txn_vertex <- ntv;
    t.seen_ids <- nseen;
    if t.level = Checker.SSER then begin
      let len = Int_vec.length t.commit_ts in
      let ncts = Int_vec.create 256 and nch = Int_vec.create 256 in
      for i = rt_start to len - 1 do
        Int_vec.push ncts (Int_vec.get t.commit_ts i);
        Int_vec.push nch remap.(Int_vec.get t.commit_helper i)
      done;
      t.commit_ts <- ncts;
      t.commit_helper <- nch
    end;
    (* version-chain nodes reference writers by txn id, not vertex, so
       the chains themselves need no remap *)
    t.next_vertex <- Pearce_kelly.n pk;
    let after = live_words t in
    t.gc_floor <- after;
    t.gc_runs <- t.gc_runs + 1;
    let reclaimed = Stdlib.max 0 (before - after) in
    t.gc_reclaimed <- t.gc_reclaimed + reclaimed;
    t.gc_last_ns <- Obs.Clock.now_ns () - ns0;
    Obs.Trace.exit sp_gc t0;
    reclaimed
  end

(* Auto trigger: sample the live-word estimate every 64 feeds (it is
   O(live vertices) to compute) and compact past the policy ceiling. *)
let maybe_auto_gc t =
  if t.poisoned = None && t.gc_policy <> Gc_off && t.count land 63 = 0 then begin
    let lw = live_words t in
    let threshold =
      match t.gc_policy with
      | Gc_off -> max_int
      | Gc_auto -> Stdlib.max (2 * t.gc_floor) 65536
      | Gc_words n -> n
    in
    if lw > threshold then ignore (gc t)
  end

let add_txn_inner t (txn : Txn.t) =
  match t.poisoned with
  | Some v -> Violation v
  | None -> (
      if Flat_index.mem t.seen_ids txn.Txn.id || txn.Txn.id <= 0 then
        invalid_arg
          (Printf.sprintf "Online.add_txn: transaction id %d invalid or reused"
             txn.Txn.id);
      if
        (t.level = Checker.SSER || t.ts_mode <> Ts.Ignore)
        && txn.Txn.status = Txn.Committed
        && txn.Txn.commit_ts < t.last_commit
      then
        invalid_arg
          (if t.level = Checker.SSER then
             "Online.add_txn: SSER streams must arrive in commit order"
           else
             "Online.add_txn: timestamp modes need commit-order streams");
      Flat_index.set t.seen_ids txn.Txn.id 1;
      t.count <- t.count + 1;
      note_session t txn.Txn.session txn.Txn.commit_ts;
      match txn.Txn.status with
      | Txn.Aborted ->
          Array.iter
            (fun op ->
              match op with
              | Op.Write (k, v) ->
                  Flat_index.Writers.set_aborted t.writers k v txn.Txn.id;
                  note_aborted t k v
              | Op.Read _ -> ())
            txn.Txn.ops;
          Ok_so_far
      | Txn.Committed -> (
          let dup =
            List.find_opt
              (fun (k, v) -> resolve t k v <> Index.Nobody)
              (Txn.final_writes txn @ Txn.intermediate_writes txn)
          in
          match dup with
          | Some (k, v) ->
              poison t
                (Checker.Malformed
                   (Printf.sprintf "duplicate write of %d to x%d by T%d" v k
                      txn.Txn.id))
          | None -> (
              match
                Int_check.check_txn_with
                  ~resolve:(fun _ k v ->
                    resolve_ts t ~count:true ~start_ts:txn.Txn.start_ts k v)
                  txn
              with
              | viol :: _ -> poison t (Checker.Intra viol)
              | [] -> (
                  match
                    if t.level = Checker.SI then divergence_screen t txn
                    else None
                  with
                  | Some v -> poison t v
                  | None -> (
                      try
                        feed_committed t txn;
                        Ok_so_far
                      with Cycle_found v -> poison t v)))))

let sp_feed = Obs.Trace.intern "online/feed"

(* Not [with_span]: the closure it would allocate is the only thing
   between this wrapper and a zero-allocation disabled path. *)
let add_txn t (txn : Txn.t) =
  let t0 = Obs.Trace.enter () in
  let r = add_txn_inner t txn in
  maybe_auto_gc t;
  Obs.Trace.exit sp_feed t0;
  r

(* --- snapshot codec ------------------------------------------------ *)

(* Serializes the whole checker state directly — the flat int structures
   go to varints, no history replay.  Structures whose iteration order
   the cycle-witness DFS observes (PK adjacency + order, the Multi cons
   pools, the version-chain vectors) are written verbatim; hash layouts
   are not (unobservable).  A restored checker therefore renders
   byte-identical counterexamples and verdicts for any continuation of
   the stream.  Poisoned checkers are not snapshotted — the persistence
   layer stores their rendered verdict instead, which is all a poisoned
   session can ever produce again. *)

let level_byte = function Checker.SSER -> 0 | Checker.SER -> 1 | Checker.SI -> 2

let level_of_byte = function
  | 0 -> Checker.SSER
  | 1 -> Checker.SER
  | 2 -> Checker.SI
  | b -> Binio_core.fail "unknown level byte %d" b

let ts_byte = function Ts.Ignore -> 0 | Ts.Trust -> 1 | Ts.Verify -> 2

let ts_of_byte = function
  | 0 -> Ts.Ignore
  | 1 -> Ts.Trust
  | 2 -> Ts.Verify
  | b -> Binio_core.fail "unknown ts mode byte %d" b

let encode buf t =
  if t.poisoned <> None then
    invalid_arg "Online.encode: poisoned checkers are not snapshotted";
  Buffer.add_char buf (Char.chr (level_byte t.level));
  Binio_core.add_varint buf t.skew;
  Buffer.add_char buf (Char.chr (ts_byte t.ts_mode));
  Binio_core.add_uvarint buf t.graph.Grow.capacity;
  Binio_core.add_uvarint buf t.graph.Grow.edge_count;
  Pearce_kelly.encode buf t.graph.Grow.pk;
  Flat_index.encode buf t.graph.Grow.labels;
  Binio_core.add_uvarint buf t.next_vertex;
  Int_vec.encode buf t.vertex_txn;
  Flat_index.encode buf t.txn_vertex;
  Flat_index.Writers.encode buf t.writers;
  Flat_index.Multi.encode buf t.readers;
  Flat_index.Multi.encode buf t.overwriters;
  Flat_index.Pairs.encode buf t.extender;
  Flat_index.encode buf t.session_last;
  Flat_index.encode buf t.seen_ids;
  Int_vec.encode buf t.commit_ts;
  Int_vec.encode buf t.commit_helper;
  Binio_core.add_varint buf t.last_commit;
  Binio_core.add_uvarint buf t.count;
  Flat_index.encode buf t.chain_head;
  Int_vec.encode buf t.ch_commit;
  Int_vec.encode buf t.ch_writer;
  Int_vec.encode buf t.ch_value;
  Int_vec.encode buf t.ch_next;
  Binio_core.add_string buf (Bytes.unsafe_to_string t.ts_slow);
  Binio_core.add_uvarint buf t.ts_fast;
  Binio_core.add_uvarint buf t.ts_mismatched;
  (* watermark-GC state: a restored checker re-establishes the policy,
     the install windows and the frontiers, so compaction resumes where
     it left off *)
  Buffer.add_char buf
    (Char.chr (match t.gc_policy with Gc_off -> 0 | Gc_auto -> 1 | Gc_words _ -> 2));
  Binio_core.add_uvarint buf
    (match t.gc_policy with Gc_words n -> n | _ -> 0);
  Binio_core.add_uvarint buf t.gc_floor;
  Binio_core.add_uvarint buf t.gc_runs;
  Binio_core.add_uvarint buf t.gc_reclaimed;
  Binio_core.add_uvarint buf t.total_vertices;
  Binio_core.add_uvarint buf t.num_keys;
  Array.iter (Binio_core.add_varint buf) t.fin_cur;
  Array.iter (Binio_core.add_varint buf) t.fin_prev;
  Array.iter (Int_vec.encode buf) t.ab_pending;
  Flat_index.encode buf t.dead_at;
  Flat_index.encode buf t.sessions;
  Int_vec.encode buf t.sl_pos;
  Int_vec.encode buf t.sl_cts

let decode r =
  let level = level_of_byte (Binio_core.read_byte r) in
  let skew = Binio_core.read_varint r in
  let ts_mode = ts_of_byte (Binio_core.read_byte r) in
  let capacity = Binio_core.read_uvarint r in
  let edge_count = Binio_core.read_uvarint r in
  let pk = Pearce_kelly.decode r in
  let labels = Flat_index.decode r in
  if Pearce_kelly.n pk > capacity then
    Binio_core.fail "online snapshot: capacity %d below vertex count" capacity;
  let graph = { Grow.pk; capacity; edge_count; labels } in
  let next_vertex = Binio_core.read_uvarint r in
  let vertex_txn = Int_vec.decode r in
  let txn_vertex = Flat_index.decode r in
  let writers = Flat_index.Writers.decode r in
  let readers = Flat_index.Multi.decode r in
  let overwriters = Flat_index.Multi.decode r in
  let extender = Flat_index.Pairs.decode r in
  let session_last = Flat_index.decode r in
  let seen_ids = Flat_index.decode r in
  let commit_ts = Int_vec.decode r in
  let commit_helper = Int_vec.decode r in
  let last_commit = Binio_core.read_varint r in
  let count = Binio_core.read_uvarint r in
  let chain_head = Flat_index.decode r in
  let ch_commit = Int_vec.decode r in
  let ch_writer = Int_vec.decode r in
  let ch_value = Int_vec.decode r in
  let ch_next = Int_vec.decode r in
  let ts_slow = Bytes.of_string (Binio_core.read_string r) in
  let ts_fast = Binio_core.read_uvarint r in
  let ts_mismatched = Binio_core.read_uvarint r in
  let gc_policy =
    let b = Binio_core.read_byte r in
    let n = Binio_core.read_uvarint r in
    match b with
    | 0 -> Gc_off
    | 1 -> Gc_auto
    | 2 when n > 0 -> Gc_words n
    | b -> Binio_core.fail "unknown gc policy byte %d" b
  in
  let gc_floor = Binio_core.read_uvarint r in
  let gc_runs = Binio_core.read_uvarint r in
  let gc_reclaimed = Binio_core.read_uvarint r in
  let total_vertices = Binio_core.read_uvarint r in
  let num_keys = Binio_core.read_uvarint r in
  if num_keys < 0 || num_keys > Binio_core.remaining r then
    Binio_core.fail "online snapshot: num_keys %d overruns input" num_keys;
  let read_window () = Array.init num_keys (fun _ -> Binio_core.read_varint r) in
  let fin_cur = read_window () in
  let fin_prev = read_window () in
  let ab_pending = Array.init num_keys (fun _ -> Int_vec.decode r) in
  let dead_at = Flat_index.decode r in
  let sessions = Flat_index.decode r in
  let sl_pos = Int_vec.decode r in
  let sl_cts = Int_vec.decode r in
  if next_vertex <> Int_vec.length vertex_txn then
    Binio_core.fail "online snapshot: vertex map length %d <> next vertex %d"
      (Int_vec.length vertex_txn) next_vertex;
  if total_vertices < next_vertex then
    Binio_core.fail "online snapshot: total vertices %d below live %d"
      total_vertices next_vertex;
  if
    Int_vec.length sl_pos <> Int_vec.length sl_cts
    || Flat_index.length sessions <> Int_vec.length sl_pos
  then Binio_core.fail "online snapshot: session frontier tables disagree";
  {
    level;
    skew;
    ts_mode;
    num_keys;
    graph;
    next_vertex;
    vertex_txn;
    txn_vertex;
    writers;
    readers;
    overwriters;
    extender;
    session_last;
    seen_ids;
    commit_ts;
    commit_helper;
    last_commit;
    count;
    poisoned = None;
    chain_head;
    ch_commit;
    ch_writer;
    ch_value;
    ch_next;
    ts_slow;
    ts_fast;
    ts_mismatched;
    gc_policy;
    gc_floor;
    gc_runs;
    gc_reclaimed;
    gc_last_ns = 0;
    total_vertices;
    fin_cur;
    fin_prev;
    ab_pending;
    dead_at;
    sessions;
    sl_pos;
    sl_cts;
  }

let check_stream ?skew ?ts ?gc ~level ~num_keys txns =
  let t = create ?skew ?ts ?gc ~level ~num_keys () in
  let rec go n = function
    | [] -> Ok n
    | txn :: rest -> (
        match add_txn t txn with
        | Ok_so_far -> go (n + 1) rest
        | Violation v -> Error v)
  in
  go 0 txns
