(** Transactions: a finite sequence of operations executed by one session
    (paper Definition 1), together with the client-visible outcome and the
    logical start/finish times used for the real-time order. *)

type id = int

type status = Committed | Aborted

type t = {
  id : id;  (** unique; equals the transaction's index in its history *)
  session : int;  (** issuing session, [0] is reserved for the initial txn *)
  ops : Op.t array;  (** in program order *)
  status : status;
  start_ts : int;  (** logical time at which the transaction began *)
  commit_ts : int;  (** logical time at which it finished (commit or abort) *)
}

val make :
  id:id ->
  session:int ->
  ?status:status ->
  ?start_ts:int ->
  ?commit_ts:int ->
  Op.t list ->
  t
(** Timestamps default to [id] (both), giving a sequential real-time
    order that is convenient in tests. *)

val is_committed : t -> bool

val external_reads : t -> (Op.key * Op.value) list
(** [T |- R(x,v)] of the paper: for each object [x] read before any write
    to [x] within [t], the value of the *first* such read.  Ordered by
    first occurrence. *)

val final_writes : t -> (Op.key * Op.value) list
(** [T |- W(x,v)]: the last value written by [t] to each object it writes.
    Ordered by first write occurrence. *)

val intermediate_writes : t -> (Op.key * Op.value) list
(** Writes overwritten later within the same transaction; reading one of
    these from another transaction is the INTERMEDIATEREAD anomaly
    (Adya's G1b). *)

val reads_key : t -> Op.key -> bool
(** Does [t] read [x] before writing to it? *)

val writes_key : t -> Op.key -> bool

val read_of : t -> Op.key -> Op.value option
(** External read value of [x], if any. *)

val write_of : t -> Op.key -> Op.value option
(** Final written value of [x], if any. *)

val keys : t -> Op.key list
(** All keys accessed, in first-occurrence order. *)

val pp : Format.formatter -> t -> unit
val pp_brief : Format.formatter -> t -> unit
