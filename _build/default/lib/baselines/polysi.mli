(** The PolySI baseline (Huang et al., VLDB'23): snapshot-isolation
    checking of general histories via the polygraph and
    SAT-modulo-acyclicity — the tool MTC-SI is compared against
    (Figures 8 and 17).

    SI forbids dependency-graph cycles without two adjacent
    anti-dependency edges.  We encode this with a product construction:
    each transaction [T] becomes two vertices [T_d] (reached via a
    dependency) and [T_r] (reached via an anti-dependency); a dependency
    edge [T -> S] yields [T_d -> S_d] and [T_r -> S_d], an
    anti-dependency only [T_d -> S_r].  Product cycles are exactly the
    SI-forbidden cycles (no two consecutive anti-dependencies). *)

type stats = {
  constraints_total : int;
  constraints_pruned : int;
  construct_s : float;
  prune_s : float;
  encode_s : float;
  solve_s : float;
  sat_decisions : int;
  sat_conflicts : int;
}

type result = { si : bool; reason : string; stats : stats }

val check : History.t -> result

val total_s : stats -> float
val nonsolver_s : stats -> float
