lib/workload/spec.ml: Array Format Hashtbl List Op
