(* Unlike Mt_gen — which builds a Spec and needs a Scheduler run (and so
   the whole history in RAM) — this generator plays a perfectly serial
   execution itself: one pass, O(num_keys) state, each transaction
   handed to [emit] and dropped.  That is what lets `mtc gen --out-bin`
   stream multi-million-txn corpora straight to disk. *)

type params = {
  num_txns : int;
  num_keys : int;
  num_sessions : int;
  dist : Distribution.kind;
  seed : int;
  ts_skew : int;
  ts_lie : float;
}

let default =
  {
    num_txns = 100_000;
    num_keys = 10_000;
    num_sessions = 16;
    dist = Distribution.Uniform;
    seed = 42;
    ts_skew = 0;
    ts_lie = 0.0;
  }

let total_weight =
  List.fold_left (fun acc (_, w) -> acc + w) 0 Mt_gen.shape_weights

let sample_shape rng =
  let x = Rng.int rng total_weight in
  let rec pick acc = function
    | [ (s, _) ] -> s
    | (s, w) :: rest -> if x < acc + w then s else pick (acc + w) rest
    | [] -> assert false
  in
  pick 0 Mt_gen.shape_weights

let sample_two_keys dist rng =
  let x = Distribution.sample dist rng in
  let rec draw tries =
    if tries = 0 then (x, (x + 1) mod Distribution.size dist)
    else
      let y = Distribution.sample dist rng in
      if y <> x then (x, y) else draw (tries - 1)
  in
  draw 16

let generate p emit =
  if p.num_sessions <= 0 then invalid_arg "Stream_gen.generate: no sessions";
  if p.num_keys <= 0 then invalid_arg "Stream_gen.generate: no keys";
  if p.ts_skew < 0 then invalid_arg "Stream_gen.generate: negative ts_skew";
  if p.ts_lie < 0.0 || p.ts_lie > 1.0 then
    invalid_arg "Stream_gen.generate: ts_lie outside [0,1]";
  let rng = Rng.create p.seed in
  (* Timestamp perturbation draws from its own stream so the ops (and
     values) of a skewed or lying corpus are byte-identical with the
     clean corpus of the same seed — only the timestamps differ.  With
     both knobs at their defaults no draw ever happens and the emitted
     history is exactly the classic clean one. *)
  let ts_rng =
    if p.ts_skew > 0 || p.ts_lie > 0.0 then Some (Rng.create (p.seed lxor 0x7375)) else None
  in
  (* The (start, commit) window of transaction [i]: faithfully
     [(2i, 2i+1)]; a lie replaces it with the window of a random earlier
     transaction (claiming the work happened long ago — undetectable by
     values, exactly what certification must catch); a skew perturbs
     both endpoints by up to [ts_skew] ticks, commit clamped to start so
     windows stay well-formed. *)
  let window i =
    match ts_rng with
    | None -> (2 * i, (2 * i) + 1)
    | Some trng ->
        if p.ts_lie > 0.0 && i > 1 && Rng.chance trng p.ts_lie then
          let j = 1 + Rng.int trng (i - 1) in
          (2 * j, (2 * j) + 1)
        else if p.ts_skew > 0 then begin
          let d () = Rng.int trng ((2 * p.ts_skew) + 1) - p.ts_skew in
          let s = (2 * i) + d () in
          let c = (2 * i) + 1 + d () in
          (s, Stdlib.max s c)
        end
        else (2 * i, (2 * i) + 1)
  in
  let dist = Distribution.make p.dist ~n:p.num_keys in
  (* Serial-execution state: the current (committed) value of each key,
     plus a global fresh-value counter.  The initial transaction's
     implicit zeros are never reissued, so values are globally unique
     and every read resolves to its writer's final write — the
     histories pass SSER (hence SER and SI) by construction. *)
  let cur = Array.make p.num_keys 0 in
  let next = ref 0 in
  let fresh k =
    incr next;
    let v = !next in
    cur.(k) <- v;
    v
  in
  let read k = Op.Read (k, cur.(k)) in
  let write k = Op.Write (k, fresh k) in
  (* [write] mutates [cur], so the ops of a shape must be built in
     program order — a list literal would evaluate right-to-left and
     make reads observe their own transaction's later writes. *)
  let seq builders = List.map (fun f -> f ()) builders in
  for i = 1 to p.num_txns do
    let ops =
      match sample_shape rng with
      | Mini.R -> [ read (Distribution.sample dist rng) ]
      | Mini.RW ->
          let k = Distribution.sample dist rng in
          seq [ (fun () -> read k); (fun () -> write k) ]
      | Mini.RR ->
          let x, y = sample_two_keys dist rng in
          [ read x; read y ]
      | Mini.RRW_fst ->
          let x, y = sample_two_keys dist rng in
          seq [ (fun () -> read x); (fun () -> read y); (fun () -> write x) ]
      | Mini.RRW_snd ->
          let x, y = sample_two_keys dist rng in
          seq [ (fun () -> read x); (fun () -> read y); (fun () -> write y) ]
      | Mini.RRWW ->
          let x, y = sample_two_keys dist rng in
          seq
            [ (fun () -> read x); (fun () -> read y); (fun () -> write x);
              (fun () -> write y) ]
      | Mini.RWRW ->
          let x, y = sample_two_keys dist rng in
          seq
            [ (fun () -> read x); (fun () -> write x); (fun () -> read y);
              (fun () -> write y) ]
    in
    let start_ts, commit_ts = window i in
    emit
      (Txn.make ~id:i
         ~session:(1 + ((i - 1) mod p.num_sessions))
         ~start_ts ~commit_ts ops)
  done
