(* Tests for the parallel checking path of PR6: sharded inference must
   be bit-identical to the sequential pipeline for any pool size (edge
   order included — the frozen CSR is compared in traversal order, not
   as a sorted multiset), verdicts and rendered counterexamples must be
   byte-identical across -j, the mmap'd Binio source must behave exactly
   like the string reader, and the binary history codec must round-trip
   sequentially and in parallel. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let qtest = QCheck_alcotest.to_alcotest

(* --- sharded inference: representation equality across pool sizes --- *)

(* Edges in CSR traversal order: equal lists <=> equal offsets/targets/
   labels arrays, which is the determinism contract (stronger than the
   multiset equality test_flat already covers). *)
let csr_edges ?pool h =
  let idx = Index.build ?pool h in
  match Deps.build ?pool ~rt:Deps.Rt_sweep idx with
  | Error e -> Error e
  | Ok d ->
      let c = Deps.freeze d in
      let acc = ref [] in
      for u = 0 to Csr.n c - 1 do
        Csr.iter_succ c u (fun v lab -> acc := (u, lab, v) :: !acc)
      done;
      Ok (List.rev !acc)

let prop_pool_csr_identical =
  QCheck2.Test.make ~name:"sharded CSR bit-identical for any pool size"
    ~count:25 ~print:Test_flat.print_config Test_flat.config_gen (fun cfg ->
      let h = Test_flat.history_of cfg in
      let base = csr_edges h in
      List.for_all
        (fun size ->
          Pool.with_pool ~size (fun p -> csr_edges ~pool:p h) = base)
        [ 2; 4 ])

(* The user-visible contract of `mtc check -j`: same verdict and same
   rendered counterexample, byte for byte, at every level. *)
let render ?pool level h =
  match Checker.check ?pool level h with
  | Checker.Pass -> "PASS"
  | Checker.Fail v -> Report.render h level v

let prop_pool_report_identical =
  QCheck2.Test.make ~name:"verdict and report byte-identical across -j"
    ~count:25 ~print:Test_flat.print_config Test_flat.config_gen (fun cfg ->
      let h = Test_flat.history_of cfg in
      List.for_all
        (fun level ->
          let base = render level h in
          List.for_all
            (fun size ->
              Pool.with_pool ~size (fun p -> render ~pool:p level h) = base)
            [ 2; 4 ])
        [ Checker.SSER; Checker.SER; Checker.SI ])

(* --- Stream_gen: clean by construction --- *)

let stream_history ~txns ~keys ~sessions ~seed =
  let p =
    { Stream_gen.default with num_txns = txns; num_keys = keys;
      num_sessions = sessions; dist = Distribution.Uniform; seed }
  in
  let acc = ref [] in
  Stream_gen.generate p (fun t -> acc := t :: !acc);
  History.of_array ~num_keys:keys ~num_sessions:sessions
    (Array.of_list (History.init_txn ~num_keys:keys :: List.rev !acc))

let prop_stream_gen_clean =
  QCheck2.Test.make ~name:"Stream_gen histories pass SSER" ~count:10
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* keys = int_range 1 50 in
      let* sessions = int_range 1 12 in
      return (seed, keys, sessions))
    ~print:(fun (s, k, se) -> Printf.sprintf "seed=%d keys=%d sessions=%d" s k se)
    (fun (seed, keys, sessions) ->
      let h = stream_history ~txns:400 ~keys ~sessions ~seed in
      Checker.check Checker.SSER h = Checker.Pass)

(* --- Binio.Source.map_file vs the string reader --- *)

let with_tmp_file content f =
  let path = Filename.temp_file "mtc_par" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc content);
      f path)

let test_mmap_matches_string () =
  (* Pseudo-random bytes, larger than a page so the map spans several. *)
  let data =
    String.init 10_000 (fun i -> Char.chr (((i * 131) + (i / 256)) land 0xff))
  in
  with_tmp_file data (fun path ->
      let src = Binio.Source.map_file path in
      checki "mapped length" (String.length data) (Binio.Source.length src);
      (match src with
      | Binio.Source.Map _ -> ()
      | Binio.Source.Str _ -> Alcotest.fail "non-empty file must mmap");
      let rm = Binio.reader_of_source src in
      let rs = Binio.reader data in
      let ok = ref true in
      for _ = 1 to 1_000 do
        if Binio.read_byte rm <> Binio.read_byte rs then ok := false
      done;
      checkb "bytes equal" true !ok;
      checkb "chunk equal" true
        (Binio.read_bytes rm 5_000 = Binio.read_bytes rs 5_000);
      Binio.seek rm 9_990;
      Binio.seek rs 9_990;
      checkb "tail equal after seek" true
        (Binio.read_bytes rm 10 = Binio.read_bytes rs 10);
      checkb "mapped reader at end" true (Binio.at_end rm))

let test_mmap_empty_file () =
  with_tmp_file "" (fun path ->
      let src = Binio.Source.map_file path in
      checki "empty length" 0 (Binio.Source.length src);
      (* a zero-length file cannot be mapped; the source degrades to an
         empty string and every read fails like the string reader's *)
      (match src with
      | Binio.Source.Str "" -> ()
      | _ -> Alcotest.fail "empty file must become Str \"\"");
      let r = Binio.reader_of_source src in
      checkb "read past end raises" true
        (try
           ignore (Binio.read_byte r);
           false
         with Binio.Decode_error _ -> true))

let test_mmap_truncation_matches_string () =
  (* Every prefix of an encoded txn must make both readers do the same
     thing: decode the same value or raise Decode_error. *)
  let buf = Buffer.create 64 in
  Binio.add_txn buf
    (Txn.make ~id:3 ~session:1 ~start_ts:5 ~commit_ts:6
       [ Op.Read (0, 0); Op.Write (1, 1 lsl 40) ]);
  let s = Buffer.contents buf in
  let decode_via r =
    match Binio.read_txn r with
    | t -> Ok t
    | exception Binio.Decode_error _ -> Error ()
  in
  let ok = ref true in
  for cut = 0 to String.length s do
    let frag = String.sub s 0 cut in
    with_tmp_file frag (fun path ->
        let via_map =
          decode_via (Binio.reader_of_source (Binio.Source.map_file path))
        in
        let via_str = decode_via (Binio.reader frag) in
        if via_map <> via_str then ok := false;
        if cut < String.length s && via_map <> Error () then ok := false)
  done;
  checkb "every truncation point agrees with the string reader" true !ok

let test_mmap_varint_page_boundary () =
  (* A multi-byte varint whose bytes straddle the 4096 page boundary. *)
  let v = 123_456_789_012_345 in
  let buf = Buffer.create 5_000 in
  Buffer.add_string buf (String.make 4_093 '\x7f');
  Binio.add_uvarint buf v;
  with_tmp_file (Buffer.contents buf) (fun path ->
      let r = Binio.reader_of_source ~pos:4_093 (Binio.Source.map_file path) in
      checkb "varint decodes across the page boundary" true
        (Binio.read_uvarint r = v))

(* --- the binary history format --- *)

let test_bin_roundtrip () =
  let h = Test_flat.history_of (5, 12, 150, 4, Isolation.Serializable) in
  with_tmp_file "" (fun path ->
      (* A tiny block size forces many blocks, so the parallel loader
         actually has ranges to hand out. *)
      Codec.save_bin ~block_size:7 path h;
      (match Codec.load_bin path with
      | Error e -> Alcotest.fail e
      | Ok h2 ->
          checkb "sequential round-trip" true
            (Codec.to_string h = Codec.to_string h2));
      Pool.with_pool ~size:3 (fun p ->
          match Codec.load_bin ~pool:p path with
          | Error e -> Alcotest.fail e
          | Ok h2 ->
              checkb "parallel round-trip" true
                (Codec.to_string h = Codec.to_string h2));
      match Codec.load path with
      | Error e -> Alcotest.fail e
      | Ok h2 ->
          checkb "auto-sniffed round-trip" true
            (Codec.to_string h = Codec.to_string h2))

let test_bin_faulty_roundtrip () =
  (* Odd seed: the engine runs with a fault, so the file carries aborted
     transactions and real anomalies; the verdict must survive disk. *)
  let h = Test_flat.history_of (7, 8, 150, 4, Isolation.Serializable) in
  with_tmp_file "" (fun path ->
      Codec.save_bin ~block_size:16 path h;
      match Codec.load_bin path with
      | Error e -> Alcotest.fail e
      | Ok h2 ->
          checkb "faulty history round-trips" true
            (Codec.to_string h = Codec.to_string h2);
          checkb "verdict survives the disk round-trip" true
            (Test_flat.outcome_kind (Checker.check Checker.SER h)
            = Test_flat.outcome_kind (Checker.check Checker.SER h2)))

let test_bin_corrupt () =
  let h = Test_flat.history_of (6, 10, 80, 3, Isolation.Serializable) in
  with_tmp_file "" (fun path ->
      Codec.save_bin path h;
      let s = In_channel.with_open_bin path In_channel.input_all in
      let is_error content =
        with_tmp_file content (fun p ->
            match Codec.load_bin p with Error _ -> true | Ok _ -> false)
      in
      checkb "empty file rejected" true (is_error "");
      checkb "bad magic rejected" true
        (is_error ("mtcbin2\n" ^ String.sub s 8 (String.length s - 8)));
      checkb "truncated tail rejected" true
        (is_error (String.sub s 0 (String.length s - 5)));
      checkb "truncated header rejected" true (is_error (String.sub s 0 10));
      let flipped = Bytes.of_string s in
      (* Flip a byte inside the footer offset table: offsets go out of
         bounds or inconsistent, and the loader must say so. *)
      Bytes.set flipped
        (Bytes.length flipped - 14)
        (Char.chr
           (Char.code (Bytes.get flipped (Bytes.length flipped - 14)) lxor 0x7f));
      checkb "corrupted footer rejected" true (is_error (Bytes.to_string flipped)))

let test_bin_writer_validates () =
  with_tmp_file "" (fun path ->
      let w = Codec.Bin_writer.create ~num_keys:4 ~num_sessions:2 path in
      let raises f = try f (); false with Invalid_argument _ -> true in
      checkb "id gap rejected" true
        (raises (fun () ->
             Codec.Bin_writer.add w
               (Txn.make ~id:2 ~session:1 ~start_ts:1 ~commit_ts:2 [])));
      Codec.Bin_writer.add w
        (Txn.make ~id:1 ~session:1 ~start_ts:1 ~commit_ts:2 [ Op.Read (0, 0) ]);
      checkb "session out of range rejected" true
        (raises (fun () ->
             Codec.Bin_writer.add w
               (Txn.make ~id:2 ~session:3 ~start_ts:3 ~commit_ts:4 [])));
      checkb "key out of range rejected" true
        (raises (fun () ->
             Codec.Bin_writer.add w
               (Txn.make ~id:2 ~session:2 ~start_ts:3 ~commit_ts:4
                  [ Op.Write (4, 9) ])));
      Codec.Bin_writer.close w;
      Codec.Bin_writer.close w (* idempotent *);
      match Codec.load_bin path with
      | Error e -> Alcotest.fail e
      | Ok h -> checki "one accepted txn" 2 (Array.length h.History.txns))

let prop_bin_roundtrip =
  QCheck2.Test.make ~name:"bin round-trip == text round-trip (any pool)"
    ~count:20 ~print:Test_flat.print_config Test_flat.config_gen (fun cfg ->
      let h = Test_flat.history_of cfg in
      with_tmp_file "" (fun path ->
          Codec.save_bin ~block_size:13 path h;
          let seq = Codec.load_bin path in
          let par = Pool.with_pool ~size:2 (fun p -> Codec.load_bin ~pool:p path) in
          match (seq, par) with
          | Ok a, Ok b ->
              Codec.to_string a = Codec.to_string h
              && Codec.to_string b = Codec.to_string h
          | _ -> false))

let suite =
  [
    qtest prop_pool_csr_identical;
    qtest prop_pool_report_identical;
    qtest prop_stream_gen_clean;
    Alcotest.test_case "mmap reader == string reader" `Quick
      test_mmap_matches_string;
    Alcotest.test_case "mmap of empty file" `Quick test_mmap_empty_file;
    Alcotest.test_case "mmap truncation == string truncation" `Quick
      test_mmap_truncation_matches_string;
    Alcotest.test_case "varint across page boundary" `Quick
      test_mmap_varint_page_boundary;
    Alcotest.test_case "bin round-trip (seq, par, sniffed)" `Quick
      test_bin_roundtrip;
    Alcotest.test_case "bin round-trip of a faulty history" `Quick
      test_bin_faulty_roundtrip;
    Alcotest.test_case "bin corrupt inputs rejected" `Quick test_bin_corrupt;
    Alcotest.test_case "bin writer validates input" `Quick
      test_bin_writer_validates;
    qtest prop_bin_roundtrip;
  ]
