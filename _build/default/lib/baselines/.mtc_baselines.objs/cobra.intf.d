lib/baselines/cobra.mli: History
