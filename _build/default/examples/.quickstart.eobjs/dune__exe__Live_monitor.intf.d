examples/live_monitor.mli:
