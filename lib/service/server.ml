(* The MTC checking daemon: an accept loop multiplexing many client
   sessions over Unix-domain and TCP sockets.

   Threading model — systhreads for the I/O framing, domains for the
   checking.  OCaml systhreads share one runtime lock, so with a worker
   thread per session the checkers of concurrent sessions serialized on
   that lock and aggregate throughput *fell* as sessions were added.
   Instead:

   - one acceptor systhread per listen address;
   - one reader systhread per connection, which parses frames and
     enqueues work onto per-session bounded queues (blocking when a
     queue is full — the hard backpressure — and emitting advisory
     [Throttle] / [Resume] frames around the high-water mark);
   - a fixed array of {e shards}, each a run queue of sessions serviced
     by one loop; the loops execute on a {!Pool} of worker domains (a
     coordinator systhread participates via [Pool.run]), so N sessions
     check on up to [config.shards] cores in parallel.  A session is
     pinned to shard [sid mod shards] for its whole life: exactly one
     shard ever touches a session's {!Online.t}, items drain in FIFO
     order, and the shard is the only writer of the session's [Verdict]
     frames — verdicts and counterexamples are bit-identical to the
     single-threaded server;
   - one janitor systhread closing idle sessions.

   Poisoned sessions (a violation verdict was issued) keep answering
   every further feed/sync with the identical rendered counterexample —
   the checker itself guarantees it never mutates once poisoned.

   Graceful shutdown ({!stop}, wired to SIGTERM by {!run}) shuts the
   ingress half of every connection, lets the shards drain what was
   already queued, then sends [Session_closed]+[Bye] and closes. *)

type addr = A_unix of string | A_tcp of string * int

let addr_to_string = function
  | A_unix path -> "unix:" ^ path
  | A_tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Result.Error "empty unix socket path"
      else Ok (A_unix path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Result.Error (Printf.sprintf "tcp address %S needs host:port" rest)
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 ->
              Ok (A_tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Result.Error (Printf.sprintf "bad tcp port %S" port)))
  | _ ->
      Result.Error
        (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)

type config = {
  listen : addr list;
  queue_capacity : int;  (** per-session ingress bound *)
  idle_timeout : float;  (** seconds; <= 0 disables *)
  drain_delay : float;
      (** artificial per-item worker delay (seconds) — a test/bench knob
          to provoke backpressure deterministically; 0 in production *)
  server_name : string;
  metrics : Metrics.t;
  max_keys : int;  (** largest accepted [num_keys] in [Open_session] *)
  shards : int;  (** checking shards (domains); [<= 0] = auto *)
  metrics_port : int option;
      (** Prometheus exposition on 127.0.0.1:port; 0 = ephemeral *)
}

let default_config =
  {
    listen = [];
    queue_capacity = 1024;
    idle_timeout = 0.0;
    drain_delay = 0.0;
    server_name = "mtc-serve/1";
    metrics = Metrics.global;
    max_keys = 1 lsl 22;
    shards = 0;
    metrics_port = None;
  }

(* ------------------------------------------------------------------ *)

type item =
  | I_feed of int * Txn.t  (** seq, txn *)
  | I_sync of int  (** seq *)
  | I_close of Wire.close_reason

type session = {
  sid : int;
  online : Online.t;
  sconn : conn;  (** the connection this session speaks through *)
  shard : shard;  (** fixed home shard: [sid mod shards] *)
  queue : item Queue.t;
  mutable queued : int;
  mutable throttled : bool;
  mutable closing : bool;  (** an [I_close] is queued; drop later frames *)
  mutable abandoned : bool;  (** connection died; shard must bail out *)
  mutable on_runq : bool;  (** guarded by [shard.shmu] *)
  mutable finished : bool;
      (** terminal (closed / abandoned / protocol error); guarded by
          [smu], announced on [nonfull] *)
  smu : Mutex.t;
  nonfull : Condition.t;
  mutable last_activity : float;
  mutable poisoned_verdict : Wire.verdict option;
}

and conn = {
  fd : Unix.file_descr;
  out : Wire.out_bufs;
  out_mu : Mutex.t;
  mutable out_dead : bool;  (** peer unreachable or fd closed *)
  sessions : (int, session) Hashtbl.t;
  closed_sids : (int, unit) Hashtbl.t;
      (** sessions that lived on this connection and are gone: frames
          racing the (already sent) [Session_closed] are dropped rather
          than answered with an unattributable unknown-session error *)
  cmu : Mutex.t;
  mutable draining : bool;  (** server shutdown: drain, then close *)
}

and shard = {
  runq : session Queue.t;  (** sessions with work, each at most once *)
  shmu : Mutex.t;
  shcv : Condition.t;
}

type t = {
  config : config;
  mutable listeners : (Unix.file_descr * addr) list;
  mutable conns : conn list;
  mutable next_sid : int;
  rmu : Mutex.t;
  mutable stop_requested : bool;
  shards : shard array;
  pool : Pool.t;
  mutable shards_stop : bool;  (** written under every shard's [shmu] *)
  mutable shard_runner : Thread.t option;
  mutable accepters : Thread.t list;
  mutable conn_threads : Thread.t list;
  mutable janitor : Thread.t option;
  mutable metrics_listener : (Unix.file_descr * int) option;
  mutable metrics_thread : Thread.t option;
}

let bound_addrs t = List.map snd t.listeners
let metrics_port t = Option.map snd t.metrics_listener

let stopping t =
  Mutex.lock t.rmu;
  let s = t.stop_requested in
  Mutex.unlock t.rmu;
  s

(* Frame egress: serialized per connection; errors latch [out_dead] so a
   dead peer cannot wedge a worker. *)
let send t conn frame =
  Mutex.lock conn.out_mu;
  (if not conn.out_dead then
     try
       Wire.write_frame conn.fd conn.out frame;
       Metrics.frame_out t.config.metrics
     with Unix.Unix_error _ | Sys_error _ -> conn.out_dead <- true);
  Mutex.unlock conn.out_mu

(* ------------------------------------------------------------------ *)
(* Shards: the checking side.  A session with pending work sits on its
   home shard's run queue (at most once — [on_runq]); the shard loop pops
   it and drains its item queue. *)

let now () = Unix.gettimeofday ()

let sp_server_feed = Obs.Trace.intern "server/feed"

let render_violation level v =
  let anomaly = Option.map Anomaly.name (Report.classify v) in
  let rendered =
    Format.asprintf "%s violation%s: %a"
      (Checker.level_name level)
      (match anomaly with Some a -> Printf.sprintf " [%s]" a | None -> "")
      Checker.pp_violation v
  in
  Wire.V_violation { anomaly; rendered }

let low_water capacity = Stdlib.max 1 (capacity / 4)

(* Make the session's shard service it; a no-op if it is already queued
   (the shard re-checks the item queue before going idle). *)
let schedule s =
  let sh = s.shard in
  Mutex.lock sh.shmu;
  if not s.on_runq then begin
    s.on_runq <- true;
    Queue.push s sh.runq;
    Condition.signal sh.shcv
  end;
  Mutex.unlock sh.shmu

(* Terminal state: wake anything blocked on the session (the reader in
   [enqueue], [teardown]) and drop it from the connection's table. *)
let finish s =
  Mutex.lock s.smu;
  s.finished <- true;
  Condition.broadcast s.nonfull;
  Mutex.unlock s.smu;
  let conn = s.sconn in
  Mutex.lock conn.cmu;
  Hashtbl.remove conn.sessions s.sid;
  Hashtbl.replace conn.closed_sids s.sid ();
  Mutex.unlock conn.cmu

(* Drain everything currently queued for [s]; runs on [s.shard] only, so
   per-session processing is single-threaded and FIFO even though many
   sessions progress in parallel on different shards. *)
let process_session t s =
  let conn = s.sconn in
  let m = t.config.metrics in
  let rec loop () =
    Mutex.lock s.smu;
    if s.finished then Mutex.unlock s.smu (* stale run-queue entry *)
    else if s.abandoned then begin
      (* connection is gone: nothing to send, just disappear *)
      Mutex.unlock s.smu;
      finish s
    end
    else if s.queued = 0 then Mutex.unlock s.smu (* idle until rescheduled *)
    else begin
      let item = Queue.pop s.queue in
      s.queued <- s.queued - 1;
      let resume =
        if s.throttled && s.queued <= low_water t.config.queue_capacity then begin
          s.throttled <- false;
          true
        end
        else false
      in
      (* broadcast: the reader and the janitor can both be waiting *)
      Condition.broadcast s.nonfull;
      Mutex.unlock s.smu;
      if resume then send t conn (Wire.Resume { sid = s.sid });
      if t.config.drain_delay > 0.0 then Unix.sleepf t.config.drain_delay;
      match item with
      | I_feed (seq, txn) -> (
          match s.poisoned_verdict with
          | Some v ->
              (* poisoned: same counterexample, forever *)
              send t conn (Wire.Verdict { sid = s.sid; seq; verdict = v });
              loop ()
          | None -> (
              let w0 = Gc.minor_words () in
              let sp0 = Obs.Trace.enter () in
              let t0 = now () in
              match Online.add_txn s.online txn with
              | Online.Ok_so_far ->
                  Obs.Trace.exit sp_server_feed sp0;
                  Metrics.feed m
                    ~ns:(int_of_float ((now () -. t0) *. 1e9))
                    ~words:(int_of_float (Gc.minor_words () -. w0));
                  loop ()
              | Online.Violation v ->
                  Obs.Trace.exit sp_server_feed sp0;
                  let verdict = render_violation (Online.level s.online) v in
                  s.poisoned_verdict <- Some verdict;
                  Metrics.feed m
                    ~ns:(int_of_float ((now () -. t0) *. 1e9))
                    ~words:(int_of_float (Gc.minor_words () -. w0));
                  Metrics.violation m;
                  send t conn (Wire.Verdict { sid = s.sid; seq; verdict });
                  loop ()
              | exception Invalid_argument msg ->
                  (* id reuse / SSER order: session-fatal protocol misuse *)
                  Mutex.lock s.smu;
                  s.closing <- true;
                  Mutex.unlock s.smu;
                  Metrics.protocol_error m;
                  send t conn
                    (Wire.Session_closed
                       { sid = s.sid; reason = Wire.R_protocol msg });
                  Metrics.session_closed m;
                  finish s))
      | I_sync seq ->
          Metrics.sync m;
          let verdict =
            match s.poisoned_verdict with
            | Some v -> v
            | None -> Wire.V_ok (Online.txns_seen s.online)
          in
          send t conn (Wire.Verdict { sid = s.sid; seq; verdict });
          loop ()
      | I_close reason ->
          send t conn (Wire.Session_closed { sid = s.sid; reason });
          Metrics.session_closed m;
          finish s
    end
  in
  loop ()

let rec shard_loop t sh =
  Mutex.lock sh.shmu;
  while Queue.is_empty sh.runq && not t.shards_stop do
    Condition.wait sh.shcv sh.shmu
  done;
  if Queue.is_empty sh.runq then Mutex.unlock sh.shmu (* stopping, drained *)
  else begin
    let s = Queue.pop sh.runq in
    s.on_runq <- false;
    Mutex.unlock sh.shmu;
    process_session t s;
    shard_loop t sh
  end

(* ------------------------------------------------------------------ *)
(* Per-connection reader. *)

let session_alive s = not (s.closing || s.abandoned)

(* Enqueue with hard backpressure: blocks this connection's reader while
   the session queue is full (TCP then pushes back on the client), with
   an advisory [Throttle] the first time the mark is hit. *)
let enqueue t conn s item =
  Mutex.lock s.smu;
  s.last_activity <- now ();
  let announce =
    if s.queued >= t.config.queue_capacity && not s.throttled then begin
      s.throttled <- true;
      Some s.queued
    end
    else None
  in
  (match announce with
  | Some queued ->
      Mutex.unlock s.smu;
      Metrics.throttle t.config.metrics;
      send t conn (Wire.Throttle { sid = s.sid; queued });
      Mutex.lock s.smu
  | None -> ());
  while s.queued >= t.config.queue_capacity && session_alive s do
    Condition.wait s.nonfull s.smu
  done;
  let pushed =
    if session_alive s then begin
      (match item with I_close _ -> s.closing <- true | _ -> ());
      Queue.push item s.queue;
      s.queued <- s.queued + 1;
      Metrics.queue_depth t.config.metrics s.queued;
      true
    end
    else false
  in
  Mutex.unlock s.smu;
  if pushed then schedule s

let open_session t conn ~level ~num_keys ~skew ~ts =
  Mutex.lock t.rmu;
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  Mutex.unlock t.rmu;
  let s =
    {
      sid;
      online = Online.create ~skew ~ts ~level ~num_keys ();
      sconn = conn;
      shard = t.shards.(sid mod Array.length t.shards);
      queue = Queue.create ();
      queued = 0;
      throttled = false;
      closing = false;
      abandoned = false;
      on_runq = false;
      finished = false;
      smu = Mutex.create ();
      nonfull = Condition.create ();
      last_activity = now ();
      poisoned_verdict = None;
    }
  in
  Mutex.lock conn.cmu;
  Hashtbl.replace conn.sessions sid s;
  Mutex.unlock conn.cmu;
  Metrics.session_opened t.config.metrics;
  s

let find_session conn sid =
  Mutex.lock conn.cmu;
  let s = Hashtbl.find_opt conn.sessions sid in
  Mutex.unlock conn.cmu;
  match s with Some s when session_alive s -> Some s | _ -> None

(* A frame for a session that existed here but is closed or closing: the
   client has a [Session_closed] in flight (or already delivered), so
   answering with an unknown-session [Error] would only be misattributed
   by the single-threaded client to whatever it asks next. *)
let session_was_here conn sid =
  Mutex.lock conn.cmu;
  let r = Hashtbl.mem conn.closed_sids sid || Hashtbl.mem conn.sessions sid in
  Mutex.unlock conn.cmu;
  r

let sessions_snapshot conn =
  Mutex.lock conn.cmu;
  let ss = Hashtbl.fold (fun _ s acc -> s :: acc) conn.sessions [] in
  Mutex.unlock conn.cmu;
  ss

(* Tear the connection down.  [drain = true] lets every session's shard
   finish the items already queued before it says goodbye; [drain =
   false] (mid-frame disconnect, protocol error) abandons them.  Either
   way the shard is the one to finish the session — we wait for its
   [finished] flag where the seed joined a worker thread. *)
let teardown t conn ~drain ~reason =
  let ss = sessions_snapshot conn in
  List.iter
    (fun s ->
      if drain then enqueue t conn s (I_close reason)
      else begin
        Mutex.lock s.smu;
        s.abandoned <- true;
        Condition.broadcast s.nonfull;
        Mutex.unlock s.smu;
        schedule s
      end)
    ss;
  List.iter
    (fun s ->
      Mutex.lock s.smu;
      while not s.finished do
        Condition.wait s.nonfull s.smu
      done;
      Mutex.unlock s.smu)
    ss;
  if drain then send t conn Wire.Bye;
  Mutex.lock conn.out_mu;
  conn.out_dead <- true;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.unlock conn.out_mu;
  Mutex.lock t.rmu;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.rmu

let conn_loop t conn =
  let m = t.config.metrics in
  let fail_handshake code msg =
    send t conn (Wire.Error { code; msg });
    Metrics.protocol_error m;
    teardown t conn ~drain:false ~reason:Wire.R_requested
  in
  match Wire.read_frame conn.fd with
  | Ok (Some (Wire.Hello { version })) when version = Wire.version ->
      Metrics.frame_in m;
      send t conn (Wire.Welcome { version = Wire.version; server = t.config.server_name });
      let rec loop () =
        match Wire.read_frame conn.fd with
        | Ok None ->
            (* clean EOF: drain what was accepted, close quietly *)
            teardown t conn ~drain:true
              ~reason:(if conn.draining then Wire.R_shutdown else Wire.R_requested)
        | Result.Error _ when conn.draining ->
            teardown t conn ~drain:true ~reason:Wire.R_shutdown
        | Result.Error _ ->
            (* mid-frame disconnect or garbage: abandon this connection
               (and only this connection) *)
            Metrics.protocol_error m;
            teardown t conn ~drain:false ~reason:Wire.R_requested
        | Ok (Some frame) -> (
            Metrics.frame_in m;
            match frame with
            | Wire.Open_session { level; num_keys; skew; ts } ->
                if num_keys < 1 || num_keys > t.config.max_keys then begin
                  send t conn
                    (Wire.Error
                       {
                         code = Wire.err_bad_frame;
                         msg =
                           Printf.sprintf "num_keys %d out of [1,%d]" num_keys
                             t.config.max_keys;
                       });
                  loop ()
                end
                else begin
                  let s = open_session t conn ~level ~num_keys ~skew ~ts in
                  send t conn (Wire.Session_opened { sid = s.sid });
                  loop ()
                end
            | Wire.Feed { sid; seq; txn } ->
                (match find_session conn sid with
                | Some s -> enqueue t conn s (I_feed (seq, txn))
                | None when session_was_here conn sid -> ()
                | None ->
                    send t conn
                      (Wire.Error
                         {
                           code = Wire.err_unknown_session;
                           msg = Printf.sprintf "no session %d" sid;
                         }));
                loop ()
            | Wire.Sync { sid; seq } ->
                (match find_session conn sid with
                | Some s -> enqueue t conn s (I_sync seq)
                | None when session_was_here conn sid -> ()
                | None ->
                    send t conn
                      (Wire.Error
                         {
                           code = Wire.err_unknown_session;
                           msg = Printf.sprintf "no session %d" sid;
                         }));
                loop ()
            | Wire.Close_session { sid } ->
                (match find_session conn sid with
                | Some s -> enqueue t conn s (I_close Wire.R_requested)
                | None when session_was_here conn sid -> ()
                | None ->
                    send t conn
                      (Wire.Error
                         {
                           code = Wire.err_unknown_session;
                           msg = Printf.sprintf "no session %d" sid;
                         }));
                loop ()
            | Wire.Stats_request ->
                send t conn (Wire.Stats_reply { json = Metrics.to_json m });
                loop ()
            | Wire.Bye -> teardown t conn ~drain:true ~reason:Wire.R_requested
            | Wire.Hello _ | Wire.Welcome _ | Wire.Session_opened _
            | Wire.Verdict _ | Wire.Throttle _ | Wire.Resume _
            | Wire.Stats_reply _ | Wire.Session_closed _ | Wire.Error _ ->
                Metrics.protocol_error m;
                send t conn
                  (Wire.Error
                     {
                       code = Wire.err_bad_frame;
                       msg =
                         Printf.sprintf "unexpected %s frame"
                           (Wire.frame_name frame);
                     });
                loop ())
      in
      loop ()
  | Ok (Some (Wire.Hello { version })) ->
      fail_handshake Wire.err_version
        (Printf.sprintf "protocol version %d unsupported (server speaks %d)"
           version Wire.version)
  | Ok (Some frame) ->
      fail_handshake Wire.err_bad_magic
        (Printf.sprintf "expected hello, got %s" (Wire.frame_name frame))
  | Ok None -> teardown t conn ~drain:false ~reason:Wire.R_requested
  | Result.Error msg -> fail_handshake Wire.err_bad_frame msg

(* ------------------------------------------------------------------ *)
(* Prometheus exposition: a deliberately minimal HTTP/1.1 responder on a
   loopback socket — enough for a scraper or curl, one request per
   connection, [Connection: close].  Runs on its own systhread; scraping
   only reads atomics and histogram snapshots, so it never blocks the
   checking shards. *)

let metrics_body config =
  Printf.sprintf "# TYPE mtc_uptime_seconds gauge\nmtc_uptime_seconds %.3f\n"
    (Metrics.uptime_s config.metrics)
  ^ Obs.Export.prometheus (Metrics.registry config.metrics)
  ^ Obs.Export.prometheus Obs.Metrics.default

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let serve_metrics_request config fd =
  let buf = Bytes.create 1024 in
  let n = try Unix.read fd buf 0 1024 with Unix.Unix_error _ -> 0 in
  let req = Bytes.sub_string buf 0 (Stdlib.max n 0) in
  let response =
    match String.split_on_char ' ' req with
    | "GET" :: path :: _ when path = "/metrics" || path = "/" ->
        http_response ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (metrics_body config)
    | "GET" :: _ ->
        http_response ~status:"404 Not Found" ~content_type:"text/plain"
          "not found (try /metrics)\n"
    | _ ->
        http_response ~status:"405 Method Not Allowed"
          ~content_type:"text/plain" "only GET is supported\n"
  in
  let b = Bytes.of_string response in
  let rec write off len =
    if len > 0 then begin
      let n =
        try Unix.write fd b off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      write (off + n) (len - n)
    end
  in
  try write 0 (Bytes.length b) with Unix.Unix_error _ | Sys_error _ -> ()

let metrics_loop t lsock =
  let rec loop () =
    if not (stopping t) then begin
      (match Unix.select [ lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept lsock with
          | fd, _ ->
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> serve_metrics_request t.config fd)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Listeners, janitor, lifecycle. *)

let bind_addr = function
  | A_unix path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      (sock, A_unix path)
  | A_tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (inet, port));
      Unix.listen sock 64;
      let bound_port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (sock, A_tcp (host, bound_port))

let accept_loop t (lsock, _) =
  let rec loop () =
    if not (stopping t) then begin
      (match Unix.select [ lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept lsock with
          | fd, _peer_addr ->
              let conn =
                {
                  fd;
                  out = Wire.out_bufs ();
                  out_mu = Mutex.create ();
                  out_dead = false;
                  sessions = Hashtbl.create 8;
                  closed_sids = Hashtbl.create 8;
                  cmu = Mutex.create ();
                  draining = false;
                }
              in
              Metrics.connection t.config.metrics;
              Mutex.lock t.rmu;
              t.conns <- conn :: t.conns;
              let th = Thread.create (fun () -> conn_loop t conn) () in
              t.conn_threads <- th :: t.conn_threads;
              Mutex.unlock t.rmu
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let janitor_loop t =
  let idle = t.config.idle_timeout in
  let tick = Stdlib.min 0.5 (Stdlib.max 0.01 (idle /. 4.0)) in
  let rec loop () =
    if not (stopping t) then begin
      Thread.delay tick;
      let deadline = now () -. idle in
      Mutex.lock t.rmu;
      let conns = t.conns in
      Mutex.unlock t.rmu;
      List.iter
        (fun conn ->
          List.iter
            (fun s ->
              let expire =
                Mutex.lock s.smu;
                let e = session_alive s && s.last_activity < deadline in
                Mutex.unlock s.smu;
                e
              in
              if expire then enqueue t conn s (I_close Wire.R_idle))
            (sessions_snapshot conn))
        conns;
      loop ()
    end
  in
  loop ()

let start config =
  if config.listen = [] then invalid_arg "Server.start: no listen addresses";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> () (* not on this platform *));
  let listeners = List.map bind_addr config.listen in
  let nshards =
    if config.shards > 0 then config.shards else Pool.default_size ()
  in
  let shards =
    Array.init nshards (fun _ ->
        { runq = Queue.create (); shmu = Mutex.create ();
          shcv = Condition.create () })
  in
  let t =
    {
      config;
      listeners;
      conns = [];
      next_sid = 1;
      rmu = Mutex.create ();
      stop_requested = false;
      shards;
      pool = Pool.create ~size:nshards ();
      shards_stop = false;
      shard_runner = None;
      accepters = [];
      conn_threads = [];
      janitor = None;
      metrics_listener = None;
      metrics_thread = None;
    }
  in
  (match config.metrics_port with
  | None -> ()
  | Some port ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen sock 16;
      let bound =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      t.metrics_listener <- Some (sock, bound);
      t.metrics_thread <- Some (Thread.create (metrics_loop t) sock));
  (* The shard loops occupy the whole pool for the server's lifetime; a
     coordinator systhread participates as the pool's submitting thread
     (so [nshards] loops really run on [nshards] domains). *)
  t.shard_runner <-
    Some
      (Thread.create
         (fun () ->
           Pool.run t.pool
             (List.init nshards (fun i () -> shard_loop t shards.(i))))
         ());
  t.accepters <- List.map (fun l -> Thread.create (accept_loop t) l) listeners;
  if config.idle_timeout > 0.0 then
    t.janitor <- Some (Thread.create janitor_loop t);
  t

let stop t =
  Mutex.lock t.rmu;
  let already = t.stop_requested in
  t.stop_requested <- true;
  Mutex.unlock t.rmu;
  if not already then begin
    List.iter Thread.join t.accepters;
    Option.iter Thread.join t.janitor;
    Option.iter Thread.join t.metrics_thread;
    Option.iter
      (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.metrics_listener;
    List.iter
      (fun (fd, addr) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match addr with
        | A_unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | A_tcp _ -> ())
      t.listeners;
    (* Shut ingress down; readers see EOF with [draining] set and drain
       their sessions before closing. *)
    Mutex.lock t.rmu;
    let conns = t.conns in
    Mutex.unlock t.rmu;
    List.iter
      (fun conn ->
        conn.draining <- true;
        try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      conns;
    Mutex.lock t.rmu;
    let threads = t.conn_threads in
    t.conn_threads <- [];
    Mutex.unlock t.rmu;
    List.iter Thread.join threads;
    (* Every session is finished (teardown waits for the shards), so the
       run queues are empty: stop the shard loops and the pool. *)
    Array.iter
      (fun sh ->
        Mutex.lock sh.shmu;
        t.shards_stop <- true;
        Condition.broadcast sh.shcv;
        Mutex.unlock sh.shmu)
      t.shards;
    Option.iter Thread.join t.shard_runner;
    Pool.shutdown t.pool
  end

let run ?(on_signal = [ Sys.sigterm; Sys.sigint ]) ?on_ready config =
  let t = start config in
  Option.iter (fun f -> f t) on_ready;
  let requested = Atomic.make false in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set requested true))
      with Invalid_argument _ | Sys_error _ -> ())
    on_signal;
  while not (Atomic.get requested) do
    Thread.delay 0.2
  done;
  stop t
