(** A shared index over a history: dense vertex numbering of committed
    transactions and write-value lookup tables.  Because every write on an
    object assigns a unique value (Definition 9), the tables resolve each
    read to the transaction that produced its value — the basis of the
    deterministic WR relation (paper Section IV-A).

    The lookup tables are int-packed open-addressing maps
    ({!Flat_index.Writers}): building them scans each transaction's op
    array directly, with no per-transaction hashtables and no boxed
    [(key * value)] tuple per write. *)

type t = private {
  history : History.t;
  committed : Txn.t array;  (** committed transactions in id order *)
  vertex_of_txn : int array;  (** txn id -> dense vertex, or -1 if aborted *)
  writers : Flat_index.Writers.t array;
      (** final / intermediate / aborted writer resolution, striped by
          key ([k mod 8]) so registration parallelizes; route lookups
          through {!writer_of} *)
}

val build : ?pool:Pool.t -> History.t -> t
(** [pool] parallelizes writer-table registration (one task per key
    stripe).  The resulting index is identical with or without it. *)

val num_vertices : t -> int
val txn_of_vertex : t -> int -> Txn.t
val vertex : t -> Txn.id -> int
(** @raise Invalid_argument on an aborted transaction. *)

type writer = Flat_index.Writers.who =
  | Final of Txn.id
  | Intermediate of Txn.id
  | Aborted of Txn.id
  | Nobody

val writer_of : t -> Op.key -> Op.value -> writer
(** Who produced value [v] of object [x]?  [Final] writers are the only
    legitimate sources under the INT axiom + committed visibility. *)
