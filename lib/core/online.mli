(** Online (incremental) isolation checking — the "checking-as-a-service"
    mode of the authors' IsoVista system (paper Section VII): transactions
    stream in as they commit, the dependency graph is maintained
    incrementally (Pearce–Kelly topological order), and the first
    violating transaction is flagged the moment it arrives.

    Because MT histories have (nearly) unique dependency graphs, feeding a
    committed transaction means adding a constant number of edges:
    - WR from the writer of each value read;
    - WW from that writer when the reader overwrites (the RMW inference);
    - RW from the version's earlier readers to the new overwriter, and
      from the new reader to the version's existing overwriters.

    For SI the edges go into the two-vertex product encoding (cycles =
    SI-forbidden cycles, see {!Polysi}), and the DIVERGENCE screen runs on
    the fly.  For SSER, transactions must be fed in commit order (the
    natural stream order) and real-time edges attach through the same
    helper-chain sweep as the batch checker.

    Aborted transactions should be fed too ({!add_txn} records their
    writes so ABORTEDREAD is diagnosed precisely).

    Timestamp modes ({!Ts.mode}, the online Vbox fast path): [Trust]
    attributes every external read to the newest write with
    [commit_ts <= start_ts] on its per-key version chain; [Verify]
    certifies that prediction against the value actually read and falls
    back per key to value resolution on a mismatch, so verdicts match
    the default value-only pipeline while the mismatch counters expose
    lying timestamp oracles ({!stats}).  Both modes require committed
    transactions to arrive in commit-timestamp order (the natural
    stream order), which keeps the chains sorted by construction. *)

(** The growable labelled Pearce–Kelly graph backing the checker.
    Exposed for white-box tests of its edge accounting: duplicate edges
    are accepted without bumping the count, capacity grows in place
    without replaying edges, and a rejected (cycle-closing) edge leaves
    no label behind. *)
module Grow : sig
  type t

  val create : unit -> t

  val add_edge : t -> int -> int -> Deps.dep -> (unit, int list) result
  (** [add_edge t u v lab] inserts [u -> v] labelled [lab].  A duplicate
      insertion is [Ok ()] and changes neither the count nor the existing
      label; [Error path] (cycle) records nothing. *)

  val label : t -> int -> int -> Deps.dep
  (** Label of a recorded edge; [Deps.Rt_chain] if the edge was never
      accepted. *)

  val edge_count : t -> int
  (** Distinct edges accepted so far. *)
end

type t

(** Watermark GC policy for long-lived sessions.  [Gc_off] (the
    default) retains everything, exactly the historical behavior.
    [Gc_auto] compacts whenever the live-word estimate exceeds twice
    the post-GC floor (with a fixed 64Ki-word minimum); [Gc_words n]
    compacts past an absolute ceiling of [n] words.

    Soundness rests on the stream discipline the service already
    enforces plus one operational precondition: sessions are serial,
    streams arrive in commit order, transactions are short (mini-
    transactions — a transaction must not start before versions its
    session's frontier has long passed), and {b every session that will
    ever feed this checker has fed at least once before the first
    compaction}.  Under that discipline verdicts, rendered
    counterexamples and {!stats} counters are identical to an unbounded
    run.  Known sharp edges, all below the watermark only: duplicate
    writes of a pruned value and reuse of a pruned transaction id are
    no longer detected, and under [Ts.Verify] a {e lying} oracle whose
    reported start timestamp falls below the compacted horizon counts a
    certification mismatch where an unbounded run may have predicted
    fast — the read falls back to value resolution either way, so
    verdicts and dependency edges are unaffected; only the
    [s_ts_fast]/[s_ts_mismatched] diagnostics can over-report. *)
type gc = Gc_off | Gc_auto | Gc_words of int

val gc_to_string : gc -> string
(** ["off"], ["auto"] or the decimal word ceiling — the CLI / wire
    spelling. *)

val gc_of_string : string -> gc option
(** Inverse of {!gc_to_string}; [None] on anything else. *)

val create :
  ?skew:int -> ?ts:Ts.mode -> ?gc:gc -> level:Checker.level -> num_keys:int ->
  unit -> t
(** A fresh stream checker; the initial transaction is implicit.  [ts]
    (default [Ts.Ignore]) selects the timestamp fast path — see the
    module header for the [Trust]/[Verify] semantics and the
    commit-order arrival requirement they impose.  [gc] (default
    [Gc_off]) bounds memory via watermark compaction. *)

type step =
  | Ok_so_far
  | Violation of Checker.violation
      (** the stream violates the level; the checker is poisoned — further
          {!add_txn} calls keep returning this violation *)

val add_txn : t -> Txn.t -> step
(** Feed the next transaction (committed or aborted).  Transaction ids
    must be fresh and positive; for SSER — and for any timestamp mode —
    commit timestamps must be non-decreasing across calls.
    @raise Invalid_argument on id reuse or out-of-order commits. *)

val txns_seen : t -> int

val level : t -> Checker.level

val ts_mode : t -> Ts.mode

val poisoned : t -> Checker.violation option
(** The violation this checker is stuck on, if any. *)

val gc_policy : t -> gc

val gc : t -> int
(** Run one watermark compaction now (regardless of policy — tests use
    this for GC-after-every-txn torture).  Returns the estimated words
    reclaimed; a no-op (0) on a poisoned checker or before any session
    has fed. *)

val gc_runs : t -> int
(** Compactions performed so far (manual + automatic). *)

val gc_last_ns : t -> int
(** Wall-clock duration of the most recent compaction, 0 if none. *)

val gc_reclaimed_words : t -> int
(** Cumulative estimated words reclaimed across all compactions (the
    O(1) counterpart of {!stats}' [s_gc_reclaimed_words]). *)

val live_words : t -> int
(** Estimated words of memory retained by the checker's live
    structures.  O(live vertices); the auto-GC trigger samples it every
    64 feeds. *)

val watermark_pos : t -> int
(** The GC horizon as it stands right now: the minimum arrival
    position across the per-session frontiers (the [H] a compaction
    run at this instant would use), or [-1] before any session has
    fed.  [txns_seen t - watermark_pos t] is the watermark lag — how
    many arrivals the slowest internal stream session trails the
    head, i.e. how much of the stream a stalled session is pinning
    against GC.  O(stream sessions). *)

val frontier_sessions : t -> int
(** Number of distinct stream sessions that have fed this checker
    (the frontier table's width). *)

type stats = {
  s_txns_seen : int;  (** transactions fed (committed + aborted) *)
  s_vertices : int;  (** graph vertices allocated (incl. SI/SSER helpers) *)
  s_edges : int;  (** edges accepted into the Pearce–Kelly structure *)
  s_poisoned : bool;
  s_ts_fast : int;
      (** external reads attributed by timestamp prediction (0 in
          [Ts.Ignore] mode) *)
  s_ts_mismatched : int;
      (** [Ts.Verify] certification mismatches — evidence of a lying
          timestamp oracle; each flips its key to value resolution *)
  s_gc_runs : int;  (** watermark compactions performed *)
  s_gc_reclaimed_words : int;  (** cumulative words reclaimed by GC *)
  s_live_words : int;  (** current {!live_words} estimate *)
}

val stats : t -> stats
(** A consistent snapshot of the checker's internal counters — exposed
    for the service layer's [stats] frames and for tests asserting that
    a poisoned checker stops mutating its graph. *)

val encode : Buffer.t -> t -> unit
(** Serialize the full checker state (no history replay on restore).
    Structures whose iteration order the cycle-witness DFS observes are
    written verbatim, so a {!decode}d checker renders byte-identical
    counterexamples and verdicts for any continuation of the stream.
    @raise Invalid_argument on a poisoned checker — persist the rendered
    verdict instead; it is all a poisoned session can ever produce. *)

val decode : Binio_core.reader -> t
(** Inverse of {!encode}.
    @raise Binio_core.Decode_error on truncated, malformed or
    inconsistent input. *)

val check_stream :
  ?skew:int -> ?ts:Ts.mode -> ?gc:gc -> level:Checker.level -> num_keys:int ->
  Txn.t list -> (int, Checker.violation) result
(** Convenience: feed a whole list; [Ok n] = all [n] accepted, or the
    violation at the first offending transaction. *)
