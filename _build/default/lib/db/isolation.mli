(** Isolation levels offered by the simulated database engine.

    These are the levels a real deployment would configure (paper
    Section V-A2 uses PostgreSQL's REPEATABLE READ for SI and
    SERIALIZABLE for SER); the engine implements each with the standard
    mechanism: read-committed visibility, snapshot isolation with
    first-committer-wins, serializable snapshot isolation (SSI), and
    strict two-phase locking for strict serializability. *)

type level =
  | Read_committed
  | Snapshot  (** MVCC snapshot + first-committer-wins *)
  | Serializable  (** SSI: Snapshot + dangerous-structure aborts *)
  | Strict_serializable  (** strict 2PL with wound-wait *)

val name : level -> string
val of_string : string -> level option

val claimed_level : level -> Checker.level
(** The strongest checker level a correct engine at this isolation level
    must pass ([Read_committed] histories still pass the INT screen but
    none of the strong levels; we map it to SI as the level a buggy
    deployment would claim). *)
