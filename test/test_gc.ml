(* Watermark-GC equivalence and bounded-memory tests for the Online
   checker.  The torture harness feeds a GC'd and an unbounded instance
   in lockstep, compacting the GC'd one after *every* transaction (once
   each generator session has appeared — the documented precondition),
   and demands identical step outcomes, identical rendered
   counterexamples and identical logical stats at every position. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let render v = Format.asprintf "%a" Checker.pp_violation v

(* Commit-order stream, as a monitoring proxy would deliver it. *)
let stream_of (h : History.t) =
  Array.to_list h.History.txns
  |> List.filter (fun (t : Txn.t) -> t.Txn.id <> History.init_id)
  |> List.sort (fun (a : Txn.t) b -> compare a.Txn.commit_ts b.Txn.commit_ts)

let engine_history ?(num_txns = 250) ?(num_sessions = 4) ~level ~fault ~seed
    () =
  let spec =
    Mt_gen.generate
      { Mt_gen.default with num_sessions; num_txns; num_keys = 10; seed }
  in
  let db = { Db.level; fault; num_keys = 10; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

(* The logical counters that must be byte-identical between a GC'd and
   an unbounded run.  Live-words and the gc_* gauges are deliberately
   excluded: differing is their whole point.  The ts_fast/ts_mismatched
   diagnostics are excluded only under a lying timestamp oracle
   ([strict_ts = false]): a lying start_ts below the compacted horizon
   makes the GC'd run count a certification mismatch where the
   unbounded one predicted fast — attribution falls back to value
   resolution either way, so verdicts and edges still agree. *)
let logical_stats ?(strict_ts = true) s =
  ( s.Online.s_txns_seen,
    s.Online.s_vertices,
    s.Online.s_edges,
    s.Online.s_poisoned,
    (if strict_ts then s.Online.s_ts_fast else 0),
    if strict_ts then s.Online.s_ts_mismatched else 0 )

(* Feed [stream] to an unbounded and a GC'd checker in lockstep; the
   GC'd one is compacted after every feed once all sessions present in
   the stream have fed at least once.  True iff every step outcome,
   rendering and logical stat agrees at every position. *)
let lockstep ?(skew = 0) ?(ts = Ts.Ignore) ?(strict_ts = true) ~level
    ~num_keys stream =
  let a = Online.create ~skew ~ts ~level ~num_keys () in
  let b = Online.create ~skew ~ts ~level ~num_keys () in
  let sessions =
    List.sort_uniq compare (List.map (fun t -> t.Txn.session) stream)
  in
  let total = List.length sessions in
  let seen = Hashtbl.create 8 in
  List.for_all
    (fun txn ->
      Hashtbl.replace seen txn.Txn.session ();
      let ra = Online.add_txn a txn in
      let rb = Online.add_txn b txn in
      let step_ok =
        match (ra, rb) with
        | Online.Ok_so_far, Online.Ok_so_far -> true
        | Online.Violation va, Online.Violation vb -> render va = render vb
        | _ -> false
      in
      if Hashtbl.length seen = total then ignore (Online.gc b);
      step_ok
      && logical_stats ~strict_ts (Online.stats a)
         = logical_stats ~strict_ts (Online.stats b))
    stream

let test_gc_equivalence_clean () =
  List.iter
    (fun (engine, level) ->
      for seed = 1 to 3 do
        checkb
          (Printf.sprintf "%s seed %d" (Checker.level_name level) seed)
          true
          (lockstep ~level ~num_keys:10
             (stream_of
                (engine_history ~level:engine ~fault:Fault.No_fault ~seed ())))
      done)
    [
      (Isolation.Snapshot, Checker.SI);
      (Isolation.Serializable, Checker.SER);
      (Isolation.Strict_serializable, Checker.SSER);
    ]

let test_gc_equivalence_faulty () =
  List.iter
    (fun (fault, level) ->
      for seed = 1 to 3 do
        checkb
          (Printf.sprintf "%s/%s seed %d" (Fault.name fault)
             (Checker.level_name level) seed)
          true
          (lockstep ~level ~num_keys:10
             (stream_of
                (engine_history ~level:Isolation.Snapshot ~fault ~seed ())))
      done)
    [
      (Fault.Lost_update 0.2, Checker.SI);
      (Fault.Aborted_read 0.2, Checker.SI);
      (Fault.Causality_violation 0.1, Checker.SI);
      (Fault.Write_skew 0.2, Checker.SER);
      (Fault.Lost_update 0.2, Checker.SSER);
    ]

let test_gc_equivalence_ts_modes () =
  List.iter
    (fun (ts, fault, strict_ts) ->
      for seed = 1 to 3 do
        checkb
          (Printf.sprintf "%s seed %d" (Fault.name fault) seed)
          true
          (lockstep ~ts ~strict_ts ~level:Checker.SER ~num_keys:10
             (stream_of
                (engine_history ~level:Isolation.Serializable ~fault ~seed ())))
      done)
    [
      (Ts.Trust, Fault.No_fault, true);
      (Ts.Trust, Fault.Lost_update 0.2, true);
      (Ts.Verify, Fault.No_fault, true);
      (Ts.Verify, Fault.Lost_update 0.2, true);
      (* A lying oracle can report a start_ts below the compacted
         horizon; the mismatch diagnostics then over-report, but the
         verdict pipeline is unaffected. *)
      (Ts.Verify, Fault.Ts_skew 0.3, false);
      (Ts.Verify, Fault.Ts_reorder 0.3, false);
    ]

(* A long single-session chain with an aggressive word ceiling stays at
   a flat memory floor while the unbounded twin grows without bound. *)
let test_gc_bounded_growth () =
  let n = 4000 in
  let unbounded = Online.create ~level:Checker.SER ~num_keys:1 () in
  let bounded =
    Online.create ~gc:(Online.Gc_words 4096) ~level:Checker.SER ~num_keys:1 ()
  in
  for i = 1 to n do
    let t =
      Txn.make ~id:i ~session:1 [ Op.Read (0, i - 1); Op.Write (0, i) ]
    in
    checkb "unbounded ok" true (Online.add_txn unbounded t = Online.Ok_so_far);
    checkb "bounded ok" true (Online.add_txn bounded t = Online.Ok_so_far)
  done;
  checkb "gc ran" true (Online.gc_runs bounded > 0);
  checkb "stats agree" true
    (logical_stats (Online.stats unbounded)
    = logical_stats (Online.stats bounded));
  let wu = Online.live_words unbounded and wb = Online.live_words bounded in
  checkb
    (Printf.sprintf "bounded stays small (%d vs %d words)" wb wu)
    true
    (wb * 4 < wu)

let test_gc_auto_policy () =
  let bounded =
    Online.create ~gc:Online.Gc_auto ~level:Checker.SER ~num_keys:1 ()
  in
  for i = 1 to 20_000 do
    ignore
      (Online.add_txn bounded
         (Txn.make ~id:i ~session:1 [ Op.Read (0, i - 1); Op.Write (0, i) ]))
  done;
  checkb "auto gc ran" true (Online.gc_runs bounded > 0);
  checki "all seen" 20_000 (Online.txns_seen bounded)

(* Idempotence: with no new transactions the second compaction finds the
   structure already at its floor and reclaims nothing. *)
let test_gc_idempotent () =
  let o = Online.create ~level:Checker.SI ~num_keys:4 () in
  for i = 1 to 200 do
    ignore
      (Online.add_txn o
         (Txn.make ~id:i ~session:1
            [ Op.Read (i mod 4, if i <= 4 then 0 else i - 4); Op.Write (i mod 4, i) ]))
  done;
  ignore (Online.gc o);
  checki "second gc reclaims nothing" 0 (Online.gc o);
  checki "two runs counted" 2 (Online.gc_runs o)

let test_gc_noop_cases () =
  (* Before any session has fed: no-op. *)
  let o = Online.create ~level:Checker.SER ~num_keys:1 () in
  checki "fresh checker" 0 (Online.gc o);
  checki "no run counted" 0 (Online.gc_runs o);
  (* Poisoned: no-op (the frozen-state contract extends to GC). *)
  let p = Online.create ~level:Checker.SI ~num_keys:1 () in
  ignore (Online.add_txn p (Txn.make ~id:1 ~session:1 [ Op.Read (0, 0); Op.Write (0, 1) ]));
  ignore (Online.add_txn p (Txn.make ~id:2 ~session:2 [ Op.Read (0, 0); Op.Write (0, 2) ]));
  checkb "poisoned" true (Online.poisoned p <> None);
  checki "poisoned checker" 0 (Online.gc p)

let test_gc_policy_strings () =
  List.iter
    (fun (s, g) ->
      checkb s true (Online.gc_of_string s = Some g);
      Alcotest.check Alcotest.string "round trip" s (Online.gc_to_string g))
    [
      ("off", Online.Gc_off);
      ("auto", Online.Gc_auto);
      ("1048576", Online.Gc_words 1048576);
    ];
  checkb "garbage rejected" true (Online.gc_of_string "bogus" = None);
  checkb "negative rejected" true (Online.gc_of_string "-3" = None)

(* Snapshot round-trip across compactions: encode a GC'd checker
   mid-stream, decode it, and both twins must agree on the rest of the
   stream (outcomes, renderings, logical stats). *)
let test_gc_restore_roundtrip () =
  List.iter
    (fun (fault, level) ->
      for seed = 1 to 2 do
        let stream =
          stream_of (engine_history ~level:Isolation.Snapshot ~fault ~seed ())
        in
        let n = List.length stream in
        let split = n / 2 in
        let o =
          Online.create ~gc:Online.Gc_auto ~level ~num_keys:10 ()
        in
        let sessions =
          List.sort_uniq compare (List.map (fun t -> t.Txn.session) stream)
        in
        let seen = Hashtbl.create 8 in
        let rest = ref [] in
        List.iteri
          (fun i txn ->
            if i < split then begin
              Hashtbl.replace seen txn.Txn.session ();
              ignore (Online.add_txn o txn);
              if Hashtbl.length seen = List.length sessions then
                ignore (Online.gc o)
            end
            else rest := txn :: !rest)
          stream;
        let rest = List.rev !rest in
        match Online.poisoned o with
        | Some _ -> () (* violation landed in the first half; nothing to restore *)
        | None ->
            let buf = Buffer.create 1024 in
            Online.encode buf o;
            let o' = Online.decode (Binio_core.reader (Buffer.contents buf)) in
            checkb "policy restored" true (Online.gc_policy o' = Online.Gc_auto);
            List.iter
              (fun txn ->
                let ra = Online.add_txn o txn in
                let rb = Online.add_txn o' txn in
                (match (ra, rb) with
                | Online.Ok_so_far, Online.Ok_so_far -> ()
                | Online.Violation va, Online.Violation vb ->
                    Alcotest.check Alcotest.string "same rendering" (render va)
                      (render vb)
                | _ -> Alcotest.fail "restored checker diverged");
                checkb "stats agree" true
                  (logical_stats (Online.stats o)
                  = logical_stats (Online.stats o')))
              rest
      done)
    [
      (Fault.No_fault, Checker.SER);
      (Fault.Lost_update 0.3, Checker.SI);
    ]

(* QCheck: random engine configurations, GC-after-every-txn, across
   levels and timestamp modes. *)
let config_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* num_keys = int_range 2 16 in
    let* num_txns = int_range 20 200 in
    let* num_sessions = int_range 1 6 in
    let* level = oneofl [ Checker.SI; Checker.SER; Checker.SSER ] in
    let* ts = oneofl [ Ts.Ignore; Ts.Trust; Ts.Verify ] in
    let* fault =
      oneofl
        [ Fault.No_fault; Fault.Lost_update 0.15; Fault.Aborted_read 0.15;
          Fault.Causality_violation 0.1; Fault.Write_skew 0.15 ]
    in
    return (seed, num_keys, num_txns, num_sessions, level, ts, fault))

let print_config (seed, num_keys, num_txns, num_sessions, level, ts, fault) =
  Printf.sprintf "seed=%d keys=%d txns=%d sessions=%d level=%s ts=%s fault=%s"
    seed num_keys num_txns num_sessions (Checker.level_name level)
    (match ts with Ts.Ignore -> "ignore" | Ts.Trust -> "trust" | Ts.Verify -> "verify")
    (Fault.name fault)

let prop_gc_equals_unbounded =
  QCheck2.Test.make ~name:"aggressive GC == unbounded (engine histories)"
    ~count:60 ~print:print_config config_gen
    (fun (seed, num_keys, num_txns, num_sessions, level, ts, fault) ->
      let spec =
        Mt_gen.generate
          { Mt_gen.num_sessions; num_txns; num_keys;
            dist = Distribution.Uniform; seed }
      in
      let db = { Db.level = Isolation.Serializable; fault; num_keys; seed } in
      let h =
        (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db
           ~spec ())
          .Scheduler.history
      in
      lockstep ~ts ~level ~num_keys (stream_of h))

let suite =
  [
    ("GC == unbounded on clean engines", `Quick, test_gc_equivalence_clean);
    ("GC == unbounded on faulty engines", `Quick, test_gc_equivalence_faulty);
    ("GC == unbounded under ts modes", `Quick, test_gc_equivalence_ts_modes);
    ("bounded growth on a long chain", `Quick, test_gc_bounded_growth);
    ("auto policy triggers", `Quick, test_gc_auto_policy);
    ("compaction is idempotent", `Quick, test_gc_idempotent);
    ("no-op on fresh and poisoned checkers", `Quick, test_gc_noop_cases);
    ("policy spellings round-trip", `Quick, test_gc_policy_strings);
    ("snapshot round-trip across GC", `Quick, test_gc_restore_roundtrip);
    qtest prop_gc_equals_unbounded;
  ]
