(* Iterative Tarjan.  [low] doubles as the index array; [on_stack] tracks
   stack membership. *)

let component_ids (g : _ Digraph.t) =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let call = ref [ (root, ref (Digraph.succ_vertices g root)) ] in
    index.(root) <- !next_index;
    low.(root) <- !next_index;
    incr next_index;
    Stack.push root stack;
    on_stack.(root) <- true;
    while !call <> [] do
      match !call with
      | [] -> ()
      | (u, rest) :: tail -> (
          match !rest with
          | v :: more ->
              rest := more;
              if index.(v) = -1 then begin
                index.(v) <- !next_index;
                low.(v) <- !next_index;
                incr next_index;
                Stack.push v stack;
                on_stack.(v) <- true;
                call := (v, ref (Digraph.succ_vertices g v)) :: !call
              end
              else if on_stack.(v) then low.(u) <- Stdlib.min low.(u) index.(v)
          | [] ->
              if low.(u) = index.(u) then begin
                let continue = ref true in
                while !continue do
                  let w = Stack.pop stack in
                  on_stack.(w) <- false;
                  comp.(w) <- !next_comp;
                  if w = u then continue := false
                done;
                incr next_comp
              end;
              call := tail;
              (match tail with
              | (p, _) :: _ -> low.(p) <- Stdlib.min low.(p) low.(u)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !next_comp)

let components g =
  let comp, k = component_ids g in
  let buckets = Array.make k [] in
  for v = Digraph.n g - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets

let nontrivial g =
  components g
  |> List.filter (fun c ->
         match c with
         | [] -> false
         | [ v ] -> List.mem v (Digraph.succ_vertices g v)
         | _ :: _ :: _ -> true)
