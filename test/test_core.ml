(* Tests for mtc.core: Index, Int_check, Divergence, Deps, Checker,
   Report — the paper's verification algorithms (Algorithm 1). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

open Builder

(* --- Index --- *)

let test_index_vertices () =
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 [ r 0 0; w 0 1 ];
        txn ~session:2 ~status:Txn.Aborted [ r 0 0 ];
      ]
  in
  let idx = Index.build h in
  checki "2 committed vertices" 2 (Index.num_vertices idx);
  checki "init is vertex 0" 0 (Index.vertex idx 0);
  checkb "aborted has no vertex" true
    (try
       ignore (Index.vertex idx 2);
       false
     with Invalid_argument _ -> true)

let test_index_writer_of () =
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 [ r 0 0; w 0 1; w 0 2 ];
        txn ~session:2 ~status:Txn.Aborted [ r 0 0; w 0 99 ];
      ]
  in
  let idx = Index.build h in
  checkb "final" true (Index.writer_of idx 0 2 = Index.Final 1);
  checkb "intermediate" true (Index.writer_of idx 0 1 = Index.Intermediate 1);
  checkb "aborted" true (Index.writer_of idx 0 99 = Index.Aborted 2);
  checkb "init" true (Index.writer_of idx 0 0 = Index.Final 0);
  checkb "nobody" true (Index.writer_of idx 0 12345 = Index.Nobody)

(* --- Int_check: each intra anomaly is classified precisely --- *)

let int_kind h =
  match Int_check.check (Index.build h) with
  | Ok () -> None
  | Error v -> Some (Int_check.kind_name v.Int_check.kind)

let test_int_clean () =
  let h =
    history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 0; w 0 1; r 0 1 ] ]
  in
  checkb "clean passes" true (int_kind h = None)

let test_int_each_anomaly () =
  List.iter
    (fun (kind, name) ->
      Alcotest.check
        Alcotest.(option string)
        name (Some name)
        (int_kind (Anomaly.history kind)))
    [
      (Anomaly.Thin_air_read, "ThinAirRead");
      (Anomaly.Aborted_read, "AbortedRead");
      (Anomaly.Future_read, "FutureRead");
      (Anomaly.Not_my_last_write, "NotMyLastWrite");
      (Anomaly.Not_my_own_write, "NotMyOwnWrite");
      (Anomaly.Intermediate_read, "IntermediateRead");
      (Anomaly.Non_repeatable_reads, "NonRepeatableReads");
    ]

let test_int_inter_anomalies_pass_screen () =
  (* Inter-transactional anomalies are not INT violations. *)
  List.iter
    (fun kind ->
      if not (Anomaly.intra kind) then
        checkb (Anomaly.name kind) true (int_kind (Anomaly.history kind) = None))
    Anomaly.all

let test_int_check_all_collects () =
  let h =
    history ~keys:2 ~sessions:1
      [ txn ~session:1 [ r 0 42; r 1 43 ] ]  (* two thin-air reads *)
  in
  checki "two violations" 2 (List.length (Int_check.check_all (Index.build h)))

(* --- Divergence --- *)

let test_divergence_found () =
  let h = Anomaly.history Anomaly.Lost_update in
  match Divergence.find (Index.build h) with
  | Some inst ->
      checki "writer is init" 0 inst.Divergence.writer;
      checki "key" 0 inst.Divergence.key
  | None -> Alcotest.fail "divergence missed"

let test_divergence_absent_on_chain () =
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1; w 0 2 ] ]
  in
  checkb "chain has no divergence" true (Divergence.find (Index.build h) = None)

let test_divergence_reader_without_write_ok () =
  (* Two readers of the same value where only one writes: no divergence. *)
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 0 ] ]
  in
  checkb "no divergence" true (Divergence.find (Index.build h) = None)

let test_divergence_find_all () =
  let h =
    history ~keys:1 ~sessions:3
      [
        txn ~session:1 [ r 0 0; w 0 1 ];
        txn ~session:2 [ r 0 0; w 0 2 ];
        txn ~session:3 [ r 0 0; w 0 3 ];
      ]
  in
  checki "three-way divergence yields two instances" 2
    (List.length (Divergence.find_all (Index.build h)))

(* --- Deps --- *)

let edges_of h rt =
  match Deps.build ~rt (Index.build h) with
  | Ok d ->
      Digraph.fold_edges (Deps.digraph d)
        (fun acc u lab v -> (u, lab, v) :: acc)
        []
  | Error _ -> Alcotest.fail "deps build failed"

let has_edge edges u lab v = List.mem (u, lab, v) edges

let test_deps_wr_ww_rw () =
  (* T1 reads x from init and overwrites; T2 reads x from T1. *)
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1 ] ]
  in
  let e = edges_of h Deps.No_rt in
  (* vertices: 0 = init, 1 = T1, 2 = T2 *)
  checkb "WR init->T1" true (has_edge e 0 (Deps.WR 0) 1);
  checkb "WW init->T1" true (has_edge e 0 (Deps.WW 0) 1);
  checkb "WR T1->T2" true (has_edge e 1 (Deps.WR 0) 2);
  checkb "no WW to reader" false (has_edge e 1 (Deps.WW 0) 2)

let test_deps_rw_edge () =
  (* Reader of old version vs overwriter: anti-dependency. *)
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0 ]; txn ~session:2 [ r 0 0; w 0 1 ] ]
  in
  let e = edges_of h Deps.No_rt in
  checkb "RW T1->T2" true (has_edge e 1 (Deps.RW 0) 2)

let test_deps_no_transitive_ww () =
  (* Chain init -> T1 -> T2: no WW edge init->T2 (optimized build). *)
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1; w 0 2 ] ]
  in
  let e = edges_of h Deps.No_rt in
  checkb "direct WW only" false (has_edge e 0 (Deps.WW 0) 2)

let test_deps_edge_count_linear () =
  (* m = O(n) for MT histories without RT (paper Section IV-D). *)
  let spec = Mt_gen.generate { Mt_gen.default with num_txns = 500; num_keys = 50 } in
  let db = { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 50; seed = 1 } in
  let res = Scheduler.run ~db ~spec () in
  match Deps.build ~rt:Deps.No_rt (Index.build res.Scheduler.history) with
  | Ok d ->
      let n = Index.num_vertices d.Deps.idx in
      let m = Csr.num_edges (Deps.freeze d) in
      checkb "m <= 8n" true (m <= 8 * n)
  | Error _ -> Alcotest.fail "build failed"

let test_deps_rt_naive_vs_sweep () =
  (* Cycles agree between the two RT encodings on random histories. *)
  for seed = 1 to 10 do
    let spec =
      Mt_gen.generate { Mt_gen.default with num_txns = 120; num_keys = 10; seed }
    in
    let db =
      { Db.level = Isolation.Strict_serializable; fault = Fault.No_fault;
        num_keys = 10; seed }
    in
    let res = Scheduler.run ~db ~spec () in
    let h = res.Scheduler.history in
    let naive = Checker.check_sser ~rt_mode:Deps.Rt_naive h in
    let sweep = Checker.check_sser ~rt_mode:Deps.Rt_sweep h in
    checkb
      (Printf.sprintf "seed %d agree" seed)
      true
      (Checker.passes naive = Checker.passes sweep)
  done

let test_deps_unresolved_read () =
  let h = history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 42 ] ] in
  match Deps.build ~rt:Deps.No_rt (Index.build h) with
  | Error (Deps.Unresolved_read { txn = 1; key = 0; value = 42 }) -> ()
  | Error _ -> Alcotest.fail "wrong error payload"
  | Ok _ -> Alcotest.fail "thin-air read resolved?"

(* --- Checker on the anomaly catalogue (Table I) --- *)

let test_checker_catalogue () =
  List.iter
    (fun kind ->
      let h = Anomaly.history kind in
      List.iter
        (fun level ->
          let got = Checker.passes (Checker.check level h) in
          let want = Anomaly.satisfies kind level in
          Alcotest.check Alcotest.bool
            (Printf.sprintf "%s at %s" (Anomaly.name kind)
               (Checker.level_name level))
            want got)
        [ Checker.SSER; Checker.SER; Checker.SI ])
    Anomaly.all

let test_checker_empty_history () =
  let h = history ~keys:2 ~sessions:1 [] in
  List.iter
    (fun level -> checkb "empty passes" true (Checker.passes (Checker.check level h)))
    [ Checker.SSER; Checker.SER; Checker.SI ]

let test_checker_serializable_chain () =
  let h =
    history ~keys:2 ~sessions:2
      [
        txn ~session:1 [ r 0 0; w 0 1 ];
        txn ~session:2 [ r 0 1; r 1 0; w 1 2 ];
        txn ~session:1 [ r 1 2; r 0 1 ];
      ]
  in
  checkb "SER" true (Checker.passes (Checker.check_ser h));
  checkb "SI" true (Checker.passes (Checker.check_si h))

let test_checker_sser_rt_violation () =
  (* Serializable but not in real-time order: T2 writes after reading the
     initial value although T1 finished before T2 started. *)
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 ~start:0 ~commit:1 [ r 0 0; w 0 1 ];
        txn ~session:2 ~start:5 ~commit:6 [ r 0 0 ];
      ]
  in
  checkb "SER ok" true (Checker.passes (Checker.check_ser h));
  checkb "SSER violated" false (Checker.passes (Checker.check_sser h));
  checkb "SSER naive agrees" false
    (Checker.passes (Checker.check_sser ~rt_mode:Deps.Rt_naive h))

let test_checker_sser_cycle_reports_rt () =
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 ~start:0 ~commit:1 [ r 0 0; w 0 1 ];
        txn ~session:2 ~start:5 ~commit:6 [ r 0 0 ];
      ]
  in
  match Checker.check_sser h with
  | Checker.Fail (Checker.Cyclic cycle) ->
      checkb "mentions RT edge" true
        (List.exists (fun (_, d, _) -> d = Deps.RT) cycle);
      checkb "no helper labels leak" true
        (List.for_all (fun (_, d, _) -> d <> Deps.Rt_chain) cycle)
  | _ -> Alcotest.fail "expected a cycle"

let test_checker_malformed_dup_values () =
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 0; w 0 1 ] ]
  in
  match Checker.check_ser h with
  | Checker.Fail (Checker.Malformed _) -> ()
  | _ -> Alcotest.fail "duplicate values must be rejected as malformed"

let test_checker_level_names () =
  List.iter
    (fun l ->
      match Checker.level_of_string (Checker.level_name l) with
      | Some l' -> checkb "roundtrip" true (l = l')
      | None -> Alcotest.fail "level name roundtrip")
    [ Checker.SSER; Checker.SER; Checker.SI ]

let test_checker_ce_position () =
  match Checker.check_si (Anomaly.history Anomaly.Lost_update) with
  | Checker.Fail v ->
      Alcotest.check
        Alcotest.(option int)
        "position skips the initial transaction" (Some 1)
        (Checker.ce_position v)
  | Checker.Pass -> Alcotest.fail "lost update passed"

let test_checker_implications_on_engine_histories () =
  (* SSER ⊆ SER ⊆ SI on histories from every engine level. *)
  List.iter
    (fun level ->
      for seed = 1 to 3 do
        let spec =
          Mt_gen.generate
            { Mt_gen.default with num_txns = 200; num_keys = 8; seed }
        in
        let db = { Db.level; fault = Fault.No_fault; num_keys = 8; seed } in
        let res = Scheduler.run ~db ~spec () in
        let h = res.Scheduler.history in
        let sser = Checker.passes (Checker.check_sser h) in
        let ser = Checker.passes (Checker.check_ser h) in
        let si = Checker.passes (Checker.check_si h) in
        checkb "SSER implies SER" true ((not sser) || ser);
        checkb "SER implies SI... on divergence-free MT histories" true
          ((not ser) || si)
      done)
    [ Isolation.Snapshot; Isolation.Serializable; Isolation.Strict_serializable ]

(* --- Report --- *)

let test_report_classify_catalogue () =
  (* The classifier recovers the anomaly kind for the canonical shapes. *)
  List.iter
    (fun (kind, level) ->
      match Checker.check level (Anomaly.history kind) with
      | Checker.Fail v ->
          Alcotest.check
            Alcotest.(option string)
            (Anomaly.name kind)
            (Some (Anomaly.name kind))
            (Option.map Anomaly.name (Report.classify v))
      | Checker.Pass -> Alcotest.fail (Anomaly.name kind ^ " passed"))
    [
      (Anomaly.Thin_air_read, Checker.SER);
      (Anomaly.Aborted_read, Checker.SER);
      (Anomaly.Intermediate_read, Checker.SER);
      (Anomaly.Lost_update, Checker.SI);
      (Anomaly.Write_skew, Checker.SER);
      (Anomaly.Long_fork, Checker.SER);
      (Anomaly.Causality_violation, Checker.SER);
    ]

let test_report_render_mentions_txns () =
  match Checker.check_ser (Anomaly.history Anomaly.Write_skew) with
  | Checker.Fail v ->
      let s = Report.render (Anomaly.history Anomaly.Write_skew) Checker.SER v in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      checkb "mentions T1" true (contains "T1");
      checkb "mentions T2" true (contains "T2");
      checkb "mentions level" true (contains "SER violation");
      checkb "mentions counterexample position" true (contains "position")
  | Checker.Pass -> Alcotest.fail "write skew passed SER"

let suite =
  [
    ("index: vertices", `Quick, test_index_vertices);
    ("index: writer_of", `Quick, test_index_writer_of);
    ("int: clean txn passes", `Quick, test_int_clean);
    ("int: each intra anomaly classified", `Quick, test_int_each_anomaly);
    ("int: inter anomalies pass the screen", `Quick, test_int_inter_anomalies_pass_screen);
    ("int: check_all collects", `Quick, test_int_check_all_collects);
    ("divergence: lost update found", `Quick, test_divergence_found);
    ("divergence: chain is clean", `Quick, test_divergence_absent_on_chain);
    ("divergence: reader without write ok", `Quick, test_divergence_reader_without_write_ok);
    ("divergence: find_all", `Quick, test_divergence_find_all);
    ("deps: WR/WW/RW construction", `Quick, test_deps_wr_ww_rw);
    ("deps: anti-dependency edge", `Quick, test_deps_rw_edge);
    ("deps: no transitive WW (optimized)", `Quick, test_deps_no_transitive_ww);
    ("deps: O(n) edges on MT histories", `Quick, test_deps_edge_count_linear);
    ("deps: RT naive vs sweep agree", `Quick, test_deps_rt_naive_vs_sweep);
    ("deps: unresolved read reported", `Quick, test_deps_unresolved_read);
    ("checker: 14-anomaly catalogue verdicts", `Quick, test_checker_catalogue);
    ("checker: empty history", `Quick, test_checker_empty_history);
    ("checker: serializable chain passes", `Quick, test_checker_serializable_chain);
    ("checker: SSER real-time violation", `Quick, test_checker_sser_rt_violation);
    ("checker: SSER cycle reports RT edges", `Quick, test_checker_sser_cycle_reports_rt);
    ("checker: duplicate values malformed", `Quick, test_checker_malformed_dup_values);
    ("checker: level names roundtrip", `Quick, test_checker_level_names);
    ("checker: counterexample position", `Quick, test_checker_ce_position);
    ("checker: level implications", `Quick, test_checker_implications_on_engine_histories);
    ("report: classify catalogue", `Quick, test_report_classify_catalogue);
    ("report: render mentions transactions", `Quick, test_report_render_mentions_txns);
  ]
