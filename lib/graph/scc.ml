(* Iterative Tarjan over the frozen CSR representation.  [low] doubles as
   the index array; [on_stack] tracks stack membership.  All traversal
   state is flat int arrays (explicit call stack + per-vertex edge
   cursor), so the walk allocates nothing per visit. *)

let component_ids_csr (c : _ Csr.t) =
  let n = Csr.n c in
  let offsets = c.Csr.offsets and targets = c.Csr.targets in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Bytes.make n '\000' in
  let comp = Array.make n (-1) in
  let tstack = Array.make (Stdlib.max n 1) 0 in
  let tsp = ref 0 in
  let call = Array.make (Stdlib.max n 1) 0 in
  let cursor = Array.make (Stdlib.max n 1) 0 in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let csp = ref 0 in
    let push v =
      index.(v) <- !next_index;
      low.(v) <- !next_index;
      incr next_index;
      tstack.(!tsp) <- v;
      incr tsp;
      Bytes.set on_stack v '\001';
      call.(!csp) <- v;
      incr csp;
      cursor.(v) <- offsets.(v)
    in
    push root;
    while !csp > 0 do
      let u = call.(!csp - 1) in
      let i = cursor.(u) in
      if i >= offsets.(u + 1) then begin
        decr csp;
        if low.(u) = index.(u) then begin
          let continue = ref true in
          while !continue do
            decr tsp;
            let w = tstack.(!tsp) in
            Bytes.set on_stack w '\000';
            comp.(w) <- !next_comp;
            if w = u then continue := false
          done;
          incr next_comp
        end;
        if !csp > 0 then begin
          let p = call.(!csp - 1) in
          if low.(u) < low.(p) then low.(p) <- low.(u)
        end
      end
      else begin
        cursor.(u) <- i + 1;
        let v = targets.(i) in
        if index.(v) = -1 then push v
        else if Bytes.get on_stack v = '\001' && index.(v) < low.(u) then
          low.(u) <- index.(v)
      end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !next_comp)

let component_ids g = component_ids_csr (Csr.of_digraph g)

let components g =
  let comp, k = component_ids g in
  let buckets = Array.make k [] in
  for v = Digraph.n g - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets

let nontrivial g =
  components g
  |> List.filter (fun c ->
         match c with
         | [] -> false
         | [ v ] -> Digraph.mem_edge g v v
         | _ :: _ :: _ -> true)
