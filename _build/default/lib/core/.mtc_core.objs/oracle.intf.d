lib/core/oracle.mli: Checker Deps History Txn
