(* Tests for the observability layer: histogram percentiles against a
   sorted-array oracle, span recording across domains, exporter output
   validity (a small JSON parser for the Chrome trace, a line grammar
   for the Prometheus text), profile aggregation, and the
   zero-allocation guarantee of the disabled tracing path. *)

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Histogram. *)

(* The log2 histogram's percentile has an exact characterization: the
   bucket it reports is the bucket of the sample a sorted array puts at
   that rank, and the value is that bucket's upper edge clamped to the
   observed max. *)
let prop_percentile_oracle =
  QCheck2.Test.make ~name:"histogram percentile matches sorted-array oracle"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (int_range 0 1_000_000_000))
        (int_range 1 100))
    (fun (samples, p) ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank =
        Stdlib.max 1
          (int_of_float (ceil (float_of_int p /. 100.0 *. float_of_int n)))
      in
      let oracle = List.nth sorted (rank - 1) in
      let expected =
        Stdlib.min (List.nth sorted (n - 1))
          (Obs.Histogram.upper_edge (Obs.Histogram.bucket_of oracle))
      in
      Obs.Histogram.percentile h (float_of_int p) = expected)

let test_histogram_empty () =
  let h = Obs.Histogram.create () in
  checki "empty p99" 0 (Obs.Histogram.percentile h 99.0);
  Alcotest.check (Alcotest.float 0.0) "empty mean" 0.0 (Obs.Histogram.mean h)

let test_histogram_snapshot_consistent () =
  (* Concurrent feeders: every snapshot must be internally consistent —
     count equals the bucket sum (a torn read would break it). *)
  let h = Obs.Histogram.create () in
  let feeders =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 10_000 do
              Obs.Histogram.observe h ((i * (d + 1)) land 0xFFFF)
            done))
  in
  for _ = 1 to 100 do
    let s = Obs.Histogram.snapshot h in
    let bucket_sum = Array.fold_left ( + ) 0 s.Obs.Histogram.s_buckets in
    checki "snapshot count = bucket sum" s.Obs.Histogram.s_count bucket_sum
  done;
  List.iter Domain.join feeders;
  checki "final count" 40_000 (Obs.Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let test_counter_across_domains () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "test_total" in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25_000 do
              Obs.Counter.incr c
            done))
  in
  List.iter Domain.join workers;
  checki "striped counter sums" 100_000 (Obs.Counter.get c)

let test_registry_idempotent_and_typed () =
  let r = Obs.Metrics.create () in
  let c1 = Obs.Metrics.counter r "mtc_thing_total" in
  let c2 = Obs.Metrics.counter r "mtc_thing_total" in
  Obs.Counter.incr c1;
  checki "same instrument" 1 (Obs.Counter.get c2);
  (match Obs.Metrics.gauge r "mtc_thing_total" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ());
  (match Obs.Metrics.counter r "bad name" with
  | _ -> Alcotest.fail "invalid name must raise"
  | exception Invalid_argument _ -> ());
  checkb "valid_name accepts" true (Obs.Metrics.valid_name "a_b:c9");
  checkb "valid_name rejects leading digit" false (Obs.Metrics.valid_name "9a")

let test_gauge_max_update () =
  let g = Obs.Gauge.create () in
  Obs.Gauge.max_update g 5;
  Obs.Gauge.max_update g 3;
  checki "high-water keeps max" 5 (Obs.Gauge.get g);
  Obs.Gauge.set g 2;
  checki "set overrides" 2 (Obs.Gauge.get g)

(* ------------------------------------------------------------------ *)
(* Spans. *)

let sp_outer = Obs.Trace.intern "t/outer"
let sp_inner = Obs.Trace.intern "t/inner"

let with_tracing f =
  Obs.Trace.clear ();
  Obs.Trace.enable ();
  Fun.protect ~finally:Obs.Trace.disable f

let test_span_nesting_across_domains () =
  with_tracing (fun () ->
      let jobs = 4 in
      let workers =
        List.init jobs (fun _ ->
            Domain.spawn (fun () ->
                let t_out = Obs.Trace.enter () in
                let t_in = Obs.Trace.enter () in
                ignore (Sys.opaque_identity (Array.make 1000 0));
                Obs.Trace.exit sp_inner t_in;
                Obs.Trace.exit sp_outer t_out))
      in
      List.iter Domain.join workers;
      Obs.Trace.disable ();
      let events = Obs.Trace.events () in
      checki "two spans per domain" (2 * jobs) (List.length events);
      (* globally sorted by start time *)
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            a.Obs.Trace.ev_t0 <= b.Obs.Trace.ev_t0 && sorted rest
        | _ -> true
      in
      checkb "events time-sorted" true (sorted events);
      (* per domain: inner nested inside outer *)
      List.iter
        (fun d ->
          let mine =
            List.filter (fun e -> e.Obs.Trace.ev_dom = d) events
          in
          match
            ( List.find_opt (fun e -> e.Obs.Trace.ev_name = "t/outer") mine,
              List.find_opt (fun e -> e.Obs.Trace.ev_name = "t/inner") mine )
          with
          | Some o, Some i ->
              checkb "inner starts after outer" true
                (o.Obs.Trace.ev_t0 <= i.Obs.Trace.ev_t0);
              checkb "inner ends before outer" true
                (i.Obs.Trace.ev_t0 + i.Obs.Trace.ev_dur
                <= o.Obs.Trace.ev_t0 + o.Obs.Trace.ev_dur)
          | _ -> Alcotest.fail "missing span on a domain")
        (List.sort_uniq compare
           (List.map (fun e -> e.Obs.Trace.ev_dom) events)))

let test_span_disabled_records_nothing () =
  Obs.Trace.clear ();
  Obs.Trace.disable ();
  let t0 = Obs.Trace.enter () in
  Obs.Trace.exit sp_outer t0;
  Obs.Trace.with_span sp_inner (fun () -> ());
  checki "no events when disabled" 0 (List.length (Obs.Trace.events ()))

let test_span_enabled_midflight_discarded () =
  (* A span entered while disabled must not record a garbage duration
     when tracing turns on before it exits. *)
  Obs.Trace.clear ();
  Obs.Trace.disable ();
  let t0 = Obs.Trace.enter () in
  Obs.Trace.enable ();
  Obs.Trace.exit sp_outer t0;
  Obs.Trace.disable ();
  checki "mid-flight span dropped" 0 (List.length (Obs.Trace.events ()))

let test_ring_overwrite_counts_dropped () =
  with_tracing (fun () ->
      let n = (1 lsl 15) + 100 in
      for _ = 1 to n do
        Obs.Trace.instant sp_inner
      done;
      Obs.Trace.disable ();
      checki "latest cap events kept" (1 lsl 15)
        (List.length (Obs.Trace.events ()));
      checki "overflow counted" 100 (Obs.Trace.dropped ()))

(* The acceptance criterion of --profile: with tracing on, the checker's
   phase spans account for (nearly) all of the verification wall time. *)
let test_phase_sum_close_to_wall () =
  let spec =
    Mt_gen.generate
      { Mt_gen.default with num_txns = 2000; num_keys = 200; seed = 11 }
  in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 200;
      seed = 11 }
  in
  let h = (Scheduler.run ~db ~spec ()).Scheduler.history in
  (* warm up so one-time costs (page faults, lazy init) don't land
     inside the measured run only *)
  ignore (Checker.check_si h);
  with_tracing (fun () ->
      let t0 = Obs.Clock.now_ns () in
      ignore (Sys.opaque_identity (Checker.check_si h));
      let wall = Obs.Clock.now_ns () - t0 in
      Obs.Trace.disable ();
      let sum = Obs.Profile.phase_sum_ns (Obs.Trace.events ()) in
      checkb
        (Printf.sprintf "phase sum %d within wall %d" sum wall)
        true
        (sum <= wall && float_of_int sum >= 0.5 *. float_of_int wall))

(* ------------------------------------------------------------------ *)
(* Profile aggregation over synthetic events. *)

let ev ?(dom = 0) name t0 dur =
  { Obs.Trace.ev_name = name; ev_t0 = t0; ev_dur = dur; ev_dom = dom }

let test_profile_no_double_count () =
  (* parent [0,100) with nested children: only the parent counts toward
     the phase total; a sibling top-level span adds up. *)
  let events =
    [
      ev "infer/deps" 0 100;
      ev "infer/deps/rw" 10 30;
      ev "infer/deps/freeze" 50 40;
      ev "infer/index" 200 50;
      ev ~dom:1 "infer/deps" 0 100; (* other domain: counted separately *)
    ]
  in
  match Obs.Profile.phases events with
  | [ p ] ->
      Alcotest.check Alcotest.string "phase name" "infer" p.Obs.Profile.p_name;
      checki "top-level total" 250 p.Obs.Profile.p_total_ns;
      checki "top-level count" 3 p.Obs.Profile.p_count;
      checki "sub rows include nested" 4 (List.length p.Obs.Profile.p_subs)
  | ps -> Alcotest.failf "expected 1 phase, got %d" (List.length ps)

let test_profile_identical_spans_once () =
  (* double instrumentation: identical intervals must count once *)
  let events = [ ev "check/cycle" 0 50; ev "check/cycle" 0 50 ] in
  match Obs.Profile.phases events with
  | [ p ] -> checki "identical intervals counted once" 50 p.Obs.Profile.p_total_ns
  | _ -> Alcotest.fail "expected 1 phase"

(* ------------------------------------------------------------------ *)
(* Chrome trace JSON: a minimal JSON parser as the schema check. *)

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad_json (Printf.sprintf "%s at %d" m !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "eof" in
  let advance () = incr pos in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let parse_scalar () =
    match peek () with
    | '"' ->
        advance ();
        let fin = ref false in
        while not !fin do
          match peek () with
          | '"' -> advance (); fin := true
          | '\\' -> advance (); advance ()
          | _ -> advance ()
        done
    | 't' -> pos := !pos + 4
    | 'f' -> pos := !pos + 5
    | 'n' -> pos := !pos + 4
    | _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          advance ()
        done;
        if !pos = start then fail "bad scalar"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            skip_ws ();
            expect '"';
            pos := !pos - 1;
            parse_scalar ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' -> advance ()
            | '}' -> advance (); fin := true
            | _ -> fail "expected , or }"
          done
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' -> advance ()
            | ']' -> advance (); fin := true
            | _ -> fail "expected , or ]"
          done
        end
    | _ -> parse_scalar ()
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_chrome_json_valid () =
  (* names with every character the escaper must handle *)
  let events =
    [
      ev "plain" 1_000 2_000;
      ev "with \"quotes\" and \\backslash" 3_000 10;
      ev "newline\nand tab\tand ctrl\x01" 5_000 0;
    ]
  in
  let json = Obs.Export.chrome_json events in
  (match parse_json json with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "invalid JSON: %s\n%s" m json);
  checkb "has traceEvents" true
    (String.length json > 15 && String.sub json 0 15 = "{\"traceEvents\":");
  checkb "complete events" true
    (let rec count i acc =
       match String.index_from_opt json i 'X' with
       | Some j -> count (j + 1) (acc + 1)
       | None -> acc
     in
     count 0 0 >= 3)

let test_chrome_json_empty () =
  match parse_json (Obs.Export.chrome_json []) with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "invalid empty trace: %s" m

(* ------------------------------------------------------------------ *)
(* Prometheus exposition grammar. *)

let is_metric_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let check_prometheus_grammar text =
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line <> "" then
        if String.length line >= 2 && String.sub line 0 2 = "# " then begin
          match String.split_on_char ' ' line with
          | "#" :: ("HELP" | "TYPE") :: name :: _ when is_metric_name name -> ()
          | _ -> Alcotest.failf "bad comment line %S" line
        end
        else
          match String.index_opt line ' ' with
          | None -> Alcotest.failf "no value on line %S" line
          | Some i -> (
              let series = String.sub line 0 i in
              let value =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              (match float_of_string_opt value with
              | Some _ -> ()
              | None -> Alcotest.failf "bad value %S on line %S" value line);
              match String.index_opt series '{' with
              | None ->
                  if not (is_metric_name series) then
                    Alcotest.failf "bad metric name %S" series
              | Some j ->
                  if not (is_metric_name (String.sub series 0 j)) then
                    Alcotest.failf "bad metric name in %S" series;
                  if series.[String.length series - 1] <> '}' then
                    Alcotest.failf "unterminated labels in %S" series))
    lines

let test_prometheus_grammar_and_buckets () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r ~help:"a counter with \\ and\nnewline" "t_total" in
  Obs.Counter.add c 7;
  let g = Obs.Metrics.gauge r "t_gauge" in
  Obs.Gauge.set g (-3);
  let h = Obs.Metrics.histogram r ~help:"hist" "t_hist" in
  List.iter (Obs.Histogram.observe h) [ 1; 5; 5; 900; 70_000 ];
  let text = Obs.Export.prometheus r in
  check_prometheus_grammar text;
  (* cumulative buckets end at +Inf = count; _sum and _count present *)
  let lines = String.split_on_char '\n' text in
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 14 && String.sub l 0 14 = "t_hist_bucket{" then
          String.index_opt l ' '
          |> Option.map (fun i ->
                 int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  checkb "buckets monotone" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a <= b && mono rest
       | _ -> true
     in
     mono bucket_counts);
  checki "+Inf equals count" 5 (List.nth bucket_counts (List.length bucket_counts - 1));
  checkb "has sum line" true (List.exists (fun l -> String.length l >= 10 && String.sub l 0 10 = "t_hist_sum") lines);
  checkb "has count line" true
    (List.exists (fun l -> l = "t_hist_count 5") lines)

let test_prometheus_service_registry () =
  let m = Metrics.create () in
  Metrics.connection m;
  Metrics.feed m ~ns:1234 ~words:88;
  Metrics.queue_depth m 17;
  let text = Obs.Export.prometheus (Metrics.registry m) in
  check_prometheus_grammar text;
  checkb "has connections counter" true
    (List.exists
       (fun l -> l = "mtc_connections_total 1")
       (String.split_on_char '\n' text))

(* ------------------------------------------------------------------ *)
(* Event journal. *)

(* Concurrent appends from N domains: below the per-domain ring capacity
   nothing is lost; above it, every overwritten event is accounted by
   [dropped]. *)
let prop_journal_concurrent_appends =
  QCheck2.Test.make ~name:"journal: concurrent appends all accounted"
    ~count:8
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 (1 lsl 14)))
    (fun (doms, per_dom) ->
      Obs.Journal.clear ();
      Obs.Journal.enable ();
      Fun.protect ~finally:Obs.Journal.disable (fun () ->
          let workers =
            List.init doms (fun d ->
                Domain.spawn (fun () ->
                    for i = 1 to per_dom do
                      Obs.Journal.emit Obs.Journal.Session_open ~a:d ~b:i
                        ~c:0
                    done))
          in
          List.iter Domain.join workers;
          let cap = 1 lsl 13 in
          let kept = List.length (Obs.Journal.events ()) in
          let dropped = Obs.Journal.dropped () in
          (* every emitted event is either retained or counted dropped *)
          kept + dropped = doms * per_dom
          && kept = doms * Stdlib.min per_dom cap))

let test_journal_drain_consumes () =
  Obs.Journal.clear ();
  Obs.Journal.enable ();
  Fun.protect ~finally:Obs.Journal.disable (fun () ->
      Obs.Journal.emit Obs.Journal.Pin_warn ~a:7 ~b:1 ~c:2;
      Obs.Journal.emit Obs.Journal.Pin_fence ~a:7 ~b:1 ~c:0;
      (match Obs.Journal.drain () with
      | [ e1; e2 ] ->
          checkb "kinds in order" true
            (e1.Obs.Journal.j_kind = Obs.Journal.Pin_warn
            && e2.Obs.Journal.j_kind = Obs.Journal.Pin_fence);
          checki "payload survives" 7 e1.Obs.Journal.j_a
      | l -> Alcotest.failf "expected 2 drained events, got %d" (List.length l));
      checki "drain consumed" 0 (List.length (Obs.Journal.drain ()));
      (* the non-consuming view still has both *)
      checki "events () non-consuming" 2
        (List.length (Obs.Journal.events ())))

(* ------------------------------------------------------------------ *)
(* The zero-allocation guarantee of the disabled path. *)

let test_disabled_path_allocates_nothing () =
  Obs.Trace.disable ();
  let spin () =
    for _ = 1 to 10_000 do
      let t0 = Obs.Trace.enter () in
      Obs.Trace.exit sp_outer t0
    done
  in
  (* Minimum of a few runs: Gc.allocated_bytes can absorb counters from
     domains terminated by earlier suites, inflating a single delta.
     The empty-loop baseline subtracts what Gc.allocated_bytes itself
     boxes (a float per call). *)
  let measure f =
    f () (* warm-up *);
    let best = ref infinity in
    for _ = 1 to 3 do
      let a0 = Gc.allocated_bytes () in
      f ();
      let d = Gc.allocated_bytes () -. a0 in
      if d < !best then best := d
    done;
    !best
  in
  let baseline = measure (fun () -> ()) in
  let spans = measure spin in
  if spans > baseline then
    Alcotest.failf "disabled span path allocated %.0f bytes over 10k spans"
      (spans -. baseline)

(* Same guarantee for the event journal: a disabled [emit] is one atomic
   load and a branch — no event record, no ring touch, no allocation. *)
let test_disabled_journal_allocates_nothing () =
  Obs.Journal.disable ();
  let spin () =
    for i = 1 to 10_000 do
      Obs.Journal.emit Obs.Journal.Gc_compact ~a:i ~b:i ~c:i
    done
  in
  let measure f =
    f () (* warm-up *);
    let best = ref infinity in
    for _ = 1 to 3 do
      let a0 = Gc.allocated_bytes () in
      f ();
      let d = Gc.allocated_bytes () -. a0 in
      if d < !best then best := d
    done;
    !best
  in
  let baseline = measure (fun () -> ()) in
  let emits = measure spin in
  if emits > baseline then
    Alcotest.failf "disabled journal path allocated %.0f bytes over 10k emits"
      (emits -. baseline)

let suite =
  [
    qtest prop_percentile_oracle;
    ("histogram: empty", `Quick, test_histogram_empty);
    ("histogram: snapshots consistent under concurrency", `Quick,
     test_histogram_snapshot_consistent);
    ("counter: striped increments sum across domains", `Quick,
     test_counter_across_domains);
    ("registry: idempotent, kind- and name-checked", `Quick,
     test_registry_idempotent_and_typed);
    ("gauge: max_update high-water", `Quick, test_gauge_max_update);
    ("spans: nesting and ordering across domains", `Quick,
     test_span_nesting_across_domains);
    ("spans: disabled records nothing", `Quick,
     test_span_disabled_records_nothing);
    ("spans: enabled mid-flight discarded", `Quick,
     test_span_enabled_midflight_discarded);
    ("spans: ring overwrite counts dropped", `Quick,
     test_ring_overwrite_counts_dropped);
    ("profile: phase sum close to wall on a real check", `Quick,
     test_phase_sum_close_to_wall);
    ("profile: nested spans not double-counted", `Quick,
     test_profile_no_double_count);
    ("profile: identical spans counted once", `Quick,
     test_profile_identical_spans_once);
    ("chrome trace: JSON valid with hostile names", `Quick,
     test_chrome_json_valid);
    ("chrome trace: empty event list", `Quick, test_chrome_json_empty);
    ("prometheus: grammar and cumulative buckets", `Quick,
     test_prometheus_grammar_and_buckets);
    ("prometheus: service registry exposition", `Quick,
     test_prometheus_service_registry);
    qtest prop_journal_concurrent_appends;
    ("journal: drain consumes, events does not", `Quick,
     test_journal_drain_consumes);
    ("disabled tracing allocates nothing", `Quick,
     test_disabled_path_allocates_nothing);
    ("disabled journal allocates nothing", `Quick,
     test_disabled_journal_allocates_nothing);
  ]
