type kind =
  | Uniform
  | Zipfian of float
  | Hotspot of float * float
  | Exponential of float

type t = { kind : kind; n : int; zipf_cdf : float array }

let default_zipf_theta = 0.99

(* Precompute the zipfian CDF once; sampling is then a binary search.
   For the key-space sizes used in the benchmarks (<= 10^5) this is both
   exact and fast, avoiding the rejection loop of the YCSB generator. *)
let zipf_cdf theta n =
  let w = Array.init n (fun i -> 1.0 /. ((float_of_int (i + 1)) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let make kind ~n =
  if n <= 0 then invalid_arg "Distribution.make: n must be positive";
  let zipf_cdf =
    match kind with
    | Zipfian theta -> zipf_cdf theta n
    | Uniform | Hotspot _ | Exponential _ -> [||]
  in
  { kind; n; zipf_cdf }

let kind t = t.kind
let size t = t.n

let search_cdf cdf u =
  (* Smallest index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let sample t rng =
  match t.kind with
  | Uniform -> Rng.int rng t.n
  | Zipfian _ -> search_cdf t.zipf_cdf (Rng.float rng 1.0)
  | Hotspot (hot_fraction, hot_prob) ->
      let hot_n = Stdlib.max 1 (int_of_float (hot_fraction *. float_of_int t.n)) in
      if Rng.chance rng hot_prob then Rng.int rng hot_n
      else if hot_n >= t.n then Rng.int rng t.n
      else hot_n + Rng.int rng (t.n - hot_n)
  | Exponential rate ->
      let x = Rng.exponential rng rate in
      let i = int_of_float (x *. float_of_int t.n /. 5.0) in
      if i >= t.n then t.n - 1 else i

let all_kinds =
  [ Uniform; Zipfian default_zipf_theta; Hotspot (0.2, 0.8); Exponential 1.0 ]

let kind_name = function
  | Uniform -> "uniform"
  | Zipfian _ -> "zipfian"
  | Hotspot _ -> "hotspot"
  | Exponential _ -> "exponential"

let kind_of_string = function
  | "uniform" -> Some Uniform
  | "zipfian" -> Some (Zipfian default_zipf_theta)
  | "hotspot" -> Some (Hotspot (0.2, 0.8))
  | "exponential" -> Some (Exponential 1.0)
  | _ -> None
