(** Cobra-style constraint pruning (paper Section V-B): a polygraph
    constraint whose two writers are already ordered by known edges can be
    decided without the solver — and its induced edges join the known
    graph, possibly deciding further constraints (run to fixpoint).

    [use_anti] controls which known edges feed the reachability oracle:
    Cobra (SER) prunes over all edges, PolySI (SI) only over dependency
    edges (an anti-dependency path alone does not force a version
    order under SI). *)

type outcome = {
  fixed : (Polygraph.edge_kind * int * int) list;
      (** known edges plus all edges of decided constraints *)
  undecided : Polygraph.constr list;
  decided : int;
  contradiction : (int * int) option;
      (** writer pair ordered both ways by known edges: a violation *)
  prune_s : float;
}

val run : n:int -> Polygraph.t -> use_anti:bool -> outcome
