(* Tests for mtc.workload: Spec, Mt_gen, Gt_gen, Append_gen. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_spec_counts () =
  let spec =
    {
      Spec.name = "t";
      num_keys = 2;
      sessions = [| [ [ Spec.Pread 0 ]; [ Spec.Pread 1; Spec.Pwrite 1 ] ]; [] |];
    }
  in
  checki "sessions" 2 (Spec.num_sessions spec);
  checki "txns" 2 (Spec.num_txns spec);
  checki "ops" 3 (Spec.num_ops spec)

let test_spec_mini_predicate () =
  checkb "rw is mini" true (Spec.is_mini_op_list [ Spec.Pread 0; Spec.Pwrite 0 ]);
  checkb "blind write not" false (Spec.is_mini_op_list [ Spec.Pwrite 0 ]);
  checkb "append not" false (Spec.is_mini_op_list [ Spec.Pread 0; Spec.Pappend 0 ])

let test_mt_gen_all_mini () =
  List.iter
    (fun dist ->
      let spec =
        Mt_gen.generate
          { Mt_gen.default with num_txns = 500; dist; num_keys = 17; seed = 5 }
      in
      Array.iter
        (List.iter (fun txn ->
             checkb (Distribution.kind_name dist) true
               (Spec.is_mini_op_list txn)))
        spec.Spec.sessions)
    Distribution.all_kinds

let test_mt_gen_txn_count () =
  let spec = Mt_gen.generate { Mt_gen.default with num_txns = 123 } in
  checki "exact count" 123 (Spec.num_txns spec)

let test_mt_gen_even_spread () =
  let spec =
    Mt_gen.generate { Mt_gen.default with num_txns = 100; num_sessions = 10 }
  in
  Array.iter
    (fun txns -> checki "10 per session" 10 (List.length txns))
    spec.Spec.sessions

let test_mt_gen_keys_in_range () =
  let spec = Mt_gen.generate { Mt_gen.default with num_keys = 5; num_txns = 300 } in
  Array.iter
    (List.iter
       (List.iter (fun op ->
            let k =
              match op with
              | Spec.Pread k | Spec.Pwrite k | Spec.Pappend k -> k
            in
            checkb "in range" true (k >= 0 && k < 5))))
    spec.Spec.sessions

let test_mt_gen_deterministic () =
  let a = Mt_gen.generate Mt_gen.default in
  let b = Mt_gen.generate Mt_gen.default in
  checkb "same spec" true (a.Spec.sessions = b.Spec.sessions)

let test_mt_gen_single_key_space () =
  (* Two-key shapes must degrade gracefully with one key. *)
  let spec = Mt_gen.generate { Mt_gen.default with num_keys = 1; num_txns = 200 } in
  Array.iter
    (List.iter (fun txn -> checkb "still mini" true (Spec.is_mini_op_list txn)))
    spec.Spec.sessions

let test_mt_gen_ops_bounded () =
  let spec = Mt_gen.generate { Mt_gen.default with num_txns = 300 } in
  Array.iter
    (List.iter (fun txn ->
         checkb "at most 4 ops" true (List.length txn <= 4)))
    spec.Spec.sessions

let test_gt_gen_flavours () =
  let spec =
    Gt_gen.generate { Gt_gen.default with num_txns = 2000; ops_per_txn = 10 }
  in
  let ro = ref 0 and wo = ref 0 and rmw = ref 0 in
  Array.iter
    (List.iter (fun txn ->
         let reads =
           List.length (List.filter (function Spec.Pread _ -> true | _ -> false) txn)
         in
         let writes = List.length txn - reads in
         if writes = 0 then incr ro
         else if reads = 0 then incr wo
         else incr rmw))
    spec.Spec.sessions;
  checkb "~20% read-only" true (!ro > 300 && !ro < 500);
  checkb "~40% write-only" true (!wo > 650 && !wo < 950);
  checkb "~40% rmw" true (!rmw > 650 && !rmw < 950)

let test_gt_gen_op_count () =
  let spec =
    Gt_gen.generate { Gt_gen.default with num_txns = 100; ops_per_txn = 8 }
  in
  Array.iter
    (List.iter (fun txn -> checki "8 ops" 8 (List.length txn)))
    spec.Spec.sessions

let test_gt_gen_rmw_pairs () =
  let spec =
    Gt_gen.generate { Gt_gen.default with num_txns = 500; ops_per_txn = 6; seed = 2 }
  in
  (* RMW transactions write only keys they previously read. *)
  Array.iter
    (List.iter (fun txn ->
         let reads = List.filter_map (function Spec.Pread k -> Some k | _ -> None) txn in
         let writes = List.filter_map (function Spec.Pwrite k -> Some k | _ -> None) txn in
         if reads <> [] && writes <> [] then
           List.iter
             (fun k -> checkb "write follows read" true (List.mem k reads))
             writes))
    spec.Spec.sessions

let test_append_gen_modes () =
  let ap = Append_gen.generate { Append_gen.default with num_txns = 200 } in
  let has_append =
    Array.exists
      (List.exists (List.exists (function Spec.Pappend _ -> true | _ -> false)))
      ap.Spec.sessions
  in
  checkb "append mode has appends" true has_append;
  let wr =
    Append_gen.generate { Append_gen.default with num_txns = 200; registers = true }
  in
  let has_append_wr =
    Array.exists
      (List.exists (List.exists (function Spec.Pappend _ -> true | _ -> false)))
      wr.Spec.sessions
  in
  checkb "register mode has none" false has_append_wr

let test_append_gen_len_bounded () =
  let spec =
    Append_gen.generate { Append_gen.default with num_txns = 300; max_txn_len = 7 }
  in
  Array.iter
    (List.iter (fun txn ->
         let l = List.length txn in
         checkb "1..7 ops" true (l >= 1 && l <= 7)))
    spec.Spec.sessions

let suite =
  [
    ("spec counts", `Quick, test_spec_counts);
    ("spec mini predicate", `Quick, test_spec_mini_predicate);
    ("mt_gen: every txn is mini (all distributions)", `Quick, test_mt_gen_all_mini);
    ("mt_gen: exact txn count", `Quick, test_mt_gen_txn_count);
    ("mt_gen: even spread", `Quick, test_mt_gen_even_spread);
    ("mt_gen: keys in range", `Quick, test_mt_gen_keys_in_range);
    ("mt_gen: deterministic", `Quick, test_mt_gen_deterministic);
    ("mt_gen: one-key space", `Quick, test_mt_gen_single_key_space);
    ("mt_gen: at most 4 ops", `Quick, test_mt_gen_ops_bounded);
    ("gt_gen: 20/40/40 flavour mix", `Quick, test_gt_gen_flavours);
    ("gt_gen: ops per txn", `Quick, test_gt_gen_op_count);
    ("gt_gen: rmw writes follow reads", `Quick, test_gt_gen_rmw_pairs);
    ("append_gen: modes", `Quick, test_append_gen_modes);
    ("append_gen: length bounded", `Quick, test_append_gen_len_bounded);
  ]
