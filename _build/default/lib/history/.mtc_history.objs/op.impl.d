lib/history/op.ml: Format Scanf Stdlib
