type params = {
  num_sessions : int;
  num_txns : int;
  num_keys : int;
  max_txn_len : int;
  registers : bool;
  dist : Distribution.kind;
  seed : int;
}

let default =
  {
    num_sessions = 10;
    num_txns = 1000;
    num_keys = 10;
    max_txn_len = 4;
    registers = false;
    dist = Distribution.Exponential 1.0;
    seed = 42;
  }

let generate p =
  if p.num_sessions <= 0 then invalid_arg "Append_gen.generate: no sessions";
  if p.max_txn_len <= 0 then invalid_arg "Append_gen.generate: empty txns";
  let rng = Rng.create p.seed in
  let dist = Distribution.make p.dist ~n:p.num_keys in
  let sessions = Array.make p.num_sessions [] in
  let make_txn () =
    let len = 1 + Rng.int rng p.max_txn_len in
    List.init len (fun _ ->
        let k = Distribution.sample dist rng in
        if Rng.bool rng then Spec.Pread k
        else if p.registers then Spec.Pwrite k
        else Spec.Pappend k)
  in
  for i = 0 to p.num_txns - 1 do
    let s = i mod p.num_sessions in
    sessions.(s) <- make_txn () :: sessions.(s)
  done;
  {
    Spec.name =
      Printf.sprintf "%s-s%d-t%d-k%d-l%d"
        (if p.registers then "wr" else "append")
        p.num_sessions p.num_txns p.num_keys p.max_txn_len;
    num_keys = p.num_keys;
    sessions = Array.map List.rev sessions;
  }
