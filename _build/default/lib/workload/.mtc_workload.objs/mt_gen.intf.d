lib/workload/mt_gen.mli: Distribution Mini Spec
