(* Tests for the checking service: wire codec round-trips and decode
   totality, and end-to-end client/server runs over real Unix-domain and
   TCP sockets — verdict agreement with the batch checker, poisoned
   sessions, backpressure, idle timeout, mid-frame disconnects and
   graceful shutdown. *)

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Wire codec. *)

let txn_gen =
  QCheck2.Gen.(
    let* id = int_range 1 1_000_000 in
    let* session = int_range 1 64 in
    let* status = oneofl [ Txn.Committed; Txn.Aborted ] in
    let* start_ts = int_range (-1000) 1_000_000 in
    let* commit_ts = int_range (-1000) 1_000_000 in
    let* ops =
      list_size (int_range 0 8)
        (let* k = int_range 0 1000 in
         let* v = int_range (-5) 1_000_000_000 in
         let* w = bool in
         return (if w then Op.Write (k, v) else Op.Read (k, v)))
    in
    return (Txn.make ~id ~session ~status ~start_ts ~commit_ts ops))

let verdict_gen =
  QCheck2.Gen.(
    oneof
      [
        (let* n = int_range 0 1_000_000 in
         return (Wire.V_ok n));
        (let* anomaly = option (string_size (int_range 0 20)) in
         let* rendered = string_size (int_range 0 200) in
         return (Wire.V_violation { anomaly; rendered }));
      ])

let reason_gen =
  QCheck2.Gen.(
    oneof
      [
        oneofl
          [ Wire.R_requested; Wire.R_idle; Wire.R_shutdown; Wire.R_pinned ];
        (let* m = string_size (int_range 0 40) in
         return (Wire.R_protocol m));
      ])

let session_stat_gen =
  QCheck2.Gen.(
    let* ss_sid = int_range 0 100_000 in
    let* ss_shard = int_range 0 64 in
    let* ss_level = oneofl [ Checker.SSER; Checker.SER; Checker.SI ] in
    let* ss_poisoned = bool in
    let* ss_pinned = bool in
    let* ss_frontier = int_range 0 1_000_000 in
    let* ss_watermark = int_range (-1) 1_000_000 in
    let* ss_lag = int_range 0 1_000_000 in
    let* ss_live_words = int_range 0 100_000_000 in
    let* ss_queued = int_range 0 10_000 in
    let* ss_last_seq = int_range 0 1_000_000 in
    let* ss_feeds = int_range 0 1_000_000 in
    let* ss_age_ms = int_range 0 100_000_000 in
    let* ss_idle_ms = int_range 0 100_000_000 in
    return
      {
        Wire.ss_sid;
        ss_shard;
        ss_level;
        ss_poisoned;
        ss_pinned;
        ss_frontier;
        ss_watermark;
        ss_lag;
        ss_live_words;
        ss_queued;
        ss_last_seq;
        ss_feeds;
        ss_age_ms;
        ss_idle_ms;
      })

let journal_event_gen =
  QCheck2.Gen.(
    let* je_kind =
      oneofl
        [
          Obs.Journal.Throttle_on; Obs.Journal.Throttle_off;
          Obs.Journal.Gc_compact; Obs.Journal.Wal_fsync_stall;
          Obs.Journal.Snapshot; Obs.Journal.Session_open;
          Obs.Journal.Session_close; Obs.Journal.Session_resume;
          Obs.Journal.Poison; Obs.Journal.Pin_warn; Obs.Journal.Pin_fence;
        ]
    in
    let* je_age_ms = int_range 0 100_000_000 in
    let* je_dom = int_range 0 128 in
    let* je_a = int_range 0 100_000 in
    let* je_b = int_range 0 1_000_000_000 in
    let* je_c = int_range 0 1_000_000_000 in
    return { Wire.je_kind; je_age_ms; je_dom; je_a; je_b; je_c })

let frame_gen =
  QCheck2.Gen.(
    let sid = int_range 0 100_000 in
    let seq = int_range 0 100_000 in
    oneof
      [
        (let* version = int_range 0 1000 in
         return (Wire.Hello { version }));
        (let* version = int_range 0 1000 in
         let* server = string_size (int_range 0 30) in
         return (Wire.Welcome { version; server }));
        (let* level = oneofl [ Checker.SSER; Checker.SER; Checker.SI ] in
         let* num_keys = int_range 1 100_000 in
         let* skew = int_range (-100) 100 in
         let* ts = oneofl [ Ts.Ignore; Ts.Trust; Ts.Verify ] in
         let* gc =
           oneofl
             [ None; Some Online.Gc_off; Some Online.Gc_auto;
               Some (Online.Gc_words 4096) ]
         in
         return (Wire.Open_session { level; num_keys; skew; ts; gc }));
        (let* sid = sid in
         return (Wire.Session_opened { sid }));
        (let* sid = sid in
         let* seq = seq in
         let* txn = txn_gen in
         return (Wire.Feed { sid; seq; txn }));
        (let* sid = sid in
         let* seq = seq in
         let* verdict = verdict_gen in
         return (Wire.Verdict { sid; seq; verdict }));
        (let* sid = sid in
         let* seq = seq in
         return (Wire.Sync { sid; seq }));
        (let* sid = sid in
         let* queued = int_range 0 10_000 in
         return (Wire.Throttle { sid; queued }));
        (let* sid = sid in
         return (Wire.Resume { sid }));
        return Wire.Stats_request;
        (let* json = string_size (int_range 0 100) in
         return (Wire.Stats_reply { json }));
        (let* sid = sid in
         return (Wire.Close_session { sid }));
        (let* sid = sid in
         let* reason = reason_gen in
         return (Wire.Session_closed { sid; reason }));
        (let* code = int_range 0 100 in
         let* msg = string_size (int_range 0 60) in
         return (Wire.Error { code; msg }));
        return Wire.Session_stats_request;
        (let* sessions = list_size (int_range 0 5) session_stat_gen in
         let* events = list_size (int_range 0 5) journal_event_gen in
         let* journal_dropped = int_range 0 100_000 in
         return
           (Wire.Session_stats_reply { sessions; events; journal_dropped }));
        return Wire.Bye;
      ])

let txn_equal (a : Txn.t) (b : Txn.t) =
  a.Txn.id = b.Txn.id && a.Txn.session = b.Txn.session
  && a.Txn.status = b.Txn.status
  && a.Txn.start_ts = b.Txn.start_ts
  && a.Txn.commit_ts = b.Txn.commit_ts
  && a.Txn.ops = b.Txn.ops

let frame_equal a b =
  match (a, b) with
  | Wire.Feed f, Wire.Feed g ->
      f.sid = g.sid && f.seq = g.seq && txn_equal f.txn g.txn
  | a, b -> a = b

(* P1: every frame survives encode -> decode bit-exactly. *)
let prop_frame_roundtrip =
  QCheck2.Test.make ~name:"wire frame round-trip" ~count:500
    ~print:(fun f -> Wire.frame_name f)
    frame_gen
    (fun frame ->
      match Wire.of_string (Wire.to_string frame) with
      | Ok (decoded, pos) ->
          frame_equal frame decoded && pos = String.length (Wire.to_string frame)
      | Error _ -> false)

(* P2: varints round-trip the whole int range (incl. the min_int
   timestamp sentinels of the initial transaction). *)
let test_varint_extremes () =
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Binio.add_varint buf n;
      let r = Binio.reader (Buffer.contents buf) in
      checki (Printf.sprintf "varint %d" n) n (Binio.read_varint r);
      checkb "consumed" true (Binio.at_end r))
    [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int; min_int + 1; max_int - 1 ]

(* P3: decoding is total — truncations and random corruption return
   [Error], never raise. *)
let prop_decode_total =
  QCheck2.Test.make ~name:"wire decode never raises" ~count:300
    ~print:(fun (f, cut, _) -> Printf.sprintf "%s cut=%d" (Wire.frame_name f) cut)
    QCheck2.Gen.(
      let* f = frame_gen in
      let* cut = int_range 0 200 in
      let* flips = list_size (int_range 0 3) (pair (int_range 0 500) (int_range 0 255)) in
      return (f, cut, flips))
    (fun (frame, cut, flips) ->
      let s = Wire.to_string frame in
      (* payload truncation through Wire.decode *)
      let payload = String.sub s 4 (String.length s - 4) in
      let truncated = String.sub payload 0 (min cut (String.length payload)) in
      let r1 =
        match Wire.decode truncated with Ok _ | Error _ -> true
      in
      (* byte corruption through Wire.of_string *)
      let b = Bytes.of_string s in
      List.iter
        (fun (pos, v) ->
          if pos < Bytes.length b then Bytes.set b pos (Char.chr v))
        flips;
      let r2 =
        match Wire.of_string (Bytes.to_string b) with Ok _ | Error _ -> true
      in
      r1 && r2)

(* ------------------------------------------------------------------ *)
(* End-to-end over real sockets. *)

let temp_sock =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mtc-test-%d-%d.sock" (Unix.getpid ()) !ctr)

let with_server ?(config = Server.default_config) f =
  let path = temp_sock () in
  let config = { config with Server.listen = [ Server.A_unix path ] } in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () -> f t (Server.A_unix path))

let with_client addr f =
  match Client.connect addr with
  | Error e -> Alcotest.fail ("connect: " ^ e)
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let engine_history ?(txns = 200) ~level ~fault ~seed () =
  let spec =
    Mt_gen.generate { Mt_gen.default with num_txns = txns; num_keys = 10; seed }
  in
  let db = { Db.level; fault; num_keys = 10; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

(* Feeding over the wire must reach the same verdict as the batch
   checker on the same history — clean and faulty engines alike. *)
let test_service_agrees_with_batch () =
  let cases =
    [
      (Isolation.Strict_serializable, Checker.SSER, Fault.No_fault);
      (Isolation.Serializable, Checker.SER, Fault.No_fault);
      (Isolation.Snapshot, Checker.SI, Fault.No_fault);
      (Isolation.Snapshot, Checker.SI, Fault.Lost_update 0.2);
      (Isolation.Snapshot, Checker.SER, Fault.Lost_update 0.2);
      (Isolation.Snapshot, Checker.SI, Fault.Aborted_read 0.2);
    ]
  in
  with_server (fun _ addr ->
      with_client addr (fun c ->
          List.iteri
            (fun i (engine, level, fault) ->
              for seed = 1 to 2 do
                let h = engine_history ~level:engine ~fault ~seed () in
                let batch = Checker.passes (Checker.check level h) in
                let sid =
                  match
                    Client.open_session c ~level ~num_keys:h.History.num_keys ()
                  with
                  | Ok sid -> sid
                  | Error e -> Alcotest.fail ("open: " ^ e)
                in
                match Client.feed_history c ~sid h with
                | Error e -> Alcotest.fail ("feed: " ^ e)
                | Ok (Wire.V_ok n) ->
                    checkb
                      (Printf.sprintf "case %d seed %d: service pass = batch"
                         i seed)
                      batch true;
                    checki "all txns accepted" (History.num_txns h - 1) n
                | Ok (Wire.V_violation _) ->
                    checkb
                      (Printf.sprintf "case %d seed %d: service fail = batch"
                         i seed)
                      batch false
              done)
            cases))

(* SSER with a skewed clock, negotiated at session open. *)
let test_service_sser_skew () =
  let t1 =
    Txn.make ~id:1 ~session:1 ~start_ts:0 ~commit_ts:10
      [ Op.Read (0, 0); Op.Write (0, 1) ]
  in
  let t2 =
    Txn.make ~id:2 ~session:2 ~start_ts:12 ~commit_ts:30 [ Op.Read (0, 0) ]
  in
  let h = History.make ~num_keys:1 ~num_sessions:2 [ t1; t2 ] in
  with_server (fun _ addr ->
      with_client addr (fun c ->
          let feed_with skew =
            let sid =
              match
                Client.open_session c ~level:Checker.SSER ~num_keys:1 ~skew ()
              with
              | Ok sid -> sid
              | Error e -> Alcotest.fail ("open: " ^ e)
            in
            match Client.feed_history c ~sid h with
            | Ok v -> v
            | Error e -> Alcotest.fail ("feed: " ^ e)
          in
          (match feed_with 0 with
          | Wire.V_violation _ -> ()
          | Wire.V_ok _ -> Alcotest.fail "stale read must fail SSER at skew 0");
          match feed_with 5 with
          | Wire.V_ok 2 -> ()
          | _ -> Alcotest.fail "skew 5 must tolerate the drift"))

(* After a violation the session is poisoned: every further feed and
   sync answers with the identical rendered counterexample. *)
let test_service_poisoned_session () =
  with_server (fun _ addr ->
      with_client addr (fun c ->
          let sid =
            match Client.open_session c ~level:Checker.SI ~num_keys:1 () with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          let t1 = Txn.make ~id:1 ~session:1 [ Op.Read (0, 0); Op.Write (0, 1) ] in
          let t2 = Txn.make ~id:2 ~session:2 [ Op.Read (0, 0); Op.Write (0, 2) ] in
          ignore (Client.feed c ~sid t1);
          ignore (Client.feed c ~sid t2);
          let first =
            match Client.sync c ~sid with
            | Ok (Wire.V_violation { rendered; _ }) -> rendered
            | Ok (Wire.V_ok _) -> Alcotest.fail "divergence must be flagged"
            | Error e -> Alcotest.fail ("sync: " ^ e)
          in
          (* keep feeding: same counterexample, byte for byte *)
          let t3 = Txn.make ~id:3 ~session:1 [ Op.Read (0, 1) ] in
          (match Client.feed c ~sid t3 with
          | Ok (Client.Early_verdict (Wire.V_violation { rendered; _ })) ->
              Alcotest.check Alcotest.string "same rendering (feed)" first
                rendered
          | Ok _ -> (
              (* verdict may not have been polled yet; sync must agree *)
              match Client.sync c ~sid with
              | Ok (Wire.V_violation { rendered; _ }) ->
                  Alcotest.check Alcotest.string "same rendering (sync)" first
                    rendered
              | _ -> Alcotest.fail "poisoned session must keep failing")
          | Error e -> Alcotest.fail ("feed: " ^ e));
          match Client.sync c ~sid with
          | Ok (Wire.V_violation { rendered; _ }) ->
              Alcotest.check Alcotest.string "same rendering" first rendered
          | _ -> Alcotest.fail "poisoned session must keep failing"))

(* A client dying mid-frame must not disturb other sessions. *)
let test_service_midframe_disconnect () =
  with_server (fun _ addr ->
      (* connection A: handshake, then half a frame, then vanish *)
      let path = match addr with Server.A_unix p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let bufs = Wire.out_bufs () in
      Wire.write_frame fd bufs (Wire.Hello { version = Wire.version });
      (match Wire.read_frame fd with
      | Ok (Some (Wire.Welcome _)) -> ()
      | _ -> Alcotest.fail "welcome expected");
      Wire.write_frame fd bufs
        (Wire.Open_session
           { level = Checker.SER; num_keys = 4; skew = 0; ts = Ts.Ignore;
             gc = None });
      (match Wire.read_frame fd with
      | Ok (Some (Wire.Session_opened _)) -> ()
      | _ -> Alcotest.fail "session-opened expected");
      (* a torn frame: a length prefix promising 100 bytes, then 3 *)
      ignore (Unix.write fd (Bytes.of_string "\000\000\000\100abc") 0 7);
      Unix.close fd;
      (* connection B still checks fine *)
      with_client addr (fun c ->
          let h =
            engine_history ~level:Isolation.Serializable ~fault:Fault.No_fault
              ~seed:7 ()
          in
          let sid =
            match
              Client.open_session c ~level:Checker.SER
                ~num_keys:h.History.num_keys ()
            with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          match Client.feed_history c ~sid h with
          | Ok (Wire.V_ok _) -> ()
          | Ok (Wire.V_violation _) -> Alcotest.fail "history should pass"
          | Error e -> Alcotest.fail ("feed: " ^ e)))

(* A tiny queue plus an artificially slow worker must provoke the
   advisory throttle frames, and the stream must still verify fully. *)
let test_service_backpressure () =
  let metrics = Metrics.create () in
  let config =
    {
      Server.default_config with
      Server.queue_capacity = 4;
      drain_delay = 0.002;
      metrics;
    }
  in
  with_server ~config (fun _ addr ->
      with_client addr (fun c ->
          let txns =
            List.init 120 (fun i ->
                Txn.make ~id:(i + 1) ~session:1
                  [ Op.Read (0, i); Op.Write (0, i + 1) ])
          in
          let h = History.make ~num_keys:1 ~num_sessions:1 txns in
          let sid =
            match Client.open_session c ~level:Checker.SER ~num_keys:1 () with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          (match Client.feed_history c ~sid h with
          | Ok (Wire.V_ok 120) -> ()
          | Ok _ -> Alcotest.fail "long chain must pass SER"
          | Error e -> Alcotest.fail ("feed: " ^ e));
          checkb "server throttled at least once" true
            (Metrics.throttles metrics >= 1);
          checkb "queue high-water bounded by capacity" true
            (Metrics.queue_high_water metrics <= 4)))

(* Sessions idle past the timeout are closed with reason idle. *)
let test_service_idle_timeout () =
  let config = { Server.default_config with Server.idle_timeout = 0.05 } in
  with_server ~config (fun _ addr ->
      with_client addr (fun c ->
          let sid =
            match Client.open_session c ~level:Checker.SER ~num_keys:1 () with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          Thread.delay 0.3;
          match Client.sync c ~sid with
          | Error _ -> (
              match Client.session_closed c ~sid with
              | Some Wire.R_idle -> ()
              | Some _ -> Alcotest.fail "closed for the wrong reason"
              | None -> Alcotest.fail "close reason not recorded")
          | Ok _ ->
              (* the sync squeaked in before the janitor: close must
                 still arrive *)
              Thread.delay 0.3;
              ignore (Client.sync c ~sid);
              checkb "idle close eventually seen" true
                (Client.session_closed c ~sid = Some Wire.R_idle)))

(* A session that feeds once and then stalls while retaining checker
   memory pins the GC horizon: the janitor must flag it — gauge, wire
   telemetry and journal event all naming the sid — without touching the
   session itself under the default [Fence_off]. *)
let test_service_pin_detector () =
  Obs.Journal.clear ();
  let metrics = Metrics.create () in
  let config =
    { Server.default_config with Server.metrics; pin_warn_after = 0.1 }
  in
  with_server ~config (fun _ addr ->
      with_client addr (fun c ->
          let sid =
            match Client.open_session c ~level:Checker.SI ~num_keys:2 () with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          (match
             Client.feed c ~sid (Txn.make ~id:1 ~session:1 [ Op.Write (0, 1) ])
           with
          | Ok Client.Accepted -> ()
          | Ok _ -> Alcotest.fail "unexpected verdict"
          | Error e -> Alcotest.fail ("feed: " ^ e));
          Thread.delay 0.5;
          checki "pinned gauge trips" 1 (Metrics.pinned_sessions_now metrics);
          (match Client.session_stats c with
          | Error e -> Alcotest.fail ("session stats: " ^ e)
          | Ok (ss, evs, _) ->
              (match
                 List.find_opt (fun s -> s.Wire.ss_sid = sid) ss
               with
              | None -> Alcotest.fail "stalled session missing from telemetry"
              | Some s ->
                  checkb "flagged as pinned" true s.Wire.ss_pinned;
                  checki "its one feed is counted" 1 s.Wire.ss_feeds;
                  checkb "retains live words" true (s.Wire.ss_live_words > 0));
              checkb "pin-warn journal event names the sid" true
                (List.exists
                   (fun e ->
                     e.Wire.je_kind = Obs.Journal.Pin_warn
                     && e.Wire.je_a = sid)
                   evs));
          (* Fence_off: detection only — the session must still answer *)
          match Client.sync c ~sid with
          | Ok (Wire.V_ok 1) -> ()
          | Ok _ -> Alcotest.fail "pinned session's verdict changed"
          | Error e -> Alcotest.fail ("sync: " ^ e)))

(* Under [Fence_close] the pinned session is force-closed with
   [R_pinned] (releasing its retained memory), while a concurrently
   active session on the same connection is untouched. *)
let test_service_pin_fence_close () =
  let metrics = Metrics.create () in
  let config =
    {
      Server.default_config with
      Server.metrics;
      pin_warn_after = 0.1;
      pin_fence = Server.Fence_close;
    }
  in
  with_server ~config (fun _ addr ->
      with_client addr (fun c ->
          let open_si () =
            match Client.open_session c ~level:Checker.SI ~num_keys:2 () with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          let stalled = open_si () in
          (match
             Client.feed c ~sid:stalled
               (Txn.make ~id:1 ~session:1 [ Op.Write (0, 1) ])
           with
          | Ok Client.Accepted -> ()
          | Ok _ -> Alcotest.fail "unexpected verdict"
          | Error e -> Alcotest.fail ("feed: " ^ e));
          let active = open_si () in
          (* keep the active session's frontier moving across the fence
             window, so only the stalled one can trip the detector *)
          for i = 1 to 25 do
            (match
               Client.feed c ~sid:active
                 (Txn.make ~id:(i + 1) ~session:2 [ Op.Write (1, i) ])
             with
            | Ok Client.Accepted -> ()
            | Ok _ -> Alcotest.fail "unexpected verdict"
            | Error e -> Alcotest.fail ("feed: " ^ e));
            Thread.delay 0.02
          done;
          (* the active verdict first: receiving it also drains the
             stalled session's earlier [Session_closed] frame *)
          (match Client.sync c ~sid:active with
          | Ok (Wire.V_ok n) -> checki "active session unaffected" 25 n
          | Ok _ -> Alcotest.fail "active session's verdict changed"
          | Error e -> Alcotest.fail ("sync: " ^ e));
          (match Client.session_closed c ~sid:stalled with
          | Some Wire.R_pinned -> ()
          | Some _ -> Alcotest.fail "stalled session closed for wrong reason"
          | None -> Alcotest.fail "stalled session never fenced");
          checkb "fence counter ticked" true (Metrics.pin_fences metrics >= 1)))

(* Graceful shutdown drains what was already queued. *)
let test_service_graceful_drain () =
  let metrics = Metrics.create () in
  let config =
    { Server.default_config with Server.drain_delay = 0.001; metrics }
  in
  let path = temp_sock () in
  let config = { config with Server.listen = [ Server.A_unix path ] } in
  let t = Server.start config in
  let c =
    match Client.connect (Server.A_unix path) with
    | Ok c -> c
    | Error e -> Alcotest.fail ("connect: " ^ e)
  in
  let sid =
    match Client.open_session c ~level:Checker.SER ~num_keys:1 () with
    | Ok sid -> sid
    | Error e -> Alcotest.fail ("open: " ^ e)
  in
  let n = 50 in
  List.iteri
    (fun i () ->
      match
        Client.feed c ~sid
          (Txn.make ~id:(i + 1) ~session:1 [ Op.Read (0, i); Op.Write (0, i + 1) ])
      with
      | Ok Client.Accepted -> ()
      | Ok _ -> Alcotest.fail "unexpected verdict"
      | Error e -> Alcotest.fail ("feed: " ^ e))
    (List.init n (fun _ -> ()));
  (* stop while the slow worker still has items queued: they must all be
     processed before the server says goodbye *)
  Server.stop t;
  checki "every queued transaction was drained" n (Metrics.txns_fed metrics);
  Client.close c

(* TCP transport (ephemeral port) and the stats frame. *)
let test_service_tcp_and_stats () =
  let metrics = Metrics.create () in
  let config =
    {
      Server.default_config with
      Server.listen = [ Server.A_tcp ("127.0.0.1", 0) ];
      metrics;
    }
  in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let addr =
        match Server.bound_addrs t with
        | [ a ] -> a
        | _ -> Alcotest.fail "one bound address expected"
      in
      (match addr with
      | Server.A_tcp (_, p) -> checkb "ephemeral port resolved" true (p > 0)
      | _ -> Alcotest.fail "tcp address expected");
      with_client addr (fun c ->
          let h =
            engine_history ~level:Isolation.Serializable ~fault:Fault.No_fault
              ~seed:3 ()
          in
          let sid =
            match
              Client.open_session c ~level:Checker.SER
                ~num_keys:h.History.num_keys ()
            with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          (match Client.feed_history c ~sid h with
          | Ok (Wire.V_ok _) -> ()
          | _ -> Alcotest.fail "clean history must pass over TCP");
          match Client.stats c with
          | Ok json ->
              checkb "stats mention txns_fed" true
                (contains ~sub:"\"txns_fed\"" json)
          | Error e -> Alcotest.fail ("stats: " ^ e)))

(* The --metrics-port HTTP endpoint serves Prometheus text for the
   server's own registry plus the process-wide one, and 404s elsewhere. *)
let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents buf)

let test_service_http_metrics () =
  let metrics = Metrics.create () in
  let config =
    { Server.default_config with Server.metrics_port = Some 0; metrics }
  in
  with_server ~config (fun t addr ->
      let port =
        match Server.metrics_port t with
        | Some p -> p
        | None -> Alcotest.fail "metrics listener did not start"
      in
      (* traffic first, so the scraped counters are live *)
      with_client addr (fun c ->
          let h =
            engine_history ~txns:50 ~level:Isolation.Serializable
              ~fault:Fault.No_fault ~seed:5 ()
          in
          let sid =
            match
              Client.open_session c ~level:Checker.SER
                ~num_keys:h.History.num_keys ()
            with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          match Client.feed_history c ~sid h with
          | Ok (Wire.V_ok _) -> ()
          | _ -> Alcotest.fail "clean history must pass");
      let response = http_get port "/metrics" in
      checkb "HTTP 200" true (contains ~sub:"HTTP/1.1 200" response);
      checkb "prometheus content type" true
        (contains ~sub:"text/plain; version=0.0.4" response);
      checkb "uptime gauge exposed" true
        (contains ~sub:"mtc_uptime_seconds" response);
      (let fed =
         String.split_on_char '\n' response
         |> List.find_map (fun l ->
                let p = "mtc_txns_fed_total " in
                let pl = String.length p in
                if String.length l > pl && String.sub l 0 pl = p then
                  int_of_string_opt (String.sub l pl (String.length l - pl))
                else None)
       in
       match fed with
       | Some n -> checkb "txns counter live" true (n > 0)
       | None -> Alcotest.fail "mtc_txns_fed_total not exposed");
      checkb "feed histogram exposed" true
        (contains ~sub:"mtc_feed_ns_bucket{le=" response);
      checkb "typed exposition" true (contains ~sub:"# TYPE" response);
      let not_found = http_get port "/nope" in
      checkb "404 elsewhere" true (contains ~sub:"HTTP/1.1 404" not_found))

(* Speaking the wrong protocol version is refused at the handshake. *)
let test_service_version_mismatch () =
  with_server (fun _ addr ->
      let path = match addr with Server.A_unix p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let bufs = Wire.out_bufs () in
      Wire.write_frame fd bufs (Wire.Hello { version = Wire.version + 1 });
      (match Wire.read_frame fd with
      | Ok (Some (Wire.Error { code; _ })) ->
          checki "version error code" Wire.err_version code
      | _ -> Alcotest.fail "version mismatch must be refused");
      Unix.close fd)

(* Session-fatal misuse (transaction id reuse) closes only that session. *)
let test_service_id_reuse_closes_session () =
  with_server (fun _ addr ->
      with_client addr (fun c ->
          let sid =
            match Client.open_session c ~level:Checker.SER ~num_keys:1 () with
            | Ok sid -> sid
            | Error e -> Alcotest.fail ("open: " ^ e)
          in
          let t1 = Txn.make ~id:1 ~session:1 [ Op.Read (0, 0) ] in
          ignore (Client.feed c ~sid t1);
          ignore (Client.feed c ~sid t1);
          (match Client.sync c ~sid with
          | Error e ->
              checkb "protocol reason surfaced" true
                (contains ~sub:"protocol" e)
          | Ok _ -> (
              (* the close may race the sync; it must surface eventually *)
              Thread.delay 0.1;
              match Client.sync c ~sid with
              | Error _ -> ()
              | Ok _ -> Alcotest.fail "id reuse must close the session"));
          (* the connection itself is fine: open another session *)
          match Client.open_session c ~level:Checker.SER ~num_keys:1 () with
          | Ok sid2 -> checkb "fresh session" true (sid2 <> sid)
          | Error e -> Alcotest.fail ("re-open: " ^ e)))

let suite =
  [
    qtest prop_frame_roundtrip;
    ("varint extremes round-trip", `Quick, test_varint_extremes);
    qtest prop_decode_total;
    ("service verdict = batch verdict", `Quick, test_service_agrees_with_batch);
    ("SSER skew negotiated at open", `Quick, test_service_sser_skew);
    ("poisoned session repeats its counterexample", `Quick,
     test_service_poisoned_session);
    ("mid-frame disconnect isolated", `Quick, test_service_midframe_disconnect);
    ("backpressure throttles and recovers", `Quick, test_service_backpressure);
    ("idle sessions closed", `Quick, test_service_idle_timeout);
    ("horizon-pin detector flags stalled sessions", `Quick,
     test_service_pin_detector);
    ("pin fence closes only the pinned session", `Quick,
     test_service_pin_fence_close);
    ("graceful shutdown drains queues", `Quick, test_service_graceful_drain);
    ("tcp transport + stats frame", `Quick, test_service_tcp_and_stats);
    ("http /metrics endpoint", `Quick, test_service_http_metrics);
    ("version mismatch refused", `Quick, test_service_version_mismatch);
    ("txn id reuse closes only the session", `Quick,
     test_service_id_reuse_closes_session);
  ]
