type outcome = {
  fixed : (Polygraph.edge_kind * int * int) list;
  undecided : Polygraph.constr list;
  decided : int;
  contradiction : (int * int) option;
  prune_s : float;
}

let max_rounds = 8

let run ~n (pg : Polygraph.t) ~use_anti =
  let t0 = Unix.gettimeofday () in
  let fixed = ref pg.Polygraph.known in
  let decided = ref 0 in
  let contradiction = ref None in
  let finish undecided =
    {
      fixed = !fixed;
      undecided;
      decided = !decided;
      contradiction = !contradiction;
      prune_s = Unix.gettimeofday () -. t0;
    }
  in
  let rec rounds remaining round =
    if round >= max_rounds || remaining = [] || !contradiction <> None then
      finish remaining
    else begin
      (* Reachability oracle over the current known graph. *)
      let g = Digraph.create n in
      List.iter
        (fun (kind, u, v) ->
          match kind with
          | Polygraph.Dep -> Digraph.add_edge g u v ()
          | Polygraph.Anti -> if use_anti then Digraph.add_edge g u v ())
        !fixed;
      let closure = Reach.closure_matrix g in
      let reach u v = Reach.bit closure.(u) v in
      let still = ref [] in
      let changed = ref false in
      List.iter
        (fun (c : Polygraph.constr) ->
          let fwd = reach c.Polygraph.w1 c.Polygraph.w2 in
          let bwd = reach c.Polygraph.w2 c.Polygraph.w1 in
          if fwd && bwd then begin
            if !contradiction = None then
              contradiction := Some (c.Polygraph.w1, c.Polygraph.w2)
          end
          else if fwd then begin
            fixed := c.Polygraph.if_w1_first @ !fixed;
            incr decided;
            changed := true
          end
          else if bwd then begin
            fixed := c.Polygraph.if_w2_first @ !fixed;
            incr decided;
            changed := true
          end
          else still := c :: !still)
        remaining;
      if !changed then rounds !still (round + 1) else finish !still
    end
  in
  rounds pg.Polygraph.constraints 0
