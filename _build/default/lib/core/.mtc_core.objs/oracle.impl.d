lib/core/oracle.ml: Array Checker Cycle Deps Format Hashtbl History Index Int_check List Op Printf Topo Txn
