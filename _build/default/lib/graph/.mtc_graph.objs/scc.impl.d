lib/graph/scc.ml: Array Digraph List Stack Stdlib
