(** Frozen compressed-sparse-row snapshots of {!Digraph.t}.

    A [Csr.t] packs the adjacency structure into three flat arrays —
    [offsets] (length [n + 1]), [targets] and [labels] (length [E]) —
    so the verification kernels ({!Cycle}, {!Scc}, {!Topo}) can walk
    successors by integer indexing with zero per-visit allocation and
    cache-friendly sequential access.  Successors keep the insertion
    order of the source graph, so kernels visit edges in exactly the
    order the list-based code did. *)

type 'lab t = private {
  offsets : int array;  (** length [n + 1]; block of [u] is
                            [offsets.(u) .. offsets.(u+1) - 1] *)
  targets : int array;  (** length [E], insertion order per source *)
  labels : 'lab array;  (** length [E], parallel to [targets] *)
}

val of_digraph : 'lab Digraph.t -> 'lab t
(** O(V + E) snapshot.  Later mutations of the source graph are not
    reflected. *)

val make :
  offsets:int array -> targets:int array -> labels:'lab array -> 'lab t
(** Direct construction from pre-built arrays (callers that count
    out-degrees and fill blocks themselves, e.g. the SI composition).
    Validates the CSR shape in O(V): [offsets] runs monotonically from
    [0] to the edge count, [targets]/[labels] have that length.
    @raise Invalid_argument otherwise. *)

val of_edge_arrays :
  n:int ->
  num_edges:int ->
  src:int array ->
  dst:int array ->
  lab:int array ->
  decode:(int -> 'lab) ->
  'lab t
(** Two-pass counting-sort construction from a flat edge stream: entries
    [0 .. num_edges - 1] of [src]/[dst]/[lab] describe one edge each
    ([lab] as an int-packed label, expanded per edge via [decode]).  The
    first pass counts out-degrees into [offsets], the second fills the
    target/label blocks in place; stable, so per-source successor order
    is the stream order.  O(V + E), no intermediate per-edge boxing. *)

val n : _ t -> int
val num_edges : _ t -> int
val out_degree : _ t -> int -> int

val iter_succ : 'lab t -> int -> (int -> 'lab -> unit) -> unit
(** [iter_succ g u f] calls [f v lab] for every edge [u -> v], in
    insertion order.  Allocation-free. *)

val succ : 'lab t -> int -> (int * 'lab) list
(** Materialized successor list (for tests/debugging). *)

val mem_edge : _ t -> int -> int -> bool
