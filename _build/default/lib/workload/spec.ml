type prog_op = Pread of Op.key | Pwrite of Op.key | Pappend of Op.key

type prog_txn = prog_op list

type t = {
  name : string;
  num_keys : int;
  sessions : prog_txn list array;
}

let num_sessions t = Array.length t.sessions

let num_txns t =
  Array.fold_left (fun n txns -> n + List.length txns) 0 t.sessions

let num_ops t =
  Array.fold_left
    (fun n txns ->
      List.fold_left (fun n txn -> n + List.length txn) n txns)
    0 t.sessions

let is_mini_op_list ops =
  let reads =
    List.length (List.filter (function Pread _ -> true | _ -> false) ops)
  in
  let writes = List.length ops - reads in
  reads >= 1 && reads <= 2 && writes <= 2
  &&
  let read_keys = Hashtbl.create 4 in
  List.for_all
    (fun op ->
      match op with
      | Pread k ->
          Hashtbl.replace read_keys k ();
          true
      | Pwrite k -> Hashtbl.mem read_keys k
      | Pappend _ -> false)
    ops

let pp ppf t =
  Format.fprintf ppf "%s: %d sessions, %d txns, %d ops, %d keys" t.name
    (num_sessions t) (num_txns t) (num_ops t) t.num_keys
