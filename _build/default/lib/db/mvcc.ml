type version = {
  value : Op.value;
  writer : Txn.id;
  commit_ts : int;
  visible : int array;
}

let num_replicas = 2

(* Chains newest-first; scans are short because contention concentrates on
   the head. *)
type t = { chains : version list array }

let initial_version =
  { value = 0; writer = 0; commit_ts = min_int; visible = [| min_int; min_int |] }

let create ~num_keys = { chains = Array.make num_keys [ initial_version ] }

let num_keys t = Array.length t.chains

let install t ~key ~value ~writer ~commit_ts ~lag =
  let visible = [| commit_ts; commit_ts |] in
  (match lag with
  | Some (replica, until) -> visible.(replica) <- until
  | None -> ());
  t.chains.(key) <- { value; writer; commit_ts; visible } :: t.chains.(key)

let visible_at t ~key ~replica ~ts =
  let rec find = function
    | [] -> initial_version
    | v :: rest ->
        if v.commit_ts <= ts && v.visible.(replica) <= ts then v else find rest
  in
  find t.chains.(key)

let predecessor t ~key v =
  let rec find = function
    | a :: (next :: _ as rest) ->
        if a.commit_ts = v.commit_ts && a.writer = v.writer then Some next
        else find rest
    | [ _ ] | [] -> None
  in
  find t.chains.(key)

let newer_than t ~key ~ts =
  match t.chains.(key) with [] -> false | v :: _ -> v.commit_ts > ts

let newest_writer_after t ~key ~ts =
  let rec collect acc = function
    | v :: rest when v.commit_ts > ts -> collect (v.writer :: acc) rest
    | _ -> acc
  in
  collect [] t.chains.(key)
