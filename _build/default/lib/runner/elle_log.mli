(** Client-level logs for list-append workloads — what the Elle baseline
    consumes (paper Section V-F2).  Unlike the register history, reads
    observe whole lists; appends record the single appended element. *)

type status = Committed | Aborted

type aop = Append of Op.key * int | Read_list of Op.key * int list

type txn = { id : int; session : int; ops : aop list; status : status }

type t = { txns : txn list; num_keys : int; num_sessions : int }

val committed : t -> txn list
val pp_txn : Format.formatter -> txn -> unit
