(* Blocking client for the MTC checking service — used by `mtc feed`,
   the tests and the throughput bench.

   The client is single-threaded: writes are synchronous, and reads
   happen either blocking (when waiting for a specific reply) or
   opportunistically (a zero-timeout poll before each [feed], so an
   early violation verdict or a throttle advisory is noticed while
   streaming without a round-trip per transaction).  Frames that arrive
   while waiting for something else are dispatched into the client
   state: verdicts per session, throttle counters, closed-session
   reasons. *)

type verdict_box = {
  mutable verdicts : (int * Wire.verdict) list;  (** (seq, verdict), newest first *)
}

type t = {
  fd : Unix.file_descr;
  out : Wire.out_bufs;
  mutable next_seq : int;
  mutable server : string;  (** banner from [Welcome] *)
  mutable throttles : int;
  mutable resumes : int;
  mutable last_stats : string option;
  sessions : (int, verdict_box) Hashtbl.t;
  closed : (int, Wire.close_reason) Hashtbl.t;
  mutable bye : bool;
}

let server_name t = t.server
let throttles t = t.throttles

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let seq_floor t n = if t.next_seq < n then t.next_seq <- n

(* Internal seqs (syncs) live far above any plausible transaction
   position, so explicit position-based feed seqs never collide. *)
let sync_seq_base = 1_000_000_000

let send t frame =
  try
    Wire.write_frame t.fd t.out frame;
    Ok ()
  with Unix.Unix_error (e, _, _) -> Result.Error (Unix.error_message e)

(* Route a frame that is not the one currently awaited. *)
let dispatch t frame =
  match frame with
  | Wire.Verdict { sid; seq; verdict } -> (
      match Hashtbl.find_opt t.sessions sid with
      | Some box -> box.verdicts <- (seq, verdict) :: box.verdicts
      | None -> ())
  | Wire.Throttle _ -> t.throttles <- t.throttles + 1
  | Wire.Resume _ -> t.resumes <- t.resumes + 1
  | Wire.Session_closed { sid; reason } -> Hashtbl.replace t.closed sid reason
  | Wire.Stats_reply { json } -> t.last_stats <- Some json
  | Wire.Bye -> t.bye <- true
  | _ -> ()

(* Blocking read of the next frame, dispatching it unless [want] claims
   it. *)
let rec next_matching t ~want =
  if t.bye then Result.Error "server said bye"
  else
    match Wire.read_frame t.fd with
    | Result.Error m -> Result.Error m
    | Ok None -> Result.Error "connection closed by server"
    | Ok (Some frame) -> (
        match want frame with
        | Some v -> Ok v
        | None ->
            dispatch t frame;
            next_matching t ~want)

(* Drain whatever is already readable without blocking. *)
let poll t =
  let rec go () =
    match Unix.select [ t.fd ] [] [] 0.0 with
    | [], _, _ -> ()
    | _, _, _ -> (
        match Wire.read_frame t.fd with
        | Ok (Some frame) ->
            dispatch t frame;
            go ()
        | Ok None | Result.Error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let connect addr =
  try
    let fd =
      match addr with
      | Server.A_unix path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
      | Server.A_tcp (host, port) ->
          let inet =
            try Unix.inet_addr_of_string host
            with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (inet, port));
          Unix.setsockopt fd Unix.TCP_NODELAY true;
          fd
    in
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let t =
      {
        fd;
        out = Wire.out_bufs ();
        next_seq = 1;
        server = "";
        throttles = 0;
        resumes = 0;
        last_stats = None;
        sessions = Hashtbl.create 4;
        closed = Hashtbl.create 4;
        bye = false;
      }
    in
    match send t (Wire.Hello { version = Wire.version }) with
    | Result.Error _ as e ->
        Unix.close fd;
        e
    | Ok () -> (
        match
          next_matching t ~want:(function
            | Wire.Welcome { server; _ } -> Some (Ok server)
            | Wire.Error { msg; _ } -> Some (Result.Error msg)
            | _ -> None)
        with
        | Ok (Ok server) ->
            t.server <- server;
            Ok t
        | Ok (Result.Error m) | Result.Error m ->
            Unix.close fd;
            Result.Error ("handshake refused: " ^ m))
  with
  | Unix.Unix_error (e, _, _) -> Result.Error (Unix.error_message e)
  | Not_found -> Result.Error "host not found"

let close t =
  ignore (send t Wire.Bye);
  (try Unix.close t.fd with Unix.Unix_error _ -> ())

let open_session t ~level ~num_keys ?(skew = 0) ?(ts = Ts.Ignore) ?gc () =
  match send t (Wire.Open_session { level; num_keys; skew; ts; gc }) with
  | Result.Error _ as e -> e
  | Ok () -> (
      match
        next_matching t ~want:(function
          | Wire.Session_opened { sid } -> Some (Ok sid)
          | Wire.Error { msg; _ } -> Some (Result.Error msg)
          | _ -> None)
      with
      | Ok (Ok sid) ->
          Hashtbl.replace t.sessions sid { verdicts = [] };
          Ok sid
      | Ok (Result.Error m) -> Result.Error m
      | Result.Error m -> Result.Error m)

let resume_session t ~sid =
  match send t (Wire.Resume_session { sid }) with
  | Result.Error _ as e -> e
  | Ok () -> (
      match
        next_matching t ~want:(function
          | Wire.Session_resumed { sid = s; last_seq } when s = sid ->
              Some (Ok last_seq)
          | Wire.Error { msg; _ } -> Some (Result.Error msg)
          | _ -> None)
      with
      | Ok (Ok last_seq) ->
          Hashtbl.replace t.sessions sid { verdicts = [] };
          Hashtbl.remove t.closed sid;
          Ok last_seq
      | Ok (Result.Error m) | Result.Error m -> Result.Error m)

let session_closed t ~sid = Hashtbl.find_opt t.closed sid

(* The first violation the session has reported, if any (any seq). *)
let violation_of_box box =
  List.find_map
    (fun (_, v) -> match v with Wire.V_violation _ -> Some v | _ -> None)
    box.verdicts

type feed_outcome = Accepted | Early_verdict of Wire.verdict

let feed ?seq t ~sid txn =
  match Hashtbl.find_opt t.sessions sid with
  | None -> Result.Error (Printf.sprintf "unknown session %d" sid)
  | Some box -> (
      poll t;
      match violation_of_box box with
      | Some v -> Ok (Early_verdict v)
      | None -> (
          match session_closed t ~sid with
          | Some _ -> Result.Error (Printf.sprintf "session %d closed" sid)
          | None -> (
              let seq =
                match seq with Some s -> s | None -> fresh_seq t
              in
              match send t (Wire.Feed { sid; seq; txn }) with
              | Result.Error _ as e -> e
              | Ok () -> Ok Accepted)))

let reason_message sid reason =
  Printf.sprintf "session %d closed (%s)" sid
    (match reason with
    | Wire.R_requested -> "requested"
    | Wire.R_idle -> "idle timeout"
    | Wire.R_shutdown -> "server shutdown"
    | Wire.R_pinned -> "fenced: pinned the GC horizon"
    | Wire.R_protocol m -> "protocol: " ^ m)

(* Waits whose terminal frames include [Session_closed] for our session
   and generic [Error] replies — anything else would hang the blocking
   client on a session the server already gave up on. *)
let sync t ~sid =
  match Hashtbl.find_opt t.sessions sid with
  | None -> Result.Error (Printf.sprintf "unknown session %d" sid)
  | Some box -> (
      match violation_of_box box with
      | Some v -> Ok v
      | None -> (
          match session_closed t ~sid with
          | Some reason -> Result.Error (reason_message sid reason)
          | None -> (
              let seq = fresh_seq t in
              match send t (Wire.Sync { sid; seq }) with
              | Result.Error _ as e -> e
              | Ok () -> (
                  match
                    next_matching t ~want:(function
                      | Wire.Verdict { sid = s; seq = q; verdict }
                        when s = sid && q = seq ->
                          Some (Ok verdict)
                      | Wire.Verdict
                          { sid = s; verdict = Wire.V_violation _ as v; _ }
                        when s = sid ->
                          (* a violation from an earlier feed outranks
                             the sync ack we were waiting for *)
                          Some (Ok v)
                      | Wire.Session_closed { sid = s; reason } when s = sid ->
                          Hashtbl.replace t.closed s reason;
                          Some (Result.Error (reason_message sid reason))
                      | Wire.Error { msg; _ } -> Some (Result.Error msg)
                      | _ -> None)
                  with
                  | Ok r -> r
                  | Result.Error _ as e -> e))))

let stats t =
  match send t Wire.Stats_request with
  | Result.Error _ as e -> e
  | Ok () -> (
      match
        next_matching t ~want:(function
          | Wire.Stats_reply { json } -> Some (Ok json)
          | Wire.Error { msg; _ } -> Some (Result.Error msg)
          | _ -> None)
      with
      | Ok r -> r
      | Result.Error _ as e -> e)

let session_stats t =
  match send t Wire.Session_stats_request with
  | Result.Error _ as e -> e
  | Ok () -> (
      match
        next_matching t ~want:(function
          | Wire.Session_stats_reply { sessions; events; journal_dropped } ->
              Some (Ok (sessions, events, journal_dropped))
          | Wire.Error { msg; _ } -> Some (Result.Error msg)
          | _ -> None)
      with
      | Ok r -> r
      | Result.Error _ as e -> e)

let close_session t ~sid =
  match session_closed t ~sid with
  | Some _ -> Ok ()
  | None -> (
      match send t (Wire.Close_session { sid }) with
      | Result.Error _ as e -> e
      | Ok () -> (
          match
            next_matching t ~want:(function
              | Wire.Session_closed { sid = s; reason } when s = sid ->
                  Hashtbl.replace t.closed s reason;
                  Some (Ok ())
              | Wire.Error { msg; _ } -> Some (Result.Error msg)
              | _ -> None)
          with
          | Ok r -> r
          | Result.Error _ as e -> e))

(* Stream a whole history in commit order (what a monitoring proxy would
   see), stopping early if the server reports a violation, then sync for
   the final verdict. *)
let stream_order (h : History.t) =
  Array.to_list h.History.txns
  |> List.filter (fun (x : Txn.t) -> x.Txn.id <> History.init_id)
  |> List.sort (fun (a : Txn.t) b ->
         compare (a.Txn.commit_ts, a.Txn.id) (b.Txn.commit_ts, b.Txn.id))

(* Feed seqs are transaction positions (1-based in stream order): on a
   durable server they double as the resume cursor, so a client that
   re-attaches after a crash skips everything at or below the
   server-reported [last_seq] and continues from the exact next
   transaction. *)
let feed_history ?(resume_from = 0) t ~sid (h : History.t) =
  seq_floor t sync_seq_base;
  let rec go pos = function
    | [] -> sync t ~sid
    | txn :: rest ->
        if pos <= resume_from then go (pos + 1) rest
        else (
          match feed ~seq:pos t ~sid txn with
          | Result.Error _ as e -> e
          | Ok (Early_verdict v) -> Ok v
          | Ok Accepted -> go (pos + 1) rest)
  in
  go 1 (stream_order h)
