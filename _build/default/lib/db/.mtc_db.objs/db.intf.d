lib/db/db.mli: Fault Isolation Op Txn
