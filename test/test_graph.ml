(* Tests for mtc.graph: Digraph, Cycle, Scc, Topo, Reach, Pearce_kelly. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let of_edges n edges =
  let g = Digraph.create n in
  List.iter (fun (u, v) -> Digraph.add_edge g u v ()) edges;
  g

(* --- Digraph --- *)

let test_digraph_basic () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1 "a";
  Digraph.add_edge g 0 2 "b";
  checki "n" 3 (Digraph.n g);
  checki "edges" 2 (Digraph.num_edges g);
  checkb "mem 0->1" true (Digraph.mem_edge g 0 1);
  checkb "no 1->0" false (Digraph.mem_edge g 1 0);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "succ order" [ (1, "a"); (2, "b") ] (Digraph.succ g 0)

let test_digraph_transpose () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1 "x";
  let t = Digraph.transpose g in
  checkb "reversed" true (Digraph.mem_edge t 1 0);
  checkb "original gone" false (Digraph.mem_edge t 0 1)

let test_digraph_map_labels () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 1 1;
  let g' = Digraph.map_labels string_of_int g in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "mapped" [ (1, "1") ] (Digraph.succ g' 0)

let test_digraph_fold () =
  let g = of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  checki "fold count" 3 (Digraph.fold_edges g (fun acc _ _ _ -> acc + 1) 0)

(* --- Cycle --- *)

let test_cycle_none_empty () =
  checkb "empty acyclic" true (Cycle.is_acyclic (of_edges 5 []))

let test_cycle_none_dag () =
  checkb "dag" true (Cycle.is_acyclic (of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]))

let test_cycle_self_loop () =
  match Cycle.find (of_edges 3 [ (1, 1) ]) with
  | Some [ (1, (), 1) ] -> ()
  | Some c -> Alcotest.failf "unexpected cycle of length %d" (List.length c)
  | None -> Alcotest.fail "self loop missed"

let valid_cycle edges cycle =
  (* consecutive edges chain and it closes *)
  let rec chain = function
    | (_, _, b) :: (((a, _, _) :: _) as rest) -> b = a && chain rest
    | [ _ ] | [] -> true
  in
  let closes =
    match (cycle, List.rev cycle) with
    | (first, _, _) :: _, (_, _, last) :: _ -> first = last
    | _ -> false
  in
  let all_edges =
    List.for_all (fun (u, _, v) -> List.mem (u, v) edges) cycle
  in
  chain cycle && closes && all_edges

let test_cycle_witness_valid () =
  let edges = [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  match Cycle.find (of_edges 4 edges) with
  | Some c -> checkb "valid witness" true (valid_cycle edges c)
  | None -> Alcotest.fail "cycle missed"

let test_cycle_long () =
  let n = 50_000 in
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) @ [ (n - 1, 0) ] in
  match Cycle.find (of_edges n edges) with
  | Some c -> checki "full cycle" n (List.length c)
  | None -> Alcotest.fail "long cycle missed"

let test_cycle_deep_dag () =
  (* No stack overflow on a path of 200k vertices. *)
  let n = 200_000 in
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  checkb "deep dag acyclic" true (Cycle.is_acyclic (of_edges n edges))

let test_cycle_shortest_through () =
  let edges = [ (0, 1); (1, 0); (0, 2); (2, 3); (3, 0) ] in
  match Cycle.shortest_through (of_edges 4 edges) 0 with
  | Some c -> checki "shortest is 2" 2 (List.length c)
  | None -> Alcotest.fail "no cycle through 0"

let test_cycle_shortest_none () =
  checkb "no cycle through 0" true
    (Cycle.shortest_through (of_edges 3 [ (0, 1); (1, 2) ]) 0 = None)

(* --- Csr --- *)

let test_csr_roundtrip () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1 "a";
  Digraph.add_edge g 0 2 "b";
  Digraph.add_edge g 2 3 "c";
  Digraph.add_edge g 2 0 "d";
  let c = Csr.of_digraph g in
  checki "n" 4 (Csr.n c);
  checki "edges" 4 (Csr.num_edges c);
  for u = 0 to 3 do
    Alcotest.check
      (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
      (Printf.sprintf "succ %d matches" u)
      (Digraph.succ g u) (Csr.succ c u);
    checki (Printf.sprintf "out_degree %d" u)
      (List.length (Digraph.succ g u))
      (Csr.out_degree c u)
  done;
  checkb "mem 2->0" true (Csr.mem_edge c 2 0);
  checkb "no 1->2" false (Csr.mem_edge c 1 2)

let test_csr_empty () =
  let c = Csr.of_digraph (of_edges 5 []) in
  checki "n" 5 (Csr.n c);
  checki "edges" 0 (Csr.num_edges c);
  checkb "no cycle" true (Cycle.find_csr c = None)

let test_csr_iter_succ_order () =
  let g = Digraph.create 2 in
  for i = 1 to 100 do
    Digraph.add_edge g 0 (i mod 2) i
  done;
  let c = Csr.of_digraph g in
  let seen = ref [] in
  Csr.iter_succ c 0 (fun v lab -> seen := (v, lab) :: !seen);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "insertion order" (Digraph.succ g 0)
    (List.rev !seen)

let test_csr_cycle_witness () =
  let edges = [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  match Cycle.find_csr (Csr.of_digraph (of_edges 4 edges)) with
  | Some c ->
      checkb "valid witness" true (valid_cycle edges c);
      (* Identical witness to the Digraph entry point. *)
      checkb "same as find" true (Cycle.find (of_edges 4 edges) = Some c)
  | None -> Alcotest.fail "cycle missed"

let test_csr_random_agreement () =
  (* find/sort/component_ids agree between Digraph and CSR entry points
     on random graphs. *)
  let rng = Rng.create 4242 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng 25 in
    let g = Digraph.create n in
    for _ = 1 to Rng.int rng 50 do
      Digraph.add_edge g (Rng.int rng n) (Rng.int rng n) ()
    done;
    let c = Csr.of_digraph g in
    checkb "find agrees" true (Cycle.find g = Cycle.find_csr c);
    checkb "topo agrees" true (Topo.sort g = Topo.sort_csr c);
    checkb "shortest_through agrees" true
      (Cycle.shortest_through g 0 = Cycle.shortest_through_csr c 0);
    let ids, k = Scc.component_ids g in
    let ids', k' = Scc.component_ids_csr c in
    checki "scc count agrees" k k';
    checkb "scc ids agree" true (ids = ids')
  done

let test_csr_find_no_per_visit_alloc () =
  (* The flat DFS allocates only its O(n) scratch arrays — nothing per
     visited edge.  On a ~10-edges-per-vertex DAG the old list-based DFS
     allocated >= 24*E bytes just materializing successor lists, which
     this bound (linear in n, independent of E) rules out. *)
  let n = 20_000 in
  let g = Digraph.create n in
  let rng = Rng.create 9 in
  for u = 0 to n - 2 do
    for _ = 1 to 10 do
      let v = u + 1 + Rng.int rng (n - u - 1) in
      Digraph.add_edge g u v ()
    done
  done;
  let c = Csr.of_digraph g in
  ignore (Cycle.find_csr c) (* warm-up *);
  (* Minimum of a few runs: Gc.allocated_bytes can absorb counters from
     domains terminated by earlier suites, inflating a single delta. *)
  let bytes = ref infinity in
  for _ = 1 to 3 do
    let a0 = Gc.allocated_bytes () in
    let r = Cycle.find_csr c in
    let d = Gc.allocated_bytes () -. a0 in
    checkb "acyclic" true (r = None);
    if d < !bytes then bytes := d
  done;
  if !bytes > (8.0 *. float_of_int n *. 6.0) +. 65536.0 then
    Alcotest.failf "find_csr allocated %.0f bytes (scales with E?)" !bytes

(* --- Scc --- *)

let test_scc_count () =
  let g = of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 3); (2, 3) ] in
  let _, k = Scc.component_ids g in
  checki "3 components" 3 k (* {0,1,2}, {3,4}, {5} *)

let test_scc_members () =
  let g = of_edges 5 [ (0, 1); (1, 0); (2, 3) ] in
  let comp, _ = Scc.component_ids g in
  checkb "0 and 1 together" true (comp.(0) = comp.(1));
  checkb "2 and 3 apart" true (comp.(2) <> comp.(3))

let test_scc_reverse_topo () =
  (* Tarjan numbers components in reverse topological order. *)
  let g = of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let comp, _ = Scc.component_ids g in
  checkb "sink numbered first" true (comp.(3) < comp.(0))

let test_scc_nontrivial () =
  let g = of_edges 5 [ (0, 1); (1, 0); (2, 2) ] in
  let nt = Scc.nontrivial g in
  checki "two cyclic components" 2 (List.length nt)

let test_scc_acyclic_no_nontrivial () =
  checki "none" 0 (List.length (Scc.nontrivial (of_edges 4 [ (0, 1); (1, 2) ])))

(* --- Topo --- *)

let test_topo_valid () =
  let g = of_edges 5 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  match Topo.sort g with
  | Some order ->
      let pos = Array.make 5 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      checkb "respects edges" true (Topo.is_order g pos)
  | None -> Alcotest.fail "dag has no topo order?"

let test_topo_cyclic () =
  checkb "cyclic has none" true (Topo.sort (of_edges 3 [ (0, 1); (1, 0) ]) = None)

let test_topo_all_vertices () =
  match Topo.sort (of_edges 4 [ (2, 3) ]) with
  | Some order -> checki "all vertices" 4 (List.length order)
  | None -> Alcotest.fail "expected order"

(* --- Reach --- *)

let test_reach_basic () =
  let g = of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  checkb "0->2" true (Reach.reachable g 0 2);
  checkb "2 not-> 0" false (Reach.reachable g 2 0);
  checkb "0 not-> 4" false (Reach.reachable g 0 4);
  checkb "self" true (Reach.reachable g 3 3)

let test_reach_from () =
  let g = of_edges 4 [ (0, 1); (1, 2) ] in
  let r = Reach.from g 0 in
  checkb "0" true r.(0);
  checkb "2" true r.(2);
  checkb "3 not" false r.(3)

let test_closure_matches_bfs () =
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 30 in
    let edges =
      List.init (Rng.int rng 60) (fun _ -> (Rng.int rng n, Rng.int rng n))
    in
    let g = of_edges n edges in
    let m = Reach.closure_matrix g in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        let expected = Reach.reachable g u v || u = v in
        if Reach.bit m.(u) v <> expected then
          Alcotest.failf "closure mismatch at %d->%d (n=%d)" u v n
      done
    done
  done

(* --- Pearce-Kelly --- *)

let test_pk_accepts_dag () =
  let pk = Pearce_kelly.create 5 in
  List.iter
    (fun (u, v) ->
      match Pearce_kelly.add_edge pk u v with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "rejected DAG edge")
    [ (3, 1); (1, 0); (0, 4); (4, 2); (3, 2) ];
  checkb "invariant" true (Pearce_kelly.check_invariant pk)

let test_pk_rejects_cycle () =
  let pk = Pearce_kelly.create 3 in
  ignore (Pearce_kelly.add_edge pk 0 1);
  ignore (Pearce_kelly.add_edge pk 1 2);
  match Pearce_kelly.add_edge pk 2 0 with
  | Error path ->
      checkb "path from 0 to 2" true
        (List.hd path = 0 && List.rev path |> List.hd = 2);
      checkb "state unchanged" true (not (Pearce_kelly.mem_edge pk 2 0))
  | Ok () -> Alcotest.fail "cycle accepted"

let test_pk_self_loop () =
  let pk = Pearce_kelly.create 2 in
  match Pearce_kelly.add_edge pk 1 1 with
  | Error [ 1 ] -> ()
  | _ -> Alcotest.fail "self loop should fail with [v]"

let test_pk_duplicate_edge () =
  let pk = Pearce_kelly.create 2 in
  ignore (Pearce_kelly.add_edge pk 0 1);
  match Pearce_kelly.add_edge pk 0 1 with
  | Ok () -> checkb "invariant" true (Pearce_kelly.check_invariant pk)
  | Error _ -> Alcotest.fail "duplicate rejected"

let test_pk_random_vs_batch () =
  (* PK must agree with Kahn on random edge streams. *)
  let rng = Rng.create 1234 in
  for _ = 1 to 50 do
    let n = 3 + Rng.int rng 20 in
    let pk = Pearce_kelly.create n in
    let g = Digraph.create n in
    let pk_alive = ref true in
    for _ = 1 to 3 * n do
      let u = Rng.int rng n and v = Rng.int rng n in
      if !pk_alive && u <> v then begin
        let before_cyclic = not (Cycle.is_acyclic g) in
        assert (not before_cyclic);
        match Pearce_kelly.add_edge pk u v with
        | Ok () ->
            Digraph.add_edge g u v ();
            if not (Cycle.is_acyclic g) then
              Alcotest.fail "PK accepted a cycle-closing edge";
            if not (Pearce_kelly.check_invariant pk) then
              Alcotest.fail "PK invariant broken"
        | Error _ ->
            (* Verify the edge really closes a cycle. *)
            Digraph.add_edge g u v ();
            if Cycle.is_acyclic g then
              Alcotest.fail "PK rejected an acceptable edge";
            pk_alive := false
      end
    done
  done

let suite =
  [
    ("digraph basics", `Quick, test_digraph_basic);
    ("digraph transpose", `Quick, test_digraph_transpose);
    ("digraph map_labels", `Quick, test_digraph_map_labels);
    ("digraph fold_edges", `Quick, test_digraph_fold);
    ("cycle: empty graph", `Quick, test_cycle_none_empty);
    ("cycle: dag", `Quick, test_cycle_none_dag);
    ("cycle: self loop", `Quick, test_cycle_self_loop);
    ("cycle: witness is valid", `Quick, test_cycle_witness_valid);
    ("cycle: 50k-cycle", `Quick, test_cycle_long);
    ("cycle: 200k-deep dag, no overflow", `Quick, test_cycle_deep_dag);
    ("cycle: shortest through vertex", `Quick, test_cycle_shortest_through);
    ("cycle: shortest none", `Quick, test_cycle_shortest_none);
    ("csr: round-trip vs digraph", `Quick, test_csr_roundtrip);
    ("csr: empty graph", `Quick, test_csr_empty);
    ("csr: iter_succ insertion order", `Quick, test_csr_iter_succ_order);
    ("csr: cycle witness matches find", `Quick, test_csr_cycle_witness);
    ("csr: random agreement with digraph kernels", `Quick,
     test_csr_random_agreement);
    ("csr: find allocates O(n), not O(E)", `Quick,
     test_csr_find_no_per_visit_alloc);
    ("scc: component count", `Quick, test_scc_count);
    ("scc: membership", `Quick, test_scc_members);
    ("scc: reverse topological numbering", `Quick, test_scc_reverse_topo);
    ("scc: nontrivial components", `Quick, test_scc_nontrivial);
    ("scc: acyclic has none", `Quick, test_scc_acyclic_no_nontrivial);
    ("topo: valid order", `Quick, test_topo_valid);
    ("topo: cyclic", `Quick, test_topo_cyclic);
    ("topo: covers all vertices", `Quick, test_topo_all_vertices);
    ("reach: basic", `Quick, test_reach_basic);
    ("reach: from-vector", `Quick, test_reach_from);
    ("reach: closure matrix vs BFS", `Quick, test_closure_matches_bfs);
    ("pearce-kelly: accepts DAG", `Quick, test_pk_accepts_dag);
    ("pearce-kelly: rejects cycle with witness", `Quick, test_pk_rejects_cycle);
    ("pearce-kelly: self loop", `Quick, test_pk_self_loop);
    ("pearce-kelly: duplicate edge", `Quick, test_pk_duplicate_edge);
    ("pearce-kelly: random stream vs batch oracle", `Quick, test_pk_random_vs_batch);
  ]
