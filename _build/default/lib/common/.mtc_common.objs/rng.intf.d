lib/common/rng.mli:
