lib/baselines/cobra.ml: Acyclicity Format Index Int_check List Lit Polygraph Printf Prune Solver String Unix
