bench/main.ml: Ablation Array Fig10 Fig11 Fig13 Fig17 Fig7 Fig8 Fig9 Kernels List Printf Sys Table2
