examples/bank_audit.ml: Array Checker Db Fault Format History Isolation List Report Rng Scheduler Spec
