(** Versioned per-shard snapshots of live checker sessions: the direct
    {!Online.encode} serialization of each session's flat structures (no
    history replay on restore), CRC-protected, written atomically
    (tmp + fsync + rename + directory fsync).

    A poisoned session is stored as its rendered counterexample instead
    of its graph — that text is the only thing it can ever produce
    again, and storing it verbatim is what makes post-restore renderings
    byte-identical by construction. *)

type meta = {
  level : Checker.level;
  num_keys : int;
  skew : int;
  ts : Ts.mode;
  gc : Online.gc;  (** watermark-GC policy the session was opened with *)
}

type state =
  | Live of Online.t
  | Poisoned of { anomaly : string option; rendered : string }

type entry = { sid : int; meta : meta; last_seq : int; state : state }

type info = {
  i_shard : int;
  i_nshards : int;
  i_gen : int;
  i_next_sid : int;  (** server sid allocator floor at checkpoint time *)
  i_entries : entry list;
}

val write :
  path:string ->
  shard:int ->
  nshards:int ->
  gen:int ->
  next_sid:int ->
  entry list ->
  unit
(** Atomic snapshot write; after return the file is durable (or the old
    file is intact).
    @raise Invalid_argument if any [Live] entry is poisoned
    ({!Online.encode}'s contract — render it to [Poisoned] first).
    @raise Unix.Unix_error on I/O failure. *)

val read : string -> (info, string) result
(** Total: bad magic, CRC mismatch, truncation, or a version this build
    does not understand all come back as [Error]. *)
