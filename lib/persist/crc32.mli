(** CRC-32 (IEEE 802.3) — the per-record and per-snapshot checksum of
    the persistence layer.  Returned values fit in 32 bits. *)

val string : string -> int
(** CRC of a whole string. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] with [s.[pos .. pos+len-1]];
    [update 0 s 0 (String.length s) = string s]. *)
