test/test_weak.ml: Alcotest Anomaly Builder Checker Db Fault Format History Isolation List Mt_gen Op Printf Scheduler Targeted Txn Weak_checker
