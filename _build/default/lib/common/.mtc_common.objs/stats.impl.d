lib/common/stats.ml: Array Format Gc Stdlib Unix
