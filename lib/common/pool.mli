(** A fixed-size pool of worker domains for embarrassingly-parallel
    fan-out (hunt trials, bench sweeps).

    The pool spawns its domains once and reuses them for every job, so
    the per-job overhead is a couple of condition-variable signals
    rather than a domain spawn.  Jobs pull indices off a shared atomic
    counter, so uneven task costs balance automatically.

    Determinism contract: {!map} returns results in input order and, if
    any task raised, re-raises the exception of the {e lowest-indexed}
    failing task (after all tasks have run to completion) — so a
    parallel map is observationally equivalent to its sequential
    counterpart for any caller that treats tasks as independent. *)

type t

val default_size : unit -> int
(** Parallelism degree to use when none is given explicitly: the
    [MTC_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val create : ?size:int -> unit -> t
(** [create ~size ()] spawns [size - 1] worker domains (the submitting
    thread participates in every job, so [size] tasks run concurrently).
    [size] defaults to {!default_size}; a pool of size 1 spawns no
    domains and runs jobs sequentially in the caller.

    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] applies [f] to every element of [xs], running up to
    [size pool] applications concurrently.  Results are in input order.
    Not reentrant: a pool runs one job at a time ([Invalid_argument] on
    nested or concurrent submission). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val run : t -> (unit -> unit) list -> unit
(** [run pool tasks] executes the thunks concurrently; same ordering and
    exception contract as {!map}. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; using the pool after
    shutdown raises [Invalid_argument]. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool ~size f] runs [f] with a fresh pool and shuts it down
    afterwards (also on exception). *)

val tasks : t option -> (unit -> unit) list -> unit
(** [tasks pool thunks] runs the thunks on [pool] if present (and of
    size > 1), else inline in order.  Same exception contract as
    {!run}.  Phase code that is optionally parallel threads a
    [t option] and calls this instead of branching at every site. *)

val map_slices : t option -> n:int -> (int -> int -> 'a) -> 'a array
(** [map_slices pool ~n f] splits the index range [0, n) into
    contiguous slices — one per task, at most [4 * size] of them — and
    returns [f lo hi] per slice in range order.  Without a pool the
    whole range is a single slice, so [f] must not care how the range
    is cut (callers combine slice results with order-insensitive
    reductions such as min-position tie-breaks).  Returns [[||]] when
    [n <= 0]. *)
