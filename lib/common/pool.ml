(* Work-stealing-lite: one shared atomic index per job, workers pull the
   next index until the range is exhausted.  The pool owner participates
   in every job, so [size - 1] domains serve a parallelism degree of
   [size] and a size-1 pool costs nothing beyond the record. *)

type job = {
  run_index : int -> unit;  (* never raises: wraps the user function *)
  count : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

type t = {
  pool_size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* new job posted, or shutdown *)
  work_done : Condition.t;  (* last index of the current job finished *)
  mutable job : job option;
  mutable generation : int;  (* bumped per job; workers track the last seen *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_size () =
  match Sys.getenv_opt "MTC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let size t = t.pool_size

(* Pull indices until the job is drained; whoever finishes the last index
   wakes the submitter.  [run_index] must not raise (map wraps the user
   function), so a worker can never die with the job half-claimed. *)
let execute t job =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.count then continue := false
    else begin
      job.run_index i;
      if Atomic.fetch_and_add job.completed 1 + 1 = job.count then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end
    end
  done

let worker t =
  let last_gen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stop) && (t.job = None || t.generation = !last_gen) do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      let gen = t.generation in
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      last_gen := gen;
      execute t job
    end
  done

let create ?size () =
  let size = match size with Some s -> s | None -> default_size () in
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      pool_size = size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let sp_task = Obs.Trace.intern "pool/task"

let c_tasks =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Work items executed by the domain pool" "mtc_pool_tasks_total"

let map (type b) t (f : _ -> b) xs =
  if t.stop then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length xs in
  let results : (b, exn) result option array = Array.make n None in
  let run_index i =
    let t0 = Obs.Trace.enter () in
    results.(i) <- Some (try Ok (f xs.(i)) with e -> Error e);
    Obs.Trace.exit sp_task t0;
    Obs.Counter.incr c_tasks
  in
  if t.pool_size = 1 || n <= 1 then
    for i = 0 to n - 1 do
      run_index i
    done
  else begin
    let job =
      { run_index; count = n; next = Atomic.make 0; completed = Atomic.make 0 }
    in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    if t.job <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool already running a job"
    end;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    execute t job;
    Mutex.lock t.mutex;
    while Atomic.get job.completed < n do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    Mutex.unlock t.mutex
  end;
  (* All tasks ran; surface the lowest-indexed failure, if any. *)
  Array.iter
    (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
    results;
  Array.map
    (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
    results

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let run t tasks = ignore (map_list t (fun f -> f ()) tasks)

(* --- option-pool conveniences ---------------------------------------

   Phase code threads [Pool.t option] down from the CLI; [None] (or a
   size-1 pool) means "run inline on the caller".  Keeping the fallback
   here keeps every call site branch-free. *)

let tasks pool thunks =
  match pool with
  | Some p when size p > 1 && List.compare_length_with thunks 1 > 0 ->
      run p thunks
  | Some _ | None -> List.iter (fun f -> f ()) thunks

let map_slices pool ~n f =
  if n <= 0 then [||]
  else
    match pool with
    | Some p when size p > 1 && n > 1 ->
        let parts = Stdlib.min n (4 * size p) in
        let bounds =
          Array.init parts (fun i -> (i * n / parts, (i + 1) * n / parts))
        in
        map p (fun (lo, hi) -> f lo hi) bounds
    | Some _ | None -> [| f 0 n |]
