examples/live_monitor.ml: Array Checker Db Distribution Fault Format History Isolation List Mt_gen Online Printf Report Scheduler Txn
