(* Tests for Oracle (serialization certificates + sequential replay) and
   the clock-skew-tolerant SSER checking. *)

let checkb = Alcotest.check Alcotest.bool

open Builder

let engine_history ?(level = Isolation.Serializable) ~seed () =
  let spec =
    Mt_gen.generate { Mt_gen.default with num_txns = 300; num_keys = 10; seed }
  in
  let db = { Db.level; fault = Fault.No_fault; num_keys = 10; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

(* --- replay --- *)

let test_replay_accepts_valid_order () =
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1; w 0 2 ] ]
  in
  checkb "1;2 ok" true (Oracle.replay h [ 1; 2 ] = Ok ());
  checkb "2;1 fails" true (Result.is_error (Oracle.replay h [ 2; 1 ]))

let test_replay_rejects_non_permutation () =
  let h = history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 0 ] ] in
  checkb "missing txn" true (Result.is_error (Oracle.replay h []));
  checkb "duplicated" true (Result.is_error (Oracle.replay h [ 1; 1 ]))

let test_replay_own_writes () =
  let h =
    history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 0; w 0 1; r 0 1 ] ]
  in
  checkb "own write visible in replay" true (Oracle.replay h [ 1 ] = Ok ())

let test_replay_skips_aborted () =
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 ~status:Txn.Aborted [ r 0 0; w 0 9 ];
        txn ~session:2 [ r 0 0; w 0 1 ];
      ]
  in
  checkb "aborted not replayed" true (Oracle.replay h [ 2 ] = Ok ())

(* --- certificate --- *)

let test_certificate_replays_engine_histories () =
  (* The central completeness oracle: for any accepted history the
     extracted serial order must replay exactly. *)
  for seed = 1 to 6 do
    let h = engine_history ~seed () in
    match Oracle.certificate Checker.SER h with
    | Ok order ->
        (match Oracle.replay h order with
        | Ok () -> ()
        | Error m -> Alcotest.failf "seed %d: replay failed: %s" seed m)
    | Error v ->
        Alcotest.failf "seed %d: SER engine history rejected: %s" seed
          (Format.asprintf "%a" Checker.pp_violation v)
  done

let test_certificate_sser_respects_rt () =
  for seed = 1 to 3 do
    let h = engine_history ~level:Isolation.Strict_serializable ~seed () in
    match Oracle.certificate Checker.SSER h with
    | Ok order ->
        checkb "replays" true (Oracle.replay h order = Ok ());
        (* Real-time consistency: if A finished before B started, A must
           precede B in the schedule. *)
        let pos = Hashtbl.create 64 in
        List.iteri (fun i id -> Hashtbl.replace pos id i) order;
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a <> b && History.rt_before h a b then
                  checkb "rt respected" true
                    (Hashtbl.find pos a < Hashtbl.find pos b))
              order)
          order
    | Error _ -> Alcotest.fail "SSER engine history rejected"
  done

let test_certificate_fails_on_violation () =
  match Oracle.certificate Checker.SER (Anomaly.history Anomaly.Write_skew) with
  | Error (Checker.Cyclic _) -> ()
  | _ -> Alcotest.fail "write skew must yield a cycle, not a certificate"

let test_certificate_si_unsupported () =
  checkb "invalid_arg at SI" true
    (try
       ignore (Oracle.certificate Checker.SI (Anomaly.history Anomaly.Write_skew));
       false
     with Invalid_argument _ -> true)

let test_certificate_agrees_with_checker () =
  (* certificate succeeds iff check_ser passes. *)
  List.iter
    (fun kind ->
      let h = Anomaly.history kind in
      let cert_ok = Result.is_ok (Oracle.certificate Checker.SER h) in
      let check_ok = Checker.passes (Checker.check_ser h) in
      checkb (Anomaly.name kind) check_ok cert_ok)
    Anomaly.all

(* --- clock skew --- *)

let skewed_history delta =
  (* Logically sequential: T1 then T2 (T2 reads T1's write), but T2's
     client clock reports a start [delta] ticks before T1's commit. *)
  history ~keys:1 ~sessions:2
    [
      txn ~session:1 ~start:0 ~commit:100 [ r 0 0; w 0 1 ];
      txn ~session:2 ~start:(100 - delta) ~commit:200 [ r 0 1 ];
    ]

let test_skew_tolerance_basic () =
  (* With honest clocks there is nothing to tolerate. *)
  checkb "no skew" true (Checker.passes (Checker.check_sser (skewed_history 0)))

let test_skew_false_positive_without_tolerance () =
  (* T2 starts (per its drifted clock) before T1 commits, yet reads T1's
     write: fine for SSER (they overlap), and fine with tolerance.  The
     dangerous direction: T1 -RT-> T2 recorded but T2's read of the
     *initial* value — build that: *)
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 ~start:0 ~commit:100 [ r 0 0; w 0 1 ];
        (* T2 genuinely overlapped T1 but its drifted clock reports a
           start just after T1's commit. *)
        txn ~session:2 ~start:103 ~commit:200 [ r 0 0 ];
      ]
  in
  checkb "strict check reports violation" false
    (Checker.passes (Checker.check_sser ~skew:0 h));
  checkb "5-tick tolerance accepts" true
    (Checker.passes (Checker.check_sser ~skew:5 h));
  checkb "naive mode agrees" true
    (Checker.passes (Checker.check_sser ~rt_mode:Deps.Rt_naive ~skew:5 h))

let test_skew_does_not_mask_real_violations () =
  (* A stale read across a gap far larger than the skew bound stays a
     violation. *)
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 ~start:0 ~commit:100 [ r 0 0; w 0 1 ];
        txn ~session:2 ~start:1000 ~commit:1100 [ r 0 0 ];
      ]
  in
  checkb "still caught with skew 5" false
    (Checker.passes (Checker.check_sser ~skew:5 h))

let test_skew_monotone () =
  (* Growing tolerance only weakens the check. *)
  for seed = 1 to 3 do
    let h =
      (let spec =
         Mt_gen.generate
           { Mt_gen.default with num_txns = 200; num_keys = 8; seed }
       in
       let db =
         { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 8;
           seed }
       in
       (Scheduler.run ~db ~spec ()).Scheduler.history)
    in
    let p0 = Checker.passes (Checker.check_sser ~skew:0 h) in
    let p10 = Checker.passes (Checker.check_sser ~skew:10 h) in
    let p1000 = Checker.passes (Checker.check_sser ~skew:1_000_000 h) in
    checkb "skew 0 => skew 10" true ((not p0) || p10);
    checkb "skew 10 => skew huge" true ((not p10) || p1000);
    (* With skew beyond the history duration, SSER degenerates to SER. *)
    checkb "huge skew = SER" (Checker.passes (Checker.check_ser h)) p1000
  done

let suite =
  [
    ("replay: valid and invalid orders", `Quick, test_replay_accepts_valid_order);
    ("replay: permutation required", `Quick, test_replay_rejects_non_permutation);
    ("replay: own writes", `Quick, test_replay_own_writes);
    ("replay: aborted excluded", `Quick, test_replay_skips_aborted);
    ("certificate: engine histories replay", `Quick, test_certificate_replays_engine_histories);
    ("certificate: SSER respects real time", `Quick, test_certificate_sser_respects_rt);
    ("certificate: violation yields cycle", `Quick, test_certificate_fails_on_violation);
    ("certificate: SI unsupported", `Quick, test_certificate_si_unsupported);
    ("certificate: agrees with checker", `Quick, test_certificate_agrees_with_checker);
    ("skew: zero-skew baseline", `Quick, test_skew_tolerance_basic);
    ("skew: tolerance removes drift false positive", `Quick, test_skew_false_positive_without_tolerance);
    ("skew: real violations still caught", `Quick, test_skew_does_not_mask_real_violations);
    ("skew: monotone weakening to SER", `Quick, test_skew_monotone);
  ]
