lib/baselines/dbcop.ml: Array Format Hashtbl History Index Int_check List String Txn
