lib/runner/elle_log.mli: Format Op
