/* epoll bindings for the service event loop.
 *
 * The OCaml side passes interest and readiness as small int bitmasks
 * (bit 0 = read, bit 1 = write) and identifies registrations by an int
 * token it chooses; the token rides in epoll_data so a wait returns
 * (token, mask) pairs without any fd -> state lookup on the hot path.
 *
 * epoll_wait releases the OCaml runtime lock while blocking, so the
 * checking domains keep running.  On non-Linux systems the stubs report
 * the backend unavailable and Evloop falls back to Unix.select in
 * OCaml. */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>
#include <errno.h>
#include <string.h>
#include <stdint.h>

CAMLprim value mtc_evloop_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value mtc_epoll_create(value unit)
{
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) caml_failwith("epoll_create1 failed");
  return Val_int(fd);
}

CAMLprim value mtc_evloop_close(value vfd)
{
  close(Int_val(vfd));
  return Val_unit;
}

/* op: 0 = add, 1 = mod, 2 = del */
CAMLprim value mtc_epoll_ctl(value vep, value vop, value vfd,
                             value vinterest, value vdata)
{
  static const int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  struct epoll_event ev;
  memset(&ev, 0, sizeof ev);
  if (Int_val(vinterest) & 1) ev.events |= EPOLLIN;
  if (Int_val(vinterest) & 2) ev.events |= EPOLLOUT;
  ev.events |= EPOLLRDHUP;
  ev.data.u64 = (uint64_t)(intnat)Int_val(vdata);
  if (epoll_ctl(Int_val(vep), ops[Int_val(vop)], Int_val(vfd), &ev) < 0)
    caml_failwith("epoll_ctl failed");
  return Val_unit;
}

/* Fills [vout] (a flat int array) with (token, mask) pairs; returns the
 * event count.  A hangup or error edge is reported as both readable
 * (the read path sees EOF / the error) and writable (a pending writer
 * must wake to notice the peer is gone). */
CAMLprim value mtc_epoll_wait(value vep, value vtimeout_ms, value vout)
{
  struct epoll_event evs[512];
  int max = Wosize_val(vout) / 2;
  int n, i;
  if (max > 512) max = 512;
  caml_release_runtime_system();
  n = epoll_wait(Int_val(vep), evs, max, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();
  if (n < 0) {
    if (errno == EINTR) return Val_int(0);
    caml_failwith("epoll_wait failed");
  }
  for (i = 0; i < n; i++) {
    int mask = 0;
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR))
      mask |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR))
      mask |= 2;
    /* immediates only: plain Field stores need no write barrier */
    Field(vout, 2 * i) = Val_int((int)(intnat)evs[i].data.u64);
    Field(vout, 2 * i + 1) = Val_int(mask);
  }
  return Val_int(n);
}

#else /* !__linux__ */

CAMLprim value mtc_evloop_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value mtc_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("epoll unavailable on this platform");
  return Val_unit;
}

CAMLprim value mtc_evloop_close(value vfd)
{
  (void)vfd;
  return Val_unit;
}

CAMLprim value mtc_epoll_ctl(value vep, value vop, value vfd,
                             value vinterest, value vdata)
{
  (void)vep; (void)vop; (void)vfd; (void)vinterest; (void)vdata;
  caml_failwith("epoll unavailable on this platform");
  return Val_unit;
}

CAMLprim value mtc_epoll_wait(value vep, value vtimeout_ms, value vout)
{
  (void)vep; (void)vtimeout_ms; (void)vout;
  caml_failwith("epoll unavailable on this platform");
  return Val_unit;
}

#endif
