(** Phase aggregation of a span stream and the [--profile] table.

    A span's phase is its name up to the first ['/'] ("infer/deps" →
    "infer").  Within a phase, time is attributed only to {e top-level}
    spans — spans not strictly contained (same domain, same phase) in
    another span — so "infer/deps" and its "infer/deps/rw" children
    don't double-count.  Across domains time {e does} add up: four
    domains each busy 10 ms contribute 40 ms, which is the honest
    cost-accounting view (and why the footer compares against wall
    clock separately). *)

type phase = {
  p_name : string;
  p_total_ns : int;     (** sum of top-level span durations *)
  p_count : int;        (** number of top-level spans *)
  p_serial_ns : int;
      (** domain-0 top-level time during which no other domain had any
          span open — the phase's genuinely serial share.  On a run
          with no worker domains this equals [p_total_ns]. *)
  p_subs : (string * int * int) list;
      (** (full span name, total ns, count) of every distinct name in
          the phase, including nested ones, ordered by first
          appearance *)
}

val phases : Obs_trace.event list -> phase list
(** Ordered by first appearance in the (time-sorted) event stream. *)

val phase_sum_ns : Obs_trace.event list -> int
(** Sum of [p_total_ns] over all phases. *)

val render : wall_ns:int -> Obs_trace.event list -> string
(** The [mtc check --profile] table: one row per phase with total ms,
    span count, share of wall time and serial share (the fraction of
    the phase's domain-0 time with every worker idle); indented
    sub-rows per distinct span name; footers comparing the phase sum
    and the total serial time to wall time. *)
