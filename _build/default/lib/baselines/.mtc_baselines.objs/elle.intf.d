lib/baselines/elle.mli: Checker Elle_log History
