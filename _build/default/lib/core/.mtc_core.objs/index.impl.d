lib/core/index.ml: Array Hashtbl History List Op Printf Txn
