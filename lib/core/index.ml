type t = {
  history : History.t;
  committed : Txn.t array;
  vertex_of_txn : int array;
  writers : Flat_index.Writers.t option array;
  mutable finals : Bytes.t option;
}

(* Writer tables are striped by key so registration can run one task per
   stripe with no shared mutable state.  The stripe count is fixed (not
   the pool size): lookup routing must not depend on how the table was
   built. *)
let num_stripes = 8

let stripe_of_key k = k mod num_stripes

(* Finality of each write, one byte per op position, into the
   caller-provided scratch [final] (length >= Array.length ops).
   Mini-transactions (<= 4 ops) use a linear rescan; larger op arrays —
   in practice only the initial transaction, whose one-write-per-key
   array would make the rescan quadratic — get one backward pass with a
   later-written-keys table. *)
let rec no_later_write ops n k j =
  j >= n
  ||
  match ops.(j) with
  | Op.Write (k', _) when k' = k -> false
  | Op.Write _ | Op.Read _ -> no_later_write ops n k (j + 1)

let mark_finals ~final ops =
  let n = Array.length ops in
  if n <= 16 then
    for i = 0 to n - 1 do
      match ops.(i) with
      | Op.Write (k, _) ->
          Bytes.unsafe_set final i
            (if no_later_write ops n k (i + 1) then '\001' else '\000')
      | Op.Read _ -> Bytes.unsafe_set final i '\000'
    done
  else begin
    let seen = Hashtbl.create (2 * n) in
    for i = n - 1 downto 0 do
      match ops.(i) with
      | Op.Write (k, _) ->
          if Hashtbl.mem seen k then Bytes.unsafe_set final i '\000'
          else begin
            Hashtbl.add seen k ();
            Bytes.unsafe_set final i '\001'
          end
      | Op.Read _ -> Bytes.unsafe_set final i '\000'
    done
  end

let final_scratch txns =
  let m =
    Array.fold_left
      (fun m (t : Txn.t) -> Stdlib.max m (Array.length t.Txn.ops))
      1 txns
  in
  Bytes.create m

(* Finality of every committed op, flat across the whole history in op
   scan order (aborted transactions leave '\000' gaps).  Computed once
   per index and shared: readers recover per-txn offsets by keeping a
   running op count over the same scan. *)
let compute_finals (h : History.t) =
  let txns = h.txns in
  let total =
    Array.fold_left (fun n (t : Txn.t) -> n + Array.length t.Txn.ops) 0 txns
  in
  let finals = Bytes.make (Stdlib.max 1 total) '\000' in
  let final = final_scratch txns in
  let off = ref 0 in
  Array.iter
    (fun (t : Txn.t) ->
      let n = Array.length t.Txn.ops in
      if Txn.is_committed t then begin
        mark_finals ~final t.Txn.ops;
        Bytes.blit final 0 finals !off n
      end;
      off := !off + n)
    txns;
  finals

let finals t =
  match t.finals with
  | Some b -> b
  | None ->
      let b = compute_finals t.history in
      t.finals <- Some b;
      b

(* Register every write of keys in [stripe] into that stripe's table.
   Each task rescans the whole op stream (cheap: the filter is one mod)
   but inserts only its own keys, so the tasks share nothing mutable. *)
let register_stripe (h : History.t) ~finals w stripe =
  (* Explicit loops, no per-transaction closures: registration runs once
     per stripe over the whole op stream, so closure allocation here
     would dominate the build's footprint. *)
  let txns = h.txns in
  let off = ref 0 in
  for ti = 0 to Array.length txns - 1 do
    let t = txns.(ti) in
    let ops = t.ops in
    let n = Array.length ops in
    let base = !off in
    (match t.status with
    | Txn.Committed ->
        for i = 0 to n - 1 do
          match ops.(i) with
          | Op.Write (k, v) when stripe_of_key k = stripe ->
              if Bytes.unsafe_get finals (base + i) = '\001' then
                Flat_index.Writers.set_final w k v t.id
              else
                (* An overwritten write whose value happens to equal
                   the final one is re-registered as intermediate; the
                   final tier shadows it in [resolve], matching the
                   seed's [Txn.intermediate_writes] semantics. *)
                Flat_index.Writers.set_intermediate w k v t.id
          | Op.Write _ | Op.Read _ -> ()
        done
    | Txn.Aborted ->
        for i = 0 to n - 1 do
          match ops.(i) with
          | Op.Write (k, v) when stripe_of_key k = stripe ->
              Flat_index.Writers.set_aborted w k v t.id
          | Op.Write _ | Op.Read _ -> ()
        done);
    off := base + n
  done

let sp_writers = Obs.Trace.intern "infer/index/writers"

let fresh_table (h : History.t) =
  Flat_index.Writers.create ~num_keys:h.num_keys
    ~expected:(Stdlib.max 16 (4 * History.num_txns h / num_stripes))

let skeleton (h : History.t) =
  let n = History.num_txns h in
  let committed = Array.make (History.committed_count h) h.txns.(0) in
  let next = ref 0 in
  Array.iter
    (fun (t : Txn.t) ->
      if Txn.is_committed t then begin
        committed.(!next) <- t;
        incr next
      end)
    h.txns;
  let vertex_of_txn = Array.make n (-1) in
  Array.iteri (fun i (t : Txn.t) -> vertex_of_txn.(t.id) <- i) committed;
  {
    history = h;
    committed;
    vertex_of_txn;
    writers = Array.make num_stripes None;
    finals = None;
  }

let build ?pool (h : History.t) =
  let t = skeleton h in
  let fin = finals t in
  let tables = Array.init num_stripes (fun _ -> fresh_table h) in
  Pool.tasks pool
    (List.init num_stripes (fun stripe () ->
         Obs.Trace.with_span sp_writers (fun () ->
             register_stripe h ~finals:fin tables.(stripe) stripe)));
  Array.iteri (fun s w -> t.writers.(s) <- Some w) tables;
  t

let build_deferred (h : History.t) = skeleton h

let stripe_table t stripe =
  match t.writers.(stripe) with
  | Some w -> w
  | None ->
      let w =
        Obs.Trace.with_span sp_writers (fun () ->
            let w = fresh_table t.history in
            register_stripe t.history ~finals:(finals t) w stripe;
            w)
      in
      t.writers.(stripe) <- Some w;
      w

let num_vertices t = Array.length t.committed

let txn_of_vertex t v = t.committed.(v)

let vertex t id =
  let v = t.vertex_of_txn.(id) in
  if v < 0 then invalid_arg (Printf.sprintf "Index.vertex: T%d is aborted" id);
  v

type writer = Flat_index.Writers.who =
  | Final of Txn.id
  | Intermediate of Txn.id
  | Aborted of Txn.id
  | Nobody

let writer_of t k v =
  Flat_index.Writers.resolve (stripe_table t (stripe_of_key k)) k v
