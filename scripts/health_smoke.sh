#!/usr/bin/env bash
# End-to-end smoke of service introspection: a server with one actively
# feeding and one stalled session must flag the stalled one as pinning
# the GC horizon and name its sid on every surface — `mtc stats
# --sessions`, `mtc top --once`, the Prometheus exposition and the JSONL
# journal — and, with `--pin-fence close`, fence it so the aggregate
# live-words bound holds again.  Wired into `dune build @check` from the
# root dune file.
set -u

MTC="$1"
TMP=$(mktemp -d)
SERVER_PID=""
FEED_PIDS=""
cleanup() {
  [ -n "$FEED_PIDS" ] && kill $FEED_PIDS 2>/dev/null
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "health-smoke: FAIL: $*" >&2; exit 1; }

"$MTC" gen --txns 300 --sessions 4 --keys 50 --seed 7 -o "$TMP/h.hist" \
  >/dev/null || fail "fixture gen must pass"

start_server() { # $1 = fence policy
  SOCK="$TMP/mtc.sock"
  rm -f "$SOCK" "$TMP/serve.log"
  "$MTC" serve --listen "unix:$SOCK" --metrics-port 0 \
    --pin-warn-after 0.4 --pin-fence "$1" --journal "$TMP/journal.jsonl" \
    > "$TMP/serve.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
  [ -S "$SOCK" ] || fail "server did not come up (see $TMP/serve.log)"
  PORT=""
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*metrics on http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$TMP/serve.log" | head -n 1)
    [ -n "$PORT" ] && break
    sleep 0.05
  done
  [ -n "$PORT" ] || fail "server did not announce its metrics port"
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || fail "server must exit 0 on SIGTERM"
  SERVER_PID=""
}

# ---- phase 1: detection (fence off) -------------------------------
rm -f "$TMP/journal.jsonl"
start_server off

# sid 1: feeds one transaction then stalls for the whole phase
"$MTC" feed "$TMP/h.hist" -a "unix:$SOCK" --delay 60 \
  > "$TMP/stalled.log" 2>&1 &
STALLED_PID=$!
FEED_PIDS="$STALLED_PID"
sleep 0.2
# sid 2: keeps feeding across the detection window
"$MTC" feed "$TMP/h.hist" -a "unix:$SOCK" --delay 0.01 \
  > "$TMP/active.log" 2>&1 &
ACTIVE_PID=$!
FEED_PIDS="$STALLED_PID $ACTIVE_PID"

sleep 1.5

# -- surface 1: the per-session table names the pinned sid
"$MTC" stats -a "unix:$SOCK" --sessions > "$TMP/sessions.out" \
  || fail "stats --sessions must answer"
grep -Eq '^1 .*PINNED' "$TMP/sessions.out" \
  || fail "stats --sessions must flag sid 1 as PINNED (see $TMP/sessions.out)"
grep -Eq '^2 .*live' "$TMP/sessions.out" \
  || fail "the active session must stay live (see $TMP/sessions.out)"

# -- surface 2: mtc top --once renders the same view
"$MTC" top -a "unix:$SOCK" --once > "$TMP/top.out" \
  || fail "top --once must render"
grep -q 'PINNED' "$TMP/top.out" || fail "top must show the pinned session"
grep -Eq '^1 ' "$TMP/top.out" || fail "top must list sid 1"
grep -q 'pin-warn sid=1' "$TMP/top.out" \
  || fail "top's event ticker must carry the pin warning"

# -- surface 3: the Prometheus gauge trips, with per-session series
"$MTC" stats --metrics-http "$PORT" > "$TMP/prom.out" \
  || fail "stats --metrics-http must scrape"
grep -Eq '^mtc_horizon_pinned_sessions [1-9]' "$TMP/prom.out" \
  || fail "pinned-sessions gauge must trip"
grep -q '^mtc_session_pinned{sid="1"} 1' "$TMP/prom.out" \
  || fail "per-session pinned series must name sid 1"
grep -Eq '^mtc_session_feeds{sid="2"} [1-9]' "$TMP/prom.out" \
  || fail "per-session feed series must cover the active session"
grep -q '^mtc_journal_dropped_events ' "$TMP/prom.out" \
  || fail "journal drop counter must be exposed"

# the active session must finish clean despite the pinned neighbor
wait "$ACTIVE_PID" || fail "active feed must pass (see $TMP/active.log)"
grep -q 'PASS' "$TMP/active.log" || fail "active session verdict lost"
FEED_PIDS="$STALLED_PID"

kill "$STALLED_PID" 2>/dev/null; wait "$STALLED_PID" 2>/dev/null
FEED_PIDS=""
stop_server

# -- surface 4: the JSONL journal parses and names the pinned sid
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP/journal.jsonl" <<'PY' || fail "journal JSONL invalid"
import json, sys
events = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert events, "empty journal"
kinds = {e["kind"] for e in events}
assert "session_open" in kinds, "no open events"
assert any(e["kind"] == "pin_warn" and e["a"] == 1 for e in events), \
    "pin_warn for sid 1 missing"
for e in events:
    assert {"ts", "kind", "dom", "a", "b", "c"} <= e.keys(), f"bad line {e}"
PY
else
  grep -q '"kind":"pin_warn","dom":[0-9]*,"a":1' "$TMP/journal.jsonl" \
    || fail "journal must carry pin_warn for sid 1"
fi

# ---- phase 2: fencing (fence close) re-bounds memory ---------------
rm -f "$TMP/journal.jsonl"
start_server close

"$MTC" feed "$TMP/h.hist" -a "unix:$SOCK" --delay 60 \
  > "$TMP/stalled2.log" 2>&1 &
STALLED_PID=$!
FEED_PIDS="$STALLED_PID"

sleep 1.5

# the stalled session was fenced: no live sessions remain, so the
# aggregate live-words gauge is back to zero — the memory bound holds
"$MTC" stats -a "unix:$SOCK" --sessions > "$TMP/sessions2.out" \
  || fail "stats --sessions must answer after the fence"
grep -q 'no live sessions' "$TMP/sessions2.out" \
  || fail "fenced session must be gone (see $TMP/sessions2.out)"
"$MTC" stats -a "unix:$SOCK" --json > "$TMP/stats2.json" \
  || fail "stats --json must answer"
grep -q '"pin_fences":1' "$TMP/stats2.json" \
  || fail "fence counter must tick (see $TMP/stats2.json)"
grep -q '"live_words":0' "$TMP/stats2.json" \
  || fail "fence must release the session's live words (see $TMP/stats2.json)"
grep -q 'pin-fence sid=1' <("$MTC" stats -a "unix:$SOCK" --events) \
  || fail "journal must carry the fence event"

kill "$STALLED_PID" 2>/dev/null; wait "$STALLED_PID" 2>/dev/null
FEED_PIDS=""
stop_server

echo "health-smoke: OK"
