(** The multi-version store: per-object version chains ordered by commit
    time, with two logical replicas whose visibility can lag (the
    [Fault.Long_fork] mechanism).  On a healthy engine both replicas see a
    version the instant it commits. *)

type version = {
  value : Op.value;
  writer : Txn.id;
  commit_ts : int;
  visible : int array;  (** per replica: earliest time the version is seen *)
}

val num_replicas : int  (** 2 *)

type t

val create : num_keys:int -> t
(** Every key starts with the initial version (value 0, writer 0,
    commit_ts [min_int], immediately visible everywhere). *)

val num_keys : t -> int

val install :
  t -> key:Op.key -> value:Op.value -> writer:Txn.id -> commit_ts:int ->
  lag:(int * int) option -> unit
(** [lag = Some (replica, until)] delays visibility on [replica] until
    logical time [until]. *)

val visible_at : t -> key:Op.key -> replica:int -> ts:int -> version
(** The newest version with [commit_ts <= ts] and [visible.(replica) <= ts]
    — what a snapshot taken at [ts] on [replica] reads. *)

val predecessor : t -> key:Op.key -> version -> version option
(** The version immediately before [v] in commit order (for stale-read
    fault injection). *)

val newer_than : t -> key:Op.key -> ts:int -> bool
(** Does any version of [key] have [commit_ts > ts]?  The
    first-committer-wins test. *)

val newest_writer_after : t -> key:Op.key -> ts:int -> Txn.id list
(** Writers of versions with [commit_ts > ts] (for SSI out-edge
    bookkeeping). *)
