type result = {
  serializable : bool;
  states : int;
  gave_up : bool;
  invalid : string option;
}

exception Budget

let check ?(max_states = 2_000_000) (h : History.t) =
  let fail_invalid msg =
    { serializable = false; states = 0; gave_up = false; invalid = Some msg }
  in
  match (History.validate h, Int_check.check (Index.build h)) with
  | Error msg, _ -> fail_invalid msg
  | Ok (), Error v ->
      (* G1-style violations: no serialization exists. *)
      {
        serializable = false;
        states = 0;
        gave_up = false;
        invalid =
          Some (Format.asprintf "screen: %a" Int_check.pp_violation v);
      }
  | Ok (), Ok () ->
      let sessions =
        Array.init h.History.num_sessions (fun i ->
            History.session_chain h (i + 1)
            |> List.map (History.txn h)
            |> Array.of_list)
      in
      let k = Array.length sessions in
      let store = Array.make h.History.num_keys 0 in
      let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
      let states = ref 0 in
      let frontier = Array.make k 0 in
      let key_of () =
        String.concat "," (Array.to_list (Array.map string_of_int frontier))
      in
      let applicable (t : Txn.t) =
        List.for_all (fun (key, v) -> store.(key) = v) (Txn.external_reads t)
      in
      let apply (t : Txn.t) =
        let undo =
          List.map (fun (key, v) -> (key, store.(key), v)) (Txn.final_writes t)
        in
        List.iter (fun (key, _, v) -> store.(key) <- v) undo;
        undo
      in
      let unapply undo =
        List.iter (fun (key, old, _) -> store.(key) <- old) undo
      in
      let total = Array.fold_left (fun n s -> n + Array.length s) 0 sessions in
      let rec search scheduled =
        if scheduled = total then true
        else begin
          let key = key_of () in
          if Hashtbl.mem visited key then false
          else begin
            Hashtbl.replace visited key ();
            incr states;
            if !states > max_states then raise Budget;
            let rec try_session i =
              if i >= k then false
              else
                let pos = frontier.(i) in
                if pos < Array.length sessions.(i) && applicable sessions.(i).(pos)
                then begin
                  let undo = apply sessions.(i).(pos) in
                  frontier.(i) <- pos + 1;
                  let ok = search (scheduled + 1) in
                  frontier.(i) <- pos;
                  unapply undo;
                  ok || try_session (i + 1)
                end
                else try_session (i + 1)
            in
            try_session 0
          end
        end
      in
      (try
         let ok = search 0 in
         { serializable = ok; states = !states; gave_up = false; invalid = None }
       with Budget ->
         { serializable = false; states = !states; gave_up = true;
           invalid = None })
