test/test_workload.ml: Alcotest Append_gen Array Distribution Gt_gen List Mt_gen Spec
