lib/core/anomaly.mli: Checker History
