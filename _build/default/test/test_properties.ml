(* Property-based tests (QCheck): randomized cross-validation of the
   checkers, the engine, and the graph substrate. *)

let qtest = QCheck_alcotest.to_alcotest

(* Generator of engine configurations + workload seeds. *)
let config_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* num_keys = int_range 2 30 in
    let* num_txns = int_range 20 300 in
    let* num_sessions = int_range 1 12 in
    let* level =
      oneofl [ Isolation.Snapshot; Isolation.Serializable; Isolation.Strict_serializable ]
    in
    let* dist =
      oneofl
        [ Distribution.Uniform; Distribution.Zipfian 0.99;
          Distribution.Hotspot (0.2, 0.8); Distribution.Exponential 1.0 ]
    in
    return (seed, num_keys, num_txns, num_sessions, level, dist))

let print_config (seed, num_keys, num_txns, num_sessions, level, dist) =
  Printf.sprintf "seed=%d keys=%d txns=%d sessions=%d level=%s dist=%s" seed
    num_keys num_txns num_sessions (Isolation.name level)
    (Distribution.kind_name dist)

let run_config ?(fault = Fault.No_fault)
    (seed, num_keys, num_txns, num_sessions, level, dist) =
  let spec =
    Mt_gen.generate { Mt_gen.num_sessions; num_txns; num_keys; dist; seed }
  in
  let db = { Db.level; fault; num_keys; seed } in
  Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ()

(* P1: a healthy engine never violates its claimed isolation level. *)
let prop_engine_sound =
  QCheck2.Test.make ~name:"healthy engine passes its claimed level" ~count:60
    ~print:print_config config_gen (fun cfg ->
      let _, _, _, _, level, _ = cfg in
      let r = run_config cfg in
      let h = r.Scheduler.history in
      Checker.passes (Checker.check (Isolation.claimed_level level) h))

(* P2: level implications on arbitrary (even faulty) histories:
   SSER pass => SER pass; SER pass => SI pass (MT histories). *)
let prop_level_implications =
  QCheck2.Test.make ~name:"SSER => SER => SI on MT histories" ~count:60
    ~print:print_config config_gen (fun cfg ->
      let r = run_config ~fault:(Fault.Lost_update 0.1) cfg in
      let h = r.Scheduler.history in
      let sser = Checker.passes (Checker.check_sser h) in
      let ser = Checker.passes (Checker.check_ser h) in
      let si = Checker.passes (Checker.check_si h) in
      ((not sser) || ser) && ((not ser) || si))

(* P3: MTC-SER == Cobra on MT histories (sound & complete, Theorem 4). *)
let prop_mtc_ser_equals_cobra =
  QCheck2.Test.make ~name:"MTC-SER == Cobra" ~count:40 ~print:print_config
    config_gen (fun cfg ->
      let fault = if (let s, _, _, _, _, _ = cfg in s mod 2 = 0)
        then Fault.Lost_update 0.15 else Fault.No_fault in
      let h = (run_config ~fault cfg).Scheduler.history in
      Checker.passes (Checker.check_ser h) = (Cobra.check h).Cobra.serializable)

(* P4: MTC-SI == PolySI on MT histories (Theorem 5). *)
let prop_mtc_si_equals_polysi =
  QCheck2.Test.make ~name:"MTC-SI == PolySI" ~count:40 ~print:print_config
    config_gen (fun cfg ->
      let fault = if (let s, _, _, _, _, _ = cfg in s mod 2 = 0)
        then Fault.Causality_violation 0.1 else Fault.No_fault in
      let h = (run_config ~fault cfg).Scheduler.history in
      Checker.passes (Checker.check_si h) = (Polysi.check h).Polysi.si)

(* P5: RT encodings agree (Theorem on the sweep construction). *)
let prop_rt_encodings_agree =
  QCheck2.Test.make ~name:"SSER sweep == naive RT encoding" ~count:40
    ~print:print_config config_gen (fun cfg ->
      let h = (run_config cfg).Scheduler.history in
      Checker.passes (Checker.check_sser ~rt_mode:Deps.Rt_sweep h)
      = Checker.passes (Checker.check_sser ~rt_mode:Deps.Rt_naive h))

(* P6: codec roundtrip preserves checker verdicts. *)
let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrip preserves verdicts" ~count:30
    ~print:print_config config_gen (fun cfg ->
      let h = (run_config cfg).Scheduler.history in
      match Codec.of_string (Codec.to_string h) with
      | Ok h' ->
          List.for_all
            (fun level ->
              Checker.passes (Checker.check level h)
              = Checker.passes (Checker.check level h'))
            [ Checker.SSER; Checker.SER; Checker.SI ]
      | Error _ -> false)

(* P7: value-corruption mutations are caught.  Swapping one committed
   read's value for another object value (if distinct) must either break
   the INT screen or a dependency. *)
let prop_mutation_detected =
  QCheck2.Test.make ~name:"read-value corruption detected" ~count:40
    ~print:print_config config_gen (fun cfg ->
      let seed, _, _, _, _, _ = cfg in
      let r = run_config cfg in
      let h = r.Scheduler.history in
      (* Corrupt: find a committed txn with an external read of a non-zero
         value and bump the value to something never written. *)
      let rng = Rng.create seed in
      let txns = Array.copy h.History.txns in
      let candidates =
        Array.to_list txns
        |> List.filter (fun (t : Txn.t) ->
               Txn.is_committed t && t.Txn.id <> History.init_id
               && Array.exists (function Op.Read _ -> true | _ -> false) t.Txn.ops)
      in
      match candidates with
      | [] -> true (* nothing to corrupt: vacuously fine *)
      | _ ->
          let victim = Rng.pick rng (Array.of_list candidates) in
          let ops =
            Array.map
              (fun op ->
                match op with
                | Op.Read (k, _) -> Op.Read (k, 999_999_999)
                | Op.Write _ -> op)
              victim.Txn.ops
          in
          txns.(victim.Txn.id) <- { victim with Txn.ops };
          let h' =
            History.make ~num_keys:h.History.num_keys
              ~num_sessions:h.History.num_sessions
              (Array.to_list txns |> List.tl)
          in
          not (Checker.passes (Checker.check_si h')))

(* P7b: the weak-level lattice holds on arbitrary engine histories:
   SI pass => Causal pass => Read Atomic pass => Read Committed pass. *)
let prop_weak_lattice =
  QCheck2.Test.make ~name:"SI => CC => RA => RC (weak lattice)" ~count:40
    ~print:print_config config_gen (fun cfg ->
      let seed, _, _, _, _, _ = cfg in
      let fault =
        match seed mod 3 with
        | 0 -> Fault.Lost_update 0.15
        | 1 -> Fault.Causality_violation 0.1
        | _ -> Fault.No_fault
      in
      let h = (run_config ~fault cfg).Scheduler.history in
      let si = Checker.passes (Checker.check_si h) in
      let cc = Weak_checker.passes (Weak_checker.check_causal h) in
      let ra = Weak_checker.passes (Weak_checker.check_ra h) in
      let rc = Weak_checker.passes (Weak_checker.check_rc h) in
      ((not si) || cc) && ((not cc) || ra) && ((not ra) || rc))

(* P7c: the streaming checker agrees with the batch checker when fed the
   history in commit order. *)
let prop_online_equals_batch =
  QCheck2.Test.make ~name:"online == batch checker" ~count:40
    ~print:print_config config_gen (fun cfg ->
      let seed, _, _, _, level, _ = cfg in
      let fault =
        if seed mod 2 = 0 then Fault.Lost_update 0.15 else Fault.No_fault
      in
      let h = (run_config ~fault cfg).Scheduler.history in
      let stream =
        Array.to_list h.History.txns
        |> List.filter (fun (t : Txn.t) -> t.Txn.id <> History.init_id)
        |> List.sort (fun (a : Txn.t) b -> compare a.Txn.commit_ts b.Txn.commit_ts)
      in
      let check_level = Isolation.claimed_level level in
      let batch = Checker.passes (Checker.check check_level h) in
      let online =
        Result.is_ok
          (Online.check_stream ~level:check_level
             ~num_keys:h.History.num_keys stream)
      in
      batch = online)

(* P8: the LWT generator + checker agree with Porcupine. *)
let lwt_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 5_000 in
    let* sessions = int_range 2 8 in
    let* txns = int_range 5 40 in
    let* pct = oneofl [ 0.0; 0.5; 1.0 ] in
    let* read_pct = oneofl [ 0.0; 0.2 ] in
    let* inject =
      oneofl
        [ Lwt_gen.No_injection; Lwt_gen.Rt_violation; Lwt_gen.Phantom_write;
          Lwt_gen.Split_brain ]
    in
    return (seed, sessions, txns, pct, read_pct, inject))

let prop_vl_lwt_equals_porcupine =
  QCheck2.Test.make ~name:"VL-LWT == Porcupine" ~count:60
    ~print:(fun (s, se, t, p, _, _) ->
      Printf.sprintf "seed=%d sessions=%d txns=%d pct=%.1f" s se t p)
    lwt_gen
    (fun (seed, num_sessions, txns_per_session, concurrent_pct, read_pct, inject) ->
      let h =
        Lwt_gen.generate
          { Lwt_gen.num_sessions; txns_per_session; num_keys = 3;
            concurrent_pct; read_pct; seed; inject }
      in
      (Lwt_checker.check h = Ok ())
      = (Porcupine.check h).Porcupine.linearizable)

(* P9: Pearce–Kelly accepts exactly the acyclic edge streams. *)
let edge_stream_gen =
  QCheck2.Gen.(
    let* n = int_range 2 15 in
    let* edges = list_size (int_range 1 40) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, edges))

let prop_pk_matches_oracle =
  QCheck2.Test.make ~name:"Pearce-Kelly matches batch cycle oracle" ~count:200
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))
    edge_stream_gen
    (fun (n, edges) ->
      let pk = Pearce_kelly.create n in
      let g = Digraph.create n in
      List.for_all
        (fun (u, v) ->
          match Pearce_kelly.add_edge pk u v with
          | Ok () ->
              Digraph.add_edge g u v ();
              Cycle.is_acyclic g && Pearce_kelly.check_invariant pk
          | Error _ ->
              (* must really close a cycle *)
              let g' = Digraph.create n in
              Digraph.iter_edges g (fun a lab b -> Digraph.add_edge g' a b lab);
              Digraph.add_edge g' u v ();
              not (Cycle.is_acyclic g'))
        edges)

(* P10: abort-rate sanity — MT workloads abort strictly less than GT
   workloads under identical contention (Figure 11's shape). *)
let prop_mt_aborts_less_than_gt =
  QCheck2.Test.make ~name:"MT abort rate <= GT abort rate (hot keys)" ~count:10
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let num_keys = 8 in
      let db level = { Db.level; fault = Fault.No_fault; num_keys; seed } in
      let mt =
        Scheduler.run ~db:(db Isolation.Serializable)
          ~spec:(Mt_gen.generate
                   { Mt_gen.default with num_txns = 400; num_keys; seed })
          ()
      in
      let gt =
        Scheduler.run ~db:(db Isolation.Serializable)
          ~spec:(Gt_gen.generate
                   { Gt_gen.default with num_txns = 400; num_keys; ops_per_txn = 16; seed })
          ()
      in
      Scheduler.abort_rate mt <= Scheduler.abort_rate gt +. 0.05)

let suite =
  List.map qtest
    [
      prop_engine_sound;
      prop_level_implications;
      prop_mtc_ser_equals_cobra;
      prop_mtc_si_equals_polysi;
      prop_rt_encodings_agree;
      prop_codec_roundtrip;
      prop_mutation_detected;
      prop_weak_lattice;
      prop_online_equals_batch;
      prop_vl_lwt_equals_porcupine;
      prop_pk_matches_oracle;
      prop_mt_aborts_less_than_gt;
    ]
