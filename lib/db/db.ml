type config = {
  level : Isolation.level;
  fault : Fault.mode;
  num_keys : int;
  seed : int;
}

type stats = {
  mutable commits : int;
  mutable aborts_ww : int;
  mutable aborts_ssi : int;
  mutable aborts_wound : int;
  mutable aborts_user : int;
}

(* SSI bookkeeping survives a transaction's lifetime: committed
   transactions can be discovered as dangerous-structure pivots later. *)
type conflict_info = {
  c_snapshot : int;
  mutable c_commit : int;  (** [max_int] while active *)
  mutable in_rw : bool;
  mutable out_rw : bool;
}

type handle = {
  txn_id : Txn.id;
  session : int;
  replica : int;
  start_ts : int;
  mutable ops : Op.t list;  (** reversed *)
  write_buf : (Op.key, Op.value) Hashtbl.t;
  read_keys : (Op.key, unit) Hashtbl.t;
  mutable doomed : bool;
  mutable finished : bool;
}

type t = {
  cfg : config;
  store : Mvcc.t;
  locks : Locking.t;
  rng : Rng.t;
  mutable clock : int;
  mutable next_txn : int;
  mutable last_reported : int;  (** last commit_ts handed to a client *)
  conflicts : (Txn.id, conflict_info) Hashtbl.t;
  sireads : (Op.key, Txn.id list ref) Hashtbl.t;
  active : (Txn.id, handle) Hashtbl.t;
  session_of : (Txn.id, int) Hashtbl.t;
  stats : stats;
}

let create cfg =
  {
    cfg;
    store = Mvcc.create ~num_keys:cfg.num_keys;
    locks = Locking.create ~num_keys:cfg.num_keys;
    rng = Rng.create cfg.seed;
    clock = 1;
    next_txn = 1;
    last_reported = 0;
    conflicts = Hashtbl.create 1024;
    sireads = Hashtbl.create 1024;
    active = Hashtbl.create 64;
    session_of = Hashtbl.create 1024;
    stats =
      { commits = 0; aborts_ww = 0; aborts_ssi = 0; aborts_wound = 0;
        aborts_user = 0 };
  }

let config t = t.cfg
let now t = t.clock
let stats t = t.stats

let total_aborts s = s.aborts_ww + s.aborts_ssi + s.aborts_wound + s.aborts_user

let tick t =
  let c = t.clock in
  t.clock <- c + 1;
  c

let begin_txn t ~session =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  let start_ts = tick t in
  let h =
    {
      txn_id = id;
      session;
      replica = session mod Mvcc.num_replicas;
      start_ts;
      ops = [];
      write_buf = Hashtbl.create 4;
      read_keys = Hashtbl.create 4;
      doomed = false;
      finished = false;
    }
  in
  Hashtbl.replace t.active id h;
  Hashtbl.replace t.session_of id session;
  Hashtbl.replace t.conflicts id
    { c_snapshot = start_ts; c_commit = max_int; in_rw = false; out_rw = false };
  h

let handle_id h = h.txn_id
let handle_session h = h.session
let handle_start h = h.start_ts
let handle_ops h = List.rev h.ops

type read_result = Rvalue of Op.value | Rblocked | Rdoomed
type write_result = Wok | Wblocked | Wdoomed

type abort_reason = Ww_conflict | Dangerous_structure | Wounded | User_abort

let abort_reason_name = function
  | Ww_conflict -> "ww-conflict"
  | Dangerous_structure -> "dangerous-structure"
  | Wounded -> "wounded"
  | User_abort -> "user-abort"

let fault_trips t p = p > 0.0 && Rng.chance t.rng p

let doom t victim =
  match Hashtbl.find_opt t.active victim with
  | Some h -> h.doomed <- true
  | None -> ()

let record_siread t h k =
  (match Hashtbl.find_opt t.sireads k with
  | Some r -> if not (List.mem h.txn_id !r) then r := h.txn_id :: !r
  | None -> Hashtbl.replace t.sireads k (ref [ h.txn_id ]));
  Hashtbl.replace h.read_keys k ()

(* The version a read observes, before fault injection.  The stale-read
   fault never hides a session's own writes (clients observe their own
   effects even on the buggy systems this replicates), so it corrupts only
   cross-session causality. *)
let mvcc_read_version t h k ~at =
  let v = Mvcc.visible_at t.store ~key:k ~replica:h.replica ~ts:at in
  match t.cfg.fault with
  | Fault.Causality_violation p
    when Hashtbl.find_opt t.session_of v.Mvcc.writer <> Some h.session
         && fault_trips t p -> (
      match Mvcc.predecessor t.store ~key:k v with
      | Some older
        when Hashtbl.find_opt t.session_of older.Mvcc.writer
             <> Some h.session ->
          older
      | Some _ | None -> v)
  | _ -> v

let read t h k =
  let _ = tick t in
  if h.doomed then Rdoomed
  else
    match t.cfg.level with
    | Isolation.Strict_serializable -> (
        match
          Locking.acquire t.locks ~kind:`Shared ~key:k ~txn:h.txn_id
            ~age:h.start_ts
        with
        | Locking.Blocked -> Rblocked
        | Locking.Granted | Locking.Granted_wounding _ as g ->
            (match g with
            | Locking.Granted_wounding victims -> List.iter (doom t) victims
            | _ -> ());
            let value =
              match Hashtbl.find_opt h.write_buf k with
              | Some v -> v
              | None -> (Mvcc.visible_at t.store ~key:k ~replica:h.replica ~ts:t.clock).Mvcc.value
            in
            h.ops <- Op.Read (k, value) :: h.ops;
            Rvalue value)
    | Isolation.Read_committed | Isolation.Snapshot | Isolation.Serializable ->
        let value =
          match Hashtbl.find_opt h.write_buf k with
          | Some v -> v
          | None ->
              let at =
                match t.cfg.level with
                | Isolation.Read_committed -> t.clock
                | _ -> h.start_ts
              in
              (mvcc_read_version t h k ~at).Mvcc.value
        in
        if t.cfg.level = Isolation.Serializable then record_siread t h k;
        h.ops <- Op.Read (k, value) :: h.ops;
        Rvalue value

let write t h k v =
  let _ = tick t in
  if h.doomed then Wdoomed
  else
    match t.cfg.level with
    | Isolation.Strict_serializable -> (
        match
          Locking.acquire t.locks ~kind:`Exclusive ~key:k ~txn:h.txn_id
            ~age:h.start_ts
        with
        | Locking.Blocked -> Wblocked
        | Locking.Granted | Locking.Granted_wounding _ as g ->
            (match g with
            | Locking.Granted_wounding victims -> List.iter (doom t) victims
            | _ -> ());
            Hashtbl.replace h.write_buf k v;
            h.ops <- Op.Write (k, v) :: h.ops;
            Wok)
    | Isolation.Read_committed | Isolation.Snapshot | Isolation.Serializable ->
        Hashtbl.replace h.write_buf k v;
        h.ops <- Op.Write (k, v) :: h.ops;
        Wok

let install_writes t h ~commit_ts =
  let lag_for () =
    match t.cfg.fault with
    | Fault.Long_fork p when fault_trips t p ->
        Some (1 - h.replica, commit_ts + 64)
    | _ -> None
  in
  Hashtbl.iter
    (fun k v ->
      Mvcc.install t.store ~key:k ~value:v ~writer:h.txn_id ~commit_ts
        ~lag:(lag_for ()))
    h.write_buf

let finish t h =
  h.finished <- true;
  Hashtbl.remove t.active h.txn_id;
  if t.cfg.level = Isolation.Strict_serializable then
    Locking.release_all t.locks ~txn:h.txn_id

let do_abort t h reason =
  (* The MongoDB-style leak: an aborted transaction's writes become
     visible even though the client is told it failed. *)
  (match t.cfg.fault with
  | Fault.Aborted_read p
    when Hashtbl.length h.write_buf > 0 && fault_trips t p ->
      install_writes t h ~commit_ts:(tick t)
  | _ -> ());
  (match Hashtbl.find_opt t.conflicts h.txn_id with
  | Some info -> info.c_commit <- max_int  (* stays non-committed *)
  | None -> ());
  Hashtbl.remove t.conflicts h.txn_id;
  (match reason with
  | Ww_conflict -> t.stats.aborts_ww <- t.stats.aborts_ww + 1
  | Dangerous_structure -> t.stats.aborts_ssi <- t.stats.aborts_ssi + 1
  | Wounded -> t.stats.aborts_wound <- t.stats.aborts_wound + 1
  | User_abort -> t.stats.aborts_user <- t.stats.aborts_user + 1);
  finish t h

type commit_result = Committed of int | Rejected of abort_reason

let is_pivot info = info.in_rw && info.out_rw

(* SSI commit-time certification.  Returns true iff committing is safe. *)
let ssi_certify t h ~commit_ts =
  let info = Hashtbl.find t.conflicts h.txn_id in
  let danger = ref false in
  let note_committed_pivot (other : conflict_info) =
    if other.c_commit < max_int && is_pivot other then danger := true
  in
  (* Outgoing edges: we read something a concurrent transaction
     overwrote. *)
  Hashtbl.iter
    (fun k () ->
      List.iter
        (fun writer ->
          if writer <> h.txn_id then
            match Hashtbl.find_opt t.conflicts writer with
            | Some w_info ->
                info.out_rw <- true;
                w_info.in_rw <- true;
                note_committed_pivot w_info
            | None -> ())
        (Mvcc.newest_writer_after t.store ~key:k ~ts:h.start_ts))
    h.read_keys;
  (* Incoming edges: a concurrent transaction read what we overwrite. *)
  Hashtbl.iter
    (fun k _v ->
      match Hashtbl.find_opt t.sireads k with
      | None -> ()
      | Some readers ->
          List.iter
            (fun r ->
              if r <> h.txn_id then
                match Hashtbl.find_opt t.conflicts r with
                | Some r_info
                  when r_info.c_snapshot < commit_ts
                       && r_info.c_commit > h.start_ts ->
                    info.in_rw <- true;
                    r_info.out_rw <- true;
                    note_committed_pivot r_info
                | Some _ | None -> ())
            !readers)
    h.write_buf;
  (not (is_pivot info)) && not !danger

(* Timestamp-oracle faults lie only in the commit timestamp *returned*
   to the client — the versions installed in the store (and the SSI
   bookkeeping) keep the real one, so the history's values stay those of
   a correct engine and only certification can tell.  The lie is clamped
   to [start_ts] so the reported window stays well-formed. *)
let reported_commit t h ~commit_ts =
  let lie =
    match t.cfg.fault with
    | Fault.Ts_skew p when fault_trips t p ->
        Some (commit_ts + Rng.int t.rng 17 - 8)
    | Fault.Ts_reorder p when fault_trips t p -> Some h.start_ts
    | Fault.Ts_dup p when fault_trips t p -> Some t.last_reported
    | _ -> None
  in
  let r =
    match lie with Some ts -> Stdlib.max h.start_ts ts | None -> commit_ts
  in
  t.last_reported <- r;
  r

let commit t h =
  if h.doomed then begin
    do_abort t h Wounded;
    Rejected Wounded
  end
  else
    let commit_ts = tick t in
    match t.cfg.level with
    | Isolation.Strict_serializable | Isolation.Read_committed ->
        install_writes t h ~commit_ts;
        (match Hashtbl.find_opt t.conflicts h.txn_id with
        | Some info -> info.c_commit <- commit_ts
        | None -> ());
        t.stats.commits <- t.stats.commits + 1;
        finish t h;
        Committed (reported_commit t h ~commit_ts)
    | Isolation.Snapshot | Isolation.Serializable ->
        let skip_all =
          match t.cfg.fault with
          | Fault.Lost_update p -> fault_trips t p
          | _ -> false
        in
        let ww_conflict =
          (not skip_all)
          && Hashtbl.fold
               (fun k _v acc ->
                 acc || Mvcc.newer_than t.store ~key:k ~ts:h.start_ts)
               h.write_buf false
        in
        if ww_conflict then begin
          do_abort t h Ww_conflict;
          Rejected Ww_conflict
        end
        else
          let skip_ssi =
            skip_all
            ||
            match t.cfg.fault with
            | Fault.Write_skew p -> fault_trips t p
            | _ -> false
          in
          let ssi_ok =
            t.cfg.level <> Isolation.Serializable
            || skip_ssi
            || ssi_certify t h ~commit_ts
          in
          if not ssi_ok then begin
            do_abort t h Dangerous_structure;
            Rejected Dangerous_structure
          end
          else begin
            install_writes t h ~commit_ts;
            (Hashtbl.find t.conflicts h.txn_id).c_commit <- commit_ts;
            t.stats.commits <- t.stats.commits + 1;
            finish t h;
            Committed (reported_commit t h ~commit_ts)
          end

let abort t h =
  if not h.finished then
    do_abort t h (if h.doomed then Wounded else User_abort)
