lib/core/lwt_checker.mli: Format Lwt Op
