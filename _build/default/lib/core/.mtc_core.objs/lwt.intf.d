lib/core/lwt.mli: Format Op
