(* Additional coverage: Viz, Targeted workloads, and checker edge cases
   beyond the main suites. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
  go 0

open Builder

(* --- Viz --- *)

let test_viz_history_dot () =
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1 ] ]
  in
  let dot = Viz.dot_of_history h in
  checkb "digraph" true (contains dot "digraph history");
  checkb "t1 node" true (contains dot "t1 [label=\"T1");
  checkb "WR edge" true (contains dot "WR(x0)");
  checkb "WW edge" true (contains dot "WW(x0)");
  checkb "SO edge" true (contains dot "SO")

let test_viz_history_truncates () =
  let txns = List.init 100 (fun i -> txn ~session:1 [ r 0 i; w 0 (i + 1) ]) in
  let dot = Viz.dot_of_history ~max_txns:5 (history ~keys:1 ~sessions:1 txns) in
  checkb "t4 shown" true (contains dot "t4 [");
  checkb "t99 hidden" false (contains dot "t99 [")

let test_viz_violation_cycle () =
  let h = Anomaly.history Anomaly.Write_skew in
  match Checker.check_ser h with
  | Checker.Fail v ->
      let dot = Viz.dot_of_violation h v in
      checkb "RW edges highlighted" true (contains dot "RW(x");
      checkb "penwidth" true (contains dot "penwidth=2")
  | Checker.Pass -> Alcotest.fail "write skew passed"

let test_viz_violation_divergence () =
  let h = Anomaly.history Anomaly.Lost_update in
  match Checker.check_si h with
  | Checker.Fail v ->
      let dot = Viz.dot_of_violation h v in
      checkb "both WW branches" true (contains dot "WW(x0)");
      checkb "init node" true (contains dot "T0 (init)")
  | Checker.Pass -> Alcotest.fail "lost update passed"

(* --- Targeted workloads --- *)

let run_spec ?(fault = Fault.No_fault) ?(level = Isolation.Snapshot) spec seed =
  let db = { Db.level; fault; num_keys = spec.Spec.num_keys; seed } in
  Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ()

let test_targeted_all_mini () =
  List.iter
    (fun spec ->
      Array.iter
        (List.iter (fun t ->
             checkb spec.Spec.name true (Spec.is_mini_op_list t)))
        spec.Spec.sessions)
    [
      Targeted.contended ~keys:10 ~txns:200 ~seed:1 ();
      Targeted.observers ~keys:8 ~txns:200 ~seed:1 ();
      Targeted.write_skew ~keys:8 ~txns:200 ~seed:1 ();
    ]

let test_targeted_observers_no_ww_contention () =
  (* Writers own disjoint keys, so even a lost-update fault cannot create
     divergence: any SI violation must be visibility-shaped. *)
  let spec = Targeted.observers ~keys:8 ~txns:500 ~seed:3 () in
  let r = run_spec ~fault:(Fault.Lost_update 1.0) spec 3 in
  checkb "no divergence possible" true
    (Divergence.find (Index.build r.Scheduler.history) = None)

let test_targeted_write_skew_under_si () =
  (* Pure SI engine + write-skew spec: SER violated, SI upheld. *)
  let spec = Targeted.write_skew ~keys:4 ~txns:800 ~seed:5 () in
  let r = run_spec spec 5 in
  let h = r.Scheduler.history in
  checkb "SI holds" true (Checker.passes (Checker.check_si h));
  checkb "SER broken by write skew" false (Checker.passes (Checker.check_ser h))

let test_targeted_validation () =
  checkb "odd keys rejected" true
    (try
       ignore (Targeted.write_skew ~keys:3 ~txns:10 ~seed:1 ());
       false
     with Invalid_argument _ -> true);
  checkb "too few keys for observers" true
    (try
       ignore (Targeted.observers ~sessions:8 ~keys:2 ~txns:10 ~seed:1 ());
       false
     with Invalid_argument _ -> true)

(* --- checker edge cases --- *)

let test_checker_read_only_history () =
  let h =
    history ~keys:2 ~sessions:3
      [
        txn ~session:1 [ r 0 0; r 1 0 ];
        txn ~session:2 [ r 1 0 ];
        txn ~session:3 [ r 0 0 ];
      ]
  in
  List.iter
    (fun level -> checkb "read-only passes" true (Checker.passes (Checker.check level h)))
    [ Checker.SSER; Checker.SER; Checker.SI ]

let test_checker_long_chain_linear () =
  (* A 5000-txn RMW chain must verify quickly and pass. *)
  let txns = List.init 5000 (fun i -> txn ~session:1 [ r 0 i; w 0 (i + 1) ]) in
  let h = history ~keys:1 ~sessions:1 txns in
  let _, t = Stats.time_it (fun () -> Checker.check_ser h) in
  checkb "passes" true (Checker.passes (Checker.check_ser h));
  checkb "fast (<2s)" true (t < 2.0)

let test_checker_sser_equal_timestamps () =
  (* start == other's commit: not "finished before started", so no RT
     edge; both orders acceptable. *)
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 ~start:0 ~commit:5 [ r 0 0; w 0 1 ];
        txn ~session:2 ~start:5 ~commit:9 [ r 0 0 ];
      ]
  in
  checkb "boundary overlap ok" true (Checker.passes (Checker.check_sser h))

let test_checker_rw_only_cycle_across_keys () =
  (* Three-way write skew: cycle of three RW edges. *)
  let h =
    history ~keys:3 ~sessions:3
      [
        txn ~session:1 [ r 0 0; r 1 0; w 0 1 ];
        txn ~session:2 [ r 1 0; r 2 0; w 1 2 ];
        txn ~session:3 [ r 2 0; r 0 0; w 2 3 ];
      ]
  in
  checkb "SI holds (adjacent RWs)" true (Checker.passes (Checker.check_si h));
  checkb "SER broken" false (Checker.passes (Checker.check_ser h))

let test_checker_si_composed_cycle_no_divergence () =
  (* CausalityViolation has no divergence yet fails SI via the composed
     graph — the path Algorithm 1 takes when line 2's screen passes. *)
  let h = Anomaly.history Anomaly.Causality_violation in
  checkb "no divergence" true (Divergence.find (Index.build h) = None);
  match Checker.check_si h with
  | Checker.Fail (Checker.Cyclic _) -> ()
  | _ -> Alcotest.fail "expected a composed-graph cycle"

let test_checker_aborted_txns_not_in_deps () =
  (* An aborted transaction's writes constrain nothing if nobody read
     them. *)
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 ~status:Txn.Aborted [ r 0 0; w 0 99 ];
        txn ~session:2 [ r 0 0; w 0 1 ];
      ]
  in
  List.iter
    (fun level -> checkb "aborted ignored" true (Checker.passes (Checker.check level h)))
    [ Checker.SSER; Checker.SER; Checker.SI ]

let test_checker_double_write_intermediate_chain () =
  (* T1 writes x twice; only the final value extends the chain. *)
  let h =
    history ~keys:1 ~sessions:2
      [
        txn ~session:1 [ r 0 0; w 0 1; w 0 2 ];
        txn ~session:2 [ r 0 2; w 0 3 ];
      ]
  in
  checkb "chain through final write" true (Checker.passes (Checker.check_si h))

let test_report_summary () =
  let h = Anomaly.history Anomaly.Lost_update in
  let s =
    Report.summary h
      [ (Checker.SI, Checker.check_si h); (Checker.SER, Checker.check_ser h) ]
  in
  checkb "mentions SI" true (contains s "SI");
  checkb "mentions FAIL" true (contains s "FAIL")

let test_scheduler_give_up_counted () =
  (* One key, many sessions, tiny attempt budget: some transactions are
     dropped and accounting stays consistent. *)
  let spec =
    Mt_gen.generate
      { Mt_gen.num_sessions = 16; num_txns = 400; num_keys = 1;
        dist = Distribution.Uniform; seed = 8 }
  in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 1;
      seed = 8 }
  in
  let r =
    Scheduler.run ~params:{ Scheduler.seed = 8; max_attempts = 2 } ~db ~spec ()
  in
  checkb "some gave up" true (r.Scheduler.gave_up > 0);
  checki "committed + gave_up = planned" 400
    (r.Scheduler.committed + r.Scheduler.gave_up);
  checkb "history still valid" true
    (History.unique_values r.Scheduler.history = Ok ())

let test_lwt_reads_do_not_break_determinism () =
  let p = { Lwt_gen.default with read_pct = 0.4; txns_per_session = 30 } in
  let a = Lwt_gen.generate p and b = Lwt_gen.generate p in
  checkb "deterministic with reads" true (a.Lwt.events = b.Lwt.events);
  checkb "valid" true (Lwt_checker.check a = Ok ())

(* --- finer INT-screen classification --- *)

let int_kind ops =
  let h = history ~keys:2 ~sessions:1 [ txn ~session:1 ops ] in
  match Int_check.check (Index.build h) with
  | Ok () -> None
  | Error v -> Some (Int_check.kind_name v.Int_check.kind)

let test_int_future_read_after_access () =
  (* Prior access exists, observed value is an own later write. *)
  Alcotest.check
    Alcotest.(option string)
    "future" (Some "FutureRead")
    (int_kind [ r 0 0; r 0 5; w 0 5 ])

let test_int_repeatable_with_write_between () =
  (* Read, own write, read of the write: INT-consistent. *)
  Alcotest.check
    Alcotest.(option string)
    "clean" None
    (int_kind [ r 0 0; w 0 3; r 0 3 ])

let test_int_not_my_last_write_middle_read () =
  Alcotest.check
    Alcotest.(option string)
    "nmlw" (Some "NotMyLastWrite")
    (int_kind [ r 0 0; w 0 1; r 0 1; w 0 2; r 0 1 ])

let test_int_two_keys_independent () =
  Alcotest.check
    Alcotest.(option string)
    "clean" None
    (int_kind [ r 0 0; w 0 1; r 1 0; w 1 2; r 0 1; r 1 2 ])

(* --- codec robustness --- *)

let test_codec_negative_timestamps () =
  let h =
    history ~keys:1 ~sessions:1
      [ txn ~session:1 ~start:(-50) ~commit:(-10) [ r 0 0 ] ]
  in
  match Codec.of_string (Codec.to_string h) with
  | Ok h' ->
      Alcotest.check Alcotest.int "start preserved" (-50)
        (History.txn h' 1).Txn.start_ts
  | Error e -> Alcotest.fail e

let test_codec_comments_and_blanks () =
  let s =
    "mtc-history v1\n\nkeys 1\n# a comment\nsessions 1\n\ntxn 1 1 C 0 1 R(x0)=0\n"
  in
  match Codec.of_string s with
  | Ok h -> Alcotest.check Alcotest.int "one txn" 2 (History.num_txns h)
  | Error e -> Alcotest.fail e

let test_codec_rejects_gap_in_ids () =
  let s = "mtc-history v1\nkeys 1\nsessions 1\ntxn 2 1 C 0 1 R(x0)=0\n" in
  checkb "gap rejected" true (Result.is_error (Codec.of_string s))

(* --- divergence corner cases --- *)

let test_divergence_same_session () =
  (* Two diverging writers can even share a session (a retry bug). *)
  let h =
    history ~keys:1 ~sessions:1
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:1 [ r 0 0; w 0 2 ] ]
  in
  checkb "found" true (Divergence.find (Index.build h) <> None);
  (* ... and is also an SO ∪ RW cycle, so SER rejects it too. *)
  checkb "SER rejects" false (Checker.passes (Checker.check_ser h))

let test_divergence_after_chain () =
  (* Divergence deep in a chain, not at the initial version. *)
  let h =
    history ~keys:1 ~sessions:3
      [
        txn ~session:1 [ r 0 0; w 0 1 ];
        txn ~session:2 [ r 0 1; w 0 2 ];
        txn ~session:3 [ r 0 1; w 0 3 ];
      ]
  in
  match Divergence.find (Index.build h) with
  | Some i -> Alcotest.check Alcotest.int "writer is T1" 1 i.Divergence.writer
  | None -> Alcotest.fail "missed"

(* --- scheduler + elle under SER --- *)

let test_elle_append_on_ser_engine () =
  let spec = Append_gen.generate { Append_gen.default with num_txns = 200; seed = 11 } in
  let db =
    { Db.level = Isolation.Serializable; fault = Fault.No_fault; num_keys = 10;
      seed = 11 }
  in
  let r = Scheduler.run ~db ~spec () in
  let log = Option.get r.Scheduler.elle in
  checkb "elle SER clean" true (Elle.check_append ~level:Checker.SER log).Elle.ok

let suite =
  [
    ("int: future read after prior access", `Quick, test_int_future_read_after_access);
    ("int: write-read-back clean", `Quick, test_int_repeatable_with_write_between);
    ("int: not-my-last-write with middle read", `Quick, test_int_not_my_last_write_middle_read);
    ("int: two keys independent", `Quick, test_int_two_keys_independent);
    ("codec: negative timestamps", `Quick, test_codec_negative_timestamps);
    ("codec: comments and blank lines", `Quick, test_codec_comments_and_blanks);
    ("codec: id gap rejected", `Quick, test_codec_rejects_gap_in_ids);
    ("divergence: same session", `Quick, test_divergence_same_session);
    ("divergence: deep in chain", `Quick, test_divergence_after_chain);
    ("elle: append log on SER engine", `Quick, test_elle_append_on_ser_engine);
    ("viz: history dot", `Quick, test_viz_history_dot);
    ("viz: truncation", `Quick, test_viz_history_truncates);
    ("viz: cycle violation dot", `Quick, test_viz_violation_cycle);
    ("viz: divergence dot", `Quick, test_viz_violation_divergence);
    ("targeted: all mini", `Quick, test_targeted_all_mini);
    ("targeted: observers immune to divergence", `Quick, test_targeted_observers_no_ww_contention);
    ("targeted: write skew under SI", `Quick, test_targeted_write_skew_under_si);
    ("targeted: parameter validation", `Quick, test_targeted_validation);
    ("checker: read-only history", `Quick, test_checker_read_only_history);
    ("checker: 5000-txn chain is fast", `Quick, test_checker_long_chain_linear);
    ("checker: SSER boundary timestamps", `Quick, test_checker_sser_equal_timestamps);
    ("checker: 3-way write skew", `Quick, test_checker_rw_only_cycle_across_keys);
    ("checker: SI composed cycle w/o divergence", `Quick, test_checker_si_composed_cycle_no_divergence);
    ("checker: unread aborted writes ignored", `Quick, test_checker_aborted_txns_not_in_deps);
    ("checker: intermediate write chain", `Quick, test_checker_double_write_intermediate_chain);
    ("report: summary", `Quick, test_report_summary);
    ("scheduler: give-up accounting", `Quick, test_scheduler_give_up_counted);
    ("lwt_gen: reads deterministic", `Quick, test_lwt_reads_do_not_break_determinism);
  ]
