lib/db/mvcc.ml: Array Op Txn
