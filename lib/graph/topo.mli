(** Topological sorting (Kahn's algorithm). *)

val sort : _ Digraph.t -> int list option
(** [sort g] is [Some order] (a topological order of all vertices) iff [g]
    is acyclic, [None] otherwise.  O(V + E). *)

val sort_csr : _ Csr.t -> int list option
(** {!sort} over a frozen CSR snapshot; flat int-array queue, no
    per-visit allocation. *)

val is_order : _ Digraph.t -> int array -> bool
(** [is_order g pos] checks that [pos.(u) < pos.(v)] for every edge
    [u -> v] — an oracle used to cross-check incremental maintenance. *)
