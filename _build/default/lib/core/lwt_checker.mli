(** VL-LWT: linear-time linearizability verification for
    lightweight-transaction histories (paper Algorithm 2, Section IV-E).

    Per object (linearizability is local), the checker:
    + requires exactly one insert-if-not-exists;
    + builds the unique version chain: each read&write must consume the
      value written by its predecessor (found in O(1) via a hash table on
      expected values);
    + checks the real-time requirement along the chain — no transaction may
      start after a later chain member finishes.

    As an extension beyond the paper's pseudocode, plain reads (failed
    CAS operations) are supported: a read of the chain's [i]-th value must
    be placeable between the [i]-th and [i+1]-th writers, which a greedy
    earliest-point / earliest-deadline-first sweep decides exactly.  On
    read-free histories this degenerates to the paper's reverse-order
    scan. *)

type reason =
  | No_insert of Op.key
  | Multiple_inserts of { key : Op.key; count : int }
  | No_successor of { key : Op.key; value : Op.value; remaining : int }
      (** chain construction stuck: [remaining] R&W events cannot extend
          the chain at [value] *)
  | Duplicate_successor of {
      key : Op.key;
      value : Op.value;
      event1 : int;
      event2 : int;
    }  (** two successful CAS consumed the same value *)
  | Stale_read of { key : Op.key; event : int; value : Op.value }
      (** a read observed a value never current on the chain *)
  | Real_time_violation of { key : Op.key; event : int }
      (** the event cannot be placed consistently with real time *)

val pp_reason : Format.formatter -> reason -> unit

val check_key : Lwt.t -> Op.key -> (unit, reason) result
val check : Lwt.t -> (unit, reason) result
(** All keys; first failing key in key order.  O(n) expected. *)

val chain : Lwt.t -> Op.key -> (Lwt.event list, reason) result
(** The version chain (insert first), for tests and reporting. *)
