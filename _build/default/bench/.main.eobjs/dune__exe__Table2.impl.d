bench/table2.ml: Bench_util Checker Db Endtoend Fault Format Isolation List Lwt_checker Lwt_gen Option Printf Spec Stats Targeted
