(* Bechamel micro-benchmarks of the verification kernels on a fixed
   2000-transaction history: the per-call cost of each checker, measured
   with OLS over monotonic-clock samples.  Also isolates the cycle kernel
   (list-based DFS vs frozen-CSR DFS) and the pool dispatch overhead. *)

open Bechamel
open Toolkit

(* The seed's list-based three-colour DFS, kept verbatim as the baseline
   for the cycle/{list,csr} comparison (Cycle.find now routes through a
   CSR snapshot). *)
let list_dfs_find (type lab) (g : lab Digraph.t) =
  let n = Digraph.n g in
  let colour = Array.make n 0 (* 0 white, 1 grey, 2 black *) in
  let parent = Array.make n (-1) in
  let parent_lab : lab option array = Array.make n None in
  let exception Found of (int * lab * int) list in
  let build_cycle u lab v =
    let rec walk acc w =
      if w = v then acc
      else
        match parent_lab.(w) with
        | Some l -> walk ((parent.(w), l, w) :: acc) parent.(w)
        | None -> acc
    in
    walk [ (u, lab, v) ] u
  in
  let visit root =
    let stack = ref [ (root, ref (Digraph.succ g root)) ] in
    colour.(root) <- 1;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (u, rest) :: tail -> (
          match !rest with
          | [] ->
              colour.(u) <- 2;
              stack := tail
          | (v, lab) :: more -> (
              rest := more;
              match colour.(v) with
              | 2 -> ()
              | 1 -> raise (Found (build_cycle u lab v))
              | _ ->
                  colour.(v) <- 1;
                  parent.(v) <- u;
                  parent_lab.(v) <- Some lab;
                  stack := (v, ref (Digraph.succ g v)) :: !stack))
    done
  in
  try
    for u = 0 to n - 1 do
      if colour.(u) = 0 then visit u
    done;
    None
  with Found cycle -> Some cycle

(* A small CPU-bound task for measuring pool dispatch cost relative to
   useful work. *)
let spin_task seed =
  let x = ref seed in
  for _ = 1 to 20_000 do
    x := (!x * 1103515245) + 12345
  done;
  !x

let make_tests () =
  let txns = Bench_util.scale 2000 in
  let keys = Stdlib.max 15 (Bench_util.scale 300) in
  let r =
    Bench_util.mt_history ~level:Isolation.Serializable ~keys ~txns ~seed:901 ()
  in
  let h = r.Scheduler.history in
  let lwt_h =
    Lwt_gen.generate
      { Lwt_gen.num_sessions = 16;
        txns_per_session = Bench_util.scale 2000 / 16;
        num_keys = 4; concurrent_pct = 0.5; read_pct = 0.2; seed = 902;
        inject = Lwt_gen.No_injection }
  in
  let deps =
    let idx = Index.build h in
    match Deps.build ~rt:Deps.No_rt idx with
    | Ok d -> d
    | Error _ -> failwith "kernels: unexpected unresolved read"
  in
  let frozen = Deps.freeze deps in
  (* Materialize the adjacency-list form outside the timed region so the
     cycle-list rows measure the DFS, not the CSR -> Digraph conversion. *)
  ignore (Deps.digraph deps);
  Test.make_grouped ~name:"kernels" ~fmt:"%s/%s"
    ([
       Test.make ~name:"mtc-ser" (Staged.stage (fun () -> Checker.check_ser h));
       Test.make ~name:"mtc-si" (Staged.stage (fun () -> Checker.check_si h));
       Test.make ~name:"mtc-sser"
         (Staged.stage (fun () -> Checker.check_sser h));
       Test.make ~name:"vl-lwt"
         (Staged.stage (fun () -> Lwt_checker.check lwt_h));
       Test.make ~name:"cobra" (Staged.stage (fun () -> Cobra.check h));
       Test.make ~name:"polysi" (Staged.stage (fun () -> Polysi.check h));
     ]
    @ (if !Bench_util.smoke then
         [] (* dbcop's search dominates even tiny histories; full runs only *)
       else [ Test.make ~name:"dbcop" (Staged.stage (fun () -> Dbcop.check h)) ])
    @ [
       (* Cycle kernel in isolation, on the dependency graph of [h]:
          the seed's list DFS, the flat CSR DFS on a pre-frozen graph,
          and freeze + DFS (what a cold Checker call pays). *)
       Test.make ~name:"cycle-list"
         (Staged.stage (fun () -> list_dfs_find (Deps.digraph deps)));
       Test.make ~name:"cycle-csr"
         (Staged.stage (fun () -> Cycle.find_csr frozen));
       Test.make ~name:"cycle-freeze-csr"
         (Staged.stage (fun () ->
              Cycle.find_csr (Csr.of_digraph (Deps.digraph deps))));
     ])

(* The dependency-inference pipeline in isolation — index + graph build +
   frozen CSR — direct-to-CSR vs the seed's list-based Digraph, plus the
   whole checker both ways.  The history is a fixed 2000-transaction one
   even under --smoke: these rows are the acceptance numbers recorded in
   BENCH_PR2.json, and generating the history costs milliseconds. *)
let infer_rows () =
  let r =
    Bench_util.mt_history ~level:Isolation.Serializable ~keys:300 ~txns:2000
      ~seed:903 ()
  in
  let h = r.Scheduler.history in
  let infer impl rt () =
    let idx = Index.build h in
    match Deps.build ~impl ~rt idx with
    | Ok d -> ignore (Sys.opaque_identity (Deps.freeze d))
    | Error _ -> failwith "kernels: unexpected unresolved read"
  in
  let check impl level () =
    ignore (Sys.opaque_identity (Checker.check ~impl level h))
  in
  let row name f =
    ignore (f ()) (* warm-up *);
    let t = Bench_util.time_median ~repeat:5 f in
    let (), a = Bench_util.alloc_during f in
    [ name; Printf.sprintf "%.3f" (1000.0 *. t); Printf.sprintf "%.0f" a ]
  in
  [
    row "infer-ser/direct" (infer Deps.Direct Deps.No_rt);
    row "infer-ser/digraph" (infer Deps.Via_digraph Deps.No_rt);
    row "infer-sser/direct" (infer Deps.Direct Deps.Rt_sweep);
    row "infer-sser/digraph" (infer Deps.Via_digraph Deps.Rt_sweep);
    row "check-ser/direct" (check Deps.Direct Checker.SER);
    row "check-ser/digraph" (check Deps.Via_digraph Checker.SER);
    row "check-si/direct" (check Deps.Direct Checker.SI);
    row "check-si/digraph" (check Deps.Via_digraph Checker.SI);
    row "check-sser/direct" (check Deps.Direct Checker.SSER);
    row "check-sser/digraph" (check Deps.Via_digraph Checker.SSER);
  ]

(* The PR6 acceptance table: whole-checker wall time on a large clean
   history with inference sharded over j domains.  The history comes
   from Stream_gen (clean by construction — the worst case, since the
   checker builds and traverses the full dependency graph) and stays at
   100k transactions even under --smoke: these rows are the numbers
   promoted to BENCH_PR6.json.  Speedup is relative to the j=1 run of
   the same kernel; on a single-core host it hovers around 1.0 and the
   row documents that sharding costs nothing, not that it helps. *)
let parallel_check_rows () =
  let p = { Stream_gen.default with num_txns = 100_000 } in
  let acc = ref [] in
  Stream_gen.generate p (fun t -> acc := t :: !acc);
  let h =
    History.of_array ~num_keys:p.Stream_gen.num_keys
      ~num_sessions:p.Stream_gen.num_sessions
      (Array.of_list
         (History.init_txn ~num_keys:p.Stream_gen.num_keys :: List.rev !acc))
  in
  acc := [];
  let time level pool =
    let run () =
      match Checker.check ?pool level h with
      | Checker.Pass -> ()
      | Checker.Fail _ -> failwith "kernels: clean history flagged"
    in
    run () (* warm-up *);
    Bench_util.time_median ~repeat:3 run
  in
  let level_rows name level =
    let t1 = time level None in
    let row j t =
      [ name; string_of_int j; Printf.sprintf "%.1f" (1000.0 *. t);
        Printf.sprintf "%.2f" (t1 /. t) ]
    in
    row 1 t1
    :: List.map
         (fun j ->
           Pool.with_pool ~size:j (fun p -> row j (time level (Some p))))
         [ 2; 4 ]
  in
  level_rows "check-ser" Checker.SER @ level_rows "check-si" Checker.SI

(* The PR7 acceptance table: whole-checker wall time at each timestamp
   mode on the same 100k-txn Stream_gen corpus as [parallel_check_rows]
   (timestamp-faithful by construction, so certification never falls
   back).  Speedup is relative to the `ignore` run of the same kernel;
   the acceptance bar is >= 2x on check-ser/verify.  Stays at 100k even
   under --smoke: these are the rows promoted to BENCH_PR7.json. *)
let ts_fastpath_rows () =
  let p = { Stream_gen.default with num_txns = 100_000 } in
  let acc = ref [] in
  Stream_gen.generate p (fun t -> acc := t :: !acc);
  let h =
    History.of_array ~num_keys:p.Stream_gen.num_keys
      ~num_sessions:p.Stream_gen.num_sessions
      (Array.of_list
         (History.init_txn ~num_keys:p.Stream_gen.num_keys :: List.rev !acc))
  in
  acc := [];
  let time level ts =
    let run () =
      match Checker.check ~ts level h with
      | Checker.Pass -> ()
      | Checker.Fail _ -> failwith "kernels: clean history flagged"
    in
    (* Normalize the heap first: garbage left by earlier experiments
       otherwise taxes these runs' minor collections and makes the
       promoted ratios depend on experiment order. *)
    Gc.full_major ();
    run () (* warm-up *);
    Bench_util.time_median ~repeat:3 run
  in
  let level_rows name level =
    let t_ignore = time level Ts.Ignore in
    let row mode t =
      [ name; Ts.mode_name mode; Printf.sprintf "%.1f" (1000.0 *. t);
        Printf.sprintf "%.2f" (t_ignore /. t) ]
    in
    [ row Ts.Ignore t_ignore;
      row Ts.Verify (time level Ts.Verify);
      row Ts.Trust (time level Ts.Trust) ]
  in
  level_rows "check-ser" Checker.SER @ level_rows "check-si" Checker.SI

(* Pool dispatch overhead, measured separately: each pool exists only
   around its own timing run, because idle domains make every minor GC a
   multi-domain stop-the-world and would skew the single-domain kernels
   above. *)
let pool_rows () =
  let inputs = Array.init 64 (fun i -> i) in
  List.map
    (fun size ->
      Pool.with_pool ~size (fun p ->
          ignore (Pool.map p spin_task inputs) (* warm-up *);
          let t =
            Bench_util.time_median ~repeat:9 (fun () ->
                ignore (Pool.map p spin_task inputs))
          in
          [ Printf.sprintf "pool-map-j%d" size;
            Printf.sprintf "%.3f" (1000.0 *. t) ]))
    (if !Bench_util.smoke then [ 1 ] else [ 1; 2; 4 ])

(* The streaming checker in isolation: feed a fixed 2000-transaction
   history (commit order, the natural stream order) through
   [Online.check_stream] at each level, reporting sustained feed
   throughput and allocated minor-heap words per transaction.  Like the
   inference rows, the history stays at 2000 transactions even under
   --smoke: these are the acceptance numbers recorded in the promoted
   JSON, and a run costs tens of milliseconds. *)
let online_feed_rows () =
  let h =
    (Bench_util.mt_history ~level:Isolation.Serializable ~keys:300 ~txns:2000
       ~seed:904 ())
      .Scheduler.history
  in
  let stream =
    Array.to_list h.History.txns
    |> List.filter (fun (t : Txn.t) -> t.Txn.id <> History.init_id)
    |> List.sort (fun (a : Txn.t) b ->
           compare (a.Txn.commit_ts, a.Txn.id) (b.Txn.commit_ts, b.Txn.id))
  in
  let n = List.length stream in
  let row level =
    let run () =
      match Online.check_stream ~level ~num_keys:h.History.num_keys stream with
      | Ok k -> assert (k = n)
      | Error _ -> failwith "kernels: clean stream flagged"
    in
    run () (* warm-up *);
    let t = Bench_util.time_median ~repeat:5 run in
    let w0 = Gc.minor_words () in
    run ();
    let dw = Gc.minor_words () -. w0 in
    [
      Printf.sprintf "online_feed/%s"
        (String.lowercase_ascii (Checker.level_name level));
      Printf.sprintf "%.0f" (float_of_int n /. t);
      Printf.sprintf "%.1f" (dw /. float_of_int n);
    ]
  in
  [ row Checker.SER; row Checker.SI; row Checker.SSER ]

(* The PR9 acceptance table: bounded-memory streaming.  One long clean
   Stream_gen corpus is fed transaction by transaction — never
   materialized — through [Online.add_txn] under each watermark-GC
   policy.  [live peak] is the largest live-word estimate sampled every
   4096 feeds: it grows with the stream under [off] and stays flat under
   [auto] / an absolute ceiling.  [retained] cross-checks the estimate
   against the real major heap: growth of [Gc.stat].heap_words across
   the run after a [Gc.compact] on both sides.  30k transactions under
   --smoke, 300k otherwise; these rows are the numbers promoted to
   BENCH_PR9.json. *)
let bounded_feed_rows () =
  let txns = if !Bench_util.smoke then 30_000 else 300_000 in
  let p = { Stream_gen.default with num_txns = txns } in
  let row gc =
    Gc.compact ();
    let base_heap = (Gc.stat ()).Gc.heap_words in
    let o =
      Online.create ~gc ~level:Checker.SER
        ~num_keys:p.Stream_gen.num_keys ()
    in
    let peak = ref 0 and fed = ref 0 in
    let t0 = Unix.gettimeofday () in
    Stream_gen.generate p (fun txn ->
        (match Online.add_txn o txn with
        | Online.Ok_so_far -> ()
        | Online.Violation _ -> failwith "kernels: clean stream flagged");
        incr fed;
        if !fed land 4095 = 0 then
          peak := Stdlib.max !peak (Online.live_words o));
    let dt = Unix.gettimeofday () -. t0 in
    let s = Online.stats o in
    Gc.compact ();
    let retained = (Gc.stat ()).Gc.heap_words - base_heap in
    ignore (Sys.opaque_identity (Online.txns_seen o));
    [
      Printf.sprintf "bounded_feed/%s" (Online.gc_to_string gc);
      Printf.sprintf "%.0f" (float_of_int txns /. dt);
      string_of_int (Stdlib.max !peak s.Online.s_live_words);
      string_of_int s.Online.s_live_words;
      string_of_int retained;
      string_of_int s.Online.s_gc_runs;
      string_of_int s.Online.s_gc_reclaimed_words;
    ]
  in
  [ row Online.Gc_off; row Online.Gc_auto; row (Online.Gc_words 2_000_000) ]

(* Tracing overhead on a full checker run: the same fixed history timed
   with spans disabled (the production default — one atomic load and a
   branch per site) and enabled (per-domain rings absorbing every span).
   Advisory evidence for leaving the instrumentation compiled in. *)
let obs_overhead_rows () =
  let h =
    (Bench_util.mt_history ~level:Isolation.Serializable ~keys:300 ~txns:2000
       ~seed:903 ())
      .Scheduler.history
  in
  let run () = ignore (Sys.opaque_identity (Checker.check_ser h)) in
  let row name enabled =
    if enabled then Obs.Trace.enable () else Obs.Trace.disable ();
    run () (* warm-up *);
    let t = Bench_util.time_median ~repeat:9 run in
    Obs.Trace.disable ();
    Obs.Trace.clear ();
    [ name; Printf.sprintf "%.3f" (1000.0 *. t) ]
  in
  [ row "check-ser/tracing-off" false; row "check-ser/tracing-on" true ]

(* The PR10 acceptance table: introspection overhead on the streaming
   checker.  The same fixed 2000-transaction commit-order stream is fed
   through [Online.add_txn] while emitting one journal event per feed —
   far denser than the service ever journals (events mark throttle
   flips, compactions and session lifecycle, not feeds) — once with the
   journal disabled (the production default: one atomic load and a
   branch per emit site) and once enabled (per-domain rings absorbing
   every event).  [emit (ns)] and [emit alloc (words)] time the bare
   emit in isolation; the disabled row's alloc column is the
   zero-allocation acceptance number. *)
let introspection_rows () =
  let h =
    (Bench_util.mt_history ~level:Isolation.Serializable ~keys:300 ~txns:2000
       ~seed:906 ())
      .Scheduler.history
  in
  let stream =
    Array.to_list h.History.txns
    |> List.filter (fun (t : Txn.t) -> t.Txn.id <> History.init_id)
    |> List.sort (fun (a : Txn.t) b ->
           compare (a.Txn.commit_ts, a.Txn.id) (b.Txn.commit_ts, b.Txn.id))
  in
  let n = List.length stream in
  let feed () =
    let o = Online.create ~level:Checker.SER ~num_keys:h.History.num_keys () in
    List.iter
      (fun txn ->
        (match Online.add_txn o txn with
        | Online.Ok_so_far -> ()
        | Online.Violation _ -> failwith "kernels: clean stream flagged");
        Obs.Journal.emit Obs.Journal.Session_open ~a:1 ~b:0 ~c:0)
      stream
  in
  let emit_reps = 100_000 in
  let bare () =
    for _ = 1 to emit_reps do
      Obs.Journal.emit Obs.Journal.Gc_compact ~a:0 ~b:0 ~c:0
    done
  in
  let row name enabled =
    if enabled then Obs.Journal.enable () else Obs.Journal.disable ();
    Obs.Journal.clear ();
    feed () (* warm-up *);
    let t = Bench_util.time_median ~repeat:5 feed in
    let w0 = Gc.minor_words () in
    feed ();
    let dw = Gc.minor_words () -. w0 in
    bare () (* warm-up *);
    let te = Bench_util.time_median ~repeat:5 bare in
    let ew0 = Gc.minor_words () in
    bare ();
    let edw = Gc.minor_words () -. ew0 in
    Obs.Journal.disable ();
    Obs.Journal.clear ();
    [
      name;
      Printf.sprintf "%.0f" (float_of_int n /. t);
      Printf.sprintf "%.1f" (dw /. float_of_int n);
      Printf.sprintf "%.1f" (te /. float_of_int emit_reps *. 1e9);
      Printf.sprintf "%.2f" (edw /. float_of_int emit_reps);
    ]
  in
  [ row "introspection/journal-off" false; row "introspection/journal-on" true ]

let rm_rf dir =
  if Sys.file_exists dir then (
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir)

(* Checking-as-a-service transport overhead: stream a fixed clean SER
   history through an in-process server over each transport and report
   end-to-end throughput plus the server-side per-feed latency
   percentiles (which exclude the wire, so the gap between the two
   columns is the protocol cost).  The [-wal-*] rows rerun the unix
   transport with durability on, so the delta against the plain unix
   row is the write-ahead-log cost under each fsync policy. *)
let service_rows () =
  (* long enough to amortize per-stream fixed costs (session setup, the
     Batch-mode barrier fsync at the verdict) the way a real monitoring
     stream would *)
  let txns = if !Bench_util.smoke then Bench_util.scale 2000 else 6000 in
  let keys = Stdlib.max 15 (Bench_util.scale 300) in
  let h =
    (Bench_util.mt_history ~level:Isolation.Serializable ~keys ~txns ~seed:903 ())
      .Scheduler.history
  in
  let one ?durable label addr =
    let metrics = Metrics.create () in
    let wal_dir =
      Option.map
        (fun sync ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "mtc-bench-wal-%d-%s" (Unix.getpid ())
               (Wal.sync_name sync)))
        durable
    in
    let config =
      {
        Server.default_config with
        Server.listen = [ addr ];
        metrics;
        wal_dir;
        wal_sync =
          Option.value durable ~default:Server.default_config.Server.wal_sync;
      }
    in
    let t = Server.start config in
    Fun.protect
      ~finally:(fun () ->
        Server.stop t;
        Option.iter rm_rf wal_dir)
      (fun () ->
        let addr = List.hd (Server.bound_addrs t) in
        match Client.connect addr with
        | Error e -> failwith ("service bench connect: " ^ e)
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                (* median over several whole-history streams — a single
                   ~20ms stream is too noisy to compare rows *)
                let reps = if !Bench_util.smoke then 3 else 7 in
                let stream () =
                  let sid =
                    match
                      Client.open_session c ~level:Checker.SER
                        ~num_keys:h.History.num_keys ()
                    with
                    | Ok sid -> sid
                    | Error e -> failwith ("service bench open: " ^ e)
                  in
                  let fed0 = Metrics.txns_fed metrics in
                  let t0 = Unix.gettimeofday () in
                  (match Client.feed_history c ~sid h with
                  | Ok (Wire.V_ok _) -> ()
                  | Ok (Wire.V_violation _) ->
                      failwith "service bench: clean history flagged"
                  | Error e -> failwith ("service bench feed: " ^ e));
                  let dt = Unix.gettimeofday () -. t0 in
                  ignore (Client.close_session c ~sid);
                  float_of_int (Metrics.txns_fed metrics - fed0) /. dt
                in
                let rates = List.sort compare (List.init reps (fun _ -> stream ())) in
                [
                  label;
                  Printf.sprintf "%.0f" (List.nth rates (reps / 2));
                  Printf.sprintf "%d" (Metrics.feed_p50_ns metrics);
                  Printf.sprintf "%d" (Metrics.feed_p99_ns metrics);
                  Printf.sprintf "%.0f" (Metrics.feed_words_mean metrics);
                ]))
  in
  (* Aggregate throughput with [k] concurrent sessions, each its own
     connection, on a server with [k] checking shards.  Client threads
     are systhreads of this process, so on a single-core host the row
     mostly shows the shard batching win; on a multi-core host the
     sessions check in parallel. *)
  let multi label k addr =
    let metrics = Metrics.create () in
    let config =
      {
        Server.default_config with
        Server.listen = [ addr ];
        metrics;
        shards = k;
      }
    in
    let t = Server.start config in
    Fun.protect
      ~finally:(fun () -> Server.stop t)
      (fun () ->
        let addr = List.hd (Server.bound_addrs t) in
        let feed_one () =
          match Client.connect addr with
          | Error e -> failwith ("service bench connect: " ^ e)
          | Ok c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  let sid =
                    match
                      Client.open_session c ~level:Checker.SER
                        ~num_keys:h.History.num_keys ()
                    with
                    | Ok sid -> sid
                    | Error e -> failwith ("service bench open: " ^ e)
                  in
                  match Client.feed_history c ~sid h with
                  | Ok (Wire.V_ok _) -> ()
                  | Ok (Wire.V_violation _) ->
                      failwith "service bench: clean history flagged"
                  | Error e -> failwith ("service bench feed: " ^ e))
        in
        let t0 = Unix.gettimeofday () in
        let threads = List.init k (fun _ -> Thread.create feed_one ()) in
        List.iter Thread.join threads;
        let dt = Unix.gettimeofday () -. t0 in
        [
          label;
          Printf.sprintf "%.0f" (float_of_int (Metrics.txns_fed metrics) /. dt);
          Printf.sprintf "%d" (Metrics.feed_p50_ns metrics);
          Printf.sprintf "%d" (Metrics.feed_p99_ns metrics);
          Printf.sprintf "%.0f" (Metrics.feed_words_mean metrics);
        ])
  in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mtc-bench-%d.sock" (Unix.getpid ()))
  in
  let k = Stdlib.max 2 (Bench_util.jobs ()) in
  [
    one "service_feed/unix" (Server.A_unix sock);
    one ~durable:Wal.Batch "service_feed/unix-wal-batch"
      (Server.A_unix (sock ^ ".walb"));
    one ~durable:Wal.Always "service_feed/unix-wal-always"
      (Server.A_unix (sock ^ ".wala"));
    one "service_feed/tcp" (Server.A_tcp ("127.0.0.1", 0));
    multi
      (Printf.sprintf "service_feed/unix-x%d" k)
      k
      (Server.A_unix (sock ^ ".multi"));
  ]

(* The event-loop claim in numbers: a herd of open-but-quiet
   connections costs the server file descriptors and buffers, not a
   systhread each.  The herd lives in this same process (2 fds per
   connection), so it is capped below the default ulimit; `mtc swarm`
   drives the full 10k-connection version from a separate process. *)
let idle_conn_rows () =
  let n = if !Bench_util.smoke then 500 else 8_000 in
  let process_threads () =
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> -1
    | ic ->
        let rec go acc =
          match input_line ic with
          | line ->
              go
                (try Scanf.sscanf line "Threads: %d" (fun t -> t)
                 with Scanf.Scan_failure _ | End_of_file -> acc)
          | exception End_of_file -> acc
        in
        let r = go (-1) in
        close_in ic;
        r
  in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mtc-bench-%d.idle.sock" (Unix.getpid ()))
  in
  let config =
    { Server.default_config with Server.listen = [ Server.A_unix sock ] }
  in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let addr = List.hd (Server.bound_addrs t) in
      let t0 = Unix.gettimeofday () in
      let conns =
        List.init n (fun _ ->
            match Client.connect addr with
            | Ok c -> c
            | Error e -> failwith ("idle bench connect: " ^ e))
      in
      let dt = Unix.gettimeofday () -. t0 in
      let threads = process_threads () in
      List.iter Client.close conns;
      [
        [
          Printf.sprintf "idle_conns/%d" n;
          string_of_int n;
          Printf.sprintf "%.0f" (float_of_int n /. dt);
          (if threads < 0 then "-" else string_of_int threads);
        ];
      ])

let run () =
  Bench_util.section
    "Verification kernels (Bechamel OLS, 2000-txn MT history / 2000-event LWT history)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    let limit = if !Bench_util.smoke then 20 else 200 in
    let quota = Time.second (if !Bench_util.smoke then 0.1 else 1.0) in
    Benchmark.cfg ~limit ~quota ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (make_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  Bench_util.print_table ~header:[ "kernel"; "time per run (ms)" ]
    (List.map
       (fun (name, ns) -> [ name; Printf.sprintf "%.3f" (ns /. 1e6) ])
       rows);
  Bench_util.subsection
    "dependency inference: direct-to-CSR vs list-based digraph (fixed 2000-txn history, median of 5)";
  Bench_util.print_table
    ~header:[ "pipeline"; "time (ms)"; "verify_alloc_bytes" ]
    (infer_rows ());
  Bench_util.subsection
    "parallel check: sharded inference, 100k-txn clean history (median of 3)";
  Bench_util.print_table
    ~header:[ "kernel"; "jobs"; "time (ms)"; "speedup" ]
    (parallel_check_rows ());
  Bench_util.subsection
    "ts_fastpath: timestamp modes, 100k-txn clean history (median of 3)";
  Bench_util.print_table
    ~header:[ "kernel"; "timestamps"; "time (ms)"; "speedup vs ignore" ]
    (ts_fastpath_rows ());
  Bench_util.subsection
    "pool dispatch (Pool.map of 64 spin tasks, median of 9)";
  Bench_util.print_table ~header:[ "pool"; "time per map (ms)" ] (pool_rows ());
  Bench_util.subsection
    "streaming checker: Online feed throughput (fixed 2000-txn history, commit order)";
  Bench_util.print_table
    ~header:[ "stream"; "txns/s"; "words/feed" ]
    (online_feed_rows ());
  Bench_util.subsection
    "bounded_feed: watermark GC of the committed prefix (Stream_gen, never materialized)";
  Bench_util.print_table
    ~header:
      [ "config"; "txns/s"; "live peak (words)"; "live final (words)";
        "retained heap (words)"; "gc runs"; "reclaimed (words)" ]
    (bounded_feed_rows ());
  Bench_util.subsection
    "observability: full SER check, tracing disabled vs enabled (median of 9)";
  Bench_util.print_table ~header:[ "config"; "time (ms)" ]
    (obs_overhead_rows ());
  Bench_util.subsection
    "introspection: Online feed emitting one journal event per feed, journal disabled vs enabled";
  Bench_util.print_table
    ~header:
      [ "config"; "txns/s"; "words/feed"; "emit (ns)"; "emit alloc (words)" ]
    (introspection_rows ());
  Bench_util.subsection
    "checking service: whole-history stream through a live server";
  Bench_util.print_table
    ~header:
      [ "transport"; "txns/s"; "server p50 (ns)"; "server p99 (ns)";
        "words/feed" ]
    (service_rows ());
  Bench_util.subsection
    "idle connection herd: event-loop cost of open-but-quiet clients";
  Bench_util.print_table
    ~header:[ "herd"; "conns"; "open conns/s"; "process threads" ]
    (idle_conn_rows ())
