(* Timestamp-assisted version orders (Vbox mode).  The chains are three
   flat parallel arrays sliced per key by [key_off] — one slot per
   committed final write — sorted by (commit_ts, vertex).  Prediction is
   a binary search per read; certification (in Int_check.check_ts)
   compares the predicted slot's value with the value actually read and
   defers only the mismatches to the value tables. *)

type mode = Ignore | Trust | Verify

let mode_name = function
  | Ignore -> "ignore"
  | Trust -> "trust"
  | Verify -> "verify"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "ignore" -> Some Ignore
  | "trust" -> Some Trust
  | "verify" -> Some Verify
  | _ -> None

let all_modes = [ Ignore; Trust; Verify ]

type diag = {
  d_key : Op.key;
  d_value : Op.value;
  d_reader : Txn.id;
  d_reader_start : int;
  d_predicted : Txn.id;
  d_predicted_commit : int;
  d_actual : Index.writer;
  d_actual_commit : int;
}

type t = {
  idx : Index.t;
  mode : mode;
  key_off : int array;
  c_vertex : int array;
  c_commit : int array;
  c_value : int array;
  op_base : int array;
  pred_slot : int array;
  slow : Bytes.t;
  mutable slow_keys : int;
  mutable fast_reads : int;
  mutable mismatched_reads : int;
  mutable diags : diag list;
  mutable bad_windows : (Txn.id * int * int) list;
}

let total_slots t = Array.length t.c_vertex

let slot_vertex t s = t.c_vertex.(s)
let slot_value t s = t.c_value.(s)
let slot_commit t s = t.c_commit.(s)
let slot_writer t s = (Index.txn_of_vertex t.idx t.c_vertex.(s)).Txn.id

let predict t k ~start_ts =
  (* Latest slot of [k] with commit_ts <= start_ts.  The bottom slot is
     the initial transaction (commit_ts = min_int), so [lo] itself is
     always a valid answer. *)
  let lo = t.key_off.(k) in
  let best = ref lo and l = ref (lo + 1) and h = ref (t.key_off.(k + 1) - 1) in
  while !l <= !h do
    let mid = (!l + !h) / 2 in
    if t.c_commit.(mid) <= start_ts then begin
      best := mid;
      l := mid + 1
    end
    else h := mid - 1
  done;
  !best

let predict_memo t memo k ~start_ts =
  (* [predict] seeded by the caller's per-key hint (its last answer for
     this key).  Scans in committed order see mostly increasing start
     timestamps, so the answer is usually the hint itself or a slot or
     two above — a short forward walk instead of a binary search.  The
     hint only picks the starting point; the returned slot is exactly
     [predict]'s. *)
  let m = memo.(k) in
  let p =
    if m >= 0 && t.c_commit.(m) <= start_ts then begin
      let hi = t.key_off.(k + 1) in
      let p = ref m in
      while !p + 1 < hi && t.c_commit.(!p + 1) <= start_ts do
        incr p
      done;
      !p
    end
    else predict t k ~start_ts
  in
  memo.(k) <- p;
  p

(* Prediction cache: the certification pass ({!Int_check.check_ts})
   predicts every external read once; recording the slot per (committed
   position, op index) lets the dependency builder skip re-running the
   binary searches.  Slices own disjoint committed ranges, so the flat
   array is written race-free. *)
let cache_slot t ~sv ~op p = t.pred_slot.(t.op_base.(sv) + op) <- p

let cached_slot t ~sv ~op = t.pred_slot.(t.op_base.(sv) + op)

let is_fast_key t k =
  match t.mode with
  | Trust -> true
  | Verify | Ignore -> Bytes.unsafe_get t.slow k = '\000'

let mark_slow t k =
  if Bytes.get t.slow k = '\000' then begin
    Bytes.set t.slow k '\001';
    t.slow_keys <- t.slow_keys + 1
  end

let max_diags = 8

let add_diag t d =
  if List.length t.diags < max_diags then t.diags <- d :: t.diags

(* Same stripe routing as Index/Deps: fixed, not the pool size, so the
   chain layout and the duplicate-screen winner are identical for every
   [-j]. *)
let num_stripes = 8

(* Sort the chain slice [lo, hi) of three parallel arrays by
   (commit_ts, vertex).  Engines and generators commit mostly in
   timestamp order, so check sortedness first and sort through a
   permutation only when needed. *)
let sort_segment c_vertex c_commit c_value lo hi =
  let sorted = ref true in
  let s = ref (lo + 1) in
  while !sorted && !s < hi do
    let p = !s - 1 and q = !s in
    if
      c_commit.(p) > c_commit.(q)
      || (c_commit.(p) = c_commit.(q) && c_vertex.(p) > c_vertex.(q))
    then sorted := false;
    incr s
  done;
  if not !sorted then begin
    let len = hi - lo in
    let perm = Array.init len (fun i -> lo + i) in
    Array.sort
      (fun a b ->
        let c = compare c_commit.(a) c_commit.(b) in
        if c <> 0 then c else compare c_vertex.(a) c_vertex.(b))
      perm;
    let tv = Array.init len (fun i -> c_vertex.(perm.(i))) in
    let tc = Array.init len (fun i -> c_commit.(perm.(i))) in
    let tl = Array.init len (fun i -> c_value.(perm.(i))) in
    Array.blit tv 0 c_vertex lo len;
    Array.blit tc 0 c_commit lo len;
    Array.blit tl 0 c_value lo len
  end

(* Duplicate-value screen over one key's writes (all statuses, scan
   order): sort by (value, scan position) and flag adjacent occurrences
   of one value by different writers.  The minimal (txn position, op
   index) event over all keys is exactly the one
   [History.unique_values]'s hashtable scan fires first, with the same
   [other] (the occurrence immediately before it) — so the rendered
   [Malformed] message is byte-identical with the Ignore pipeline. *)
let dup_candidate ~aw_val ~aw_id ~aw_ti ~aw_oi lo hi best =
  let len = hi - lo in
  (* Strictly increasing values in scan order (the common shape from
     monotone value generators) cannot contain a duplicate — skip the
     permutation sort entirely. *)
  let increasing = ref true in
  let s = ref (lo + 1) in
  while !increasing && !s < hi do
    if aw_val.(!s - 1) >= aw_val.(!s) then increasing := false;
    incr s
  done;
  if len > 1 && not !increasing then begin
    let perm = Array.init len (fun i -> lo + i) in
    Array.sort
      (fun a b ->
        let c = compare aw_val.(a) aw_val.(b) in
        if c <> 0 then c else compare a b)
      perm;
    for j = 1 to len - 1 do
      let a = perm.(j - 1) and b = perm.(j) in
      if aw_val.(a) = aw_val.(b) && aw_id.(a) <> aw_id.(b) then begin
        let ti = aw_ti.(b) and oi = aw_oi.(b) in
        match !best with
        | Some (bt, bo, _, _, _, _) when bt < ti || (bt = ti && bo < oi) -> ()
        | Some _ | None ->
            best := Some (ti, oi, aw_val.(a), aw_id.(a), aw_id.(b), b)
      end
    done
  end

let sp_chains = Obs.Trace.intern "check/ts/chains"

let build ?pool ~mode (idx : Index.t) =
  if mode = Ignore then invalid_arg "Ts.build: mode must be trust or verify";
  Obs.Trace.with_span sp_chains @@ fun () ->
  let h = idx.Index.history in
  let num_keys = h.History.num_keys in
  let txns = h.History.txns in
  let screen = mode = Verify in
  (* Pass A (serial): per-key counts — committed final writes (the
     chains) and, under the screen, all writes of any status. *)
  let key_off = Array.make (num_keys + 1) 0 in
  let aw_off = if screen then Array.make (num_keys + 1) 0 else [||] in
  (* Committed-op finality, flat in scan order, computed once on the
     index and shared with any later writer-table registration; both
     passes below walk [txns] in the same order, so per-txn offsets are
     just a running op count. *)
  let finals = Index.finals idx in
  (* Per-key last written value (any status, scan order): while every
     key's values stay strictly increasing — the common shape from
     monotone value generators — a duplicate value is impossible and
     the whole screen apparatus below is skipped. *)
  let last_val = if screen then Array.make num_keys min_int else [||] in
  let monotone = ref true in
  let off = ref 0 in
  Array.iter
    (fun (t : Txn.t) ->
      let ops = t.Txn.ops in
      let n = Array.length ops in
      let committed = Txn.is_committed t in
      let base = !off in
      off := base + n;
      Array.iteri
        (fun i op ->
          match op with
          | Op.Write (k, v) ->
              if screen then begin
                aw_off.(k + 1) <- aw_off.(k + 1) + 1;
                if v <= last_val.(k) then monotone := false
                else last_val.(k) <- v
              end;
              if committed && Bytes.unsafe_get finals (base + i) = '\001' then
                key_off.(k + 1) <- key_off.(k + 1) + 1
          | Op.Read _ -> ())
        ops)
    txns;
  let screen_live = screen && not !monotone in
  for k = 1 to num_keys do
    key_off.(k) <- key_off.(k) + key_off.(k - 1);
    if screen_live then aw_off.(k) <- aw_off.(k) + aw_off.(k - 1)
  done;
  let total = key_off.(num_keys) in
  let c_vertex = Array.make total 0 in
  let c_commit = Array.make total 0 in
  let c_value = Array.make total 0 in
  let aw_total = if screen_live then aw_off.(num_keys) else 0 in
  let aw_val = Array.make (Stdlib.max 1 aw_total) 0 in
  let aw_id = Array.make (Stdlib.max 1 aw_total) 0 in
  let aw_ti = Array.make (Stdlib.max 1 aw_total) 0 in
  let aw_oi = Array.make (Stdlib.max 1 aw_total) 0 in
  (* Pass B (serial): fill slots in scan order within each key. *)
  let cur = Array.sub key_off 0 num_keys in
  let aw_cur = if screen_live then Array.sub aw_off 0 num_keys else [||] in
  let bad_windows = ref [] and bad_count = ref 0 in
  off := 0;
  Array.iteri
    (fun ti (t : Txn.t) ->
      let ops = t.Txn.ops in
      let committed = Txn.is_committed t in
      let base = !off in
      off := base + Array.length ops;
      if
        screen && committed && ti > 0
        && t.Txn.start_ts > t.Txn.commit_ts
        && !bad_count < max_diags
      then begin
        bad_windows := (t.Txn.id, t.Txn.start_ts, t.Txn.commit_ts) :: !bad_windows;
        incr bad_count
      end;
      Array.iteri
        (fun oi op ->
          match op with
          | Op.Write (k, v) ->
              if screen_live then begin
                let s = aw_cur.(k) in
                aw_cur.(k) <- s + 1;
                aw_val.(s) <- v;
                aw_id.(s) <- t.Txn.id;
                aw_ti.(s) <- ti;
                aw_oi.(s) <- oi
              end;
              if committed && Bytes.unsafe_get finals (base + oi) = '\001'
              then begin
                let s = cur.(k) in
                cur.(k) <- s + 1;
                c_vertex.(s) <- Index.vertex idx t.Txn.id;
                c_commit.(s) <- t.Txn.commit_ts;
                c_value.(s) <- v
              end
          | Op.Read _ -> ())
        ops)
    txns;
  (* Pass C (striped): sort each key's chain by (commit_ts, vertex) and
     run the duplicate screen.  Stripes own disjoint key ranges of the
     shared arrays, so the tasks share nothing mutable. *)
  let candidates = Array.make num_stripes None in
  Pool.tasks pool
    (List.init num_stripes (fun stripe () ->
         let best = ref None in
         let k = ref stripe in
         while !k < num_keys do
           let lo = key_off.(!k) and hi = key_off.(!k + 1) in
           sort_segment c_vertex c_commit c_value lo hi;
           if screen_live then
             dup_candidate ~aw_val ~aw_id ~aw_ti ~aw_oi aw_off.(!k)
               aw_off.(!k + 1) best;
           k := !k + num_stripes
         done;
         candidates.(stripe) <- !best));
  let best =
    Array.fold_left
      (fun acc c ->
        match (acc, c) with
        | None, c -> c
        | Some _, None -> acc
        | Some (at, ao, _, _, _, _), Some (bt, bo, _, _, _, _) ->
            if bt < at || (bt = at && bo < ao) then c else acc)
      None candidates
  in
  match best with
  | Some (_, _, v, other, id, slot) ->
      (* Recover the key from the slot's position in the aw layout. *)
      let k =
        let rec find k = if aw_off.(k + 1) > slot then k else find (k + 1) in
        find 0
      in
      Error
        (Printf.sprintf "writes of value %d to key %d by both T%d and T%d" v k
           other id)
  | None ->
      let m = Array.length idx.Index.committed in
      let op_base = Array.make (m + 1) 0 in
      for i = 0 to m - 1 do
        op_base.(i + 1) <-
          op_base.(i) + Array.length idx.Index.committed.(i).Txn.ops
      done;
      Ok
        {
          idx;
          mode;
          key_off;
          c_vertex;
          c_commit;
          c_value;
          op_base;
          pred_slot = Array.make (Stdlib.max 1 op_base.(m)) (-1);
          slow = Bytes.make num_keys '\000';
          slow_keys = 0;
          fast_reads = 0;
          mismatched_reads = 0;
          diags = [];
          bad_windows = List.rev !bad_windows;
        }

let pp_actual buf idx = function
  | Index.Final w ->
      let c = (Index.txn_of_vertex idx (Index.vertex idx w)).Txn.commit_ts in
      Printf.bprintf buf "T%d (commit_ts %d)" w c
  | Index.Intermediate w -> Printf.bprintf buf "an intermediate write of T%d" w
  | Index.Aborted w -> Printf.bprintf buf "aborted T%d" w
  | Index.Nobody -> Buffer.add_string buf "no recorded write"

let render_report t =
  if t.mismatched_reads = 0 && t.bad_windows = [] then None
  else begin
    let buf = Buffer.create 256 in
    Printf.bprintf buf
      "timestamp certification: %d of %d external reads disagree with the \
       timestamp-predicted writer; %d key(s) fell back to value inference\n"
      t.mismatched_reads
      (t.fast_reads + t.mismatched_reads)
      t.slow_keys;
    List.iter
      (fun d ->
        Printf.bprintf buf
          "  T%d read x%d=%d (start_ts %d): timestamps predict writer T%d \
           (commit_ts %d) but the value came from "
          d.d_reader d.d_key d.d_value d.d_reader_start d.d_predicted
          d.d_predicted_commit;
        pp_actual buf t.idx d.d_actual;
        Buffer.add_char buf '\n')
      (List.rev t.diags);
    if t.mismatched_reads > List.length t.diags then
      Printf.bprintf buf "  ... (%d more mismatched reads)\n"
        (t.mismatched_reads - List.length t.diags);
    List.iter
      (fun (id, s, c) ->
        Printf.bprintf buf "  T%d has start_ts %d > commit_ts %d\n" id s c)
      t.bad_windows;
    Some (Buffer.contents buf)
  end
