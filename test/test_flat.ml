(* Tests for the allocation-light inference pipeline: the int-packed
   Flat_index (raw map + writer tiers, including the spill path for
   unpackable pairs), Int_vec, and the equivalence of the direct-to-CSR
   dependency builder with the seed's list-based Digraph path. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let qtest = QCheck_alcotest.to_alcotest

(* --- Flat_index: raw open-addressing map --- *)

let test_map_basic () =
  let m = Flat_index.create () in
  checki "absent is -1" (-1) (Flat_index.get m 42);
  checkb "absent not mem" false (Flat_index.mem m 42);
  Flat_index.set m 42 7;
  checki "present" 7 (Flat_index.get m 42);
  checkb "present mem" true (Flat_index.mem m 42);
  Flat_index.set m 42 9;
  checki "replaced" 9 (Flat_index.get m 42);
  checki "size counts keys once" 1 (Flat_index.length m)

let test_map_growth () =
  let m = Flat_index.create ~capacity:2 () in
  for k = 0 to 9_999 do
    Flat_index.set m (k * 7) (k + 1)
  done;
  checki "all inserted" 10_000 (Flat_index.length m);
  let ok = ref true in
  for k = 0 to 9_999 do
    if Flat_index.get m (k * 7) <> k + 1 then ok := false
  done;
  checkb "all retrievable after growth" true !ok;
  checki "probe miss after growth" (-1) (Flat_index.get m 3)

let test_map_negative_value_rejected () =
  let m = Flat_index.create () in
  checkb "set -1 rejected" true
    (try
       Flat_index.set m 0 (-1);
       false
     with Invalid_argument _ -> true)

let test_map_adversarial_keys () =
  (* Keys colliding in the low bits stress linear probing. *)
  let m = Flat_index.create ~capacity:4 () in
  for i = 0 to 199 do
    Flat_index.set m (i * 1024) i
  done;
  let ok = ref true in
  for i = 0 to 199 do
    if Flat_index.get m (i * 1024) <> i then ok := false
  done;
  checkb "colliding keys survive" true !ok

(* --- Flat_index.Writers: tiers and the unpackable spill --- *)

let test_writers_tiers () =
  let w = Flat_index.Writers.create ~num_keys:4 ~expected:8 in
  Flat_index.Writers.set_aborted w 1 10 3;
  checkb "aborted tier" true
    (Flat_index.Writers.resolve w 1 10 = Flat_index.Writers.Aborted 3);
  Flat_index.Writers.set_intermediate w 1 10 2;
  checkb "intermediate shadows aborted" true
    (Flat_index.Writers.resolve w 1 10 = Flat_index.Writers.Intermediate 2);
  Flat_index.Writers.set_final w 1 10 1;
  checkb "final shadows intermediate" true
    (Flat_index.Writers.resolve w 1 10 = Flat_index.Writers.Final 1);
  checkb "other value nobody" true
    (Flat_index.Writers.resolve w 1 11 = Flat_index.Writers.Nobody);
  checkb "other key nobody" true
    (Flat_index.Writers.resolve w 2 10 = Flat_index.Writers.Nobody)

let test_writers_spill () =
  (* Values beyond the pack guard (v * num_keys would overflow) and
     negative values take the tuple-keyed spill table; resolution must be
     identical. *)
  let w = Flat_index.Writers.create ~num_keys:1000 ~expected:8 in
  let huge = max_int - 5 in
  Flat_index.Writers.set_final w 3 huge 7;
  Flat_index.Writers.set_intermediate w 4 (-2) 8;
  Flat_index.Writers.set_aborted w 5 huge 9;
  checkb "huge value resolves final" true
    (Flat_index.Writers.resolve w 3 huge = Flat_index.Writers.Final 7);
  checkb "negative value resolves intermediate" true
    (Flat_index.Writers.resolve w 4 (-2) = Flat_index.Writers.Intermediate 8);
  checkb "huge aborted resolves" true
    (Flat_index.Writers.resolve w 5 huge = Flat_index.Writers.Aborted 9);
  checkb "near-miss key nobody" true
    (Flat_index.Writers.resolve w 6 huge = Flat_index.Writers.Nobody);
  (* Packed and spilled entries coexist. *)
  Flat_index.Writers.set_final w 3 42 11;
  checkb "packed entry next to spill" true
    (Flat_index.Writers.resolve w 3 42 = Flat_index.Writers.Final 11)

(* --- Int_vec --- *)

let test_int_vec () =
  let v = Int_vec.create 2 in
  for i = 0 to 999 do
    Int_vec.push v (i * 3)
  done;
  checki "length" 1000 (Int_vec.length v);
  checki "get" 297 (Int_vec.get v 99);
  let data = Int_vec.data v in
  checkb "data is the live prefix" true
    (Array.length data >= 1000 && data.(999) = 2997)

(* --- direct vs digraph equivalence --- *)

let config_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* num_keys = int_range 2 30 in
    let* num_txns = int_range 20 250 in
    let* num_sessions = int_range 1 10 in
    let* level =
      oneofl
        [ Isolation.Snapshot; Isolation.Serializable;
          Isolation.Strict_serializable ]
    in
    return (seed, num_keys, num_txns, num_sessions, level))

let print_config (seed, num_keys, num_txns, num_sessions, level) =
  Printf.sprintf "seed=%d keys=%d txns=%d sessions=%d level=%s" seed num_keys
    num_txns num_sessions (Isolation.name level)

let history_of (seed, num_keys, num_txns, num_sessions, level) =
  (* Odd seeds run a faulty engine so the equivalence also covers
     histories with real anomalies (cyclic graphs, unresolved reads). *)
  let fault = if seed mod 2 = 1 then Fault.Lost_update 0.15 else Fault.No_fault in
  let spec =
    Mt_gen.generate
      { Mt_gen.num_sessions; num_txns; num_keys; dist = Distribution.Uniform;
        seed }
  in
  let db = { Db.level; fault; num_keys; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

(* Sorted edge list of the dependency graph under a given builder; the
   error case is part of the compared value. *)
let edges_of impl rt h =
  let idx = Index.build h in
  match Deps.build ~impl ~rt idx with
  | Error e -> Error e
  | Ok d ->
      let c = Deps.freeze d in
      let acc = ref [] in
      for u = 0 to Csr.n c - 1 do
        Csr.iter_succ c u (fun v lab -> acc := (u, lab, v) :: !acc)
      done;
      Ok (List.sort compare !acc)

let outcome_kind = function
  | Checker.Pass -> 0
  | Checker.Fail (Checker.Intra _) -> 1
  | Checker.Fail (Checker.Diverged _) -> 2
  | Checker.Fail (Checker.Cyclic _) -> 3
  | Checker.Fail (Checker.Malformed _) -> 4

let prop_edge_multisets_equal =
  QCheck2.Test.make ~name:"direct CSR == digraph edge multiset" ~count:60
    ~print:print_config config_gen (fun cfg ->
      let h = history_of cfg in
      List.for_all
        (fun rt ->
          edges_of Deps.Direct rt h = edges_of Deps.Via_digraph rt h)
        [ Deps.No_rt; Deps.Rt_naive; Deps.Rt_sweep ])

let prop_check_outcomes_equal =
  QCheck2.Test.make ~name:"check impl-independent (all levels, all rt)"
    ~count:60 ~print:print_config config_gen (fun cfg ->
      let h = history_of cfg in
      List.for_all
        (fun (level, rt_mode) ->
          outcome_kind (Checker.check ?rt_mode ~impl:Deps.Direct level h)
          = outcome_kind (Checker.check ?rt_mode ~impl:Deps.Via_digraph level h))
        [
          (Checker.SER, None);
          (Checker.SI, None);
          (Checker.SSER, Some Deps.Rt_naive);
          (Checker.SSER, Some Deps.Rt_sweep);
        ])

(* --- allocation bound: the point of the direct path --- *)

let test_direct_build_alloc_halved () =
  let spec =
    Mt_gen.generate
      { Mt_gen.default with num_txns = 2000; num_keys = 300; seed = 77 }
  in
  let db =
    { Db.level = Isolation.Serializable; fault = Fault.No_fault;
      num_keys = 300; seed = 77 }
  in
  let h = (Scheduler.run ~db ~spec ()).Scheduler.history in
  let build impl () =
    let idx = Index.build h in
    match Deps.build ~impl ~rt:Deps.No_rt idx with
    | Ok d -> ignore (Sys.opaque_identity (Deps.freeze d))
    | Error _ -> Alcotest.fail "unexpected unresolved read"
  in
  (* Minimum of a few runs: Gc.allocated_bytes can absorb counters from
     domains terminated by earlier suites, inflating a single delta. *)
  let measure f =
    f () (* warm-up *);
    let best = ref infinity in
    for _ = 1 to 3 do
      let a0 = Gc.allocated_bytes () in
      f ();
      let d = Gc.allocated_bytes () -. a0 in
      if d < !best then best := d
    done;
    !best
  in
  let direct = measure (build Deps.Direct) in
  let digraph = measure (build Deps.Via_digraph) in
  if direct > digraph /. 2.0 then
    Alcotest.failf
      "direct build allocated %.0f bytes, digraph %.0f — expected <= half"
      direct digraph

let suite =
  [
    ("flat map: basic", `Quick, test_map_basic);
    ("flat map: growth", `Quick, test_map_growth);
    ("flat map: negative value rejected", `Quick,
     test_map_negative_value_rejected);
    ("flat map: adversarial keys", `Quick, test_map_adversarial_keys);
    ("writers: tier shadowing", `Quick, test_writers_tiers);
    ("writers: unpackable spill", `Quick, test_writers_spill);
    ("int_vec: push/get/data", `Quick, test_int_vec);
    qtest prop_edge_multisets_equal;
    qtest prop_check_outcomes_equal;
    ("deps: direct build allocates <= half of digraph", `Quick,
     test_direct_build_alloc_halved);
  ]
