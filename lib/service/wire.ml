(* The MTC service wire protocol: length-prefixed binary frames over a
   byte stream (Unix-domain or TCP socket).

   Every frame is

     +----------------+-----+---------------------+
     | payload length | tag | payload (tag-specific) |
     |   u32 big-endian   | u8  |                     |
     +----------------+-----+---------------------+

   with integers inside payloads encoded as (zigzag) LEB128 varints and
   strings length-prefixed (see {!Binio}).  The session opens with a
   versioned handshake: the client's first frame must be [Hello] carrying
   the magic and its protocol version; the server answers [Welcome] (or
   [Error] and closes).  Everything after the handshake is
   session-multiplexed: [Open_session] creates an independent online
   checker, and [Feed]/[Verdict]/[Sync] frames carry its session id. *)

let magic = "MTCS"

(* v2: [Open_session] grew a trailing timestamp-mode byte (the Vbox fast
   path of {!Ts}).  v3: [Resume_session]/[Session_resumed] re-attach a
   session that survived a server restart (the durable-service crash
   story).  v4: [Open_session] grew a trailing watermark-GC policy
   ([None] = the server's default).  v5: [Session_stats_request]/
   [Session_stats_reply] expose per-session telemetry and the service
   event journal, and sessions fenced by the horizon-pin detector close
   with [R_pinned].  Other versions are refused at the handshake. *)
let version = 5

(* Hard ceiling on a single frame — a malformed or hostile length prefix
   must not make the server allocate gigabytes. *)
let max_frame = 1 lsl 24

type verdict =
  | V_ok of int  (** transactions accepted so far *)
  | V_violation of { anomaly : string option; rendered : string }

type close_reason =
  | R_requested
  | R_idle
  | R_shutdown
  | R_protocol of string
  | R_pinned

(* One live session's telemetry inside a [Session_stats_reply]. *)
type session_stat = {
  ss_sid : int;
  ss_shard : int;
  ss_level : Checker.level;
  ss_poisoned : bool;
  ss_pinned : bool;
  ss_frontier : int;  (* transactions fed to the checker *)
  ss_watermark : int;  (* current GC horizon position; -1 before any feed *)
  ss_lag : int;  (* frontier - watermark: arrivals pinned against GC *)
  ss_live_words : int;
  ss_queued : int;  (* ingress queue depth *)
  ss_last_seq : int;
  ss_feeds : int;  (* feeds accepted over the session's lifetime *)
  ss_age_ms : int;
  ss_idle_ms : int;  (* since the last frame from the client *)
}

(* One journal event inside a [Session_stats_reply]; ages are relative
   to the moment the reply was built (monotonic clocks don't travel). *)
type journal_event = {
  je_kind : Obs.Journal.kind;
  je_age_ms : int;
  je_dom : int;
  je_a : int;
  je_b : int;
  je_c : int;
}

type frame =
  | Hello of { version : int }
  | Welcome of { version : int; server : string }
  | Open_session of {
      level : Checker.level;
      num_keys : int;
      skew : int;
      ts : Ts.mode;
      gc : Online.gc option;
    }
  | Session_opened of { sid : int }
  | Feed of { sid : int; seq : int; txn : Txn.t }
  | Verdict of { sid : int; seq : int; verdict : verdict }
  | Sync of { sid : int; seq : int }
  | Throttle of { sid : int; queued : int }
  | Resume of { sid : int }
  | Stats_request
  | Stats_reply of { json : string }
  | Close_session of { sid : int }
  | Session_closed of { sid : int; reason : close_reason }
  | Error of { code : int; msg : string }
  | Bye
  | Resume_session of { sid : int }
  | Session_resumed of { sid : int; last_seq : int }
  | Session_stats_request
  | Session_stats_reply of {
      sessions : session_stat list;
      events : journal_event list;
      journal_dropped : int;
    }

(* Error codes carried by [Error] frames. *)
let err_bad_magic = 1
let err_version = 2
let err_bad_frame = 3
let err_unknown_session = 4

let level_to_byte = function Checker.SSER -> 0 | Checker.SER -> 1 | Checker.SI -> 2

let level_of_byte = function
  | 0 -> Some Checker.SSER
  | 1 -> Some Checker.SER
  | 2 -> Some Checker.SI
  | _ -> None

let ts_to_byte = function Ts.Ignore -> 0 | Ts.Trust -> 1 | Ts.Verify -> 2

let ts_of_byte = function
  | 0 -> Some Ts.Ignore
  | 1 -> Some Ts.Trust
  | 2 -> Some Ts.Verify
  | _ -> None

let frame_name = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Open_session _ -> "open-session"
  | Session_opened _ -> "session-opened"
  | Feed _ -> "feed"
  | Verdict _ -> "verdict"
  | Sync _ -> "sync"
  | Throttle _ -> "throttle"
  | Resume _ -> "resume"
  | Stats_request -> "stats-request"
  | Stats_reply _ -> "stats-reply"
  | Close_session _ -> "close-session"
  | Session_closed _ -> "session-closed"
  | Error _ -> "error"
  | Bye -> "bye"
  | Resume_session _ -> "resume-session"
  | Session_resumed _ -> "session-resumed"
  | Session_stats_request -> "session-stats-request"
  | Session_stats_reply _ -> "session-stats-reply"

(* ------------------------------------------------------------------ *)
(* Encoding. *)

let add_verdict buf = function
  | V_ok n ->
      Buffer.add_char buf '\000';
      Binio.add_uvarint buf n
  | V_violation { anomaly; rendered } ->
      Buffer.add_char buf '\001';
      (match anomaly with
      | None -> Buffer.add_char buf '\000'
      | Some a ->
          Buffer.add_char buf '\001';
          Binio.add_string buf a);
      Binio.add_string buf rendered

let add_reason buf = function
  | R_requested -> Buffer.add_char buf '\000'
  | R_idle -> Buffer.add_char buf '\001'
  | R_shutdown -> Buffer.add_char buf '\002'
  | R_protocol msg ->
      Buffer.add_char buf '\003';
      Binio.add_string buf msg
  | R_pinned -> Buffer.add_char buf '\004'

let add_session_stat buf s =
  Binio.add_uvarint buf s.ss_sid;
  Binio.add_uvarint buf s.ss_shard;
  Buffer.add_char buf (Char.chr (level_to_byte s.ss_level));
  Buffer.add_char buf (if s.ss_poisoned then '\001' else '\000');
  Buffer.add_char buf (if s.ss_pinned then '\001' else '\000');
  Binio.add_uvarint buf s.ss_frontier;
  Binio.add_varint buf s.ss_watermark;
  Binio.add_uvarint buf s.ss_lag;
  Binio.add_uvarint buf s.ss_live_words;
  Binio.add_uvarint buf s.ss_queued;
  Binio.add_uvarint buf s.ss_last_seq;
  Binio.add_uvarint buf s.ss_feeds;
  Binio.add_uvarint buf s.ss_age_ms;
  Binio.add_uvarint buf s.ss_idle_ms

let add_journal_event buf e =
  Binio.add_uvarint buf (Obs.Journal.kind_code e.je_kind);
  Binio.add_uvarint buf e.je_age_ms;
  Binio.add_uvarint buf e.je_dom;
  Binio.add_varint buf e.je_a;
  Binio.add_varint buf e.je_b;
  Binio.add_varint buf e.je_c

let add_payload buf = function
  | Hello { version } ->
      Buffer.add_char buf '\001';
      Buffer.add_string buf magic;
      Binio.add_uvarint buf version
  | Welcome { version; server } ->
      Buffer.add_char buf '\002';
      Binio.add_uvarint buf version;
      Binio.add_string buf server
  | Open_session { level; num_keys; skew; ts; gc } ->
      Buffer.add_char buf '\003';
      Buffer.add_char buf (Char.chr (level_to_byte level));
      Binio.add_uvarint buf num_keys;
      Binio.add_varint buf skew;
      Buffer.add_char buf (Char.chr (ts_to_byte ts));
      (match gc with
      | None -> Buffer.add_char buf '\000'
      | Some Online.Gc_off -> Buffer.add_char buf '\001'
      | Some Online.Gc_auto -> Buffer.add_char buf '\002'
      | Some (Online.Gc_words n) ->
          Buffer.add_char buf '\003';
          Binio.add_uvarint buf n)
  | Session_opened { sid } ->
      Buffer.add_char buf '\004';
      Binio.add_uvarint buf sid
  | Feed { sid; seq; txn } ->
      Buffer.add_char buf '\005';
      Binio.add_uvarint buf sid;
      Binio.add_uvarint buf seq;
      Binio.add_txn buf txn
  | Verdict { sid; seq; verdict } ->
      Buffer.add_char buf '\006';
      Binio.add_uvarint buf sid;
      Binio.add_uvarint buf seq;
      add_verdict buf verdict
  | Sync { sid; seq } ->
      Buffer.add_char buf '\007';
      Binio.add_uvarint buf sid;
      Binio.add_uvarint buf seq
  | Throttle { sid; queued } ->
      Buffer.add_char buf '\008';
      Binio.add_uvarint buf sid;
      Binio.add_uvarint buf queued
  | Resume { sid } ->
      Buffer.add_char buf '\009';
      Binio.add_uvarint buf sid
  | Stats_request -> Buffer.add_char buf '\010'
  | Stats_reply { json } ->
      Buffer.add_char buf '\011';
      Binio.add_string buf json
  | Close_session { sid } ->
      Buffer.add_char buf '\012';
      Binio.add_uvarint buf sid
  | Session_closed { sid; reason } ->
      Buffer.add_char buf '\013';
      Binio.add_uvarint buf sid;
      add_reason buf reason
  | Error { code; msg } ->
      Buffer.add_char buf '\014';
      Binio.add_uvarint buf code;
      Binio.add_string buf msg
  | Bye -> Buffer.add_char buf '\015'
  | Resume_session { sid } ->
      Buffer.add_char buf '\016';
      Binio.add_uvarint buf sid
  | Session_resumed { sid; last_seq } ->
      Buffer.add_char buf '\017';
      Binio.add_uvarint buf sid;
      Binio.add_uvarint buf last_seq
  | Session_stats_request -> Buffer.add_char buf '\018'
  | Session_stats_reply { sessions; events; journal_dropped } ->
      Buffer.add_char buf '\019';
      Binio.add_uvarint buf (List.length sessions);
      List.iter (add_session_stat buf) sessions;
      Binio.add_uvarint buf (List.length events);
      List.iter (add_journal_event buf) events;
      Binio.add_uvarint buf journal_dropped

(* [encode ~scratch out frame] appends the length-prefixed frame to
   [out].  The payload is first built in [scratch] (cleared here) so the
   length prefix is known before it is written; both buffers are meant to
   be connection-owned and reused across frames, so steady-state encoding
   allocates nothing but the buffer growth itself. *)
let encode ~scratch out frame =
  Buffer.clear scratch;
  add_payload scratch frame;
  let len = Buffer.length scratch in
  Buffer.add_char out (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char out (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char out (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char out (Char.chr (len land 0xff));
  Buffer.add_buffer out scratch

let to_string frame =
  let out = Buffer.create 64 in
  encode ~scratch:(Buffer.create 64) out frame;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Decoding. *)

let read_verdict r =
  match Binio.read_byte r with
  | 0 -> V_ok (Binio.read_uvarint r)
  | 1 ->
      let anomaly =
        match Binio.read_byte r with
        | 0 -> None
        | 1 -> Some (Binio.read_string r)
        | b -> Binio.fail "bad anomaly presence byte %d" b
      in
      V_violation { anomaly; rendered = Binio.read_string r }
  | b -> Binio.fail "bad verdict tag %d" b

let read_reason r =
  match Binio.read_byte r with
  | 0 -> R_requested
  | 1 -> R_idle
  | 2 -> R_shutdown
  | 3 -> R_protocol (Binio.read_string r)
  | 4 -> R_pinned
  | b -> Binio.fail "bad close reason %d" b

let read_bool r =
  match Binio.read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> Binio.fail "bad bool byte %d" b

let read_session_stat r =
  let ss_sid = Binio.read_uvarint r in
  let ss_shard = Binio.read_uvarint r in
  let ss_level =
    match level_of_byte (Binio.read_byte r) with
    | Some l -> l
    | None -> Binio.fail "unknown isolation level byte"
  in
  let ss_poisoned = read_bool r in
  let ss_pinned = read_bool r in
  let ss_frontier = Binio.read_uvarint r in
  let ss_watermark = Binio.read_varint r in
  let ss_lag = Binio.read_uvarint r in
  let ss_live_words = Binio.read_uvarint r in
  let ss_queued = Binio.read_uvarint r in
  let ss_last_seq = Binio.read_uvarint r in
  let ss_feeds = Binio.read_uvarint r in
  let ss_age_ms = Binio.read_uvarint r in
  let ss_idle_ms = Binio.read_uvarint r in
  {
    ss_sid; ss_shard; ss_level; ss_poisoned; ss_pinned; ss_frontier;
    ss_watermark; ss_lag; ss_live_words; ss_queued; ss_last_seq;
    ss_feeds; ss_age_ms; ss_idle_ms;
  }

let read_journal_event r =
  let je_kind =
    let c = Binio.read_uvarint r in
    match Obs.Journal.kind_of_code c with
    | Some k -> k
    | None -> Binio.fail "unknown journal event kind %d" c
  in
  let je_age_ms = Binio.read_uvarint r in
  let je_dom = Binio.read_uvarint r in
  let je_a = Binio.read_varint r in
  let je_b = Binio.read_varint r in
  let je_c = Binio.read_varint r in
  { je_kind; je_age_ms; je_dom; je_a; je_b; je_c }

(* Read [n] items sequentially (a hostile count simply exhausts the
   bounded payload and fails in the reader). *)
let read_list r n read_item =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (read_item r :: acc) in
  go n []

let decode_payload payload =
  let r = Binio.reader payload in
  let frame =
    match Binio.read_byte r with
    | 1 ->
        let m =
          if Binio.remaining r < String.length magic then
            Binio.fail "hello too short"
          else Binio.read_bytes r (String.length magic)
        in
        if m <> magic then Binio.fail "bad magic %S" m;
        Hello { version = Binio.read_uvarint r }
    | 2 ->
        let version = Binio.read_uvarint r in
        Welcome { version; server = Binio.read_string r }
    | 3 ->
        let level =
          match level_of_byte (Binio.read_byte r) with
          | Some l -> l
          | None -> Binio.fail "unknown isolation level byte"
        in
        let num_keys = Binio.read_uvarint r in
        let skew = Binio.read_varint r in
        let ts =
          match ts_of_byte (Binio.read_byte r) with
          | Some ts -> ts
          | None -> Binio.fail "unknown timestamp mode byte"
        in
        let gc =
          match Binio.read_byte r with
          | 0 -> None
          | 1 -> Some Online.Gc_off
          | 2 -> Some Online.Gc_auto
          | 3 ->
              let n = Binio.read_uvarint r in
              if n <= 0 then Binio.fail "gc word ceiling must be positive"
              else Some (Online.Gc_words n)
          | b -> Binio.fail "unknown gc policy byte %d" b
        in
        Open_session { level; num_keys; skew; ts; gc }
    | 4 -> Session_opened { sid = Binio.read_uvarint r }
    | 5 ->
        let sid = Binio.read_uvarint r in
        let seq = Binio.read_uvarint r in
        Feed { sid; seq; txn = Binio.read_txn r }
    | 6 ->
        let sid = Binio.read_uvarint r in
        let seq = Binio.read_uvarint r in
        Verdict { sid; seq; verdict = read_verdict r }
    | 7 ->
        let sid = Binio.read_uvarint r in
        Sync { sid; seq = Binio.read_uvarint r }
    | 8 ->
        let sid = Binio.read_uvarint r in
        Throttle { sid; queued = Binio.read_uvarint r }
    | 9 -> Resume { sid = Binio.read_uvarint r }
    | 10 -> Stats_request
    | 11 -> Stats_reply { json = Binio.read_string r }
    | 12 -> Close_session { sid = Binio.read_uvarint r }
    | 13 ->
        let sid = Binio.read_uvarint r in
        Session_closed { sid; reason = read_reason r }
    | 14 ->
        let code = Binio.read_uvarint r in
        Error { code; msg = Binio.read_string r }
    | 15 -> Bye
    | 16 -> Resume_session { sid = Binio.read_uvarint r }
    | 17 ->
        let sid = Binio.read_uvarint r in
        Session_resumed { sid; last_seq = Binio.read_uvarint r }
    | 18 -> Session_stats_request
    | 19 ->
        let sessions = read_list r (Binio.read_uvarint r) read_session_stat in
        let events = read_list r (Binio.read_uvarint r) read_journal_event in
        let journal_dropped = Binio.read_uvarint r in
        Session_stats_reply { sessions; events; journal_dropped }
    | t -> Binio.fail "unknown frame tag %d" t
  in
  if not (Binio.at_end r) then
    Binio.fail "%d trailing bytes after %s frame" (Binio.remaining r)
      (frame_name frame);
  frame

let decode payload =
  match decode_payload payload with
  | frame -> Ok frame
  | exception Binio.Decode_error m -> Result.Error m
  | exception Invalid_argument m -> Result.Error m

(* Parse one full length-prefixed frame from [s] starting at [pos];
   returns the frame and the position after it. *)
let of_string ?(pos = 0) s =
  let len_s = String.length s in
  if len_s - pos < 4 then Result.Error "truncated length prefix"
  else
    let len =
      (Char.code s.[pos] lsl 24)
      lor (Char.code s.[pos + 1] lsl 16)
      lor (Char.code s.[pos + 2] lsl 8)
      lor Char.code s.[pos + 3]
    in
    if len <= 0 || len > max_frame then
      Result.Error (Printf.sprintf "frame length %d out of range" len)
    else if len_s - pos - 4 < len then Result.Error "truncated frame"
    else
      match decode (String.sub s (pos + 4) len) with
      | Ok f -> Ok (f, pos + 4 + len)
      | Result.Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Blocking I/O over file descriptors (EINTR-safe). *)

let rec really_write fd b off len =
  if len > 0 then
    let n =
      try Unix.write fd b off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd b (off + n) (len - n)

(* [Ok None] = clean EOF at a frame boundary. *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec go off =
    if off >= len then Ok (Some b)
    else
      match Unix.read fd b off (len - off) with
      | 0 -> if off = 0 then Ok None else Result.Error "truncated frame"
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          Result.Error (Unix.error_message e)
  in
  go 0

(* A pair of reusable buffers for frame encoding (one per connection). *)
type out_bufs = { ob_scratch : Buffer.t; ob_out : Buffer.t }

let out_bufs () = { ob_scratch = Buffer.create 512; ob_out = Buffer.create 512 }

let write_frame fd bufs frame =
  Buffer.clear bufs.ob_out;
  encode ~scratch:bufs.ob_scratch bufs.ob_out frame;
  let b = Buffer.to_bytes bufs.ob_out in
  really_write fd b 0 (Bytes.length b)

let sp_decode = Obs.Trace.intern "wire/decode"

let read_frame fd =
  match read_exact fd 4 with
  | Result.Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some hdr) -> (
      let len =
        (Char.code (Bytes.get hdr 0) lsl 24)
        lor (Char.code (Bytes.get hdr 1) lsl 16)
        lor (Char.code (Bytes.get hdr 2) lsl 8)
        lor Char.code (Bytes.get hdr 3)
      in
      if len <= 0 || len > max_frame then
        Result.Error (Printf.sprintf "frame length %d out of range" len)
      else
        match read_exact fd len with
        | Result.Error _ as e -> e
        | Ok None -> Result.Error "truncated frame"
        | Ok (Some payload) -> (
            (* span the parse only, never the blocking read above *)
            match
              Obs.Trace.with_span sp_decode (fun () ->
                  decode (Bytes.unsafe_to_string payload))
            with
            | Ok f -> Ok (Some f)
            | Result.Error _ as e -> e))
