#!/usr/bin/env bash
# Crash-recovery smoke of the durable checking service: serve with a
# write-ahead log, stream a clean and a (late-)faulty history
# concurrently, kill -9 the server mid-feed, restart it on the same
# directory and require both sessions to resume where the log ends —
# the clean one finishing with every transaction accounted for, the
# faulty one rendering a counterexample byte-identical to an
# uninterrupted run's (its reads span the crash, so this also proves
# the restored checker state is faithful).  Also asserts the event-loop
# architecture: a herd of idle connections must not cost the server a
# thread each.  Wired into `dune build @check` from the root dune file.
set -u

MTC="$1"
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "crash-smoke: FAIL: $*" >&2; exit 1; }

wait_sock() {
  for _ in $(seq 1 100); do [ -S "$1" ] && return 0; sleep 0.05; done
  return 1
}

# Everything the faulty feed prints from the first violation line on —
# the multi-line rendered counterexample.
rendered_of() { sed -n '/violation/,$p' "$1"; }

# -- fixtures: a clean SER history and an SI lost-update history whose
#    first violation sits late in commit order (seed-picked), so the
#    kill below lands while that session is still clean
"$MTC" run --level ser --txns 300 --keys 10 --seed 11 -o "$TMP/good.hist" \
  >/dev/null || fail "clean run must pass"
"$MTC" run --level si --txns 200 --keys 10 --seed 11 \
  --fault lost-update --fault-p 0.02 -o "$TMP/bad.hist" >/dev/null
[ $? -eq 1 ] || fail "faulty run must report a violation"

# -- reference rendering: an uninterrupted feed to a non-durable server
SOCK="$TMP/ref.sock"
"$MTC" serve --listen "unix:$SOCK" -j 2 > "$TMP/ref_serve.log" 2>&1 &
SERVER_PID=$!
wait_sock "$SOCK" || fail "reference server did not come up"
"$MTC" feed "$TMP/bad.hist" -a "unix:$SOCK" --level si > "$TMP/ref_feed.out"
[ $? -eq 1 ] || fail "reference feed(bad) must exit 1"
rendered_of "$TMP/ref_feed.out" > "$TMP/ref_rendered"
[ -s "$TMP/ref_rendered" ] || fail "reference feed must render a violation"
kill -TERM "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

# -- durable server, slowed so the kill is guaranteed to be mid-feed
SOCK="$TMP/mtc.sock"
WAL="$TMP/wal"
"$MTC" serve --listen "unix:$SOCK" --wal-dir "$WAL" --drain-delay 0.005 \
  -j 2 > "$TMP/serve1.log" 2>&1 &
SERVER_PID=$!
wait_sock "$SOCK" || fail "durable server did not come up (see $TMP/serve1.log)"
grep -q "durable in" "$TMP/serve1.log" || fail "server must announce the WAL dir"

"$MTC" feed "$TMP/good.hist" -a "unix:$SOCK" --level ser \
  > "$TMP/feed_good.out" 2>&1 &
GOOD_FEED=$!
"$MTC" feed "$TMP/bad.hist" -a "unix:$SOCK" --level si \
  > "$TMP/feed_bad.out" 2>&1 &
BAD_FEED=$!

sleep 0.5
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
wait "$GOOD_FEED" 2>/dev/null
[ $? -ne 0 ] || fail "feed(good) must fail when the server is killed under it"
wait "$BAD_FEED" 2>/dev/null
[ $? -ne 0 ] || fail "feed(bad) must fail when the server is killed under it"

GOOD_SID=$(sed -n 's/^session \([0-9]*\) opened$/\1/p' "$TMP/feed_good.out")
BAD_SID=$(sed -n 's/^session \([0-9]*\) opened$/\1/p' "$TMP/feed_bad.out")
[ -n "$GOOD_SID" ] && [ -n "$BAD_SID" ] \
  || fail "both feeds must have printed their session ids before the crash"

# -- the log must hold both sessions, mid-stream, with no close record
"$MTC" wal-dump "$WAL" > "$TMP/dump1.out" || fail "wal-dump must read $WAL"
grep -q "session $GOOD_SID: opened, " "$TMP/dump1.out" \
  || fail "WAL must hold the clean session (see $TMP/dump1.out)"
grep -q "session $BAD_SID: opened, " "$TMP/dump1.out" \
  || fail "WAL must hold the faulty session"
grep -q "closed" "$TMP/dump1.out" \
  && fail "no session may have a close record after kill -9 mid-feed"

# -- restart on the same directory, different shard count (sessions
#    re-home to sid mod nshards on restore).  kill -9 left the stale
#    socket file behind; remove it so wait_sock sees the new bind.
rm -f "$SOCK"
"$MTC" serve --listen "unix:$SOCK" --wal-dir "$WAL" -j 3 \
  > "$TMP/serve2.log" 2>&1 &
SERVER_PID=$!
wait_sock "$SOCK" || fail "restarted server did not come up (see $TMP/serve2.log)"

# -- idle connections cost fds, not threads
"$MTC" swarm -a "unix:$SOCK" -n 100 --hold 0.5 > "$TMP/swarm.out" &
SWARM=$!
sleep 0.3
THREADS=$(awk '/^Threads:/ {print $2}' "/proc/$SERVER_PID/status")
wait "$SWARM" || fail "swarm must open all 100 connections (see $TMP/swarm.out)"
grep -q "open_conns=10[01]" "$TMP/swarm.out" \
  || fail "server must report the idle herd in open_conns (see $TMP/swarm.out)"
[ -n "$THREADS" ] && [ "$THREADS" -lt 50 ] \
  || fail "100 idle connections must not cost threads (Threads: $THREADS)"

# -- resume the clean session: the verdict must account for EVERY
#    transaction, pre- and post-crash
"$MTC" feed "$TMP/good.hist" -a "unix:$SOCK" --level ser \
  --resume "$GOOD_SID" > "$TMP/resume_good.out"
[ $? -eq 0 ] || fail "resumed feed(good) must pass (see $TMP/resume_good.out)"
grep -q "^session $GOOD_SID resumed at seq" "$TMP/resume_good.out" \
  || fail "feed --resume must report the server's resume point"
TOTAL=$(sed -n 's/^\([0-9]*\) txns.*/\1/p' "$TMP/resume_good.out")
grep -q "PASS ($TOTAL transactions accepted)" "$TMP/resume_good.out" \
  || fail "resumed session must account for all $TOTAL transactions"

# -- the faulty session stays detached through this incarnation: a
#    graceful stop must carry it forward in a snapshot (the direct
#    Online serialization, no WAL replay on the next restore)
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
[ $? -eq 0 ] || fail "durable server must exit 0 on SIGTERM"
SERVER_PID=""
grep -q "snap-" <(ls "$WAL") || fail "final checkpoint must leave snapshots"

rm -f "$SOCK"
"$MTC" serve --listen "unix:$SOCK" --wal-dir "$WAL" -j 2 \
  > "$TMP/serve3.log" 2>&1 &
SERVER_PID=$!
wait_sock "$SOCK" || fail "second restart did not come up (see $TMP/serve3.log)"

# -- resume the faulty session from its snapshot: the remainder of the
#    stream must trip the violation, and the counterexample (whose
#    reads span the crash AND the snapshot) must render byte-identically
#    to the uninterrupted run
"$MTC" feed "$TMP/bad.hist" -a "unix:$SOCK" --level si \
  --resume "$BAD_SID" > "$TMP/resume_bad.out"
[ $? -eq 1 ] || fail "resumed feed(bad) must report the violation (exit 1)"
grep -q "^session $BAD_SID resumed at seq" "$TMP/resume_bad.out" \
  || fail "feed --resume must report the faulty session's resume point"
rendered_of "$TMP/resume_bad.out" > "$TMP/resumed_rendered"
cmp -s "$TMP/ref_rendered" "$TMP/resumed_rendered" \
  || fail "counterexample must be byte-identical across the crash \
(diff $TMP/ref_rendered $TMP/resumed_rendered)"

# -- graceful shutdown still works with durability on
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=""
[ $rc -eq 0 ] || fail "durable server must exit 0 on SIGTERM (got $rc)"

echo "crash-smoke: OK"
