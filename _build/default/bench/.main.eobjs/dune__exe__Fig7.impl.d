bench/fig7.ml: Bench_util Checker Cobra Distribution List Option Printf Scheduler
