test/test_common.ml: Alcotest Array Distribution List Printf Rng Stats
