(* Figure 7: verification performance on SER mini-transaction histories —
   MTC-SER vs Cobra, across (a) object-access distributions, (b) #objects,
   (c) #sessions, (d) #txns. *)

let verify_pair (r : Scheduler.result) =
  let h = r.Scheduler.history in
  let mtc = Bench_util.time_median (fun () -> Checker.check_ser h) in
  let cobra_res = ref None in
  let cobra =
    Bench_util.time_median (fun () -> cobra_res := Some (Cobra.check h))
  in
  let stats = (Option.get !cobra_res).Cobra.stats in
  (mtc, cobra, stats)

let row label r =
  let mtc, cobra, stats = verify_pair r in
  [
    label;
    Bench_util.ms mtc;
    Bench_util.ms cobra;
    Printf.sprintf "%.1fx" (cobra /. mtc);
    string_of_int stats.Cobra.constraints_total;
    string_of_int stats.Cobra.constraints_pruned;
  ]

let header = [ "config"; "MTC-SER (ms)"; "Cobra (ms)"; "speedup"; "constraints"; "pruned" ]

let run () =
  Bench_util.section "Figure 7: SER verification, MTC-SER vs Cobra (MT histories)";
  let txns = Bench_util.scale 3000 in

  Bench_util.subsection "(a) object-access distribution (3000 txns, 600 keys)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun dist ->
         let r = Bench_util.mt_history ~dist ~keys:600 ~txns ~seed:101 () in
         row (Distribution.kind_name dist) r)
       (Bench_util.sweep Distribution.all_kinds));

  Bench_util.subsection "(b) #objects (3000 txns, zipfian)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun keys ->
         let r =
           Bench_util.mt_history ~dist:(Distribution.Zipfian 0.99) ~keys
             ~txns ~seed:102 ()
         in
         row (Printf.sprintf "%d objects" keys) r)
       (Bench_util.sweep [ 1600; 800; 400; 200 ]));

  Bench_util.subsection "(c) #sessions (3000 txns, 600 keys, uniform)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun sessions ->
         let r = Bench_util.mt_history ~sessions ~keys:600 ~txns ~seed:103 () in
         row (Printf.sprintf "%d sessions" sessions) r)
       (Bench_util.sweep [ 4; 8; 16; 32 ]));

  Bench_util.subsection "(d) #txns (600 keys, uniform)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun txns ->
         let r = Bench_util.mt_history ~keys:600 ~txns ~seed:104 () in
         row (Printf.sprintf "%d txns" txns) r)
       (Bench_util.sweep (List.map Bench_util.scale [ 1000; 2000; 4000; 8000 ])))
