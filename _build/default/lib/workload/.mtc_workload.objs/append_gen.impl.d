lib/workload/append_gen.ml: Array Distribution List Printf Rng Spec
