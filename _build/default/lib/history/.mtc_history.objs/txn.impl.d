lib/history/txn.ml: Array Format Hashtbl List Op Option
