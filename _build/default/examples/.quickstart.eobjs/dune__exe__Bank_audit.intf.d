examples/bank_audit.mli:
