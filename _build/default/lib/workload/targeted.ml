let contended ?(sessions = 10) ~keys ~txns ~seed () =
  Mt_gen.generate
    { Mt_gen.num_sessions = sessions; num_txns = txns; num_keys = keys;
      dist = Distribution.Uniform; seed }

let observers ?(sessions = 8) ~keys ~txns ~seed () =
  if keys < 2 then invalid_arg "Targeted.observers: need at least two keys";
  let writers = Stdlib.max 1 (sessions / 2) in
  if keys < writers then
    invalid_arg "Targeted.observers: need a key per writer session";
  let rng = Rng.create seed in
  let arr = Array.make sessions [] in
  for i = 0 to txns - 1 do
    let s = i mod sessions in
    let txn =
      if s < writers then [ Spec.Pread s; Spec.Pwrite s ]
      else
        let x = Rng.int rng keys in
        let y = (x + 1 + Rng.int rng (keys - 1)) mod keys in
        [ Spec.Pread x; Spec.Pread y ]
    in
    arr.(s) <- txn :: arr.(s)
  done;
  {
    Spec.name = Printf.sprintf "observers-s%d-t%d-k%d" sessions txns keys;
    num_keys = keys;
    sessions = Array.map List.rev arr;
  }

let write_skew ?(sessions = 8) ~keys ~txns ~seed () =
  if keys < 2 || keys mod 2 <> 0 then
    invalid_arg "Targeted.write_skew: need an even number of keys >= 2";
  let rng = Rng.create seed in
  let arr = Array.make sessions [] in
  for i = 0 to txns - 1 do
    let s = i mod sessions in
    let pair = Rng.int rng (keys / 2) in
    let x = 2 * pair and y = (2 * pair) + 1 in
    let txn =
      if Rng.bool rng then [ Spec.Pread x; Spec.Pread y; Spec.Pwrite x ]
      else [ Spec.Pread x; Spec.Pread y; Spec.Pwrite y ]
    in
    arr.(s) <- txn :: arr.(s)
  done;
  {
    Spec.name = Printf.sprintf "write-skew-s%d-t%d-k%d" sessions txns keys;
    num_keys = keys;
    sessions = Array.map List.rev arr;
  }
