(* Tests for the timestamp-assisted fast path (Vbox mode): chain
   construction and prediction units, the duplicate-value screen's
   byte-equality with History.unique_values, and the central QCheck
   properties — `--timestamps verify` must produce the identical verdict
   AND the identical rendered counterexample as `ignore` on any history
   (faulty engines, lying clocks, any level × rt mode), `trust` must
   agree on timestamp-faithful corpora, and injected lies must be either
   caught by certification or harmless to the verdict. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

(* --- helpers --- *)

let render ?pool ?rt_mode ~ts level h =
  match Checker.check_report ?pool ?rt_mode ~ts level h with
  | Checker.Pass, _ -> "PASS"
  | Checker.Fail v, _ -> Report.render h level v

let mk_history txns =
  let num_keys =
    1
    + List.fold_left
        (fun m (t : Txn.t) ->
          Array.fold_left (fun m op -> Stdlib.max m (Op.key op)) m t.ops)
        0 txns
  in
  let num_sessions =
    List.fold_left (fun m (t : Txn.t) -> Stdlib.max m t.session) 1 txns
  in
  History.make ~num_keys ~num_sessions txns

(* --- units: chains and prediction --- *)

let test_chain_predict () =
  (* x1: T1 (commit 10) then T2 (commit 20); reader start decides. *)
  let h =
    mk_history
      [
        Txn.make ~id:1 ~session:1 ~start_ts:1 ~commit_ts:10 [ Op.Write (1, 11) ];
        Txn.make ~id:2 ~session:1 ~start_ts:12 ~commit_ts:20
          [ Op.Write (1, 12) ];
        Txn.make ~id:3 ~session:2 ~start_ts:15 ~commit_ts:16 [ Op.Read (1, 11) ];
      ]
  in
  let idx = Index.build_deferred h in
  match Ts.build ~mode:Ts.Verify idx with
  | Error msg -> Alcotest.failf "unexpected dup: %s" msg
  | Ok ts ->
      checki "slots = committed final writes (incl. init)" 4 (Ts.total_slots ts);
      let p t = Ts.slot_writer ts (Ts.predict ts 1 ~start_ts:t) in
      checki "before T1 commits -> init" 0 (p 5);
      checki "between commits -> T1" 1 (p 15);
      checki "exactly at commit (non-strict) -> T2" 2 (p 20);
      checki "after both -> T2" 2 (p 99);
      checki "init chain bottom" 0 (Ts.slot_writer ts (Ts.predict ts 0 ~start_ts:min_int))

let test_chain_unsorted_commits () =
  (* Chains must sort by commit_ts even when feed order disagrees. *)
  let h =
    mk_history
      [
        Txn.make ~id:1 ~session:1 ~start_ts:1 ~commit_ts:30 [ Op.Write (1, 11) ];
        Txn.make ~id:2 ~session:2 ~start_ts:2 ~commit_ts:10 [ Op.Write (1, 12) ];
      ]
  in
  let idx = Index.build_deferred h in
  match Ts.build ~mode:Ts.Trust idx with
  | Error msg -> Alcotest.failf "trust never screens: %s" msg
  | Ok ts ->
      checki "lower commit first" 2 (Ts.slot_writer ts (Ts.predict ts 1 ~start_ts:15));
      checki "higher commit later" 1 (Ts.slot_writer ts (Ts.predict ts 1 ~start_ts:31))

let test_dup_screen_matches_unique_values () =
  (* Two committed writers of (k=1, v=7): the screen must produce the
     exact unique_values message, so Malformed renders identically. *)
  let h =
    mk_history
      [
        Txn.make ~id:1 ~session:1 [ Op.Write (1, 7) ];
        Txn.make ~id:2 ~session:2 [ Op.Write (1, 7) ];
      ]
  in
  let expected =
    match History.unique_values h with
    | Error msg -> msg
    | Ok () -> Alcotest.fail "unique_values should reject"
  in
  (match Ts.build ~mode:Ts.Verify (Index.build_deferred h) with
  | Error msg -> checks "same message" expected msg
  | Ok _ -> Alcotest.fail "verify screen should reject");
  checks "end-to-end render equal"
    (render ~ts:Ts.Ignore Checker.SER h)
    (render ~ts:Ts.Verify Checker.SER h)

let test_certification_catches_lie () =
  (* T2's start_ts predicts the init write of x1, but it read T1's value:
     a lie the certifier must record without changing the verdict. *)
  let h =
    mk_history
      [
        Txn.make ~id:1 ~session:1 ~start_ts:5 ~commit_ts:50
          [ Op.Write (1, 11) ];
        Txn.make ~id:2 ~session:2 ~start_ts:10 ~commit_ts:12
          [ Op.Read (1, 11) ];
      ]
  in
  (match Checker.check_report ~ts:Ts.Verify Checker.SER h with
  | Checker.Pass, Some ts ->
      checki "one mismatch" 1 ts.Ts.mismatched_reads;
      checki "one slow key" 1 ts.Ts.slow_keys;
      checkb "report renders" true
        (match Ts.render_report ts with
        | Some s ->
            let has needle s =
              let n = String.length needle and m = String.length s in
              let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
              go 0
            in
            has "T2" s && has "T1" s
        | None -> false)
  | Checker.Pass, None -> Alcotest.fail "expected ts state"
  | Checker.Fail _, _ -> Alcotest.fail "clean history must pass");
  checks "verdict equal to ignore"
    (render ~ts:Ts.Ignore Checker.SER h)
    (render ~ts:Ts.Verify Checker.SER h)

let test_inverted_window_reported () =
  let h =
    mk_history
      [ Txn.make ~id:1 ~session:1 ~start_ts:9 ~commit_ts:3 [ Op.Write (1, 5) ] ]
  in
  match Checker.check_report ~ts:Ts.Verify Checker.SER h with
  | Checker.Pass, Some ts ->
      checkb "bad window recorded" true (ts.Ts.bad_windows = [ (1, 9, 3) ]);
      checkb "report mentions it" true (Ts.render_report ts <> None)
  | _ -> Alcotest.fail "expected pass with ts state"

(* --- QCheck: verify == ignore, always --- *)

let levels_rt =
  [
    (Checker.SER, None);
    (Checker.SI, None);
    (Checker.SSER, Some Deps.Rt_naive);
    (Checker.SSER, Some Deps.Rt_sweep);
  ]

let prop_verify_equals_ignore =
  QCheck2.Test.make ~name:"verify == ignore (verdict + rendered bytes)"
    ~count:60 ~print:Test_flat.print_config Test_flat.config_gen (fun cfg ->
      let h = Test_flat.history_of cfg in
      List.for_all
        (fun (level, rt_mode) ->
          render ?rt_mode ~ts:Ts.Ignore level h
          = render ?rt_mode ~ts:Ts.Verify level h)
        levels_rt)

(* Same property under an adversarial clock: rewrite every timestamp at
   random (inversions, duplicates, reordering across sessions).  The
   real-time relation changes — but identically for both modes — while
   certification has to fall back almost everywhere. *)
let mangle_ts seed (h : History.t) =
  let rng = Rng.create seed in
  let txns =
    Array.map
      (fun (t : Txn.t) ->
        if t.Txn.id = History.init_id then t
        else
          Txn.make ~id:t.id ~session:t.session ~status:t.status
            ~start_ts:(Rng.int rng 50) ~commit_ts:(Rng.int rng 50)
            (Array.to_list t.ops))
      h.History.txns
  in
  History.of_array ~num_keys:h.History.num_keys
    ~num_sessions:h.History.num_sessions txns

let prop_verify_equals_ignore_lying_clock =
  QCheck2.Test.make ~name:"verify == ignore under a lying clock" ~count:60
    ~print:Test_flat.print_config Test_flat.config_gen (fun cfg ->
      let (seed, _, _, _, _) = cfg in
      let h = mangle_ts (seed + 31) (Test_flat.history_of cfg) in
      List.for_all
        (fun (level, rt_mode) ->
          render ?rt_mode ~ts:Ts.Ignore level h
          = render ?rt_mode ~ts:Ts.Verify level h)
        levels_rt)

let prop_verify_equals_ignore_across_pools =
  QCheck2.Test.make ~name:"verify byte-identical across -j" ~count:25
    ~print:Test_flat.print_config Test_flat.config_gen (fun cfg ->
      let h = Test_flat.history_of cfg in
      List.for_all
        (fun (level, rt_mode) ->
          let base = render ?rt_mode ~ts:Ts.Verify level h in
          List.for_all
            (fun size ->
              Pool.with_pool ~size (fun p ->
                  render ~pool:p ?rt_mode ~ts:Ts.Verify level h)
              = base)
            [ 2; 4 ])
        levels_rt)

(* --- QCheck: trust on faithful corpora --- *)

let stream_history (p : Stream_gen.params) =
  let acc = ref [] in
  Stream_gen.generate p (fun t -> acc := t :: !acc);
  History.of_array ~num_keys:p.Stream_gen.num_keys
    ~num_sessions:p.Stream_gen.num_sessions
    (Array.of_list
       (History.init_txn ~num_keys:p.Stream_gen.num_keys :: List.rev !acc))

let stream_params_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* num_txns = int_range 20 300 in
    let* num_keys = int_range 2 40 in
    let* num_sessions = int_range 1 8 in
    return
      {
        Stream_gen.default with
        Stream_gen.num_txns;
        num_keys;
        num_sessions;
        seed;
      })

let print_stream_params (p : Stream_gen.params) =
  Printf.sprintf "txns=%d keys=%d sessions=%d seed=%d" p.Stream_gen.num_txns
    p.Stream_gen.num_keys p.Stream_gen.num_sessions p.Stream_gen.seed

let prop_trust_equals_ignore_on_faithful =
  QCheck2.Test.make ~name:"trust == ignore on timestamp-faithful corpora"
    ~count:40 ~print:print_stream_params stream_params_gen (fun p ->
      let h = stream_history p in
      List.for_all
        (fun (level, rt_mode) ->
          render ?rt_mode ~ts:Ts.Ignore level h
          = render ?rt_mode ~ts:Ts.Trust level h)
        levels_rt)

(* Lies are always either caught by certification (mismatched_reads > 0)
   or harmless (trust verdict still equals ignore).  SSER is excluded:
   there even `ignore` judges real time from the lying clock, so the
   property under test — value inference as ground truth — only makes
   sense for SER/SI. *)
let prop_lies_caught_or_harmless =
  QCheck2.Test.make ~name:"lies caught by verify, or harmless to trust"
    ~count:40 ~print:print_stream_params stream_params_gen (fun p ->
      let h = mangle_ts (p.Stream_gen.seed + 77) (stream_history p) in
      List.for_all
        (fun level ->
          let ignore_r = render ~ts:Ts.Ignore level h in
          let trust_r = render ~ts:Ts.Trust level h in
          match Checker.check_report ~ts:Ts.Verify level h with
          | verify_o, tso ->
              let verify_r =
                match verify_o with
                | Checker.Pass -> "PASS"
                | Checker.Fail v -> Report.render h level v
              in
              verify_r = ignore_r
              && (match tso with
                 | Some ts when ts.Ts.mismatched_reads > 0 -> true
                 | _ -> trust_r = ignore_r))
        [ Checker.SER; Checker.SI ])

(* --- the binary codec rejects inverted windows at write time --- *)

let test_bin_writer_rejects_inverted_window () =
  let path = Filename.temp_file "mtc_ts" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let w = Codec.Bin_writer.create ~num_keys:2 ~num_sessions:1 path in
      (try
         Codec.Bin_writer.add w
           (Txn.make ~id:1 ~session:1 ~start_ts:9 ~commit_ts:3
              [ Op.Write (1, 5) ]);
         Alcotest.fail "inverted window must be rejected"
       with Invalid_argument msg ->
         checks "message names the window"
           "Codec.Bin_writer.add: T1 start_ts 9 after commit_ts 3" msg);
      (* the writer survives the rejection: a well-formed txn still lands *)
      Codec.Bin_writer.add w
        (Txn.make ~id:1 ~session:1 ~start_ts:2 ~commit_ts:3
           [ Op.Write (1, 5) ]);
      Codec.Bin_writer.close w;
      match Codec.load_bin path with
      | Ok h -> checki "one txn round-trips" 2 (History.num_txns h)
      | Error e -> Alcotest.failf "reload failed: %s" e)

(* --- engine runs under a lying timestamp oracle (the Fault.Ts modes) --- *)

let engine_history ~level ~fault ~seed =
  let spec =
    Mt_gen.generate { Mt_gen.default with num_txns = 250; num_keys = 8; seed }
  in
  let db = { Db.level; fault; num_keys = 8; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

let ts_faults = [ Fault.Ts_skew 0.4; Fault.Ts_reorder 0.4; Fault.Ts_dup 0.4 ]

let test_faulty_oracle_verify_equals_ignore () =
  (* The engine behaves correctly but reports wrong commit timestamps;
     verify must still render byte-identically with ignore at every
     level x rt mode. *)
  List.iter
    (fun fault ->
      List.iter
        (fun engine_level ->
          for seed = 1 to 3 do
            let h = engine_history ~level:engine_level ~fault ~seed in
            List.iter
              (fun (level, rt_mode) ->
                checks
                  (Printf.sprintf "%s seed %d" (Fault.name fault) seed)
                  (render ?rt_mode ~ts:Ts.Ignore level h)
                  (render ?rt_mode ~ts:Ts.Verify level h))
              levels_rt
          done)
        [ Isolation.Serializable; Isolation.Snapshot ])
    ts_faults

let test_faulty_oracle_caught_or_harmless () =
  (* Same engine corpora: either certification flags a mismatched read,
     or the lies were mild enough that trust agrees with ignore too.
     SER/SI only, as in prop_lies_caught_or_harmless. *)
  List.iter
    (fun fault ->
      for seed = 1 to 3 do
        let h = engine_history ~level:Isolation.Snapshot ~fault ~seed in
        List.iter
          (fun level ->
            match Checker.check_report ~ts:Ts.Verify level h with
            | _, Some ts when ts.Ts.mismatched_reads > 0 -> ()
            | _, _ ->
                checks
                  (Printf.sprintf "%s seed %d harmless" (Fault.name fault)
                     seed)
                  (render ~ts:Ts.Ignore level h)
                  (render ~ts:Ts.Trust level h))
          [ Checker.SER; Checker.SI ]
      done)
    ts_faults

(* --- online ts modes --- *)

let stream_txns (p : Stream_gen.params) =
  let acc = ref [] in
  Stream_gen.generate p (fun t -> acc := t :: !acc);
  List.rev !acc

let test_online_ts_faithful_stream () =
  let p =
    {
      Stream_gen.default with
      Stream_gen.num_txns = 400;
      num_keys = 40;
      num_sessions = 4;
      seed = 7;
    }
  in
  let txns = stream_txns p in
  List.iter
    (fun level ->
      List.iter
        (fun ts ->
          match Online.check_stream ~ts ~level ~num_keys:40 txns with
          | Ok n -> checki "all accepted" 400 n
          | Error _ -> Alcotest.fail "clean stream must pass")
        Ts.all_modes)
    [ Checker.SSER; Checker.SER; Checker.SI ]

let test_online_ts_stats () =
  let p =
    {
      Stream_gen.default with
      Stream_gen.num_txns = 300;
      num_keys = 30;
      num_sessions = 4;
      seed = 11;
    }
  in
  let t = Online.create ~ts:Ts.Verify ~level:Checker.SER ~num_keys:30 () in
  List.iter
    (fun txn ->
      match Online.add_txn t txn with
      | Online.Ok_so_far -> ()
      | Online.Violation _ -> Alcotest.fail "clean stream must pass")
    (stream_txns p);
  let st = Online.stats t in
  checkb "fast reads happened" true (st.Online.s_ts_fast > 0);
  checki "no mismatches on a faithful stream" 0 st.Online.s_ts_mismatched

let test_online_ts_mismatch_fallback () =
  (* T3's start_ts predicts T2's write, but it read T1's value: the
     online certifier must count the mismatch, fall the key back to
     value resolution, and keep the stream passing (a stale read is
     SER-legal). *)
  let t = Online.create ~ts:Ts.Verify ~level:Checker.SER ~num_keys:2 () in
  let feed txn =
    match Online.add_txn t txn with
    | Online.Ok_so_far -> ()
    | Online.Violation _ -> Alcotest.fail "stream must stay clean"
  in
  feed (Txn.make ~id:1 ~session:1 ~start_ts:1 ~commit_ts:10 [ Op.Write (1, 11) ]);
  feed (Txn.make ~id:2 ~session:1 ~start_ts:12 ~commit_ts:20 [ Op.Write (1, 12) ]);
  feed (Txn.make ~id:3 ~session:2 ~start_ts:25 ~commit_ts:30 [ Op.Read (1, 11) ]);
  let st = Online.stats t in
  checki "one certification mismatch" 1 st.Online.s_ts_mismatched

let test_online_ts_requires_commit_order () =
  let t = Online.create ~ts:Ts.Trust ~level:Checker.SER ~num_keys:2 () in
  (match
     Online.add_txn t
       (Txn.make ~id:1 ~session:1 ~start_ts:1 ~commit_ts:10 [ Op.Write (1, 5) ])
   with
  | Online.Ok_so_far -> ()
  | Online.Violation _ -> Alcotest.fail "first txn must be accepted");
  Alcotest.check_raises "out-of-order commit rejected"
    (Invalid_argument "Online.add_txn: timestamp modes need commit-order streams")
    (fun () ->
      ignore
        (Online.add_txn t
           (Txn.make ~id:2 ~session:1 ~start_ts:2 ~commit_ts:5
              [ Op.Write (1, 6) ])))

(* --- the generator's ts knobs never touch ops or values --- *)

let test_stream_gen_knobs_preserve_ops () =
  let base =
    {
      Stream_gen.default with
      Stream_gen.num_txns = 200;
      num_keys = 20;
      num_sessions = 3;
      seed = 5;
    }
  in
  let ops_sig p =
    List.map
      (fun (t : Txn.t) -> (t.id, t.session, t.status, Array.to_list t.ops))
      (stream_txns p)
  in
  let ts_sig p =
    List.map (fun (t : Txn.t) -> (t.start_ts, t.commit_ts)) (stream_txns p)
  in
  let faithful = ops_sig base in
  checkb "ts-skew preserves ops" true
    (faithful = ops_sig { base with Stream_gen.ts_skew = 5 });
  checkb "ts-lie preserves ops" true
    (faithful = ops_sig { base with Stream_gen.ts_lie = 0.5 });
  List.iter
    (fun (t : Txn.t) ->
      checki "faithful start" (2 * t.id) t.start_ts;
      checki "faithful commit" ((2 * t.id) + 1) t.commit_ts)
    (stream_txns base);
  checkb "ts-lie actually changes timestamps" true
    (ts_sig base <> ts_sig { base with Stream_gen.ts_lie = 0.5 });
  checkb "ts-skew actually changes timestamps" true
    (ts_sig base <> ts_sig { base with Stream_gen.ts_skew = 5 })

let suite =
  [
    Alcotest.test_case "chain prediction" `Quick test_chain_predict;
    Alcotest.test_case "unsorted commits" `Quick test_chain_unsorted_commits;
    Alcotest.test_case "dup screen == unique_values" `Quick
      test_dup_screen_matches_unique_values;
    Alcotest.test_case "certification catches a lie" `Quick
      test_certification_catches_lie;
    Alcotest.test_case "inverted window reported" `Quick
      test_inverted_window_reported;
    Alcotest.test_case "bin writer rejects inverted window" `Quick
      test_bin_writer_rejects_inverted_window;
    Alcotest.test_case "faulty oracle: verify == ignore" `Quick
      test_faulty_oracle_verify_equals_ignore;
    Alcotest.test_case "faulty oracle: caught or harmless" `Quick
      test_faulty_oracle_caught_or_harmless;
    Alcotest.test_case "online ts: faithful stream" `Quick
      test_online_ts_faithful_stream;
    Alcotest.test_case "online ts: stats" `Quick test_online_ts_stats;
    Alcotest.test_case "online ts: mismatch fallback" `Quick
      test_online_ts_mismatch_fallback;
    Alcotest.test_case "online ts: commit order required" `Quick
      test_online_ts_requires_commit_order;
    Alcotest.test_case "stream gen: ts knobs preserve ops" `Quick
      test_stream_gen_knobs_preserve_ops;
    qtest prop_verify_equals_ignore;
    qtest prop_verify_equals_ignore_lying_clock;
    qtest prop_verify_equals_ignore_across_pools;
    qtest prop_trust_equals_ignore_on_faithful;
    qtest prop_lies_caught_or_harmless;
  ]
