bench/fig8.ml: Bench_util Checker Distribution Isolation List Option Polysi Printf Scheduler
