lib/workload/gt_gen.mli: Distribution Spec
