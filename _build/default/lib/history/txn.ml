type id = int

type status = Committed | Aborted

type t = {
  id : id;
  session : int;
  ops : Op.t array;
  status : status;
  start_ts : int;
  commit_ts : int;
}

let make ~id ~session ?(status = Committed) ?start_ts ?commit_ts ops =
  let start_ts = Option.value start_ts ~default:id in
  let commit_ts = Option.value commit_ts ~default:start_ts in
  { id; session; ops = Array.of_list ops; status; start_ts; commit_ts }

let is_committed t = t.status = Committed

(* Fold over ops keeping per-key first-external-read and last-write, in
   first-occurrence order.  These three projections are what the paper's
   [|-] judgements denote. *)

let external_reads t =
  let written = Hashtbl.create 4 in
  let seen = Hashtbl.create 4 in
  let acc = ref [] in
  Array.iter
    (fun op ->
      match op with
      | Op.Write (k, _) -> Hashtbl.replace written k ()
      | Op.Read (k, v) ->
          if (not (Hashtbl.mem written k)) && not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            acc := (k, v) :: !acc
          end)
    t.ops;
  List.rev !acc

let final_writes t =
  let last = Hashtbl.create 4 in
  let order = ref [] in
  Array.iter
    (fun op ->
      match op with
      | Op.Write (k, v) ->
          if not (Hashtbl.mem last k) then order := k :: !order;
          Hashtbl.replace last k v
      | Op.Read _ -> ())
    t.ops;
  List.rev_map (fun k -> (k, Hashtbl.find last k)) !order

let intermediate_writes t =
  let final = Hashtbl.create 4 in
  List.iter (fun (k, v) -> Hashtbl.replace final k v) (final_writes t);
  let acc = ref [] in
  Array.iter
    (fun op ->
      match op with
      | Op.Write (k, v) when Hashtbl.find final k <> v -> acc := (k, v) :: !acc
      | Op.Write _ | Op.Read _ -> ())
    t.ops;
  List.rev !acc

let read_of t k = List.assoc_opt k (external_reads t)
let write_of t k = List.assoc_opt k (final_writes t)
let reads_key t k = read_of t k <> None
let writes_key t k = write_of t k <> None

let keys t =
  let seen = Hashtbl.create 4 in
  let acc = ref [] in
  Array.iter
    (fun op ->
      let k = Op.key op in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        acc := k :: !acc
      end)
    t.ops;
  List.rev !acc

let pp ppf t =
  let status = match t.status with Committed -> "C" | Aborted -> "A" in
  Format.fprintf ppf "T%d[s%d,%s,%d..%d: %a]" t.id t.session status t.start_ts
    t.commit_ts
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Op.pp)
    (Array.to_list t.ops)

let pp_brief ppf t = Format.fprintf ppf "T%d" t.id
