type t = {
  history : History.t;
  committed : Txn.t array;
  vertex_of_txn : int array;
  final_writer : (Op.key * Op.value, Txn.id) Hashtbl.t;
  intermediate_writer : (Op.key * Op.value, Txn.id) Hashtbl.t;
  aborted_writer : (Op.key * Op.value, Txn.id) Hashtbl.t;
}

let build (h : History.t) =
  let n = History.num_txns h in
  let committed =
    Array.of_list (History.committed h)
  in
  let vertex_of_txn = Array.make n (-1) in
  Array.iteri (fun i (t : Txn.t) -> vertex_of_txn.(t.id) <- i) committed;
  let final_writer = Hashtbl.create (4 * n) in
  let intermediate_writer = Hashtbl.create 16 in
  let aborted_writer = Hashtbl.create 16 in
  Array.iter
    (fun (t : Txn.t) ->
      match t.status with
      | Txn.Committed ->
          List.iter
            (fun (k, v) -> Hashtbl.replace final_writer (k, v) t.id)
            (Txn.final_writes t);
          List.iter
            (fun (k, v) -> Hashtbl.replace intermediate_writer (k, v) t.id)
            (Txn.intermediate_writes t)
      | Txn.Aborted ->
          Array.iter
            (fun op ->
              match op with
              | Op.Write (k, v) -> Hashtbl.replace aborted_writer (k, v) t.id
              | Op.Read _ -> ())
            t.ops)
    h.txns;
  { history = h; committed; vertex_of_txn; final_writer; intermediate_writer;
    aborted_writer }

let num_vertices t = Array.length t.committed

let txn_of_vertex t v = t.committed.(v)

let vertex t id =
  let v = t.vertex_of_txn.(id) in
  if v < 0 then invalid_arg (Printf.sprintf "Index.vertex: T%d is aborted" id);
  v

type writer =
  | Final of Txn.id
  | Intermediate of Txn.id
  | Aborted of Txn.id
  | Nobody

let writer_of t k v =
  match Hashtbl.find_opt t.final_writer (k, v) with
  | Some id -> Final id
  | None -> (
      match Hashtbl.find_opt t.intermediate_writer (k, v) with
      | Some id -> Intermediate id
      | None -> (
          match Hashtbl.find_opt t.aborted_writer (k, v) with
          | Some id -> Aborted id
          | None -> Nobody))
