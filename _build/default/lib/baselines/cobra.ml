type stats = {
  constraints_total : int;
  constraints_pruned : int;
  construct_s : float;
  prune_s : float;
  encode_s : float;
  solve_s : float;
  sat_decisions : int;
  sat_conflicts : int;
}

type result = { serializable : bool; reason : string; stats : stats }

let total_s s = s.construct_s +. s.prune_s +. s.encode_s +. s.solve_s
let nonsolver_s s = s.construct_s +. s.prune_s +. s.encode_s

let empty_stats =
  {
    constraints_total = 0;
    constraints_pruned = 0;
    construct_s = 0.0;
    prune_s = 0.0;
    encode_s = 0.0;
    solve_s = 0.0;
    sat_decisions = 0;
    sat_conflicts = 0;
  }

let check h =
  match Polygraph.build h with
  | Error (Polygraph.Screen v) ->
      {
        serializable = false;
        reason = Format.asprintf "G1 screen: %a" Int_check.pp_violation v;
        stats = empty_stats;
      }
  | Error (Polygraph.Unresolved msg) ->
      { serializable = false; reason = msg; stats = empty_stats }
  | Ok pg -> (
      let n = Index.num_vertices pg.Polygraph.idx in
      let pr = Prune.run ~n pg ~use_anti:true in
      let stats =
        {
          empty_stats with
          constraints_total = Polygraph.num_constraints pg;
          constraints_pruned = pr.Prune.decided;
          construct_s = pg.Polygraph.construct_s;
          prune_s = pr.Prune.prune_s;
        }
      in
      match pr.Prune.contradiction with
      | Some (w1, w2) ->
          {
            serializable = false;
            reason =
              Printf.sprintf
                "writers %d and %d are ordered both ways by known edges" w1 w2;
            stats;
          }
      | None -> (
          let t0 = Unix.gettimeofday () in
          let acyc = Acyclicity.create ~n in
          let fixed_cycle =
            match
              Acyclicity.add_fixed_batch acyc
                (List.map (fun (_kind, u, v) -> (u, v)) pr.Prune.fixed)
            with
            | Ok () -> None
            | Error path -> Some path
          in
          match fixed_cycle with
          | Some path ->
              {
                serializable = false;
                reason =
                  Printf.sprintf "known edges form a cycle through [%s]"
                    (String.concat "," (List.map string_of_int path));
                stats = { stats with encode_s = Unix.gettimeofday () -. t0 };
              }
          | None ->
              let nvars = List.length pr.Prune.undecided in
              let solver =
                Solver.create ~theory:(Acyclicity.theory acyc) ~nvars ()
              in
              List.iteri
                (fun i (c : Polygraph.constr) ->
                  let edges choice =
                    List.map (fun (_k, u, v) -> (u, v)) choice
                  in
                  Acyclicity.attach acyc (Lit.make i true)
                    (edges c.Polygraph.if_w1_first);
                  Acyclicity.attach acyc (Lit.make i false)
                    (edges c.Polygraph.if_w2_first))
                pr.Prune.undecided;
              let encode_s = Unix.gettimeofday () -. t0 in
              let t1 = Unix.gettimeofday () in
              let outcome = Solver.solve solver in
              let solve_s = Unix.gettimeofday () -. t1 in
              let stats =
                {
                  stats with
                  encode_s;
                  solve_s;
                  sat_decisions = Solver.num_decisions solver;
                  sat_conflicts = Solver.num_conflicts solver;
                }
              in
              (match outcome with
              | Solver.Sat ->
                  { serializable = true; reason = "acyclic choice found"; stats }
              | Solver.Unsat ->
                  {
                    serializable = false;
                    reason = "every version order closes a dependency cycle";
                    stats;
                  })))
