test/test_core.ml: Alcotest Anomaly Builder Checker Db Deps Digraph Divergence Fault Index Int_check Isolation List Mt_gen Option Printf Report Scheduler String Txn
