(** The simulated database engine: a black-box key-value store offering
    the four isolation levels of {!Isolation}, with optional fault
    injection ({!Fault}) replicating known production bugs.

    The engine is single-threaded and driven op-by-op by the scheduler
    ({!Scheduler} in [mtc.runner]): each call advances a logical clock,
    and the clock values double as the wall-clock timestamps from which
    the history's real-time order is derived.

    Mechanisms per level:
    - [Read_committed]: reads see the latest committed version at the time
      of the read; commits install unconditionally (lost updates and
      non-repeatable reads are possible — this level is intentionally
      weak).
    - [Snapshot]: reads from the begin-time snapshot (own writes win);
      first-committer-wins aborts on write-write conflicts.
    - [Serializable]: Snapshot plus serializable-snapshot-isolation
      bookkeeping — a transaction with both an incoming and an outgoing
      rw-antidependency to concurrent transactions (a dangerous-structure
      pivot) is aborted at commit, as is a transaction whose commit would
      complete a pivot on an already-committed neighbour.
    - [Strict_serializable]: strict two-phase locking with wound-wait
      ({!Locking}); reads/writes may block or be doomed by a wound. *)

type config = {
  level : Isolation.level;
  fault : Fault.mode;
  num_keys : int;
  seed : int;
}

type t

val create : config -> t
val config : t -> config
val now : t -> int
(** Current logical clock. *)

type handle

val begin_txn : t -> session:int -> handle
val handle_id : handle -> Txn.id
val handle_session : handle -> int
val handle_start : handle -> int
val handle_ops : handle -> Op.t list
(** Client-visible operations recorded so far, in program order. *)

type read_result =
  | Rvalue of Op.value
  | Rblocked  (** lock conflict ([Strict_serializable] only): retry later *)
  | Rdoomed  (** wounded: the client must abort *)

type write_result = Wok | Wblocked | Wdoomed

val read : t -> handle -> Op.key -> read_result
val write : t -> handle -> Op.key -> Op.value -> write_result

type abort_reason =
  | Ww_conflict  (** first-committer-wins *)
  | Dangerous_structure  (** SSI pivot *)
  | Wounded
  | User_abort

val abort_reason_name : abort_reason -> string

type commit_result = Committed of int  (** commit timestamp *) | Rejected of abort_reason

val commit : t -> handle -> commit_result
(** On [Rejected] the transaction is already fully aborted (locks
    released, leak fault applied); do not call {!abort} afterwards. *)

val abort : t -> handle -> unit
(** Client-initiated abort; also the required reaction to
    [Rdoomed]/[Wdoomed]. *)

type stats = {
  mutable commits : int;
  mutable aborts_ww : int;
  mutable aborts_ssi : int;
  mutable aborts_wound : int;
  mutable aborts_user : int;
}

val stats : t -> stats
val total_aborts : stats -> int
