test/test_history.ml: Alcotest Array Builder Codec Filename History List Mini Op Result Sys Txn
