lib/runner/endtoend.ml: Anomaly Checker Db Format Gc Option Report Scheduler Spec Stats
