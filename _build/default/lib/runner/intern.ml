type t = { mutable next : int; table : (int, int list) Hashtbl.t }

let empty_id = 0

let create () =
  let table = Hashtbl.create 1024 in
  Hashtbl.replace table empty_id [];
  { next = 1; table }

let put t l =
  let id = t.next in
  t.next <- id + 1;
  Hashtbl.replace t.table id l;
  id

let get t id = Hashtbl.find t.table id
