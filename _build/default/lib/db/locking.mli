(** Strict two-phase locking with wound-wait deadlock avoidance, the
    engine behind the [Strict_serializable] level.

    Wound-wait: a requester older than a conflicting holder "wounds"
    (forces the abort of) the holder and proceeds; a younger requester
    waits.  Age is the transaction's start time, so the scheme is
    deadlock-free and starvation-free. *)

type t

val create : num_keys:int -> t

type outcome =
  | Granted
  | Blocked  (** a conflicting older transaction holds the lock *)
  | Granted_wounding of Txn.id list
      (** granted after wounding these younger holders; the caller must
          doom them (their locks are already released) *)

val acquire :
  t -> kind:[ `Shared | `Exclusive ] -> key:Op.key -> txn:Txn.id -> age:int ->
  outcome

val release_all : t -> txn:Txn.id -> unit

val held : t -> txn:Txn.id -> (Op.key * [ `Shared | `Exclusive ]) list
(** For tests and debugging. *)
