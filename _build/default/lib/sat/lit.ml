type var = int
type t = int

let make v positive = (2 * v) + if positive then 0 else 1
let var l = l lsr 1
let sign l = l land 1 = 0
let neg l = l lxor 1

let pp ppf l =
  Format.fprintf ppf "%s%d" (if sign l then "+" else "-") (var l)
