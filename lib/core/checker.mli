(** The MTC verification algorithms: CHECKSSER, CHECKSER and CHECKSI of
    paper Algorithm 1, sound and complete for mini-transaction histories
    (Theorems 3–5), with counterexample extraction.

    All three share the same pipeline: the INT screen first (ruling out
    THINAIRREAD, ABORTEDREAD and intra-transactional anomalies), then the
    (nearly unique) dependency graph, then an acyclicity check — plus, for
    SI only, the early DIVERGENCE screen and the
    [((SO ∪ WR ∪ WW) ; RW?)] composition.

    Complexities for n transactions: SER and SI run in Θ(n); SSER in
    Θ(n log n) with the default [Rt_sweep] real-time encoding or Θ(n²)
    with [Rt_naive] (the paper's analysis). *)

type level = SSER | SER | SI

val level_name : level -> string
val level_of_string : string -> level option

type violation =
  | Intra of Int_check.violation
      (** INT-screen failure: thin-air / aborted / intra-transactional *)
  | Diverged of Divergence.instance  (** SI only: the DIVERGENCE pattern *)
  | Cyclic of (Txn.id * Deps.dep * Txn.id) list
      (** a dependency cycle forbidden at the level *)
  | Malformed of string  (** non-unique values or unresolvable reads *)

type outcome = Pass | Fail of violation

val pp_violation : Format.formatter -> violation -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val check :
  ?rt_mode:Deps.rt_mode ->
  ?skew:int ->
  ?impl:Deps.impl ->
  ?pool:Pool.t ->
  ?ts:Ts.mode ->
  level ->
  History.t ->
  outcome
(** [rt_mode] and [skew] apply to SSER only (defaults: [Rt_sweep], 0).
    A positive [skew] tolerates client clock drift: real-time edges are
    only derived from gaps larger than the skew bound (see
    {!Deps.build}).

    [impl] (default [Deps.Direct]) selects the dependency-graph builder —
    and, for SI, the matching composition path: [Direct] composes
    [(SO ∪ WR ∪ WW) ; RW?] straight into a CSR with the same two-pass
    counting scheme; [Via_digraph] runs the seed's list-based pipeline.
    Both yield the same verdict on every history.

    [pool] (default none) runs the [Direct] pipeline's phases —
    unique-values, index, INT screen, divergence, sharded inference and
    the SI composition — across domains.  Verdicts, counterexamples and
    their rendering are bit-identical for every pool size: inference
    shards by a fixed stripe count and every first-violation selection
    breaks ties by scan position.

    [ts] (default [Ts.Ignore]) selects the timestamp mode (Vbox fast
    path, ROADMAP item 2): [Verify] predicts writers from commit
    timestamps, certifies every prediction against the value read and
    falls back per key on mismatch — same outcome and rendering as
    [Ignore], usually much faster; [Trust] skips certification and the
    duplicate-value screen entirely (fastest, but a lying oracle can
    change the verdict).  Forced to [Ignore] under [Via_digraph]. *)

val check_report :
  ?rt_mode:Deps.rt_mode ->
  ?skew:int ->
  ?impl:Deps.impl ->
  ?pool:Pool.t ->
  ?ts:Ts.mode ->
  level ->
  History.t ->
  outcome * Ts.t option
(** Like {!check}, additionally returning the timestamp state when a
    fast-path mode ran — {!Ts.render_report} on it describes any
    certification mismatches (evidence of a lying timestamp oracle,
    whether or not they changed the verdict).  [None] in [Ignore] mode
    or when the [Verify] duplicate screen failed before chains built. *)

val check_sser : ?rt_mode:Deps.rt_mode -> ?skew:int -> History.t -> outcome
val check_ser : History.t -> outcome
val check_si : History.t -> outcome

val passes : outcome -> bool

val ce_position : violation -> int option
(** Position (transaction id) of the first mini-transaction involved in
    the counterexample — the "CE position" column of paper Table II.
    [None] for [Malformed]. *)
