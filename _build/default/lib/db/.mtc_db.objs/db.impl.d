lib/db/db.ml: Fault Hashtbl Isolation List Locking Mvcc Op Rng Txn
