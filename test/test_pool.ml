(* Tests for the domain work pool (Pool) and the determinism contract of
   the parallel hunt: verdicts must be bit-identical for every [jobs]
   value. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Pool --- *)

let test_map_order () =
  Pool.with_pool ~size:4 (fun p ->
      let input = Array.init 100 (fun i -> i) in
      let out = Pool.map p (fun i -> i * i) input in
      let expected = Array.map (fun i -> i * i) input in
      checkb "ordered results" true (out = expected))

let test_map_list () =
  Pool.with_pool ~size:3 (fun p ->
      let out = Pool.map_list p string_of_int [ 3; 1; 4; 1; 5 ] in
      Alcotest.check
        (Alcotest.list Alcotest.string)
        "map_list order" [ "3"; "1"; "4"; "1"; "5" ] out)

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~size:4 (fun p ->
      let input = Array.init 50 (fun i -> i) in
      match Pool.map p (fun i -> if i mod 7 = 3 then raise (Boom i) else i) input with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          (* All tasks still ran; the lowest-indexed failure is re-raised. *)
          checki "lowest failing index" 3 i)

let test_reuse () =
  (* The same pool serves many jobs without respawning. *)
  Pool.with_pool ~size:2 (fun p ->
      for round = 1 to 20 do
        let out = Pool.map p (fun i -> i + round) (Array.init 10 (fun i -> i)) in
        checki "round result" (9 + round) out.(9)
      done)

let test_shutdown_rejects () =
  let p = Pool.create ~size:2 () in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.map p (fun i -> i) [| 1 |] with
  | _ -> Alcotest.fail "map after shutdown should fail"
  | exception Invalid_argument _ -> ()

let test_size_one_sequential () =
  Pool.with_pool ~size:1 (fun p ->
      checki "size" 1 (Pool.size p);
      let out = Pool.map p (fun i -> 2 * i) (Array.init 5 (fun i -> i)) in
      checki "works" 8 out.(4))

let test_run () =
  Pool.with_pool ~size:4 (fun p ->
      let hits = Array.make 8 0 in
      Pool.run p
        (List.init 8 (fun i -> fun () -> hits.(i) <- hits.(i) + 1));
      checkb "each thunk once" true (Array.for_all (fun h -> h = 1) hits))

(* --- hunt determinism across jobs --- *)

let faulty_db =
  { Db.level = Isolation.Snapshot; fault = Fault.Lost_update 0.3; num_keys = 5;
    seed = 1 }

let faulty_spec ~seed =
  Mt_gen.generate { Mt_gen.default with num_txns = 400; num_keys = 5; seed }

let same_outcome a b =
  let open Endtoend in
  checki "trials" a.trials b.trials;
  checki "committed_total" a.committed_total b.committed_total;
  checkb "violation presence" (a.violation <> None) (b.violation <> None);
  checkb "same ce_position" true (a.ce_position = b.ce_position);
  checkb "same anomaly" true (a.anomaly = b.anomaly)

let test_hunt_jobs_invariant () =
  let hunt jobs =
    Endtoend.hunt ~jobs ~db:faulty_db ~make_spec:faulty_spec ~level:Checker.SI
      ~max_trials:10 ()
  in
  let seq = hunt 1 in
  checkb "bug found at all" true (seq.Endtoend.violation <> None);
  same_outcome seq (hunt 4);
  same_outcome seq (hunt 3)

let test_hunt_clean_jobs_invariant () =
  let make_spec ~seed =
    Mt_gen.generate { Mt_gen.default with num_txns = 100; num_keys = 10; seed }
  in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 10;
      seed = 1 }
  in
  let hunt jobs =
    Endtoend.hunt ~jobs ~db ~make_spec ~level:Checker.SI ~max_trials:6 ()
  in
  let seq = hunt 1 in
  checkb "clean engine passes" true (seq.Endtoend.violation = None);
  checki "all trials used" 6 seq.Endtoend.trials;
  same_outcome seq (hunt 4)

let suite =
  [
    ("pool: map preserves input order", `Quick, test_map_order);
    ("pool: map_list", `Quick, test_map_list);
    ("pool: lowest-index exception wins", `Quick, test_exception_propagates);
    ("pool: reuse across jobs", `Quick, test_reuse);
    ("pool: shutdown rejects further use", `Quick, test_shutdown_rejects);
    ("pool: size 1 runs inline", `Quick, test_size_one_sequential);
    ("pool: run covers every index", `Quick, test_run);
    ("hunt: outcome invariant under jobs", `Quick, test_hunt_jobs_invariant);
    ("hunt: clean engine invariant under jobs", `Quick,
     test_hunt_clean_jobs_invariant);
  ]
