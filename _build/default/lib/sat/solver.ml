type theory = {
  on_assign : Lit.t -> Lit.t list option;
  on_unassign : Lit.t -> unit;
}

type clause = int array
(* Invariant: positions 0 and 1 are the watched literals. *)

type t = {
  nvars : int;
  theory : theory option;
  (* assignment state *)
  assign : int array;  (* per var: -1 unassigned, 0 false, 1 true *)
  level : int array;
  reason : clause option array;
  phase : bool array;
  mutable trail : int array;  (* literals in assignment order *)
  mutable trail_size : int;
  mutable qhead : int;
  mutable trail_lim : int list;  (* trail sizes at decision points, newest first *)
  (* clause database *)
  watches : clause list array;  (* indexed by literal *)
  mutable unsat : bool;
  mutable pending_units : int list;
  (* branching *)
  activity : float array;
  mutable var_inc : float;
  heap : int array;  (* binary max-heap of vars *)
  heap_pos : int array;  (* var -> heap index, -1 if absent *)
  mutable heap_size : int;
  (* stats *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable solved_sat : bool;
}

(* ------------------------------------------------------------------ *)
(* Variable-order heap (max-heap on activity).                         *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(parent)) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best))
  then best := l;
  if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    let last = s.heap.(s.heap_size) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  v

(* ------------------------------------------------------------------ *)

let create ?theory ~nvars () =
  let s =
    {
      nvars;
      theory;
      assign = Array.make nvars (-1);
      level = Array.make nvars 0;
      reason = Array.make nvars None;
      phase = Array.make nvars true;
      trail = Array.make (Stdlib.max 16 nvars) 0;
      trail_size = 0;
      qhead = 0;
      trail_lim = [];
      watches = Array.make (2 * Stdlib.max 1 nvars) [];
      unsat = false;
      pending_units = [];
      activity = Array.make nvars 0.0;
      var_inc = 1.0;
      heap = Array.make (Stdlib.max 1 nvars) 0;
      heap_pos = Array.make (Stdlib.max 1 nvars) (-1);
      heap_size = 0;
      conflicts = 0;
      decisions = 0;
      propagations = 0;
      solved_sat = false;
    }
  in
  for v = 0 to nvars - 1 do
    heap_insert s v
  done;
  s

let lit_value s l =
  match s.assign.(Lit.var l) with
  | -1 -> -1
  | v -> if Lit.sign l then v else 1 - v

let decision_level s = List.length s.trail_lim

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let decay s = s.var_inc <- s.var_inc /. 0.95

(* Returns a theory conflict clause (all-false literals), if any. *)
let enqueue s l reason =
  let v = Lit.var l in
  s.assign.(v) <- (if Lit.sign l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1;
  match s.theory with
  | None -> None
  | Some th -> (
      match th.on_assign l with
      | None -> None
      | Some true_lits -> Some (Array.of_list (List.map Lit.neg true_lits)))

let add_clause s lits =
  let lits = List.sort_uniq compare lits in
  let tautology =
    List.exists (fun l -> List.mem (Lit.neg l) lits) lits
  in
  if not tautology then
    match lits with
    | [] -> s.unsat <- true
    | [ l ] -> s.pending_units <- l :: s.pending_units
    | l0 :: l1 :: _ ->
        let c = Array.of_list lits in
        s.watches.(l0) <- c :: s.watches.(l0);
        s.watches.(l1) <- c :: s.watches.(l1)

let attach_learnt s c =
  if Array.length c >= 2 then begin
    s.watches.(c.(0)) <- c :: s.watches.(c.(0));
    s.watches.(c.(1)) <- c :: s.watches.(c.(1))
  end

(* Boolean constraint propagation.  Returns a conflicting clause. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = Lit.neg p in
    let ws = s.watches.(false_lit) in
    s.watches.(false_lit) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest -> (
          (* Normalize: the falsified watch sits at position 1. *)
          if c.(0) = false_lit then begin
            c.(0) <- c.(1);
            c.(1) <- false_lit
          end;
          if lit_value s c.(0) = 1 then begin
            (* Clause already satisfied: keep watching. *)
            s.watches.(false_lit) <- c :: s.watches.(false_lit);
            go rest
          end
          else
            (* Look for a replacement watch. *)
            let len = Array.length c in
            let rec find i =
              if i >= len then -1
              else if lit_value s c.(i) <> 0 then i
              else find (i + 1)
            in
            let i = find 2 in
            if i >= 0 then begin
              c.(1) <- c.(i);
              c.(i) <- false_lit;
              s.watches.(c.(1)) <- c :: s.watches.(c.(1));
              go rest
            end
            else if lit_value s c.(0) = 0 then begin
              (* All false: conflict.  Restore remaining watches. *)
              s.watches.(false_lit) <- c :: s.watches.(false_lit);
              List.iter
                (fun c' ->
                  s.watches.(false_lit) <- c' :: s.watches.(false_lit))
                rest;
              conflict := Some c
            end
            else begin
              (* Unit: propagate c.(0). *)
              s.watches.(false_lit) <- c :: s.watches.(false_lit);
              (match enqueue s c.(0) (Some c) with
              | None -> go rest
              | Some th_confl ->
                  List.iter
                    (fun c' ->
                      s.watches.(false_lit) <- c' :: s.watches.(false_lit))
                    rest;
                  conflict := Some th_confl)
            end)
    in
    go ws
  done;
  !conflict

(* First-UIP conflict analysis.  Returns (learnt clause, backjump level);
   learnt.(0) is the asserting literal. *)
let analyze s confl =
  let seen = Array.make s.nvars false in
  let learnt = ref [] in
  let counter = ref 0 in
  let idx = ref (s.trail_size - 1) in
  let confl = ref confl in
  let p = ref (-1) in
  let continue = ref true in
  while !continue do
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = Lit.var q in
          if (not seen.(v)) && s.level.(v) > 0 then begin
            seen.(v) <- true;
            bump s v;
            if s.level.(v) = decision_level s then incr counter
            else learnt := q :: !learnt
          end
        end)
      !confl;
    (* Walk back to the most recently assigned marked literal. *)
    while not seen.(Lit.var s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    decr idx;
    seen.(Lit.var q) <- false;
    decr counter;
    if !counter = 0 then begin
      p := Lit.neg q;
      continue := false
    end
    else begin
      p := q;
      confl :=
        (match s.reason.(Lit.var q) with
        | Some c -> c
        | None -> assert false (* decisions cannot be interior *))
    end
  done;
  let learnt = Array.of_list (!p :: !learnt) in
  (* Position 1 must hold the highest-level remaining literal. *)
  let bj_level =
    if Array.length learnt = 1 then 0
    else begin
      let best = ref 1 in
      for i = 2 to Array.length learnt - 1 do
        if s.level.(Lit.var learnt.(i)) > s.level.(Lit.var learnt.(!best))
        then best := i
      done;
      let tmp = learnt.(1) in
      learnt.(1) <- learnt.(!best);
      learnt.(!best) <- tmp;
      s.level.(Lit.var learnt.(1))
    end
  in
  (learnt, bj_level)

let backjump s target_level =
  if target_level >= decision_level s then ()
  else begin
  let keep =
    let rec nth_lim lims n =
      match lims with
      | [] -> 0
      | size :: rest -> if n = 0 then size else nth_lim rest (n - 1)
    in
    (* trail_lim is newest-first; the size to cut to for target L is the
       (depth - L)-th element from the newest, i.e. index (depth - L - 1). *)
    nth_lim s.trail_lim (decision_level s - target_level - 1)
  in
  while s.trail_size > keep do
    s.trail_size <- s.trail_size - 1;
    let l = s.trail.(s.trail_size) in
    let v = Lit.var l in
    s.phase.(v) <- Lit.sign l;
    s.assign.(v) <- -1;
    s.reason.(v) <- None;
    (match s.theory with Some th -> th.on_unassign l | None -> ());
    heap_insert s v
  done;
  let rec drop lims n = if n = 0 then lims else drop (List.tl lims) (n - 1) in
  s.trail_lim <- drop s.trail_lim (decision_level s - target_level);
  s.qhead <- s.trail_size
  end

type outcome = Sat | Unsat

exception Found_unsat

let solve s =
  if s.unsat then Unsat
  else
    try
      (* Level-0 units. *)
      List.iter
        (fun l ->
          match lit_value s l with
          | 1 -> ()
          | 0 -> raise Found_unsat
          | _ -> (
              match enqueue s l None with
              | None -> ()
              | Some _ -> raise Found_unsat))
        (List.rev s.pending_units);
      s.pending_units <- [];
      let restart_limit = ref 100 in
      let conflicts_since_restart = ref 0 in
      (* Learn from a conflict, backjump, assert; the asserted literal may
         itself be rejected by the theory, in which case we recurse. *)
      let rec handle_conflict confl =
        s.conflicts <- s.conflicts + 1;
        incr conflicts_since_restart;
        if decision_level s = 0 then raise Found_unsat;
        let learnt, bj = analyze s confl in
        backjump s bj;
        decay s;
        let next =
          if Array.length learnt = 1 then enqueue s learnt.(0) None
          else begin
            attach_learnt s learnt;
            enqueue s learnt.(0) (Some learnt)
          end
        in
        match next with None -> () | Some confl' -> handle_conflict confl'
      in
      let rec loop () =
        match propagate s with
        | Some confl ->
            handle_conflict confl;
            loop ()
        | None ->
            if !conflicts_since_restart > !restart_limit then begin
              conflicts_since_restart := 0;
              restart_limit := !restart_limit * 3 / 2;
              backjump s 0;
              loop ()
            end
            else begin
              let rec pick () =
                if s.heap_size = 0 then None
                else
                  let v = heap_pop s in
                  if s.assign.(v) < 0 then Some v else pick ()
              in
              match pick () with
              | None -> s.solved_sat <- true
              | Some v -> (
                  s.decisions <- s.decisions + 1;
                  s.trail_lim <- s.trail_size :: s.trail_lim;
                  let l = Lit.make v s.phase.(v) in
                  match enqueue s l None with
                  | None -> loop ()
                  | Some th_confl ->
                      handle_conflict th_confl;
                      loop ())
            end
      in
      loop ();
      if s.solved_sat then Sat else Unsat
    with Found_unsat ->
      s.unsat <- true;
      Unsat

let value s v =
  if not s.solved_sat then invalid_arg "Solver.value: no model";
  s.assign.(v) = 1

let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
