(** Incremental topological order maintenance (Pearce & Kelly, 2006).

    Supports online edge insertion into a DAG in amortized sub-linear time,
    reporting a cycle witness when an insertion would create one.  This is
    the engine behind the SAT acyclicity theory (our MonoSAT-lite) and the
    streaming {!Online} checker.

    The structure is flat ints throughout: {!Int_vec} successor and
    predecessor vectors per vertex, one open-addressed int set for edge
    membership, and epoch-stamped scratch arrays reused across calls — an
    accepted insertion that needs no reordering allocates nothing, and a
    reordering insertion allocates only amortized vector growth. *)

type t

val create : int -> t
(** [create n]: empty DAG on [0 .. n-1], initial order is the identity. *)

val n : t -> int

val ensure : t -> int -> unit
(** [ensure t n] grows the vertex set in place to at least [n] (no-op if
    already that large).  New vertices are isolated and take the largest
    order indices, so existing edges and the maintained order are
    untouched — callers need not replay anything after a grow. *)

val num_edges : t -> int
(** Distinct edges currently in the structure (duplicates are never
    double-counted; {!remove_edge} decrements). *)

val add_edge : t -> int -> int -> (unit, int list) result
(** [add_edge t u v] inserts [u -> v].  [Error path] means the edge closes a
    cycle; [path] is a vertex path [v; ...; u] along existing edges, so the
    full cycle is [u -> v -> ... -> u].  The structure is unchanged on
    error.  Self-edges always fail with [Error [u]].  Inserting an edge
    already present is [Ok ()] and changes nothing. *)

val mem_edge : t -> int -> int -> bool

val remove_edge : t -> int -> int -> unit
(** Remove an edge if present.  The maintained order stays valid: deleting
    edges never invalidates a topological order, so removal is O(degree) —
    which is what makes the structure usable under SAT backtracking. *)

val order_index : t -> int -> int
(** Current topological index of a vertex. *)

val iter_succ : t -> int -> (int -> unit) -> unit
(** Iterate the successors of a vertex, in recorded (push) order. *)

val words : t -> int
(** Rough size of the structure in words: order/scratch arrays, the
    adjacency vectors' capacity and the edge set.  O(n). *)

val compact : ?on_edge:(int -> int -> int -> int -> unit) -> t -> keep:bool array -> int array
(** [compact t ~keep] drops every vertex [v] with [keep.(v) = false] and
    renumbers the survivors to a dense prefix in vertex-index order,
    returning the old-to-new remap ([-1] for dropped vertices).  The
    survivors' relative topological order is preserved exactly, so
    subsequent insertions behave (and render witnesses) identically to
    the uncompacted structure up to the renumbering.  Edges with a
    dropped endpoint are discarded; {!num_edges} reflects the surviving
    count.  [on_edge old_u old_v new_u new_v] is called once per
    surviving edge during the rebuild, letting callers migrate
    edge-keyed side tables in the same pass.

    Soundness precondition (caller's obligation): no future [add_edge]
    names a dropped vertex. *)

val check_invariant : t -> bool
(** For tests: every recorded edge goes forward in the maintained order,
    the order is a permutation, and adjacency / edge set / edge count
    agree. *)

val encode : Buffer.t -> t -> unit
(** Snapshot serialization: the successor/predecessor vectors and the
    order permutation are written verbatim, so the decoded structure
    discovers (and therefore renders) cycle witnesses byte-identically
    to the source.  Derivable state (edge set, counters, DFS scratch) is
    not written. *)

val decode : Binio_core.reader -> t
(** Inverse of {!encode}; rebuilds the edge set and validates
    {!check_invariant}.
    @raise Binio_core.Decode_error on truncated, malformed or
    invariant-violating input. *)
