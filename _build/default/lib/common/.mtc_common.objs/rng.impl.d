lib/common/rng.ml: Array Int64 List Stdlib
