type injection = No_injection | Rt_violation | Phantom_write | Split_brain

type params = {
  num_sessions : int;
  txns_per_session : int;
  num_keys : int;
  concurrent_pct : float;
  read_pct : float;
  seed : int;
  inject : injection;
}

let default =
  {
    num_sessions = 16;
    txns_per_session = 250;
    num_keys = 4;
    concurrent_pct = 0.5;
    read_pct = 0.0;
    seed = 42;
    inject = No_injection;
  }

(* Events in generation order are the intended linearization; event [i]
   linearizes at time 10*i + 5.  A session's successive events are
   [num_sessions] slots apart, so a half-width below 5*num_sessions keeps
   each session internally sequential. *)
let generate p =
  if p.num_sessions <= 0 then invalid_arg "Lwt_gen.generate: no sessions";
  let rng = Rng.create p.seed in
  let total = p.num_sessions * p.txns_per_session in
  let concurrent_sessions =
    int_of_float (ceil (p.concurrent_pct *. float_of_int p.num_sessions))
  in
  let current : (Op.key, Op.value) Hashtbl.t = Hashtbl.create 16 in
  let counter = ref 0 in
  let fresh k =
    incr counter;
    (k * 1_000_000) + !counter
  in
  let events = ref [] in
  for i = 0 to total - 1 do
    let session = (i mod p.num_sessions) + 1 in
    let k =
      (* Touch every key early so each has its insert. *)
      if i < p.num_keys then i else Rng.int rng p.num_keys
    in
    let lin = (10 * i) + 5 in
    let wide = session <= concurrent_sessions in
    let spread =
      if wide then 2 + Rng.int rng (Stdlib.max 1 ((4 * p.num_sessions) - 2))
      else 1 + Rng.int rng 2
    in
    let op =
      match Hashtbl.find_opt current k with
      | None ->
          let v = fresh k in
          Hashtbl.replace current k v;
          Lwt.Insert { key = k; value = v }
      | Some v when Rng.chance rng p.read_pct ->
          (* A failed CAS: observes the current value, writes nothing. *)
          Lwt.Read { key = k; value = v }
      | Some v ->
          let v' = fresh k in
          Hashtbl.replace current k v';
          Lwt.Rw { key = k; expected = v; new_value = v' }
    in
    events :=
      { Lwt.id = i; session; op; start = lin - spread; finish = lin + spread }
      :: !events
  done;
  let events = List.rev !events in
  let events =
    match p.inject with
    | No_injection -> events
    | Rt_violation -> (
        (* Pick two chain neighbours on key 0 and push the later one
           entirely before the earlier one's start. *)
        let on_key0 =
          List.filter (fun e -> Lwt.key_of_event e = 0) events
        in
        match on_key0 with
        | a :: b :: _ ->
            List.map
              (fun (e : Lwt.event) ->
                if e.id = b.Lwt.id then
                  { e with start = a.Lwt.start - 10; finish = a.Lwt.start - 5 }
                else e)
              events
        | _ -> events)
    | Phantom_write -> (
        (* Drop a mid-chain CAS: its write took effect (the successor
           consumed its value) but the client was told it failed, so the
           client log records only a plain read of the prior value. *)
        let victims =
          List.filter
            (fun (e : Lwt.event) ->
              match e.op with Lwt.Rw _ -> true | _ -> false)
            events
        in
        match victims with
        | [] -> events
        | _ ->
            let victim = List.nth victims (List.length victims / 2) in
            List.map
              (fun (e : Lwt.event) ->
                if e.id = victim.Lwt.id then
                  match e.op with
                  | Lwt.Rw { key; expected; _ } ->
                      { e with op = Lwt.Read { key; value = expected } }
                  | _ -> e
                else e)
              events)
    | Split_brain -> (
        (* Duplicate a CAS under a different session: both consumed the
           same expected value. *)
        let victims =
          List.filter
            (fun (e : Lwt.event) ->
              match e.op with Lwt.Rw _ -> true | _ -> false)
            events
        in
        match victims with
        | [] -> events
        | _ -> (
            let v = List.nth victims (List.length victims / 2) in
            match v.Lwt.op with
            | Lwt.Rw { key; expected; _ } ->
                let dup =
                  {
                    Lwt.id = total;
                    session = (v.Lwt.session mod p.num_sessions) + 1;
                    op =
                      Lwt.Rw { key; expected; new_value = fresh key };
                    start = v.Lwt.start + 1;
                    finish = v.Lwt.finish + 1;
                  }
                in
                events @ [ dup ]
            | _ -> events))
  in
  Lwt.make ~num_keys:p.num_keys ~num_sessions:p.num_sessions events
