lib/core/online.mli: Checker Txn
