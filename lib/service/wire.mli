(** The MTC service wire protocol: compact length-prefixed binary frames
    over a byte stream.

    Layout of every frame: a [u32] big-endian payload length, then a one
    byte tag, then the tag-specific payload with varint-encoded integers
    and length-prefixed strings (see {!Binio}).  A connection starts with
    a versioned handshake ([Hello] → [Welcome] or [Error]); after that,
    frames are session-multiplexed — each [Open_session] creates an
    independent online checker on the server, and [Feed] / [Verdict] /
    [Sync] / [Throttle] frames name it by session id.

    Flow control: the server bounds each session's ingress queue.  When a
    session crosses its high-water mark the server emits
    [Throttle {queued}] (advisory — the hard backpressure is the server
    simply not reading, which TCP propagates), and [Resume] once the
    queue drains.  After a [Verdict] carrying a violation the session is
    poisoned: every further [Feed]/[Sync] is answered with the same
    rendered counterexample. *)

val magic : string

val version : int
(** Protocol version 5: v2 gave [Open_session] a trailing timestamp-mode
    byte (0 = ignore, 1 = trust, 2 = verify — the Vbox fast path of
    {!Ts}); v3 added [Resume_session]/[Session_resumed] for re-attaching
    sessions that survived a server restart; v4 gives [Open_session] a
    trailing watermark-GC policy (byte 0 = server default, 1 = off,
    2 = auto, 3 = word ceiling followed by its uvarint); v5 adds
    [Session_stats_request]/[Session_stats_reply] (per-session telemetry
    plus the service event journal) and the [R_pinned] close reason.
    The handshake refuses other versions. *)

val max_frame : int
(** Upper bound on a payload length; longer prefixes are protocol
    errors (guards the server against hostile allocations). *)

type verdict =
  | V_ok of int  (** transactions accepted so far *)
  | V_violation of { anomaly : string option; rendered : string }
      (** [anomaly] is the Figure-5 catalogue name when classifiable;
          [rendered] the printable counterexample *)

type close_reason =
  | R_requested  (** client sent [Close_session] *)
  | R_idle  (** idle-session timeout *)
  | R_shutdown  (** server draining for shutdown *)
  | R_protocol of string  (** session-fatal protocol misuse *)
  | R_pinned
      (** fenced by the horizon-pin detector ([--pin-fence close]): the
          session stalled while pinning the GC watermark *)

type session_stat = {
  ss_sid : int;
  ss_shard : int;
  ss_level : Checker.level;
  ss_poisoned : bool;
  ss_pinned : bool;  (** flagged by the horizon-pin detector *)
  ss_frontier : int;  (** transactions fed to this session's checker *)
  ss_watermark : int;
      (** the checker's current GC horizon position; [-1] before any
          feed *)
  ss_lag : int;
      (** [frontier - watermark]: arrivals the slowest internal stream
          session pins against GC (0 when the watermark is vacuous) *)
  ss_live_words : int;  (** retained-memory estimate *)
  ss_queued : int;  (** ingress queue depth right now *)
  ss_last_seq : int;  (** highest applied feed sequence number *)
  ss_feeds : int;  (** feeds accepted over the session's lifetime *)
  ss_age_ms : int;  (** since the session opened *)
  ss_idle_ms : int;  (** since the last frame from its client *)
}
(** One live session's telemetry inside a [Session_stats_reply]. *)

type journal_event = {
  je_kind : Obs.Journal.kind;
  je_age_ms : int;
      (** ms before the reply was built (monotonic clocks don't
          travel) *)
  je_dom : int;
  je_a : int;
  je_b : int;
  je_c : int;
}
(** One {!Obs.Journal} event inside a [Session_stats_reply]; the payload
    words [a]/[b]/[c] are per-kind (see {!Obs.Journal.kind}). *)

type frame =
  | Hello of { version : int }
  | Welcome of { version : int; server : string }
  | Open_session of {
      level : Checker.level;
      num_keys : int;
      skew : int;
      ts : Ts.mode;  (** timestamp fast path for this session's checker *)
      gc : Online.gc option;
          (** watermark-GC policy; [None] = the server's default *)
    }
  | Session_opened of { sid : int }
  | Feed of { sid : int; seq : int; txn : Txn.t }
  | Verdict of { sid : int; seq : int; verdict : verdict }
  | Sync of { sid : int; seq : int }
      (** ask for the session's current verdict; answered by [Verdict]
          with the same [seq] *)
  | Throttle of { sid : int; queued : int }
  | Resume of { sid : int }
  | Stats_request
  | Stats_reply of { json : string }
  | Close_session of { sid : int }
  | Session_closed of { sid : int; reason : close_reason }
  | Error of { code : int; msg : string }
  | Bye
  | Resume_session of { sid : int }
      (** re-attach a session restored from the WAL/snapshot after a
          server restart; answered by [Session_resumed] (or [Error] with
          {!err_unknown_session}) *)
  | Session_resumed of { sid : int; last_seq : int }
      (** [last_seq] is the highest applied feed sequence number — the
          client skips transactions up to and including it *)
  | Session_stats_request
      (** per-session telemetry + buffered journal events; answered by
          [Session_stats_reply] *)
  | Session_stats_reply of {
      sessions : session_stat list;
      events : journal_event list;
      journal_dropped : int;
          (** journal events lost to ring overwrite since startup *)
    }

val err_bad_magic : int
val err_version : int
val err_bad_frame : int
val err_unknown_session : int

val frame_name : frame -> string

val encode : scratch:Buffer.t -> Buffer.t -> frame -> unit
(** [encode ~scratch out f] appends the length-prefixed encoding of [f]
    to [out]; [scratch] is clobbered.  Reuse both buffers across frames
    to keep steady-state encoding allocation-free. *)

val decode : string -> (frame, string) result
(** Decode one frame payload (without the length prefix).  Total: any
    malformed input yields [Error], never an exception. *)

val to_string : frame -> string
(** Convenience: the full length-prefixed encoding as a fresh string. *)

val of_string : ?pos:int -> string -> (frame * int, string) result
(** Parse one full length-prefixed frame at [pos]; also returns the
    position just past it. *)

(** {1 Blocking frame I/O over file descriptors} (EINTR-safe) *)

type out_bufs

val out_bufs : unit -> out_bufs
(** Reusable encode buffers; one per connection (guard with the
    connection's output lock). *)

val write_frame : Unix.file_descr -> out_bufs -> frame -> unit
(** @raise Unix.Unix_error when the peer is gone. *)

val read_frame : Unix.file_descr -> (frame option, string) result
(** [Ok None] on clean EOF at a frame boundary; [Error _] on truncated
    or malformed input, or a read error. *)
