(** Plain-text serialization of histories (one transaction per line),
    so that histories can be archived, diffed, and re-checked from the
    command line:

    {v
    mtc-history v1
    keys 4
    sessions 2
    txn 1 1 C 2 3 R(x0)=0 W(x0):=101
    txn 2 2 A 2 4 R(x1)=0
    v}

    Fields of a [txn] line: id, session, status (C/A), start_ts,
    commit_ts, then the operations in program order.  The initial
    transaction is implicit and not serialized. *)

val to_string : History.t -> string

val of_string : string -> (History.t, string) result
(** Total: malformed input — truncated ops, bad status, duplicate or
    out-of-order transaction ids, sessions/keys out of range — yields
    [Error] naming the offending (1-based) line, never an exception. *)

val save : string -> History.t -> unit
(** [save path h] writes [to_string h] to [path]. *)

(** {1 Binary format}

    A compact framing of the same data for large corpora:
    ["mtcbin1\n"] magic, varint header (keys, sessions, block size),
    {!Binio.add_txn} records for ids 1..n grouped into fixed-size
    blocks, then a footer listing every block's byte offset and a
    fixed-width trailer pointing at the footer.  Loading mmaps the file
    ({!Binio.Source.map_file}) — nothing is copied into the heap before
    decoding — and, given a pool, decodes disjoint block ranges on
    separate domains. *)

module Bin_writer : sig
  type t

  val create :
    ?block_size:int -> num_keys:int -> num_sessions:int -> string -> t
  (** Streaming writer: transactions are encoded and flushed as they
      arrive, so multi-million-txn corpora never sit in RAM.
      [block_size] (default 4096) is the parallel-decode granularity.
      @raise Invalid_argument if [block_size < 1]. *)

  val add : t -> Txn.t -> unit
  (** Append the next transaction.  Ids must arrive as the dense
      sequence 1..n (the initial transaction is implicit); sessions and
      keys must be in range; the timestamp window must be well-formed
      ([start_ts <= commit_ts]).  @raise Invalid_argument otherwise. *)

  val close : t -> unit
  (** Write the footer and trailer and close the file.  Idempotent. *)
end

val save_bin : ?block_size:int -> string -> History.t -> unit

val load_bin : ?pool:Pool.t -> string -> (History.t, string) result
(** Zero-copy load: mmaps [path] and decodes block ranges concurrently
    on [pool] if given.  Total like {!of_string}: malformed input —
    bad magic, truncated records, id gaps, out-of-range sessions or
    keys — yields [Error], never an exception. *)

type format = Auto | Text | Bin

val format_of_string : string -> format option

val load :
  ?format:format -> ?pool:Pool.t -> string -> (History.t, string) result
(** [load path] reads either format; [Auto] (the default) sniffs the
    8-byte magic. *)
