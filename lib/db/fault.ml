type mode =
  | No_fault
  | Lost_update of float
  | Aborted_read of float
  | Causality_violation of float
  | Write_skew of float
  | Long_fork of float
  | Ts_skew of float
  | Ts_reorder of float
  | Ts_dup of float

let name = function
  | No_fault -> "none"
  | Lost_update _ -> "lost-update"
  | Aborted_read _ -> "aborted-read"
  | Causality_violation _ -> "causality-violation"
  | Write_skew _ -> "write-skew"
  | Long_fork _ -> "long-fork"
  | Ts_skew _ -> "ts-skew"
  | Ts_reorder _ -> "ts-reorder"
  | Ts_dup _ -> "ts-dup"

let probability = function
  | No_fault -> 0.0
  | Lost_update p | Aborted_read p | Causality_violation p | Write_skew p
  | Long_fork p | Ts_skew p | Ts_reorder p | Ts_dup p ->
      p

let all_named =
  [
    ("lost-update", fun p -> Lost_update p);
    ("aborted-read", fun p -> Aborted_read p);
    ("causality-violation", fun p -> Causality_violation p);
    ("write-skew", fun p -> Write_skew p);
    ("long-fork", fun p -> Long_fork p);
    ("ts-skew", fun p -> Ts_skew p);
    ("ts-reorder", fun p -> Ts_reorder p);
    ("ts-dup", fun p -> Ts_dup p);
  ]

let of_string ?(p = 0.2) s =
  if s = "none" then Some No_fault
  else Option.map (fun mk -> mk p) (List.assoc_opt s all_named)
