lib/db/mvcc.mli: Op Txn
