(** Blocking client for the MTC checking service — the library behind
    [mtc feed], the end-to-end service tests and the throughput bench.

    Single-threaded: writes are synchronous; reads are blocking when a
    specific reply is awaited and opportunistic (zero-timeout poll)
    before each {!feed}, so an early violation verdict or a throttle
    advisory is noticed while streaming without paying a round-trip per
    transaction. *)

type t

val connect : Server.addr -> (t, string) result
(** Connect and run the versioned handshake. *)

val close : t -> unit
(** Send [Bye] and close the socket. *)

val server_name : t -> string
(** Server banner from the [Welcome] frame. *)

val throttles : t -> int
(** Number of [Throttle] advisories received so far. *)

val open_session :
  t -> level:Checker.level -> num_keys:int -> ?skew:int -> ?ts:Ts.mode ->
  ?gc:Online.gc -> unit -> (int, string) result
(** Open an independent checker session; returns its session id.  [ts]
    (default [Ts.Ignore]) selects the server-side timestamp fast path —
    in trust or verify mode, feed committed transactions in commit-ts
    order ({!stream_order} already is).  [gc] overrides the server's
    default watermark-GC policy for this session ({!Online.gc}); omit it
    to inherit the server's [--gc-watermark] setting. *)

val resume_session : t -> sid:int -> (int, string) result
(** Re-attach to a session that survived a server restart
    ([mtc serve --wal-dir]); returns the server's last durably logged
    feed sequence number.  Continue feeding with explicit {!feed}
    [?seq] values strictly above it — anything at or below is a replay
    duplicate the server silently drops. *)

type feed_outcome =
  | Accepted  (** enqueued; no verdict yet *)
  | Early_verdict of Wire.verdict
      (** the server already reported a violation — stop streaming *)

val feed : ?seq:int -> t -> sid:int -> Txn.t -> (feed_outcome, string) result
(** [?seq] pins the frame's sequence number (use the transaction's
    position so it doubles as the durable-resume cursor); default is the
    client's internal counter. *)

val seq_floor : t -> int -> unit
(** Raise the internal sequence counter to at least [n], keeping
    internally numbered frames (syncs) clear of explicit feed seqs. *)

val sync : t -> sid:int -> (Wire.verdict, string) result
(** Round-trip: the session's current verdict ([V_ok n] after [n]
    accepted transactions, or the poisoned counterexample). *)

val stats : t -> (string, string) result
(** The server's metrics snapshot as JSON. *)

val session_stats :
  t ->
  (Wire.session_stat list * Wire.journal_event list * int, string) result
(** Per-session telemetry plus the tail of the server's event journal
    (newest events, capped server-side) and the journal's cumulative
    dropped-event count — the wire behind [mtc stats --sessions],
    [--events] and [mtc top]. *)

val close_session : t -> sid:int -> (unit, string) result

val session_closed : t -> sid:int -> Wire.close_reason option
(** Whether the server closed this session (idle timeout, shutdown,
    protocol error), as observed from already-received frames. *)

val stream_order : History.t -> Txn.t list
(** A history's transactions sorted by (commit_ts, id) — the order a
    monitoring proxy would deliver them in. *)

val feed_history :
  ?resume_from:int -> t -> sid:int -> History.t -> (Wire.verdict, string) result
(** Stream a whole history in {!stream_order} with position-based feed
    seqs, stopping early on a violation verdict, then {!sync} for the
    final verdict.  [?resume_from] (a {!resume_session} result) skips
    the prefix the server already holds. *)
