lib/db/isolation.mli: Checker
