lib/graph/topo.mli: Digraph
