(* Figure 9: SSER (linearizability) verification on synthetic LWT
   histories — MTC-SSER (VL-LWT) vs Porcupine, across (a) the percentage
   of concurrent sessions and (b) #txns. *)

let row label params =
  let h = Lwt_gen.generate params in
  let mtc = Bench_util.time_median (fun () -> Lwt_checker.check h) in
  let porc_res = ref None in
  let porc =
    Bench_util.time_median ~repeat:1 (fun () ->
        porc_res := Some (Porcupine.check h))
  in
  let states = (Option.get !porc_res).Porcupine.visited_states in
  [
    label;
    Bench_util.ms mtc;
    Bench_util.ms porc;
    Printf.sprintf "%.0fx" (porc /. mtc);
    string_of_int states;
  ]

let header =
  [ "config"; "MTC-SSER (ms)"; "Porcupine (ms)"; "speedup"; "porc states" ]

let run () =
  Bench_util.section
    "Figure 9: SSER verification on LWT histories, MTC-SSER vs Porcupine";

  let per_session = Bench_util.scale 400 in
  Bench_util.subsection "(a) % concurrent sessions (24 sessions x 400 txns, 4 keys)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun pct ->
         row
           (Printf.sprintf "%d%% concurrent" (int_of_float (100.0 *. pct)))
           { Lwt_gen.num_sessions = 24; txns_per_session = per_session;
             num_keys = 4; concurrent_pct = pct; read_pct = 0.3; seed = 301;
             inject = Lwt_gen.No_injection })
       (Bench_util.sweep [ 0.0; 0.25; 0.5; 0.75; 1.0 ]));

  Bench_util.subsection "(b) #txns (24 sessions, 4 keys, 50% concurrent)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun per_session ->
         row
           (Printf.sprintf "%d txns" (24 * per_session))
           { Lwt_gen.num_sessions = 24; txns_per_session = per_session;
             num_keys = 4; concurrent_pct = 0.5; read_pct = 0.3; seed = 302;
             inject = Lwt_gen.No_injection })
       (Bench_util.sweep (List.map Bench_util.scale [ 100; 200; 400; 800 ])))
