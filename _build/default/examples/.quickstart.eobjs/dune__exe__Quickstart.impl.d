examples/quickstart.ml: Builder Checker Codec Db Fault Filename Format History Isolation List Mt_gen Report Scheduler Sys
