type t = {
  fwd : (int, unit) Hashtbl.t array;  (** successor sets *)
  bwd : (int, unit) Hashtbl.t array;  (** predecessor sets *)
  ord : int array;  (** vertex -> topological index (a permutation) *)
}

let create n =
  {
    fwd = Array.init n (fun _ -> Hashtbl.create 4);
    bwd = Array.init n (fun _ -> Hashtbl.create 4);
    ord = Array.init n (fun i -> i);
  }

let n t = Array.length t.ord

let mem_edge t u v = Hashtbl.mem t.fwd.(u) v

let remove_edge t u v =
  Hashtbl.remove t.fwd.(u) v;
  Hashtbl.remove t.bwd.(v) u

let order_index t v = t.ord.(v)

(* Forward DFS from [v] visiting only vertices with ord <= ub.  Returns
   either the visited set or, if [target] is reached, the path to it. *)
let dfs_forward t v ~ub ~target =
  let visited = Hashtbl.create 16 in
  let parent = Hashtbl.create 16 in
  let exception Hit in
  let rec go u =
    if u = target then raise Hit;
    Hashtbl.replace visited u ();
    Hashtbl.iter
      (fun w () ->
        if t.ord.(w) <= ub && not (Hashtbl.mem visited w) then begin
          Hashtbl.replace parent w u;
          if w = target then raise Hit else go w
        end)
      t.fwd.(u)
  in
  try
    go v;
    Ok visited
  with Hit ->
    let rec path acc u = if u = v then u :: acc else path (u :: acc) (Hashtbl.find parent u) in
    Error (path [] target)

let dfs_backward t u ~lb =
  let visited = Hashtbl.create 16 in
  let rec go x =
    Hashtbl.replace visited x ();
    Hashtbl.iter
      (fun w () ->
        if t.ord.(w) >= lb && not (Hashtbl.mem visited w) then go w)
      t.bwd.(x)
  in
  go u;
  visited

let add_edge t u v =
  if u = v then Error [ u ]
  else if mem_edge t u v then Ok ()
  else if t.ord.(u) < t.ord.(v) then begin
    (* Already consistent with the order: just record. *)
    Hashtbl.replace t.fwd.(u) v ();
    Hashtbl.replace t.bwd.(v) u ();
    Ok ()
  end
  else
    (* Affected region: ord in [ord(v), ord(u)]. *)
    match dfs_forward t v ~ub:t.ord.(u) ~target:u with
    | Error path -> Error path
    | Ok delta_f ->
        let delta_b = dfs_backward t u ~lb:t.ord.(v) in
        (* Reorder: vertices of delta_b take the smallest indices of the
           combined pool, then vertices of delta_f — each group keeping its
           internal relative order. *)
        let to_sorted_list visited =
          Hashtbl.fold (fun w () acc -> w :: acc) visited []
          |> List.sort (fun a b -> compare t.ord.(a) t.ord.(b))
        in
        let bs = to_sorted_list delta_b in
        let fs = to_sorted_list delta_f in
        let pool =
          List.sort compare (List.map (fun w -> t.ord.(w)) (bs @ fs))
        in
        List.iteri
          (fun i w -> t.ord.(w) <- List.nth pool i)
          (bs @ fs);
        Hashtbl.replace t.fwd.(u) v ();
        Hashtbl.replace t.bwd.(v) u ();
        Ok ()

let check_invariant t =
  let ok = ref true in
  Array.iteri
    (fun u succs ->
      Hashtbl.iter (fun v () -> if t.ord.(u) >= t.ord.(v) then ok := false) succs)
    t.fwd;
  (* ord must be a permutation. *)
  let seen = Array.make (n t) false in
  Array.iter
    (fun i -> if i < 0 || i >= n t || seen.(i) then ok := false else seen.(i) <- true)
    t.ord;
  !ok
