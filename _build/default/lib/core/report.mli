(** Human-readable counterexample reports (paper Figure 2, step 4; the
    paper emphasizes that MTC's counterexamples are concise and easy to
    interpret because each involved transaction is a mini-transaction). *)

val render : History.t -> Checker.level -> Checker.violation -> string
(** A multi-line report: the violated level, the anomaly shape, the
    involved transactions with their operations, and the dependency cycle
    if there is one. *)

val classify : Checker.violation -> Anomaly.kind option
(** Best-effort mapping of a violation onto the catalogue of Figure 5:
    intra-screen violations map directly; a DIVERGENCE instance is a
    LOSTUPDATE; cycles are classified by their RW-edge pattern
    (two adjacent RWs over two distinct objects: WRITESKEW; exactly one
    RW: a causality-shaped anomaly; non-adjacent RWs: LONGFORK). *)

val summary : History.t -> (Checker.level * Checker.outcome) list -> string
(** One line per level, e.g. for CLI output. *)
