lib/core/divergence.ml: Array Format Hashtbl Index List Op Txn
