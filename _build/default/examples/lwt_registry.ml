(* Lightweight transactions: a service registry where nodes claim
   leadership with insert-if-not-exists and hand it over with
   compare-and-set — the Cassandra/etcd-style usage of paper Section II-F.

   VL-LWT (Algorithm 2) verifies linearizability of the observed events in
   linear time; we also show the Cassandra-2.0.1-style bug where a CAS
   reported as failed was actually applied, and compare against the
   Porcupine baseline.

     dune exec examples/lwt_registry.exe *)

let show name (h : Lwt.t) =
  Format.printf "@.== %s (%d events, %d keys) ==@." name
    (Array.length h.Lwt.events) h.Lwt.num_keys;
  (match Lwt_checker.check h with
  | Ok () -> print_endline "  VL-LWT    : linearizable"
  | Error reason ->
      Format.printf "  VL-LWT    : NOT linearizable — %a@." Lwt_checker.pp_reason
        reason);
  let porc = Porcupine.check h in
  Format.printf "  Porcupine : %s (%d search states)@."
    (if porc.Porcupine.linearizable then "linearizable" else "NOT linearizable")
    porc.Porcupine.visited_states

let () =
  (* A handcrafted leadership handover on one lease key. *)
  let ev id session op start finish = { Lwt.id; session; op; start; finish } in
  let handover =
    Lwt.make ~num_keys:1 ~num_sessions:3
      [
        ev 0 1 (Lwt.Insert { key = 0; value = 100 }) 0 2;  (* node-1 claims *)
        ev 1 2 (Lwt.Rw { key = 0; expected = 100; new_value = 200 }) 5 9;
        ev 2 3 (Lwt.Read { key = 0; value = 200 }) 10 12;  (* observer *)
        ev 3 1 (Lwt.Rw { key = 0; expected = 200; new_value = 300 }) 11 15;
      ]
  in
  show "handcrafted leadership handover" handover;

  (* A large synthetic run: many nodes CASing leases concurrently. *)
  let busy =
    Lwt_gen.generate
      { Lwt_gen.num_sessions = 12; txns_per_session = 500; num_keys = 8;
        concurrent_pct = 0.6; read_pct = 0.3; seed = 99;
        inject = Lwt_gen.No_injection }
  in
  show "healthy registry under load" busy;

  (* The Cassandra 2.0.1 bug: a failed CAS that was actually applied. *)
  let phantom =
    Lwt_gen.generate
      { Lwt_gen.num_sessions = 12; txns_per_session = 500; num_keys = 8;
        concurrent_pct = 0.6; read_pct = 0.3; seed = 99;
        inject = Lwt_gen.Phantom_write }
  in
  show "registry with a phantom write (Cassandra-2.0.1-style bug)" phantom;

  (* Split brain: two nodes both won the same CAS. *)
  let split =
    Lwt_gen.generate
      { Lwt_gen.num_sessions = 12; txns_per_session = 200; num_keys = 4;
        concurrent_pct = 0.6; read_pct = 0.2; seed = 7;
        inject = Lwt_gen.Split_brain }
  in
  show "registry with a split brain" split
