test/test_lwt.ml: Alcotest Array Format List Lwt Lwt_checker Lwt_gen Porcupine Printf
