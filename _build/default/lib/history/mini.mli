(** The mini-transaction predicate and shape taxonomy (paper Definition 8).

    A mini-transaction contains one or two reads and at most two writes,
    and each write is (not necessarily immediately) preceded by a read of
    the same object — the read-modify-write pattern that makes the WW
    dependency inferable from WR. *)

type shape =
  | R  (** R(x) *)
  | RW  (** R(x) W(x) — the read-modify-write pair *)
  | RR  (** R(x) R(y) *)
  | RRW_fst  (** R(x) R(y) W(x) *)
  | RRW_snd  (** R(x) R(y) W(y) *)
  | RRWW  (** R(x) R(y) W(x) W(y) — needed for WRITESKEW (Fig. 5n) *)
  | RWRW  (** R(x) W(x) R(y) W(y) *)

val all_shapes : shape list
val shape_name : shape -> string

val num_keys_of_shape : shape -> int
(** 1 or 2 distinct objects. *)

val is_mini : Txn.t -> bool
(** Does the transaction satisfy Definition 8? *)

val shape_of : Txn.t -> shape option
(** The canonical shape of a mini-transaction, if it matches one of the
    seven templates above (reads/writes of the same objects in template
    order). *)
