module Counter = struct
  (* One atomic would serialize every shard domain on the same cache
     line; 8 stripes indexed by domain id keep always-on counters (PK
     inserts, pool tasks) out of each other's way. *)
  let stripes = 8

  type t = int Atomic.t array

  let create () = Array.init stripes (fun _ -> Atomic.make 0)
  let stripe () = (Domain.self () :> int) land (stripes - 1)

  let add t n =
    let a = Array.unsafe_get t (stripe ()) in
    ignore (Atomic.fetch_and_add a n)

  let incr t = add t 1

  let get t =
    let s = ref 0 in
    Array.iter (fun a -> s := !s + Atomic.get a) t;
    !s
end

module Gauge = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let set t v = Atomic.set t v
  let get t = Atomic.get t

  let rec max_update t v =
    let cur = Atomic.get t in
    if v > cur && not (Atomic.compare_and_set t cur v) then max_update t v
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Obs_histogram.t

type entry = { e_name : string; e_help : string; e_inst : instrument }

type registry = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reversed registration order *)
}

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 32; order = [] }
let default = create ()

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

(* Find-or-create under the registry mutex, so module-init registration
   from several domains can race safely. *)
let register r name help make match_existing =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Metrics: invalid metric name %S" name);
  Mutex.lock r.mu;
  let inst =
    match Hashtbl.find_opt r.tbl name with
    | Some e -> (
        match match_existing e.e_inst with
        | Some i -> i
        | None ->
            Mutex.unlock r.mu;
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics: %S already registered with a different kind" name))
    | None ->
        let i = make () in
        Hashtbl.replace r.tbl name
          { e_name = name; e_help = help; e_inst = i };
        r.order <- name :: r.order;
        i
  in
  Mutex.unlock r.mu;
  inst

let counter r ?(help = "") name =
  let i =
    register r name help
      (fun () -> I_counter (Counter.create ()))
      (function I_counter x -> Some (I_counter x) | _ -> None)
  in
  match i with I_counter x -> x | _ -> assert false

let gauge r ?(help = "") name =
  let i =
    register r name help
      (fun () -> I_gauge (Gauge.create ()))
      (function I_gauge x -> Some (I_gauge x) | _ -> None)
  in
  match i with I_gauge x -> x | _ -> assert false

let histogram r ?(help = "") name =
  let i =
    register r name help
      (fun () -> I_histogram (Obs_histogram.create ()))
      (function I_histogram x -> Some (I_histogram x) | _ -> None)
  in
  match i with I_histogram x -> x | _ -> assert false

let iter r f =
  Mutex.lock r.mu;
  let entries =
    List.rev_map (fun n -> Hashtbl.find r.tbl n) r.order
  in
  Mutex.unlock r.mu;
  List.iter (fun e -> f ~name:e.e_name ~help:e.e_help e.e_inst) entries
