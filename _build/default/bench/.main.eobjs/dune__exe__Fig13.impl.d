bench/fig13.ml: Append_gen Bench_util Checker Db Distribution Elle Fault Isolation List Mt_gen Printf Scheduler Stats
