lib/runner/endtoend.mli: Checker Db Format Scheduler Spec
