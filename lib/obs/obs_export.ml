let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let chrome_json (events : Obs_trace.event list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i (e : Obs_trace.event) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      buf_add_json_string b e.ev_name;
      (* ts/dur are doubles in microseconds; keep ns precision in the
         fraction. *)
      Buffer.add_string b
        (Printf.sprintf
           ",\"cat\":\"mtc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
           (float_of_int e.ev_t0 /. 1e3)
           (float_of_int e.ev_dur /. 1e3)
           e.ev_dom))
    events;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus (r : Obs_metrics.registry) =
  let b = Buffer.create 4096 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  Obs_metrics.iter r (fun ~name ~help inst ->
      match inst with
      | Obs_metrics.I_counter c ->
          header name help "counter";
          Buffer.add_string b
            (Printf.sprintf "%s %d\n" name (Obs_metrics.Counter.get c))
      | Obs_metrics.I_gauge g ->
          header name help "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s %d\n" name (Obs_metrics.Gauge.get g))
      | Obs_metrics.I_histogram h ->
          header name help "histogram";
          let s = Obs_histogram.snapshot h in
          let top =
            if s.Obs_histogram.s_count = 0 then -1
            else Obs_histogram.bucket_of s.Obs_histogram.s_max
          in
          let cum = ref 0 in
          for i = 0 to top do
            cum := !cum + s.Obs_histogram.s_buckets.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name
                 (Obs_histogram.upper_edge i)
                 !cum)
          done;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name
               s.Obs_histogram.s_count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %.17g\n" name s.Obs_histogram.s_sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" name s.Obs_histogram.s_count));
  Buffer.contents b
