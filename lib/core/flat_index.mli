(** Allocation-light lookup tables for dependency inference.

    An open-addressing hash map from native [int] keys to non-negative
    [int] values: flat parallel arrays, linear probing, load factor kept
    at or below 1/2.  Lookups and inserts allocate nothing (inserts
    amortize array doubling), where the seed's tuple-keyed [Hashtbl]
    boxed a [(key * value)] block per insert and hashed it per probe.

    The {!Writers} submodule layers the paper's writer-resolution tables
    (final / intermediate / aborted, Section IV-A) on top, packing each
    [(key, value)] pair into a single int — sound because mini-transaction
    histories assign unique values, so the packing is injective whenever
    it cannot overflow, and the rare unpackable pair falls back to a
    tuple-keyed spill table. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a size hint (rounded up to a power of two, min 16). *)

val length : t -> int

val set : t -> int -> int -> unit
(** [set t k v] binds [k] to [v], replacing any previous binding.
    @raise Invalid_argument if [v < 0] (reserved for "absent"). *)

val get : t -> int -> int
(** [get t k] is the value bound to [k], or [-1] if unbound. *)

val mem : t -> int -> bool

(** Final / intermediate / aborted writer resolution over packed pairs —
    the backing store of {!Index} and the streaming {!Online} checker. *)
module Writers : sig
  type who =
    | Final of Txn.id
    | Intermediate of Txn.id
    | Aborted of Txn.id
    | Nobody

  type t

  val create : num_keys:int -> expected:int -> t
  (** [num_keys] bounds the key space (packing stride); [expected] is a
      hint for the number of final writes. *)

  val set_final : t -> Op.key -> Op.value -> Txn.id -> unit
  val set_intermediate : t -> Op.key -> Op.value -> Txn.id -> unit
  val set_aborted : t -> Op.key -> Op.value -> Txn.id -> unit

  val resolve : t -> Op.key -> Op.value -> who
  (** Who produced value [v] of object [k]?  Checks final writers first,
      then intermediate, then aborted — the resolution order of paper
      Section IV-A. *)
end
