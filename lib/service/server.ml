(* The MTC checking daemon: an epoll event loop multiplexing many client
   sessions over Unix-domain and TCP sockets, with optional durability
   (per-shard write-ahead logs + snapshots, lib/persist).

   Threading model — one event-loop systhread for ALL connection I/O,
   domains for the checking:

   - a single {!Evloop} thread owns every socket: it accepts, reads
     frames from non-blocking fds into per-connection buffers, parses
     them ({!Wire.of_string}) and enqueues work onto per-session bounded
     queues.  A connection costs an fd and a buffer, not a systhread —
     10k idle connections are 10k epoll registrations;
   - a fixed array of {e shards}, each a run queue of sessions serviced
     by one loop; the loops execute on a {!Pool} of worker domains (a
     coordinator systhread participates via [Pool.run]), so N sessions
     check on up to [config.shards] cores in parallel.  A session is
     pinned to shard [sid mod shards] for its whole life: exactly one
     shard ever touches a session's {!Online.t}, items drain in FIFO
     order, and the shard is the only writer of the session's [Verdict]
     frames — verdicts and counterexamples are bit-identical to the
     single-threaded server;
   - one janitor systhread closing idle sessions.

   Backpressure: when a session's queue is full the event loop leaves
   the frame unparsed in the connection buffer and drops the fd's read
   interest (the hard backpressure TCP propagates), re-arming when the
   owning shard drains the queue to its low-water mark; the advisory
   [Throttle]/[Resume] frames bracket the episode as before.

   Egress never blocks a shard: {!send} encodes into a per-connection
   output queue and the event loop writes it out, keeping write interest
   on while the socket is full.

   Durability ([config.wal_dir]): every accepted open/feed/close is
   appended to the owning shard's WAL {e before} it is applied, and
   shards checkpoint their sessions to snapshots ({!checkpoint}, SIGHUP
   under {!run}, or every [snapshot_every] feeds).  After a crash the
   server restores snapshot + WAL tail: live sessions resume at exactly
   the last logged frame ([Resume_session]/[Session_resumed]), poisoned
   sessions re-render the byte-identical counterexample.

   Poisoned sessions (a violation verdict was issued) keep answering
   every further feed/sync with the identical rendered counterexample.

   Graceful shutdown ({!stop}, wired to SIGTERM by {!run}) shuts the
   ingress half of every connection, lets the shards drain what was
   already queued, then sends [Session_closed]+[Bye] and closes. *)

type addr = A_unix of string | A_tcp of string * int

let addr_to_string = function
  | A_unix path -> "unix:" ^ path
  | A_tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Result.Error "empty unix socket path"
      else Ok (A_unix path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Result.Error (Printf.sprintf "tcp address %S needs host:port" rest)
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 ->
              Ok (A_tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Result.Error (Printf.sprintf "bad tcp port %S" port)))
  | _ ->
      Result.Error
        (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)

type config = {
  listen : addr list;
  queue_capacity : int;  (** per-session ingress bound *)
  idle_timeout : float;  (** seconds; <= 0 disables *)
  drain_delay : float;
      (** artificial per-item worker delay (seconds) — a test/bench knob
          to provoke backpressure deterministically; 0 in production *)
  server_name : string;
  metrics : Metrics.t;
  max_keys : int;  (** largest accepted [num_keys] in [Open_session] *)
  shards : int;  (** checking shards (domains); [<= 0] = auto *)
  metrics_port : int option;
      (** Prometheus exposition on 127.0.0.1:port; 0 = ephemeral *)
  wal_dir : string option;  (** durability directory; [None] = off *)
  wal_sync : Wal.sync;
  snapshot_every : int;
      (** per-shard feeds between automatic checkpoints; 0 = only on
          SIGHUP / {!checkpoint} / shutdown *)
  final_checkpoint : bool;
      (** checkpoint on {!stop} (default); [false] leaves the WAL tail
          in place, which is how the tests exercise tail replay *)
  gc : Online.gc;
      (** default watermark-GC policy for new sessions; an
          [Open_session] frame may override it per session *)
  pin_warn_after : float;
      (** horizon-pin detector: flag a session whose feed frontier has
          not advanced for this many seconds while it still retains
          live words; <= 0 disables *)
  pin_fence : pin_fence;
      (** what to do with a flagged session beyond the journal event
          and the [horizon_pinned_sessions] gauge *)
  journal : string option;
      (** JSONL sink for the {!Obs.Journal} event stream; [None] = no
          file (events still reach [Session_stats] replies) *)
}

and pin_fence = Fence_off | Fence_close

let default_config =
  {
    listen = [];
    queue_capacity = 1024;
    idle_timeout = 0.0;
    drain_delay = 0.0;
    server_name = "mtc-serve/1";
    metrics = Metrics.global;
    max_keys = 1 lsl 22;
    shards = 0;
    metrics_port = None;
    wal_dir = None;
    wal_sync = Wal.Batch;
    snapshot_every = 0;
    final_checkpoint = true;
    gc = Online.Gc_off;
    pin_warn_after = 0.0;
    pin_fence = Fence_off;
    journal = None;
  }

(* ------------------------------------------------------------------ *)

type item =
  | I_open  (** WAL the open, then send [Session_opened] *)
  | I_feed of int * Txn.t  (** seq, txn *)
  | I_sync of int  (** seq *)
  | I_resume  (** send [Session_resumed] after a re-attach *)
  | I_close of Wire.close_reason

type checker_state =
  | S_live of Online.t
  | S_poisoned of { anomaly : string option; rendered : string }

type session = {
  sid : int;
  meta : Snapshot_store.meta;
  mutable checker : checker_state;  (** owning shard only *)
  mutable last_seq : int;  (** highest WAL-logged feed seq; shard only *)
  mutable ep : conn option;
      (** attachment; [None] while restored-but-unresumed or after the
          connection died.  Guarded by [smu]. *)
  shard_ix : int;
  shard : shard;  (** fixed home shard: [sid mod shards] *)
  queue : item Queue.t;
  mutable queued : int;
  mutable throttled : bool;
  mutable reader_paused : bool;
      (** the event loop stopped reading [ep] because this queue was
          full; the shard posts [A_unpause] at low water *)
  mutable closing : bool;  (** an [I_close] is queued; drop later frames *)
  mutable abandoned : bool;  (** connection died; shard must bail out *)
  mutable on_runq : bool;  (** guarded by [shard.shmu] *)
  mutable finished : bool;  (** terminal; guarded by [smu] *)
  smu : Mutex.t;
  mutable last_activity : float;
  mutable lw_seen : int;
      (** this session's last-sampled {!Online.live_words} contribution
          to the aggregate gauge; owning shard only *)
  opened_at : float;
  mutable feeds : int;
      (** feeds accepted over the session's lifetime.  Written by the
          owning shard only; the janitor and the telemetry path read it
          without [smu] — a plain int, so a stale read is the worst
          case *)
  mutable pin_frontier : int;  (** [feeds] at the last progress check *)
  mutable pin_since : float;  (** when [pin_frontier] last advanced *)
  mutable pinned : bool;
      (** flagged by the horizon-pin detector.  Janitor-only writes;
          racy reads from the telemetry path are fine *)
}

and conn = {
  fd : Unix.file_descr;
  token : int;  (** evloop registration key *)
  mutable inbuf : Bytes.t;
  mutable inlen : int;
  outq : string Queue.t;  (** encoded frames awaiting write; [out_mu] *)
  mutable outoff : int;  (** bytes of the head frame already written *)
  enc_scratch : Buffer.t;
  enc_out : Buffer.t;
  out_mu : Mutex.t;
  mutable out_dead : bool;  (** peer unreachable or fd closed *)
  mutable flush_queued : bool;  (** an [A_flush] is pending; [out_mu] *)
  mutable want_write : bool;  (** evloop thread only *)
  mutable read_on : bool;  (** evloop thread only *)
  sessions : (int, session) Hashtbl.t;
  closed_sids : (int, unit) Hashtbl.t;
      (** sessions that lived on this connection and are gone: frames
          racing the (already sent) [Session_closed] are dropped rather
          than answered with an unattributable unknown-session error *)
  cmu : Mutex.t;
  mutable cstate : cstate;  (** evloop thread only *)
  mutable paused_on : session option;  (** evloop thread only *)
  mutable eof_seen : bool;  (** EOF arrived while paused *)
  mutable gone : bool;  (** closed and deregistered *)
  mutable draining : bool;  (** server shutdown: drain, then close *)
}

and cstate =
  | C_hello  (** awaiting the [Hello] handshake *)
  | C_ready
  | C_draining  (** ingress shut; sessions winding down via [I_close] *)
  | C_flush_close  (** flush the output queue, then close *)

and shard = {
  ix : int;
  runq : session Queue.t;  (** sessions with work, each at most once *)
  shmu : Mutex.t;
  shcv : Condition.t;
  mutable snap_req : bool;  (** guarded by [shmu] *)
  mutable feeds_since_snap : int;  (** owning domain only *)
}

type action =
  | A_flush of conn
  | A_unpause of conn * session
  | A_conn_done of conn  (** last session of a draining conn finished *)

type ep_target = T_listener of Unix.file_descr * addr | T_conn of conn

type t = {
  config : config;
  persist : Persist.t option;
  nshards : int;
  ev : Evloop.t;
  by_token : (int, ep_target) Hashtbl.t;  (** evloop thread only *)
  mutable next_token : int;  (** evloop thread only *)
  mutable nconns : int;  (** evloop thread only *)
  bound : addr list;
  registry : (int, session) Hashtbl.t;  (** all live sessions; [rmu] *)
  detached : (int, session) Hashtbl.t;  (** restored, unattached; [rmu] *)
  mutable next_sid : int;
  rmu : Mutex.t;
  actions : action Queue.t;
  amu : Mutex.t;
  mutable stop_requested : bool;  (** [rmu] *)
  mutable drain_started : bool;  (** evloop thread only *)
  shards : shard array;
  pool : Pool.t;
  live_total : int Atomic.t;
      (** sum of every session's [lw_seen] — the gauge's source *)
  mutable shards_stop : bool;  (** written under every shard's [shmu] *)
  mutable shard_runner : Thread.t option;
  mutable ev_thread : Thread.t option;
  mutable janitor : Thread.t option;
  mutable journal_out : out_channel option;
      (** JSONL sink; written by the janitor's periodic drain and the
          final drain in {!stop} (which joins the janitor first) *)
  journal_wall_off : float;
      (** wall-clock seconds minus monotonic seconds at startup, to
          stamp journal events with wall time at drain *)
  mutable metrics_listener : (Unix.file_descr * int) option;
  mutable metrics_thread : Thread.t option;
}

let bound_addrs t = t.bound
let metrics_port t = Option.map snd t.metrics_listener
let event_backend t = Evloop.backend_name t.ev

let stopping t =
  Mutex.lock t.rmu;
  let s = t.stop_requested in
  Mutex.unlock t.rmu;
  s

let post t action =
  Mutex.lock t.amu;
  Queue.push action t.actions;
  Mutex.unlock t.amu;
  Evloop.wakeup t.ev

(* ------------------------------------------------------------------ *)
(* Frame egress: encode under the connection's output lock, let the
   event loop write.  Callable from any thread; errors latch [out_dead]
   so a dead peer cannot wedge a shard. *)

let send t conn frame =
  Mutex.lock conn.out_mu;
  let flush =
    if conn.out_dead then false
    else begin
      Buffer.clear conn.enc_out;
      Wire.encode ~scratch:conn.enc_scratch conn.enc_out frame;
      Queue.push (Buffer.contents conn.enc_out) conn.outq;
      Metrics.frame_out t.config.metrics;
      if conn.flush_queued then false
      else begin
        conn.flush_queued <- true;
        true
      end
    end
  in
  Mutex.unlock conn.out_mu;
  if flush then post t (A_flush conn)

(* ------------------------------------------------------------------ *)
(* Shards: the checking side. *)

let now () = Unix.gettimeofday ()

let sp_server_feed = Obs.Trace.intern "server/feed"

(* The one renderer: live verdicts, snapshot poisoning and WAL-replay
   poisoning all go through it — byte-identity of counterexamples across
   restarts depends on that. *)
let render_parts level v =
  let anomaly = Option.map Anomaly.name (Report.classify v) in
  let rendered =
    Format.asprintf "%s violation%s: %a"
      (Checker.level_name level)
      (match anomaly with Some a -> Printf.sprintf " [%s]" a | None -> "")
      Checker.pp_violation v
  in
  (anomaly, rendered)

let low_water capacity = Stdlib.max 1 (capacity / 4)

(* Close reasons as journal payload words (mirrors the wire bytes). *)
let reason_code = function
  | Wire.R_requested -> 0
  | Wire.R_idle -> 1
  | Wire.R_shutdown -> 2
  | Wire.R_protocol _ -> 3
  | Wire.R_pinned -> 4

(* Make the session's shard service it; a no-op if it is already queued
   (the shard re-checks the item queue before going idle). *)
let schedule s =
  let sh = s.shard in
  Mutex.lock sh.shmu;
  if not s.on_runq then begin
    s.on_runq <- true;
    Queue.push s sh.runq;
    Condition.signal sh.shcv
  end;
  Mutex.unlock sh.shmu

let wal_warned = Atomic.make false

let wal_append t s record =
  match t.persist with
  | None -> ()
  | Some p -> (
      match Persist.append p ~shard:s.shard_ix record with
      | bytes -> Metrics.wal_write t.config.metrics ~bytes
      | exception (Unix.Unix_error _ | Sys_error _) ->
          if not (Atomic.exchange wal_warned true) then
            prerr_endline
              "mtc-serve: WAL append failed; continuing without durability")

let wal_close_record t s = wal_append t s (Wal.R_close { sid = s.sid })

(* Live-words accounting: each session tracks its last-sampled
   {!Online.live_words} and the delta flows into one process-wide
   aggregate.  Sampled only where it is cheap relative to the work just
   done — after a compaction, at syncs, on open — never per feed. *)
let publish_live t delta =
  if delta <> 0 then begin
    let total = Atomic.fetch_and_add t.live_total delta + delta in
    Metrics.live_words t.config.metrics total
  end

let refresh_live t s online =
  let lw = Online.live_words online in
  let d = lw - s.lw_seen in
  s.lw_seen <- lw;
  publish_live t d

let drop_live t s =
  let d = -s.lw_seen in
  s.lw_seen <- 0;
  publish_live t d

(* Terminal state: drop the session from every table, and nudge the
   event loop if its connection was waiting on it (paused reader, or a
   draining connection whose last session this was). *)
let finish t s =
  drop_live t s;
  Mutex.lock s.smu;
  s.finished <- true;
  let ep = s.ep in
  s.ep <- None;
  let was_paused = s.reader_paused in
  s.reader_paused <- false;
  Mutex.unlock s.smu;
  Mutex.lock t.rmu;
  Hashtbl.remove t.registry s.sid;
  Hashtbl.remove t.detached s.sid;
  Mutex.unlock t.rmu;
  match ep with
  | None -> ()
  | Some conn ->
      Mutex.lock conn.cmu;
      Hashtbl.remove conn.sessions s.sid;
      Hashtbl.replace conn.closed_sids s.sid ();
      let empty = Hashtbl.length conn.sessions = 0 in
      Mutex.unlock conn.cmu;
      if was_paused then post t (A_unpause (conn, s));
      if empty then post t (A_conn_done conn)

(* Drain everything currently queued for [s]; runs on [s.shard] only, so
   per-session processing is single-threaded and FIFO even though many
   sessions progress in parallel on different shards. *)
let process_session t s =
  let m = t.config.metrics in
  let rec loop () =
    Mutex.lock s.smu;
    if s.finished then Mutex.unlock s.smu (* stale run-queue entry *)
    else if s.abandoned then begin
      (* connection is gone: log the close, then disappear *)
      Mutex.unlock s.smu;
      wal_close_record t s;
      finish t s
    end
    else if s.queued = 0 then Mutex.unlock s.smu (* idle until rescheduled *)
    else begin
      let item = Queue.pop s.queue in
      s.queued <- s.queued - 1;
      let ep = s.ep in
      let lw = low_water t.config.queue_capacity in
      let resume =
        if s.throttled && s.queued <= lw then begin
          s.throttled <- false;
          true
        end
        else false
      in
      let unpause =
        if s.reader_paused && s.queued <= lw then begin
          s.reader_paused <- false;
          true
        end
        else false
      in
      Mutex.unlock s.smu;
      let send_ep frame =
        match ep with Some c -> send t c frame | None -> ()
      in
      if resume then begin
        Obs.Journal.emit Obs.Journal.Throttle_off ~a:s.sid ~b:0 ~c:0;
        send_ep (Wire.Resume { sid = s.sid })
      end;
      (if unpause then
         match ep with Some c -> post t (A_unpause (c, s)) | None -> ());
      if t.config.drain_delay > 0.0 then Unix.sleepf t.config.drain_delay;
      match item with
      | I_open ->
          let { Snapshot_store.level; num_keys; skew; ts; gc } = s.meta in
          wal_append t s
            (Wal.R_open { sid = s.sid; level; num_keys; skew; ts; gc });
          (* the ack below hands the client a resumable sid: put the
             open record in the kernel before saying so, or a server
             kill mid-burst (no drain barrier yet) would forget the
             session ever existed *)
          (match t.persist with
          | Some p -> Persist.flush p ~shard:s.shard_ix
          | None -> ());
          (match s.checker with
          | S_live online -> refresh_live t s online
          | S_poisoned _ -> ());
          send_ep (Wire.Session_opened { sid = s.sid });
          loop ()
      | I_resume ->
          Obs.Journal.emit Obs.Journal.Session_resume ~a:s.sid ~b:s.last_seq
            ~c:0;
          send_ep
            (Wire.Session_resumed { sid = s.sid; last_seq = s.last_seq });
          loop ()
      | I_feed (seq, txn) ->
          (* With durability on, a feed at-or-below the logged high water
             is a replay duplicate (client resuming): drop it instead of
             tripping the checker's id-reuse defence. *)
          if t.persist <> None && seq <= s.last_seq then loop ()
          else begin
            wal_append t s (Wal.R_feed { sid = s.sid; seq; txn });
            if seq > s.last_seq then s.last_seq <- seq;
            s.feeds <- s.feeds + 1;
            let sh = s.shard in
            sh.feeds_since_snap <- sh.feeds_since_snap + 1;
            (if
               t.config.snapshot_every > 0
               && t.persist <> None
               && sh.feeds_since_snap >= t.config.snapshot_every
             then begin
               sh.feeds_since_snap <- 0;
               Mutex.lock sh.shmu;
               sh.snap_req <- true;
               Mutex.unlock sh.shmu
             end);
            match s.checker with
            | S_poisoned { anomaly; rendered } ->
                (* poisoned: same counterexample, forever *)
                send_ep
                  (Wire.Verdict
                     {
                       sid = s.sid;
                       seq;
                       verdict = Wire.V_violation { anomaly; rendered };
                     });
                loop ()
            | S_live online -> (
                let w0 = Gc.minor_words () in
                let g0 = Online.gc_runs online in
                let r0 = Online.gc_reclaimed_words online in
                (* the auto policy may compact inside [add_txn]; diffing
                   the checker's counters attributes the pause and the
                   reclaim to this feed *)
                let note_gc () =
                  if Online.gc_runs online > g0 then begin
                    let pause = Online.gc_last_ns online in
                    let reclaimed = Online.gc_reclaimed_words online - r0 in
                    Metrics.gc_run m ~ns:pause ~reclaimed;
                    Obs.Journal.emit Obs.Journal.Gc_compact ~a:s.sid ~b:pause
                      ~c:reclaimed;
                    refresh_live t s online
                  end
                in
                let sp0 = Obs.Trace.enter () in
                let t0 = now () in
                match Online.add_txn online txn with
                | Online.Ok_so_far ->
                    Obs.Trace.exit sp_server_feed sp0;
                    note_gc ();
                    Metrics.feed m
                      ~ns:(int_of_float ((now () -. t0) *. 1e9))
                      ~words:(int_of_float (Gc.minor_words () -. w0));
                    loop ()
                | Online.Violation v ->
                    Obs.Trace.exit sp_server_feed sp0;
                    note_gc ();
                    let anomaly, rendered =
                      render_parts s.meta.Snapshot_store.level v
                    in
                    s.checker <- S_poisoned { anomaly; rendered };
                    Obs.Journal.emit Obs.Journal.Poison ~a:s.sid ~b:0 ~c:0;
                    drop_live t s;
                    Metrics.feed m
                      ~ns:(int_of_float ((now () -. t0) *. 1e9))
                      ~words:(int_of_float (Gc.minor_words () -. w0));
                    Metrics.violation m;
                    send_ep
                      (Wire.Verdict
                         {
                           sid = s.sid;
                           seq;
                           verdict = Wire.V_violation { anomaly; rendered };
                         });
                    loop ()
                | exception Invalid_argument msg ->
                    (* id reuse / SSER order: session-fatal misuse *)
                    Mutex.lock s.smu;
                    s.closing <- true;
                    Mutex.unlock s.smu;
                    wal_close_record t s;
                    Metrics.protocol_error m;
                    Obs.Journal.emit Obs.Journal.Session_close ~a:s.sid
                      ~b:(reason_code (Wire.R_protocol msg))
                      ~c:0;
                    send_ep
                      (Wire.Session_closed
                         { sid = s.sid; reason = Wire.R_protocol msg });
                    Metrics.session_closed m;
                    finish t s)
          end
      | I_sync seq ->
          Metrics.sync m;
          (* a [V_ok] ack promises the accepted prefix: group-commit it
             to the kernel before saying so ([Batch] mode also fsyncs,
             so the ack survives an OS crash, not just a server kill) *)
          (match t.persist with
          | Some p -> Persist.barrier p ~shard:s.shard_ix
          | None -> ());
          let verdict =
            match s.checker with
            | S_poisoned { anomaly; rendered } ->
                Wire.V_violation { anomaly; rendered }
            | S_live online ->
                refresh_live t s online;
                Wire.V_ok (Online.txns_seen online)
          in
          send_ep (Wire.Verdict { sid = s.sid; seq; verdict });
          loop ()
      | I_close reason ->
          wal_close_record t s;
          Obs.Journal.emit Obs.Journal.Session_close ~a:s.sid
            ~b:(reason_code reason) ~c:0;
          send_ep (Wire.Session_closed { sid = s.sid; reason });
          Metrics.session_closed m;
          finish t s
    end
  in
  loop ()

(* Per-shard checkpoint, on the shard's own domain: its sessions are
   quiescent (this domain is the only one that mutates them), so the
   snapshot is a consistent cut; items still queued in memory land in
   the *new* WAL generation as they are processed. *)
let do_checkpoint t sh =
  match t.persist with
  | None -> ()
  | Some p ->
      Mutex.lock t.rmu;
      let next_sid = t.next_sid in
      let entries =
        Hashtbl.fold
          (fun sid s acc ->
            if sid mod t.nshards = sh.ix && not s.finished then
              {
                Snapshot_store.sid;
                meta = s.meta;
                last_seq = s.last_seq;
                state =
                  (match s.checker with
                  | S_live online -> Snapshot_store.Live online
                  | S_poisoned { anomaly; rendered } ->
                      Snapshot_store.Poisoned { anomaly; rendered });
              }
              :: acc
            else acc)
          t.registry []
      in
      Mutex.unlock t.rmu;
      (match Persist.checkpoint p ~shard:sh.ix ~next_sid entries with
      | () ->
          Metrics.snapshot t.config.metrics;
          Obs.Journal.emit Obs.Journal.Snapshot ~a:sh.ix
            ~b:(List.length entries) ~c:0
      | exception (Unix.Unix_error _ | Sys_error _) ->
          if not (Atomic.exchange wal_warned true) then
            prerr_endline "mtc-serve: checkpoint failed; continuing");
      sh.feeds_since_snap <- 0

let rec shard_loop t sh =
  Mutex.lock sh.shmu;
  while Queue.is_empty sh.runq && not t.shards_stop && not sh.snap_req do
    Condition.wait sh.shcv sh.shmu
  done;
  if sh.snap_req then begin
    sh.snap_req <- false;
    Mutex.unlock sh.shmu;
    do_checkpoint t sh;
    shard_loop t sh
  end
  else if Queue.is_empty sh.runq then Mutex.unlock sh.shmu (* stop, drained *)
  else begin
    let s = Queue.pop sh.runq in
    s.on_runq <- false;
    Mutex.unlock sh.shmu;
    process_session t s;
    (* drain barrier: this session's ingress queue is empty — group-
       commit everything its burst appended in one write(2) *)
    (match t.persist with
    | Some p -> Persist.flush p ~shard:sh.ix
    | None -> ());
    shard_loop t sh
  end

let checkpoint t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.shmu;
      sh.snap_req <- true;
      Condition.signal sh.shcv;
      Mutex.unlock sh.shmu)
    t.shards

(* ------------------------------------------------------------------ *)
(* Session bookkeeping shared by the event loop and the janitor. *)

let session_alive s = not (s.closing || s.abandoned || s.finished)

(* Capacity-exempt enqueue for [I_close]/[I_open]/[I_resume]: at most
   one extra item, and the callers (drain, janitor, open, resume) must
   never block or pause on it. *)
let force_enqueue s item =
  Mutex.lock s.smu;
  let pushed =
    if session_alive s then begin
      (match item with I_close _ -> s.closing <- true | _ -> ());
      Queue.push item s.queue;
      s.queued <- s.queued + 1;
      true
    end
    else false
  in
  Mutex.unlock s.smu;
  if pushed then schedule s

let sessions_snapshot conn =
  Mutex.lock conn.cmu;
  let ss = Hashtbl.fold (fun _ s acc -> s :: acc) conn.sessions [] in
  Mutex.unlock conn.cmu;
  ss

let find_session conn sid =
  Mutex.lock conn.cmu;
  let s = Hashtbl.find_opt conn.sessions sid in
  Mutex.unlock conn.cmu;
  match s with Some s when session_alive s -> Some s | _ -> None

(* A frame for a session that existed here but is closed or closing: the
   client has a [Session_closed] in flight (or already delivered), so
   answering with an unknown-session [Error] would only be misattributed
   by the single-threaded client to whatever it asks next. *)
let session_was_here conn sid =
  Mutex.lock conn.cmu;
  let r = Hashtbl.mem conn.closed_sids sid || Hashtbl.mem conn.sessions sid in
  Mutex.unlock conn.cmu;
  r

(* ------------------------------------------------------------------ *)
(* Event-loop side: everything below runs on the evloop thread unless
   noted. *)

let set_read_interest t conn on =
  if (not conn.gone) && conn.read_on <> on then begin
    conn.read_on <- on;
    Evloop.modify t.ev conn.fd ~token:conn.token ~read:on
      ~write:conn.want_write
  end

let set_write_interest t conn on =
  if (not conn.gone) && conn.want_write <> on then begin
    conn.want_write <- on;
    Evloop.modify t.ev conn.fd ~token:conn.token ~read:conn.read_on ~write:on
  end

let close_conn t conn =
  if not conn.gone then begin
    conn.gone <- true;
    Evloop.remove t.ev conn.fd ~token:conn.token;
    Hashtbl.remove t.by_token conn.token;
    t.nconns <- t.nconns - 1;
    Metrics.open_conns t.config.metrics t.nconns;
    Mutex.lock conn.out_mu;
    conn.out_dead <- true;
    Mutex.unlock conn.out_mu;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Mid-frame disconnect or post-handshake garbage: abandon this
   connection (and only this connection); its sessions vanish without a
   goodbye, exactly like the threaded server's non-drain teardown. *)
let abandon_conn t conn =
  List.iter
    (fun s ->
      Mutex.lock s.smu;
      s.abandoned <- true;
      s.ep <- None;
      Mutex.unlock s.smu;
      schedule s)
    (sessions_snapshot conn);
  close_conn t conn

(* Flush the output queue as far as the socket allows.  Leaves write
   interest set iff bytes remain. *)
let flush_conn t conn =
  if not conn.gone then begin
    Mutex.lock conn.out_mu;
    conn.flush_queued <- false;
    let rec go () =
      if Queue.is_empty conn.outq then `Drained
      else begin
        let head = Queue.peek conn.outq in
        let len = String.length head - conn.outoff in
        match Unix.write_substring conn.fd head conn.outoff len with
        | n when n = len ->
            ignore (Queue.pop conn.outq);
            conn.outoff <- 0;
            go ()
        | n ->
            conn.outoff <- conn.outoff + n;
            `Blocked
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            `Blocked
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception (Unix.Unix_error _ | Sys_error _) -> `Dead
      end
    in
    let r = if conn.out_dead then `Dead else go () in
    if r = `Dead then conn.out_dead <- true;
    Mutex.unlock conn.out_mu;
    match r with
    | `Drained ->
        set_write_interest t conn false;
        if conn.cstate = C_flush_close then close_conn t conn
    | `Blocked -> set_write_interest t conn true
    | `Dead -> abandon_conn t conn
  end

(* Handshake refusal: answer, then flush-and-close. *)
let fail_conn t conn code msg =
  Metrics.protocol_error t.config.metrics;
  send t conn (Wire.Error { code; msg });
  conn.cstate <- C_flush_close;
  set_read_interest t conn false

let finish_drain t conn =
  send t conn Wire.Bye;
  conn.cstate <- C_flush_close

(* Clean close (client EOF / [Bye] / server shutdown): stop reading, let
   every session's shard finish what was already queued, then [Bye]. *)
let start_drain t conn ~reason =
  if conn.cstate = C_ready || conn.cstate = C_hello then begin
    conn.cstate <- C_draining;
    set_read_interest t conn false;
    match sessions_snapshot conn with
    | [] -> finish_drain t conn
    | ss -> List.iter (fun s -> force_enqueue s (I_close reason)) ss
  end

let on_eof t conn =
  if conn.cstate = C_hello then close_conn t conn (* never handshook *)
  else if conn.paused_on <> None then conn.eof_seen <- true
  else if conn.inlen > 0 && not conn.draining then begin
    (* EOF mid-frame: a truncated stream, not a clean goodbye *)
    Metrics.protocol_error t.config.metrics;
    abandon_conn t conn
  end
  else
    start_drain t conn
      ~reason:(if conn.draining then Wire.R_shutdown else Wire.R_requested)

(* ------------------------------------------------------------------ *)
(* Frame dispatch. *)

let open_session t conn ~level ~num_keys ~skew ~ts ~gc =
  Mutex.lock t.rmu;
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  Mutex.unlock t.rmu;
  let gc = match gc with Some g -> g | None -> t.config.gc in
  let s =
    {
      sid;
      meta = { Snapshot_store.level; num_keys; skew; ts; gc };
      checker = S_live (Online.create ~skew ~ts ~gc ~level ~num_keys ());
      last_seq = 0;
      ep = Some conn;
      shard_ix = sid mod t.nshards;
      shard = t.shards.(sid mod t.nshards);
      queue = Queue.create ();
      queued = 0;
      throttled = false;
      reader_paused = false;
      closing = false;
      abandoned = false;
      on_runq = false;
      finished = false;
      smu = Mutex.create ();
      last_activity = now ();
      lw_seen = 0;
      opened_at = now ();
      feeds = 0;
      pin_frontier = 0;
      pin_since = now ();
      pinned = false;
    }
  in
  Mutex.lock t.rmu;
  Hashtbl.replace t.registry sid s;
  Mutex.unlock t.rmu;
  Mutex.lock conn.cmu;
  Hashtbl.replace conn.sessions sid s;
  Mutex.unlock conn.cmu;
  Metrics.session_opened t.config.metrics;
  Obs.Journal.emit Obs.Journal.Session_open ~a:sid ~b:s.shard_ix ~c:0;
  (* the shard WALs the open and then sends [Session_opened], so the sid
     the client learns is already durable *)
  force_enqueue s I_open

(* Bounded enqueue: [`Full] leaves the frame unconsumed — the caller
   pauses the connection's read side until the shard drains the queue. *)
let enqueue_bounded t conn s item =
  Mutex.lock s.smu;
  s.last_activity <- now ();
  if not (session_alive s) then begin
    Mutex.unlock s.smu;
    `Ok (* racing its own close: drop, [Session_closed] is in flight *)
  end
  else if s.queued >= t.config.queue_capacity then begin
    let announce =
      if not s.throttled then begin
        s.throttled <- true;
        Some s.queued
      end
      else None
    in
    s.reader_paused <- true;
    Mutex.unlock s.smu;
    (match announce with
    | Some queued ->
        Metrics.throttle t.config.metrics;
        Obs.Journal.emit Obs.Journal.Throttle_on ~a:s.sid ~b:queued ~c:0;
        send t conn (Wire.Throttle { sid = s.sid; queued })
    | None -> ());
    `Full
  end
  else begin
    Queue.push item s.queue;
    s.queued <- s.queued + 1;
    Metrics.queue_depth t.config.metrics s.queued;
    Mutex.unlock s.smu;
    schedule s;
    `Ok
  end

let resume_session t conn sid =
  Mutex.lock t.rmu;
  let d = Hashtbl.find_opt t.detached sid in
  (match d with Some _ -> Hashtbl.remove t.detached sid | None -> ());
  Mutex.unlock t.rmu;
  match d with
  | None ->
      send t conn
        (Wire.Error
           {
             code = Wire.err_unknown_session;
             msg = Printf.sprintf "no resumable session %d" sid;
           })
  | Some s ->
      Mutex.lock s.smu;
      s.ep <- Some conn;
      s.last_activity <- now ();
      Mutex.unlock s.smu;
      Mutex.lock conn.cmu;
      Hashtbl.replace conn.sessions sid s;
      Mutex.unlock conn.cmu;
      force_enqueue s I_resume

(* ------------------------------------------------------------------ *)
(* Per-session telemetry.  Reading a live checker's counters from here
   (the evloop or metrics thread) races the owning shard: OCaml makes
   the reads memory-safe, and every field consulted is a plain int, so
   the worst case is a snapshot a feed stale — fine for telemetry,
   never for verdicts. *)

let session_stat s =
  let nowf = now () in
  Mutex.lock s.smu;
  let queued = s.queued
  and last_activity = s.last_activity
  and pinned = s.pinned in
  Mutex.unlock s.smu;
  let poisoned, frontier, watermark =
    match s.checker with
    | S_poisoned _ -> (true, 0, -1)
    | S_live online -> (false, Online.txns_seen online, Online.watermark_pos online)
  in
  {
    Wire.ss_sid = s.sid;
    ss_shard = s.shard_ix;
    ss_level = s.meta.Snapshot_store.level;
    ss_poisoned = poisoned;
    ss_pinned = pinned;
    ss_frontier = frontier;
    ss_watermark = watermark;
    ss_lag = (if watermark < 0 then 0 else frontier - watermark);
    ss_live_words = Stdlib.max 0 s.lw_seen;
    ss_queued = queued;
    ss_last_seq = s.last_seq;
    ss_feeds = s.feeds;
    ss_age_ms = int_of_float ((nowf -. s.opened_at) *. 1e3);
    ss_idle_ms = Stdlib.max 0 (int_of_float ((nowf -. last_activity) *. 1e3));
  }

let session_stats t =
  Mutex.lock t.rmu;
  let ss =
    Hashtbl.fold
      (fun _ s acc -> if s.finished then acc else s :: acc)
      t.registry []
  in
  Mutex.unlock t.rmu;
  List.map session_stat ss
  |> List.sort (fun a b -> compare a.Wire.ss_sid b.Wire.ss_sid)

(* The newest journal events, capped so a [Session_stats_reply] stays a
   small frame even with full rings. *)
let reply_events_cap = 256

let journal_events_for_reply () =
  let evs = Obs.Journal.events () in
  let n = List.length evs in
  let evs =
    if n <= reply_events_cap then evs
    else
      List.filteri (fun i _ -> i >= n - reply_events_cap) evs
  in
  let now_ns = Obs.Clock.now_ns () in
  List.map
    (fun (e : Obs.Journal.event) ->
      {
        Wire.je_kind = e.Obs.Journal.j_kind;
        je_age_ms = Stdlib.max 0 ((now_ns - e.Obs.Journal.j_t) / 1_000_000);
        je_dom = e.Obs.Journal.j_dom;
        je_a = e.Obs.Journal.j_a;
        je_b = e.Obs.Journal.j_b;
        je_c = e.Obs.Journal.j_c;
      })
    evs

(* One frame in [C_ready].  [`Paused s] = queue full, frame unconsumed. *)
let handle_ready t conn frame =
  let m = t.config.metrics in
  let with_session sid item =
    match find_session conn sid with
    | Some s -> (
        match enqueue_bounded t conn s item with
        | `Ok -> `Consumed
        | `Full -> `Paused s)
    | None when session_was_here conn sid -> `Consumed
    | None ->
        send t conn
          (Wire.Error
             {
               code = Wire.err_unknown_session;
               msg = Printf.sprintf "no session %d" sid;
             });
        `Consumed
  in
  match frame with
  | Wire.Open_session { level; num_keys; skew; ts; gc } ->
      (if num_keys < 1 || num_keys > t.config.max_keys then
         send t conn
           (Wire.Error
              {
                code = Wire.err_bad_frame;
                msg =
                  Printf.sprintf "num_keys %d out of [1,%d]" num_keys
                    t.config.max_keys;
              })
       else open_session t conn ~level ~num_keys ~skew ~ts ~gc);
      `Consumed
  | Wire.Feed { sid; seq; txn } -> with_session sid (I_feed (seq, txn))
  | Wire.Sync { sid; seq } -> with_session sid (I_sync seq)
  | Wire.Close_session { sid } -> with_session sid (I_close Wire.R_requested)
  | Wire.Resume_session { sid } ->
      resume_session t conn sid;
      `Consumed
  | Wire.Stats_request ->
      send t conn (Wire.Stats_reply { json = Metrics.to_json m });
      `Consumed
  | Wire.Session_stats_request ->
      send t conn
        (Wire.Session_stats_reply
           {
             sessions = session_stats t;
             events = journal_events_for_reply ();
             journal_dropped = Obs.Journal.dropped ();
           });
      `Consumed
  | Wire.Bye ->
      start_drain t conn ~reason:Wire.R_requested;
      `Consumed
  | Wire.Hello _ | Wire.Welcome _ | Wire.Session_opened _ | Wire.Verdict _
  | Wire.Throttle _ | Wire.Resume _ | Wire.Stats_reply _
  | Wire.Session_closed _ | Wire.Error _ | Wire.Session_resumed _
  | Wire.Session_stats_reply _ ->
      Metrics.protocol_error m;
      send t conn
        (Wire.Error
           {
             code = Wire.err_bad_frame;
             msg = Printf.sprintf "unexpected %s frame" (Wire.frame_name frame);
           });
      `Consumed

let handle_frame t conn frame =
  match conn.cstate with
  | C_hello -> (
      match frame with
      | Wire.Hello { version } when version = Wire.version ->
          send t conn
            (Wire.Welcome
               { version = Wire.version; server = t.config.server_name });
          conn.cstate <- C_ready;
          `Consumed
      | Wire.Hello { version } ->
          fail_conn t conn Wire.err_version
            (Printf.sprintf "protocol version %d unsupported (server speaks %d)"
               version Wire.version);
          `Consumed
      | frame ->
          fail_conn t conn Wire.err_bad_magic
            (Printf.sprintf "expected hello, got %s" (Wire.frame_name frame));
          `Consumed)
  | C_ready -> handle_ready t conn frame
  | C_draining | C_flush_close -> `Consumed (* ingress is over; drop *)

(* Parse as many complete frames as the buffer holds, stopping on
   backpressure.  The unconsumed tail (partial frame, or everything from
   a frame that hit a full queue) shifts to the buffer's front. *)
let parse_frames t conn =
  if conn.inlen > 0 && not conn.gone then begin
    let s = Bytes.sub_string conn.inbuf 0 conn.inlen in
    let pos = ref 0 in
    let continue = ref true in
    while !continue do
      if conn.gone || conn.cstate = C_flush_close || conn.cstate = C_draining
      then continue := false
      else
        match Wire.of_string ~pos:!pos s with
        | Ok (frame, next) -> (
            Metrics.frame_in t.config.metrics;
            match handle_frame t conn frame with
            | `Consumed -> pos := next
            | `Paused sess ->
                conn.paused_on <- Some sess;
                set_read_interest t conn false;
                continue := false)
        | Result.Error ("truncated length prefix" | "truncated frame") ->
            continue := false (* need more bytes *)
        | Result.Error msg ->
            continue := false;
            if conn.cstate = C_hello then fail_conn t conn Wire.err_bad_frame msg
            else begin
              (* garbage mid-stream: abandon, like a broken reader *)
              Metrics.protocol_error t.config.metrics;
              abandon_conn t conn
            end
    done;
    if not conn.gone then begin
      let consumed = !pos in
      if consumed > 0 then begin
        Bytes.blit conn.inbuf consumed conn.inbuf 0 (conn.inlen - consumed);
        conn.inlen <- conn.inlen - consumed
      end
    end
  end

let ensure_in conn extra =
  let need = conn.inlen + extra in
  if Bytes.length conn.inbuf < need then begin
    let nb = Bytes.create (Stdlib.max need (2 * Bytes.length conn.inbuf)) in
    Bytes.blit conn.inbuf 0 nb 0 conn.inlen;
    conn.inbuf <- nb
  end

let read_chunk = 65536

let handle_readable t conn =
  if
    (not conn.gone)
    && conn.paused_on = None
    && (conn.cstate = C_hello || conn.cstate = C_ready)
  then begin
    (* bounded per readiness event; level-triggered epoll re-fires *)
    let rec rd budget =
      if budget = 0 then `Data
      else begin
        ensure_in conn read_chunk;
        match Unix.read conn.fd conn.inbuf conn.inlen read_chunk with
        | 0 -> `Eof
        | n ->
            conn.inlen <- conn.inlen + n;
            if n = read_chunk then rd (budget - 1) else `Data
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            `Data
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd budget
        | exception Unix.Unix_error _ -> `Err
      end
    in
    match rd 4 with
    | `Data -> parse_frames t conn
    | `Eof ->
        parse_frames t conn;
        if not conn.gone then on_eof t conn
    | `Err ->
        if conn.draining then start_drain t conn ~reason:Wire.R_shutdown
        else begin
          Metrics.protocol_error t.config.metrics;
          abandon_conn t conn
        end
  end

(* ------------------------------------------------------------------ *)
(* Accept path. *)

let fresh_token t =
  let tok = t.next_token in
  t.next_token <- tok + 1;
  tok

let make_conn t fd =
  let token = fresh_token t in
  let conn =
    {
      fd;
      token;
      inbuf = Bytes.create read_chunk;
      inlen = 0;
      outq = Queue.create ();
      outoff = 0;
      enc_scratch = Buffer.create 256;
      enc_out = Buffer.create 256;
      out_mu = Mutex.create ();
      out_dead = false;
      flush_queued = false;
      want_write = false;
      read_on = true;
      sessions = Hashtbl.create 8;
      closed_sids = Hashtbl.create 8;
      cmu = Mutex.create ();
      cstate = C_hello;
      paused_on = None;
      eof_seen = false;
      gone = false;
      draining = false;
    }
  in
  Hashtbl.replace t.by_token token (T_conn conn);
  t.nconns <- t.nconns + 1;
  Metrics.connection t.config.metrics;
  Metrics.open_conns t.config.metrics t.nconns;
  Evloop.add t.ev fd ~token ~read:true ~write:false

let rec do_accept t lfd addr =
  if not (stopping t) then
    match Unix.accept ~cloexec:true lfd with
    | fd, _peer ->
        Unix.set_nonblock fd;
        (match addr with
        | A_tcp _ -> (
            try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ())
        | A_unix _ -> ());
        make_conn t fd;
        do_accept t lfd addr
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        do_accept t lfd addr
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        () (* fd exhaustion: back off until something closes *)

(* ------------------------------------------------------------------ *)
(* The event loop proper. *)

let drain_actions t =
  let rec next () =
    Mutex.lock t.amu;
    let a =
      if Queue.is_empty t.actions then None else Some (Queue.pop t.actions)
    in
    Mutex.unlock t.amu;
    match a with
    | None -> ()
    | Some (A_flush conn) ->
        flush_conn t conn;
        next ()
    | Some (A_unpause (conn, s)) ->
        (match conn.paused_on with
        | Some s' when s' == s ->
            conn.paused_on <- None;
            parse_frames t conn;
            if (not conn.gone) && conn.paused_on = None then
              if conn.eof_seen then begin
                conn.eof_seen <- false;
                on_eof t conn
              end
              else set_read_interest t conn true
        | _ -> ());
        next ()
    | Some (A_conn_done conn) ->
        (if (not conn.gone) && conn.cstate = C_draining then begin
           Mutex.lock conn.cmu;
           let empty = Hashtbl.length conn.sessions = 0 in
           Mutex.unlock conn.cmu;
           if empty then begin
             finish_drain t conn;
             flush_conn t conn
           end
         end);
        next ()
  in
  next ()

(* Server shutdown, evloop side: close the listeners, then shut ingress
   on every connection — the receive shutdown surfaces as EOF, which
   funnels into the ordinary drain path. *)
let begin_shutdown t =
  let listeners, conns =
    Hashtbl.fold
      (fun token target (ls, cs) ->
        match target with
        | T_listener (lfd, addr) -> ((token, lfd, addr) :: ls, cs)
        | T_conn c -> (ls, c :: cs))
      t.by_token ([], [])
  in
  List.iter
    (fun (token, lfd, addr) ->
      Evloop.remove t.ev lfd ~token;
      Hashtbl.remove t.by_token token;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match addr with
      | A_unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | A_tcp _ -> ())
    listeners;
  List.iter
    (fun conn ->
      conn.draining <- true;
      try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns

let ev_loop t =
  let rec go () =
    let delivered =
      Evloop.wait t.ev ~timeout_ms:200
        ~handle:(fun ~token ~readable ~writable ->
          match Hashtbl.find_opt t.by_token token with
          | None -> () (* closed earlier in this batch *)
          | Some (T_listener (lfd, addr)) ->
              if readable then do_accept t lfd addr
          | Some (T_conn conn) ->
              if readable then handle_readable t conn;
              if writable && not conn.gone then flush_conn t conn)
    in
    if delivered > 0 then Metrics.epoll_wakeup t.config.metrics;
    drain_actions t;
    if stopping t then begin
      if not t.drain_started then begin
        t.drain_started <- true;
        begin_shutdown t;
        drain_actions t
      end;
      if t.nconns > 0 then go () (* drains in flight *)
    end
    else go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Prometheus exposition: a deliberately minimal HTTP/1.1 responder on a
   loopback socket — enough for a scraper or curl, one request per
   connection, [Connection: close].  Runs on its own systhread; scraping
   only reads atomics and histogram snapshots, so it never blocks the
   checking shards. *)

(* Labeled per-session series are emitted directly (the {!Obs.Metrics}
   instruments are label-free), plus the observability substrate's own
   overflow counters so ring drops are visible to a scraper. *)
let session_series stats =
  let b = Buffer.create 512 in
  let family name help value =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n" name help name);
    List.iter
      (fun (s : Wire.session_stat) ->
        Buffer.add_string b
          (Printf.sprintf "%s{sid=\"%d\"} %d\n" name s.Wire.ss_sid (value s)))
      stats
  in
  family "mtc_session_lag" "Arrivals this session pins against GC"
    (fun s -> s.Wire.ss_lag);
  family "mtc_session_live_words" "Retained-memory estimate (words)"
    (fun s -> s.Wire.ss_live_words);
  family "mtc_session_queue" "Ingress queue depth" (fun s -> s.Wire.ss_queued);
  family "mtc_session_feeds" "Feeds accepted over the session's lifetime"
    (fun s -> s.Wire.ss_feeds);
  family "mtc_session_pinned" "1 when flagged by the horizon-pin detector"
    (fun s -> if s.Wire.ss_pinned then 1 else 0);
  Buffer.contents b

let metrics_body t =
  let config = t.config in
  Printf.sprintf "# TYPE mtc_uptime_seconds gauge\nmtc_uptime_seconds %.3f\n"
    (Metrics.uptime_s config.metrics)
  ^ Obs.Export.prometheus (Metrics.registry config.metrics)
  ^ Obs.Export.prometheus Obs.Metrics.default
  ^ Printf.sprintf
      "# HELP mtc_trace_dropped_spans Spans lost to ring overwrite\n\
       # TYPE mtc_trace_dropped_spans counter\n\
       mtc_trace_dropped_spans %d\n\
       # HELP mtc_journal_dropped_events Journal events lost to ring \
       overwrite\n\
       # TYPE mtc_journal_dropped_events counter\n\
       mtc_journal_dropped_events %d\n"
      (Obs.Trace.dropped ()) (Obs.Journal.dropped ())
  ^ session_series (session_stats t)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let serve_metrics_request t fd =
  let buf = Bytes.create 1024 in
  let n = try Unix.read fd buf 0 1024 with Unix.Unix_error _ -> 0 in
  let req = Bytes.sub_string buf 0 (Stdlib.max n 0) in
  let response =
    match String.split_on_char ' ' req with
    | "GET" :: path :: _ when path = "/metrics" || path = "/" ->
        http_response ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (metrics_body t)
    | "GET" :: _ ->
        http_response ~status:"404 Not Found" ~content_type:"text/plain"
          "not found (try /metrics)\n"
    | _ ->
        http_response ~status:"405 Method Not Allowed"
          ~content_type:"text/plain" "only GET is supported\n"
  in
  let b = Bytes.of_string response in
  let rec write off len =
    if len > 0 then begin
      let n =
        try Unix.write fd b off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      write (off + n) (len - n)
    end
  in
  try write 0 (Bytes.length b) with Unix.Unix_error _ | Sys_error _ -> ()

let metrics_loop t lsock =
  let rec loop () =
    if not (stopping t) then begin
      (match Unix.select [ lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept lsock with
          | fd, _ ->
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> serve_metrics_request t fd)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Listeners, janitor, lifecycle. *)

let bind_addr = function
  | A_unix path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 1024;
      (sock, A_unix path)
  | A_tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (inet, port));
      Unix.listen sock 1024;
      let bound_port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (sock, A_tcp (host, bound_port))

(* JSONL journal drain: monotonic event times are mapped to wall clock
   with the offset captured at startup.  Called from the janitor tick
   and once more from {!stop} after the janitor has been joined. *)
let drain_journal t =
  match t.journal_out with
  | None -> ()
  | Some oc ->
      (match Obs.Journal.drain () with
      | [] -> ()
      | evs ->
          List.iter
            (fun (e : Obs.Journal.event) ->
              Printf.fprintf oc
                "{\"ts\":%.6f,\"kind\":%S,\"dom\":%d,\"a\":%d,\"b\":%d,\
                 \"c\":%d}\n"
                (t.journal_wall_off +. (float_of_int e.Obs.Journal.j_t /. 1e9))
                (Obs.Journal.kind_name e.Obs.Journal.j_kind)
                e.Obs.Journal.j_dom e.Obs.Journal.j_a e.Obs.Journal.j_b
                e.Obs.Journal.j_c)
            evs;
          Stdlib.flush oc)

(* The horizon-pin detector: a session whose feed frontier has not
   advanced for [pin_warn_after] seconds while it still retains live
   words is pinning memory the watermark GC can never reclaim (its own
   retained prefix, and — for a stream with a stalled internal session —
   an ever-growing window).  Flag it (journal event + gauge), and under
   [Fence_close] force-close it so the memory is released and the
   aggregate live-words bound holds again.  Poisoned sessions are exempt
   (their state was already dropped to the rendered text). *)
let pin_sweep t nowf =
  let warn = t.config.pin_warn_after in
  Mutex.lock t.rmu;
  let ss = Hashtbl.fold (fun _ s acc -> s :: acc) t.registry [] in
  Mutex.unlock t.rmu;
  let pinned_count = ref 0 in
  List.iter
    (fun s ->
      let fence =
        Mutex.lock s.smu;
        let f =
          if not (session_alive s) then false
          else begin
            let progress = s.feeds in
            if progress <> s.pin_frontier then begin
              s.pin_frontier <- progress;
              s.pin_since <- nowf;
              s.pinned <- false;
              false
            end
            else if
              s.pinned
              || (nowf -. s.pin_since > warn && s.lw_seen > 0)
            then begin
              let first = not s.pinned in
              s.pinned <- true;
              incr pinned_count;
              if first then begin
                let stalled_ns =
                  int_of_float ((nowf -. s.pin_since) *. 1e9)
                in
                Obs.Journal.emit Obs.Journal.Pin_warn ~a:s.sid ~b:stalled_ns
                  ~c:s.lw_seen;
                if t.config.pin_fence = Fence_close then begin
                  Obs.Journal.emit Obs.Journal.Pin_fence ~a:s.sid
                    ~b:stalled_ns ~c:0;
                  Metrics.pin_fence t.config.metrics
                end
              end;
              first && t.config.pin_fence = Fence_close
            end
            else false
          end
        in
        Mutex.unlock s.smu;
        f
      in
      if fence then force_enqueue s (I_close Wire.R_pinned))
    ss;
  Metrics.pinned_sessions t.config.metrics !pinned_count

let janitor_loop t =
  let idle = t.config.idle_timeout in
  let warn = t.config.pin_warn_after in
  (* tick at a quarter of the shortest enabled period (or a lazy 0.2 s
     when only the journal sink needs service) *)
  let period =
    List.fold_left
      (fun acc p -> if p > 0.0 then Stdlib.min acc p else acc)
      0.8 [ idle; warn ]
  in
  let tick = Stdlib.min 0.5 (Stdlib.max 0.01 (period /. 4.0)) in
  let rec loop () =
    if not (stopping t) then begin
      Thread.delay tick;
      let nowf = now () in
      (if idle > 0.0 then begin
         let deadline = nowf -. idle in
         Mutex.lock t.rmu;
         let ss = Hashtbl.fold (fun _ s acc -> s :: acc) t.registry [] in
         Mutex.unlock t.rmu;
         List.iter
           (fun s ->
             let expire =
               Mutex.lock s.smu;
               (* detached (restored, unresumed) sessions are exempt:
                  their whole point is surviving quiet periods *)
               let e =
                 session_alive s && s.ep <> None && s.last_activity < deadline
               in
               Mutex.unlock s.smu;
               e
             in
             if expire then force_enqueue s (I_close Wire.R_idle))
           ss
       end);
      if warn > 0.0 then pin_sweep t nowf;
      drain_journal t;
      loop ()
    end
  in
  loop ()

(* An fsync slower than this is journalled as a stall (a=0: the hook is
   shared across shards, so the event is unattributed). *)
let wal_stall_ns = 5_000_000

let start config =
  if config.listen = [] then invalid_arg "Server.start: no listen addresses";
  (* The journal is always on while a server runs: its events are rare
     (throttle flips, compactions, opens/closes, pin warnings — never
     per-feed), so the cost is nil and the history is there when an
     operator asks for it.  The module-level default stays disabled so
     library users keep the zero-cost path. *)
  Obs.Journal.enable ();
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> () (* not on this platform *));
  let nshards =
    if config.shards > 0 then config.shards else Pool.default_size ()
  in
  (* Restore before binding: a client connecting right after bind must
     be able to resume anything the old incarnation logged. *)
  let persist, restored, next_sid0 =
    match config.wal_dir with
    | None -> (None, [], 1)
    | Some dir -> (
        match
          Persist.open_dir
            ~on_fsync:(fun ns ->
              Metrics.wal_fsync config.metrics;
              if ns > wal_stall_ns then
                Obs.Journal.emit Obs.Journal.Wal_fsync_stall ~a:0 ~b:ns ~c:0)
            ~dir ~nshards ~sync:config.wal_sync
            ~render:(fun ~level v -> render_parts level v)
            ()
        with
        | Ok (p, restored, next_sid, stats) ->
            Metrics.replay config.metrics ~frames:stats.Persist.rs_frames
              ~ms:stats.Persist.rs_ms;
            (Some p, restored, next_sid)
        | Error msg -> failwith (Printf.sprintf "%s: %s" dir msg))
  in
  let listeners = List.map bind_addr config.listen in
  let shards =
    Array.init nshards (fun ix ->
        {
          ix;
          runq = Queue.create ();
          shmu = Mutex.create ();
          shcv = Condition.create ();
          snap_req = false;
          feeds_since_snap = 0;
        })
  in
  let t =
    {
      config;
      persist;
      nshards;
      ev = Evloop.create ();
      by_token = Hashtbl.create 4096;
      next_token = 0;
      nconns = 0;
      bound = List.map snd listeners;
      registry = Hashtbl.create 256;
      detached = Hashtbl.create 256;
      next_sid = next_sid0;
      rmu = Mutex.create ();
      actions = Queue.create ();
      amu = Mutex.create ();
      stop_requested = false;
      drain_started = false;
      shards;
      pool = Pool.create ~size:nshards ();
      live_total = Atomic.make 0;
      shards_stop = false;
      shard_runner = None;
      ev_thread = None;
      janitor = None;
      journal_out =
        Option.map
          (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
          config.journal;
      journal_wall_off =
        Unix.gettimeofday () -. (float_of_int (Obs.Clock.now_ns ()) /. 1e9);
      metrics_listener = None;
      metrics_thread = None;
    }
  in
  (* Restored sessions wait detached until a [Resume_session] claims
     them (or the final checkpoint carries them forward). *)
  List.iter
    (fun (r : Persist.restored) ->
      let s =
        {
          sid = r.Persist.r_sid;
          meta = r.Persist.r_meta;
          checker =
            (match r.Persist.r_state with
            | Snapshot_store.Live online -> S_live online
            | Snapshot_store.Poisoned { anomaly; rendered } ->
                S_poisoned { anomaly; rendered });
          last_seq = r.Persist.r_last_seq;
          ep = None;
          shard_ix = r.Persist.r_sid mod nshards;
          shard = shards.(r.Persist.r_sid mod nshards);
          queue = Queue.create ();
          queued = 0;
          throttled = false;
          reader_paused = false;
          closing = false;
          abandoned = false;
          on_runq = false;
          finished = false;
          smu = Mutex.create ();
          last_activity = now ();
          lw_seen = 0;
          opened_at = now ();
          feeds = 0;
          pin_frontier = 0;
          pin_since = now ();
          pinned = false;
        }
      in
      Hashtbl.replace t.registry s.sid s;
      Hashtbl.replace t.detached s.sid s)
    restored;
  (match config.metrics_port with
  | None -> ()
  | Some port ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen sock 16;
      let bound =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      t.metrics_listener <- Some (sock, bound);
      t.metrics_thread <- Some (Thread.create (metrics_loop t) sock));
  (* The shard loops occupy the whole pool for the server's lifetime; a
     coordinator systhread participates as the pool's submitting thread
     (so [nshards] loops really run on [nshards] domains). *)
  t.shard_runner <-
    Some
      (Thread.create
         (fun () ->
           Pool.run t.pool
             (List.init nshards (fun i () -> shard_loop t shards.(i))))
         ());
  (* Register the listeners and hand everything to the event loop. *)
  List.iter
    (fun (lfd, addr) ->
      Unix.set_nonblock lfd;
      let token = fresh_token t in
      Hashtbl.replace t.by_token token (T_listener (lfd, addr));
      Evloop.add t.ev lfd ~token ~read:true ~write:false)
    listeners;
  t.ev_thread <- Some (Thread.create ev_loop t);
  if
    config.idle_timeout > 0.0 || config.pin_warn_after > 0.0
    || t.journal_out <> None
  then t.janitor <- Some (Thread.create janitor_loop t);
  t

(* Final checkpoint, after every domain has stopped: single-threaded, so
   touching all shards' sessions from here is safe. *)
let final_persist t =
  match t.persist with
  | None -> ()
  | Some p ->
      (if t.config.final_checkpoint then
         try
           for shard = 0 to t.nshards - 1 do
             do_checkpoint t t.shards.(shard)
           done
         with Unix.Unix_error _ | Sys_error _ -> ());
      Persist.close p

let stop t =
  Mutex.lock t.rmu;
  let already = t.stop_requested in
  t.stop_requested <- true;
  Mutex.unlock t.rmu;
  if not already then begin
    Evloop.wakeup t.ev;
    Option.iter Thread.join t.janitor;
    Option.iter Thread.join t.metrics_thread;
    Option.iter
      (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.metrics_listener;
    (* The event loop drains every connection (sessions get
       [Session_closed], then [Bye]) and exits once none remain. *)
    Option.iter Thread.join t.ev_thread;
    (* Every session is finished, so the run queues are empty: stop the
       shard loops and the pool. *)
    Array.iter
      (fun sh ->
        Mutex.lock sh.shmu;
        t.shards_stop <- true;
        Condition.broadcast sh.shcv;
        Mutex.unlock sh.shmu)
      t.shards;
    Option.iter Thread.join t.shard_runner;
    Pool.shutdown t.pool;
    final_persist t;
    (* One last drain so close events from the shutdown itself land in
       the sink; safe — the janitor (the only other drainer) is joined. *)
    drain_journal t;
    Option.iter close_out t.journal_out;
    Evloop.close t.ev
  end

let run ?(on_signal = [ Sys.sigterm; Sys.sigint ]) ?on_ready config =
  let t = start config in
  Option.iter (fun f -> f t) on_ready;
  let requested = Atomic.make false in
  let hup = Atomic.make false in
  List.iter
    (fun s ->
      try
        Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set requested true))
      with Invalid_argument _ | Sys_error _ -> ())
    on_signal;
  (if t.persist <> None then
     try
       Sys.set_signal Sys.sighup
         (Sys.Signal_handle (fun _ -> Atomic.set hup true))
     with Invalid_argument _ | Sys_error _ -> ());
  while not (Atomic.get requested) do
    Thread.delay 0.2;
    if Atomic.exchange hup false then checkpoint t
  done;
  stop t
