examples/quickstart.mli:
