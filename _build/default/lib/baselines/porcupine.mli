(** The Porcupine baseline (Athalye): a general linearizability checker in
    the Wing–Gong / Lowe style with memoization and P-compositionality
    (per-object partitioning) — what MTC-SSER is compared against on
    lightweight-transaction histories (Figure 9).

    Unlike VL-LWT's linear-time chain construction, the search explores
    linearization orders among real-time-concurrent operations and
    memoizes (linearized-set, state) pairs, so its cost grows with the
    concurrency window — the behaviour the paper's experiment exhibits. *)

type result = {
  linearizable : bool;
  visited_states : int;  (** memoized search states across all keys *)
}

val check : ?max_states:int -> Lwt.t -> result
(** [max_states] (default 20 million, across keys) bounds the search; on
    exhaustion the checker gives up and reports non-linearizable — noted
    in EXPERIMENTS.md as Porcupine's practical memory/time cap (the paper
    makes the same observation about limited checking resources). *)
