lib/history/mini.mli: Txn
