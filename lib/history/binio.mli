(** Binary encode/decode primitives shared by the service wire protocol
    ({!module:Wire} in [lib/service]): LEB128 varints (zigzag for signed
    ints, so every native [int] including [min_int] round-trips),
    length-prefixed strings, and whole transactions.

    Encoders append to a caller-owned [Buffer.t] — one buffer per
    connection, reused across frames.  Decoders consume a [reader]
    cursor over an immutable string and raise {!Decode_error} on any
    malformed or truncated input; the protocol layer catches it at the
    frame boundary. *)

exception Decode_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Decode_error} with the formatted message. *)

type reader = { src : string; mutable pos : int }

val reader : ?pos:int -> string -> reader
val remaining : reader -> int
val at_end : reader -> bool
val read_byte : reader -> int

val add_uvarint : Buffer.t -> int -> unit
val read_uvarint : reader -> int

val add_varint : Buffer.t -> int -> unit
(** Zigzag-encoded signed varint. *)

val read_varint : reader -> int

val add_string : Buffer.t -> string -> unit
val read_string : reader -> string

val add_op : Buffer.t -> Op.t -> unit
val read_op : reader -> Op.t

val add_txn : Buffer.t -> Txn.t -> unit
val read_txn : reader -> Txn.t
