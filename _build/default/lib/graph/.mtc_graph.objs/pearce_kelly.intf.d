lib/graph/pearce_kelly.mli:
