(* Figure 10: end-to-end SER checking — MTC (MT workloads) vs Cobra (GT
   workloads), with time decomposed into history generation and
   verification (a-c) and the verifier's memory (d-f).  Cobra's
   verification time is further split into its non-solver components
   (polygraph construction + pruning + encoding) and SAT solving, the
   paper's key observation in Section V-D. *)

let mtc_row label ~keys ~txns ~sessions ~seed =
  let r, gen =
    Stats.time_it (fun () ->
        Bench_util.mt_history ~sessions ~keys ~txns ~seed ())
  in
  let (outcome, alloc) =
    Bench_util.alloc_during (fun () -> Checker.check_ser r.Scheduler.history)
  in
  let verify = Bench_util.time_median (fun () -> Checker.check_ser r.Scheduler.history) in
  [
    "MTC " ^ label;
    Bench_util.ms gen;
    Bench_util.ms verify;
    "-";
    "-";
    Bench_util.mb alloc;
    Bench_util.verdict_str (Checker.passes outcome);
  ]

let cobra_row label ~keys ~txns ~sessions ~ops ~seed =
  let r, gen =
    Stats.time_it (fun () ->
        Bench_util.gt_history ~sessions ~keys ~txns ~ops ~seed ())
  in
  let (res, alloc) =
    Bench_util.alloc_during (fun () -> Cobra.check r.Scheduler.history)
  in
  let s = res.Cobra.stats in
  [
    "Cobra " ^ label;
    Bench_util.ms gen;
    Bench_util.ms (Cobra.total_s s);
    Bench_util.ms (Cobra.nonsolver_s s);
    Bench_util.ms s.Cobra.solve_s;
    Bench_util.mb alloc;
    Bench_util.verdict_str res.Cobra.serializable;
  ]

let header =
  [ "checker/config"; "gen (ms)"; "verify (ms)"; "non-solver (ms)";
    "solver (ms)"; "verify alloc (MB)"; "verdict" ]

let run () =
  Bench_util.section
    "Figure 10: end-to-end SER checking, MTC (MT) vs Cobra (GT)";

  Bench_util.subsection "(a)+(d) #txns sweep (100 keys, 10 sessions, GT: 8 ops/txn)";
  Bench_util.print_table ~header
    (List.concat
       (Bench_util.par_map
          (fun txns ->
            let label = Printf.sprintf "%d txns" txns in
            [
              mtc_row label ~keys:100 ~txns ~sessions:10 ~seed:401;
              cobra_row label ~keys:100 ~txns ~sessions:10 ~ops:8 ~seed:401;
            ])
          (Bench_util.sweep (List.map Bench_util.scale [ 250; 500; 1000; 2000 ]))));

  let txns1k = Bench_util.scale 1000 in
  Bench_util.subsection "(b)+(e) #ops/txn sweep for GT (100 keys, 1000 txns; MT fixed at <=4)";
  Bench_util.print_table ~header
    (mtc_row "(<=4 ops)" ~keys:100 ~txns:txns1k ~sessions:10 ~seed:402
    :: Bench_util.par_map
         (fun ops ->
           cobra_row
             (Printf.sprintf "%d ops/txn" ops)
             ~keys:100 ~txns:txns1k ~sessions:10 ~ops ~seed:402)
         (Bench_util.sweep [ 4; 8; 16 ]));

  Bench_util.subsection "(c)+(f) #objects sweep (1000 txns, 10 sessions, GT: 8 ops/txn)";
  Bench_util.print_table ~header
    (List.concat
       (Bench_util.par_map
          (fun keys ->
            let label = Printf.sprintf "%d objects" keys in
            [
              mtc_row label ~keys ~txns:txns1k ~sessions:10 ~seed:403;
              cobra_row label ~keys ~txns:txns1k ~sessions:10 ~ops:8 ~seed:403;
            ])
          (Bench_util.sweep [ 400; 200; 100; 50 ])))
