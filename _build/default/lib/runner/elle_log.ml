type status = Committed | Aborted

type aop = Append of Op.key * int | Read_list of Op.key * int list

type txn = { id : int; session : int; ops : aop list; status : status }

type t = { txns : txn list; num_keys : int; num_sessions : int }

let committed t = List.filter (fun x -> x.status = Committed) t.txns

let pp_txn ppf t =
  let status = match t.status with Committed -> "C" | Aborted -> "A" in
  Format.fprintf ppf "T%d[s%d,%s:" t.id t.session status;
  List.iter
    (fun op ->
      match op with
      | Append (k, v) -> Format.fprintf ppf " append(x%d,%d)" k v
      | Read_list (k, l) ->
          Format.fprintf ppf " r(x%d)=[%s]" k
            (String.concat ";" (List.map string_of_int l)))
    t.ops;
  Format.fprintf ppf "]"
