lib/core/divergence.mli: Format Index Op Txn
