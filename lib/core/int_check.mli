(** The INT-axiom screen (paper Section II-D, footnote of Algorithm 1).

    Before building dependencies, every checker first rules out
    THINAIRREAD, ABORTEDREAD, and the intra-transactional anomalies of
    Figure 5c–5g.  After this screen, every external read of every
    committed transaction resolves to the final write of another (or the
    initial) committed transaction — making the WR relation well-defined
    and total. *)

type kind =
  | Thin_air_read  (** value written by no transaction (Fig. 5a) *)
  | Aborted_read of Txn.id  (** value from an aborted transaction (5b) *)
  | Future_read  (** value from a later write of the same txn (5c) *)
  | Not_my_last_write
      (** own write read back, but not the latest preceding one (5d) *)
  | Not_my_own_write
      (** read after an own write returns someone else's value (5e) *)
  | Intermediate_read of Txn.id
      (** value overwritten within the writing transaction (5f) *)
  | Non_repeatable_reads
      (** two reads of the same object disagree with no write between (5g) *)

type violation = { txn : Txn.id; op_index : int; kind : kind }

val kind_name : kind -> string
val pp_violation : Format.formatter -> violation -> unit

val check : ?pool:Pool.t -> Index.t -> (unit, violation) result
(** First violation in transaction-id, then program, order.  [pool]
    screens vertex slices concurrently; the min-position tie-break keeps
    the reported violation identical to the sequential scan. *)

val check_all : Index.t -> violation list

val check_ts : ?pool:Pool.t -> Ts.t -> (unit, violation) result
(** The screen with timestamp-predicted external resolution (Vbox mode).
    [Trust] attributes every external read to its predicted writer;
    [Verify] certifies the prediction against the value actually read
    and serially re-judges every disagreement through the value tables
    (classifying exactly like {!check}, so the reported violation is
    identical), filling the mismatch counters, per-key fallback flags,
    and diagnostics of the {!Ts.t}.  Call once per [Ts.t]. *)

val check_txn_with :
  resolve:(int -> Op.key -> Op.value -> Index.writer) -> Txn.t -> violation list
(** The per-transaction screen with a caller-supplied value-resolution
    oracle — used by the online checker, whose write tables grow as the
    stream arrives.  [resolve] receives the op index of the external
    read ahead of the key and value, so timestamp-screen callers can
    cache per-op predictions. *)
