(* Quickstart: build a tiny history by hand, check it at every level, and
   read a counterexample.

     dune exec examples/quickstart.exe *)

let () =
  print_endline "== 1. A serializable history ==";
  (* Two sessions hand over a counter: T1 reads the initial value of x and
     writes 1; T2 reads T1's value and writes 2. *)
  let chain =
    Builder.(
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 1; w 0 2 ];
        ])
  in
  List.iter
    (fun level ->
      Format.printf "  %-4s : %a@."
        (Checker.level_name level)
        Checker.pp_outcome
        (Checker.check level chain))
    [ Checker.SSER; Checker.SER; Checker.SI ];

  print_endline "\n== 2. A lost update ==";
  (* Both transactions read x = 0 and write different values: the
     DIVERGENCE pattern of paper Figure 3. *)
  let lost_update =
    Builder.(
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 0; w 0 2 ];
        ])
  in
  (match Checker.check_si lost_update with
  | Checker.Pass -> print_endline "  unexpectedly passed?!"
  | Checker.Fail violation ->
      print_string (Report.render lost_update Checker.SI violation));

  print_endline "\n== 3. Histories from the simulated database ==";
  (* Generate an MT workload, execute it against the engine under snapshot
     isolation, and verify the observed history. *)
  let spec =
    Mt_gen.generate
      { Mt_gen.default with num_txns = 1000; num_keys = 50; seed = 7 }
  in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 50;
      seed = 7 }
  in
  let result = Scheduler.run ~db ~spec () in
  Format.printf "  executed: %s@." (History.stats result.Scheduler.history);
  Format.printf "  abort rate: %.1f%%@." (100.0 *. Scheduler.abort_rate result);
  Format.printf "  SI  : %a@." Checker.pp_outcome
    (Checker.check_si result.Scheduler.history);
  Format.printf "  SER : %a  (write skew is allowed under SI)@."
    Checker.pp_outcome
    (Checker.check_ser result.Scheduler.history);

  print_endline "\n== 4. Save and re-load the history ==";
  let path = Filename.temp_file "mtc_quickstart" ".hist" in
  Codec.save path result.Scheduler.history;
  (match Codec.load path with
  | Ok h -> Format.printf "  reloaded %s from %s@." (History.stats h) path
  | Error e -> Format.printf "  reload failed: %s@." e);
  Sys.remove path
