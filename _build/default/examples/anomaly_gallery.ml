(* The gallery of paper Figure 5 / Table I: all 14 isolation anomalies as
   mini-transaction histories, with each checker's verdict.

     dune exec examples/anomaly_gallery.exe *)

let () =
  Format.printf
    "The 14 isolation anomalies captured by mini-transactions.@.%s@."
    "(x = x0, y = x1; T0 is the implicit initial transaction)";
  List.iter
    (fun kind ->
      Format.printf "@.%s — %s@." (Anomaly.name kind) (Anomaly.description kind);
      let h = Anomaly.history kind in
      Array.iter
        (fun (t : Txn.t) ->
          if t.Txn.id <> History.init_id then Format.printf "  %a@." Txn.pp t)
        h.History.txns;
      Format.printf "  verdicts:";
      List.iter
        (fun level ->
          Format.printf " %s=%s"
            (Checker.level_name level)
            (if Checker.passes (Checker.check level h) then "pass" else "FAIL"))
        [ Checker.SSER; Checker.SER; Checker.SI ];
      Format.printf "@.")
    Anomaly.all
