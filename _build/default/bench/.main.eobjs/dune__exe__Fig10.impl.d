bench/fig10.ml: Bench_util Checker Cobra List Printf Scheduler Stats
