(** Growable flat [int] array (amortized-doubling push) — the edge-stream
    buffer of the direct-to-CSR dependency builder.  No per-element
    boxing; the only allocation is the occasional capacity doubling. *)

type t

val create : int -> t
(** [create capacity] with an initial capacity hint (min 4). *)

val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int

val data : t -> int array
(** The backing array — valid entries are [0 .. length t - 1].  Exposed
    so counting-sort passes can index it directly; do not retain across
    further pushes (doubling replaces the array). *)
