type result = { linearizable : bool; visited_states : int }

(* Wing–Gong search for one object.

   A state is (set of linearized events, register value); from each state,
   any un-linearized event may be linearized next provided (a) no other
   un-linearized event finished before it started (real-time minimality)
   and (b) the register semantics accept it.  Memoizing the states keeps
   chains cheap; concurrency windows of width w cost up to 2^w states. *)

exception Budget_exhausted

let check_key ~budget ~visited_counter (events : Lwt.event array) =
  let n = Array.length events in
  if n = 0 then true
  else begin
    (* Histories arrive ordered by invocation (start) time — the checker
       has no access to the hidden linearization order. *)
    let events = Array.copy events in
    Array.sort
      (fun (a : Lwt.event) b -> compare (a.start, a.finish) (b.start, b.finish))
      events;
    let words = (n + 62) / 63 in
    let none_value = min_int in
    (* Visited (bitset, value) pairs. *)
    let visited : (string * int, unit) Hashtbl.t = Hashtbl.create 4096 in
    let key_of bits value =
      (String.concat "," (List.map string_of_int (Array.to_list bits)), value)
    in
    let bit_test bits i = bits.(i / 63) land (1 lsl (i mod 63)) <> 0 in
    let bit_set bits i =
      let b = Array.copy bits in
      b.(i / 63) <- b.(i / 63) lor (1 lsl (i mod 63));
      b
    in
    let apply value (e : Lwt.event) =
      match e.op with
      | Lwt.Insert { value = v; _ } -> if value = none_value then Some v else None
      | Lwt.Rw { expected; new_value; _ } ->
          if value = expected then Some new_value else None
      | Lwt.Read { value = v; _ } -> if value = v then Some value else None
    in
    let rec search bits value count =
      if count = n then true
      else begin
        let k = key_of bits value in
        if Hashtbl.mem visited k then false
        else begin
          Hashtbl.replace visited k ();
          incr visited_counter;
          if !visited_counter > budget then raise Budget_exhausted;
          (* Real-time frontier: an event is a candidate iff it is not yet
             linearized and no other un-linearized event finished before it
             started. *)
          let min_finish = ref max_int in
          for i = 0 to n - 1 do
            if not (bit_test bits i) then
              min_finish := Stdlib.min !min_finish events.(i).Lwt.finish
          done;
          let rec try_candidates i =
            if i >= n then false
            else if
              (not (bit_test bits i)) && events.(i).Lwt.start <= !min_finish
            then
              match apply value events.(i) with
              | Some value' ->
                  search (bit_set bits i) value' (count + 1)
                  || try_candidates (i + 1)
              | None -> try_candidates (i + 1)
            else try_candidates (i + 1)
          in
          try_candidates 0
        end
      end
    in
    search (Array.make words 0) none_value 0
  end

let check ?(max_states = 20_000_000) (h : Lwt.t) =
  let visited_counter = ref 0 in
  try
    let ok = ref true in
    for k = 0 to h.Lwt.num_keys - 1 do
      if !ok then
        ok := check_key ~budget:max_states ~visited_counter (Lwt.restrict h k)
    done;
    { linearizable = !ok; visited_states = !visited_counter }
  with Budget_exhausted ->
    { linearizable = false; visited_states = !visited_counter }
