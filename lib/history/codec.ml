let to_string (h : History.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "mtc-history v1\n";
  Buffer.add_string buf (Printf.sprintf "keys %d\n" h.num_keys);
  Buffer.add_string buf (Printf.sprintf "sessions %d\n" h.num_sessions);
  Array.iter
    (fun (t : Txn.t) ->
      if t.id <> History.init_id then begin
        Buffer.add_string buf
          (Printf.sprintf "txn %d %d %s %d %d" t.id t.session
             (match t.status with Txn.Committed -> "C" | Txn.Aborted -> "A")
             t.start_ts t.commit_ts);
        Array.iter
          (fun op ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (Op.to_string op))
          t.ops;
        Buffer.add_char buf '\n'
      end)
    h.txns;
  Buffer.contents buf

(* Parsing is total: any malformed input — truncated op, unknown status,
   duplicate or out-of-order transaction id, key out of range — yields
   [Error] with the 1-based line number of the offending line in the
   original input (comment and blank lines count), never an exception. *)

exception Bad of string

let sp_parse = Obs.Trace.intern "parse"

let of_string s = Obs.Trace.with_span sp_parse @@ fun () ->
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let faill line fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "line %d: %s" line m))) fmt
  in
  (* (original line number, trimmed content), comments/blanks dropped *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) ->
           l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let parse_kv name (ln, line) =
    match String.split_on_char ' ' line with
    | [ k; v ] when k = name -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> faill ln "bad %s count %S" name v)
    | _ -> faill ln "expected %S header, got %S" (name ^ " <n>") line
  in
  let parse_txn (ln, line) =
    match String.split_on_char ' ' line with
    | "txn" :: id :: session :: status :: start :: commit :: ops ->
        let int what s =
          match int_of_string_opt s with
          | Some n -> n
          | None -> faill ln "bad %s %S" what s
        in
        let id = int "txn id" id in
        let session = int "session" session in
        let status =
          match status with
          | "C" -> Txn.Committed
          | "A" -> Txn.Aborted
          | other -> faill ln "bad status %S (want C or A)" other
        in
        let start_ts = int "start_ts" start in
        let commit_ts = int "commit_ts" commit in
        let ops =
          List.map
            (fun op_s ->
              match Op.of_string op_s with
              | Some op -> op
              | None -> faill ln "bad operation %S" op_s)
            ops
        in
        (ln, Txn.make ~id ~session ~status ~start_ts ~commit_ts ops)
    | _ -> faill ln "unparseable txn line %S" line
  in
  try
    match lines with
    | (_, header) :: rest when header = "mtc-history v1" -> (
        match rest with
        | keys_line :: sessions_line :: txn_lines ->
            let num_keys = parse_kv "keys" keys_line in
            let num_sessions = parse_kv "sessions" sessions_line in
            let txns = List.map parse_txn txn_lines in
            (* Ids must be the dense sequence 1..n in order (the implicit
               initial transaction is id 0): diagnose duplicates and gaps
               with their line before History.make would. *)
            List.iteri
              (fun i (ln, (t : Txn.t)) ->
                if t.Txn.id <> i + 1 then
                  if
                    List.exists
                      (fun (_, (u : Txn.t)) -> u.Txn.id = t.Txn.id)
                      (List.filteri (fun j _ -> j < i) txns)
                  then faill ln "duplicate txn id %d" t.Txn.id
                  else
                    faill ln "txn id %d out of order (expected %d)" t.Txn.id
                      (i + 1);
                if t.Txn.session < 1 || t.Txn.session > num_sessions then
                  faill ln "session %d out of [1,%d]" t.Txn.session num_sessions;
                Array.iter
                  (fun op ->
                    let k = Op.key op in
                    if k < 0 || k >= num_keys then
                      faill ln "key %d out of [0,%d)" k num_keys)
                  t.Txn.ops)
              txns;
            (* all History.make preconditions were just checked per line;
               keep the guard anyway so parsing stays total *)
            (try Ok (History.make ~num_keys ~num_sessions (List.map snd txns))
             with Invalid_argument m -> fail "%s" m)
        | _ -> fail "truncated header (want magic, keys, sessions)")
    | (ln, _) :: _ -> faill ln "missing magic line 'mtc-history v1'"
    | [] -> fail "empty input"
  with Bad m -> Error m

let save path h =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string h))

let load path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error m -> Error m
