(* Tests for mtc.baselines: Polygraph, Prune, Cobra, Polysi, Porcupine,
   Elle — including cross-validation against MTC's own checkers. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

open Builder

(* --- Polygraph --- *)

let test_polygraph_known_edges () =
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1 ] ]
  in
  match Polygraph.build h with
  | Ok pg ->
      (* SO: init->T1, init->T2; WR: init->T1(x), T1->T2(x). *)
      checkb "wr t1->t2" true
        (List.mem (Polygraph.Dep, 1, 2) pg.Polygraph.known);
      (* Writers of x: init, T1 -> one constraint. *)
      checki "one constraint" 1 (Polygraph.num_constraints pg)
  | Error _ -> Alcotest.fail "build failed"

let test_polygraph_screens_intra () =
  match Polygraph.build (Anomaly.history Anomaly.Aborted_read) with
  | Error (Polygraph.Screen _) -> ()
  | _ -> Alcotest.fail "aborted read must be screened"

let test_polygraph_constraint_structure () =
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 0; w 0 2 ] ]
  in
  match Polygraph.build h with
  | Ok pg ->
      (* 3 writers of x (init, T1, T2) -> 3 pairs. *)
      checki "three constraints" 3 (Polygraph.num_constraints pg);
      List.iter
        (fun (c : Polygraph.constr) ->
          checkb "both sides non-empty" true
            (c.Polygraph.if_w1_first <> [] && c.Polygraph.if_w2_first <> []))
        pg.Polygraph.constraints
  | Error _ -> Alcotest.fail "build failed"

(* --- Prune --- *)

let test_prune_decides_chain () =
  (* An RMW chain is fully ordered by WR edges: everything prunes. *)
  let h =
    history ~keys:1 ~sessions:1
      [
        txn ~session:1 [ r 0 0; w 0 1 ];
        txn ~session:1 [ r 0 1; w 0 2 ];
        txn ~session:1 [ r 0 2; w 0 3 ];
      ]
  in
  match Polygraph.build h with
  | Ok pg ->
      let pr = Prune.run ~n:4 pg ~use_anti:true in
      checki "all six pairs decided" 6 pr.Prune.decided;
      checki "none left" 0 (List.length pr.Prune.undecided)
  | Error _ -> Alcotest.fail "build failed"

let test_prune_leaves_blind_writes () =
  (* Blind writes cannot be ordered by known edges. *)
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Write (0, 1) ] in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Write (0, 2) ] in
  let h = History.make ~num_keys:1 ~num_sessions:2 [ t1; t2 ] in
  match Polygraph.build h with
  | Ok pg ->
      let pr = Prune.run ~n:3 pg ~use_anti:true in
      checkb "undecided remains" true (List.length pr.Prune.undecided >= 1)
  | Error _ -> Alcotest.fail "build failed"

(* --- Cobra --- *)

let test_cobra_catalogue () =
  List.iter
    (fun kind ->
      let got = (Cobra.check (Anomaly.history kind)).Cobra.serializable in
      checkb (Anomaly.name kind) (Anomaly.satisfies kind Checker.SER) got)
    Anomaly.all

let test_cobra_blind_write_sat () =
  (* Two blind writes with no reads: any order works. *)
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Write (0, 1) ] in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Write (0, 2) ] in
  let h = History.make ~num_keys:1 ~num_sessions:2 [ t1; t2 ] in
  checkb "serializable" true (Cobra.check h).Cobra.serializable

let test_cobra_blind_write_unsat () =
  (* Classic non-serializable blind-write pattern: T3 reads x from T1 and
     y from T2, T4 reads x from T2's overwrite and y from T1's overwrite —
     wait, registers: build a cycle needing both orders of (T1,T2) on two
     keys.  T1 writes x,y; T2 writes x,y (blind).  T3 reads x=T1, y=T2;
     T4 reads x=T2... then WW(x): T1<T2 and WW(y): T2<T1 are forced by the
     reads-from plus anti edges, closing a cycle. *)
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Write (0, 11); Op.Write (1, 12) ] in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Write (0, 21); Op.Write (1, 22) ] in
  let t3 = Txn.make ~id:3 ~session:3 [ Op.Read (0, 11); Op.Read (1, 22) ] in
  let t4 = Txn.make ~id:4 ~session:4 [ Op.Read (0, 21); Op.Read (1, 12) ] in
  let h = History.make ~num_keys:2 ~num_sessions:4 [ t1; t2; t3; t4 ] in
  (* This is the LONGFORK shape with blind writes; not serializable. *)
  checkb "not serializable" false (Cobra.check h).Cobra.serializable

let test_cobra_stats_populated () =
  let h =
    history ~keys:1 ~sessions:2
      [ txn ~session:1 [ r 0 0; w 0 1 ]; txn ~session:2 [ r 0 1; w 0 2 ] ]
  in
  let res = Cobra.check h in
  checkb "times nonneg" true (Cobra.total_s res.Cobra.stats >= 0.0);
  checki "constraints counted" 3 res.Cobra.stats.Cobra.constraints_total

(* --- Polysi --- *)

let test_polysi_catalogue () =
  List.iter
    (fun kind ->
      let got = (Polysi.check (Anomaly.history kind)).Polysi.si in
      checkb (Anomaly.name kind) (Anomaly.satisfies kind Checker.SI) got)
    Anomaly.all

let test_polysi_write_skew_passes () =
  checkb "write skew is SI" true
    (Polysi.check (Anomaly.history Anomaly.Write_skew)).Polysi.si

let test_polysi_long_fork_fails () =
  checkb "long fork violates SI" false
    (Polysi.check (Anomaly.history Anomaly.Long_fork)).Polysi.si

(* --- cross-validation on engine histories --- *)

let engine_history ~level ~fault ~seed =
  let spec = Mt_gen.generate { Mt_gen.default with num_txns = 250; num_keys = 8; seed } in
  let db = { Db.level; fault; num_keys = 8; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

let test_cobra_agrees_with_mtc () =
  List.iter
    (fun (level, fault) ->
      for seed = 1 to 3 do
        let h = engine_history ~level ~fault ~seed in
        let mtc = Checker.passes (Checker.check_ser h) in
        let cobra = (Cobra.check h).Cobra.serializable in
        checkb (Printf.sprintf "seed %d" seed) mtc cobra
      done)
    [
      (Isolation.Serializable, Fault.No_fault);
      (Isolation.Snapshot, Fault.No_fault);
      (Isolation.Snapshot, Fault.Lost_update 0.3);
      (Isolation.Serializable, Fault.Write_skew 0.5);
    ]

let test_polysi_agrees_with_mtc () =
  List.iter
    (fun (level, fault) ->
      for seed = 1 to 3 do
        let h = engine_history ~level ~fault ~seed in
        let mtc = Checker.passes (Checker.check_si h) in
        let polysi = (Polysi.check h).Polysi.si in
        checkb (Printf.sprintf "seed %d" seed) mtc polysi
      done)
    [
      (Isolation.Snapshot, Fault.No_fault);
      (Isolation.Snapshot, Fault.Lost_update 0.3);
      (Isolation.Snapshot, Fault.Causality_violation 0.2);
      (Isolation.Snapshot, Fault.Long_fork 0.5);
    ]

(* --- Porcupine --- *)

let test_porcupine_valid () =
  let h = Lwt_gen.generate { Lwt_gen.default with txns_per_session = 40 } in
  checkb "linearizable" true (Porcupine.check h).Porcupine.linearizable

let test_porcupine_violation () =
  let h =
    Lwt_gen.generate
      { Lwt_gen.default with txns_per_session = 40; inject = Lwt_gen.Rt_violation }
  in
  checkb "detected" false (Porcupine.check h).Porcupine.linearizable

let test_porcupine_budget () =
  let h = Lwt_gen.generate { Lwt_gen.default with txns_per_session = 40 } in
  let r = Porcupine.check ~max_states:1 h in
  checkb "budget exhaustion reported as failure" false r.Porcupine.linearizable

(* --- Elle --- *)

let append_log ~fault ~seed =
  let spec =
    Append_gen.generate { Append_gen.default with num_txns = 300; num_keys = 8; seed }
  in
  let db = { Db.level = Isolation.Snapshot; fault; num_keys = 8; seed } in
  Option.get (Scheduler.run ~db ~spec ()).Scheduler.elle

let test_elle_append_clean () =
  let e = Elle.check_append ~level:Checker.SI (append_log ~fault:Fault.No_fault ~seed:1) in
  checkb "clean passes" true e.Elle.ok

let test_elle_append_lost_update () =
  let e =
    Elle.check_append ~level:Checker.SI
      (append_log ~fault:(Fault.Lost_update 0.4) ~seed:2)
  in
  checkb "lost update detected" false e.Elle.ok

let test_elle_append_aborted_read () =
  let e =
    Elle.check_append ~level:Checker.SI
      (append_log ~fault:(Fault.Aborted_read 0.4) ~seed:3)
  in
  checkb "aborted read detected" false e.Elle.ok

let test_elle_registers_clean () =
  let h = engine_history ~level:Isolation.Snapshot ~fault:Fault.No_fault ~seed:4 in
  checkb "clean registers pass" true
    (Elle.check_registers ~level:Checker.SI h).Elle.ok

let test_elle_registers_sound () =
  (* Whatever Elle-wr flags on RMW-only histories, MTC flags too
     (soundness: Elle's inferred edges are a subset of the true ones). *)
  List.iter
    (fun (fault, seed) ->
      let h = engine_history ~level:Isolation.Snapshot ~fault ~seed in
      let elle = (Elle.check_registers ~level:Checker.SI h).Elle.ok in
      let mtc = Checker.passes (Checker.check_si h) in
      checkb "elle-fails => mtc-fails" true (elle || not mtc))
    [ (Fault.No_fault, 5); (Fault.Lost_update 0.4, 6); (Fault.Causality_violation 0.3, 7) ]

let test_elle_registers_misses_blind_write_cycles () =
  (* The documented incompleteness: a GT history with blind writes whose
     violation hides in un-inferred WW order passes Elle-wr but fails
     Cobra. *)
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Write (0, 11); Op.Write (1, 12) ] in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Write (0, 21); Op.Write (1, 22) ] in
  let t3 = Txn.make ~id:3 ~session:3 [ Op.Read (0, 11); Op.Read (1, 22) ] in
  let t4 = Txn.make ~id:4 ~session:4 [ Op.Read (0, 21); Op.Read (1, 12) ] in
  let h = History.make ~num_keys:2 ~num_sessions:4 [ t1; t2; t3; t4 ] in
  checkb "elle-wr misses it" true (Elle.check_registers ~level:Checker.SER h).Elle.ok;
  checkb "cobra catches it" false (Cobra.check h).Cobra.serializable

(* --- dbcop --- *)

let test_dbcop_catalogue () =
  List.iter
    (fun kind ->
      let r = Dbcop.check (Anomaly.history kind) in
      Alcotest.check Alcotest.bool (Anomaly.name kind)
        (Anomaly.satisfies kind Checker.SER)
        r.Dbcop.serializable)
    Anomaly.all

let test_dbcop_agrees_with_mtc () =
  List.iter
    (fun (fault, seeds) ->
      List.iter
        (fun seed ->
          let spec =
            Mt_gen.generate
              { Mt_gen.num_sessions = 4; num_txns = 120; num_keys = 8;
                dist = Distribution.Uniform; seed }
          in
          let db = { Db.level = Isolation.Snapshot; fault; num_keys = 8; seed } in
          let h = (Scheduler.run ~db ~spec ()).Scheduler.history in
          let r = Dbcop.check h in
          if not r.Dbcop.gave_up then
            Alcotest.check Alcotest.bool
              (Printf.sprintf "seed %d" seed)
              (Checker.passes (Checker.check_ser h))
              r.Dbcop.serializable)
        seeds)
    [ (Fault.No_fault, [ 1; 2; 3 ]); (Fault.Lost_update 0.2, [ 4; 5 ]) ]

let test_dbcop_rejects_gt () =
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Write (0, 1) ] in
  let h = History.make ~num_keys:1 ~num_sessions:1 [ t1 ] in
  Alcotest.check Alcotest.bool "blind write invalid" true
    ((Dbcop.check h).Dbcop.invalid <> None)

let test_dbcop_budget () =
  let h = engine_history ~level:Isolation.Serializable ~fault:Fault.No_fault ~seed:9 in
  let r = Dbcop.check ~max_states:1 h in
  Alcotest.check Alcotest.bool "gave up" true r.Dbcop.gave_up

let suite =
  [
    ("polygraph: known edges", `Quick, test_polygraph_known_edges);
    ("polygraph: screens intra anomalies", `Quick, test_polygraph_screens_intra);
    ("polygraph: constraint structure", `Quick, test_polygraph_constraint_structure);
    ("prune: RMW chain fully decided", `Quick, test_prune_decides_chain);
    ("prune: blind writes stay", `Quick, test_prune_leaves_blind_writes);
    ("cobra: anomaly catalogue", `Quick, test_cobra_catalogue);
    ("cobra: blind writes satisfiable", `Quick, test_cobra_blind_write_sat);
    ("cobra: blind-write long fork unsat", `Quick, test_cobra_blind_write_unsat);
    ("cobra: stats populated", `Quick, test_cobra_stats_populated);
    ("polysi: anomaly catalogue", `Quick, test_polysi_catalogue);
    ("polysi: write skew passes SI", `Quick, test_polysi_write_skew_passes);
    ("polysi: long fork fails SI", `Quick, test_polysi_long_fork_fails);
    ("cobra agrees with MTC-SER", `Quick, test_cobra_agrees_with_mtc);
    ("polysi agrees with MTC-SI", `Quick, test_polysi_agrees_with_mtc);
    ("porcupine: valid history", `Quick, test_porcupine_valid);
    ("porcupine: violation detected", `Quick, test_porcupine_violation);
    ("porcupine: budget exhaustion", `Quick, test_porcupine_budget);
    ("elle-append: clean", `Quick, test_elle_append_clean);
    ("elle-append: lost update", `Quick, test_elle_append_lost_update);
    ("elle-append: aborted read", `Quick, test_elle_append_aborted_read);
    ("elle-wr: clean", `Quick, test_elle_registers_clean);
    ("elle-wr: sound wrt MTC", `Quick, test_elle_registers_sound);
    ("elle-wr: incomplete on blind writes", `Quick, test_elle_registers_misses_blind_write_cycles);
    ("dbcop: anomaly catalogue", `Quick, test_dbcop_catalogue);
    ("dbcop: agrees with MTC-SER", `Quick, test_dbcop_agrees_with_mtc);
    ("dbcop: rejects non-MT input", `Quick, test_dbcop_rejects_gt);
    ("dbcop: state budget", `Quick, test_dbcop_budget);
  ]
