bench/bench_util.ml: Db Distribution Fault Gc Gt_gen Isolation List Mt_gen Printf Scheduler Stats Stdlib String
