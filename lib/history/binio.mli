(** Binary encode/decode for history payloads: re-exports the
    {!module:Binio_core} primitives (LEB128 varints, zigzag signed ints
    so every native [int] including [min_int] round-trips,
    length-prefixed strings, the {!Binio_core.Source} cursor) and adds
    the transaction record codec shared by the service wire protocol,
    the binary history format and the persistence WAL.

    Encoders append to a caller-owned [Buffer.t] — one buffer per
    connection, reused across frames.  Decoders consume a [reader]
    cursor and raise {!Decode_error} on any malformed or truncated
    input; the protocol layer catches it at the frame boundary. *)

include module type of struct
  include Binio_core
end
(** @inline *)

val add_op : Buffer.t -> Op.t -> unit
val read_op : reader -> Op.t

val add_txn : Buffer.t -> Txn.t -> unit
val read_txn : reader -> Txn.t
