(* Binary codecs for history payloads: the varint/string primitives come
   verbatim from [Binio_core] (lib/common — shared with Pearce-Kelly and
   the persistence layer, which cannot see this library), plus the
   transaction record codec that everything above the history layer
   shares. *)

include Binio_core

(* Transactions: id, session, status, timestamps, then the ops in program
   order.  Timestamps are zigzag varints so the [min_int] sentinels of
   the initial transaction survive the trip. *)

let add_op buf op =
  match op with
  | Op.Read (k, v) ->
      Buffer.add_char buf '\000';
      add_varint buf k;
      add_varint buf v
  | Op.Write (k, v) ->
      Buffer.add_char buf '\001';
      add_varint buf k;
      add_varint buf v

let read_op r =
  let tag = read_byte r in
  let k = read_varint r in
  let v = read_varint r in
  match tag with
  | 0 -> Op.Read (k, v)
  | 1 -> Op.Write (k, v)
  | t -> fail "unknown op tag %d" t

let add_txn buf (t : Txn.t) =
  add_varint buf t.Txn.id;
  add_varint buf t.Txn.session;
  Buffer.add_char buf
    (match t.Txn.status with Txn.Committed -> '\000' | Txn.Aborted -> '\001');
  add_varint buf t.Txn.start_ts;
  add_varint buf t.Txn.commit_ts;
  add_uvarint buf (Array.length t.Txn.ops);
  Array.iter (add_op buf) t.Txn.ops

let max_ops = 1 lsl 20

let read_txn r =
  let id = read_varint r in
  let session = read_varint r in
  let status =
    match read_byte r with
    | 0 -> Txn.Committed
    | 1 -> Txn.Aborted
    | b -> fail "unknown txn status byte %d" b
  in
  let start_ts = read_varint r in
  let commit_ts = read_varint r in
  let n = read_uvarint r in
  if n < 0 || n > max_ops then fail "op count %d out of range" n;
  let ops = List.init n (fun _ -> read_op r) in
  Txn.make ~id ~session ~status ~start_ts ~commit_ts ops
