(** Frozen compressed-sparse-row snapshots of {!Digraph.t}.

    A [Csr.t] packs the adjacency structure into three flat arrays —
    [offsets] (length [n + 1]), [targets] and [labels] (length [E]) —
    so the verification kernels ({!Cycle}, {!Scc}, {!Topo}) can walk
    successors by integer indexing with zero per-visit allocation and
    cache-friendly sequential access.  Successors keep the insertion
    order of the source graph, so kernels visit edges in exactly the
    order the list-based code did. *)

type 'lab t = private {
  offsets : int array;  (** length [n + 1]; block of [u] is
                            [offsets.(u) .. offsets.(u+1) - 1] *)
  targets : int array;  (** length [E], insertion order per source *)
  labels : 'lab array;  (** length [E], parallel to [targets] *)
}

val of_digraph : 'lab Digraph.t -> 'lab t
(** O(V + E) snapshot.  Later mutations of the source graph are not
    reflected. *)

val make :
  offsets:int array -> targets:int array -> labels:'lab array -> 'lab t
(** Direct construction from pre-built arrays (callers that count
    out-degrees and fill blocks themselves, e.g. the SI composition).
    Validates the CSR shape in O(V): [offsets] runs monotonically from
    [0] to the edge count, [targets]/[labels] have that length.
    @raise Invalid_argument otherwise. *)

val of_edge_arrays :
  n:int ->
  num_edges:int ->
  src:int array ->
  dst:int array ->
  lab:int array ->
  decode:(int -> 'lab) ->
  'lab t
(** Two-pass counting-sort construction from a flat edge stream: entries
    [0 .. num_edges - 1] of [src]/[dst]/[lab] describe one edge each
    ([lab] as an int-packed label, expanded per edge via [decode]).  The
    first pass counts out-degrees into [offsets], the second fills the
    target/label blocks in place; stable, so per-source successor order
    is the stream order.  O(V + E), no intermediate per-edge boxing. *)

val of_edge_streams :
  ?pool:Pool.t ->
  n:int ->
  streams:(int array * int array * int array * int) array ->
  decode:(int -> int -> 'lab) ->
  unit ->
  'lab t
(** [of_edge_streams ~n ~streams ~decode ()] merges several edge
    streams — each a [(src, dst, lab, len)] quadruple of parallel
    arrays with [len] valid entries — into one CSR.  The successor
    block of every source [u] lists stream 0's edges out of [u] first,
    then stream 1's, and so on, each in stream order; the result is a
    function of the stream decomposition only, so sharded producers
    get bit-identical graphs regardless of how many domains ran.
    [decode si packed] expands an int-packed label of stream [si]; it
    may be called concurrently for {e distinct} stream indices (keep
    any memo caches per-stream).  With [?pool], the counting and fill
    passes run streams concurrently and the cursor conversion runs on
    vertex slices; all writes are index-disjoint.  O(V·S + E). *)

val n : _ t -> int
val num_edges : _ t -> int
val out_degree : _ t -> int -> int

val iter_succ : 'lab t -> int -> (int -> 'lab -> unit) -> unit
(** [iter_succ g u f] calls [f v lab] for every edge [u -> v], in
    insertion order.  Allocation-free. *)

val succ : 'lab t -> int -> (int * 'lab) list
(** Materialized successor list (for tests/debugging). *)

val mem_edge : _ t -> int -> int -> bool
