examples/bug_hunt.ml: Checker Db Distribution Endtoend Fault Format Isolation Mt_gen
