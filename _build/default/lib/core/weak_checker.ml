type level = Read_committed | Read_atomic | Causal

let level_name = function
  | Read_committed -> "RC"
  | Read_atomic -> "RA"
  | Causal -> "CC"

type violation =
  | Intra of Int_check.violation
  | G1c_cycle of (Txn.id * Deps.dep * Txn.id) list
  | Fractured of {
      reader : Txn.id;
      writer : Txn.id;
      read_key : Op.key;
      stale_key : Op.key;
    }
  | Causality of {
      reader : Txn.id;
      stale_key : Op.key;
      missed_writer : Txn.id;
    }
  | Hb_cycle of (Txn.id * Deps.dep * Txn.id) list
  | Malformed of string

type outcome = Pass | Fail of violation

let pp_violation ppf = function
  | Intra v -> Int_check.pp_violation ppf v
  | G1c_cycle cycle ->
      Format.fprintf ppf "@[<h>G1c cycle:";
      List.iter
        (fun (a, dep, b) ->
          Format.fprintf ppf " T%d -%a-> T%d;" a Deps.pp_dep dep b)
        cycle;
      Format.fprintf ppf "@]"
  | Fractured { reader; writer; read_key; stale_key } ->
      Format.fprintf ppf
        "fractured read: T%d reads x%d from T%d but an older version of x%d"
        reader read_key writer stale_key
  | Causality { reader; stale_key; missed_writer } ->
      Format.fprintf ppf
        "causality violation: T%d misses the causally prior write of T%d on \
         x%d"
        reader missed_writer stale_key
  | Hb_cycle cycle ->
      Format.fprintf ppf "@[<h>cyclic causal order:";
      List.iter
        (fun (a, dep, b) ->
          Format.fprintf ppf " T%d -%a-> T%d;" a Deps.pp_dep dep b)
        cycle;
      Format.fprintf ppf "@]"
  | Malformed msg -> Format.fprintf ppf "malformed history: %s" msg

let passes = function Pass -> true | Fail _ -> false

(* ------------------------------------------------------------------ *)
(* Version trees: one node per final write (key, value); a node's parent
   is the version its writer read (the RMW source).  Euler-tour intervals
   give O(1) ancestor tests; per-node subtree-writer bitsets give O(n/64)
   "does any causal predecessor sit below this version" tests. *)

type node = {
  n_writer : Txn.id;
  mutable n_children : Op.value list;
  mutable n_in : int;  (** Euler-tour entry *)
  mutable n_out : int;  (** Euler-tour exit *)
  mutable n_below : Bytes.t;  (** writers of strict descendants (vertex bits) *)
}

type tree = { nodes : (Op.value, node) Hashtbl.t; mutable roots : Op.value list }

exception Bad of violation

let build_trees (idx : Index.t) =
  let num_keys = idx.history.History.num_keys in
  let trees = Array.init num_keys (fun _ -> { nodes = Hashtbl.create 16; roots = [] }) in
  (* Nodes for every committed final write. *)
  Array.iter
    (fun (t : Txn.t) ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace trees.(k).nodes v
            { n_writer = t.id; n_children = []; n_in = 0; n_out = 0;
              n_below = Bytes.empty })
        (Txn.final_writes t))
    idx.committed;
  (* Parent edges from the writers' RMW reads. *)
  Array.iter
    (fun (t : Txn.t) ->
      List.iter
        (fun (k, v) ->
          if t.id = History.init_id then
            trees.(k).roots <- v :: trees.(k).roots
          else
            match Txn.read_of t k with
            | Some parent_value -> (
                match Hashtbl.find_opt trees.(k).nodes parent_value with
                | Some parent -> parent.n_children <- v :: parent.n_children
                | None ->
                    raise
                      (Bad
                         (Malformed
                            (Printf.sprintf
                               "write of x%d by T%d extends an unknown version"
                               k t.id))))
            | None ->
                raise
                  (Bad
                     (Malformed
                        (Printf.sprintf
                           "blind write of x%d by T%d: not a mini-transaction"
                           k t.id))))
        (Txn.final_writes t))
    idx.committed;
  (* Euler tour + subtree writer sets (iterative post-order). *)
  let n = Index.num_vertices idx in
  let row_len = (n + 7) / 8 in
  let set_bit row v =
    Bytes.set row (v lsr 3)
      (Char.chr (Char.code (Bytes.get row (v lsr 3)) lor (1 lsl (v land 7))))
  in
  let or_into dst src =
    for i = 0 to row_len - 1 do
      Bytes.set dst i
        (Char.chr (Char.code (Bytes.get dst i) lor Char.code (Bytes.get src i)))
    done
  in
  Array.iter
    (fun tree ->
      let clock = ref 0 in
      let rec stack_visit stack =
        match stack with
        | [] -> ()
        | `Enter value :: rest ->
            let node = Hashtbl.find tree.nodes value in
            node.n_in <- !clock;
            incr clock;
            node.n_below <- Bytes.make row_len '\000';
            stack_visit
              (List.map (fun c -> `Enter c) node.n_children
              @ (`Exit value :: rest))
        | `Exit value :: rest ->
            let node = Hashtbl.find tree.nodes value in
            node.n_out <- !clock;
            incr clock;
            List.iter
              (fun c ->
                let child = Hashtbl.find tree.nodes c in
                or_into node.n_below child.n_below;
                (* bits index committed vertices, not transaction ids *)
                set_bit node.n_below (Index.vertex idx child.n_writer))
              node.n_children;
            stack_visit rest
      in
      stack_visit (List.map (fun r -> `Enter r) tree.roots)
    )
    trees;
  trees

let node_of trees k v =
  match Hashtbl.find_opt trees.(k).nodes v with
  | Some node -> node
  | None -> raise (Bad (Malformed (Printf.sprintf "no version %d of x%d" v k)))

(* Is [a] a strict ancestor of [b]?  (Same key's tree.) *)
let strict_ancestor a b = a.n_in < b.n_in && b.n_out < a.n_out

(* ------------------------------------------------------------------ *)

let g1c_check (idx : Index.t) =
  match Deps.build ~rt:Deps.No_rt idx with
  | Error e -> raise (Bad (Malformed (Format.asprintf "%a" Deps.pp_error e)))
  | Ok d -> (
      let g = Digraph.create d.Deps.num_txn_vertices in
      List.iter
        (fun (u, lab, v) ->
          match lab with
          | Deps.WR _ | Deps.WW _ -> Digraph.add_edge g u v lab
          | Deps.SO | Deps.RT | Deps.RW _ | Deps.Rt_chain -> ())
        (Deps.dep_edges d);
      match Cycle.find g with
      | Some cycle -> raise (Bad (G1c_cycle (Deps.to_txn_cycle d cycle)))
      | None -> d)

let fractured_check (idx : Index.t) trees =
  Array.iter
    (fun (r : Txn.t) ->
      let reads = Txn.external_reads r in
      List.iter
        (fun (x, v) ->
          match Index.writer_of idx x v with
          | Index.Final w when w <> r.id && w <> History.init_id ->
              let writer_txn = History.txn idx.history w in
              List.iter
                (fun (y, vy) ->
                  if y <> x then
                    match Txn.write_of writer_txn y with
                    | Some wy ->
                        let read_node = node_of trees y vy in
                        let written_node = node_of trees y wy in
                        if strict_ancestor read_node written_node then
                          raise
                            (Bad
                               (Fractured
                                  { reader = r.id; writer = w; read_key = x;
                                    stale_key = y }))
                    | None -> ())
                reads
          | _ -> ())
        reads)
    idx.committed

let causal_check (idx : Index.t) trees =
  let n = Index.num_vertices idx in
  (* hb = (SO ∪ WR)+ over committed vertices. *)
  let hb = Digraph.create n in
  List.iter
    (fun (a, b) ->
      Digraph.add_edge hb (Index.vertex idx a) (Index.vertex idx b) Deps.SO)
    (History.so_pairs idx.history);
  Array.iteri
    (fun sv (s : Txn.t) ->
      List.iter
        (fun (k, v) ->
          match Index.writer_of idx k v with
          | Index.Final w when w <> s.id ->
              Digraph.add_edge hb (Index.vertex idx w) sv (Deps.WR k)
          | _ -> ())
        (Txn.external_reads s))
    idx.committed;
  (match Cycle.find hb with
  | Some cycle ->
      let to_txn (u, lab, v) =
        ( (Index.txn_of_vertex idx u).Txn.id, lab,
          (Index.txn_of_vertex idx v).Txn.id )
      in
      raise (Bad (Hb_cycle (List.map to_txn cycle)))
  | None -> ());
  (* hb-predecessor bitsets: closure of the transpose. *)
  let pred_rows = Reach.closure_matrix (Digraph.transpose hb) in
  (* A read is stale if some strict descendant of the returned version was
     written by an hb-predecessor of the reader (other than itself). *)
  Array.iteri
    (fun rv (r : Txn.t) ->
      List.iter
        (fun (y, v) ->
          let node = node_of trees y v in
          if Bytes.length node.n_below > 0 then begin
            let preds = pred_rows.(rv) in
            let len = Bytes.length node.n_below in
            let missed = ref (-1) in
            (try
               for i = 0 to len - 1 do
                 let both =
                   Char.code (Bytes.get node.n_below i)
                   land Char.code (Bytes.get preds i)
                 in
                 if both <> 0 then
                   for b = 0 to 7 do
                     if both land (1 lsl b) <> 0 then begin
                       let vertex = (i * 8) + b in
                       if vertex <> rv then begin
                         missed := vertex;
                         raise Exit
                       end
                     end
                   done
               done
             with Exit -> ());
            if !missed >= 0 then
              raise
                (Bad
                   (Causality
                      {
                        reader = r.id;
                        stale_key = y;
                        missed_writer = (Index.txn_of_vertex idx !missed).Txn.id;
                      }))
          end)
        (Txn.external_reads r))
    idx.committed

let check level h =
  match History.unique_values h with
  | Error msg -> Fail (Malformed msg)
  | Ok () -> (
      let idx = Index.build h in
      match Int_check.check idx with
      | Error v -> Fail (Intra v)
      | Ok () -> (
          try
            ignore (g1c_check idx);
            (match level with
            | Read_committed -> ()
            | Read_atomic ->
                let trees = build_trees idx in
                fractured_check idx trees
            | Causal ->
                let trees = build_trees idx in
                fractured_check idx trees;
                causal_check idx trees);
            Pass
          with Bad v -> Fail v))

let check_rc h = check Read_committed h
let check_ra h = check Read_atomic h
let check_causal h = check Causal h
