(* Versioned per-shard snapshots of live checker sessions.

   File layout:

     magic "mtcsnp1\n" (8 bytes) | payload | u32le CRC-32(payload)

   payload (Binio varints):

     version=2, shard, nshards, gen, next_sid, entry count,
     then per entry: sid, meta (level byte, num_keys, skew, ts byte,
     gc byte [+ uvarint word ceiling]),
     last_seq, state byte — 0 = live (an {!Online.encode} blob follows),
     1 = poisoned (anomaly option + rendered counterexample strings; a
     poisoned session's graph is dead weight, its rendered verdict is
     all it will ever produce again).

   Writes go to [path ^ ".tmp"], are fsynced, then renamed over [path]
   and the directory is fsynced — a crash leaves either the old
   snapshot or the new one, never a torn file that passes its CRC. *)

let magic = "mtcsnp1\n"
let version = 2

type meta = {
  level : Checker.level;
  num_keys : int;
  skew : int;
  ts : Ts.mode;
  gc : Online.gc;
}

type state =
  | Live of Online.t
  | Poisoned of { anomaly : string option; rendered : string }

type entry = { sid : int; meta : meta; last_seq : int; state : state }

type info = {
  i_shard : int;
  i_nshards : int;
  i_gen : int;
  i_next_sid : int;
  i_entries : entry list;
}

let level_byte = function Checker.SSER -> 0 | Checker.SER -> 1 | Checker.SI -> 2

let level_of_byte = function
  | 0 -> Checker.SSER
  | 1 -> Checker.SER
  | 2 -> Checker.SI
  | b -> Binio.fail "unknown level byte %d" b

let ts_byte = function Ts.Ignore -> 0 | Ts.Trust -> 1 | Ts.Verify -> 2

let ts_of_byte = function
  | 0 -> Ts.Ignore
  | 1 -> Ts.Trust
  | 2 -> Ts.Verify
  | b -> Binio.fail "unknown ts mode byte %d" b

let add_gc buf = function
  | Online.Gc_off -> Buffer.add_char buf '\000'
  | Online.Gc_auto -> Buffer.add_char buf '\001'
  | Online.Gc_words n ->
      Buffer.add_char buf '\002';
      Binio.add_uvarint buf n

let read_gc r =
  match Binio.read_byte r with
  | 0 -> Online.Gc_off
  | 1 -> Online.Gc_auto
  | 2 ->
      let n = Binio.read_uvarint r in
      if n <= 0 then Binio.fail "gc word ceiling %d must be positive" n
      else Online.Gc_words n
  | b -> Binio.fail "unknown gc policy byte %d" b

let add_entry buf e =
  Binio.add_uvarint buf e.sid;
  Buffer.add_char buf (Char.chr (level_byte e.meta.level));
  Binio.add_uvarint buf e.meta.num_keys;
  Binio.add_varint buf e.meta.skew;
  Buffer.add_char buf (Char.chr (ts_byte e.meta.ts));
  add_gc buf e.meta.gc;
  Binio.add_uvarint buf e.last_seq;
  match e.state with
  | Live online ->
      Buffer.add_char buf '\000';
      Online.encode buf online
  | Poisoned { anomaly; rendered } ->
      Buffer.add_char buf '\001';
      (match anomaly with
      | None -> Buffer.add_char buf '\000'
      | Some a ->
          Buffer.add_char buf '\001';
          Binio.add_string buf a);
      Binio.add_string buf rendered

let read_entry r =
  let sid = Binio.read_uvarint r in
  let level = level_of_byte (Binio.read_byte r) in
  let num_keys = Binio.read_uvarint r in
  let skew = Binio.read_varint r in
  let ts = ts_of_byte (Binio.read_byte r) in
  let gc = read_gc r in
  let meta = { level; num_keys; skew; ts; gc } in
  let last_seq = Binio.read_uvarint r in
  let state =
    match Binio.read_byte r with
    | 0 -> Live (Online.decode r)
    | 1 ->
        let anomaly =
          match Binio.read_byte r with
          | 0 -> None
          | 1 -> Some (Binio.read_string r)
          | b -> Binio.fail "bad anomaly presence byte %d" b
        in
        Poisoned { anomaly; rendered = Binio.read_string r }
    | b -> Binio.fail "unknown session state byte %d" b
  in
  { sid; meta; last_seq; state }

let add_u32le buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let rec really_write fd b off len =
  if len > 0 then
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd b (off + n) (len - n)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

let write ~path ~shard ~nshards ~gen ~next_sid entries =
  let buf = Buffer.create 4096 in
  Binio.add_uvarint buf version;
  Binio.add_uvarint buf shard;
  Binio.add_uvarint buf nshards;
  Binio.add_uvarint buf gen;
  Binio.add_uvarint buf next_sid;
  Binio.add_uvarint buf (List.length entries);
  List.iter (add_entry buf) entries;
  let payload = Buffer.contents buf in
  let out = Buffer.create (String.length payload + 16) in
  Buffer.add_string out magic;
  Buffer.add_string out payload;
  add_u32le out (Crc32.string payload);
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Buffer.to_bytes out in
      really_write fd b 0 (Bytes.length b);
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

let read path =
  match Binio.Source.map_file path with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | src -> (
      let total = Binio.Source.length src in
      let mlen = String.length magic in
      if total < mlen + 4 || Binio.Source.sub_string src 0 mlen <> magic then
        Error (Printf.sprintf "%s: not a snapshot file" path)
      else
        let plen = total - mlen - 4 in
        let payload = Binio.Source.sub_string src mlen plen in
        let crc =
          Char.code (Binio.Source.get src (mlen + plen))
          lor (Char.code (Binio.Source.get src (mlen + plen + 1)) lsl 8)
          lor (Char.code (Binio.Source.get src (mlen + plen + 2)) lsl 16)
          lor (Char.code (Binio.Source.get src (mlen + plen + 3)) lsl 24)
        in
        if Crc32.string payload <> crc then
          Error (Printf.sprintf "%s: snapshot CRC mismatch" path)
        else
          match
            let r = Binio.reader payload in
            let v = Binio.read_uvarint r in
            if v <> version then
              Binio.fail "snapshot version %d (this build reads %d)" v version;
            let i_shard = Binio.read_uvarint r in
            let i_nshards = Binio.read_uvarint r in
            let i_gen = Binio.read_uvarint r in
            let i_next_sid = Binio.read_uvarint r in
            let n = Binio.read_uvarint r in
            if n < 0 || n > Binio.remaining r then
              Binio.fail "snapshot entry count %d overruns input" n;
            let i_entries = List.init n (fun _ -> read_entry r) in
            if not (Binio.at_end r) then
              Binio.fail "%d trailing snapshot bytes" (Binio.remaining r);
            { i_shard; i_nshards; i_gen; i_next_sid; i_entries }
          with
          | info -> Ok info
          | exception Binio.Decode_error m ->
              Error (Printf.sprintf "%s: %s" path m))
