(** The Elle baseline (Kingsbury & Alvaro, VLDB'20): isolation checking by
    inferring dependency graphs from observed workload structure.

    Two modes, as in paper Section V-F:
    - {b list-append} ({!check_append}): reading a list of n appended
      elements reveals the whole version prefix, so write-write order is
      inferred exactly along observed prefixes.  Detects aborted/thin-air
      elements, incompatible read prefixes, duplicate elements, and
      SER/SI-forbidden cycles.  Sound; complete up to unobserved tails.
    - {b read-write registers} ({!check_registers}): writes are blind, so
      version order is inferred only where a transaction
      reads-then-overwrites (the traceability Elle shares with MTC's RMW
      insight).  Sound but incomplete: cycles through un-inferred
      write-write edges are missed — the lower detection effectiveness
      visible in Figure 13. *)

type result = { ok : bool; reason : string }

val check_append : level:Checker.level -> Elle_log.t -> result
(** [level] must be [SER] or [SI]; SSER is not supported by this
    baseline. *)

val check_registers : level:Checker.level -> History.t -> result
