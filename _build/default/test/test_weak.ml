(* Tests for Weak_checker: READ COMMITTED, READ ATOMIC and CAUSAL over MT
   histories (the paper's future-work extension). *)

let checkb = Alcotest.check Alcotest.bool

open Builder

let all_levels =
  [ Weak_checker.Read_committed; Weak_checker.Read_atomic; Weak_checker.Causal ]

(* Expected verdicts of the Figure 5 catalogue per weak level. *)
let expected kind (level : Weak_checker.level) =
  if Anomaly.intra kind then false
  else
    match (kind, level) with
    | (Anomaly.Long_fork | Anomaly.Lost_update | Anomaly.Write_skew), _ -> true
    | ( (Anomaly.Session_guarantee_violation | Anomaly.Causality_violation),
        (Weak_checker.Read_committed | Weak_checker.Read_atomic) ) ->
        true
    | (Anomaly.Session_guarantee_violation | Anomaly.Causality_violation),
      Weak_checker.Causal ->
        false
    | ( (Anomaly.Non_monotonic_read | Anomaly.Fractured_read),
        Weak_checker.Read_committed ) ->
        true
    | (Anomaly.Non_monotonic_read | Anomaly.Fractured_read),
      (Weak_checker.Read_atomic | Weak_checker.Causal) ->
        false
    | _ -> false (* intra kinds, matched above *)

let test_catalogue () =
  List.iter
    (fun kind ->
      let h = Anomaly.history kind in
      List.iter
        (fun level ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "%s at %s" (Anomaly.name kind)
               (Weak_checker.level_name level))
            (expected kind level)
            (Weak_checker.passes (Weak_checker.check level h)))
        all_levels)
    Anomaly.all

let test_g1c_cycle () =
  (* Mutual reads-from: T1 reads T2's write and vice versa — a pure
     WR-cycle that RC must reject even though the INT screen passes. *)
  let h =
    history ~keys:2 ~sessions:2
      [
        txn ~session:1 [ r 0 0; w 0 1; r 1 4 ];
        txn ~session:2 [ r 1 0; w 1 4; r 0 1 ];
      ]
  in
  (match Weak_checker.check_rc h with
  | Weak_checker.Fail (Weak_checker.G1c_cycle _) -> ()
  | _ -> Alcotest.fail "expected a G1c cycle");
  checkb "SER agrees" false (Checker.passes (Checker.check_ser h))

let test_fractured_payload () =
  match Weak_checker.check_ra (Anomaly.history Anomaly.Fractured_read) with
  | Weak_checker.Fail (Weak_checker.Fractured { reader = 2; writer = 1; _ }) ->
      ()
  | Weak_checker.Fail v ->
      Alcotest.failf "wrong violation: %s"
        (Format.asprintf "%a" Weak_checker.pp_violation v)
  | Weak_checker.Pass -> Alcotest.fail "fractured read passed RA"

let test_causality_payload () =
  match
    Weak_checker.check_causal (Anomaly.history Anomaly.Causality_violation)
  with
  | Weak_checker.Fail
      (Weak_checker.Causality { reader = 3; missed_writer = 1; stale_key = 0 })
    ->
      ()
  | Weak_checker.Fail v ->
      Alcotest.failf "wrong violation: %s"
        (Format.asprintf "%a" Weak_checker.pp_violation v)
  | Weak_checker.Pass -> Alcotest.fail "causality violation passed CC"

let test_session_guarantee_is_causal_only () =
  let h = Anomaly.history Anomaly.Session_guarantee_violation in
  checkb "RA passes" true (Weak_checker.passes (Weak_checker.check_ra h));
  match Weak_checker.check_causal h with
  | Weak_checker.Fail (Weak_checker.Causality { missed_writer = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected a causality violation on the own session"

let test_blind_write_rejected () =
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Write (0, 1) ] in
  let h = History.make ~num_keys:1 ~num_sessions:1 [ t1 ] in
  match Weak_checker.check_ra h with
  | Weak_checker.Fail (Weak_checker.Malformed _) -> ()
  | _ -> Alcotest.fail "blind writes are not MT histories"

let test_empty_history () =
  let h = history ~keys:2 ~sessions:1 [] in
  List.iter
    (fun level ->
      checkb "empty passes" true (Weak_checker.passes (Weak_checker.check level h)))
    all_levels

let test_long_chain_passes () =
  let txns =
    List.init 50 (fun i -> txn ~session:1 [ r 0 i; w 0 (i + 1) ])
  in
  let h = history ~keys:1 ~sessions:1 txns in
  List.iter
    (fun level ->
      checkb "chain passes" true
        (Weak_checker.passes (Weak_checker.check level h)))
    all_levels

let run_engine ~level ~fault ~seed =
  let spec =
    Mt_gen.generate { Mt_gen.default with num_txns = 300; num_keys = 10; seed }
  in
  let db = { Db.level; fault; num_keys = 10; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

let test_engine_lattice () =
  (* SI pass => CC pass => RA pass => RC pass on engine histories, clean
     and faulty. *)
  List.iter
    (fun fault ->
      for seed = 1 to 3 do
        let h = run_engine ~level:Isolation.Snapshot ~fault ~seed in
        let si = Checker.passes (Checker.check_si h) in
        let cc = Weak_checker.passes (Weak_checker.check_causal h) in
        let ra = Weak_checker.passes (Weak_checker.check_ra h) in
        let rc = Weak_checker.passes (Weak_checker.check_rc h) in
        checkb "SI => CC" true ((not si) || cc);
        checkb "CC => RA" true ((not cc) || ra);
        checkb "RA => RC" true ((not ra) || rc)
      done)
    [ Fault.No_fault; Fault.Lost_update 0.2; Fault.Causality_violation 0.1;
      Fault.Aborted_read 0.1 ]

let test_rc_engine_passes_rc () =
  for seed = 1 to 3 do
    let h = run_engine ~level:Isolation.Read_committed ~fault:Fault.No_fault ~seed in
    checkb "RC engine passes RC" true
      (Weak_checker.passes (Weak_checker.check_rc h))
  done

let test_causality_fault_breaks_cc_not_rc () =
  let spec = Targeted.observers ~keys:8 ~txns:1500 ~seed:4 () in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.Causality_violation 0.1;
      num_keys = 8; seed = 4 }
  in
  let h = (Scheduler.run ~db ~spec ()).Scheduler.history in
  checkb "RC still passes" true (Weak_checker.passes (Weak_checker.check_rc h));
  checkb "CC broken" false (Weak_checker.passes (Weak_checker.check_causal h))

let suite =
  [
    ("weak verdicts of the 14-anomaly catalogue", `Quick, test_catalogue);
    ("G1c cycle rejected at RC", `Quick, test_g1c_cycle);
    ("fractured-read payload", `Quick, test_fractured_payload);
    ("causality payload", `Quick, test_causality_payload);
    ("session guarantee fails only CC", `Quick, test_session_guarantee_is_causal_only);
    ("blind writes rejected", `Quick, test_blind_write_rejected);
    ("empty history passes", `Quick, test_empty_history);
    ("long RMW chain passes", `Quick, test_long_chain_passes);
    ("engine lattice SI => CC => RA => RC", `Quick, test_engine_lattice);
    ("RC engine passes RC", `Quick, test_rc_engine_passes_rc);
    ("causality fault breaks CC not RC", `Quick, test_causality_fault_breaks_cc_not_rc);
  ]
