(** Polygraphs (Papadimitriou 1979): the known dependency edges of a
    history plus, for every unordered pair of writers of an object, a
    binary constraint choosing between the two possible version orders and
    the anti-dependency edges each induces.

    Both the Cobra and PolySI baselines build this structure and then
    reduce isolation checking to constrained acyclicity (paper
    Sections V-B / VI).  Known edges are SO and WR (the latter determined
    by unique values); WW is entirely constraint-driven — unlike MTC, the
    baselines do not exploit the RMW pattern. *)

type edge_kind = Dep | Anti

type choice = (edge_kind * int * int) list
(** Edges (over dense committed-transaction vertices) installed by one
    side of a constraint. *)

type constr = {
  key : Op.key;
  w1 : int;  (** vertex of the first writer *)
  w2 : int;
  if_w1_first : choice;  (** WW(w1,w2) plus induced anti-dependencies *)
  if_w2_first : choice;
}

type t = {
  idx : Index.t;
  known : (edge_kind * int * int) list;  (** SO and WR edges *)
  constraints : constr list;
  construct_s : float;  (** wall-clock spent building *)
}

type failure =
  | Screen of Int_check.violation
  | Unresolved of string

val build : History.t -> (t, failure) result
(** Runs the INT screen first (Cobra's G1 checks), then constructs the
    polygraph.  O(known edges + Σ_x |WriteTx_x|²). *)

val num_constraints : t -> int
