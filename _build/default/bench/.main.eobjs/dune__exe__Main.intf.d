bench/main.mli:
