type 'lab t = {
  offsets : int array;
  targets : int array;
  labels : 'lab array;
}

let n t = Array.length t.offsets - 1
let num_edges t = Array.length t.targets
let out_degree t u = t.offsets.(u + 1) - t.offsets.(u)

let make ~offsets ~targets ~labels =
  let n = Array.length offsets - 1 in
  if n < 0 then invalid_arg "Csr.make: offsets must have length >= 1";
  let m = Array.length targets in
  if Array.length labels <> m then
    invalid_arg "Csr.make: targets and labels disagree on the edge count";
  if offsets.(0) <> 0 || offsets.(n) <> m then
    invalid_arg "Csr.make: offsets must run from 0 to the edge count";
  for u = 0 to n - 1 do
    if offsets.(u) > offsets.(u + 1) then
      invalid_arg "Csr.make: offsets must be non-decreasing"
  done;
  { offsets; targets; labels }

let of_edge_arrays ~n ~num_edges ~src ~dst ~lab ~decode =
  let offsets = Array.make (n + 1) 0 in
  for e = 0 to num_edges - 1 do
    offsets.(src.(e) + 1) <- offsets.(src.(e) + 1) + 1
  done;
  for u = 1 to n do
    offsets.(u) <- offsets.(u) + offsets.(u - 1)
  done;
  let targets = Array.make num_edges (-1) in
  let labels =
    if num_edges = 0 then [||] else Array.make num_edges (decode lab.(0))
  in
  let cursor = Array.sub offsets 0 (Stdlib.max n 1) in
  for e = 0 to num_edges - 1 do
    let u = src.(e) in
    let i = cursor.(u) in
    targets.(i) <- dst.(e);
    labels.(i) <- decode lab.(e);
    cursor.(u) <- i + 1
  done;
  { offsets; targets; labels }

(* Multi-stream merge: the row order of the result is (stream 0 edges of
   u, stream 1 edges of u, ...) for every source u — a function of the
   stream decomposition only, never of how many domains executed the
   passes, which is what makes parallel inference bit-identical to
   sequential. *)
let of_edge_streams ?pool ~n ~streams ~decode () =
  let s = Array.length streams in
  (* Pass 1: per-stream per-source counts (parallel over streams). *)
  let counts = Array.make s [||] in
  Pool.tasks pool
    (List.init s (fun si () ->
         let src, _, _, len = streams.(si) in
         if len > 0 then begin
           let c = Array.make n 0 in
           for e = 0 to len - 1 do
             c.(src.(e)) <- c.(src.(e)) + 1
           done;
           counts.(si) <- c
         end));
  (* Offsets prefix sum is O(n) and stays serial; turning the counts
     into per-(stream, source) start cursors is O(s * n) and runs on
     vertex slices.  Both leave [counts.(si).(u)] = first write index
     for stream [si]'s edges out of [u]. *)
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let d = ref 0 in
    for si = 0 to s - 1 do
      let c = counts.(si) in
      if Array.length c > 0 then d := !d + Array.unsafe_get c u
    done;
    offsets.(u + 1) <- offsets.(u) + !d
  done;
  let m = offsets.(n) in
  ignore
    (Pool.map_slices pool ~n (fun lo hi ->
         for u = lo to hi - 1 do
           let cursor = ref offsets.(u) in
           for si = 0 to s - 1 do
             let c = counts.(si) in
             if Array.length c > 0 then begin
               let cnt = Array.unsafe_get c u in
               Array.unsafe_set c u !cursor;
               cursor := !cursor + cnt
             end
           done
         done));
  let targets = Array.make m (-1) in
  let labels =
    if m = 0 then [||]
    else begin
      let seed = ref None in
      (try
         Array.iteri
           (fun si (_, _, lab, len) ->
             if len > 0 then begin
               seed := Some (decode si lab.(0));
               raise Exit
             end)
           streams
       with Exit -> ());
      Array.make m (Option.get !seed)
    end
  in
  (* Pass 2: each stream fills its own disjoint index ranges (cursors
     live in that stream's private count array), so the writes race on
     nothing.  [decode] is called with the stream index so label caches
     can be kept per-stream (hence per-domain). *)
  Pool.tasks pool
    (List.init s (fun si () ->
         let src, dst, lab, len = streams.(si) in
         if len > 0 then begin
           let cur = counts.(si) in
           for e = 0 to len - 1 do
             let u = src.(e) in
             let i = cur.(u) in
             targets.(i) <- dst.(e);
             labels.(i) <- decode si lab.(e);
             cur.(u) <- i + 1
           done
         end));
  { offsets; targets; labels }

let of_digraph g =
  let n = Digraph.n g in
  let m = Digraph.num_edges g in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- Digraph.out_degree g u
  done;
  for u = 1 to n do
    offsets.(u) <- offsets.(u) + offsets.(u - 1)
  done;
  let targets = Array.make m (-1) in
  (* The label array needs a seed value of type ['lab]; create it from the
     first edge encountered (if [m = 0] there are no labels at all). *)
  let labels = ref [||] in
  let cursor = Array.sub offsets 0 (Stdlib.max n 1) in
  for u = 0 to n - 1 do
    Digraph.iter_succ g u (fun v lab ->
        let la =
          if Array.length !labels = m && m > 0 then !labels
          else begin
            labels := Array.make m lab;
            !labels
          end
        in
        let i = cursor.(u) in
        targets.(i) <- v;
        la.(i) <- lab;
        cursor.(u) <- i + 1)
  done;
  { offsets; targets; labels = !labels }

let iter_succ t u f =
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f t.targets.(i) t.labels.(i)
  done

let succ t u =
  List.init (out_degree t u) (fun j ->
      let i = t.offsets.(u) + j in
      (t.targets.(i), t.labels.(i)))

let mem_edge t u v =
  let found = ref false in
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    if t.targets.(i) = v then found := true
  done;
  !found
