lib/core/viz.ml: Array Buffer Checker Deps Digraph Divergence History Index List Op Printf Stdlib String Txn
