type reason =
  | No_insert of Op.key
  | Multiple_inserts of { key : Op.key; count : int }
  | No_successor of { key : Op.key; value : Op.value; remaining : int }
  | Duplicate_successor of {
      key : Op.key;
      value : Op.value;
      event1 : int;
      event2 : int;
    }
  | Stale_read of { key : Op.key; event : int; value : Op.value }
  | Real_time_violation of { key : Op.key; event : int }

let pp_reason ppf = function
  | No_insert k -> Format.fprintf ppf "x%d: no insert-if-not-exists" k
  | Multiple_inserts { key; count } ->
      Format.fprintf ppf "x%d: %d inserts succeeded" key count
  | No_successor { key; value; remaining } ->
      Format.fprintf ppf
        "x%d: chain stuck at value %d with %d unconsumed R&W events" key value
        remaining
  | Duplicate_successor { key; value; event1; event2 } ->
      Format.fprintf ppf "x%d: E%d and E%d both CAS'd from value %d" key
        event1 event2 value
  | Stale_read { key; event; value } ->
      Format.fprintf ppf "x%d: E%d read value %d, never current" key event
        value
  | Real_time_violation { key; event } ->
      Format.fprintf ppf
        "x%d: E%d starts after a later chain transaction finishes" key event

(* Step 1 of Algorithm 2: the unique version chain. *)
let build_chain (events : Lwt.event array) k =
  let inserts = ref [] and rws = ref [] and reads = ref [] in
  Array.iter
    (fun (e : Lwt.event) ->
      match e.op with
      | Lwt.Insert _ -> inserts := e :: !inserts
      | Lwt.Rw _ -> rws := e :: !rws
      | Lwt.Read _ -> reads := e :: !reads)
    events;
  match !inserts with
  | [] -> Error (No_insert k)
  | _ :: _ :: _ as l -> Error (Multiple_inserts { key = k; count = List.length l })
  | [ insert ] -> (
      let next : (Op.value, Lwt.event) Hashtbl.t = Hashtbl.create 64 in
      let dup = ref None in
      List.iter
        (fun (e : Lwt.event) ->
          match e.op with
          | Lwt.Rw { expected; _ } -> (
              match Hashtbl.find_opt next expected with
              | Some other ->
                  if !dup = None then
                    dup :=
                      Some
                        (Duplicate_successor
                           {
                             key = k;
                             value = expected;
                             event1 = other.Lwt.id;
                             event2 = e.Lwt.id;
                           })
              | None -> Hashtbl.replace next expected e)
          | Lwt.Insert _ | Lwt.Read _ -> ())
        !rws;
      match !dup with
      | Some r -> Error r
      | None ->
          let v0 =
            match insert.Lwt.op with
            | Lwt.Insert { value; _ } -> value
            | Lwt.Rw _ | Lwt.Read _ -> assert false
          in
          let rec walk acc v consumed =
            match Hashtbl.find_opt next v with
            | Some e ->
                let v' =
                  match e.Lwt.op with
                  | Lwt.Rw { new_value; _ } -> new_value
                  | Lwt.Insert _ | Lwt.Read _ -> assert false
                in
                walk (e :: acc) v' (consumed + 1)
            | None ->
                let total = List.length !rws in
                if consumed < total then
                  Error
                    (No_successor
                       { key = k; value = v; remaining = total - consumed })
                else Ok (List.rev acc, v)
          in
          Result.map
            (fun (chain, final_value) -> (chain, final_value, !reads))
            (walk [ insert ] v0 0))

(* Step 2, generalized to plain reads: walk the chain keeping the earliest
   feasible linearization point [tau]; each writer, then each read of the
   value it installed (earliest finish first), must fit its interval. *)
let check_real_time k (chain : Lwt.event list) (reads : Lwt.event list) =
  let value_installed_by (e : Lwt.event) =
    match e.op with
    | Lwt.Insert { value; _ } -> value
    | Lwt.Rw { new_value; _ } -> new_value
    | Lwt.Read _ -> assert false
  in
  let reads_of : (Op.value, Lwt.event list ref) Hashtbl.t = Hashtbl.create 64 in
  let chain_values = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace chain_values (value_installed_by e) ()) chain;
  let stale = ref None in
  List.iter
    (fun (e : Lwt.event) ->
      match e.Lwt.op with
      | Lwt.Read { value; _ } ->
          if Hashtbl.mem chain_values value then
            match Hashtbl.find_opt reads_of value with
            | Some r -> r := e :: !r
            | None -> Hashtbl.replace reads_of value (ref [ e ])
          else if !stale = None then
            stale := Some (Stale_read { key = k; event = e.Lwt.id; value })
      | Lwt.Insert _ | Lwt.Rw _ -> ())
    reads;
  match !stale with
  | Some r -> Error r
  | None -> (
      let tau = ref min_int in
      let place (e : Lwt.event) =
        tau := Stdlib.max !tau e.start;
        if !tau > e.finish then
          Some (Real_time_violation { key = k; event = e.id })
        else None
      in
      let exception Bad of reason in
      try
        List.iter
          (fun (w : Lwt.event) ->
            (match place w with Some r -> raise (Bad r) | None -> ());
            let group =
              match Hashtbl.find_opt reads_of (value_installed_by w) with
              | Some r ->
                  List.sort
                    (fun (a : Lwt.event) b -> compare a.finish b.finish)
                    !r
              | None -> []
            in
            List.iter
              (fun r ->
                match place r with Some x -> raise (Bad x) | None -> ())
              group)
          chain;
        Ok ()
      with Bad r -> Error r)

let check_key (h : Lwt.t) k =
  let events = Lwt.restrict h k in
  if Array.length events = 0 then Ok ()
  else
    match build_chain events k with
    | Error r -> Error r
    | Ok (chain, _final, reads) -> check_real_time k chain reads

let check (h : Lwt.t) =
  let rec go k =
    if k >= h.num_keys then Ok ()
    else match check_key h k with Ok () -> go (k + 1) | Error _ as e -> e
  in
  go 0

let chain (h : Lwt.t) k =
  match build_chain (Lwt.restrict h k) k with
  | Error r -> Error r
  | Ok (c, _, _) -> Ok c
