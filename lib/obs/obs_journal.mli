(** Structured journal of service events in lock-free per-domain rings.

    Same recording discipline as {!Obs_trace}: disabled (the default)
    {!emit} is one [Atomic.get] and a branch with zero allocation, so
    emit sites can live permanently in the service hot path.  Enabled,
    an event is four unboxed int stores into the calling domain's ring
    (slot reserved with [Atomic.fetch_and_add]; systhreads share their
    carrier domain's ring); rings overwrite on wrap and {!dropped}
    accounts every overwritten event.

    An event is a {!kind} plus three int payload words whose meaning is
    per-kind (conventionally [a] = session id or shard, [b]/[c] =
    magnitudes: queue depth, pause ns, reclaimed words, close-reason
    code, fsync ns).  Timestamps are monotonic ns ({!Obs_clock}); map
    them to wall-clock at drain time if needed. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

type kind =
  | Throttle_on  (** a = sid, b = queued *)
  | Throttle_off  (** a = sid *)
  | Gc_compact  (** a = sid, b = pause ns, c = reclaimed words *)
  | Wal_fsync_stall  (** a = shard, b = fsync ns *)
  | Snapshot  (** a = shard, b = sessions snapshotted *)
  | Session_open  (** a = sid, b = shard *)
  | Session_close  (** a = sid, b = close-reason code *)
  | Session_resume  (** a = sid, b = last_seq *)
  | Poison  (** a = sid *)
  | Pin_warn  (** a = sid, b = stalled-for ns, c = live words pinned *)
  | Pin_fence  (** a = sid, b = stalled-for ns *)

val kind_code : kind -> int
(** Stable small-int codec for the wire protocol and JSONL sink. *)

val kind_of_code : int -> kind option
val kind_name : kind -> string

val emit : kind -> a:int -> b:int -> c:int -> unit
(** Record one event if the journal is enabled.  Allocation-free on
    both paths. *)

type event = {
  j_kind : kind;
  j_t : int;  (** ns, monotonic origin *)
  j_a : int;
  j_b : int;
  j_c : int;
  j_dom : int;  (** recording domain id *)
}

val events : unit -> event list
(** Buffered events from every domain's ring, oldest first —
    non-consuming (the wire [Session_stats] path).  Concurrent
    recording may be mid-overwrite; results are exact once the emitting
    region has quiesced. *)

val drain : unit -> event list
(** Events appended since the previous [drain], oldest first, advancing
    a per-ring cursor — the JSONL sink path.  Events overwritten before
    a drain reaches them are skipped (they are visible in {!dropped}).
    Serialize drainers externally. *)

val dropped : unit -> int
(** Events lost to ring overwrite since the last {!clear}. *)

val clear : unit -> unit
(** Drop buffered events and reset drain cursors.  Call only when no
    domain is concurrently emitting. *)
