type op =
  | Insert of { key : Op.key; value : Op.value }
  | Rw of { key : Op.key; expected : Op.value; new_value : Op.value }
  | Read of { key : Op.key; value : Op.value }

type event = { id : int; session : int; op : op; start : int; finish : int }

type t = { events : event array; num_keys : int; num_sessions : int }

let make ~num_keys ~num_sessions events =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.id then
        invalid_arg (Printf.sprintf "Lwt.make: duplicate event id %d" e.id);
      Hashtbl.replace seen e.id ();
      if e.finish < e.start then
        invalid_arg (Printf.sprintf "Lwt.make: event %d finishes before it starts" e.id))
    events;
  { events = Array.of_list events; num_keys; num_sessions }

let key_of_event e =
  match e.op with
  | Insert { key; _ } | Rw { key; _ } | Read { key; _ } -> key

let restrict t k =
  Array.of_list
    (List.filter (fun e -> key_of_event e = k) (Array.to_list t.events))

let pp_event ppf e =
  match e.op with
  | Insert { key; value } ->
      Format.fprintf ppf "E%d[s%d,%d..%d: insert(x%d,%d)]" e.id e.session
        e.start e.finish key value
  | Rw { key; expected; new_value } ->
      Format.fprintf ppf "E%d[s%d,%d..%d: R&W(x%d,%d->%d)]" e.id e.session
        e.start e.finish key expected new_value
  | Read { key; value } ->
      Format.fprintf ppf "E%d[s%d,%d..%d: R(x%d)=%d]" e.id e.session e.start
        e.finish key value
