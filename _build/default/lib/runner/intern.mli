(** Interning of list values.

    The engine stores integer register values; list-append workloads
    (Elle) need list-valued objects.  The runner interns each list as a
    fresh integer id, so an append is executed as a read-modify-write of
    the register while Elle sees genuine lists.  Id 0 is the empty list
    (the initial value every register starts with). *)

type t

val create : unit -> t

val empty_id : int
(** 0 — the id of the empty list. *)

val put : t -> int list -> int
(** Intern a list, returning a fresh id ([> 0]) — lists are never
    deduplicated since appended elements are unique. *)

val get : t -> int -> int list
(** @raise Not_found on an unknown id. *)
