(** Per-shard write-ahead log of accepted service frames.

    Record discipline mirrors the [mtcbin1] binary history format:
    length-prefixed blocks with a per-block CRC-32, behind a
    magic+version header.  Appends are {e group-committed}: records
    accumulate in a user-space buffer and reach the kernel in one
    [write] syscall per {!flush} (the owning shard's drain barrier),
    per ack {!barrier}, per size threshold, or on {!close}.  Bytes
    survive a [kill -9] of the server once flushed; the {!sync} policy
    additionally controls [fsync] (protection against OS crashes and
    power loss).  [Always] keeps the historical
    write-plus-fsync-per-record discipline.

    Reading is total: a torn tail parses as a clean {!Truncated} stop, a
    mid-file CRC or tag mismatch as {!Corrupt}; neither raises. *)

type sync =
  | Always  (** fsync after every record *)
  | Batch
      (** fsync at the ack {!barrier} (before a verdict is acknowledged)
          and every few hundred records *)
  | Off  (** never fsync *)

val sync_of_string : string -> sync option
val sync_name : sync -> string

type record =
  | R_open of {
      sid : int;
      level : Checker.level;
      num_keys : int;
      skew : int;
      ts : Ts.mode;
      gc : Online.gc;  (** watermark-GC policy, re-applied on replay *)
    }
  | R_feed of { sid : int; seq : int; txn : Txn.t }
  | R_close of { sid : int }

type header = { h_version : int; h_shard : int; h_nshards : int; h_gen : int }

(** {1 Writing} *)

type writer

val create :
  ?on_fsync:(int -> unit) ->
  path:string ->
  shard:int ->
  nshards:int ->
  gen:int ->
  sync:sync ->
  unit ->
  writer
(** Create (truncating) a WAL at [path] and write its header.
    [on_fsync] is invoked after every fsync with the fsync's measured
    duration in ns — the metrics / stall-detection hook. *)

val append : writer -> record -> int
(** Append one record to the group-commit buffer and apply the sync
    policy (which may flush and/or fsync); returns the encoded bytes
    appended. *)

val flush : writer -> unit
(** Write any group-committed records to the kernel in one [write]
    syscall — the owning shard calls this at its drain barrier (ingress
    queue empty).  No fsync. *)

val barrier : writer -> unit
(** Make everything appended so far durable enough to acknowledge a
    verdict: flush, plus an fsync in [Batch] mode. *)

val bytes_written : writer -> int
(** Bytes appended so far, including any still in the group-commit
    buffer. *)

val close : writer -> unit
(** Final fsync (unless [Off]) and close.  Idempotent. *)

(** {1 Reading} *)

type tail =
  | Complete
  | Truncated of int  (** torn tail starting at this byte offset *)
  | Corrupt of { offset : int; reason : string }

val read_path : string -> (header * record list * tail, string) result
(** Read a whole WAL.  [Error] only for an unusable file (unreadable,
    bad magic or header); otherwise the valid record prefix plus how the
    file ended. *)
