type shape = R | RW | RR | RRW_fst | RRW_snd | RRWW | RWRW

let all_shapes = [ R; RW; RR; RRW_fst; RRW_snd; RRWW; RWRW ]

let shape_name = function
  | R -> "r"
  | RW -> "rw"
  | RR -> "rr"
  | RRW_fst -> "rrw1"
  | RRW_snd -> "rrw2"
  | RRWW -> "rrww"
  | RWRW -> "rwrw"

let num_keys_of_shape = function
  | R | RW -> 1
  | RR | RRW_fst | RRW_snd | RRWW | RWRW -> 2

let is_mini (t : Txn.t) =
  let reads =
    Array.fold_left (fun n op -> if Op.is_read op then n + 1 else n) 0 t.ops
  in
  let writes = Array.length t.ops - reads in
  reads >= 1 && reads <= 2 && writes <= 2
  &&
  let read_keys = Hashtbl.create 4 in
  Array.for_all
    (fun op ->
      match op with
      | Op.Read (k, _) ->
          Hashtbl.replace read_keys k ();
          true
      | Op.Write (k, _) -> Hashtbl.mem read_keys k)
    t.ops

let shape_of (t : Txn.t) =
  if not (is_mini t) then None
  else
    match Array.to_list t.ops with
    | [ Op.Read _ ] -> Some R
    | [ Op.Read (x, _); Op.Write (x', _) ] when x = x' -> Some RW
    | [ Op.Read (x, _); Op.Read (y, _) ] when x <> y -> Some RR
    | [ Op.Read (x, _); Op.Read (y, _); Op.Write (k, _) ] when x <> y ->
        if k = x then Some RRW_fst else if k = y then Some RRW_snd else None
    | [ Op.Read (x, _); Op.Read (y, _); Op.Write (k1, _); Op.Write (k2, _) ]
      when x <> y && k1 = x && k2 = y ->
        Some RRWW
    | [ Op.Read (x, _); Op.Write (x', _); Op.Read (y, _); Op.Write (y', _) ]
      when x = x' && y = y' && x <> y ->
        Some RWRW
    | _ -> None
