(** The networked checking daemon: an accept loop multiplexing many
    concurrent client sessions over Unix-domain and TCP sockets, each
    session owning its own {!Online.t} (level, key-space size and clock
    skew negotiated at open).

    Checking runs on a fixed array of shards backed by a {!Pool} of
    worker domains, so concurrent sessions verify on separate cores
    instead of serializing on the runtime lock.  A session is pinned to
    one shard for life: its items drain in FIFO order on a single domain
    at a time, so verdicts and counterexamples are bit-identical to a
    single-threaded server's.

    Guarantees:
    - per-session ingress queues are bounded ([queue_capacity]); a full
      queue blocks that connection's reader (the hard backpressure the
      transport propagates) and emits advisory [Throttle]/[Resume]
      frames around the high-water mark;
    - a session that produced a [Violation] verdict is poisoned: every
      further feed or sync is answered with the identical rendered
      counterexample;
    - sessions idle longer than [idle_timeout] are closed with reason
      [R_idle];
    - a mid-frame client disconnect abandons only that connection —
      other connections and sessions are untouched;
    - {!stop} (and the SIGTERM handling of {!run}) drains the frames
      already accepted before saying [Bye]. *)

type addr = A_unix of string | A_tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or ["tcp:HOST:PORT"] ([tcp::PORT] binds 127.0.0.1;
    port 0 asks the kernel for an ephemeral port — read the result back
    with {!bound_addrs}). *)

val addr_to_string : addr -> string

type config = {
  listen : addr list;
  queue_capacity : int;  (** per-session ingress bound *)
  idle_timeout : float;  (** seconds; [<= 0] disables the janitor *)
  drain_delay : float;
      (** artificial per-item worker delay (seconds) — a test/bench knob
          to provoke backpressure deterministically; keep 0 in production *)
  server_name : string;  (** advertised in the [Welcome] frame *)
  metrics : Metrics.t;
  max_keys : int;  (** largest accepted [num_keys] in [Open_session] *)
  shards : int;
      (** checking shards = worker domains; [<= 0] picks
          [Pool.default_size ()] ([MTC_JOBS] or the recommended domain
          count) *)
  metrics_port : int option;
      (** serve Prometheus text exposition over HTTP on
          127.0.0.1:[port] ([GET /metrics]); [0] asks the kernel for an
          ephemeral port — read it back with {!metrics_port} *)
}

val default_config : config
(** No listeners (callers must fill [listen]), queue of 1024, no idle
    timeout, {!Metrics.global}, auto shard count, no metrics port. *)

type t

val start : config -> t
(** Bind every [listen] address and spawn the acceptor/janitor threads.
    @raise Invalid_argument if [listen] is empty.
    @raise Unix.Unix_error if an address cannot be bound. *)

val bound_addrs : t -> addr list
(** The actually-bound addresses (TCP port 0 resolved). *)

val metrics_port : t -> int option
(** The actually-bound metrics port (config port 0 resolved); [None]
    when the exposition endpoint is off. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, shut down ingress on every
    connection, let session workers drain their queues, send
    [Session_closed]+[Bye], close everything.  Idempotent; blocks until
    the drain completes. *)

val run :
  ?on_signal:int list -> ?on_ready:(t -> unit) -> config -> unit
(** [start], then block until one of [on_signal] (default SIGTERM and
    SIGINT) arrives, then {!stop}.  [on_ready] runs right after the
    listeners are bound — used by the CLI to print the addresses. *)
