(* Open-addressing hash map over native int keys: two flat int arrays and
   linear probing, so the verify hot path resolves writers without boxing
   a (key * value) tuple per probe the way the polymorphic [Hashtbl] of
   the seed did.  Values are restricted to [>= 0] (transaction ids, dense
   group ids), which lets [-1] in the value array double as the
   empty-slot marker — no separate occupancy array. *)

type t = {
  mutable keys : int array;  (* meaningful only where vals.(i) >= 0 *)
  mutable vals : int array;  (* -1 marks an empty slot *)
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
}

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (2 * c)

let create ?(capacity = 16) () =
  let cap = ceil_pow2 (Stdlib.max 16 capacity) 16 in
  { keys = Array.make cap 0; vals = Array.make cap (-1); mask = cap - 1;
    size = 0 }

let length t = t.size

(* Fibonacci-style multiplicative mixing; multiplication wraps, which is
   fine for a hash.  The xor-shift folds the high bits down so the
   [land mask] truncation still sees them. *)
let slot t k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land t.mask

(* Index of [k]'s slot if present, of the insertion slot otherwise. *)
let probe t k =
  let i = ref (slot t k) in
  while t.vals.(!i) >= 0 && t.keys.(!i) <> k do
    i := (!i + 1) land t.mask
  done;
  !i

let get t k =
  let i = probe t k in
  t.vals.(i)

let mem t k = get t k >= 0

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * Array.length old_vals in
  t.keys <- Array.make cap 0;
  t.vals <- Array.make cap (-1);
  t.mask <- cap - 1;
  for i = 0 to Array.length old_vals - 1 do
    if old_vals.(i) >= 0 then begin
      let j = probe t old_keys.(i) in
      t.keys.(j) <- old_keys.(i);
      t.vals.(j) <- old_vals.(i)
    end
  done

let set t k v =
  if v < 0 then invalid_arg "Flat_index.set: values must be >= 0";
  let i = probe t k in
  if t.vals.(i) >= 0 then t.vals.(i) <- v
  else begin
    (* Keep the load factor at or below 1/2. *)
    if 2 * (t.size + 1) > Array.length t.vals then grow t;
    let i = probe t k in
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.size <- t.size + 1
  end

(* Snapshot codec: size then the live (key, value) pairs in slot order.
   Decode re-inserts into a fresh map — probe layout is unobservable
   (the interface is get/set/mem), so re-insertion is equivalence-
   preserving. *)

let encode buf t =
  Binio_core.add_uvarint buf t.size;
  for i = 0 to Array.length t.vals - 1 do
    if t.vals.(i) >= 0 then begin
      Binio_core.add_varint buf t.keys.(i);
      Binio_core.add_uvarint buf t.vals.(i)
    end
  done

let decode r =
  let size = Binio_core.read_uvarint r in
  if size < 0 || size > Binio_core.remaining r then
    Binio_core.fail "flat_index size %d overruns input" size;
  let t = create ~capacity:(2 * size) () in
  for _ = 1 to size do
    let k = Binio_core.read_varint r in
    let v = Binio_core.read_uvarint r in
    if v < 0 then Binio_core.fail "flat_index value %d negative" v;
    set t k v
  done;
  t

let iter t f =
  for i = 0 to Array.length t.vals - 1 do
    if t.vals.(i) >= 0 then f t.keys.(i) t.vals.(i)
  done

(* Words-of-memory estimator: the two backing arrays plus the header.
   O(1); used by the online checker's GC trigger. *)
let words t = 4 + (2 * Array.length t.vals)

(* Rebuild keeping only the bindings [pred] accepts.  Probe layout is
   unobservable through this interface, so a filtered re-insertion is
   equivalence-preserving; the fresh map is sized for the survivors so
   compaction actually returns memory. *)
let filtered t pred =
  let t' = create ~capacity:4 () in
  iter t (fun k v -> if pred k then set t' k v);
  t'

type map = t

let encode_map = encode
let decode_map = decode
let iter_map = iter
let words_map = words
let set_map = set
let create_map = create

(* --- int-packed (key, value) pairs --- *)

(* A pair packs to [value * num_keys + key] when that cannot overflow
   (key in [0, num_keys), value >= 0 and small enough); the packing is
   then injective, so probing never confuses two pairs.  -1 when the
   pair has no collision-free packing — the rare unpackable pair
   (out-of-range key, negative or astronomically large value, e.g. from
   a hand-written or decoded history) goes to a tuple-keyed spill table
   instead, empty on every generated workload. *)
let pack_pair ~num_keys k v =
  if k >= 0 && k < num_keys && v >= 0 && v <= (max_int - k) / num_keys then
    (v * num_keys) + k
  else -1

(* --- writer lookup tables over int-packed (key, value) pairs --- *)

module Writers = struct
  type who =
    | Final of Txn.id
    | Intermediate of Txn.id
    | Aborted of Txn.id
    | Nobody

  type t = {
    num_keys : int;
    final : map;
    intermediate : map;
    aborted : map;
    spill : (int * Op.key * Op.value, Txn.id) Hashtbl.t;
        (** keyed by (tier, key, value); tier 0/1/2 = final/interm/aborted *)
  }

  let create ~num_keys ~expected =
    {
      num_keys;
      final = create ~capacity:(2 * expected) ();
      intermediate = create ();
      aborted = create ();
      spill = Hashtbl.create 8;
    }

  let pack t k v = pack_pair ~num_keys:t.num_keys k v

  let set_in t tier tbl k v id =
    let p = pack t k v in
    if p >= 0 then set tbl p id else Hashtbl.replace t.spill (tier, k, v) id

  let set_final t k v id = set_in t 0 t.final k v id
  let set_intermediate t k v id = set_in t 1 t.intermediate k v id
  let set_aborted t k v id = set_in t 2 t.aborted k v id

  let resolve t k v =
    let p = pack t k v in
    if p >= 0 then begin
      let id = get t.final p in
      if id >= 0 then Final id
      else
        let id = get t.intermediate p in
        if id >= 0 then Intermediate id
        else
          let id = get t.aborted p in
          if id >= 0 then Aborted id else Nobody
    end
    else
      match Hashtbl.find_opt t.spill (0, k, v) with
      | Some id -> Final id
      | None -> (
          match Hashtbl.find_opt t.spill (1, k, v) with
          | Some id -> Intermediate id
          | None -> (
              match Hashtbl.find_opt t.spill (2, k, v) with
              | Some id -> Aborted id
              | None -> Nobody))

  let keep t pred =
    {
      num_keys = t.num_keys;
      final = filtered t.final pred;
      intermediate = filtered t.intermediate pred;
      aborted = filtered t.aborted pred;
      spill = Hashtbl.copy t.spill;  (* unpackable pairs are never pruned *)
    }

  let iter_final t f =
    iter t.final (fun _ id -> f id);
    Hashtbl.iter (fun (tier, _, _) id -> if tier = 0 then f id) t.spill

  let words t =
    2 + words t.final + words t.intermediate + words t.aborted
    + (8 * Hashtbl.length t.spill)

  let encode buf t =
    Binio_core.add_uvarint buf t.num_keys;
    encode_map buf t.final;
    encode_map buf t.intermediate;
    encode_map buf t.aborted;
    Binio_core.add_uvarint buf (Hashtbl.length t.spill);
    Hashtbl.iter
      (fun (tier, k, v) id ->
        Binio_core.add_uvarint buf tier;
        Binio_core.add_varint buf k;
        Binio_core.add_varint buf v;
        Binio_core.add_varint buf id)
      t.spill

  let decode r =
    let num_keys = Binio_core.read_uvarint r in
    let final = decode_map r in
    let intermediate = decode_map r in
    let aborted = decode_map r in
    let n = Binio_core.read_uvarint r in
    if n < 0 || n > Binio_core.remaining r then
      Binio_core.fail "writers spill count %d overruns input" n;
    let spill = Hashtbl.create (Stdlib.max 8 n) in
    for _ = 1 to n do
      let tier = Binio_core.read_uvarint r in
      if tier < 0 || tier > 2 then
        Binio_core.fail "writers spill tier %d out of range" tier;
      let k = Binio_core.read_varint r in
      let v = Binio_core.read_varint r in
      let id = Binio_core.read_varint r in
      Hashtbl.replace spill (tier, k, v) id
    done;
    { num_keys; final; intermediate; aborted; spill }
end

(* --- (key, value) -> int list, as a flat cons pool --- *)

module Multi = struct
  (* The seed's [(key, value) -> Txn.id list ref Hashtbl] boxed a tuple
     per probe and a list cell plus a ref per push.  Here the lists live
     in two parallel int vectors (value, next-index) threaded like cons
     cells, with a packed-pair map holding each list's head index: a push
     is two int appends and a map store, and iteration follows int
     indices — newest first, exactly the seed's cons order. *)
  type t = {
    num_keys : int;
    heads : map;  (* packed pair -> head slot in the pool *)
    pvals : Int_vec.t;
    pnext : Int_vec.t;  (* -1 terminates a chain *)
    spill : (Op.key * Op.value, int list ref) Hashtbl.t;
  }

  let create ~num_keys () =
    {
      num_keys;
      heads = create ();
      pvals = Int_vec.create 64;
      pnext = Int_vec.create 64;
      spill = Hashtbl.create 8;
    }

  let push t k v x =
    let p = pack_pair ~num_keys:t.num_keys k v in
    if p >= 0 then begin
      let head = get t.heads p in
      let slot = Int_vec.length t.pvals in
      Int_vec.push t.pvals x;
      Int_vec.push t.pnext head;
      set t.heads p slot
    end
    else
      match Hashtbl.find_opt t.spill (k, v) with
      | Some r -> r := x :: !r
      | None -> Hashtbl.replace t.spill (k, v) (ref [ x ])

  let iter t k v f =
    let p = pack_pair ~num_keys:t.num_keys k v in
    if p >= 0 then begin
      let slot = ref (get t.heads p) in
      while !slot >= 0 do
        f (Int_vec.get t.pvals !slot);
        slot := Int_vec.get t.pnext !slot
      done
    end
    else
      match Hashtbl.find_opt t.spill (k, v) with
      | Some r -> List.iter f !r
      | None -> ()

  (* Rebuild keeping only the chains whose packed pair [pred] accepts.
     Each surviving chain is re-pushed oldest-first into a fresh pool so
     iteration order (newest first) is preserved while dead chains' cons
     cells are dropped. *)
  let keep t pred =
    let t' = create ~num_keys:t.num_keys () in
    let scratch = Int_vec.create 16 in
    iter_map t.heads (fun p head ->
        if pred p then begin
          Int_vec.clear scratch;
          let slot = ref head in
          while !slot >= 0 do
            Int_vec.push scratch (Int_vec.get t.pvals !slot);
            slot := Int_vec.get t.pnext !slot
          done;
          let k = p mod t.num_keys and v = p / t.num_keys in
          for i = Int_vec.length scratch - 1 downto 0 do
            push t' k v (Int_vec.get scratch i)
          done
        end);
    Hashtbl.iter (fun kv l -> Hashtbl.replace t'.spill kv (ref !l)) t.spill;
    t'

  let iter_members t f =
    for i = 0 to Int_vec.length t.pvals - 1 do
      f (Int_vec.get t.pvals i)
    done;
    Hashtbl.iter (fun _ l -> List.iter f !l) t.spill

  let words t =
    2 + words_map t.heads
    + Array.length (Int_vec.data t.pvals)
    + Array.length (Int_vec.data t.pnext)
    + (8 * Hashtbl.length t.spill)

  (* The cons pool is written verbatim (iteration is newest-first chain
     following, which the slot indices encode); spill lists keep their
     order. *)
  let encode buf t =
    Binio_core.add_uvarint buf t.num_keys;
    encode_map buf t.heads;
    Int_vec.encode buf t.pvals;
    Int_vec.encode buf t.pnext;
    Binio_core.add_uvarint buf (Hashtbl.length t.spill);
    Hashtbl.iter
      (fun (k, v) l ->
        Binio_core.add_varint buf k;
        Binio_core.add_varint buf v;
        Binio_core.add_uvarint buf (List.length !l);
        List.iter (Binio_core.add_varint buf) !l)
      t.spill

  let decode r =
    let num_keys = Binio_core.read_uvarint r in
    let heads = decode_map r in
    let pvals = Int_vec.decode r in
    let pnext = Int_vec.decode r in
    let n = Binio_core.read_uvarint r in
    if n < 0 || n > Binio_core.remaining r then
      Binio_core.fail "multi spill count %d overruns input" n;
    let spill = Hashtbl.create (Stdlib.max 8 n) in
    for _ = 1 to n do
      let k = Binio_core.read_varint r in
      let v = Binio_core.read_varint r in
      let len = Binio_core.read_uvarint r in
      if len < 0 || len > Binio_core.remaining r then
        Binio_core.fail "multi spill list of %d overruns input" len;
      let l = List.init len (fun _ -> Binio_core.read_varint r) in
      Hashtbl.replace spill (k, v) (ref l)
    done;
    { num_keys; heads; pvals; pnext; spill }
end

(* --- (key, value) -> (int, int), for the SI divergence screen --- *)

module Pairs = struct
  (* One packed-pair map into a flat pool of 2-int slots.  The first
     component must be >= 0 (it doubles as the absence sentinel of
     {!first}); the second is unrestricted — it lives in the pool, not in
     the map's value array. *)
  type t = {
    num_keys : int;
    idx : map;  (* packed pair -> slot; slot s occupies pool[2s, 2s+1] *)
    pool : Int_vec.t;
    spill : (Op.key * Op.value, int * int) Hashtbl.t;
  }

  let create ~num_keys () =
    { num_keys; idx = create (); pool = Int_vec.create 64;
      spill = Hashtbl.create 8 }

  let set t k v a b =
    if a < 0 then invalid_arg "Flat_index.Pairs.set: first component >= 0";
    let p = pack_pair ~num_keys:t.num_keys k v in
    if p >= 0 then begin
      let s = get t.idx p in
      if s >= 0 then begin
        Int_vec.set t.pool (2 * s) a;
        Int_vec.set t.pool ((2 * s) + 1) b
      end
      else begin
        let s = Int_vec.length t.pool / 2 in
        Int_vec.push t.pool a;
        Int_vec.push t.pool b;
        set t.idx p s
      end
    end
    else Hashtbl.replace t.spill (k, v) (a, b)

  (* [-1] when the pair is absent. *)
  let first t k v =
    let p = pack_pair ~num_keys:t.num_keys k v in
    if p >= 0 then begin
      let s = get t.idx p in
      if s >= 0 then Int_vec.get t.pool (2 * s) else -1
    end
    else match Hashtbl.find_opt t.spill (k, v) with Some (a, _) -> a | None -> -1

  (* Only meaningful when [first] returned >= 0. *)
  let second t k v =
    let p = pack_pair ~num_keys:t.num_keys k v in
    if p >= 0 then begin
      let s = get t.idx p in
      if s >= 0 then Int_vec.get t.pool ((2 * s) + 1) else 0
    end
    else
      match Hashtbl.find_opt t.spill (k, v) with Some (_, b) -> b | None -> 0

  let keep t pred =
    let t' =
      { num_keys = t.num_keys; idx = create_map ~capacity:4 ();
        pool = Int_vec.create 16; spill = Hashtbl.copy t.spill }
    in
    iter_map t.idx (fun p s ->
        if pred p then begin
          let s' = Int_vec.length t'.pool / 2 in
          Int_vec.push t'.pool (Int_vec.get t.pool (2 * s));
          Int_vec.push t'.pool (Int_vec.get t.pool ((2 * s) + 1));
          set_map t'.idx p s'
        end);
    t'

  let words t =
    2 + words_map t.idx + Array.length (Int_vec.data t.pool)
    + (8 * Hashtbl.length t.spill)

  let encode buf t =
    Binio_core.add_uvarint buf t.num_keys;
    encode_map buf t.idx;
    Int_vec.encode buf t.pool;
    Binio_core.add_uvarint buf (Hashtbl.length t.spill);
    Hashtbl.iter
      (fun (k, v) (a, b) ->
        Binio_core.add_varint buf k;
        Binio_core.add_varint buf v;
        Binio_core.add_varint buf a;
        Binio_core.add_varint buf b)
      t.spill

  let decode r =
    let num_keys = Binio_core.read_uvarint r in
    let idx = decode_map r in
    let pool = Int_vec.decode r in
    let n = Binio_core.read_uvarint r in
    if n < 0 || n > Binio_core.remaining r then
      Binio_core.fail "pairs spill count %d overruns input" n;
    let spill = Hashtbl.create (Stdlib.max 8 n) in
    for _ = 1 to n do
      let k = Binio_core.read_varint r in
      let v = Binio_core.read_varint r in
      let a = Binio_core.read_varint r in
      let b = Binio_core.read_varint r in
      Hashtbl.replace spill (k, v) (a, b)
    done;
    { num_keys; idx; pool; spill }
end
