type kind =
  | Thin_air_read
  | Aborted_read of Txn.id
  | Future_read
  | Not_my_last_write
  | Not_my_own_write
  | Intermediate_read of Txn.id
  | Non_repeatable_reads

type violation = { txn : Txn.id; op_index : int; kind : kind }

let kind_name = function
  | Thin_air_read -> "ThinAirRead"
  | Aborted_read _ -> "AbortedRead"
  | Future_read -> "FutureRead"
  | Not_my_last_write -> "NotMyLastWrite"
  | Not_my_own_write -> "NotMyOwnWrite"
  | Intermediate_read _ -> "IntermediateRead"
  | Non_repeatable_reads -> "NonRepeatableReads"

let pp_violation ppf { txn; op_index; kind } =
  Format.fprintf ppf "%s at T%d op#%d" (kind_name kind) txn op_index;
  match kind with
  | Aborted_read w -> Format.fprintf ppf " (writer T%d, aborted)" w
  | Intermediate_read w -> Format.fprintf ppf " (intermediate write of T%d)" w
  | Thin_air_read | Future_read | Not_my_last_write | Not_my_own_write
  | Non_repeatable_reads ->
      ()

type last_access = Last_write of Op.value | Last_read of Op.value

(* Classify a read that disagrees with the in-transaction state.  [later]
   tells whether the observed value is produced by a write of the same
   transaction occurring after the read. *)
let classify_internal ~prior ~observed_is_earlier_own_write ~observed_is_later_own_write
    =
  if observed_is_later_own_write then Future_read
  else
    match prior with
    | Last_write _ ->
        if observed_is_earlier_own_write then Not_my_last_write
        else Not_my_own_write
    | Last_read _ -> Non_repeatable_reads

let check_txn_with ~resolve (t : Txn.t) =
  let ops = t.ops in
  let n = Array.length ops in
  let violations = ref [] in
  (* Mini-transactions have <= 4 ops: linear rescans of the op array
     replace the per-transaction hashtables, so the screen allocates
     nothing on the happy path. *)
  (* Position of the transaction's first own write of (k, v), or -1. *)
  let own_write_pos k v =
    let rec go j =
      if j >= n then -1
      else
        match ops.(j) with
        | Op.Write (k', v') when k' = k && v' = v -> j
        | Op.Write _ | Op.Read _ -> go (j + 1)
    in
    go 0
  in
  (* Last in-transaction access to [k] strictly before position [i]. *)
  let rec last_access k j =
    if j < 0 then None
    else
      match ops.(j) with
      | Op.Write (k', v') when k' = k -> Some (Last_write v')
      | Op.Read (k', v') when k' = k -> Some (Last_read v')
      | Op.Write _ | Op.Read _ -> last_access k (j - 1)
  in
  Array.iteri
    (fun i op ->
      match op with
      | Op.Write _ -> ()
      | Op.Read (k, v) -> (
          let record kind =
            violations := { txn = t.id; op_index = i; kind } :: !violations
          in
          match last_access k (i - 1) with
          | Some (Last_write v' | Last_read v') when v' = v -> ()
          | Some prior ->
              let p = own_write_pos k v in
              record
                (classify_internal ~prior
                   ~observed_is_earlier_own_write:(p >= 0 && p < i)
                   ~observed_is_later_own_write:(p > i))
          | None -> (
              (* External read: resolve the writer via unique values. *)
              match resolve k v with
              | Index.Final w when w <> t.id -> ()
              | Index.Final _ ->
                  (* Our own final write, read before it happened. *)
                  record Future_read
              | Index.Intermediate w ->
                  if w = t.id then record Future_read
                  else record (Intermediate_read w)
              | Index.Aborted w -> record (Aborted_read w)
              | Index.Nobody -> record Thin_air_read)))
    ops;
  List.rev !violations

let check_txn (idx : Index.t) t =
  check_txn_with ~resolve:(Index.writer_of idx) t

let check_all (idx : Index.t) =
  Array.fold_left
    (fun acc t -> acc @ check_txn idx t)
    [] idx.committed

let check ?pool idx =
  (* Vertex slices screen independently; each reports its first hit and
     the lowest committed-array position wins, which is exactly the
     sequential first-in-scan-order violation. *)
  let slices =
    Pool.map_slices pool ~n:(Array.length idx.Index.committed) (fun lo hi ->
        let rec go i =
          if i >= hi then None
          else
            match check_txn idx idx.Index.committed.(i) with
            | v :: _ -> Some (i, v)
            | [] -> go (i + 1)
        in
        go lo)
  in
  let best =
    Array.fold_left
      (fun acc hit ->
        match (acc, hit) with
        | None, hit -> hit
        | Some _, None -> acc
        | Some (i, _), Some (j, _) -> if j < i then hit else acc)
      None slices
  in
  match best with None -> Ok () | Some (_, v) -> Error v
