lib/workload/append_gen.mli: Distribution Spec
