(* Tests for the Online (streaming) checker: agreement with the batch
   checker on engine histories fed in commit order, early detection, and
   the poisoned-state contract. *)

let checkb = Alcotest.check Alcotest.bool

(* A history's transactions in commit order (aborted attempts included,
   ordered by their abort time), as a monitoring proxy would see them. *)
let stream_of (h : History.t) =
  Array.to_list h.History.txns
  |> List.filter (fun (t : Txn.t) -> t.Txn.id <> History.init_id)
  |> List.sort (fun (a : Txn.t) b -> compare a.Txn.commit_ts b.Txn.commit_ts)

let engine_history ~level ~fault ~seed =
  let spec =
    Mt_gen.generate { Mt_gen.default with num_txns = 250; num_keys = 10; seed }
  in
  let db = { Db.level; fault; num_keys = 10; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

let agree level h =
  let batch = Checker.passes (Checker.check level h) in
  let online =
    match
      Online.check_stream ~level ~num_keys:h.History.num_keys (stream_of h)
    with
    | Ok _ -> true
    | Error _ -> false
  in
  batch = online

let test_online_agrees_clean () =
  List.iter
    (fun (engine, level) ->
      for seed = 1 to 4 do
        checkb
          (Printf.sprintf "%s seed %d" (Checker.level_name level) seed)
          true
          (agree level (engine_history ~level:engine ~fault:Fault.No_fault ~seed))
      done)
    [
      (Isolation.Snapshot, Checker.SI);
      (Isolation.Serializable, Checker.SER);
      (Isolation.Strict_serializable, Checker.SSER);
      (Isolation.Snapshot, Checker.SER);
    ]

let test_online_agrees_faulty () =
  List.iter
    (fun (fault, level) ->
      for seed = 1 to 4 do
        checkb
          (Printf.sprintf "%s seed %d" (Checker.level_name level) seed)
          true
          (agree level
             (engine_history ~level:Isolation.Snapshot ~fault ~seed))
      done)
    [
      (Fault.Lost_update 0.2, Checker.SI);
      (Fault.Aborted_read 0.2, Checker.SI);
      (Fault.Causality_violation 0.1, Checker.SI);
      (Fault.Lost_update 0.2, Checker.SER);
    ]

let test_online_detects_at_offender () =
  (* The violation fires exactly when the second diverging writer
     arrives. *)
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Read (0, 0); Op.Write (0, 1) ] in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Read (0, 0); Op.Write (0, 2) ] in
  let o = Online.create ~level:Checker.SI ~num_keys:1 () in
  checkb "first writer fine" true (Online.add_txn o t1 = Online.Ok_so_far);
  (match Online.add_txn o t2 with
  | Online.Violation (Checker.Diverged _) -> ()
  | _ -> Alcotest.fail "expected divergence at T2");
  (* poisoned: same violation returned, txn not consumed *)
  let t3 = Txn.make ~id:3 ~session:1 [ Op.Read (0, 1) ] in
  match Online.add_txn o t3 with
  | Online.Violation (Checker.Diverged _) -> ()
  | _ -> Alcotest.fail "poisoned checker must keep failing"

let test_online_write_skew_cycle () =
  let t1 =
    Txn.make ~id:1 ~session:1
      [ Op.Read (0, 0); Op.Read (1, 0); Op.Write (0, 1) ]
  in
  let t2 =
    Txn.make ~id:2 ~session:2
      [ Op.Read (0, 0); Op.Read (1, 0); Op.Write (1, 2) ]
  in
  (match Online.check_stream ~level:Checker.SER ~num_keys:2 [ t1; t2 ] with
  | Error (Checker.Cyclic cycle) ->
      checkb "RW edges in cycle" true
        (List.exists (fun (_, d, _) -> match d with Deps.RW _ -> true | _ -> false) cycle)
  | _ -> Alcotest.fail "write skew must cycle at SER");
  (* and at SI the same stream passes *)
  checkb "SI passes write skew" true
    (Online.check_stream ~level:Checker.SI ~num_keys:2 [ t1; t2 ] = Ok 2)

let test_online_sser_rt () =
  let t1 =
    Txn.make ~id:1 ~session:1 ~start_ts:0 ~commit_ts:10
      [ Op.Read (0, 0); Op.Write (0, 1) ]
  in
  let t2 =
    Txn.make ~id:2 ~session:2 ~start_ts:20 ~commit_ts:30 [ Op.Read (0, 0) ]
  in
  (match Online.check_stream ~level:Checker.SSER ~num_keys:1 [ t1; t2 ] with
  | Error (Checker.Cyclic _) -> ()
  | _ -> Alcotest.fail "stale read after commit must fail SSER");
  (* skew tolerance covers small drift *)
  let t2' = Txn.make ~id:2 ~session:2 ~start_ts:12 ~commit_ts:30 [ Op.Read (0, 0) ] in
  checkb "with skew" true
    (Online.check_stream ~skew:5 ~level:Checker.SSER ~num_keys:1 [ t1; t2' ]
    = Ok 2)

let test_online_sser_order_enforced () =
  let t1 = Txn.make ~id:1 ~session:1 ~start_ts:0 ~commit_ts:50 [ Op.Read (0, 0) ] in
  let t2 = Txn.make ~id:2 ~session:2 ~start_ts:0 ~commit_ts:10 [ Op.Read (0, 0) ] in
  checkb "out of order rejected" true
    (try
       ignore (Online.check_stream ~level:Checker.SSER ~num_keys:1 [ t1; t2 ]);
       false
     with Invalid_argument _ -> true)

let test_online_id_reuse_rejected () =
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Read (0, 0) ] in
  let o = Online.create ~level:Checker.SER ~num_keys:1 () in
  ignore (Online.add_txn o t1);
  checkb "reuse rejected" true
    (try
       ignore (Online.add_txn o t1);
       false
     with Invalid_argument _ -> true)

let test_online_aborted_read_diagnosed () =
  let t1 =
    Txn.make ~id:1 ~session:1 ~status:Txn.Aborted
      [ Op.Read (0, 0); Op.Write (0, 9) ]
  in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Read (0, 9) ] in
  match Online.check_stream ~level:Checker.SI ~num_keys:1 [ t1; t2 ] with
  | Error (Checker.Intra { kind = Int_check.Aborted_read 1; _ }) -> ()
  | _ -> Alcotest.fail "expected AbortedRead pointing at T1"

let test_online_duplicate_value () =
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Read (0, 0); Op.Write (0, 7) ] in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Read (0, 7); Op.Write (0, 7) ] in
  match Online.check_stream ~level:Checker.SI ~num_keys:1 [ t1; t2 ] with
  | Error (Checker.Malformed _) -> ()
  | _ -> Alcotest.fail "duplicate value must be rejected"

let test_online_grows_past_capacity () =
  (* More than the initial 64-vertex capacity. *)
  let txns =
    List.init 500 (fun i ->
        Txn.make ~id:(i + 1) ~session:1 [ Op.Read (0, i); Op.Write (0, i + 1) ])
  in
  checkb "long chain accepted" true
    (Online.check_stream ~level:Checker.SER ~num_keys:1 txns = Ok 500)

let test_online_poisoned_is_frozen () =
  (* After the first violation the checker is inert: every further
     add_txn answers with the identical violation and the graph stops
     mutating (same vertex and edge counts, txns_seen frozen). *)
  let t1 = Txn.make ~id:1 ~session:1 [ Op.Read (0, 0); Op.Write (0, 1) ] in
  let t2 = Txn.make ~id:2 ~session:2 [ Op.Read (0, 0); Op.Write (0, 2) ] in
  let o = Online.create ~level:Checker.SI ~num_keys:1 () in
  ignore (Online.add_txn o t1);
  let first =
    match Online.add_txn o t2 with
    | Online.Violation v -> v
    | Online.Ok_so_far -> Alcotest.fail "divergence must be flagged"
  in
  checkb "poisoned" true (Online.poisoned o <> None);
  let frozen = Online.stats o in
  for i = 3 to 10 do
    let t = Txn.make ~id:i ~session:1 [ Op.Read (0, 1) ] in
    (match Online.add_txn o t with
    | Online.Violation v ->
        checkb "identical violation" true (v == first)
    | Online.Ok_so_far -> Alcotest.fail "poisoned checker must keep failing");
    let s = Online.stats o in
    Alcotest.check Alcotest.int "txns_seen frozen" frozen.Online.s_txns_seen
      s.Online.s_txns_seen;
    Alcotest.check Alcotest.int "vertices frozen" frozen.Online.s_vertices
      s.Online.s_vertices;
    Alcotest.check Alcotest.int "edges frozen" frozen.Online.s_edges
      s.Online.s_edges;
    checkb "still poisoned" true s.Online.s_poisoned
  done

let test_online_stats_progress () =
  let o = Online.create ~level:Checker.SER ~num_keys:1 () in
  let s0 = Online.stats o in
  Alcotest.check Alcotest.int "starts empty" 0 s0.Online.s_txns_seen;
  checkb "starts clean" false s0.Online.s_poisoned;
  ignore (Online.add_txn o (Txn.make ~id:1 ~session:1 [ Op.Read (0, 0); Op.Write (0, 1) ]));
  ignore (Online.add_txn o (Txn.make ~id:2 ~session:1 [ Op.Read (0, 1); Op.Write (0, 2) ]));
  let s = Online.stats o in
  Alcotest.check Alcotest.int "two seen" 2 s.Online.s_txns_seen;
  checkb "dependency edges recorded" true (s.Online.s_edges >= 1);
  checkb "vertices cover txns" true (s.Online.s_vertices >= 2)

let test_online_edge_count_distinct () =
  (* T1 -> T2 carries both a WR and a WW dependency on key 0; the edge
     count must report one distinct graph edge per vertex pair, not one
     per dependency label. *)
  let o = Online.create ~level:Checker.SER ~num_keys:1 () in
  ignore (Online.add_txn o (Txn.make ~id:1 ~session:1 [ Op.Read (0, 0); Op.Write (0, 1) ]));
  ignore (Online.add_txn o (Txn.make ~id:2 ~session:1 [ Op.Read (0, 1); Op.Write (0, 2) ]));
  let s = Online.stats o in
  checkb "not poisoned" false s.Online.s_poisoned;
  (* init -> T1 (WR), T1 -> T2 (SO + WR + WW collapse to one edge). *)
  Alcotest.check Alcotest.int "distinct edges" 2 s.Online.s_edges

let test_grow_duplicate_and_stale_label () =
  let g = Online.Grow.create () in
  (match Online.Grow.add_edge g 0 1 Deps.SO with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first edge must be accepted");
  Alcotest.check Alcotest.int "one edge" 1 (Online.Grow.edge_count g);
  (* Duplicate insertion: accepted, but neither the count nor the
     original label may change. *)
  (match Online.Grow.add_edge g 0 1 (Deps.WW 0) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "duplicate edge must be Ok");
  Alcotest.check Alcotest.int "count unchanged on duplicate" 1
    (Online.Grow.edge_count g);
  checkb "label unchanged on duplicate" true
    (Online.Grow.label g 0 1 = Deps.SO);
  (* Rejected edge: 1 -> 0 closes a cycle; its label must not leak into
     the label table (lookup falls back to the internal Rt_chain). *)
  (match Online.Grow.add_edge g 1 0 (Deps.WR 0) with
  | Error path -> checkb "witness path" true (path <> [])
  | Ok () -> Alcotest.fail "cycle edge must be rejected");
  Alcotest.check Alcotest.int "count unchanged on reject" 1
    (Online.Grow.edge_count g);
  checkb "no stale label on rejected edge" true
    (Online.Grow.label g 1 0 = Deps.Rt_chain)

let test_online_counts () =
  let o = Online.create ~level:Checker.SER ~num_keys:1 () in
  ignore (Online.add_txn o (Txn.make ~id:1 ~session:1 [ Op.Read (0, 0) ]));
  Alcotest.check Alcotest.int "one seen" 1 (Online.txns_seen o)

let suite =
  [
    ("agrees with batch on clean engines", `Quick, test_online_agrees_clean);
    ("agrees with batch on faulty engines", `Quick, test_online_agrees_faulty);
    ("divergence flagged at the offender", `Quick, test_online_detects_at_offender);
    ("write-skew cycle at SER, pass at SI", `Quick, test_online_write_skew_cycle);
    ("SSER real-time edge + skew", `Quick, test_online_sser_rt);
    ("SSER stream order enforced", `Quick, test_online_sser_order_enforced);
    ("transaction id reuse rejected", `Quick, test_online_id_reuse_rejected);
    ("aborted read diagnosed", `Quick, test_online_aborted_read_diagnosed);
    ("duplicate value rejected", `Quick, test_online_duplicate_value);
    ("edge count is per distinct vertex pair", `Quick, test_online_edge_count_distinct);
    ("Grow: duplicate accounting and stale labels", `Quick, test_grow_duplicate_and_stale_label);
    ("grows past initial capacity", `Quick, test_online_grows_past_capacity);
    ("poisoned checker frozen (stats)", `Quick, test_online_poisoned_is_frozen);
    ("stats track progress", `Quick, test_online_stats_progress);
    ("txns_seen", `Quick, test_online_counts);
  ]
