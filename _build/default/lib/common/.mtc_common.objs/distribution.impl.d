lib/common/distribution.ml: Array Rng Stdlib
