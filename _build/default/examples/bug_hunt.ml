(* Black-box bug hunting (paper Section V-F): point MTC at a database
   whose isolation implementation is subtly broken and let randomized MT
   workloads find the violation.  Each engine below replicates one of the
   production bugs of Table II via fault injection.

     dune exec examples/bug_hunt.exe *)

let hunt name ~db ~level =
  Format.printf "@.== hunting in %s (claims %s) ==@." name
    (Checker.level_name level);
  let make_spec ~seed =
    Mt_gen.generate
      { Mt_gen.num_sessions = 10; num_txns = 600; num_keys = 15;
        dist = Distribution.Uniform; seed }
  in
  let outcome = Endtoend.hunt ~db ~make_spec ~level ~max_trials:25 () in
  match outcome.Endtoend.violation with
  | Some report ->
      Format.printf
        "  found after %d histories (%d committed txns, %.2fs generation, \
         %.4fs verification):@."
        outcome.Endtoend.trials outcome.Endtoend.committed_total
        outcome.Endtoend.hunt_gen_s outcome.Endtoend.hunt_verify_s;
      print_string report
  | None ->
      Format.printf "  nothing found in %d histories (%.2fs) — looks clean@."
        outcome.Endtoend.trials outcome.Endtoend.hunt_gen_s

let () =
  print_endline "Randomized isolation testing with mini-transactions.";
  hunt "a Galera-like cluster that loses updates"
    ~db:{ Db.level = Isolation.Snapshot; fault = Fault.Lost_update 0.02;
          num_keys = 15; seed = 3 }
    ~level:Checker.SI;
  hunt "a store that leaks aborted writes"
    ~db:{ Db.level = Isolation.Snapshot; fault = Fault.Aborted_read 0.05;
          num_keys = 15; seed = 4 }
    ~level:Checker.SI;
  hunt "a 'serializable' engine with its SSI check disabled"
    ~db:{ Db.level = Isolation.Serializable; fault = Fault.Write_skew 0.5;
          num_keys = 15; seed = 5 }
    ~level:Checker.SER;
  hunt "a healthy serializable engine (control)"
    ~db:{ Db.level = Isolation.Serializable; fault = Fault.No_fault;
          num_keys = 15; seed = 6 }
    ~level:Checker.SER
