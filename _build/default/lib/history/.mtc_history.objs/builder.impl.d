lib/history/builder.ml: History List Op Option Txn
