lib/graph/cycle.ml: Array Digraph List Queue
