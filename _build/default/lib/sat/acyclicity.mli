(** SAT-modulo-acyclicity: the graph theory behind MonoSAT-lite.

    Literals are attached to sets of directed edges; an edge exists while
    any attached literal is true (fixed edges always exist).  Whenever an
    assignment would close a cycle, the theory reports the attached
    literals along that cycle as a conflict, which the CDCL core turns
    into a learned clause.  Backtracking removes edges in LIFO order.

    The Cobra and PolySI baselines use one variable per polygraph
    constraint: the positive literal installs one edge set, the negative
    literal the other (paper Section V-B). *)

type t

val create : n:int -> t
(** Vertices [0 .. n-1]. *)

val add_fixed : t -> int -> int -> (unit, int list) result
(** A permanent (known) edge.  [Error path] if it already closes a cycle
    of fixed edges ([path] as in {!Pearce_kelly.add_edge}). *)

val add_fixed_batch : t -> (int * int) list -> (unit, int list) result
(** Install many fixed edges (deduplicated) with a single O(V+E)
    acyclicity check at the end — [Error cycle_vertices] if the combined
    fixed graph is cyclic.  Much faster than repeated {!add_fixed} when
    loading a large known graph. *)

val attach : t -> Lit.t -> (int * int) list -> unit
(** Edges installed while [lit] is true.  Call before solving. *)

val theory : t -> Solver.theory
(** The hooks to pass to {!Solver.create}. *)

val reaches : t -> int -> int -> bool
(** Reachability over fixed edges only — used by the baselines' constraint
    pruning. *)
