lib/history/builder.mli: History Op Txn
