lib/common/stats.mli: Format
