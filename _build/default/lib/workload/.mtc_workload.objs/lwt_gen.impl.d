lib/workload/lwt_gen.ml: Hashtbl List Lwt Op Rng Stdlib
