(** Mutable directed graphs with labeled edges over a fixed vertex set
    [0 .. n-1].  Parallel edges with distinct labels are allowed; the
    algorithms in this library treat them as a single adjacency when only
    connectivity matters. *)

type 'lab t

val create : int -> 'lab t
(** [create n] is the empty graph on vertices [0 .. n-1]. *)

val n : _ t -> int
val num_edges : _ t -> int

val add_edge : 'lab t -> int -> int -> 'lab -> unit
(** [add_edge g u v lab].  Self-loops are allowed (and make the graph
    cyclic).  Duplicate [(u, v, lab)] triples are not deduplicated. *)

val mem_edge : _ t -> int -> int -> bool
(** Is there an edge [u -> v] with any label? *)

val succ : 'lab t -> int -> (int * 'lab) list
(** Successors with labels, in insertion order. *)

val succ_vertices : 'lab t -> int -> int list
(** Successor vertices (possibly with repetitions for parallel edges). *)

val iter_succ : 'lab t -> int -> (int -> 'lab -> unit) -> unit
(** [iter_succ g u f] calls [f v lab] for every edge [u -> v] in
    insertion order, without materializing a successor list (the DFS/BFS
    hot paths previously paid one [List.rev] per visit). *)

val iter_succ_vertices : 'lab t -> int -> (int -> unit) -> unit

val iter_edges : 'lab t -> (int -> 'lab -> int -> unit) -> unit
(** [iter_edges g f] calls [f u lab v] for every edge. *)

val fold_edges : 'lab t -> ('acc -> int -> 'lab -> int -> 'acc) -> 'acc -> 'acc

val edges : 'lab t -> (int * 'lab * int) list

val map_labels : ('a -> 'b) -> 'a t -> 'b t

val transpose : 'lab t -> 'lab t

val out_degree : _ t -> int -> int
