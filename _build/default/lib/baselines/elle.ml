type result = { ok : bool; reason : string }

(* ------------------------------------------------------------------ *)
(* Cycle criteria shared by both modes: SER forbids any cycle over
   dep ∪ anti; SI forbids cycles without two adjacent anti edges, checked
   on the {T_d, T_r} product graph (see Polysi). *)

type kind = Kdep | Kanti

let forbidden_cycle ~(level : Checker.level) ~n edges =
  match level with
  | Checker.SER ->
      let g = Digraph.create n in
      List.iter (fun (_k, u, v) -> Digraph.add_edge g u v ()) edges;
      not (Cycle.is_acyclic g)
  | Checker.SI ->
      let g = Digraph.create (2 * n) in
      List.iter
        (fun (k, u, v) ->
          match k with
          | Kdep ->
              Digraph.add_edge g (2 * u) (2 * v) ();
              Digraph.add_edge g ((2 * u) + 1) (2 * v) ()
          | Kanti -> Digraph.add_edge g (2 * u) ((2 * v) + 1) ())
        edges;
      not (Cycle.is_acyclic g)
  | Checker.SSER -> invalid_arg "Elle: SSER unsupported"

(* ------------------------------------------------------------------ *)
(* List-append mode. *)

let check_append ~level (log : Elle_log.t) =
  let committed = Elle_log.committed log in
  (* Dense vertices: 0 = init, then committed transactions. *)
  let vertex : (int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iteri
    (fun i (t : Elle_log.txn) -> Hashtbl.replace vertex t.id (i + 1))
    committed;
  let n = List.length committed + 1 in
  (* Appender of each element, across all transactions. *)
  let appender : (Op.key * int, int * Elle_log.status) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun (t : Elle_log.txn) ->
      List.iter
        (fun op ->
          match op with
          | Elle_log.Append (k, e) ->
              Hashtbl.replace appender (k, e) (t.id, t.status)
          | Elle_log.Read_list _ -> ())
        t.ops)
    log.Elle_log.txns;
  let fail reason = { ok = false; reason } in
  let exception Bad of string in
  try
    (* Screen: aborted / thin-air elements, duplicates within a list. *)
    List.iter
      (fun (t : Elle_log.txn) ->
        List.iter
          (fun op ->
            match op with
            | Elle_log.Read_list (k, l) ->
                let seen = Hashtbl.create 8 in
                List.iter
                  (fun e ->
                    if Hashtbl.mem seen e then
                      raise
                        (Bad
                           (Printf.sprintf "duplicate element %d in read of x%d"
                              e k));
                    Hashtbl.replace seen e ();
                    match Hashtbl.find_opt appender (k, e) with
                    | Some (_, Elle_log.Committed) -> ()
                    | Some (w, Elle_log.Aborted) ->
                        raise
                          (Bad
                             (Printf.sprintf
                                "T%d read element %d of x%d appended by \
                                 aborted T%d"
                                t.id e k w))
                    | None ->
                        raise
                          (Bad
                             (Printf.sprintf
                                "T%d read element %d of x%d appended by nobody"
                                t.id e k)))
                  l
            | Elle_log.Append _ -> ())
          t.ops)
      committed;
    (* Longest observed prefix per key; all reads must be prefix-compatible. *)
    let chains : (Op.key, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let rec is_prefix a b =
      match (a, b) with
      | [], _ -> true
      | x :: a', y :: b' -> x = y && is_prefix a' b'
      | _ :: _, [] -> false
    in
    List.iter
      (fun (t : Elle_log.txn) ->
        List.iter
          (fun op ->
            match op with
            | Elle_log.Read_list (k, l) -> (
                match Hashtbl.find_opt chains k with
                | None -> Hashtbl.replace chains k (ref l)
                | Some longest ->
                    if is_prefix l !longest then ()
                    else if is_prefix !longest l then longest := l
                    else
                      raise
                        (Bad
                           (Printf.sprintf
                              "incompatible read prefixes on x%d (divergent \
                               version orders)"
                              k)))
            | Elle_log.Append _ -> ())
          t.ops)
      committed;
    (* Dependency edges. *)
    let edges = ref [] in
    let add k u v = if u <> v then edges := (k, u, v) :: !edges in
    (* Session order. *)
    let last_in_session = Hashtbl.create 16 in
    List.iter
      (fun (t : Elle_log.txn) ->
        let v = Hashtbl.find vertex t.id in
        (match Hashtbl.find_opt last_in_session t.session with
        | Some prev -> add Kdep prev v
        | None -> add Kdep 0 v);
        Hashtbl.replace last_in_session t.session v)
      committed;
    (* Per-key chain edges: WW along the longest prefix, WR from the last
       element of each read, RW from each read to the next appender. *)
    let chain_arr k =
      match Hashtbl.find_opt chains k with Some l -> Array.of_list !l | None -> [||]
    in
    let appender_vertex k e =
      match Hashtbl.find_opt appender (k, e) with
      | Some (id, Elle_log.Committed) -> Hashtbl.find vertex id
      | _ -> assert false (* screened above *)
    in
    Hashtbl.iter
      (fun k _ ->
        let chain = chain_arr k in
        let len = Array.length chain in
        if len > 0 then begin
          add Kdep 0 (appender_vertex k chain.(0));
          for i = 0 to len - 2 do
            add Kdep (appender_vertex k chain.(i)) (appender_vertex k chain.(i + 1))
          done
        end)
      chains;
    List.iter
      (fun (t : Elle_log.txn) ->
        let rv = Hashtbl.find vertex t.id in
        List.iter
          (fun op ->
            match op with
            | Elle_log.Read_list (k, l) -> (
                let chain = chain_arr k in
                let i = List.length l in
                (match List.rev l with
                | [] -> add Kdep 0 rv
                | last :: _ -> add Kdep (appender_vertex k last) rv);
                if i < Array.length chain then
                  add Kanti rv (appender_vertex k chain.(i)))
            | Elle_log.Append _ -> ())
          t.ops)
      committed;
    if forbidden_cycle ~level ~n !edges then
      fail
        (Printf.sprintf "%s-forbidden dependency cycle inferred from appends"
           (Checker.level_name level))
    else { ok = true; reason = "no anomaly inferred" }
  with Bad reason -> fail reason

(* ------------------------------------------------------------------ *)
(* Read-write register mode: write-write order inferable only through
   read-modify-write transactions. *)

let check_registers ~level (h : History.t) =
  let idx = Index.build h in
  match Int_check.check idx with
  | Error v ->
      { ok = false; reason = Format.asprintf "%a" Int_check.pp_violation v }
  | Ok () ->
      let n = Index.num_vertices idx in
      let edges = ref [] in
      let add k u v = if u <> v then edges := (k, u, v) :: !edges in
      List.iter
        (fun (a, b) -> add Kdep (Index.vertex idx a) (Index.vertex idx b))
        (History.so_pairs h);
      (* WR always known; WW only via RMW; RW from those WW edges. *)
      let readers : (int * Op.key, int list ref) Hashtbl.t =
        Hashtbl.create 1024
      in
      let overwriters : (int * Op.key, int list ref) Hashtbl.t =
        Hashtbl.create 256
      in
      let push tbl key v =
        match Hashtbl.find_opt tbl key with
        | Some r -> r := v :: !r
        | None -> Hashtbl.replace tbl key (ref [ v ])
      in
      Array.iteri
        (fun sv (s : Txn.t) ->
          List.iter
            (fun (k, v) ->
              match Index.writer_of idx k v with
              | Index.Final w when w <> s.id ->
                  let wv = Index.vertex idx w in
                  add Kdep wv sv;
                  push readers (wv, k) sv;
                  if Txn.writes_key s k then begin
                    add Kdep wv sv;
                    push overwriters (wv, k) sv
                  end
              | Index.Final _ | Index.Intermediate _ | Index.Aborted _
              | Index.Nobody ->
                  ())
            (Txn.external_reads s))
        idx.committed;
      Hashtbl.iter
        (fun (wv, k) rs ->
          match Hashtbl.find_opt overwriters (wv, k) with
          | None -> ()
          | Some ws ->
              List.iter
                (fun r ->
                  List.iter (fun w -> if r <> w then add Kanti r w) !ws)
                !rs)
        readers;
      if forbidden_cycle ~level ~n !edges then
        {
          ok = false;
          reason =
            Printf.sprintf "%s-forbidden cycle in traceable dependencies"
              (Checker.level_name level);
        }
      else { ok = true; reason = "no anomaly inferred (blind writes unordered)" }
