(** Monotonic nanosecond clock for spans and latency metrics.

    Wall clocks ([Unix.gettimeofday]) step under NTP adjustment and have
    microsecond granularity; every span and histogram in {!Obs_trace} /
    {!Obs_histogram} uses this CLOCK_MONOTONIC source instead. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin, as an untagged 63-bit
    int (wraps after ~146 years of uptime).  Allocation-free in native
    code: the C stub returns an unboxed int64. *)
