type t = { txns : Txn.t array; num_sessions : int; num_keys : int }

let init_id = 0

let init_txn ~num_keys =
  let ops = List.init num_keys (fun k -> Op.Write (k, 0)) in
  Txn.make ~id:init_id ~session:0 ~start_ts:min_int ~commit_ts:min_int ops

(* [all] must already start with the initial transaction at position 0;
   [of_array] validates positions 1.. like [make] always did.  Slices
   validate independently (the checks are per-transaction), so the
   parallel binary loader hands its decoded array straight here. *)
let of_array ?pool ~num_keys ~num_sessions all =
  ignore
    (Pool.map_slices pool ~n:(Array.length all) (fun lo hi ->
         for i = lo to hi - 1 do
           let t : Txn.t = all.(i) in
           if t.id <> i then
             invalid_arg
               (Printf.sprintf "History.make: txn at position %d has id %d" i
                  t.id);
           if i > 0 && (t.session < 1 || t.session > num_sessions) then
             invalid_arg
               (Printf.sprintf "History.make: T%d has session %d out of [1,%d]"
                  t.id t.session num_sessions);
           Array.iter
             (fun op ->
               let k = Op.key op in
               if k < 0 || k >= num_keys then
                 invalid_arg
                   (Printf.sprintf
                      "History.make: T%d accesses key %d out of [0,%d)" t.id k
                      num_keys))
             t.ops
         done));
  { txns = all; num_sessions; num_keys }

let make ~num_keys ~num_sessions txns =
  of_array ~num_keys ~num_sessions
    (Array.of_list (init_txn ~num_keys :: txns))

let txn h id = h.txns.(id)
let num_txns h = Array.length h.txns

let committed h =
  Array.to_list h.txns |> List.filter Txn.is_committed

let committed_count h =
  Array.fold_left (fun n t -> if Txn.is_committed t then n + 1 else n) 0 h.txns

let session_chain h s =
  Array.to_list h.txns
  |> List.filter (fun (t : Txn.t) -> t.session = s && Txn.is_committed t)
  |> List.map (fun (t : Txn.t) -> t.id)

let so_pairs h =
  let acc = ref [] in
  for s = 1 to h.num_sessions do
    match session_chain h s with
    | [] -> ()
    | first :: _ as chain ->
        acc := (init_id, first) :: !acc;
        let rec link = function
          | a :: (b :: _ as rest) ->
              acc := (a, b) :: !acc;
              link rest
          | [ _ ] | [] -> ()
        in
        link chain
  done;
  List.rev !acc

let iter_so_pairs h f =
  (* Single pass in id order (id order refines session order): remember
     the last committed txn per session, emit (prev, next) as we go.
     Same pair multiset as [so_pairs], no list materialization. *)
  let last = Array.make (h.num_sessions + 1) (-1) in
  Array.iter
    (fun (t : Txn.t) ->
      if Txn.is_committed t && t.id <> init_id then begin
        let s = t.session in
        f (if last.(s) < 0 then init_id else last.(s)) t.id;
        last.(s) <- t.id
      end)
    h.txns

let rt_before h t1 t2 =
  let a = h.txns.(t1) and b = h.txns.(t2) in
  a.commit_ts < b.start_ts

(* Key stripes screen independently (a duplicate pair involves one key);
   each reports its first duplicate's (txn position, op index) and the
   global minimum reproduces the sequential first-in-scan-order error. *)
let uv_stripes = 8

let unique_values ?pool h =
  let results =
    Pool.map_slices pool ~n:uv_stripes (fun lo hi ->
        let best = ref None in
        for stripe = lo to hi - 1 do
          let seen = Hashtbl.create 1024 in
          let exception Dup in
          try
            Array.iteri
              (fun ti (t : Txn.t) ->
                Array.iteri
                  (fun oi op ->
                    match op with
                    | Op.Write (k, v) when k mod uv_stripes = stripe -> (
                        match Hashtbl.find_opt seen (k, v) with
                        | Some other when other <> t.id ->
                            let msg =
                              Printf.sprintf
                                "writes of value %d to key %d by both T%d and \
                                 T%d"
                                v k other t.id
                            in
                            (match !best with
                            | Some (bt, bo, _)
                              when bt < ti || (bt = ti && bo < oi) ->
                                ()
                            | Some _ | None -> best := Some (ti, oi, msg));
                            raise Dup
                        | Some _ | None -> Hashtbl.replace seen (k, v) t.id)
                    | Op.Write _ | Op.Read _ -> ())
                  t.ops)
              h.txns
          with Dup -> ()
        done;
        !best)
  in
  let best =
    Array.fold_left
      (fun acc hit ->
        match (acc, hit) with
        | None, hit -> hit
        | Some _, None -> acc
        | Some (at, ao, _), Some (bt, bo, _) ->
            if bt < at || (bt = at && bo < ao) then hit else acc)
      None results
  in
  match best with None -> Ok () | Some (_, _, msg) -> Error msg

let all_mini h =
  let exception Bad of int in
  try
    Array.iter
      (fun (t : Txn.t) ->
        if t.id <> init_id && not (Mini.is_mini t) then raise (Bad t.id))
      h.txns;
    Ok ()
  with Bad id -> Error (Printf.sprintf "T%d is not a mini-transaction" id)

let validate h =
  match unique_values h with Error _ as e -> e | Ok () -> all_mini h

let stats h =
  let ops =
    Array.fold_left (fun n (t : Txn.t) -> n + Array.length t.ops) 0 h.txns
  in
  Printf.sprintf "%d txns (%d committed) / %d sessions / %d keys / %d ops"
    (num_txns h - 1)
    (committed_count h - 1)
    h.num_sessions h.num_keys ops

let pp ppf h =
  Format.fprintf ppf "@[<v>history: %s" (stats h);
  Array.iter
    (fun t ->
      if (t : Txn.t).id <> init_id then Format.fprintf ppf "@,%a" Txn.pp t)
    h.txns;
  Format.fprintf ppf "@]"
