lib/sat/solver.ml: Array List Lit Stdlib
