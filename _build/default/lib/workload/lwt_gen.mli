(** Synthetic lightweight-transaction history generator (paper
    Section V-A2): for databases supporting LWTs, workload parameters
    cannot predictably control history concurrency, so SSER checkers are
    benchmarked on parametric synthetic histories instead.

    The generator lays out a valid linearization (one version chain per
    object) and then chooses start/finish intervals around each event's
    linearization point.  Sessions designated "concurrent" receive wide,
    heavily overlapping intervals; the rest receive tight ones — the
    [concurrent_pct] knob of Figure 9a.

    Violations can be injected for testing and for replaying the Cassandra
    2.0.1 ABORTEDREAD bug (Table II):
    - [Rt_violation]: two chain neighbours are reordered in real time
      (Figure 4b);
    - [Phantom_write]: a CAS reported as failed to its client was actually
      applied — the visible chain has a gap;
    - [Split_brain]: two CAS operations both consumed the same value. *)

type injection = No_injection | Rt_violation | Phantom_write | Split_brain

type params = {
  num_sessions : int;
  txns_per_session : int;
  num_keys : int;
  concurrent_pct : float;  (** fraction of sessions issuing concurrently *)
  read_pct : float;
      (** fraction of plain reads (failed CAS) among the events; reads of
          the same value commute, which is what makes the Porcupine
          baseline's search branch under concurrency *)
  seed : int;
  inject : injection;
}

val default : params
(** 16 sessions × 250 txns on 4 keys, 50% concurrent, no reads, no
    injection. *)

val generate : params -> Lwt.t
