(** Anomaly-targeted MT workload shapes.

    The paper's future work proposes guiding the generator to cover the
    Figure 5 anomalies.  These templates bias the randomized workload
    toward a specific anomaly family while remaining pure MT workloads:

    - {!contended}: read-modify-write chains over a shared key space —
      surfaces LOSTUPDATE / ABORTEDREAD-style bugs fastest;
    - {!observers}: writer sessions own disjoint keys (so no write-write
      contention is possible) while reader sessions sample key pairs —
      only visibility anomalies (LONGFORK, CAUSALITYVIOLATION,
      NONMONOTONICREAD, FRACTUREDREAD) can appear;
    - {!write_skew}: every transaction reads a key pair and writes one of
      the two — the Figure 5n / Figure 12b dangerous-structure shape. *)

val contended :
  ?sessions:int -> keys:int -> txns:int -> seed:int -> unit -> Spec.t

val observers :
  ?sessions:int -> keys:int -> txns:int -> seed:int -> unit -> Spec.t
(** Requires [keys >= 2] and at least as many keys as writer sessions
    (half of [sessions], default 8). *)

val write_skew :
  ?sessions:int -> keys:int -> txns:int -> seed:int -> unit -> Spec.t
(** Requires an even [keys >= 2]; transactions target pairs
    [(2i, 2i+1)]. *)
