type 'lab t = {
  adj : (int * 'lab) list array;  (** reversed insertion order *)
  mutable edge_count : int;
}

let create n = { adj = Array.make n []; edge_count = 0 }

let n g = Array.length g.adj
let num_edges g = g.edge_count

let add_edge g u v lab =
  g.adj.(u) <- (v, lab) :: g.adj.(u);
  g.edge_count <- g.edge_count + 1

let mem_edge g u v = List.exists (fun (w, _) -> w = v) g.adj.(u)

let succ g u = List.rev g.adj.(u)

let succ_vertices g u = List.rev_map fst g.adj.(u)

let iter_edges g f =
  Array.iteri (fun u l -> List.iter (fun (v, lab) -> f u lab v) (List.rev l)) g.adj

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun u lab v -> acc := f !acc u lab v);
  !acc

let edges g = fold_edges g (fun acc u lab v -> (u, lab, v) :: acc) [] |> List.rev

let map_labels f g =
  let g' = create (n g) in
  iter_edges g (fun u lab v -> add_edge g' u v (f lab));
  g'

let transpose g =
  let g' = create (n g) in
  iter_edges g (fun u lab v -> add_edge g' v u lab);
  g'

let out_degree g u = List.length g.adj.(u)
