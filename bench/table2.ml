(* Table II + Figures 12/18: rediscovering the six production isolation
   bugs.  Each row replays one bug class through the engine's
   fault-injection mode with a workload shaped to surface that anomaly,
   then reports the counterexample position and the generation /
   verification times, as in the paper's Table II. *)

(* The anomaly-targeted workload templates live in the public API
   (Targeted): RMW contention for LOSTUPDATE/ABORTEDREAD, disjoint writers
   + observers for visibility anomalies, read-pair-write-one for
   WRITESKEW. *)
let contended_spec ~keys ~txns ~seed = Targeted.contended ~keys ~txns ~seed ()
let observer_spec ~keys ~txns ~seed = Targeted.observers ~keys ~txns ~seed ()
let write_skew_spec ~keys ~txns ~seed = Targeted.write_skew ~keys ~txns ~seed ()

type bug = {
  b_level : Checker.level;
  b_anomaly : string;
  b_database : string;
  b_db_level : Isolation.level;
  b_fault : Fault.mode;
  b_spec : seed:int -> Spec.t;
}

let bugs =
  [
    {
      b_level = Checker.SI;
      b_anomaly = "LostUpdate";
      b_database = "MariaDB-Galera-10.7.3 (sim)";
      b_db_level = Isolation.Snapshot;
      b_fault = Fault.Lost_update 0.05;
      b_spec = (fun ~seed -> contended_spec ~keys:20 ~txns:(Bench_util.scale 800) ~seed);
    };
    {
      b_level = Checker.SI;
      b_anomaly = "AbortedRead";
      b_database = "MongoDB-4.2.6 (sim)";
      b_db_level = Isolation.Snapshot;
      b_fault = Fault.Aborted_read 0.1;
      b_spec = (fun ~seed -> contended_spec ~keys:15 ~txns:(Bench_util.scale 800) ~seed);
    };
    {
      b_level = Checker.SI;
      b_anomaly = "CausalityViolation";
      b_database = "Dgraph-1.1.1 (sim)";
      b_db_level = Isolation.Snapshot;
      b_fault = Fault.Causality_violation 0.05;
      b_spec = (fun ~seed -> observer_spec ~keys:8 ~txns:(Bench_util.scale 1200) ~seed);
    };
    {
      b_level = Checker.SER;
      b_anomaly = "WriteSkew";
      b_database = "PostgreSQL-12.3 (sim)";
      b_db_level = Isolation.Serializable;
      b_fault = Fault.Write_skew 0.3;
      b_spec = (fun ~seed -> write_skew_spec ~keys:8 ~txns:(Bench_util.scale 1000) ~seed);
    };
    {
      b_level = Checker.SER;
      b_anomaly = "LongFork";
      b_database = "PostgreSQL-11.8 (sim)";
      b_db_level = Isolation.Serializable;
      b_fault = Fault.Long_fork 0.2;
      b_spec = (fun ~seed -> observer_spec ~keys:8 ~txns:(Bench_util.scale 1200) ~seed);
    };
  ]

let hunt_bug b =
  let db = { Db.level = b.b_db_level; fault = b.b_fault; num_keys = 0; seed = 97 } in
  (* num_keys is taken from the spec at run time. *)
  let make_spec ~seed =
    let s = b.b_spec ~seed in
    s
  in
  let db = { db with Db.num_keys = (make_spec ~seed:1).Spec.num_keys } in
  let max_trials = if !Bench_util.smoke then 4 else 20 in
  (* The hunt itself fans trials out over the bench parallelism degree;
     verdict and CE position are jobs-invariant. *)
  Endtoend.hunt ~jobs:(Bench_util.jobs ()) ~db ~make_spec ~level:b.b_level
    ~max_trials ()

(* The Cassandra LWT bug goes through the synthetic LWT generator and
   VL-LWT (linearizability = SSER for LWTs). *)
let hunt_cassandra () =
  let params =
    { Lwt_gen.num_sessions = 10; txns_per_session = Bench_util.scale 80;
      num_keys = 4;
      concurrent_pct = 0.3; read_pct = 0.1; seed = 11;
      inject = Lwt_gen.Phantom_write }
  in
  let h, gen_s = Stats.time_it (fun () -> Lwt_gen.generate params) in
  let res, verify_s = Stats.time_it (fun () -> Lwt_checker.check h) in
  (h, res, gen_s, verify_s)

let run ?(show_counterexamples = true) () =
  Bench_util.section "Table II: rediscovered isolation bugs";
  let header =
    [ "level"; "anomaly"; "database"; "detected as"; "CE pos"; "gen (s)";
      "verify (s)" ]
  in
  let ces = ref [] in
  let rows =
    List.map
      (fun b ->
        let h = hunt_bug b in
        let found =
          match h.Endtoend.violation with
          | Some text ->
              ces := (b.b_database, text) :: !ces;
              Option.value h.Endtoend.anomaly ~default:"violation"
          | None -> "NOT FOUND"
        in
        [
          Checker.level_name b.b_level;
          b.b_anomaly;
          b.b_database;
          found;
          (match h.Endtoend.ce_position with
          | Some p -> string_of_int p
          | None -> "-");
          Printf.sprintf "%.2f" h.Endtoend.hunt_gen_s;
          Printf.sprintf "%.4f" h.Endtoend.hunt_verify_s;
        ])
      bugs
  in
  let _, cass_res, cass_gen, cass_verify = hunt_cassandra () in
  let cass_row =
    [
      "SSER";
      "AbortedRead";
      "Cassandra-2.0.1 (sim, LWT)";
      (match cass_res with Ok () -> "NOT FOUND" | Error _ -> "AbortedRead");
      "-";
      Printf.sprintf "%.2f" cass_gen;
      Printf.sprintf "%.4f" cass_verify;
    ]
  in
  (match cass_res with
  | Error r ->
      ces :=
        ("Cassandra-2.0.1 (sim, LWT)",
         Format.asprintf "SSER/LIN violation: %a@." Lwt_checker.pp_reason r)
        :: !ces
  | Ok () -> ());
  Bench_util.print_table ~header (rows @ [ cass_row ]);
  if show_counterexamples then begin
    Bench_util.section "Figures 12/18: counterexamples for the rediscovered bugs";
    List.iter
      (fun (dbname, text) -> Printf.printf "\n[%s]\n%s" dbname text)
      (List.rev !ces)
  end
