(* Tests for mtc.common: Rng, Distribution, Stats. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different seeds diverge" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    checkb "in [0,17)" true (x >= 0 && x < 17)
  done

let test_rng_int_covers () =
  let r = Rng.create 9 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 5) <- true
  done;
  Array.iteri (fun i s -> checkb (Printf.sprintf "hit %d" i) true s) seen

let test_rng_int_in () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    checkb "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.float r 3.0 in
    checkb "in [0,3)" true (x >= 0.0 && x < 3.0)
  done

let test_rng_chance_extremes () =
  let r = Rng.create 17 in
  for _ = 1 to 100 do
    checkb "p=0 never" false (Rng.chance r 0.0)
  done;
  for _ = 1 to 100 do
    checkb "p=1 always" true (Rng.chance r 1.0)
  done

let test_rng_chance_rate () =
  let r = Rng.create 19 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.chance r 0.3 then incr hits
  done;
  checkb "about 30%" true (!hits > 2700 && !hits < 3300)

let test_rng_shuffle_permutation () =
  let r = Rng.create 23 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_rng_split_independent () =
  let a = Rng.create 31 in
  let b = Rng.split a in
  checkb "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_pick_singleton () =
  let r = Rng.create 37 in
  checki "only element" 42 (Rng.pick r [| 42 |]);
  checki "only list element" 42 (Rng.pick_list r [ 42 ])

let test_rng_pick_empty () =
  let r = Rng.create 37 in
  Alcotest.check_raises "empty array"
    (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let test_rng_exponential_positive () =
  let r = Rng.create 41 in
  for _ = 1 to 1000 do
    checkb "positive" true (Rng.exponential r 2.0 >= 0.0)
  done

let test_rng_never_negative () =
  (* Regression: Int64 truncation used to produce negative values. *)
  let r = Rng.create 0 in
  for _ = 1 to 100_000 do
    checkb "nonneg" true (Rng.int r max_int >= 0)
  done

(* --- distributions --- *)

let histogram kind n draws =
  let d = Distribution.make kind ~n in
  let r = Rng.create 99 in
  let h = Array.make n 0 in
  for _ = 1 to draws do
    let k = Distribution.sample d r in
    h.(k) <- h.(k) + 1
  done;
  h

let test_dist_uniform_flat () =
  let h = histogram Distribution.Uniform 10 100_000 in
  Array.iter
    (fun c -> checkb "roughly 10k each" true (c > 8_000 && c < 12_000))
    h

let test_dist_in_range () =
  List.iter
    (fun kind ->
      let d = Distribution.make kind ~n:7 in
      let r = Rng.create 3 in
      for _ = 1 to 5_000 do
        let k = Distribution.sample d r in
        checkb (Distribution.kind_name kind) true (k >= 0 && k < 7)
      done)
    Distribution.all_kinds

let test_dist_zipf_skew () =
  let h = histogram (Distribution.Zipfian 0.99) 100 100_000 in
  checkb "key 0 hottest" true (h.(0) > h.(50));
  checkb "head heavy" true (h.(0) + h.(1) + h.(2) > 100_000 / 5)

let test_dist_hotspot () =
  (* 20% of keys get 80% of accesses. *)
  let h = histogram (Distribution.Hotspot (0.2, 0.8)) 10 100_000 in
  let hot = h.(0) + h.(1) in
  checkb "hot keys get ~80%" true (hot > 70_000 && hot < 90_000)

let test_dist_exponential_skew () =
  let h = histogram (Distribution.Exponential 1.0) 10 100_000 in
  checkb "low keys hotter" true (h.(0) > h.(9))

let test_dist_single_key () =
  let d = Distribution.make (Distribution.Zipfian 0.99) ~n:1 in
  let r = Rng.create 5 in
  for _ = 1 to 100 do
    checki "only key 0" 0 (Distribution.sample d r)
  done

let test_dist_names_roundtrip () =
  List.iter
    (fun kind ->
      let name = Distribution.kind_name kind in
      match Distribution.kind_of_string name with
      | Some k ->
          check Alcotest.string "name roundtrip" name (Distribution.kind_name k)
      | None -> Alcotest.fail ("no parse for " ^ name))
    Distribution.all_kinds

(* --- stats --- *)

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stats_median_odd () =
  check (Alcotest.float 1e-9) "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |])

let test_stats_median_even () =
  check (Alcotest.float 1e-9) "median even" 2.5
    (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "sd of constant" 0.0
    (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check (Alcotest.float 1e-6) "sd" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_minmax () =
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min [| 3.0; 1.0; 2.0 |]);
  check (Alcotest.float 1e-9) "max" 3.0 (Stats.max [| 3.0; 1.0; 2.0 |])

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  checki "n" 4 s.Stats.n;
  check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean

let test_time_repeat () =
  let xs = Stats.time_repeat ~warmup:0 ~repeat:3 (fun () -> ()) in
  checki "three samples" 3 (Array.length xs);
  Array.iter (fun x -> checkb "nonneg time" true (x >= 0.0)) xs

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int covers range", `Quick, test_rng_int_covers);
    ("rng int_in bounds", `Quick, test_rng_int_in);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng chance extremes", `Quick, test_rng_chance_extremes);
    ("rng chance rate", `Quick, test_rng_chance_rate);
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng pick singleton", `Quick, test_rng_pick_singleton);
    ("rng pick empty raises", `Quick, test_rng_pick_empty);
    ("rng exponential positive", `Quick, test_rng_exponential_positive);
    ("rng never negative (regression)", `Quick, test_rng_never_negative);
    ("distribution uniform flat", `Quick, test_dist_uniform_flat);
    ("distribution samples in range", `Quick, test_dist_in_range);
    ("distribution zipfian skewed", `Quick, test_dist_zipf_skew);
    ("distribution hotspot 80/20", `Quick, test_dist_hotspot);
    ("distribution exponential skewed", `Quick, test_dist_exponential_skew);
    ("distribution single key", `Quick, test_dist_single_key);
    ("distribution names roundtrip", `Quick, test_dist_names_roundtrip);
    ("stats mean", `Quick, test_stats_mean);
    ("stats median odd", `Quick, test_stats_median_odd);
    ("stats median even", `Quick, test_stats_median_even);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats min max", `Quick, test_stats_minmax);
    ("stats summarize", `Quick, test_stats_summary);
    ("stats time_repeat", `Quick, test_time_repeat);
  ]
