(** A dbcop-style serializability checker (Biswas & Enea, OOPSLA'19): an
    enumerative search over session frontiers instead of solvers or the
    MTC dependency analysis — the third checker family the paper's related
    work discusses ("less efficient than Cobra and PolySI").

    A state is the vector of per-session prefix lengths; a session's next
    committed transaction can be scheduled when each of its external reads
    matches the current store.  On {e mini-transaction histories} the
    applied *set* determines the store (every write is an RMW extending a
    unique version chain), so memoizing frontier vectors is sound and the
    search is polynomial for a fixed number of sessions — the
    fixed-parameter tractability result dbcop builds on.

    Inputs must be MT histories with unique values; anything else is
    rejected as [invalid]. *)

type result = {
  serializable : bool;
  states : int;  (** memoized frontier states explored *)
  gave_up : bool;  (** state budget exhausted (reported non-serializable) *)
  invalid : string option;  (** input rejected before searching *)
}

val check : ?max_states:int -> History.t -> result
(** [max_states] defaults to 2 million. *)
