(** Serializers: Chrome trace-event JSON for spans, Prometheus text
    exposition format 0.0.4 for metric registries. *)

val chrome_json : Obs_trace.event list -> string
(** Trace-event JSON loadable by Perfetto ([ui.perfetto.dev]) and
    [chrome://tracing]: one complete ("ph":"X") event per span, [ts] and
    [dur] in microseconds, [pid] 1, [tid] = recording domain id. *)

val prometheus : Obs_metrics.registry -> string
(** Text exposition of every instrument in the registry, registration
    order, each preceded by [# HELP] (when non-empty) and [# TYPE]
    lines.  Histograms emit cumulative [_bucket{le="..."}] series over
    the log2 bucket upper edges (buckets past the observed max are
    collapsed into [+Inf]), then [_sum] and [_count]. *)
