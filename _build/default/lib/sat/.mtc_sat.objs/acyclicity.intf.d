lib/sat/acyclicity.mli: Lit Solver
