test/test_graph.ml: Alcotest Array Cycle Digraph List Pearce_kelly Reach Rng Scc Topo
