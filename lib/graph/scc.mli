(** Strongly connected components (Tarjan, iterative, over frozen CSR
    snapshots — flat int-array traversal state, no per-visit
    allocation). *)

val components : _ Digraph.t -> int list list
(** SCCs in reverse topological order of the condensation. *)

val component_ids : _ Digraph.t -> int array * int
(** [component_ids g = (comp, k)]: [comp.(v)] is the component index of [v]
    (indices [0 .. k-1], numbered in reverse topological order). *)

val component_ids_csr : _ Csr.t -> int array * int
(** {!component_ids} over an already-frozen graph (no conversion). *)

val nontrivial : _ Digraph.t -> int list list
(** Components that contain a cycle: size >= 2, or a single vertex with a
    self-loop. *)
