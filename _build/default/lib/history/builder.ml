let r k v = Op.Read (k, v)
let w k v = Op.Write (k, v)

type spec = {
  status : Txn.status;
  start : int option;
  commit : int option;
  session : int;
  ops : Op.t list;
}

let txn ?(status = Txn.Committed) ?start ?commit ~session ops =
  { status; start; commit; session; ops }

let history ~keys ~sessions ?(rt = `Overlap) specs =
  let make_txn i spec =
    let id = i + 1 in
    let default_start, default_commit =
      match rt with
      | `Overlap -> (0, 1)
      | `Sequential -> (2 * id, (2 * id) + 1)
    in
    Txn.make ~id ~session:spec.session ~status:spec.status
      ~start_ts:(Option.value spec.start ~default:default_start)
      ~commit_ts:(Option.value spec.commit ~default:default_commit)
      spec.ops
  in
  History.make ~num_keys:keys ~num_sessions:sessions
    (List.mapi make_txn specs)
