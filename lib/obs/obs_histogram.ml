(* The log2 histogram that used to live (twice) in lib/service/metrics.ml,
   generalized: an internal mutex and a snapshot type so concurrent
   feeders and scrapers never observe a torn (count, sum) pair. *)

let num_buckets = 63

type t = {
  mu : Mutex.t;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable max : int;
}

let create () =
  {
    mu = Mutex.create ();
    buckets = Array.make num_buckets 0;
    count = 0;
    sum = 0.0;
    max = 0;
  }

let bucket_of v =
  let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
  if v <= 0 then 0 else go 0 v

let upper_edge i = (1 lsl (i + 1)) - 1

let observe t v =
  let b = bucket_of v in
  Mutex.lock t.mu;
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. float_of_int v;
  if v > t.max then t.max <- v;
  Mutex.unlock t.mu

type snapshot = {
  s_count : int;
  s_sum : float;
  s_max : int;
  s_buckets : int array;
}

let snapshot t =
  Mutex.lock t.mu;
  let s =
    {
      s_count = t.count;
      s_sum = t.sum;
      s_max = t.max;
      s_buckets = Array.copy t.buckets;
    }
  in
  Mutex.unlock t.mu;
  s

let mean_of s = if s.s_count = 0 then 0.0 else s.s_sum /. float_of_int s.s_count

(* Upper edge of the bucket holding the p-th percentile sample — an
   approximation within a factor of 2. *)
let percentile_of s p =
  if s.s_count = 0 then 0
  else begin
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int s.s_count))
      |> Stdlib.max 1
    in
    let acc = ref 0 and found = ref (-1) in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if !acc >= rank then begin
             found := i;
             raise Exit
           end)
         s.s_buckets
     with Exit -> ());
    if !found < 0 then s.s_max else Stdlib.min s.s_max (upper_edge !found)
  end

let count t = (snapshot t).s_count
let mean t = mean_of (snapshot t)
let percentile t p = percentile_of (snapshot t) p
