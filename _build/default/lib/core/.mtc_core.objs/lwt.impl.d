lib/core/lwt.ml: Array Format Hashtbl List Op Printf
