(* Integration tests for mtc.runner: Intern, Scheduler, Endtoend —
   the full generate → execute → verify pipeline of paper Figure 2. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_intern () =
  let t = Intern.create () in
  Alcotest.check (Alcotest.list Alcotest.int) "empty" []
    (Intern.get t Intern.empty_id);
  let id = Intern.put t [ 1; 2; 3 ] in
  checkb "fresh id" true (id <> Intern.empty_id);
  Alcotest.check (Alcotest.list Alcotest.int) "stored" [ 1; 2; 3 ]
    (Intern.get t id)

let run_mt ?(fault = Fault.No_fault) ?(level = Isolation.Snapshot)
    ?(num_txns = 300) ?(num_keys = 10) ?(seed = 1) () =
  let spec = Mt_gen.generate { Mt_gen.default with num_txns; num_keys; seed } in
  let db = { Db.level; fault; num_keys; seed } in
  Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ()

let test_scheduler_commits_everything () =
  let r = run_mt () in
  checki "all txns commit eventually" 300 r.Scheduler.committed;
  checki "no give-ups" 0 r.Scheduler.gave_up

let test_scheduler_history_well_formed () =
  let r = run_mt () in
  checkb "valid MT history" true
    (History.validate r.Scheduler.history = Ok ())

let test_scheduler_timestamps_sane () =
  let r = run_mt () in
  Array.iter
    (fun (t : Txn.t) ->
      if t.Txn.id <> History.init_id then
        checkb "start <= commit" true (t.Txn.start_ts <= t.Txn.commit_ts))
    r.Scheduler.history.History.txns

let test_scheduler_attempt_accounting () =
  let r = run_mt ~num_keys:4 ~num_txns:500 () in
  let aborted_in_history =
    Array.fold_left
      (fun n (t : Txn.t) -> if t.Txn.status = Txn.Aborted then n + 1 else n)
      0 r.Scheduler.history.History.txns
  in
  checki "attempts = committed + aborted" r.Scheduler.attempts
    (r.Scheduler.committed + aborted_in_history);
  checkb "abort rate in [0,1]" true
    (Scheduler.abort_rate r >= 0.0 && Scheduler.abort_rate r <= 1.0)

let test_scheduler_deterministic () =
  let a = run_mt ~seed:9 () and b = run_mt ~seed:9 () in
  checkb "same histories" true
    (Codec.to_string a.Scheduler.history = Codec.to_string b.Scheduler.history)

let test_scheduler_sser_progress () =
  (* Heavy contention under 2PL must still terminate (wound-wait). *)
  let r =
    run_mt ~level:Isolation.Strict_serializable ~num_keys:2 ~num_txns:300 ()
  in
  checkb "most txns commit" true (r.Scheduler.committed > 250)

let test_scheduler_elle_log_present () =
  let spec = Append_gen.generate { Append_gen.default with num_txns = 100 } in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 10; seed = 3 }
  in
  let r = Scheduler.run ~db ~spec () in
  match r.Scheduler.elle with
  | Some log ->
      checki "one log entry per attempt" r.Scheduler.attempts
        (List.length log.Elle_log.txns)
  | None -> Alcotest.fail "append workload must produce an elle log"

let test_scheduler_elle_reads_are_lists () =
  let spec = Append_gen.generate { Append_gen.default with num_txns = 150; seed = 4 } in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 10; seed = 4 }
  in
  let r = Scheduler.run ~db ~spec () in
  let log = Option.get r.Scheduler.elle in
  (* every element of every committed read-list was appended by somebody *)
  let appended = Hashtbl.create 64 in
  List.iter
    (fun (t : Elle_log.txn) ->
      List.iter
        (function
          | Elle_log.Append (k, e) -> Hashtbl.replace appended (k, e) ()
          | Elle_log.Read_list _ -> ())
        t.Elle_log.ops)
    log.Elle_log.txns;
  List.iter
    (fun (t : Elle_log.txn) ->
      List.iter
        (function
          | Elle_log.Read_list (k, l) ->
              List.iter
                (fun e -> checkb "element has appender" true (Hashtbl.mem appended (k, e)))
                l
          | Elle_log.Append _ -> ())
        t.Elle_log.ops)
    (Elle_log.committed log)

let test_scheduler_rejects_append_under_2pl () =
  let spec = Append_gen.generate { Append_gen.default with num_txns = 10 } in
  let db =
    { Db.level = Isolation.Strict_serializable; fault = Fault.No_fault;
      num_keys = 10; seed = 1 }
  in
  checkb "raises" true
    (try
       ignore (Scheduler.run ~db ~spec ());
       false
     with Invalid_argument _ -> true)

(* --- Endtoend --- *)

let test_e2e_measure_clean () =
  let spec = Mt_gen.generate { Mt_gen.default with num_txns = 200; num_keys = 10 } in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 10; seed = 2 }
  in
  let m =
    Endtoend.measure ~db ~spec ~verify:(Endtoend.mtc_verify Checker.SI) ()
  in
  checkb "passes" true (m.Endtoend.verdict = Endtoend.V_pass);
  checkb "times nonneg" true (m.Endtoend.gen_s >= 0.0 && m.Endtoend.verify_s >= 0.0);
  checki "committed" 200 m.Endtoend.committed

let test_e2e_measure_faulty () =
  let spec = Mt_gen.generate { Mt_gen.default with num_txns = 500; num_keys = 5 } in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.Lost_update 0.5; num_keys = 5; seed = 2 }
  in
  let m =
    Endtoend.measure ~db ~spec ~verify:(Endtoend.mtc_verify Checker.SI) ()
  in
  checkb "fails" true (match m.Endtoend.verdict with Endtoend.V_fail _ -> true | _ -> false)

let test_e2e_hunt_finds_bug () =
  let make_spec ~seed =
    Mt_gen.generate { Mt_gen.default with num_txns = 400; num_keys = 5; seed }
  in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.Lost_update 0.3; num_keys = 5; seed = 1 }
  in
  let h = Endtoend.hunt ~db ~make_spec ~level:Checker.SI ~max_trials:10 () in
  checkb "found" true (h.Endtoend.violation <> None);
  checkb "position recorded" true (h.Endtoend.ce_position <> None)

let test_e2e_hunt_clean_gives_up () =
  let make_spec ~seed =
    Mt_gen.generate { Mt_gen.default with num_txns = 100; num_keys = 10; seed }
  in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.No_fault; num_keys = 10; seed = 1 }
  in
  let h = Endtoend.hunt ~db ~make_spec ~level:Checker.SI ~max_trials:3 () in
  checkb "nothing found" true (h.Endtoend.violation = None);
  checki "all trials used" 3 h.Endtoend.trials

let test_e2e_gt_workload_cobra () =
  (* GT histories from a serializable engine pass Cobra. *)
  let spec =
    Gt_gen.generate { Gt_gen.default with num_txns = 150; ops_per_txn = 6; num_keys = 20 }
  in
  let db =
    { Db.level = Isolation.Serializable; fault = Fault.No_fault; num_keys = 20; seed = 5 }
  in
  let r = Scheduler.run ~db ~spec () in
  checkb "cobra accepts" true (Cobra.check r.Scheduler.history).Cobra.serializable

let suite =
  [
    ("intern basics", `Quick, test_intern);
    ("scheduler: commits everything", `Quick, test_scheduler_commits_everything);
    ("scheduler: history well-formed MT", `Quick, test_scheduler_history_well_formed);
    ("scheduler: timestamps sane", `Quick, test_scheduler_timestamps_sane);
    ("scheduler: attempt accounting", `Quick, test_scheduler_attempt_accounting);
    ("scheduler: deterministic", `Quick, test_scheduler_deterministic);
    ("scheduler: 2PL progress under contention", `Quick, test_scheduler_sser_progress);
    ("scheduler: elle log present", `Quick, test_scheduler_elle_log_present);
    ("scheduler: elle reads are real lists", `Quick, test_scheduler_elle_reads_are_lists);
    ("scheduler: append under 2PL rejected", `Quick, test_scheduler_rejects_append_under_2pl);
    ("endtoend: clean measurement", `Quick, test_e2e_measure_clean);
    ("endtoend: faulty measurement", `Quick, test_e2e_measure_faulty);
    ("endtoend: hunt finds injected bug", `Quick, test_e2e_hunt_finds_bug);
    ("endtoend: hunt on clean engine", `Quick, test_e2e_hunt_clean_gives_up);
    ("endtoend: GT + Cobra integration", `Quick, test_e2e_gt_workload_cobra);
  ]
