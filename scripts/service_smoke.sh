#!/usr/bin/env bash
# End-to-end smoke of the checking service and the documented exit
# codes (0 pass, 1 violation, 2 load/usage error): generate a clean and
# a faulty 200-transaction history, then require `mtc feed` over a live
# `mtc serve` Unix socket to agree with `mtc check` on both — verdicts
# and exit codes alike — and the server to shut down gracefully on
# SIGTERM.  Wired into `dune build @check` from the root dune file.
set -u

MTC="$1"
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "service-smoke: FAIL: $*" >&2; exit 1; }

# -- fixtures: a clean SER engine and an SI engine injecting lost updates
"$MTC" run --level ser --txns 200 --keys 10 --seed 11 -o "$TMP/good.hist" \
  >/dev/null || fail "clean run must pass (exit 0)"
"$MTC" run --level si --txns 200 --keys 10 --seed 11 \
  --fault lost-update --fault-p 0.2 -o "$TMP/bad.hist" >/dev/null
[ $? -eq 1 ] || fail "faulty run must report a violation (exit 1)"
echo "this is not a history" > "$TMP/junk.hist"

# -- exit codes of the batch checker
"$MTC" check "$TMP/good.hist" --level ser >/dev/null
[ $? -eq 0 ] || fail "check(good) must exit 0"
"$MTC" check "$TMP/bad.hist" --level si >/dev/null
[ $? -eq 1 ] || fail "check(bad) must exit 1"
"$MTC" check "$TMP/junk.hist" >/dev/null 2>&1
[ $? -eq 2 ] || fail "check(junk) must exit 2"

# -- the service must agree, verdicts and exit codes alike
SOCK="$TMP/mtc.sock"
"$MTC" serve --listen "unix:$SOCK" > "$TMP/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || fail "server did not come up (see $TMP/serve.log)"

"$MTC" feed "$TMP/good.hist" -a "unix:$SOCK" --level ser >/dev/null
[ $? -eq 0 ] || fail "feed(good) must exit 0"
"$MTC" feed "$TMP/bad.hist" -a "unix:$SOCK" --level si > "$TMP/feed_bad.out"
[ $? -eq 1 ] || fail "feed(bad) must exit 1"
grep -q "violation" "$TMP/feed_bad.out" \
  || fail "feed(bad) must print the counterexample"
"$MTC" feed "$TMP/junk.hist" -a "unix:$SOCK" >/dev/null 2>&1
[ $? -eq 2 ] || fail "feed(junk) must exit 2"

# -- the stats subcommand renders the same counters the server tracks
"$MTC" stats -a "unix:$SOCK" > "$TMP/stats.out" \
  || fail "stats must reach a live server"
grep -Eq '^txns_fed +[1-9]' "$TMP/stats.out" \
  || fail "stats table must include the fed txns (see $TMP/stats.out)"
grep -Eq '^violations +[1-9]' "$TMP/stats.out" \
  || fail "stats table must count the injected violation"
grep -Eq '^feed_ns\.p99 +[0-9]' "$TMP/stats.out" \
  || fail "stats table must flatten the feed_ns histogram"

# -- graceful shutdown: exit 0 and a metrics dump
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=""
[ $rc -eq 0 ] || fail "server must exit 0 on SIGTERM (got $rc)"
grep -q '"txns_fed"' "$TMP/serve.log" \
  || fail "server must dump metrics JSON on shutdown"

echo "service-smoke: OK"
