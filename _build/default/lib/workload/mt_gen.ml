type params = {
  num_sessions : int;
  num_txns : int;
  num_keys : int;
  dist : Distribution.kind;
  seed : int;
}

let default =
  {
    num_sessions = 10;
    num_txns = 1000;
    num_keys = 100;
    dist = Distribution.Uniform;
    seed = 42;
  }

let shape_weights =
  [
    (Mini.R, 10);
    (Mini.RW, 25);
    (Mini.RR, 10);
    (Mini.RRW_fst, 10);
    (Mini.RRW_snd, 10);
    (Mini.RRWW, 15);
    (Mini.RWRW, 20);
  ]

let total_weight = List.fold_left (fun acc (_, w) -> acc + w) 0 shape_weights

let sample_shape rng =
  let x = Rng.int rng total_weight in
  let rec pick acc = function
    | [ (s, _) ] -> s
    | (s, w) :: rest -> if x < acc + w then s else pick (acc + w) rest
    | [] -> assert false
  in
  pick 0 shape_weights

(* Two distinct keys from the distribution (retry on collision; with one
   key in the space, fall back to a single-key shape). *)
let sample_two_keys dist rng =
  let x = Distribution.sample dist rng in
  let rec draw tries =
    let y = Distribution.sample dist rng in
    if y <> x then Some (x, y) else if tries = 0 then None else draw (tries - 1)
  in
  match draw 16 with
  | Some pair -> pair
  | None -> (x, (x + 1) mod Distribution.size dist)

let ops_of_shape shape dist rng =
  let open Spec in
  match shape with
  | Mini.R -> [ Pread (Distribution.sample dist rng) ]
  | Mini.RW ->
      let k = Distribution.sample dist rng in
      [ Pread k; Pwrite k ]
  | Mini.RR ->
      let x, y = sample_two_keys dist rng in
      [ Pread x; Pread y ]
  | Mini.RRW_fst ->
      let x, y = sample_two_keys dist rng in
      [ Pread x; Pread y; Pwrite x ]
  | Mini.RRW_snd ->
      let x, y = sample_two_keys dist rng in
      [ Pread x; Pread y; Pwrite y ]
  | Mini.RRWW ->
      let x, y = sample_two_keys dist rng in
      [ Pread x; Pread y; Pwrite x; Pwrite y ]
  | Mini.RWRW ->
      let x, y = sample_two_keys dist rng in
      [ Pread x; Pwrite x; Pread y; Pwrite y ]

let generate p =
  if p.num_sessions <= 0 then invalid_arg "Mt_gen.generate: no sessions";
  let rng = Rng.create p.seed in
  let dist = Distribution.make p.dist ~n:p.num_keys in
  let sessions = Array.make p.num_sessions [] in
  for i = 0 to p.num_txns - 1 do
    let s = i mod p.num_sessions in
    let txn = ops_of_shape (sample_shape rng) dist rng in
    assert (Spec.is_mini_op_list txn);
    sessions.(s) <- txn :: sessions.(s)
  done;
  {
    Spec.name =
      Printf.sprintf "mt-%s-s%d-t%d-k%d"
        (Distribution.kind_name p.dist)
        p.num_sessions p.num_txns p.num_keys;
    num_keys = p.num_keys;
    sessions = Array.map List.rev sessions;
  }
