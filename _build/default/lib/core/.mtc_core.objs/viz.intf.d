lib/core/viz.mli: Checker History
