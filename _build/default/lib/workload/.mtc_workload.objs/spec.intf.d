lib/workload/spec.mli: Format Op
