let replay (h : History.t) order =
  let store = Array.make h.History.num_keys 0 in
  let expected =
    History.committed h
    |> List.filter_map (fun (t : Txn.t) ->
           if t.Txn.id = History.init_id then None else Some t.Txn.id)
    |> List.sort_uniq compare
  in
  if List.sort compare order <> expected then
    Error "schedule is not a permutation of the committed transactions"
  else begin
    let exception Mismatch of string in
    try
      List.iter
        (fun id ->
          let t = History.txn h id in
          let local : (Op.key, Op.value) Hashtbl.t = Hashtbl.create 4 in
          Array.iteri
            (fun i op ->
              match op with
              | Op.Write (k, v) -> Hashtbl.replace local k v
              | Op.Read (k, v) ->
                  let current =
                    match Hashtbl.find_opt local k with
                    | Some own -> own
                    | None -> store.(k)
                  in
                  if current <> v then
                    raise
                      (Mismatch
                         (Printf.sprintf
                            "T%d op#%d read x%d=%d but the store holds %d" id
                            i k v current)))
            t.Txn.ops;
          Hashtbl.iter (fun k v -> store.(k) <- v) local)
        order;
      Ok ()
    with Mismatch m -> Error m
  end

let certificate ?(rt_mode = Deps.Rt_sweep) level (h : History.t) =
  match History.unique_values h with
  | Error msg -> Error (Checker.Malformed msg)
  | Ok () -> (
      let idx = Index.build h in
      match Int_check.check idx with
      | Error v -> Error (Checker.Intra v)
      | Ok () -> (
          let rt =
            match level with
            | Checker.SSER -> rt_mode
            | Checker.SER -> Deps.No_rt
            | Checker.SI ->
                invalid_arg
                  "Oracle.certificate: SI has no serial-order witness"
          in
          match Deps.build ~rt idx with
          | Error e ->
              Error (Checker.Malformed (Format.asprintf "%a" Deps.pp_error e))
          | Ok d -> (
              let csr = Deps.freeze d in
              match Topo.sort_csr csr with
              | None -> (
                  match Cycle.find_csr csr with
                  | Some cycle ->
                      Error (Checker.Cyclic (Deps.to_txn_cycle d cycle))
                  | None -> assert false)
              | Some vertices ->
                  Ok
                    (List.filter_map
                       (fun v ->
                         if v >= d.Deps.num_txn_vertices then None
                         else
                           let t = Index.txn_of_vertex idx v in
                           if t.Txn.id = History.init_id then None
                           else Some t.Txn.id)
                       vertices))))
