(** Plain-text serialization of histories (one transaction per line),
    so that histories can be archived, diffed, and re-checked from the
    command line:

    {v
    mtc-history v1
    keys 4
    sessions 2
    txn 1 1 C 2 3 R(x0)=0 W(x0):=101
    txn 2 2 A 2 4 R(x1)=0
    v}

    Fields of a [txn] line: id, session, status (C/A), start_ts,
    commit_ts, then the operations in program order.  The initial
    transaction is implicit and not serialized. *)

val to_string : History.t -> string

val of_string : string -> (History.t, string) result
(** Total: malformed input — truncated ops, bad status, duplicate or
    out-of-order transaction ids, sessions/keys out of range — yields
    [Error] naming the offending (1-based) line, never an exception. *)

val save : string -> History.t -> unit
(** [save path h] writes [to_string h] to [path]. *)

val load : string -> (History.t, string) result
