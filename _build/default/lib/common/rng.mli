(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (SplitMix64).  Every randomized component
    of the library takes an explicit [Rng.t] so that workload generation,
    scheduling and fault injection are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples Exp(lambda). *)
