lib/runner/scheduler.mli: Db Elle_log History Spec
