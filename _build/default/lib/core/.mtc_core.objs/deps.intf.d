lib/core/deps.mli: Digraph Format Index Op Txn
