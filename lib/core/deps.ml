type dep = RT | SO | WR of Op.key | WW of Op.key | RW of Op.key | Rt_chain

let dep_name = function
  | RT -> "RT"
  | SO -> "SO"
  | WR _ -> "WR"
  | WW _ -> "WW"
  | RW _ -> "RW"
  | Rt_chain -> "rt*"

let pp_dep ppf = function
  | RT -> Format.pp_print_string ppf "RT"
  | SO -> Format.pp_print_string ppf "SO"
  | WR k -> Format.fprintf ppf "WR(x%d)" k
  | WW k -> Format.fprintf ppf "WW(x%d)" k
  | RW k -> Format.fprintf ppf "RW(x%d)" k
  | Rt_chain -> Format.pp_print_string ppf "rt*"

type rt_mode = No_rt | Rt_naive | Rt_sweep
type impl = Direct | Via_digraph

type t = {
  idx : Index.t;
  num_txn_vertices : int;
  mutable frozen : dep Csr.t option;
  mutable adj : dep Digraph.t option;
}

let freeze t =
  match t.frozen with
  | Some c -> c
  | None ->
      let c =
        match t.adj with
        | Some g -> Csr.of_digraph g
        | None -> assert false (* build always fills one representation *)
      in
      t.frozen <- Some c;
      c

let digraph t =
  match t.adj with
  | Some g -> g
  | None ->
      let c = freeze t in
      let g = Digraph.create (Csr.n c) in
      for u = 0 to Csr.n c - 1 do
        Csr.iter_succ c u (fun v lab -> Digraph.add_edge g u v lab)
      done;
      t.adj <- Some g;
      g

type error = Unresolved_read of { txn : Txn.id; key : Op.key; value : Op.value }

let pp_error ppf (Unresolved_read { txn; key; value }) =
  Format.fprintf ppf
    "read of %d on x%d in T%d is not attributable to a committed final write"
    value key txn

(* --- shared real-time helpers (SSER) --- *)

(* Vertices of the Rt_sweep helper chain: helper [m + r] stands for
   "every transaction among the r+1 earliest commits has finished".
   [emit] receives each chain edge; start times binary-search the sorted
   commit times. *)
let sweep_edges ~skew (idx : Index.t) m emit =
  let by_commit = Array.init m (fun v -> v) in
  Array.sort
    (fun a b ->
      compare (Index.txn_of_vertex idx a).Txn.commit_ts
        (Index.txn_of_vertex idx b).Txn.commit_ts)
    by_commit;
  let commits =
    Array.map (fun v -> (Index.txn_of_vertex idx v).Txn.commit_ts) by_commit
  in
  for r = 0 to m - 1 do
    emit by_commit.(r) (m + r);
    if r + 1 < m then emit (m + r) (m + r + 1)
  done;
  for sv = 0 to m - 1 do
    let start = (Index.txn_of_vertex idx sv).Txn.start_ts in
    (* Largest r with commits.(r) + skew < start. *)
    let lo = ref 0 and hi = ref (m - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if commits.(mid) + skew < start then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best >= 0 then emit (m + !best) sv
  done

(* RT edges of the naive Θ(n²) encoding.  commit + skew cannot overflow
   (logical clocks are small); start - skew would underflow on the
   initial transaction's min_int timestamps. *)
let naive_rt_edges ~skew (idx : Index.t) m emit =
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j then begin
        let a = Index.txn_of_vertex idx i and b = Index.txn_of_vertex idx j in
        if a.commit_ts + skew < b.start_ts then emit i j
      end
    done
  done

(* --- direct-to-CSR construction (the verify hot path) --- *)

(* Int-packed edge labels for the flat edge stream: 0/1/2 are the keyless
   constants, a keyed label packs as [4 + (key lsl 2) lor tag]. *)
let lab_rt = 0
let lab_so = 1
let lab_chain = 2
let pack_wr k = 4 + ((k lsl 2) lor 0)
let pack_ww k = 4 + ((k lsl 2) lor 1)
let pack_rw k = 4 + ((k lsl 2) lor 2)

(* ops.(i) = Read (k, _) is the external read of [k] iff no earlier op
   touches [k] (an earlier read of [k] is the external one; an earlier
   write makes every later read internal).  Linear rescan instead of the
   per-txn hashtables of [Txn.external_reads] — MTs have <= 4 ops. *)
let is_external_read ops i k =
  let rec earlier j = j >= i || (Op.key ops.(j) <> k && earlier (j + 1)) in
  earlier 0

let writes_key_ops ops k =
  let n = Array.length ops in
  let rec go j =
    j < n
    &&
    match ops.(j) with
    | Op.Write (k', _) -> k' = k || go (j + 1)
    | Op.Read _ -> go (j + 1)
  in
  go 0

let sp_deps = Obs.Trace.intern "infer/deps"
let sp_so = Obs.Trace.intern "infer/deps/so"
let sp_bucket = Obs.Trace.intern "infer/deps/bucket"
let sp_wrww = Obs.Trace.intern "infer/deps/wr+ww"
let sp_rw = Obs.Trace.intern "infer/deps/rw"
let sp_rt = Obs.Trace.intern "infer/deps/rt"
let sp_freeze = Obs.Trace.intern "infer/deps/freeze"

(* Number of key stripes the direct builder shards by.  Fixed — NOT the
   pool size — so the merged edge order (stream-major, scan order per
   stream) is a function of the key space only and the frozen CSR is
   bit-identical for every [-j], including no pool at all. *)
let num_stripes = 8

let stripe_of_key k = k mod num_stripes

(* Per-stripe working state of the sharded build: one edge stream plus
   the reader-group machinery for the local RW composition.  A stripe
   owns the keys [k] with [stripe_of_key k = stripe], so reader groups
   (keyed by writer vertex × key) never span stripes and each stripe's
   RW composition is complete on its own. *)
type stripe = {
  (* external reads routed here by the bucket pre-pass: committed-array
     position and op index *)
  r_sv : Int_vec.t;
  r_op : Int_vec.t;
  (* the stripe's edge stream *)
  eu : Int_vec.t;
  ev : Int_vec.t;
  el : Int_vec.t;
  (* first unresolved read, as (sv, op index, txn, key, value) *)
  mutable err_sv : int;
  mutable err_op : int;
  mutable err : error option;
}

let run_stripe ?fast (idx : Index.t) num_keys st =
  let t_wrww = Obs.Trace.enter () in
  let nr0 = Int_vec.length st.r_sv in
  let groups = Flat_index.create ~capacity:(2 * nr0) () in
  let num_groups = ref 0 in
  let rd_src = Int_vec.create nr0
  and rd_key = Int_vec.create nr0
  and rd_grp = Int_vec.create nr0
  and rd_ow = Int_vec.create nr0 (* 1 iff the reader overwrites *) in
  let push u v l =
    Int_vec.push st.eu u;
    Int_vec.push st.ev v;
    Int_vec.push st.el l
  in
  let record sv k writes g =
    Int_vec.push rd_src sv;
    Int_vec.push rd_key k;
    Int_vec.push rd_grp g;
    Int_vec.push rd_ow (if writes then 1 else 0)
  in
  for r = 0 to nr0 - 1 do
    let sv = Int_vec.get st.r_sv r in
    let i = Int_vec.get st.r_op r in
    let s = idx.Index.committed.(sv) in
    let ops = s.Txn.ops in
    match ops.(i) with
    | Op.Write _ -> assert false
    | Op.Read (k, v) -> (
        match fast with
        | Some (tsi, slot_group) when Ts.is_fast_key tsi k ->
            (* Timestamp fast path: the writer is the predicted chain
               slot — certification already proved the slot's value is
               the value read (Verify) or the caller opted to trust the
               oracle.  Group ids come from the slot itself: a slot is
               in bijection with (writer vertex, key), and fast/slow
               keys never share a group, so sharing [num_groups] with
               the slow path below reproduces the value-inferred group
               numbering exactly — and hence the identical CSR. *)
            let p =
              match Ts.cached_slot tsi ~sv ~op:i with
              | -1 -> Ts.predict tsi k ~start_ts:s.Txn.start_ts
              | p -> p
            in
            let wv = Ts.slot_vertex tsi p in
            if wv <> sv then begin
              push wv sv (pack_wr k);
              let writes = writes_key_ops ops k in
              if writes then push wv sv (pack_ww k);
              let g =
                match slot_group.(p) with
                | -1 ->
                    let g = !num_groups in
                    incr num_groups;
                    slot_group.(p) <- g;
                    g
                | g -> g
              in
              record sv k writes g
            end
        | Some _ | None -> (
            match Index.writer_of idx k v with
            | Index.Final w when w <> s.id ->
                let wv = Index.vertex idx w in
                push wv sv (pack_wr k);
                let writes = writes_key_ops ops k in
                if writes then push wv sv (pack_ww k);
                let gk = (wv * num_keys) + k in
                let g =
                  match Flat_index.get groups gk with
                  | -1 ->
                      let g = !num_groups in
                      incr num_groups;
                      Flat_index.set groups gk g;
                      g
                  | g -> g
                in
                record sv k writes g
            | Index.Final _ | Index.Intermediate _ | Index.Aborted _
            | Index.Nobody ->
                if st.err = None then begin
                  st.err_sv <- sv;
                  st.err_op <- i;
                  st.err <-
                    Some (Unresolved_read { txn = s.id; key = k; value = v })
                end))
  done;
  Obs.Trace.exit sp_wrww t_wrww;
  if st.err = None then begin
    (* RW edges: T' -WR(x)-> T and T' -WW(x)-> S give T -RW(x)-> S.
       Counting sort the read records by group id, then cross readers
       with overwriters within each contiguous slice. *)
    let t_rw = Obs.Trace.enter () in
    let nr = Int_vec.length rd_src in
    let ng = !num_groups in
    let g_off = Array.make (ng + 1) 0 in
    let grp = Int_vec.data rd_grp in
    for r = 0 to nr - 1 do
      g_off.(grp.(r) + 1) <- g_off.(grp.(r) + 1) + 1
    done;
    for g = 1 to ng do
      g_off.(g) <- g_off.(g) + g_off.(g - 1)
    done;
    let members = Array.make nr 0 in
    let cursor = Array.copy g_off in
    for r = 0 to nr - 1 do
      members.(cursor.(grp.(r))) <- r;
      cursor.(grp.(r)) <- cursor.(grp.(r)) + 1
    done;
    let src = Int_vec.data rd_src
    and key = Int_vec.data rd_key
    and ow = Int_vec.data rd_ow in
    for g = 0 to ng - 1 do
      for a = g_off.(g) to g_off.(g + 1) - 1 do
        let t = src.(members.(a)) in
        let k = key.(members.(a)) in
        for b = g_off.(g) to g_off.(g + 1) - 1 do
          if ow.(members.(b)) = 1 then begin
            let s = src.(members.(b)) in
            if t <> s then push t s (pack_rw k)
          end
        done
      done
    done;
    Obs.Trace.exit sp_rw t_rw
  end

let build_direct ?pool ?ts ~skew ~rt (idx : Index.t) =
  let m = Index.num_vertices idx in
  let h = idx.history in
  let num_keys = h.History.num_keys in
  (* Slot -> reader-group id, shared by all stripes: a key's slots are
     touched only by the task owning that key's stripe, so the array is
     written race-free and the stripes stay independent. *)
  let fast =
    match ts with
    | None -> None
    | Some tsi -> Some (tsi, Array.make (Ts.total_slots tsi) (-1))
  in
  let size = match rt with Rt_sweep -> 2 * m | No_rt | Rt_naive -> m in
  (* SO edges (lines 6-7): one cheap serial pass, stream 0. *)
  let so_u = Int_vec.create m and so_v = Int_vec.create m in
  let t_so = Obs.Trace.enter () in
  History.iter_so_pairs h (fun a b ->
      Int_vec.push so_u (Index.vertex idx a);
      Int_vec.push so_v (Index.vertex idx b));
  Obs.Trace.exit sp_so t_so;
  let so_l = Array.make (Int_vec.length so_u) lab_so in
  (* Bucket pre-pass: route every external read to its key stripe.  The
     serial scan does only the O(1)-per-op externality test; writer
     resolution, WR/WW emission and the RW composition — the expensive
     parts — happen inside the stripe tasks (lines 8-11, 14-15). *)
  let per = 2 * m / num_stripes in
  let stripes =
    Array.init num_stripes (fun _ ->
        {
          r_sv = Int_vec.create per;
          r_op = Int_vec.create per;
          eu = Int_vec.create per;
          ev = Int_vec.create per;
          el = Int_vec.create per;
          err_sv = max_int;
          err_op = max_int;
          err = None;
        })
  in
  let t_bucket = Obs.Trace.enter () in
  Array.iteri
    (fun sv (s : Txn.t) ->
      let ops = s.ops in
      Array.iteri
        (fun i op ->
          match op with
          | Op.Write _ -> ()
          | Op.Read (k, _) ->
              if is_external_read ops i k then begin
                let st = stripes.(stripe_of_key k) in
                Int_vec.push st.r_sv sv;
                Int_vec.push st.r_op i
              end)
        ops)
    idx.committed;
  Obs.Trace.exit sp_bucket t_bucket;
  Pool.tasks pool
    (Array.to_list
       (Array.map (fun st () -> run_stripe ?fast idx num_keys st) stripes));
  (* The sequential builder reported the first unresolved read in scan
     order; the sharded one keeps that contract by minimising over the
     per-stripe (committed position, op index) candidates. *)
  let error = ref None in
  let best_sv = ref max_int and best_op = ref max_int in
  Array.iter
    (fun st ->
      match st.err with
      | Some _
        when st.err_sv < !best_sv
             || (st.err_sv = !best_sv && st.err_op < !best_op) ->
          best_sv := st.err_sv;
          best_op := st.err_op;
          error := st.err
      | Some _ | None -> ())
    stripes;
  match !error with
  | Some e -> Error e
  | None ->
      (* RT edges for SSER: last stream, serial (the sweep is a sort plus
         one linear emit pass). *)
      let rt_u = Int_vec.create 16 and rt_v = Int_vec.create 16 in
      let t_rt = Obs.Trace.enter () in
      let rt_lab =
        match rt with
        | No_rt -> lab_rt
        | Rt_naive ->
            naive_rt_edges ~skew idx m (fun i j ->
                Int_vec.push rt_u i;
                Int_vec.push rt_v j);
            lab_rt
        | Rt_sweep ->
            sweep_edges ~skew idx m (fun u v ->
                Int_vec.push rt_u u;
                Int_vec.push rt_v v);
            lab_chain
      in
      Obs.Trace.exit sp_rt t_rt;
      let rt_l = Array.make (Int_vec.length rt_u) rt_lab in
      (* Freeze: merge the streams — SO, then the key stripes in stripe
         order, then RT — with the parallel multi-stream counting sort.
         Keyed labels decode through per-key caches so equal labels share
         one block instead of allocating per edge; the caches are
         immutable after creation, hence safely shared by every decoding
         domain. *)
      let wr_cache = Array.init num_keys (fun k -> WR k)
      and ww_cache = Array.init num_keys (fun k -> WW k)
      and rw_cache = Array.init num_keys (fun k -> RW k) in
      let decode _stream p =
        if p = lab_rt then RT
        else if p = lab_so then SO
        else if p = lab_chain then Rt_chain
        else
          let q = p - 4 in
          let k = q lsr 2 in
          match q land 3 with
          | 0 -> wr_cache.(k)
          | 1 -> ww_cache.(k)
          | _ -> rw_cache.(k)
      in
      let streams =
        Array.init (num_stripes + 2) (fun si ->
            if si = 0 then
              (Int_vec.data so_u, Int_vec.data so_v, so_l, Int_vec.length so_u)
            else if si <= num_stripes then begin
              let st = stripes.(si - 1) in
              ( Int_vec.data st.eu,
                Int_vec.data st.ev,
                Int_vec.data st.el,
                Int_vec.length st.eu )
            end
            else
              (Int_vec.data rt_u, Int_vec.data rt_v, rt_l, Int_vec.length rt_u))
      in
      let t_freeze = Obs.Trace.enter () in
      let csr = Csr.of_edge_streams ?pool ~n:size ~streams ~decode () in
      Obs.Trace.exit sp_freeze t_freeze;
      Ok { idx; num_txn_vertices = m; frozen = Some csr; adj = None }

(* --- list-based Digraph construction (kept for Viz/Oracle consumers and
       as the independent oracle the direct path is tested against) --- *)

let build_digraph ~skew ~rt (idx : Index.t) =
  let m = Index.num_vertices idx in
  let size = match rt with Rt_sweep -> 2 * m | No_rt | Rt_naive -> m in
  let g = Digraph.create size in
  (* SO edges (lines 6-7). *)
  List.iter
    (fun (a, b) ->
      Digraph.add_edge g (Index.vertex idx a) (Index.vertex idx b) SO)
    (History.so_pairs idx.history);
  (* WR edges, and WW by the RMW inference (lines 8-11).  While adding
     them, group readers and overwriters per (writer vertex, key) so the RW
     edges (lines 14-15) can be composed in one pass. *)
  let readers : (int * Op.key, int list ref) Hashtbl.t = Hashtbl.create (4 * m) in
  let overwriters : (int * Op.key, int list ref) Hashtbl.t = Hashtbl.create m in
  let push tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := v :: !r
    | None -> Hashtbl.replace tbl key (ref [ v ])
  in
  let error = ref None in
  Array.iteri
    (fun sv (s : Txn.t) ->
      List.iter
        (fun (k, v) ->
          match Index.writer_of idx k v with
          | Index.Final w when w <> s.id ->
              let wv = Index.vertex idx w in
              Digraph.add_edge g wv sv (WR k);
              push readers (wv, k) sv;
              if Txn.writes_key s k then begin
                Digraph.add_edge g wv sv (WW k);
                push overwriters (wv, k) sv
              end
          | Index.Final _ | Index.Intermediate _ | Index.Aborted _
          | Index.Nobody ->
              if !error = None then
                error := Some (Unresolved_read { txn = s.id; key = k; value = v }))
        (Txn.external_reads s))
    idx.committed;
  match !error with
  | Some e -> Error e
  | None ->
      (* RW edges: T' -WR(x)-> T and T' -WW(x)-> S give T -RW(x)-> S. *)
      Hashtbl.iter
        (fun (wv, k) rs ->
          match Hashtbl.find_opt overwriters (wv, k) with
          | None -> ()
          | Some ws ->
              List.iter
                (fun t ->
                  List.iter
                    (fun s -> if t <> s then Digraph.add_edge g t s (RW k))
                    !ws)
                !rs)
        readers;
      (* RT edges for SSER. *)
      (match rt with
      | No_rt -> ()
      | Rt_naive -> naive_rt_edges ~skew idx m (fun i j -> Digraph.add_edge g i j RT)
      | Rt_sweep ->
          sweep_edges ~skew idx m (fun u v -> Digraph.add_edge g u v Rt_chain));
      Ok { idx; num_txn_vertices = m; frozen = None; adj = Some g }

let build ?(skew = 0) ?(impl = Direct) ?pool ?ts ~rt (idx : Index.t) =
  Obs.Trace.with_span sp_deps @@ fun () ->
  match impl with
  | Direct -> build_direct ?pool ?ts ~skew ~rt idx
  | Via_digraph ->
      (* The digraph oracle stays value-only; callers force Ignore
         before picking it. *)
      build_digraph ~skew ~rt idx

let to_txn_cycle t cycle =
  let is_helper v = v >= t.num_txn_vertices in
  (* Rotate so the cycle starts at a transaction vertex — one split at
     the first such edge, O(len), instead of the quadratic
     append-one-at-the-end shuffle. *)
  let rotate c =
    let rec split pre = function
      | ((u, _, _) :: _) as rest when not (is_helper u) -> rest @ List.rev pre
      | e :: rest -> split (e :: pre) rest
      | [] -> c (* helper vertices only; contraction copes below *)
    in
    split [] c
  in
  let cycle = rotate cycle in
  let txn_id v = (Index.txn_of_vertex t.idx v).Txn.id in
  let rec contract = function
    | [] -> []
    | (u, Rt_chain, v) :: rest when is_helper v ->
        (* Walk the helper run until it re-enters a transaction vertex. *)
        let rec skip = function
          | (_, _, w) :: rest' when is_helper w -> skip rest'
          | (_, _, w) :: rest' -> (w, rest')
          | [] -> failwith "Deps.to_txn_cycle: dangling helper run"
        in
        let exit_vertex, rest' = skip rest in
        (txn_id u, RT, txn_id exit_vertex) :: contract rest'
    | (u, lab, v) :: rest -> (txn_id u, lab, txn_id v) :: contract rest
  in
  contract cycle

let dep_edges t =
  (* Walk the frozen CSR backwards, consing forward — emits in edge order
     with no List.rev pass. *)
  let c = freeze t in
  let acc = ref [] in
  for u = Csr.n c - 1 downto 0 do
    for e = c.Csr.offsets.(u + 1) - 1 downto c.Csr.offsets.(u) do
      match c.Csr.labels.(e) with
      | (SO | WR _ | WW _) as lab -> acc := (u, lab, c.Csr.targets.(e)) :: !acc
      | RT | RW _ | Rt_chain -> ()
    done
  done;
  !acc

let rw_succ t v =
  let c = freeze t in
  let acc = ref [] in
  for e = c.Csr.offsets.(v + 1) - 1 downto c.Csr.offsets.(v) do
    match c.Csr.labels.(e) with
    | RW k -> acc := (k, c.Csr.targets.(e)) :: !acc
    | RT | SO | WR _ | WW _ | Rt_chain -> ()
  done;
  !acc
