(** Incremental topological order maintenance (Pearce & Kelly, 2006).

    Supports online edge insertion into a DAG in amortized sub-linear time,
    reporting a cycle witness when an insertion would create one.  This is
    the engine behind the SAT acyclicity theory (our MonoSAT-lite): the
    Cobra/PolySI baselines assert dependency edges one by one as the solver
    assigns edge literals. *)

type t

val create : int -> t
(** [create n]: empty DAG on [0 .. n-1], initial order is the identity. *)

val n : t -> int

val add_edge : t -> int -> int -> (unit, int list) result
(** [add_edge t u v] inserts [u -> v].  [Error path] means the edge closes a
    cycle; [path] is a vertex path [v; ...; u] along existing edges, so the
    full cycle is [u -> v -> ... -> u].  The structure is unchanged on
    error.  Self-edges always fail with [Error [u]]. *)

val mem_edge : t -> int -> int -> bool

val remove_edge : t -> int -> int -> unit
(** Remove an edge if present.  The maintained order stays valid: deleting
    edges never invalidates a topological order, so removal is O(1) —
    which is what makes the structure usable under SAT backtracking. *)

val order_index : t -> int -> int
(** Current topological index of a vertex. *)

val check_invariant : t -> bool
(** For tests: every recorded edge goes forward in the maintained order. *)
