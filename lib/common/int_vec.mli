(** Growable flat [int] array (amortized-doubling push) — the edge-stream
    buffer of the direct-to-CSR dependency builder and the adjacency /
    scratch vectors of the incremental {!Pearce_kelly} structure.  No
    per-element boxing; the only allocation is the occasional capacity
    doubling. *)

type t

val create : int -> t
(** [create capacity] with an initial capacity hint (min 4). *)

val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int

val set : t -> int -> int -> unit
(** [set t i x] overwrites slot [i]; [i] must be [< length t]. *)

val clear : t -> unit
(** Reset the length to 0 without releasing the backing array — the
    idiom for per-call scratch buffers reused across calls. *)

val pop : t -> int
(** Remove and return the last element; the vector must be non-empty. *)

val data : t -> int array
(** The backing array — valid entries are [0 .. length t - 1].  Exposed
    so counting-sort passes can index it directly; do not retain across
    further pushes (doubling replaces the array). *)

val encode : Buffer.t -> t -> unit
(** Append length + elements as varints (zigzag: [min_int] sentinels
    survive). *)

val decode : Binio_core.reader -> t
(** Inverse of {!encode}; the result's contents and order are
    bit-identical to the encoded vector.
    @raise Binio_core.Decode_error on truncated or malformed input. *)
