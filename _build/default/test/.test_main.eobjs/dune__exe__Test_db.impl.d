test/test_db.ml: Alcotest Db Fault Isolation List Locking Mvcc
