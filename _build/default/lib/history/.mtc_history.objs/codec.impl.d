lib/history/codec.ml: Array Buffer Fun History In_channel List Op Option Printf String Txn
