(** The (nearly unique) dependency graph of a mini-transaction history —
    the optimized BUILDDEPENDENCY of paper Algorithm 1 / Section IV-C.

    Unique values make WR fully determined; the RMW pattern makes each WW
    edge the direct successor relation along an object's version chain
    (inferred from WR, lines 10–11); the transitive closure of WW is *not*
    computed (Theorems 1–2 show acyclicity is preserved); RW is composed
    from WR and WW (lines 14–15).

    Two interchangeable builders produce the graph:
    - [Direct] (the default, and the verify hot path) streams edges into
      flat int arrays — sources, targets, and int-packed labels — and
      counting-sorts them straight into the frozen {!Csr.t} the cycle
      kernels consume.  No [Digraph] adjacency lists, no boxed
      [(key, value)] tuples, no per-transaction hashtables.
    - [Via_digraph] is the seed's list-based construction, kept for
      consumers that want a mutable graph and as the independent oracle
      the direct path is tested against.

    Either representation converts lazily to the other ({!freeze} /
    {!digraph}), so downstream code is agnostic to the builder used.

    For SSER, the real-time relation can be materialized in two ways:
    - [Rt_naive]: one edge per ordered pair, Θ(n²) as analyzed in the
      paper (Section IV-D);
    - [Rt_sweep]: an O(n log n) encoding through a chain of helper
      vertices sorted by commit time — [T -RT-> S] iff the graph has a
      path [T -> h_i -> ... -> h_j -> S] of [Rt_chain] edges.  Cycles are
      mapped back to RT edges by {!to_txn_cycle}. *)

type dep =
  | RT
  | SO
  | WR of Op.key
  | WW of Op.key
  | RW of Op.key
  | Rt_chain  (** internal helper-chain edges of the sweep encoding *)

val dep_name : dep -> string
val pp_dep : Format.formatter -> dep -> unit

type rt_mode = No_rt | Rt_naive | Rt_sweep

type impl = Direct | Via_digraph
(** Which builder {!build} runs; see the module docstring. *)

type t = {
  idx : Index.t;
  num_txn_vertices : int;  (** vertices [>= num_txn_vertices] are helpers *)
  mutable frozen : dep Csr.t option;
      (** CSR form: filled by the [Direct] builder, else by {!freeze} *)
  mutable adj : dep Digraph.t option;
      (** adjacency-list form: filled by [Via_digraph], else by {!digraph} *)
}

val freeze : t -> dep Csr.t
(** CSR snapshot for the zero-allocation cycle kernels.  Already present
    when built with [Direct]; converted from the digraph (and cached) on
    first use otherwise. *)

val digraph : t -> dep Digraph.t
(** Adjacency-list form (Viz, kernels that want a mutable graph).
    Already present when built with [Via_digraph]; converted from the CSR
    (and cached) on first use otherwise.  Do not mutate: both forms are
    assumed to describe the same edge set. *)

type error = Unresolved_read of { txn : Txn.id; key : Op.key; value : Op.value }

val pp_error : Format.formatter -> error -> unit

val build :
  ?skew:int -> ?impl:impl -> ?pool:Pool.t -> ?ts:Ts.t -> rt:rt_mode ->
  Index.t -> (t, error) result
(** Fails only if some external read cannot be attributed to the final
    write of a committed transaction — which the INT screen
    ({!Int_check.check}) rules out beforehand.

    [ts] enables the timestamp fast path in the [Direct] builder: reads
    of fast keys take their writer from the predicted chain slot — no
    value-table lookup — and reader groups are numbered by slot, which
    reproduces the value-inferred grouping exactly (certification or an
    explicit trust decision guarantees the slot's writer is the value's
    writer), so the frozen CSR is bit-identical with the value-only
    build.  Keys flagged slow by certification fall back to value
    resolution per key.  Ignored by [Via_digraph].

    [impl] (default [Direct]) picks the builder; both produce the same
    edge multiset with the same per-source successor order for SO/WR/WW
    (RW/RT grouping order may differ between them, never membership).

    [pool] parallelizes the [Direct] builder: inference is sharded over
    a {e fixed} number of key stripes (independent of the pool size), so
    the frozen CSR — edge order included — and any [Unresolved_read]
    error are bit-identical whether the stripes run on one domain or
    many.  Ignored by [Via_digraph].

    [skew] (default 0) relaxes the real-time order for SSER: an RT edge
    [T -> S] is added only when [T.commit_ts + skew < S.start_ts].  This
    is the paper's future-work concern about collecting wall-clock
    timestamps under clock skew — tolerating a bounded skew trades a few
    missed RT edges (weaker check, no false positives) for robustness
    against drifting client clocks. *)

val to_txn_cycle :
  t -> (int * dep * int) list -> (Txn.id * dep * Txn.id) list
(** Convert a vertex-level cycle into a transaction-level one, contracting
    maximal runs of [Rt_chain] helper edges into single [RT] edges. *)

val dep_edges : t -> (int * dep * int) list
(** The SO/WR/WW edges (no RT, no RW) — the left operand of the SI
    composition.  Emitted in CSR order (source-major, insertion order per
    source). *)

val rw_succ : t -> int -> (Op.key * int) list
(** RW successors of a vertex. *)
