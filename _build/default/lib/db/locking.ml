type entry = { txn : Txn.id; age : int }

type lock = { mutable writer : entry option; mutable readers : entry list }

type t = {
  locks : lock array;
  by_txn : (Txn.id, (Op.key * [ `Shared | `Exclusive ]) list ref) Hashtbl.t;
}

let create ~num_keys =
  {
    locks = Array.init num_keys (fun _ -> { writer = None; readers = [] });
    by_txn = Hashtbl.create 64;
  }

type outcome = Granted | Blocked | Granted_wounding of Txn.id list

let record t txn key kind =
  match Hashtbl.find_opt t.by_txn txn with
  | Some r -> if not (List.mem (key, kind) !r) then r := (key, kind) :: !r
  | None -> Hashtbl.replace t.by_txn txn (ref [ (key, kind) ])

let release_all t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some r ->
      List.iter
        (fun (key, _) ->
          let l = t.locks.(key) in
          (match l.writer with
          | Some e when e.txn = txn -> l.writer <- None
          | Some _ | None -> ());
          l.readers <- List.filter (fun e -> e.txn <> txn) l.readers)
        !r;
      Hashtbl.remove t.by_txn txn

let held t ~txn =
  match Hashtbl.find_opt t.by_txn txn with Some r -> !r | None -> []

let acquire t ~kind ~key ~txn ~age =
  let l = t.locks.(key) in
  let conflicts =
    match kind with
    | `Shared -> (
        match l.writer with
        | Some e when e.txn <> txn -> [ e ]
        | Some _ | None -> [])
    | `Exclusive ->
        let ws =
          match l.writer with
          | Some e when e.txn <> txn -> [ e ]
          | Some _ | None -> []
        in
        ws @ List.filter (fun e -> e.txn <> txn) l.readers
  in
  let grant () =
    (match kind with
    | `Shared ->
        if not (List.exists (fun e -> e.txn = txn) l.readers) then
          l.readers <- { txn; age } :: l.readers
    | `Exclusive -> l.writer <- Some { txn; age });
    record t txn key kind
  in
  if conflicts = [] then begin
    grant ();
    Granted
  end
  else if List.for_all (fun e -> age < e.age) conflicts then begin
    (* Wound every younger conflicting holder, then take the lock. *)
    let victims = List.sort_uniq compare (List.map (fun e -> e.txn) conflicts) in
    List.iter (fun v -> release_all t ~txn:v) victims;
    grant ();
    Granted_wounding victims
  end
  else Blocked
