(** A shared index over a history: dense vertex numbering of committed
    transactions and write-value lookup tables.  Because every write on an
    object assigns a unique value (Definition 9), the tables resolve each
    read to the transaction that produced its value — the basis of the
    deterministic WR relation (paper Section IV-A).

    The lookup tables are int-packed open-addressing maps
    ({!Flat_index.Writers}): building them scans each transaction's op
    array directly, with no per-transaction hashtables and no boxed
    [(key * value)] tuple per write. *)

type t = private {
  history : History.t;
  committed : Txn.t array;  (** committed transactions in id order *)
  vertex_of_txn : int array;  (** txn id -> dense vertex, or -1 if aborted *)
  writers : Flat_index.Writers.t option array;
      (** final / intermediate / aborted writer resolution, striped by
          key ([k mod 8]) so registration parallelizes; [None] stripes
          (from {!build_deferred}) are populated on first lookup; route
          lookups through {!writer_of} *)
  mutable finals : Bytes.t option;
      (** lazily cached committed-op finality; read through {!finals} *)
}

val build : ?pool:Pool.t -> History.t -> t
(** [pool] parallelizes writer-table registration (one task per key
    stripe).  The resulting index is identical with or without it.  All
    stripes are populated eagerly, so concurrent {!writer_of} lookups
    from any stripe are safe. *)

val build_deferred : History.t -> t
(** Vertex numbering only — no writer tables.  Each stripe's table is
    built lazily by the first {!writer_of} on one of its keys; the
    timestamp fast path ({!Ts}) uses this to skip table registration
    entirely when certification succeeds.  Lazy forcing is not
    thread-safe across a stripe: call {!writer_of} on a deferred index
    only from serial code, or from the pool task owning the key's
    stripe ([k mod 8]). *)

val num_vertices : t -> int
val txn_of_vertex : t -> int -> Txn.t
val vertex : t -> Txn.id -> int
(** @raise Invalid_argument on an aborted transaction. *)

type writer = Flat_index.Writers.who =
  | Final of Txn.id
  | Intermediate of Txn.id
  | Aborted of Txn.id
  | Nobody

val mark_finals : final:Bytes.t -> Op.t array -> unit
(** Finality of each write, one byte per op position ['\001'] / ['\000'],
    into the caller-provided scratch (length >= the op count).  Linear
    rescan for mini-transactions, one backward keyed pass for large op
    arrays (the initial transaction) — shared by the registration and
    timestamp-chain builders. *)

val final_scratch : Txn.t array -> Bytes.t
(** A scratch buffer sized for the largest op array of the batch. *)

val finals : t -> Bytes.t
(** Finality of every committed op, flat across the whole history in op
    scan order — index [base + i] where [base] is the running op count
    of the preceding transactions (aborted ops read ['\000']).  Computed
    on first use and cached; shared by writer-table registration and the
    timestamp-chain builder ({!Ts.build}).  Same thread-safety
    discipline as lazy writer tables: first use from serial code or a
    single owning task. *)

val writer_of : t -> Op.key -> Op.value -> writer
(** Who produced value [v] of object [x]?  [Final] writers are the only
    legitimate sources under the INT axiom + committed visibility. *)
