type 'lab t = {
  adj : (int * 'lab) list array;  (** reversed insertion order *)
  mutable edge_count : int;
}

let create n = { adj = Array.make n []; edge_count = 0 }

let n g = Array.length g.adj
let num_edges g = g.edge_count

let add_edge g u v lab =
  g.adj.(u) <- (v, lab) :: g.adj.(u);
  g.edge_count <- g.edge_count + 1

let mem_edge g u v = List.exists (fun (w, _) -> w = v) g.adj.(u)

let succ g u = List.rev g.adj.(u)

let succ_vertices g u = List.rev_map fst g.adj.(u)

(* Insertion-order iteration without materializing a reversed copy: the
   adjacency is stored newest-first, so recurse to the end of the list and
   emit on the way back.  Stack depth is the out-degree; beyond a bound we
   fall back to one [List.rev] rather than risk the native stack on
   pathological fan-out (e.g. naive RT encodings). *)
let iter_succ g u f =
  let rec go depth l =
    match l with
    | [] -> ()
    | (v, lab) :: tl ->
        if depth >= 10_000 then
          List.iter (fun (v, lab) -> f v lab) (List.rev l)
        else begin
          go (depth + 1) tl;
          f v lab
        end
  in
  go 0 g.adj.(u)

let iter_succ_vertices g u f = iter_succ g u (fun v _ -> f v)

let iter_edges g f =
  for u = 0 to Array.length g.adj - 1 do
    iter_succ g u (fun v lab -> f u lab v)
  done

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun u lab v -> acc := f !acc u lab v);
  !acc

let edges g = fold_edges g (fun acc u lab v -> (u, lab, v) :: acc) [] |> List.rev

let map_labels f g =
  let g' = create (n g) in
  iter_edges g (fun u lab v -> add_edge g' u v (f lab));
  g'

let transpose g =
  let g' = create (n g) in
  iter_edges g (fun u lab v -> add_edge g' v u lab);
  g'

let out_degree g u = List.length g.adj.(u)
