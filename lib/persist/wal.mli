(** Per-shard write-ahead log of accepted service frames.

    Record discipline mirrors the [mtcbin1] binary history format:
    length-prefixed blocks with a per-block CRC-32, behind a
    magic+version header.  Appends are one [write] syscall per record —
    the bytes survive a [kill -9] of the server unconditionally; the
    {!sync} policy only controls [fsync] (protection against OS crashes
    and power loss).

    Reading is total: a torn tail parses as a clean {!Truncated} stop, a
    mid-file CRC or tag mismatch as {!Corrupt}; neither raises. *)

type sync =
  | Always  (** fsync after every record *)
  | Batch
      (** fsync at the ack {!barrier} (before a verdict is acknowledged)
          and every few hundred records *)
  | Off  (** never fsync *)

val sync_of_string : string -> sync option
val sync_name : sync -> string

type record =
  | R_open of {
      sid : int;
      level : Checker.level;
      num_keys : int;
      skew : int;
      ts : Ts.mode;
    }
  | R_feed of { sid : int; seq : int; txn : Txn.t }
  | R_close of { sid : int }

type header = { h_version : int; h_shard : int; h_nshards : int; h_gen : int }

(** {1 Writing} *)

type writer

val create :
  ?on_fsync:(unit -> unit) ->
  path:string ->
  shard:int ->
  nshards:int ->
  gen:int ->
  sync:sync ->
  unit ->
  writer
(** Create (truncating) a WAL at [path] and write its header.
    [on_fsync] is invoked after every fsync — the metrics hook. *)

val append : writer -> record -> int
(** Append one record (a single [write] syscall) and apply the sync
    policy; returns the bytes appended. *)

val barrier : writer -> unit
(** In [Batch] mode, fsync anything appended since the last sync — call
    before acknowledging a verdict.  No-op otherwise. *)

val bytes_written : writer -> int

val close : writer -> unit
(** Final fsync (unless [Off]) and close.  Idempotent. *)

(** {1 Reading} *)

type tail =
  | Complete
  | Truncated of int  (** torn tail starting at this byte offset *)
  | Corrupt of { offset : int; reason : string }

val read_path : string -> (header * record list * tail, string) result
(** Read a whole WAL.  [Error] only for an unusable file (unreadable,
    bad magic or header); otherwise the valid record prefix plus how the
    file ended. *)
