lib/runner/intern.mli:
