let sort (g : _ Digraph.t) =
  let n = Digraph.n g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges g (fun _ _ v -> indeg.(v) <- indeg.(v) + 1);
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    incr count;
    Digraph.iter_succ_vertices g u (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
  done;
  if !count = n then Some (List.rev !order) else None

(* Kahn over CSR with a flat int-array queue: no allocation beyond the
   two O(V) arrays and the result list. *)
let sort_csr (c : _ Csr.t) =
  let n = Csr.n c in
  let offsets = c.Csr.offsets and targets = c.Csr.targets in
  let indeg = Array.make n 0 in
  for i = 0 to Array.length targets - 1 do
    indeg.(targets.(i)) <- indeg.(targets.(i)) + 1
  done;
  let queue = Array.make (Stdlib.max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      queue.(!tail) <- v;
      incr tail
    end
  done;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for i = offsets.(u) to offsets.(u + 1) - 1 do
      let v = targets.(i) in
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then begin
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  if !tail = n then Some (Array.to_list (Array.sub queue 0 n)) else None

let is_order g pos =
  Digraph.fold_edges g (fun ok u _ v -> ok && pos.(u) < pos.(v)) true
