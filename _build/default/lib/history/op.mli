(** Read and write operations on a key-value store (paper Section II-B).

    Keys and values are integers.  Following the common practice in
    black-box isolation checking, every write in a history is expected to
    assign a value unique for its object; [History.validate] enforces
    this. *)

type key = int
type value = int

type t =
  | Read of key * value  (** [Read (x, v)]: read [x], observed value [v] *)
  | Write of key * value  (** [Write (x, v)]: write value [v] to [x] *)

val key : t -> key
val value : t -> value
val is_read : t -> bool
val is_write : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints [R(x3)=17] / [W(x3):=18]. *)

val to_string : t -> string

val of_string : string -> t option
(** Parses the [pp] format back. *)

val equal : t -> t -> bool
val compare : t -> t -> int
