(** Literals encoded as integers: [2*var] for the positive literal,
    [2*var + 1] for the negative one. *)

type var = int
type t = int

val make : var -> bool -> t
(** [make v true] is the positive literal of [v]. *)

val var : t -> var

val sign : t -> bool
(** [true] for a positive literal. *)

val neg : t -> t
val pp : Format.formatter -> t -> unit
