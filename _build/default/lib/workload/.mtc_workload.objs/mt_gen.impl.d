lib/workload/mt_gen.ml: Array Distribution List Mini Printf Rng Spec
