(* Bechamel micro-benchmarks of the verification kernels on a fixed
   2000-transaction history: the per-call cost of each checker, measured
   with OLS over monotonic-clock samples. *)

open Bechamel
open Toolkit

let make_tests () =
  let r =
    Bench_util.mt_history ~level:Isolation.Serializable ~keys:300 ~txns:2000
      ~seed:901 ()
  in
  let h = r.Scheduler.history in
  let lwt_h =
    Lwt_gen.generate
      { Lwt_gen.num_sessions = 16; txns_per_session = 125; num_keys = 4;
        concurrent_pct = 0.5; read_pct = 0.2; seed = 902;
        inject = Lwt_gen.No_injection }
  in
  Test.make_grouped ~name:"kernels" ~fmt:"%s/%s"
    [
      Test.make ~name:"mtc-ser" (Staged.stage (fun () -> Checker.check_ser h));
      Test.make ~name:"mtc-si" (Staged.stage (fun () -> Checker.check_si h));
      Test.make ~name:"mtc-sser"
        (Staged.stage (fun () -> Checker.check_sser h));
      Test.make ~name:"vl-lwt" (Staged.stage (fun () -> Lwt_checker.check lwt_h));
      Test.make ~name:"cobra" (Staged.stage (fun () -> Cobra.check h));
      Test.make ~name:"polysi" (Staged.stage (fun () -> Polysi.check h));
      Test.make ~name:"dbcop" (Staged.stage (fun () -> Dbcop.check h));
    ]

let run () =
  Bench_util.section
    "Verification kernels (Bechamel OLS, 2000-txn MT history / 2000-event LWT history)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (make_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  Bench_util.print_table ~header:[ "kernel"; "time per run (ms)" ]
    (List.map
       (fun (name, ns) -> [ name; Printf.sprintf "%.3f" (ns /. 1e6) ])
       rows)
