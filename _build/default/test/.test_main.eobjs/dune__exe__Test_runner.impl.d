test/test_runner.ml: Alcotest Append_gen Array Checker Cobra Codec Db Elle_log Endtoend Fault Gt_gen Hashtbl History Intern Isolation List Mt_gen Option Scheduler Txn
