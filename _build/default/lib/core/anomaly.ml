type kind =
  | Thin_air_read
  | Aborted_read
  | Future_read
  | Not_my_last_write
  | Not_my_own_write
  | Intermediate_read
  | Non_repeatable_reads
  | Session_guarantee_violation
  | Non_monotonic_read
  | Fractured_read
  | Causality_violation
  | Long_fork
  | Lost_update
  | Write_skew

let all =
  [
    Thin_air_read;
    Aborted_read;
    Future_read;
    Not_my_last_write;
    Not_my_own_write;
    Intermediate_read;
    Non_repeatable_reads;
    Session_guarantee_violation;
    Non_monotonic_read;
    Fractured_read;
    Causality_violation;
    Long_fork;
    Lost_update;
    Write_skew;
  ]

let name = function
  | Thin_air_read -> "ThinAirRead"
  | Aborted_read -> "AbortedRead"
  | Future_read -> "FutureRead"
  | Not_my_last_write -> "NotMyLastWrite"
  | Not_my_own_write -> "NotMyOwnWrite"
  | Intermediate_read -> "IntermediateRead"
  | Non_repeatable_reads -> "NonRepeatableReads"
  | Session_guarantee_violation -> "SessionGuaranteeViolation"
  | Non_monotonic_read -> "NonMonotonicRead"
  | Fractured_read -> "FracturedRead"
  | Causality_violation -> "CausalityViolation"
  | Long_fork -> "LongFork"
  | Lost_update -> "LostUpdate"
  | Write_skew -> "WriteSkew"

let of_name s = List.find_opt (fun k -> name k = s) all

let description = function
  | Thin_air_read -> "a transaction reads a value out of thin air"
  | Aborted_read -> "a transaction reads a value from an aborted transaction"
  | Future_read ->
      "a transaction reads from a write that occurs later in the same \
       transaction"
  | Not_my_last_write ->
      "a transaction reads from its own but not the last write on the object"
  | Not_my_own_write ->
      "a transaction does not read from its own write on the object"
  | Intermediate_read ->
      "a transaction reads a value later overwritten by the writing \
       transaction"
  | Non_repeatable_reads ->
      "a transaction reads the same object twice and receives different \
       values"
  | Session_guarantee_violation ->
      "a transaction misses the effect of a preceding transaction in its \
       session"
  | Non_monotonic_read ->
      "T3 reads y from T2 and then reads x from T1, but T2 overwrote T1 on x"
  | Fractured_read -> "T1 updates both x and y, but T2 observes only x"
  | Causality_violation ->
      "T3 sees the effect of T2 on y but misses the effect of T1, seen by T2"
  | Long_fork ->
      "two observers see the two concurrent writes in opposite orders"
  | Lost_update ->
      "two concurrent read-modify-writes of the same object both commit"
  | Write_skew ->
      "two concurrent transactions read both objects and write one each"

(* Witness histories.  Keys: x = 0, y = 1.  All transactions are pairwise
   concurrent by default (`Overlap), so RT adds nothing to SO.  The
   initial transaction writes 0 to every key. *)
let history kind =
  let open Builder in
  match kind with
  | Thin_air_read ->
      history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 42 ] ]
  | Aborted_read ->
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 ~status:Txn.Aborted [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 1 ];
        ]
  | Future_read ->
      history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 1; w 0 1 ] ]
  | Not_my_last_write ->
      history ~keys:1 ~sessions:1
        [ txn ~session:1 [ r 0 0; w 0 1; w 0 2; r 0 1 ] ]
  | Not_my_own_write ->
      history ~keys:1 ~sessions:1 [ txn ~session:1 [ r 0 0; w 0 1; r 0 0 ] ]
  | Intermediate_read ->
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 [ r 0 0; w 0 1; w 0 2 ];
          txn ~session:2 [ r 0 1 ];
        ]
  | Non_repeatable_reads ->
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 0; r 0 1 ];
        ]
  | Session_guarantee_violation ->
      history ~keys:1 ~sessions:1
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:1 [ r 0 0 ];
        ]
  | Non_monotonic_read ->
      history ~keys:2 ~sessions:3
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 1; w 0 2; r 1 0; w 1 3 ];
          txn ~session:3 [ r 1 3; r 0 1 ];
        ]
  | Fractured_read ->
      history ~keys:2 ~sessions:2
        [
          txn ~session:1 [ r 0 0; w 0 1; r 1 0; w 1 2 ];
          txn ~session:2 [ r 0 1; r 1 0 ];
        ]
  | Causality_violation ->
      history ~keys:2 ~sessions:3
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 1; r 1 0; w 1 2 ];
          txn ~session:3 [ r 1 2; r 0 0 ];
        ]
  | Long_fork ->
      history ~keys:2 ~sessions:4
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 1 0; w 1 2 ];
          txn ~session:3 [ r 0 1; r 1 0 ];
          txn ~session:4 [ r 0 0; r 1 2 ];
        ]
  | Lost_update ->
      history ~keys:1 ~sessions:2
        [
          txn ~session:1 [ r 0 0; w 0 1 ];
          txn ~session:2 [ r 0 0; w 0 2 ];
        ]
  | Write_skew ->
      history ~keys:2 ~sessions:2
        [
          txn ~session:1 [ r 0 0; r 1 0; w 0 1 ];
          txn ~session:2 [ r 0 0; r 1 0; w 1 2 ];
        ]

let intra = function
  | Thin_air_read | Aborted_read | Future_read | Not_my_last_write
  | Not_my_own_write | Intermediate_read | Non_repeatable_reads ->
      true
  | Session_guarantee_violation | Non_monotonic_read | Fractured_read
  | Causality_violation | Long_fork | Lost_update | Write_skew ->
      false

(* Every witness violates its level and everything stronger; WRITESKEW is
   the only one SI admits. *)
let satisfies kind (level : Checker.level) =
  match (kind, level) with
  | Write_skew, Checker.SI -> true
  | _, (Checker.SSER | Checker.SER | Checker.SI) -> false
