(** Sequential replay oracle and serialization certificates.

    When CHECKSER / CHECKSSER accept a history, the dependency graph is
    acyclic and any topological order is a witness serial schedule.
    {!certificate} extracts one; {!replay} validates any proposed schedule
    by executing the transactions one at a time against an in-memory
    sequential store and comparing every read with what the client
    actually observed.

    Together they turn the checker's "PASS" into an independently
    verifiable artifact — and give the test suite a completeness oracle
    that exercises the whole pipeline. *)

val replay : History.t -> Txn.id list -> (unit, string) result
(** [replay h order] executes the committed transactions in [order]
    (which must be exactly the committed non-initial transactions of [h],
    each once) against a sequential store initialized to 0.  Reads first
    see the transaction's own earlier writes, then the store.  [Error]
    describes the first mismatch. *)

val certificate :
  ?rt_mode:Deps.rt_mode -> Checker.level -> History.t ->
  (Txn.id list, Checker.violation) result
(** A serial schedule witnessing SER (or SSER, where it is additionally
    consistent with real time): any topological order of the acyclic
    dependency graph.  The result always {!replay}s successfully.
    @raise Invalid_argument at SI: snapshot isolation is not witnessed by
    a single serial order. *)
