bench/ablation.ml: Bench_util Checker Db Deps Fault Index Isolation List Polygraph Printf Prune Scheduler Stats Targeted
