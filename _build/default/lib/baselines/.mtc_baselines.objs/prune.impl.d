lib/baselines/prune.ml: Array Digraph List Polygraph Reach Unix
