(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Values are kept in the low 32 bits of a native int — OCaml ints are 63
   bits, so no masking subtleties. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)
