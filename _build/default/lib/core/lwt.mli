(** Lightweight-transaction (LWT) histories (paper Sections II-F, IV-E).

    Each event is a single atomic operation on one object, with wall-clock
    (here: logical) start and finish times:
    - [Insert]: a successful insert-if-not-exists — equivalent to a plain
      write installing the object's initial value;
    - [Rw]: a successful read&write / Compare-And-Set — reads [expected]
      and writes [new_value];
    - [Read]: a plain read (e.g. a failed CAS), observing [value].

    LWT histories carry no initial transaction; each object's value is
    installed by exactly one [Insert].  On such histories SSER degenerates
    to linearizability. *)

type op =
  | Insert of { key : Op.key; value : Op.value }
  | Rw of { key : Op.key; expected : Op.value; new_value : Op.value }
  | Read of { key : Op.key; value : Op.value }

type event = { id : int; session : int; op : op; start : int; finish : int }

type t = { events : event array; num_keys : int; num_sessions : int }

val make : num_keys:int -> num_sessions:int -> event list -> t
(** Sorts nothing; event ids must be distinct.
    @raise Invalid_argument on duplicate ids or [finish < start]. *)

val key_of_event : event -> Op.key

val restrict : t -> Op.key -> event array
(** The sub-history on one object — linearizability is local (Herlihy &
    Wing), so the checker works per object. *)

val pp_event : Format.formatter -> event -> unit
