(** Durability manager for the checking service: one {!Wal} per shard
    plus the generation protocol tying WALs to {!Snapshot_store}
    snapshots.

    Restore contract: {!open_dir} loads, for every shard found on disk,
    the newest valid snapshot generation and replays that generation's
    WAL tail on top of it — poisoned sessions re-render byte-identical
    counterexamples, live sessions resume at exactly the last frame the
    WAL holds.  It then immediately re-checkpoints everything under the
    {e current} shard count (sessions re-home to [sid mod nshards]), so
    a restart may change [-j] freely.

    Threading: after {!open_dir}, each shard's {!append}/{!barrier}/
    {!checkpoint} must be called from the domain that owns that shard
    (the same discipline as the checking itself) — different shards
    never contend. *)

type restored = {
  r_sid : int;
  r_meta : Snapshot_store.meta;
  r_last_seq : int;  (** highest applied feed sequence number *)
  r_state : Snapshot_store.state;
      (** [Live] states are never poisoned — a violation hit during
          replay is rendered to [Poisoned] on the spot *)
}

type replay_stats = {
  rs_frames : int;  (** WAL records replayed *)
  rs_ms : float;  (** wall-clock restore time *)
  rs_sessions : int;  (** sessions restored *)
}

type t

val open_dir :
  ?on_fsync:(int -> unit) ->
  dir:string ->
  nshards:int ->
  sync:Wal.sync ->
  render:(level:Checker.level -> Checker.violation -> string option * string) ->
  unit ->
  (t * restored list * int * replay_stats, string) result
(** Open (creating if needed) a persistence directory, restore whatever
    it holds, start a fresh generation.  The [int] is the sid allocator
    floor (strictly above every restored sid).  [render] turns a
    violation found during replay into its [(anomaly, rendered)] pair —
    pass the exact renderer the live server uses, byte-identity of
    counterexamples depends on it.  [on_fsync] is the metrics hook,
    called with each fsync's duration in ns. *)

val dir : t -> string

val append : t -> shard:int -> Wal.record -> int
(** Append to the shard's WAL; returns bytes written.  Call {e before}
    applying the record to the checker (write-ahead). *)

val flush : t -> shard:int -> unit
(** {!Wal.flush} on the shard's WAL — the group-commit drain barrier;
    call when the shard's ingress goes idle. *)

val barrier : t -> shard:int -> unit
(** {!Wal.barrier} on the shard's WAL — before acknowledging a sync
    verdict in [Batch] mode. *)

val checkpoint :
  t -> shard:int -> next_sid:int -> Snapshot_store.entry list -> unit
(** Snapshot this shard's sessions and rotate its WAL to a fresh
    generation; the old generation's files are unlinked once the new
    ones are durable. *)

val close : t -> unit
(** Close every WAL (final fsync per policy).  Idempotent. *)
