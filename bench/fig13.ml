(* Figures 13 + 14: bug-detection effectiveness and end-to-end time of MTC
   vs Elle on buggy engines — "pg" (PostgreSQL-12.3-like: SSI disabled
   with some probability) and "mongo" (MongoDB-4.2.6-like: aborted writes
   leak).  Each trial runs a workload until ~[txns] transactions commit
   and checks the result; we count detecting trials (Figure 13) and track
   mean generation/verification times (Figure 14).

   Workloads per the paper: "mini" (MT, max 4 ops -> MTC), "append"
   (list-append -> Elle), "wr" (read-write registers -> Elle), the latter
   two with max_txn_len in {2,4,8,16}; 10 objects, exponential access
   distribution. *)

type outcome = { detected : int; trials : int; gen_s : float; verify_s : float }

let trials_per_config () = if !Bench_util.smoke then 2 else 10
let txns_per_trial () = if !Bench_util.smoke then 100 else 400

let run_trial ~db ~spec ~check ~seed =
  let db = { db with Db.seed = db.Db.seed + (1000 * seed) } in
  let sched = { Scheduler.default_params with seed } in
  let r, gen_s =
    Stats.time_it (fun () -> Scheduler.run ~params:sched ~db ~spec ())
  in
  let found, verify_s = Stats.time_it (fun () -> check r) in
  (found, gen_s, verify_s)

let run_config ~db ~make_spec ~check =
  let trials = trials_per_config () in
  let detected = ref 0 and gen = ref 0.0 and verify = ref 0.0 in
  for seed = 1 to trials do
    let found, g, v = run_trial ~db ~spec:(make_spec ~seed) ~check ~seed in
    if found then incr detected;
    gen := !gen +. g;
    verify := !verify +. v
  done;
  {
    detected = !detected;
    trials;
    gen_s = !gen /. float_of_int trials;
    verify_s = !verify /. float_of_int trials;
  }

let mini_spec ~seed =
  Mt_gen.generate
    { Mt_gen.num_sessions = 10; num_txns = txns_per_trial (); num_keys = 10;
      dist = Distribution.Exponential 1.0; seed }

let append_spec ~len ~seed =
  Append_gen.generate
    { Append_gen.num_sessions = 10; num_txns = txns_per_trial (); num_keys = 10;
      max_txn_len = len; registers = false;
      dist = Distribution.Exponential 1.0; seed }

let wr_spec ~len ~seed =
  Append_gen.generate
    { Append_gen.num_sessions = 10; num_txns = txns_per_trial (); num_keys = 10;
      max_txn_len = len; registers = true;
      dist = Distribution.Exponential 1.0; seed }

let check_mtc level (r : Scheduler.result) =
  not (Checker.passes (Checker.check level r.Scheduler.history))

let check_elle_append level (r : Scheduler.result) =
  match r.Scheduler.elle with
  | Some log -> not (Elle.check_append ~level log).Elle.ok
  | None -> false

let check_elle_wr level (r : Scheduler.result) =
  not (Elle.check_registers ~level r.Scheduler.history).Elle.ok

let lens () = Bench_util.sweep [ 2; 4; 8; 16 ]

let run_engine ~engine_name ~db ~level =
  Bench_util.subsection
    (Printf.sprintf "%s: detections out of %d trials (%d committed txns each)"
       engine_name (trials_per_config ()) (txns_per_trial ()));
  let configs =
    ("mini (MTC, len<=4)", (fun ~seed -> mini_spec ~seed), check_mtc level)
    :: List.map
         (fun len ->
           ( Printf.sprintf "append len<=%d (Elle)" len,
             (fun ~seed -> append_spec ~len ~seed),
             check_elle_append level ))
         (lens ())
    @ List.map
        (fun len ->
          ( Printf.sprintf "wr len<=%d (Elle)" len,
            (fun ~seed -> wr_spec ~len ~seed),
            check_elle_wr level ))
        (lens ())
  in
  (* Each config is an independent (seeded) batch of trials: fan the
     configs out over the bench pool. *)
  let results =
    Bench_util.par_map
      (fun (name, make_spec, check) ->
        (name, run_config ~db ~make_spec ~check))
      configs
  in
  Bench_util.print_table
    ~header:[ "workload"; "detected"; "gen avg (ms)"; "verify avg (ms)" ]
    (List.map
       (fun (name, o) ->
         [
           name;
           Printf.sprintf "%d/%d" o.detected o.trials;
           Bench_util.ms o.gen_s;
           Bench_util.ms o.verify_s;
         ])
       results)

let run () =
  Bench_util.section
    "Figures 13+14: detection effectiveness and end-to-end time, MTC vs Elle";
  run_engine ~engine_name:"pg (SER engine, write-skew bug)"
    ~db:{ Db.level = Isolation.Serializable; fault = Fault.Write_skew 0.2;
          num_keys = 10; seed = 131 }
    ~level:Checker.SER;
  run_engine ~engine_name:"mongo (SI engine, aborted-read bug)"
    ~db:{ Db.level = Isolation.Snapshot; fault = Fault.Aborted_read 0.03;
          num_keys = 10; seed = 132 }
    ~level:Checker.SI
