(* CLOCK_MONOTONIC via the bechamel stub: an [@unboxed] [@@noalloc]
   external, so [Int64.to_int] on its result stays unboxed in native
   code and a timestamp read allocates nothing. *)

let now_ns () = Int64.to_int (Monotonic_clock.clock_linux_get_time ())
