type dep = RT | SO | WR of Op.key | WW of Op.key | RW of Op.key | Rt_chain

let dep_name = function
  | RT -> "RT"
  | SO -> "SO"
  | WR _ -> "WR"
  | WW _ -> "WW"
  | RW _ -> "RW"
  | Rt_chain -> "rt*"

let pp_dep ppf = function
  | RT -> Format.pp_print_string ppf "RT"
  | SO -> Format.pp_print_string ppf "SO"
  | WR k -> Format.fprintf ppf "WR(x%d)" k
  | WW k -> Format.fprintf ppf "WW(x%d)" k
  | RW k -> Format.fprintf ppf "RW(x%d)" k
  | Rt_chain -> Format.pp_print_string ppf "rt*"

type rt_mode = No_rt | Rt_naive | Rt_sweep

type t = {
  idx : Index.t;
  graph : dep Digraph.t;
  num_txn_vertices : int;
  mutable frozen : dep Csr.t option;
}

let freeze t =
  match t.frozen with
  | Some c -> c
  | None ->
      let c = Csr.of_digraph t.graph in
      t.frozen <- Some c;
      c

type error = Unresolved_read of { txn : Txn.id; key : Op.key; value : Op.value }

let pp_error ppf (Unresolved_read { txn; key; value }) =
  Format.fprintf ppf
    "read of %d on x%d in T%d is not attributable to a committed final write"
    value key txn

let build ?(skew = 0) ~rt (idx : Index.t) =
  let m = Index.num_vertices idx in
  let size = match rt with Rt_sweep -> 2 * m | No_rt | Rt_naive -> m in
  let g = Digraph.create size in
  (* SO edges (lines 6-7). *)
  List.iter
    (fun (a, b) ->
      Digraph.add_edge g (Index.vertex idx a) (Index.vertex idx b) SO)
    (History.so_pairs idx.history);
  (* WR edges, and WW by the RMW inference (lines 8-11).  While adding
     them, group readers and overwriters per (writer vertex, key) so the RW
     edges (lines 14-15) can be composed in one pass. *)
  let readers : (int * Op.key, int list ref) Hashtbl.t = Hashtbl.create (4 * m) in
  let overwriters : (int * Op.key, int list ref) Hashtbl.t = Hashtbl.create m in
  let push tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := v :: !r
    | None -> Hashtbl.replace tbl key (ref [ v ])
  in
  let error = ref None in
  Array.iteri
    (fun sv (s : Txn.t) ->
      List.iter
        (fun (k, v) ->
          match Index.writer_of idx k v with
          | Index.Final w when w <> s.id ->
              let wv = Index.vertex idx w in
              Digraph.add_edge g wv sv (WR k);
              push readers (wv, k) sv;
              if Txn.writes_key s k then begin
                Digraph.add_edge g wv sv (WW k);
                push overwriters (wv, k) sv
              end
          | Index.Final _ | Index.Intermediate _ | Index.Aborted _
          | Index.Nobody ->
              if !error = None then
                error := Some (Unresolved_read { txn = s.id; key = k; value = v }))
        (Txn.external_reads s))
    idx.committed;
  match !error with
  | Some e -> Error e
  | None ->
      (* RW edges: T' -WR(x)-> T and T' -WW(x)-> S give T -RW(x)-> S. *)
      Hashtbl.iter
        (fun (wv, k) rs ->
          match Hashtbl.find_opt overwriters (wv, k) with
          | None -> ()
          | Some ws ->
              List.iter
                (fun t ->
                  List.iter
                    (fun s -> if t <> s then Digraph.add_edge g t s (RW k))
                    !ws)
                !rs)
        readers;
      (* RT edges for SSER. *)
      (match rt with
      | No_rt -> ()
      | Rt_naive ->
          for i = 0 to m - 1 do
            for j = 0 to m - 1 do
              if i <> j then begin
                let a = Index.txn_of_vertex idx i
                and b = Index.txn_of_vertex idx j in
                (* commit + skew cannot overflow (logical clocks are
                     small); start - skew would underflow on the initial
                     transaction's min_int timestamps. *)
                if a.commit_ts + skew < b.start_ts then
                  Digraph.add_edge g i j RT
              end
            done
          done
      | Rt_sweep ->
          (* Helper vertex m + r stands for "every transaction among the
             r+1 earliest commits has finished".  Binary search start
             times against the sorted commit times. *)
          let by_commit = Array.init m (fun v -> v) in
          Array.sort
            (fun a b ->
              compare (Index.txn_of_vertex idx a).Txn.commit_ts
                (Index.txn_of_vertex idx b).Txn.commit_ts)
            by_commit;
          let commits =
            Array.map (fun v -> (Index.txn_of_vertex idx v).Txn.commit_ts) by_commit
          in
          for r = 0 to m - 1 do
            Digraph.add_edge g by_commit.(r) (m + r) Rt_chain;
            if r + 1 < m then Digraph.add_edge g (m + r) (m + r + 1) Rt_chain
          done;
          for sv = 0 to m - 1 do
            let start = (Index.txn_of_vertex idx sv).Txn.start_ts in
            (* Largest r with commits.(r) < start. *)
            let lo = ref 0 and hi = ref (m - 1) and best = ref (-1) in
            while !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              if commits.(mid) + skew < start then begin
                best := mid;
                lo := mid + 1
              end
              else hi := mid - 1
            done;
            if !best >= 0 then Digraph.add_edge g (m + !best) sv Rt_chain
          done);
      Ok { idx; graph = g; num_txn_vertices = m; frozen = None }

let to_txn_cycle t cycle =
  let is_helper v = v >= t.num_txn_vertices in
  (* Rotate so the cycle starts at a transaction vertex. *)
  let rec rotate seen = function
    | [] -> []
    | ((u, _, _) :: _) as c when not (is_helper u) -> c
    | e :: rest when seen < List.length cycle -> rotate (seen + 1) (rest @ [ e ])
    | c -> c
  in
  let cycle = rotate 0 cycle in
  let txn_id v = (Index.txn_of_vertex t.idx v).Txn.id in
  let rec contract = function
    | [] -> []
    | (u, Rt_chain, v) :: rest when is_helper v ->
        (* Walk the helper run until it re-enters a transaction vertex. *)
        let rec skip = function
          | (_, _, w) :: rest' when is_helper w -> skip rest'
          | (_, _, w) :: rest' -> (w, rest')
          | [] -> failwith "Deps.to_txn_cycle: dangling helper run"
        in
        let exit_vertex, rest' = skip rest in
        (txn_id u, RT, txn_id exit_vertex) :: contract rest'
    | (u, lab, v) :: rest -> (txn_id u, lab, txn_id v) :: contract rest
  in
  contract cycle

let dep_edges t =
  Digraph.fold_edges t.graph
    (fun acc u lab v ->
      match lab with
      | SO | WR _ | WW _ -> (u, lab, v) :: acc
      | RT | RW _ | Rt_chain -> acc)
    []
  |> List.rev

let rw_succ t v =
  List.filter_map
    (fun (w, lab) -> match lab with RW k -> Some (k, w) | _ -> None)
    (Digraph.succ t.graph v)
