lib/runner/scheduler.ml: Array Db Elle_log History Intern Isolation List Rng Spec Txn
