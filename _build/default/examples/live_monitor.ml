(* Live isolation monitoring: the Online checker consumes transactions as
   they commit (IsoVista's "checking-as-a-service" mode) and raises the
   alarm at the exact transaction where the stream turns inconsistent —
   here against an engine whose lost-update protection fails rarely and
   intermittently (p = 2%).

     dune exec examples/live_monitor.exe *)

let () =
  let keys = 12 in
  print_endline
    "Monitoring a snapshot-isolation engine with a rare lost-update bug...";
  let spec =
    Mt_gen.generate
      { Mt_gen.num_sessions = 8; num_txns = 2000; num_keys = keys;
        dist = Distribution.Uniform; seed = 21 }
  in
  let db =
    { Db.level = Isolation.Snapshot; fault = Fault.Lost_update 0.02;
      num_keys = keys; seed = 21 }
  in
  let history = (Scheduler.run ~db ~spec ()).Scheduler.history in
  (* The commit-ordered stream a monitoring proxy would observe. *)
  let stream =
    Array.to_list history.History.txns
    |> List.filter (fun (t : Txn.t) -> t.Txn.id <> History.init_id)
    |> List.sort (fun (a : Txn.t) b -> compare a.Txn.commit_ts b.Txn.commit_ts)
  in
  let monitor = Online.create ~level:Checker.SI ~num_keys:keys () in
  let alarm = ref None in
  List.iter
    (fun txn ->
      if !alarm = None then
        match Online.add_txn monitor txn with
        | Online.Ok_so_far -> ()
        | Online.Violation v -> alarm := Some v)
    stream;
  (match !alarm with
  | Some v ->
      Printf.printf
        "ALARM after %d streamed transactions (of %d total):\n%s"
        (Online.txns_seen monitor)
        (List.length stream)
        (Report.render history Checker.SI v)
  | None ->
      print_endline "stream completed with no alarm (fault never triggered)");
  (* The batch checker agrees, post hoc. *)
  Printf.printf "batch verdict for the full history: %s\n"
    (Format.asprintf "%a" Checker.pp_outcome (Checker.check_si history))
