(* Figure 8: verification performance on SI mini-transaction histories —
   MTC-SI vs PolySI, same four sweeps as Figure 7. *)

let row label (r : Scheduler.result) =
  let h = r.Scheduler.history in
  let mtc = Bench_util.time_median (fun () -> Checker.check_si h) in
  let res = ref None in
  let polysi = Bench_util.time_median (fun () -> res := Some (Polysi.check h)) in
  let stats = (Option.get !res).Polysi.stats in
  [
    label;
    Bench_util.ms mtc;
    Bench_util.ms polysi;
    Printf.sprintf "%.0fx" (polysi /. mtc);
    string_of_int stats.Polysi.constraints_total;
    string_of_int stats.Polysi.constraints_pruned;
  ]

let header =
  [ "config"; "MTC-SI (ms)"; "PolySI (ms)"; "speedup"; "constraints"; "pruned" ]

let run () =
  Bench_util.section "Figure 8: SI verification, MTC-SI vs PolySI (MT histories)";
  let level = Isolation.Snapshot in
  let txns = Bench_util.scale 2000 in

  Bench_util.subsection "(a) object-access distribution (2000 txns, 400 keys)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun dist ->
         let r =
           Bench_util.mt_history ~level ~dist ~keys:400 ~txns ~seed:201 ()
         in
         row (Distribution.kind_name dist) r)
       (Bench_util.sweep Distribution.all_kinds));

  Bench_util.subsection "(b) #objects (2000 txns, zipfian)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun keys ->
         let r =
           Bench_util.mt_history ~level ~dist:(Distribution.Zipfian 0.99) ~keys
             ~txns ~seed:202 ()
         in
         row (Printf.sprintf "%d objects" keys) r)
       (Bench_util.sweep [ 1600; 800; 400; 200 ]));

  Bench_util.subsection "(c) #sessions (2000 txns, 400 keys, uniform)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun sessions ->
         let r =
           Bench_util.mt_history ~level ~sessions ~keys:400 ~txns ~seed:203 ()
         in
         row (Printf.sprintf "%d sessions" sessions) r)
       (Bench_util.sweep [ 4; 8; 16; 32 ]));

  Bench_util.subsection "(d) #txns (400 keys, uniform)";
  Bench_util.print_table ~header
    (Bench_util.par_map
       (fun txns ->
         let r = Bench_util.mt_history ~level ~keys:400 ~txns ~seed:204 () in
         row (Printf.sprintf "%d txns" txns) r)
       (Bench_util.sweep (List.map Bench_util.scale [ 1000; 2000; 4000; 8000 ])))
