lib/core/index.mli: Hashtbl History Op Txn
