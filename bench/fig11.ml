(* Figure 11: abort rates of GT vs MT workloads — (a) across #sessions and
   (b) across skew (transactions per hot object).  Run on the engine at
   SER (SSI) and SI, as in the paper's PostgreSQL setup. *)

let rates ~level ~sessions ~keys ~txns ~seed =
  let mt =
    Bench_util.mt_history ~level ~sessions ~keys ~txns ~seed ()
  in
  let gt =
    (* The paper uses a moderate GT size of 20 ops/txn here. *)
    Bench_util.gt_history ~level ~sessions ~keys ~txns ~ops:20 ~seed ()
  in
  (Scheduler.abort_rate mt, Scheduler.abort_rate gt)

let header = [ "config"; "MT abort %"; "GT abort %" ]

let run () =
  Bench_util.section "Figure 11: abort rates, GT vs MT workloads";

  let txns = Bench_util.scale 1500 in
  List.iter
    (fun (level, lname) ->
      Bench_util.subsection
        (Printf.sprintf "(a) #sessions at %s (1500 txns, 60 keys)" lname);
      Bench_util.print_table ~header
        (Bench_util.par_map
           (fun sessions ->
             let mt, gt = rates ~level ~sessions ~keys:60 ~txns ~seed:501 in
             [ Printf.sprintf "%d sessions" sessions;
               Bench_util.pct mt; Bench_util.pct gt ])
           (Bench_util.sweep [ 2; 4; 8; 16; 32 ]));

      Bench_util.subsection
        (Printf.sprintf
           "(b) skew at %s (1500 txns, 10 sessions; fewer objects = more txns per object)"
           lname);
      Bench_util.print_table
        ~header:[ "txns/object"; "MT abort %"; "GT abort %" ]
        (Bench_util.par_map
           (fun keys ->
             let mt, gt = rates ~level ~sessions:10 ~keys ~txns ~seed:502 in
             [ string_of_int (txns / keys); Bench_util.pct mt; Bench_util.pct gt ])
           (Bench_util.sweep [ 300; 150; 75; 30; 15 ])))
    [ (Isolation.Serializable, "SER"); (Isolation.Snapshot, "SI") ]
