lib/sat/acyclicity.ml: Array Hashtbl List Lit Pearce_kelly Solver
