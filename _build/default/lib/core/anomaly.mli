(** The 14 well-documented isolation anomalies captured by
    mini-transactions (paper Figure 5 / Table I), each materialized as a
    concrete MT history, with the expected verdict per isolation level.

    These serve three purposes: documentation (the paper's claim that MTs
    are semantically rich), conformance tests for the checkers, and seeds
    for the fault-injecting database simulator. *)

type kind =
  | Thin_air_read  (** (a) value out of thin air *)
  | Aborted_read  (** (b) Adya G1a *)
  | Future_read  (** (c) reads an own later write *)
  | Not_my_last_write  (** (d) *)
  | Not_my_own_write  (** (e) *)
  | Intermediate_read  (** (f) Adya G1b *)
  | Non_repeatable_reads  (** (g) *)
  | Session_guarantee_violation  (** (h) misses own session's effect *)
  | Non_monotonic_read  (** (i) *)
  | Fractured_read  (** (j) observes half of an atomic update *)
  | Causality_violation  (** (k) *)
  | Long_fork  (** (l) two observers disagree on concurrent writes *)
  | Lost_update  (** (m) the DIVERGENCE pattern *)
  | Write_skew  (** (n) SI-legal, SER-illegal *)

val all : kind list
val name : kind -> string
val of_name : string -> kind option
val description : kind -> string

val history : kind -> History.t
(** The Figure 5 witness history (all transactions pairwise concurrent, so
    SSER and SER verdicts coincide). *)

val satisfies : kind -> Checker.level -> bool
(** Expected verdict of the witness history at each level, e.g.
    [satisfies Write_skew SI = true] but
    [satisfies Write_skew SER = false]. *)

val intra : kind -> bool
(** Is this one of the intra-transactional / INT-screen anomalies
    (Figure 5a–5g)? *)
