(** The MT workload generator (paper Section V-A1).

    Parameters: number of sessions, transactions (total, distributed
    uniformly across sessions), objects, and the object-access
    distribution controlling skewness.  Every generated transaction is a
    mini-transaction (Definition 8): one of the seven shapes of
    {!Mini.shape}, with keys drawn from the distribution. *)

type params = {
  num_sessions : int;
  num_txns : int;  (** total, spread uniformly over sessions *)
  num_keys : int;
  dist : Distribution.kind;
  seed : int;
}

val default : params
(** 10 sessions × 1000 txns over 100 keys, uniform. *)

val generate : params -> Spec.t

val shape_weights : (Mini.shape * int) list
(** The sampling weights (read-modify-write shapes dominate so that the
    version chains grow and anomalies have material to appear in). *)
