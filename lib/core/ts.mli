(** Timestamp-assisted version orders — the Vbox fast path (ROADMAP item
    2; "Vbox: Efficient Black-Box Serializability Verification", arxiv
    2503.05163).

    When the engine exposes begin/commit timestamps, the version order of
    every key is simply its committed final writes sorted by
    [(commit_ts, vertex)], and the writer of a read is {e predicted} by
    binary search — the latest write with [commit_ts <= start_ts]
    (non-strict, matching the MVCC engine's visibility rule) — instead of
    resolved through the value tables.

    - [Verify] certifies every prediction against the value actually read
      and falls back {e per key} to full MTC value inference on any
      disagreement, so verdicts and rendered counterexamples stay
      byte-identical with [Ignore]; the disagreements themselves are
      reported as timestamp-lie diagnostics.
    - [Trust] takes the timestamps at face value: no duplicate-value
      screen, no value tables, every read attributed to its predicted
      writer.  Fastest, but a lying timestamp oracle can change the
      verdict — use [Verify] to detect one.
    - [Ignore] is the classic value-only pipeline (the default).

    The chain build reuses the striped key machinery of {!Index}: slots
    are grouped per key and the per-stripe passes share no mutable state,
    so the structure is identical for every pool size. *)

type mode = Ignore | Trust | Verify

val mode_name : mode -> string
val mode_of_string : string -> mode option
val all_modes : mode list

(** One read whose timestamp prediction disagreed with the value it
    actually observed — evidence of a lying (or skewed) timestamp
    oracle.  [d_actual] is what value resolution concluded;
    [d_actual_commit] is that writer's commit timestamp when it exists
    (committed writers), else [min_int]. *)
type diag = {
  d_key : Op.key;
  d_value : Op.value;
  d_reader : Txn.id;
  d_reader_start : int;
  d_predicted : Txn.id;
  d_predicted_commit : int;
  d_actual : Index.writer;
  d_actual_commit : int;
}

type t = {
  idx : Index.t;
  mode : mode;  (** [Trust] or [Verify]; never [Ignore] *)
  key_off : int array;  (** key -> first chain slot; length num_keys+1 *)
  c_vertex : int array;  (** slot -> committed vertex of the writer *)
  c_commit : int array;  (** slot -> the writer's commit_ts *)
  c_value : int array;  (** slot -> the final value written to the key *)
  op_base : int array;
      (** committed position -> first global op position; length m+1 *)
  pred_slot : int array;
      (** global op position -> predicted slot cached by certification,
          or -1; lets {!Deps.build} skip re-predicting *)
  slow : Bytes.t;
      (** per-key certification-failed flag: reads of a slow key fall
          back to value inference in {!Deps.build} *)
  mutable slow_keys : int;
  mutable fast_reads : int;  (** external reads judged by prediction *)
  mutable mismatched_reads : int;
  mutable diags : diag list;  (** capped sample, newest first *)
  mutable bad_windows : (Txn.id * int * int) list;
      (** committed transactions with [start_ts > commit_ts] *)
}
(** Mutable counters and flags are filled by {!Int_check.check_ts}
    during certification (serially); treat them as read-only elsewhere. *)

val build : ?pool:Pool.t -> mode:mode -> Index.t -> (t, string) result
(** Build the per-key version chains from commit timestamps.  In
    [Verify] mode this also runs the duplicate-value screen (the same
    first-in-scan-order candidate and message as
    {!History.unique_values}, so a [Malformed] verdict is byte-identical
    with the [Ignore] pipeline); [Trust] skips it.
    @raise Invalid_argument on [mode = Ignore]. *)

val total_slots : t -> int

val predict : t -> Op.key -> start_ts:int -> int
(** The slot of the latest version of the key with
    [commit_ts <= start_ts].  Total: the initial transaction's write
    (commit_ts = min_int) sits at the bottom of every chain. *)

val predict_memo : t -> int array -> Op.key -> start_ts:int -> int
(** {!predict} seeded by a caller-owned per-key hint array (length
    num_keys, initialized to -1): returns exactly [predict]'s slot, but
    mostly-increasing start timestamps turn the binary search into an
    amortized O(1) forward walk.  The hint array must not be shared
    across concurrent callers. *)

val cache_slot : t -> sv:int -> op:int -> int -> unit
(** Record the predicted slot of the external read at committed position
    [sv], op index [op].  Certification slices own disjoint committed
    ranges, so concurrent caching is race-free. *)

val cached_slot : t -> sv:int -> op:int -> int
(** The cached prediction, or -1 if that read was never certified (or
    mismatched, in which case its key is slow anyway). *)

val slot_vertex : t -> int -> int
val slot_writer : t -> int -> Txn.id
val slot_value : t -> int -> Op.value
val slot_commit : t -> int -> int

val is_fast_key : t -> Op.key -> bool
(** [Trust]: always.  [Verify]: true unless certification flagged the
    key, in which case its reads resolve through the value tables. *)

val mark_slow : t -> Op.key -> unit
(** Flag a key for per-key fallback (certification found a mismatched
    read).  Not thread-safe: call only from the serial judgement pass. *)

val max_diags : int

val add_diag : t -> diag -> unit
(** Record a mismatch sample (keeps at most {!max_diags}). *)

val render_report : t -> string option
(** Human-readable certification report: mismatch counts, a sample of
    offending (reader, predicted writer, actual writer) triples with
    their disagreeing timestamps, and any inverted commit windows.
    [None] when certification saw nothing suspicious. *)
