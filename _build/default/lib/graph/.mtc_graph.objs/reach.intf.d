lib/graph/reach.mli: Bytes Digraph
