lib/sat/solver.mli: Lit
