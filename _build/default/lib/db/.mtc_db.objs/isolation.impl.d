lib/db/isolation.ml: Checker
