(** The networked checking daemon: an epoll event loop multiplexing many
    concurrent client sessions over Unix-domain and TCP sockets, each
    session owning its own {!Online.t} (level, key-space size and clock
    skew negotiated at open).

    One event-loop systhread owns every socket (accept, frame parsing,
    egress) through {!Evloop} — a connection costs a file descriptor and
    a buffer, not a systhread, so tens of thousands of idle connections
    are cheap.  Checking runs on a fixed array of shards backed by a
    {!Pool} of worker domains, so concurrent sessions verify on separate
    cores instead of serializing on the runtime lock.  A session is
    pinned to one shard for life: its items drain in FIFO order on a
    single domain at a time, so verdicts and counterexamples are
    bit-identical to a single-threaded server's.

    Durability ([wal_dir]): every accepted open/feed/close is appended
    to the owning shard's write-ahead log before it is applied, and
    shards periodically checkpoint their sessions to snapshots (SIGHUP
    under {!run}, {!checkpoint}, every [snapshot_every] feeds, and on
    {!stop}).  After a crash, a restarted server restores snapshot + WAL
    tail: clients re-attach with [Resume_session] and continue from the
    server-reported [last_seq]; poisoned sessions re-render the
    byte-identical counterexample.

    Guarantees:
    - per-session ingress queues are bounded ([queue_capacity]); a full
      queue pauses that connection's read interest (the hard
      backpressure the transport propagates) and emits advisory
      [Throttle]/[Resume] frames around the high-water mark;
    - a session that produced a [Violation] verdict is poisoned: every
      further feed or sync is answered with the identical rendered
      counterexample;
    - sessions idle longer than [idle_timeout] are closed with reason
      [R_idle] (restored-but-unresumed sessions are exempt);
    - a mid-frame client disconnect abandons only that connection —
      other connections and sessions are untouched;
    - {!stop} (and the SIGTERM handling of {!run}) drains the frames
      already accepted before saying [Bye]. *)

type addr = A_unix of string | A_tcp of string * int

type pin_fence =
  | Fence_off  (** detect and report only *)
  | Fence_close
      (** force-close a pinned session ([R_pinned]) so its retained
          memory is released and the live-words bound holds again *)

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or ["tcp:HOST:PORT"] ([tcp::PORT] binds 127.0.0.1;
    port 0 asks the kernel for an ephemeral port — read the result back
    with {!bound_addrs}). *)

val addr_to_string : addr -> string

type config = {
  listen : addr list;
  queue_capacity : int;  (** per-session ingress bound *)
  idle_timeout : float;  (** seconds; [<= 0] disables the janitor *)
  drain_delay : float;
      (** artificial per-item worker delay (seconds) — a test/bench knob
          to provoke backpressure deterministically; keep 0 in production *)
  server_name : string;  (** advertised in the [Welcome] frame *)
  metrics : Metrics.t;
  max_keys : int;  (** largest accepted [num_keys] in [Open_session] *)
  shards : int;
      (** checking shards = worker domains; [<= 0] picks
          [Pool.default_size ()] ([MTC_JOBS] or the recommended domain
          count) *)
  metrics_port : int option;
      (** serve Prometheus text exposition over HTTP on
          127.0.0.1:[port] ([GET /metrics]); [0] asks the kernel for an
          ephemeral port — read it back with {!metrics_port} *)
  wal_dir : string option;
      (** durability directory (created if missing); [None] = off *)
  wal_sync : Wal.sync;
      (** fsync policy for WAL appends; see {!Wal.sync} *)
  snapshot_every : int;
      (** per-shard feeds between automatic checkpoints; [0] = only on
          SIGHUP / {!checkpoint} / shutdown *)
  final_checkpoint : bool;
      (** checkpoint on {!stop} (default); [false] leaves the WAL tail
          in place — the crash-recovery tests use this to exercise tail
          replay without an actual [kill -9] *)
  gc : Online.gc;
      (** default watermark-GC policy for new sessions
          ([mtc serve --gc-watermark]); an [Open_session] frame may
          override it per session *)
  pin_warn_after : float;
      (** seconds a session may stall (no feed progress while retaining
          live words) before the janitor flags it as pinning the GC
          horizon; [<= 0] disables the detector *)
  pin_fence : pin_fence;
      (** what to do with a flagged session; see {!pin_fence} *)
  journal : string option;
      (** JSONL sink for the {!Obs.Journal} event stream (appended,
          created if missing); [None] = in-memory ring only *)
}

val default_config : config
(** No listeners (callers must fill [listen]), queue of 1024, no idle
    timeout, {!Metrics.global}, auto shard count, no metrics port, no
    durability ([wal_dir = None], [Batch] sync, no automatic
    snapshots), watermark GC off, pin detector off ([Fence_off]), no
    journal sink. *)

type t

val start : config -> t
(** Restore [wal_dir] (if set), bind every [listen] address and spawn
    the event-loop/shard/janitor threads.
    @raise Invalid_argument if [listen] is empty.
    @raise Unix.Unix_error if an address cannot be bound.
    @raise Failure if the persistence directory cannot be opened or
    restored. *)

val bound_addrs : t -> addr list
(** The actually-bound addresses (TCP port 0 resolved). *)

val metrics_port : t -> int option
(** The actually-bound metrics port (config port 0 resolved); [None]
    when the exposition endpoint is off. *)

val event_backend : t -> string
(** The {!Evloop} backend multiplexing connections: ["epoll"] on Linux,
    ["select"] elsewhere. *)

val checkpoint : t -> unit
(** Ask every shard to snapshot its sessions and rotate its WAL (a
    no-op without [wal_dir]).  Asynchronous: shards checkpoint before
    picking up their next session.  {!run} wires SIGHUP to this. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, shut down ingress on every
    connection, let the shards drain their queues, send
    [Session_closed]+[Bye], checkpoint (unless [final_checkpoint] is
    off), close everything.  Idempotent; blocks until the drain
    completes. *)

val run :
  ?on_signal:int list -> ?on_ready:(t -> unit) -> config -> unit
(** [start], then block until one of [on_signal] (default SIGTERM and
    SIGINT) arrives, then {!stop}.  [on_ready] runs right after the
    listeners are bound — used by the CLI to print the addresses.  When
    durability is on, SIGHUP triggers {!checkpoint}. *)
