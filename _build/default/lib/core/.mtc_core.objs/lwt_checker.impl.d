lib/core/lwt_checker.ml: Array Format Hashtbl List Lwt Op Result Stdlib
