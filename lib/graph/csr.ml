type 'lab t = {
  offsets : int array;
  targets : int array;
  labels : 'lab array;
}

let n t = Array.length t.offsets - 1
let num_edges t = Array.length t.targets
let out_degree t u = t.offsets.(u + 1) - t.offsets.(u)

let of_digraph g =
  let n = Digraph.n g in
  let m = Digraph.num_edges g in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- Digraph.out_degree g u
  done;
  for u = 1 to n do
    offsets.(u) <- offsets.(u) + offsets.(u - 1)
  done;
  let targets = Array.make m (-1) in
  (* The label array needs a seed value of type ['lab]; create it from the
     first edge encountered (if [m = 0] there are no labels at all). *)
  let labels = ref [||] in
  let cursor = Array.sub offsets 0 (Stdlib.max n 1) in
  for u = 0 to n - 1 do
    Digraph.iter_succ g u (fun v lab ->
        let la =
          if Array.length !labels = m && m > 0 then !labels
          else begin
            labels := Array.make m lab;
            !labels
          end
        in
        let i = cursor.(u) in
        targets.(i) <- v;
        la.(i) <- lab;
        cursor.(u) <- i + 1)
  done;
  { offsets; targets; labels = !labels }

let iter_succ t u f =
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f t.targets.(i) t.labels.(i)
  done

let succ t u =
  List.init (out_degree t u) (fun j ->
      let i = t.offsets.(u) + j in
      (t.targets.(i), t.labels.(i)))

let mem_edge t u v =
  let found = ref false in
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    if t.targets.(i) = v then found := true
  done;
  !found
