lib/core/int_check.ml: Array Format Hashtbl Index List Op Txn
