(* Durability tests: WAL reading is total under truncation at every
   byte and under corruption, snapshots refuse versions they cannot
   read, and a server restored from snapshot + WAL tail reaches
   verdicts byte-identical to an uninterrupted feed — across isolation
   levels, shard counts and restore paths (pure tail replay vs a full
   Online snapshot round-trip). *)

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let temp_name =
  let ctr = ref 0 in
  fun suffix ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mtc-persist-%d-%d%s" (Unix.getpid ()) !ctr suffix)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rm_rf dir =
  if Sys.file_exists dir then (
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir)

let engine_history ?(txns = 200) ~level ~fault ~seed () =
  let spec =
    Mt_gen.generate { Mt_gen.default with num_txns = txns; num_keys = 10; seed }
  in
  let db = { Db.level; fault; num_keys = 10; seed } in
  (Scheduler.run ~params:{ Scheduler.default_params with seed } ~db ~spec ())
    .Scheduler.history

(* One real history's transactions, in stream order — the WAL fixtures
   below log prefixes of it. *)
let fixture_txns =
  lazy
    (Client.stream_order
       (engine_history ~level:Isolation.Serializable ~fault:Fault.No_fault
          ~seed:3 ()))

let fixture_records n ~close =
  let feeds = List.filteri (fun i _ -> i < n) (Lazy.force fixture_txns) in
  (Wal.R_open { sid = 1; level = Checker.SER; num_keys = 10; skew = 0;
                ts = Ts.Ignore; gc = Online.Gc_off }
  :: List.mapi (fun i txn -> Wal.R_feed { sid = 1; seq = i + 1; txn }) feeds)
  @ (if close then [ Wal.R_close { sid = 1 } ] else [])

let write_wal path records =
  let w = Wal.create ~path ~shard:0 ~nshards:1 ~gen:1 ~sync:Wal.Off () in
  List.iter (fun r -> ignore (Wal.append w r)) records;
  Wal.close w

let rec is_prefix short long =
  match (short, long) with
  | [], _ -> true
  | _, [] -> false
  | a :: s, b :: l -> a = b && is_prefix s l

(* ------------------------------------------------------------------ *)
(* WAL totality. *)

(* Cutting a WAL at EVERY byte must yield a strict record prefix with a
   clean Truncated/Complete tail, or (while still inside the header) a
   clean Error — never an exception, never an invented record, and
   never a regression from readable back to Error as bytes grow. *)
let prop_wal_truncation_total =
  QCheck2.Test.make ~name:"wal: truncation at every byte is total" ~count:6
    QCheck2.Gen.(pair (int_range 1 25) bool)
    (fun (n, close) ->
      let records = fixture_records n ~close in
      let path = temp_name ".wal" in
      write_wal path records;
      let full = read_file path in
      let full_records =
        match Wal.read_path path with
        | Ok (_, rs, Wal.Complete) -> rs
        | Ok (_, _, _) -> QCheck2.Test.fail_report "full WAL not Complete"
        | Error e -> QCheck2.Test.fail_report ("full WAL unreadable: " ^ e)
      in
      if full_records <> records then
        QCheck2.Test.fail_report "round-trip disagrees";
      let seen_ok = ref false in
      for cut = 0 to String.length full - 1 do
        write_file path (String.sub full 0 cut);
        match Wal.read_path path with
        | Ok (_, rs, tail) ->
            seen_ok := true;
            if not (is_prefix rs records) then
              QCheck2.Test.fail_reportf "cut %d: not a record prefix" cut;
            (match tail with
            | Wal.Complete | Wal.Truncated _ -> ()
            | Wal.Corrupt { offset; reason } ->
                QCheck2.Test.fail_reportf
                  "cut %d: truncation misread as corruption at %d (%s)" cut
                  offset reason)
        | Error e ->
            if !seen_ok then
              QCheck2.Test.fail_reportf
                "cut %d: readable at a shorter cut but Error here (%s)" cut e
      done;
      Sys.remove path;
      true)

(* Flipping any single byte past the header must surface as a shorter
   record prefix with a non-Complete tail — the CRC net has no holes. *)
let test_wal_bitflip_detected () =
  let records = fixture_records 8 ~close:true in
  let path = temp_name ".wal" in
  write_wal path records;
  let full = read_file path in
  (* the header ends where the empty-record-list parse first succeeds *)
  let header_end =
    let rec go cut =
      if cut > String.length full then
        Alcotest.fail "no readable header prefix"
      else (
        write_file path (String.sub full 0 cut);
        match Wal.read_path path with Ok _ -> cut | Error _ -> go (cut + 1))
    in
    go 0
  in
  for off = header_end to String.length full - 1 do
    let b = Bytes.of_string full in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
    write_file path (Bytes.to_string b);
    match Wal.read_path path with
    | Ok (_, rs, tail) ->
        checkb
          (Printf.sprintf "flip at %d: strict prefix" off)
          (is_prefix rs records && List.length rs < List.length records)
          true;
        checkb
          (Printf.sprintf "flip at %d: tail not Complete" off)
          (match tail with Wal.Complete -> false | _ -> true)
          true
    | Error e -> Alcotest.fail (Printf.sprintf "flip at %d: Error %s" off e)
  done;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

let test_snapshot_roundtrip () =
  let path = temp_name ".snap" in
  let meta =
    { Snapshot_store.level = Checker.SI; num_keys = 10; skew = 0;
      ts = Ts.Ignore; gc = Online.Gc_off }
  in
  let entries =
    [
      {
        Snapshot_store.sid = 4;
        meta;
        last_seq = 17;
        state =
          Snapshot_store.Poisoned
            { anomaly = Some "lost update"; rendered = "SI violation: boom" };
      };
    ]
  in
  Snapshot_store.write ~path ~shard:1 ~nshards:2 ~gen:3 ~next_sid:7 entries;
  (match Snapshot_store.read path with
  | Error e -> Alcotest.fail ("read back: " ^ e)
  | Ok info ->
      checki "shard" 1 info.Snapshot_store.i_shard;
      checki "nshards" 2 info.Snapshot_store.i_nshards;
      checki "gen" 3 info.Snapshot_store.i_gen;
      checki "next_sid" 7 info.Snapshot_store.i_next_sid;
      (match info.Snapshot_store.i_entries with
      | [ e ] -> (
          checki "sid" 4 e.Snapshot_store.sid;
          checki "last_seq" 17 e.Snapshot_store.last_seq;
          match e.Snapshot_store.state with
          | Snapshot_store.Poisoned { anomaly; rendered } ->
              checkb "anomaly" (anomaly = Some "lost update") true;
              checks "rendered verbatim" "SI violation: boom" rendered
          | Snapshot_store.Live _ -> Alcotest.fail "poisoned came back live")
      | es -> Alcotest.fail (Printf.sprintf "%d entries" (List.length es))));
  Sys.remove path

(* A snapshot from a future format version must be refused with a
   message that names both versions — even when its CRC is valid — and
   any tampering that does not fix the CRC must be refused too. *)
let test_snapshot_version_mismatch () =
  let path = temp_name ".snap" in
  Snapshot_store.write ~path ~shard:0 ~nshards:1 ~gen:1 ~next_sid:2 [];
  let full = read_file path in
  let magic_len = 8 and crc_len = 4 in
  (* the version is the payload's leading uvarint; 2 and 3 are both
     single bytes, so patch in place and recompute the trailing CRC *)
  let b = Bytes.of_string full in
  checki "stored version byte" 2 (Char.code (Bytes.get b magic_len));
  Bytes.set b magic_len (Char.chr 3);
  let payload =
    Bytes.sub_string b magic_len (Bytes.length b - magic_len - crc_len)
  in
  let crc = Crc32.string payload in
  for i = 0 to 3 do
    Bytes.set b
      (Bytes.length b - crc_len + i)
      (Char.chr ((crc lsr (8 * i)) land 0xff))
  done;
  write_file path (Bytes.to_string b);
  (match Snapshot_store.read path with
  | Ok _ -> Alcotest.fail "future version must be refused"
  | Error e ->
      checkb "names both versions"
        (contains ~sub:"snapshot version 3 (this build reads 2)" e)
        true);
  (* same patch without the CRC fix: caught as corruption *)
  let b = Bytes.of_string full in
  Bytes.set b magic_len (Char.chr 3);
  write_file path (Bytes.to_string b);
  (match Snapshot_store.read path with
  | Ok _ -> Alcotest.fail "tampered snapshot must be refused"
  | Error e -> checkb "CRC catches tamper" (contains ~sub:"CRC" e) true);
  (* truncation at every byte: always a clean Error, never a raise *)
  for cut = 0 to String.length full - 1 do
    write_file path (String.sub full 0 cut);
    match Snapshot_store.read path with
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncated at %d read Ok" cut)
    | Error _ -> ()
  done;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Restore == fresh feed. *)

let temp_sock =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mtc-persist-%d-%d.sock" (Unix.getpid ()) !ctr)

let with_server ?(config = Server.default_config) f =
  let path = temp_sock () in
  let config = { config with Server.listen = [ Server.A_unix path ] } in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () -> f t (Server.A_unix path))

let with_client addr f =
  match Client.connect addr with
  | Error e -> Alcotest.fail ("connect: " ^ e)
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.fail (what ^ ": " ^ e)

let fresh_verdict ~level h =
  with_server (fun _ addr ->
      with_client addr (fun c ->
          let sid =
            ok "open" (Client.open_session c ~level ~num_keys:10 ())
          in
          ok "fresh feed" (Client.feed_history c ~sid h)))

(* Fabricate the on-disk state a kill -9 mid-feed leaves behind — a WAL
   holding the open record and the first [cut] feeds, no close — then
   restore it [bounce] extra times (each a graceful start/stop with the
   session never resumed, which forces it through a real checkpoint:
   live sessions through [Online.encode], poisoned ones through their
   stored rendering) before finally resuming and feeding the rest. *)
let resumed_verdict ?(gc = Online.Gc_off) ~level ~shards ~bounce ~cut h dir =
  let logged = List.filteri (fun i _ -> i < cut) (Client.stream_order h) in
  Unix.mkdir dir 0o755;
  write_wal
    (Filename.concat dir "wal-0-1")
    (Wal.R_open
       { sid = 1; level; num_keys = 10; skew = 0; ts = Ts.Ignore; gc }
    :: List.mapi
         (fun i txn -> Wal.R_feed { sid = 1; seq = i + 1; txn })
         logged);
  let durable =
    { Server.default_config with Server.wal_dir = Some dir; shards }
  in
  for _ = 1 to bounce do
    with_server ~config:durable (fun _ _ -> ())
  done;
  with_server ~config:durable (fun _ addr ->
      with_client addr (fun c ->
          let last = ok "resume" (Client.resume_session c ~sid:1) in
          checki "resume point = logged prefix" cut last;
          ok "resumed feed"
            (Client.feed_history ~resume_from:last c ~sid:1 h)))

let check_verdict_eq name fresh resumed =
  match (fresh, resumed) with
  | Wire.V_ok a, Wire.V_ok b -> checki (name ^ ": accepted count") a b
  | ( Wire.V_violation { anomaly = a1; rendered = r1 },
      Wire.V_violation { anomaly = a2; rendered = r2 } ) ->
      checkb (name ^ ": same anomaly") (a1 = a2) true;
      checks (name ^ ": rendering byte-identical") r1 r2
  | Wire.V_ok _, Wire.V_violation _ ->
      Alcotest.fail (name ^ ": restore found a violation the fresh feed missed")
  | Wire.V_violation _, Wire.V_ok _ ->
      Alcotest.fail (name ^ ": restore lost the violation")

(* The paper's end-to-end guarantee must survive a restart: restoring
   snapshot + WAL tail and feeding the remainder reaches the same
   verdict — and for violations the same rendered counterexample, byte
   for byte — as an uninterrupted feed.  Cases cover clean and faulty
   histories at every level, shard counts different from the writer's,
   and both restore paths (cut before the violation exercises live
   replay; a generous fault rate makes the violation land before the
   cut, exercising poisoned replay and poisoned snapshots). *)
let test_restore_equals_fresh () =
  let cases =
    [
      ("sser clean", Isolation.Strict_serializable, Checker.SSER,
       Fault.No_fault, 1, 0);
      ("ser clean j3", Isolation.Serializable, Checker.SER, Fault.No_fault,
       3, 0);
      ("si clean snapshot", Isolation.Snapshot, Checker.SI, Fault.No_fault,
       2, 1);
      ("si lost-update", Isolation.Snapshot, Checker.SI, Fault.Lost_update 0.2,
       2, 0);
      ("ser lost-update snapshot", Isolation.Snapshot, Checker.SER,
       Fault.Lost_update 0.2, 1, 1);
    ]
  in
  List.iter
    (fun (name, engine, level, fault, shards, bounce) ->
      let h = engine_history ~level:engine ~fault ~seed:5 () in
      let cut = List.length (Client.stream_order h) / 2 in
      let fresh = fresh_verdict ~level h in
      let dir = temp_name ".wal.d" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let resumed = resumed_verdict ~level ~shards ~bounce ~cut h dir in
          check_verdict_eq name fresh resumed))
    cases

(* Restore after watermark GC: a session under an aggressive absolute
   ceiling compacts while the WAL prefix replays, the bounce forces the
   compacted state through a real [Online.encode]/[decode] checkpoint
   (which carries the policy, the floor and the counters), and the
   resumed remainder must still reach the unbounded fresh feed's
   verdict — byte-identical rendering included.  Clean and faulty, at a
   cut early enough that the violation lands after the restore. *)
let test_restore_after_gc () =
  List.iter
    (fun (name, engine, level, fault) ->
      let h = engine_history ~txns:400 ~level:engine ~fault ~seed:9 () in
      let cut = List.length (Client.stream_order h) / 2 in
      let fresh = fresh_verdict ~level h in
      List.iter
        (fun (tag, gc, bounce) ->
          let dir = temp_name ".wal.d" in
          Fun.protect
            ~finally:(fun () -> rm_rf dir)
            (fun () ->
              let resumed =
                resumed_verdict ~gc ~level ~shards:1 ~bounce ~cut h dir
              in
              check_verdict_eq (name ^ " " ^ tag) fresh resumed))
        [
          ("words tail-replay", Online.Gc_words 4096, 0);
          ("words snapshot", Online.Gc_words 4096, 1);
          ("auto snapshot", Online.Gc_auto, 1);
        ])
    [
      ("ser clean", Isolation.Serializable, Checker.SER, Fault.No_fault);
      ("si late lost-update", Isolation.Snapshot, Checker.SI,
       Fault.Lost_update 0.01);
    ]

(* Resume must be refused cleanly when there is nothing to resume. *)
let test_resume_refused () =
  let dir = temp_name ".wal.d" in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_server
        ~config:{ Server.default_config with Server.wal_dir = Some dir }
        (fun _ addr ->
          with_client addr (fun c ->
              match Client.resume_session c ~sid:42 with
              | Ok _ -> Alcotest.fail "resume of unknown sid must fail"
              | Error e ->
                  checkb "names the sid" (contains ~sub:"42" e) true)));
  (* and on a server with durability off *)
  with_server (fun _ addr ->
      with_client addr (fun c ->
          checkb "refused without wal_dir"
            (Result.is_error (Client.resume_session c ~sid:1))
            true))

let suite =
  [
    qtest prop_wal_truncation_total;
    ("wal: any bit flip is caught", `Quick, test_wal_bitflip_detected);
    ("snapshot round-trip", `Quick, test_snapshot_roundtrip);
    ("snapshot version/CRC/truncation refused", `Quick,
     test_snapshot_version_mismatch);
    ("restore == fresh feed (levels x shards)", `Quick,
     test_restore_equals_fresh);
    ("restore after watermark GC == fresh feed", `Quick,
     test_restore_after_gc);
    ("resume refused when unknown or non-durable", `Quick,
     test_resume_refused);
  ]
