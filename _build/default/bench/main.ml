(* The benchmark harness: one section per table/figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig7  # one experiment
     dune exec bench/main.exe -- --list       # list experiment names *)

let experiments =
  [
    ("fig7", "SER verification: MTC-SER vs Cobra", Fig7.run);
    ("fig8", "SI verification: MTC-SI vs PolySI", Fig8.run);
    ("fig9", "SSER/LIN verification: MTC-SSER vs Porcupine", Fig9.run);
    ("fig10", "end-to-end SER: time + memory", Fig10.run);
    ("fig11", "abort rates: GT vs MT", Fig11.run);
    ("table2", "rediscovered bugs (+ figures 12/18 counterexamples)",
     fun () -> Table2.run ());
    ("fig13", "detection effectiveness + end-to-end time vs Elle (fig 14)",
     Fig13.run);
    ("fig17", "end-to-end SI: time + memory", Fig17.run);
    ("ablation", "design-choice ablations (RT encoding, divergence screen, pruning)",
     Ablation.run);
    ("kernels", "bechamel microbenchmarks of the verification kernels",
     Kernels.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "--list" ] ->
      List.iter
        (fun (name, descr, _) -> Printf.printf "%-8s %s\n" name descr)
        experiments
  | [ "--only"; name ] -> (
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, run) -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; try --list\n" name;
          exit 1)
  | [] ->
      Printf.printf
        "MTC benchmark harness — reproducing the paper's evaluation.\n\
         Shapes (who wins, trends), not absolute numbers, are the target;\n\
         see EXPERIMENTS.md for the paper-vs-measured comparison.\n";
      List.iter (fun (_, _, run) -> run ()) experiments
  | _ ->
      Printf.eprintf "usage: main.exe [--list | --only <experiment>]\n";
      exit 1
