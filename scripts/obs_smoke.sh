#!/usr/bin/env bash
# End-to-end smoke of the observability surface: `mtc check --profile`
# must print a phase table whose footer accounts for most of the wall
# time, `--trace` must write Chrome trace-event JSON that a JSON parser
# accepts, and `mtc serve --metrics-port` must expose Prometheus text
# over HTTP that `mtc stats --metrics-http` can scrape.  Wired into
# `dune build @check` from the root dune file.
set -u

MTC="$1"
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "obs-smoke: FAIL: $*" >&2; exit 1; }

"$MTC" run --level si --txns 500 --keys 50 --seed 7 -o "$TMP/h.hist" \
  >/dev/null || fail "fixture run must pass"

# -- mtc check --profile: a phase table, with the big phases present
"$MTC" check "$TMP/h.hist" --level si --profile > "$TMP/profile.out" \
  || fail "check --profile must still pass"
for phase in parse infer check; do
  grep -q "^$phase " "$TMP/profile.out" \
    || fail "--profile must report the '$phase' phase (see $TMP/profile.out)"
done
grep -q "of wall" "$TMP/profile.out" \
  || fail "--profile must print the wall-time footer"

# -- mtc check --trace: parseable Chrome trace JSON with complete events
"$MTC" check "$TMP/h.hist" --level si --trace "$TMP/trace.json" >/dev/null \
  || fail "check --trace must still pass"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP/trace.json" <<'PY' || fail "trace JSON invalid"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "no events"
assert all(e["ph"] == "X" for e in events), "non-complete event"
PY
else
  grep -q '"traceEvents"' "$TMP/trace.json" || fail "trace JSON missing key"
fi

# -- serve --metrics-port 0: scrape Prometheus text through mtc stats
SOCK="$TMP/mtc.sock"
"$MTC" serve --listen "unix:$SOCK" --metrics-port 0 > "$TMP/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || fail "server did not come up (see $TMP/serve.log)"
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*metrics on http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$TMP/serve.log" | head -n 1)
  [ -n "$PORT" ] && break
  sleep 0.05
done
[ -n "$PORT" ] || fail "server did not announce its metrics port"

"$MTC" feed "$TMP/h.hist" -a "unix:$SOCK" --level si >/dev/null \
  || fail "feed must pass"

"$MTC" stats --metrics-http "$PORT" > "$TMP/prom.out" \
  || fail "stats --metrics-http must scrape"
grep -q '^# TYPE mtc_txns_fed_total counter$' "$TMP/prom.out" \
  || fail "scrape must carry typed counters"
grep -q '^mtc_feed_ns_bucket{le="+Inf"}' "$TMP/prom.out" \
  || fail "scrape must carry histogram buckets"

# -- mtc stats over the wire: aligned table and raw JSON
"$MTC" stats -a "unix:$SOCK" > "$TMP/stats.out" \
  || fail "stats over the socket must work"
grep -Eq '^txns_fed +[1-9]' "$TMP/stats.out" \
  || fail "stats table must show the fed txns (see $TMP/stats.out)"
"$MTC" stats -a "unix:$SOCK" --json | grep -Eq '"txns_fed":[1-9]' \
  || fail "stats --json must emit the raw frame"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server must exit 0 on SIGTERM"
SERVER_PID=""

echo "obs-smoke: OK"
