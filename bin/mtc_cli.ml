(* The mtc command-line tool: black-box isolation checking from the shell.

     mtc check file.hist --level si        verify a recorded history
     mtc run --level ser --txns 2000       generate + execute + verify
     mtc hunt --fault lost-update          stress a faulty engine until a bug
     mtc serve --listen unix:/tmp/mtc.sock run the checking daemon
     mtc feed file.hist --addr unix:...    stream a history to a daemon
     mtc anomalies                         print the Figure 5 catalogue *)

open Cmdliner

(* Exit codes, uniform across check/run/hunt/feed so shell pipelines and
   CI can gate on them.  Violations are exit 1 (like grep's "found");
   environment problems (unreadable file, bad address, refused
   connection) are exit 2, distinct from cmdliner's own 124/125. *)
let exit_pass = 0
let exit_violation = 1
let exit_error = 2

let verdict_exits =
  Cmd.Exit.info exit_pass
    ~doc:"the history satisfies the requested isolation level (PASS), or \
          no violation was found."
  :: Cmd.Exit.info exit_violation
       ~doc:"an isolation violation was found; the counterexample report \
             is printed on standard output."
  :: Cmd.Exit.info exit_error
       ~doc:"the history could not be loaded, an address could not be \
             reached, or the request was otherwise invalid."
  :: Cmd.Exit.defaults

(* ------------------------------------------------------------------ *)
(* Shared argument converters. *)

(* Strong levels run MTC's main algorithms; weak ones the Weak_checker
   extension. *)
type any_level = Strong of Checker.level | Weak of Weak_checker.level

let any_level_name = function
  | Strong l -> Checker.level_name l
  | Weak l -> Weak_checker.level_name l

let any_level_of_string s =
  match Checker.level_of_string s with
  | Some l -> Some (Strong l)
  | None -> (
      match String.lowercase_ascii s with
      | "rc" | "read-committed" -> Some (Weak Weak_checker.Read_committed)
      | "ra" | "read-atomic" -> Some (Weak Weak_checker.Read_atomic)
      | "cc" | "causal" -> Some (Weak Weak_checker.Causal)
      | _ -> None)

let level_conv =
  let parse s =
    match any_level_of_string s with
    | Some l -> Ok l
    | None ->
        Error
          (`Msg (Printf.sprintf "unknown level %S (si|ser|sser|rc|ra|causal)" s))
  in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (any_level_name l))

(* Unified verification: Ok () or a rendered report.  [on_ts_report]
   receives the certification-mismatch report (lying timestamp oracle
   evidence) when a timestamp mode produced one — side-band diagnostics,
   never part of the verdict. *)
let verify_any ?(skew = 0) ?pool ?(ts = Ts.Ignore) ?on_ts_report level h =
  match level with
  | Strong l -> (
      let outcome, ts_state = Checker.check_report ~skew ?pool ~ts l h in
      (match (on_ts_report, ts_state) with
      | Some f, Some st -> (
          match Ts.render_report st with Some r -> f r | None -> ())
      | _ -> ());
      match outcome with
      | Checker.Pass -> Ok ()
      | Checker.Fail v -> Error (Report.render h l v))
  | Weak l -> (
      match Weak_checker.check l h with
      | Weak_checker.Pass -> Ok ()
      | Weak_checker.Fail v ->
          Error
            (Format.asprintf "%s violation: %a@."
               (Weak_checker.level_name l)
               Weak_checker.pp_violation v))

let format_conv =
  let parse s =
    match Codec.format_of_string s with
    | Some f -> Ok f
    | None ->
        Error (`Msg (Printf.sprintf "unknown format %S (auto|text|bin)" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with
      | Codec.Auto -> "auto"
      | Codec.Text -> "text"
      | Codec.Bin -> "bin")
  in
  Arg.conv (parse, print)

let dist_conv =
  let parse s =
    match Distribution.kind_of_string s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown distribution %S (uniform|zipfian|hotspot|exponential)"
                s))
  in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (Distribution.kind_name d))

let level_arg =
  Arg.(value & opt level_conv (Strong Checker.SI)
       & info [ "level"; "l" ] ~docv:"LEVEL"
           ~doc:"Isolation level to verify: si, ser, sser, rc, ra or causal.")

let txns_arg =
  Arg.(value & opt int 1000 & info [ "txns"; "n" ] ~docv:"N"
         ~doc:"Number of transactions to generate.")

let keys_arg =
  Arg.(value & opt int 100 & info [ "keys"; "k" ] ~docv:"K"
         ~doc:"Number of objects in the key space.")

let sessions_arg =
  Arg.(value & opt int 10 & info [ "sessions"; "s" ] ~docv:"S"
         ~doc:"Number of client sessions.")

let dist_arg =
  Arg.(value & opt dist_conv Distribution.Uniform & info [ "dist"; "d" ]
         ~docv:"DIST" ~doc:"Object-access distribution.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Random seed (runs are deterministic per seed).")

let fault_arg =
  Arg.(value & opt string "none" & info [ "fault" ] ~docv:"FAULT"
         ~doc:"Injected engine bug: none, lost-update, aborted-read, \
               causality-violation, write-skew, long-fork, ts-skew, \
               ts-reorder or ts-dup.")

let fault_p_arg =
  Arg.(value & opt float 0.1 & info [ "fault-p" ] ~docv:"P"
         ~doc:"Trigger probability of the injected fault.")

let skew_arg =
  Arg.(value & opt int 0 & info [ "skew" ] ~docv:"TICKS"
         ~doc:"Clock-skew tolerance for SSER checking: real-time edges are \
               only derived from gaps larger than $(docv).")

let ts_conv =
  let parse s =
    match Ts.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg (Printf.sprintf "unknown timestamp mode %S (ignore|trust|verify)" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Ts.mode_name m))

let timestamps_arg =
  Arg.(value & opt ts_conv Ts.Ignore
       & info [ "timestamps" ] ~docv:"MODE"
           ~doc:"Timestamp fast path for strong levels: $(b,ignore) infers \
                 version orders from values (the default), $(b,verify) \
                 predicts them from commit timestamps and certifies every \
                 prediction against the values — same verdict, usually much \
                 faster — and $(b,trust) skips certification entirely \
                 (fastest; only sound if the engine's timestamps are \
                 truthful).  In verify mode certification mismatches are \
                 reported on stderr.")

let gt_arg =
  Arg.(value & flag & info [ "gt" ]
         ~doc:"Generate general transactions (Cobra-style) instead of \
               mini-transactions.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Parallelism degree: fan independent trials out over $(docv) \
               domains.  0 (the default) means auto — the MTC_JOBS \
               environment variable if set, otherwise the recommended \
               domain count.  Verdicts are identical for every value.")

let resolve_jobs j = if j <= 0 then Pool.default_size () else j

let ops_arg =
  Arg.(value & opt int 10 & info [ "ops" ] ~docv:"OPS"
         ~doc:"Operations per transaction for --gt workloads.")

let engine_level level =
  (* Run the engine at the mechanism matching the checked level. *)
  match level with
  | Strong Checker.SI -> Isolation.Snapshot
  | Strong Checker.SER -> Isolation.Serializable
  | Strong Checker.SSER -> Isolation.Strict_serializable
  | Weak Weak_checker.Read_committed -> Isolation.Read_committed
  | Weak (Weak_checker.Read_atomic | Weak_checker.Causal) -> Isolation.Snapshot

let parse_fault name p =
  match Fault.of_string ~p name with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "unknown fault %S" name)

let make_spec ~gt ~txns ~keys ~sessions ~dist ~ops ~seed =
  if gt then
    Gt_gen.generate
      { Gt_gen.num_sessions = sessions; num_txns = txns; num_keys = keys;
        ops_per_txn = ops; dist; seed }
  else
    Mt_gen.generate
      { Mt_gen.num_sessions = sessions; num_txns = txns; num_keys = keys;
        dist; seed }

(* ------------------------------------------------------------------ *)
(* mtc check *)

let check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY"
           ~doc:"History file produced by 'mtc run -o' (mtc-history v1 format).")
  in
  let profile_arg =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Record spans while checking and print a per-phase time \
                 breakdown (parse / infer / check) afterwards.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the recorded spans to $(docv) as Chrome trace-event \
                 JSON — load it in ui.perfetto.dev or chrome://tracing.  \
                 Implies span recording (like $(b,--profile)).")
  in
  let format_arg =
    Arg.(value & opt format_conv Codec.Auto & info [ "format"; "f" ]
           ~docv:"FMT"
           ~doc:"History file format: text, bin, or auto (sniff the 8-byte \
                 magic).  Binary files are mmapped and decoded without an \
                 intermediate copy.")
  in
  let run file level skew timestamps profile trace format jobs =
    let jobs = resolve_jobs jobs in
    let with_jobs f =
      (* Shut the pool down before exiting, so the exit code is computed
         inside and the process termination stays single-domain. *)
      if jobs > 1 then Pool.with_pool ~size:jobs (fun p -> f (Some p))
      else f None
    in
    let observing = profile || trace <> None in
    if observing then begin
      Obs.Trace.clear ();
      Obs.Trace.enable ()
    end;
    let code =
      with_jobs @@ fun pool ->
      (* Wall clock covers exactly what the spans can cover: the load and
         the verification, not the printing between them. *)
      let t_load = Obs.Clock.now_ns () in
      match Codec.load ~format ?pool file with
      | Error e ->
          Printf.eprintf "cannot load %s: %s\n" file e;
          exit_error
      | Ok h ->
          let load_ns = Obs.Clock.now_ns () - t_load in
          Printf.printf "%s\n" (History.stats h);
          let t_verify = Obs.Clock.now_ns () in
          let result =
            verify_any ~skew ?pool ~ts:timestamps
              ~on_ts_report:(fun r -> prerr_string r)
              level h
          in
          let wall_ns = load_ns + (Obs.Clock.now_ns () - t_verify) in
          if observing then begin
            Obs.Trace.disable ();
            let events = Obs.Trace.events () in
            (match trace with
            | Some path ->
                Out_channel.with_open_text path (fun oc ->
                    output_string oc (Obs.Export.chrome_json events));
                Printf.printf "trace: %d spans written to %s%s\n"
                  (List.length events) path
                  (let d = Obs.Trace.dropped () in
                   if d > 0 then Printf.sprintf " (%d dropped)" d else "")
            | None -> ());
            if profile then print_string (Obs.Profile.render ~wall_ns events)
          end;
          (match result with
          | Ok () ->
              Printf.printf "%s: PASS\n" (any_level_name level);
              exit_pass
          | Error report ->
              print_string report;
              exit_violation)
    in
    exit code
  in
  Cmd.v
    (Cmd.info "check" ~exits:verdict_exits
       ~doc:"Verify a recorded history against an isolation level.  With \
             $(b,--jobs) > 1, loading and dependency inference shard over \
             that many domains; the verdict and any counterexample are \
             byte-identical for every value.")
    Term.(const run $ file_arg $ level_arg $ skew_arg $ timestamps_arg
          $ profile_arg $ trace_arg $ format_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* mtc run *)

let run_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Also save the observed history to $(docv).")
  in
  let run level txns keys sessions dist seed fault fault_p gt ops out =
    match parse_fault fault fault_p with
    | Error e ->
        Printf.eprintf "%s\n" e;
        exit 2
    | Ok fault ->
        let spec = make_spec ~gt ~txns ~keys ~sessions ~dist ~ops ~seed in
        let db = { Db.level = engine_level level; fault; num_keys = keys; seed } in
        let verify (r : Scheduler.result) =
          match verify_any level r.Scheduler.history with
          | Ok () -> Endtoend.V_pass
          | Error report -> Endtoend.V_fail report
        in
        let m = Endtoend.measure ~db ~spec ~verify () in
        Format.printf "%a@." Endtoend.pp_measurement m;
        (match out with
        | Some path ->
            let r =
              Scheduler.run ~params:{ Scheduler.default_params with seed } ~db
                ~spec ()
            in
            Codec.save path r.Scheduler.history;
            Printf.printf "history saved to %s\n" path
        | None -> ());
        (match m.Endtoend.verdict with
        | Endtoend.V_pass -> exit 0
        | Endtoend.V_fail report ->
            print_string report;
            exit 1)
  in
  Cmd.v
    (Cmd.info "run" ~exits:verdict_exits
       ~doc:"Generate a workload, execute it on the simulated engine, and \
             verify the observed history end-to-end.")
    Term.(const run $ level_arg $ txns_arg $ keys_arg $ sessions_arg
          $ dist_arg $ seed_arg $ fault_arg $ fault_p_arg $ gt_arg $ ops_arg
          $ out_arg)

(* ------------------------------------------------------------------ *)
(* mtc gen *)

let gen_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the history as text (mtc-history v1) to $(docv).  \
                 The whole history is materialized first, so prefer \
                 $(b,--out-bin) for very large corpora.")
  in
  let out_bin_arg =
    Arg.(value & opt (some string) None & info [ "out-bin" ] ~docv:"FILE"
           ~doc:"Stream the history in the binary format to $(docv).  \
                 Transactions are encoded and flushed as they are \
                 generated — constant memory, so multi-million-transaction \
                 corpora are fine.")
  in
  let ts_skew_arg =
    Arg.(value & opt int 0 & info [ "ts-skew" ] ~docv:"TICKS"
           ~doc:"Perturb each transaction's start/commit timestamps by up \
                 to $(docv) ticks — a drifting but honest clock.  The ops \
                 and values are unchanged versus the same seed without \
                 skew.")
  in
  let ts_lie_arg =
    Arg.(value & opt float 0.0 & info [ "ts-lie" ] ~docv:"P"
           ~doc:"With probability $(docv), report the timestamp window of \
                 a random earlier transaction — a lying timestamp oracle \
                 that $(b,--timestamps)=verify must catch.  The ops and \
                 values are unchanged versus the same seed without lies.")
  in
  let run txns keys sessions dist seed ts_skew ts_lie out out_bin =
    if out = None && out_bin = None then begin
      Printf.eprintf "mtc gen: nothing to do — pass --out and/or --out-bin\n";
      exit exit_error
    end;
    let p =
      { Stream_gen.num_txns = txns; num_keys = keys; num_sessions = sessions;
        dist; seed; ts_skew; ts_lie }
    in
    (try
       (match out_bin with
       | Some path ->
           let w =
             Codec.Bin_writer.create ~num_keys:keys ~num_sessions:sessions
               path
           in
           Fun.protect
             ~finally:(fun () -> Codec.Bin_writer.close w)
             (fun () -> Stream_gen.generate p (Codec.Bin_writer.add w));
           Printf.printf "%d txns written to %s (bin)\n" txns path
       | None -> ());
       match out with
       | Some path ->
           let acc = ref [] in
           Stream_gen.generate p (fun t -> acc := t :: !acc);
           let h =
             History.of_array ~num_keys:keys ~num_sessions:sessions
               (Array.of_list
                  (History.init_txn ~num_keys:keys :: List.rev !acc))
           in
           Codec.save path h;
           Printf.printf "%d txns written to %s (text)\n" txns path
       | None -> ()
     with
    | Invalid_argument m | Sys_error m ->
        Printf.eprintf "mtc gen: %s\n" m;
        exit exit_error);
    exit exit_pass
  in
  Cmd.v
    (Cmd.info "gen" ~exits:verdict_exits
       ~doc:"Generate a clean (serially executed) mini-transaction history \
             and write it to disk without running the simulated engine — \
             the corpus generator for the scaling benchmarks.  The result \
             passes sser, ser and si by construction.")
    Term.(const run $ txns_arg $ keys_arg $ sessions_arg $ dist_arg
          $ seed_arg $ ts_skew_arg $ ts_lie_arg $ out_arg $ out_bin_arg)

(* ------------------------------------------------------------------ *)
(* mtc hunt *)

let hunt_cmd =
  let trials_arg =
    Arg.(value & opt int 25 & info [ "trials" ] ~docv:"T"
           ~doc:"Maximum number of histories to try.")
  in
  let run level txns keys sessions dist seed fault fault_p trials jobs =
    match parse_fault fault fault_p with
    | Error e ->
        Printf.eprintf "%s\n" e;
        exit 2
    | Ok fault -> (
        match level with
        | Strong l ->
            (* Strong levels go through Endtoend.hunt, which fans the
               independent trials out over -j domains. *)
            let make_spec ~seed:trial =
              make_spec ~gt:false ~txns ~keys ~sessions ~dist ~ops:0
                ~seed:(seed + trial)
            in
            let db =
              { Db.level = engine_level level; fault; num_keys = keys; seed }
            in
            let h =
              Endtoend.hunt ~sched_seed:seed ~jobs:(resolve_jobs jobs) ~db
                ~make_spec ~level:l ~max_trials:trials ()
            in
            (match h.Endtoend.violation with
            | None ->
                Printf.printf
                  "no violation in %d histories (%d committed txns)\n"
                  h.Endtoend.trials h.Endtoend.committed_total;
                exit 0
            | Some report ->
                Printf.printf
                  "violation found after %d histories (%d committed txns):\n"
                  h.Endtoend.trials h.Endtoend.committed_total;
                print_string report;
                exit 1)
        | Weak _ ->
            let committed = ref 0 in
            let rec go trial =
              if trial > trials then begin
                Printf.printf
                  "no violation in %d histories (%d committed txns)\n" trials
                  !committed;
                exit 0
              end
              else begin
                let spec =
                  make_spec ~gt:false ~txns ~keys ~sessions ~dist ~ops:0
                    ~seed:(seed + trial)
                in
                let db =
                  { Db.level = engine_level level; fault; num_keys = keys;
                    seed = seed + trial }
                in
                let r =
                  Scheduler.run
                    ~params:{ Scheduler.default_params with seed = seed + trial }
                    ~db ~spec ()
                in
                committed := !committed + r.Scheduler.committed;
                match verify_any level r.Scheduler.history with
                | Ok () -> go (trial + 1)
                | Error report ->
                    Printf.printf
                      "violation found after %d histories (%d committed txns):\n"
                      trial !committed;
                    print_string report;
                    exit 1
              end
            in
            go 1)
  in
  Cmd.v
    (Cmd.info "hunt" ~exits:verdict_exits
       ~doc:"Stress the engine with freshly seeded workloads until the \
             checker finds an isolation violation.")
    Term.(const run $ level_arg $ txns_arg $ keys_arg $ sessions_arg
          $ dist_arg $ seed_arg $ fault_arg $ fault_p_arg $ trials_arg
          $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* mtc graph *)

let graph_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY"
           ~doc:"History file to render.")
  in
  let violation_arg =
    Arg.(value & flag & info [ "violation" ]
           ~doc:"Render only the counterexample of the --level check \
                 instead of the whole dependency graph.")
  in
  let strong_of = function
    | Strong l -> l
    | Weak _ -> Checker.SI
  in
  let run file level violation_only =
    match Codec.load file with
    | Error e ->
        Printf.eprintf "cannot load %s: %s\n" file e;
        exit 2
    | Ok h ->
        if violation_only then (
          match Checker.check (strong_of level) h with
          | Checker.Pass ->
              Printf.eprintf "history passes %s: nothing to render\n"
                (any_level_name level);
              exit 0
          | Checker.Fail v -> print_string (Viz.dot_of_violation h v))
        else print_string (Viz.dot_of_history h)
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Emit the dependency graph (or a counterexample) as Graphviz \
             dot on stdout.")
    Term.(const run $ file_arg $ level_arg $ violation_arg)

(* ------------------------------------------------------------------ *)
(* mtc serve / mtc feed — the checking service. *)

let addr_conv =
  let parse s =
    match Server.addr_of_string s with
    | Ok a -> Ok a
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun ppf a -> Format.pp_print_string ppf (Server.addr_to_string a))

let gc_conv =
  Arg.conv
    ( (fun s ->
        match Online.gc_of_string s with
        | Some v -> Ok v
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "bad GC policy %S (want off, auto or a \
                                  word count)" s))),
      fun ppf v -> Format.pp_print_string ppf (Online.gc_to_string v) )

let gc_doc =
  "Watermark GC of the committed prefix: $(b,off) retains every \
   transaction (exact historical behavior), $(b,auto) compacts whenever \
   the live-word estimate exceeds twice the post-GC floor (flat memory \
   for unbounded streams), and a number compacts past that absolute \
   word ceiling.  Verdicts and counterexamples are unaffected."

let serve_cmd =
  let listen_arg =
    Arg.(
      value
      & opt_all addr_conv []
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Listen address, $(b,unix:PATH) or $(b,tcp:HOST:PORT) \
             (repeatable).  Defaults to unix:/tmp/mtc.sock.  TCP port 0 \
             binds an ephemeral port and prints it.")
  in
  let queue_arg =
    Arg.(
      value & opt int 1024
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Per-session ingress queue bound.  A full queue blocks that \
             connection's reader (hard backpressure) and emits an advisory \
             throttle frame.")
  in
  let idle_arg =
    Arg.(
      value & opt float 0.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close sessions idle for longer than $(docv) (0 disables).")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Also serve Prometheus text exposition over HTTP on \
             127.0.0.1:$(docv) ($(b,GET /metrics)).  Port 0 binds an \
             ephemeral port and prints it.")
  in
  let wal_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:
            "Durability directory (created if missing): per-shard \
             write-ahead logs plus periodic snapshots.  A restarted \
             server restores it and clients re-attach with \
             $(b,mtc feed --resume).")
  in
  let wal_sync_arg =
    let sync_conv =
      Arg.conv
        ( (fun s ->
            match Wal.sync_of_string s with
            | Some v -> Ok v
            | None ->
                Error (`Msg (Printf.sprintf "bad sync policy %S" s))),
          fun ppf v -> Format.pp_print_string ppf (Wal.sync_name v) )
    in
    Arg.(
      value & opt sync_conv Wal.Batch
      & info [ "wal-sync" ] ~docv:"POLICY"
          ~doc:
            "WAL fsync policy: $(b,always) (fsync per record), $(b,batch) \
             (fsync before each acknowledged verdict, default) or \
             $(b,off).  Under $(b,batch) and $(b,off), appends group-commit: \
             records buffer in user space and reach the kernel in one \
             write() when the shard's queue drains (or at an acknowledged \
             sync, or every 256 KiB), so a server kill can lose the \
             unflushed tail — acknowledged syncs are still durable.  \
             $(b,always) keeps the historical write-and-fsync per record.")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Checkpoint a shard (snapshot + WAL rotation) every $(docv) \
             feeds it accepts; 0 checkpoints only on SIGHUP and \
             shutdown.")
  in
  let drain_delay_arg =
    Arg.(
      value & opt float 0.0
      & info [ "drain-delay" ] ~docv:"SECONDS"
          ~doc:
            "Artificial per-item worker delay — a test knob to provoke \
             backpressure and mid-feed crashes deterministically; keep 0 \
             in production.")
  in
  let gc_arg =
    Arg.(
      value & opt gc_conv Online.Gc_off
      & info [ "gc-watermark" ] ~docv:"POLICY"
          ~doc:
            (gc_doc
            ^ "  This is the server default; a client may override it \
               per session."))
  in
  let pin_warn_arg =
    Arg.(
      value & opt float 0.0
      & info [ "pin-warn-after" ] ~docv:"SECONDS"
          ~doc:
            "Flag a session whose feeds have stalled for $(docv) while it \
             still retains live checker memory — such a session pins the \
             watermark-GC horizon and the memory bound with it.  Flagged \
             sessions show as PINNED in $(b,mtc stats --sessions) / \
             $(b,mtc top), raise the $(b,mtc_horizon_pinned_sessions) \
             gauge and emit a journal event.  0 disables the detector.")
  in
  let pin_fence_arg =
    let fence_conv =
      Arg.enum [ ("off", Server.Fence_off); ("close", Server.Fence_close) ]
    in
    Arg.(
      value & opt fence_conv Server.Fence_off
      & info [ "pin-fence" ] ~docv:"POLICY"
          ~doc:
            "What to do with a pinned session: $(b,off) (default) only \
             reports it; $(b,close) force-closes it (close reason \
             $(i,pinned)) so its retained memory is released and the \
             aggregate live-words bound holds again.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append the structured event journal (throttles, compactions, \
             WAL fsync stalls, snapshots, session opens/closes, pin \
             warnings) to $(docv) as JSON lines.")
  in
  let run listen queue idle jobs metrics_port wal_dir wal_sync snapshot_every
      drain_delay gc pin_warn pin_fence journal =
    let listen =
      if listen = [] then [ Server.A_unix "/tmp/mtc.sock" ] else listen
    in
    let config =
      {
        Server.default_config with
        Server.listen;
        queue_capacity = Stdlib.max 1 queue;
        idle_timeout = idle;
        drain_delay;
        shards = resolve_jobs jobs;
        metrics_port;
        wal_dir;
        wal_sync;
        snapshot_every;
        gc;
        pin_warn_after = pin_warn;
        pin_fence;
        journal;
      }
    in
    match
      Server.run config ~on_ready:(fun t ->
          List.iter
            (fun a ->
              Printf.printf "mtc serve: listening on %s\n%!"
                (Server.addr_to_string a))
            (Server.bound_addrs t);
          Printf.printf "mtc serve: event backend %s\n%!"
            (Server.event_backend t);
          (if gc <> Online.Gc_off then
             Printf.printf "mtc serve: watermark GC %s\n%!"
               (Online.gc_to_string gc));
          Option.iter
            (fun dir ->
              Printf.printf "mtc serve: durable in %s (sync %s)\n%!" dir
                (Wal.sync_name wal_sync))
            wal_dir;
          (if pin_warn > 0.0 then
             Printf.printf "mtc serve: horizon-pin detector after %.1fs \
                            (fence %s)\n%!"
               pin_warn
               (match pin_fence with
               | Server.Fence_off -> "off"
               | Server.Fence_close -> "close"));
          Option.iter
            (fun f -> Printf.printf "mtc serve: journal to %s\n%!" f)
            journal;
          Option.iter
            (fun p ->
              Printf.printf
                "mtc serve: metrics on http://127.0.0.1:%d/metrics\n%!" p)
            (Server.metrics_port t))
    with
    | () ->
        (* SIGTERM/SIGINT arrived and the drain completed: dump metrics *)
        Printf.printf "mtc serve: shut down\n%s\n"
          (Metrics.to_json Metrics.global);
        exit exit_pass
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "mtc serve: cannot listen: %s (%s)\n"
          (Unix.error_message e) arg;
        exit exit_error
    | exception Failure msg ->
        Printf.eprintf "mtc serve: %s\n" msg;
        exit exit_error
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the checking daemon: an epoll event loop accepts sessions \
          over Unix-domain and TCP sockets, each an independent online \
          checker at its negotiated isolation level.  With \
          $(b,--wal-dir) every accepted frame is write-ahead logged and \
          sessions survive crashes ($(b,kill -9)) and restarts.  Shuts \
          down gracefully (draining in-flight frames) on SIGTERM/SIGINT \
          and dumps service metrics as JSON; SIGHUP checkpoints.  \
          Sessions check in parallel on $(b,--jobs) shard domains.")
    Term.(const run $ listen_arg $ queue_arg $ idle_arg $ jobs_arg
          $ metrics_port_arg $ wal_dir_arg $ wal_sync_arg
          $ snapshot_every_arg $ drain_delay_arg $ gc_arg $ pin_warn_arg
          $ pin_fence_arg $ journal_arg)

let feed_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"HISTORY"
          ~doc:"History file (mtc-history v1 format) to stream.")
  in
  let addr_arg =
    Arg.(
      value
      & opt addr_conv (Server.A_unix "/tmp/mtc.sock")
      & info [ "addr"; "a" ] ~docv:"ADDR"
          ~doc:"Server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Also print the server's metrics snapshot (JSON) afterwards.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "resume" ] ~docv:"SID"
          ~doc:
            "Re-attach to session $(docv) on a durable server \
             ($(b,mtc serve --wal-dir)) instead of opening a fresh one, \
             and skip every transaction the server already logged (it \
             reports its last durable sequence number).")
  in
  let ack_every_arg =
    Arg.(
      value & opt int 0
      & info [ "ack-every" ] ~docv:"N"
          ~doc:
            "Sync every $(docv) accepted transactions, so progress is \
             acknowledged (and, on a durable server, fsynced) \
             periodically while streaming; 0 syncs only at the end.")
  in
  let gc_arg =
    Arg.(
      value
      & opt (some gc_conv) None
      & info [ "gc-watermark" ] ~docv:"POLICY"
          ~doc:
            (gc_doc
            ^ "  Omit to inherit the server's $(b,--gc-watermark) \
               default."))
  in
  let delay_arg =
    Arg.(
      value & opt float 0.0
      & info [ "delay" ] ~docv:"SECONDS"
          ~doc:
            "Sleep $(docv) between transactions — paces the stream to \
             simulate a slow (or, with a large value, stalled) producer; \
             the knob behind the horizon-pin smoke tests.")
  in
  let strong_level = function
    | Strong l -> Ok l
    | Weak l ->
        Error
          (Printf.sprintf
             "the service checks strong levels only (si|ser|sser), not %s"
             (Weak_checker.level_name l))
  in
  (* feed_history with periodic syncs: feed seqs are 1-based stream
     positions (the durable-resume cursor), syncs use the client's
     internal counter, floored clear of them. *)
  let stream_with_acks c ~sid ~resume_from ~ack_every ~delay h =
    Client.seq_floor c 1_000_000_000;
    let rec go pos since = function
      | [] -> Client.sync c ~sid
      | txn :: rest ->
          if pos <= resume_from then go (pos + 1) since rest
          else (
            match Client.feed ~seq:pos c ~sid txn with
            | Error _ as e -> e
            | Ok (Client.Early_verdict v) -> Ok v
            | Ok Client.Accepted ->
                (* pace between transactions, not before the first: a
                   large delay models a producer that fed and stalled *)
                if delay > 0.0 && rest <> [] then Unix.sleepf delay;
                if ack_every > 0 && since + 1 >= ack_every then (
                  match Client.sync c ~sid with
                  | Error _ as e -> e
                  | Ok (Wire.V_violation _ as v) -> Ok v
                  | Ok (Wire.V_ok _) -> go (pos + 1) 0 rest)
                else go (pos + 1) (since + 1) rest)
    in
    go 1 0 (Client.stream_order h)
  in
  let run file addr level skew timestamps want_stats resume ack_every gc
      delay =
    match (Codec.load file, strong_level level) with
    | Error e, _ ->
        Printf.eprintf "cannot load %s: %s\n" file e;
        exit exit_error
    | _, Error e ->
        Printf.eprintf "%s\n" e;
        exit exit_error
    | Ok h, Ok level -> (
        match Client.connect addr with
        | Error e ->
            Printf.eprintf "cannot connect to %s: %s\n"
              (Server.addr_to_string addr) e;
            exit exit_error
        | Ok c ->
            let finish code =
              if want_stats then
                (match Client.stats c with
                | Ok json -> Printf.printf "server stats: %s\n" json
                | Error e -> Printf.eprintf "stats failed: %s\n" e);
              Client.close c;
              exit code
            in
            Printf.printf "%s\n" (History.stats h);
            let session =
              match resume with
              | None -> (
                  match
                    Client.open_session c ~level ~num_keys:h.History.num_keys
                      ~skew ~ts:timestamps ?gc ()
                  with
                  | Error e -> Error ("cannot open session: " ^ e)
                  | Ok sid ->
                      Printf.printf "session %d opened\n%!" sid;
                      Ok (sid, 0))
              | Some sid -> (
                  match Client.resume_session c ~sid with
                  | Error e ->
                      Error (Printf.sprintf "cannot resume session %d: %s"
                               sid e)
                  | Ok last_seq ->
                      Printf.printf
                        "session %d resumed at seq %d (skipping %d \
                         transactions already logged)\n%!"
                        sid last_seq last_seq;
                      Ok (sid, last_seq))
            in
            (match session with
            | Error e ->
                Printf.eprintf "%s\n" e;
                finish exit_error
            | Ok (sid, resume_from) -> (
                match stream_with_acks c ~sid ~resume_from ~ack_every ~delay h with
                | Error e ->
                    Printf.eprintf "feed failed: %s\n" e;
                    finish exit_error
                | Ok (Wire.V_ok n) ->
                    Printf.printf "%s: PASS (%d transactions accepted)\n"
                      (Checker.level_name level) n;
                    finish exit_pass
                | Ok (Wire.V_violation { rendered; _ }) ->
                    print_string rendered;
                    print_newline ();
                    finish exit_violation)))
  in
  Cmd.v
    (Cmd.info "feed" ~exits:verdict_exits
       ~doc:
         "Stream a recorded history to a running $(b,mtc serve) daemon \
          over the binary wire protocol and print the verdict — a true \
          end-to-end black-box check over the network.  Exit codes match \
          $(b,mtc check).  Against a durable server, $(b,--resume SID) \
          continues a session across a server crash or restart.")
    Term.(const run $ file_arg $ addr_arg $ level_arg $ skew_arg
          $ timestamps_arg $ stats_arg $ resume_arg $ ack_every_arg
          $ gc_arg $ delay_arg)

(* ------------------------------------------------------------------ *)
(* mtc stats *)

(* The Stats_reply JSON is a fixed flat shape: an object of numbers and
   one-level nested objects of numbers.  Parse exactly that (no JSON
   dependency) and flatten nested keys with dots for the table. *)
exception Bad_stats_json

let parse_stats_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Bad_stats_json in
  let expect c = if peek () = c then incr pos else raise Bad_stats_json in
  let parse_string () =
    expect '"';
    let start = !pos in
    while peek () <> '"' do
      incr pos
    done;
    let k = String.sub s start (!pos - start) in
    incr pos;
    k
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise Bad_stats_json;
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_object prefix acc =
    expect '{';
    let acc = ref acc in
    let first = ref true in
    while peek () <> '}' do
      if not !first then expect ',';
      first := false;
      let k = parse_string () in
      expect ':';
      let key = if prefix = "" then k else prefix ^ "." ^ k in
      match peek () with
      | '{' -> acc := parse_object key !acc
      | _ -> acc := (key, parse_number ()) :: !acc
    done;
    incr pos;
    !acc
  in
  List.rev (parse_object "" [])

let render_stats_table pairs =
  let width =
    List.fold_left (fun w (k, _) -> Stdlib.max w (String.length k)) 0 pairs
  in
  let b = Buffer.create 512 in
  List.iter
    (fun (k, v) ->
      let value =
        if Float.is_integer v && Float.abs v < 1e15 then
          Printf.sprintf "%d" (int_of_float v)
        else Printf.sprintf "%.3f" v
      in
      Buffer.add_string b (Printf.sprintf "%-*s  %s\n" width k value))
    pairs;
  Buffer.contents b

(* Body of an HTTP response: everything after the first blank line. *)
let http_body response =
  let rec find i =
    if i + 3 >= String.length response then None
    else if
      response.[i] = '\r'
      && response.[i + 1] = '\n'
      && response.[i + 2] = '\r'
      && response.[i + 3] = '\n'
    then Some (String.sub response (i + 4) (String.length response - i - 4))
    else find (i + 1)
  in
  find 0

(* Curl-free HTTP probe for the --metrics-port endpoint. *)
let http_get_metrics port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
      in
      let rec write_all b off len =
        if len > 0 then begin
          let k = Unix.write fd b off len in
          write_all b (off + k) (len - k)
        end
      in
      write_all (Bytes.of_string req) 0 (String.length req);
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read_all () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            read_all ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all ()
      in
      read_all ();
      let response = Buffer.contents buf in
      match http_body response with
      | None -> Error "malformed HTTP response (no header terminator)"
      | Some body ->
          if String.length response >= 12 && String.sub response 9 3 = "200"
          then Ok body
          else
            Error
              (Printf.sprintf "HTTP status %s"
                 (String.sub response 9
                    (Stdlib.min 3 (String.length response - 9)))))

(* ------------------------------------------------------------------ *)
(* Per-session telemetry and event-journal rendering — shared by
   `mtc stats --sessions/--events` and `mtc top`. *)

let session_state (s : Wire.session_stat) =
  if s.Wire.ss_poisoned then "poisoned"
  else if s.Wire.ss_pinned then "PINNED"
  else "live"

let render_sessions_table (stats : Wire.session_stat list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-5s %-5s %-6s %-8s %9s %6s %6s %10s %8s %7s %7s\n"
       "sid" "shard" "level" "state" "frontier" "lag" "queue" "live_w"
       "feeds" "age_s" "idle_s");
  List.iter
    (fun (s : Wire.session_stat) ->
      Buffer.add_string b
        (Printf.sprintf
           "%-5d %-5d %-6s %-8s %9d %6d %6d %10d %8d %7.1f %7.1f\n"
           s.Wire.ss_sid s.Wire.ss_shard
           (Checker.level_name s.Wire.ss_level)
           (session_state s) s.Wire.ss_frontier s.Wire.ss_lag
           s.Wire.ss_queued s.Wire.ss_live_words s.Wire.ss_feeds
           (float_of_int s.Wire.ss_age_ms /. 1e3)
           (float_of_int s.Wire.ss_idle_ms /. 1e3)))
    stats;
  Buffer.contents b

let close_reason_name = function
  | 0 -> "requested"
  | 1 -> "idle"
  | 2 -> "shutdown"
  | 3 -> "protocol"
  | 4 -> "pinned"
  | n -> string_of_int n

let describe_event (e : Wire.journal_event) =
  let f = Printf.sprintf in
  match e.Wire.je_kind with
  | Obs.Journal.Throttle_on ->
      f "throttle-on sid=%d queued=%d" e.Wire.je_a e.Wire.je_b
  | Obs.Journal.Throttle_off -> f "throttle-off sid=%d" e.Wire.je_a
  | Obs.Journal.Gc_compact ->
      f "gc-compact sid=%d pause=%.2fms reclaimed=%dw" e.Wire.je_a
        (float_of_int e.Wire.je_b /. 1e6)
        e.Wire.je_c
  | Obs.Journal.Wal_fsync_stall ->
      f "wal-fsync-stall %.1fms" (float_of_int e.Wire.je_b /. 1e6)
  | Obs.Journal.Snapshot ->
      f "snapshot shard=%d sessions=%d" e.Wire.je_a e.Wire.je_b
  | Obs.Journal.Session_open ->
      f "open sid=%d shard=%d" e.Wire.je_a e.Wire.je_b
  | Obs.Journal.Session_close ->
      f "close sid=%d reason=%s" e.Wire.je_a (close_reason_name e.Wire.je_b)
  | Obs.Journal.Session_resume ->
      f "resume sid=%d last_seq=%d" e.Wire.je_a e.Wire.je_b
  | Obs.Journal.Poison -> f "poison sid=%d" e.Wire.je_a
  | Obs.Journal.Pin_warn ->
      f "pin-warn sid=%d stalled=%.1fs live=%dw" e.Wire.je_a
        (float_of_int e.Wire.je_b /. 1e9)
        e.Wire.je_c
  | Obs.Journal.Pin_fence -> f "pin-fence sid=%d" e.Wire.je_a

let render_events (events : Wire.journal_event list) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (e : Wire.journal_event) ->
      Buffer.add_string b
        (Printf.sprintf "%8.1fs ago  dom%-2d  %s\n"
           (float_of_int e.Wire.je_age_ms /. 1e3)
           e.Wire.je_dom (describe_event e)))
    events;
  Buffer.contents b

let stats_cmd =
  let addr_arg =
    Arg.(
      value
      & opt addr_conv (Server.A_unix "/tmp/mtc.sock")
      & info [ "addr"; "a" ] ~docv:"ADDR"
          ~doc:"Server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw JSON snapshot instead of the aligned table.")
  in
  let http_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-http" ] ~docv:"PORT"
          ~doc:
            "Fetch http://127.0.0.1:$(docv)/metrics (the Prometheus \
             exposition served by $(b,mtc serve --metrics-port)) and print \
             the body, instead of asking over the wire protocol.")
  in
  let sessions_arg =
    Arg.(
      value & flag
      & info [ "sessions" ]
          ~doc:
            "Print the per-session telemetry table (frontier, watermark \
             lag, queue depth, live words, feed count, age/idle) instead \
             of the process-wide counters.")
  in
  let events_arg =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:
            "Print the tail of the server's structured event journal \
             (throttles, compactions, WAL fsync stalls, snapshots, \
             session opens/closes, pin warnings).")
  in
  let run addr json http sessions events =
    match http with
    | Some port -> (
        match http_get_metrics port with
        | Ok body ->
            print_string body;
            exit exit_pass
        | Error e ->
            Printf.eprintf "metrics fetch failed: %s\n" e;
            exit exit_error
        | exception Unix.Unix_error (e, _, _) ->
            Printf.eprintf "metrics fetch failed: %s\n" (Unix.error_message e);
            exit exit_error)
    | None -> (
        match Client.connect addr with
        | Error e ->
            Printf.eprintf "cannot connect to %s: %s\n"
              (Server.addr_to_string addr) e;
            exit exit_error
        | Ok c ->
            if sessions || events then begin
              let r = Client.session_stats c in
              Client.close c;
              match r with
              | Error e ->
                  Printf.eprintf "session stats failed: %s\n" e;
                  exit exit_error
              | Ok (ss, evs, dropped) ->
                  if sessions then
                    if ss = [] then print_endline "no live sessions"
                    else print_string (render_sessions_table ss);
                  if events then begin
                    if sessions then print_newline ();
                    if evs = [] then print_endline "no journal events"
                    else print_string (render_events evs);
                    if dropped > 0 then
                      Printf.printf
                        "(journal ring overflowed: %d older events dropped)\n"
                        dropped
                  end;
                  exit exit_pass
            end
            else begin
              let r = Client.stats c in
              Client.close c;
              match r with
              | Error e ->
                  Printf.eprintf "stats failed: %s\n" e;
                  exit exit_error
              | Ok body ->
                  if json then print_endline body
                  else (
                    match parse_stats_json body with
                    | pairs -> print_string (render_stats_table pairs)
                    | exception Bad_stats_json ->
                        (* unknown shape: still show the raw payload *)
                        print_endline body);
                  exit exit_pass
            end)
  in
  Cmd.v
    (Cmd.info "stats" ~exits:verdict_exits
       ~doc:
         "Fetch a running daemon's metrics snapshot — over the wire \
          protocol (default, printed as an aligned table or raw JSON with \
          $(b,--json)), or over HTTP from the Prometheus endpoint with \
          $(b,--metrics-http).  $(b,--sessions) and $(b,--events) switch \
          to per-session telemetry and the structured event journal.")
    Term.(const run $ addr_arg $ json_arg $ http_arg $ sessions_arg
          $ events_arg)

(* ------------------------------------------------------------------ *)
(* mtc top — live session view. *)

let top_cmd =
  let addr_arg =
    Arg.(
      value
      & opt addr_conv (Server.A_unix "/tmp/mtc.sock")
      & info [ "addr"; "a" ] ~docv:"ADDR"
          ~doc:"Server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"Refresh interval.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Render a single frame (no screen clearing) and exit — for \
             scripts and smoke tests.")
  in
  let max_rows = 20 in
  let ticker_events = 8 in
  let render ~clear c =
    match Client.session_stats c with
    | Error e -> Error e
    | Ok (ss, evs, dropped) ->
        let b = Buffer.create 4096 in
        if clear then Buffer.add_string b "\027[2J\027[H";
        let pinned =
          List.length (List.filter (fun s -> s.Wire.ss_pinned) ss)
        in
        Buffer.add_string b
          (Printf.sprintf "mtc top — %s — %d sessions%s%s\n\n"
             (Client.server_name c) (List.length ss)
             (if pinned > 0 then Printf.sprintf ", %d PINNED" pinned else "")
             (if dropped > 0 then
                Printf.sprintf " (journal dropped %d)" dropped
              else ""));
        if ss = [] then Buffer.add_string b "no live sessions\n"
        else begin
          (* worst offenders first: sessions holding the GC horizon back *)
          let sorted =
            List.sort
              (fun a b ->
                compare
                  (b.Wire.ss_lag, b.Wire.ss_live_words, a.Wire.ss_sid)
                  (a.Wire.ss_lag, a.Wire.ss_live_words, b.Wire.ss_sid))
              ss
          in
          let shown = List.filteri (fun i _ -> i < max_rows) sorted in
          Buffer.add_string b (render_sessions_table shown);
          if List.length sorted > max_rows then
            Buffer.add_string b
              (Printf.sprintf "… and %d more\n"
                 (List.length sorted - max_rows))
        end;
        (match evs with
        | [] -> ()
        | evs ->
            Buffer.add_string b "\nrecent events:\n";
            let n = List.length evs in
            let tail =
              List.filteri (fun i _ -> i >= n - ticker_events) evs
            in
            Buffer.add_string b (render_events tail));
        print_string (Buffer.contents b);
        flush stdout;
        Ok ()
  in
  let run addr interval once =
    match Client.connect addr with
    | Error e ->
        Printf.eprintf "cannot connect to %s: %s\n"
          (Server.addr_to_string addr) e;
        exit exit_error
    | Ok c ->
        let fail e =
          Client.close c;
          Printf.eprintf "mtc top: %s\n" e;
          exit exit_error
        in
        if once then (
          match render ~clear:false c with
          | Ok () ->
              Client.close c;
              exit exit_pass
          | Error e -> fail e)
        else begin
          let rec loop () =
            match render ~clear:true c with
            | Error e -> fail e
            | Ok () ->
                Unix.sleepf (Float.max 0.05 interval);
                loop ()
          in
          loop ()
        end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running daemon: sessions sorted by watermark \
          lag (the quantity that pins the GC horizon), with queue depth, \
          live words and idle time, plus a ticker of recent journal \
          events.  Refreshes every $(b,--interval) seconds until \
          interrupted; $(b,--once) renders a single frame for scripts.")
    Term.(const run $ addr_arg $ interval_arg $ once_arg)

(* ------------------------------------------------------------------ *)
(* mtc wal-dump — inspect a persistence directory. *)

let wal_dump_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Persistence directory of an $(b,mtc serve --wal-dir) run.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Print every WAL record instead of per-session summaries.")
  in
  let dump_snapshot path =
    match Snapshot_store.read path with
    | Error e -> Printf.printf "%s: unreadable: %s\n" (Filename.basename path) e
    | Ok info ->
        Printf.printf "%s: shard %d/%d gen %d next_sid %d, %d sessions\n"
          (Filename.basename path) info.Snapshot_store.i_shard
          info.Snapshot_store.i_nshards info.Snapshot_store.i_gen
          info.Snapshot_store.i_next_sid
          (List.length info.Snapshot_store.i_entries);
        List.iter
          (fun (e : Snapshot_store.entry) ->
            Printf.printf "  session %d: %s, %d keys, last_seq %d, %s\n" e.sid
              (Checker.level_name e.meta.Snapshot_store.level)
              e.meta.Snapshot_store.num_keys e.last_seq
              (match e.state with
              | Snapshot_store.Live online ->
                  let gc = Online.gc_policy online in
                  Printf.sprintf "live (%d txns, %d words live%s)"
                    (Online.txns_seen online)
                    (Online.live_words online)
                    (if gc = Online.Gc_off then ""
                     else
                       Printf.sprintf ", gc %s: %d runs, %d words reclaimed"
                         (Online.gc_to_string gc)
                         (Online.gc_runs online)
                         (Online.gc_reclaimed_words online))
              | Snapshot_store.Poisoned { anomaly; _ } ->
                  Printf.sprintf "poisoned%s"
                    (match anomaly with
                    | Some a -> " [" ^ a ^ "]"
                    | None -> "")))
          info.Snapshot_store.i_entries
  in
  let dump_wal verbose path =
    match Wal.read_path path with
    | Error e -> Printf.printf "%s: unreadable: %s\n" (Filename.basename path) e
    | Ok (h, records, tail) ->
        Printf.printf "%s: shard %d/%d gen %d, %d records%s\n"
          (Filename.basename path) h.Wal.h_shard h.Wal.h_nshards h.Wal.h_gen
          (List.length records)
          (match tail with
          | Wal.Complete -> ""
          | Wal.Truncated off ->
              Printf.sprintf ", torn tail at byte %d" off
          | Wal.Corrupt { offset; reason } ->
              Printf.sprintf ", CORRUPT at byte %d (%s)" offset reason);
        if verbose then
          List.iter
            (fun r ->
              match r with
              | Wal.R_open { sid; level; num_keys; skew; ts; gc } ->
                  Printf.printf
                    "  open  sid=%d %s num_keys=%d skew=%d ts=%s gc=%s\n" sid
                    (Checker.level_name level) num_keys skew
                    (Ts.mode_name ts) (Online.gc_to_string gc)
              | Wal.R_feed { sid; seq; txn } ->
                  Printf.printf "  feed  sid=%d seq=%d txn=%d (%d ops)\n" sid
                    seq txn.Txn.id
                    (Array.length txn.Txn.ops)
              | Wal.R_close { sid } -> Printf.printf "  close sid=%d\n" sid)
            records
        else begin
          (* per-session summary: feeds, seq range and GC policy *)
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun r ->
              let touch sid f =
                let cur =
                  Option.value
                    (Hashtbl.find_opt tbl sid)
                    ~default:(None, 0, 0, false)
                in
                Hashtbl.replace tbl sid (f cur)
              in
              match r with
              | Wal.R_open { sid; gc; _ } ->
                  touch sid (fun (_, feeds, mx, closed) ->
                      (Some gc, feeds, mx, closed))
              | Wal.R_feed { sid; seq; _ } ->
                  touch sid (fun (opened, feeds, mx, closed) ->
                      (opened, feeds + 1, Stdlib.max mx seq, closed))
              | Wal.R_close { sid } ->
                  touch sid (fun (opened, feeds, mx, _) ->
                      (opened, feeds, mx, true)))
            records;
          Hashtbl.fold (fun sid v acc -> (sid, v) :: acc) tbl []
          |> List.sort compare
          |> List.iter (fun (sid, (opened, feeds, mx, closed)) ->
                 Printf.printf
                   "  session %d: %s%d feeds, last seq %d%s\n" sid
                   (match opened with
                   | None -> ""
                   | Some Online.Gc_off -> "opened, "
                   | Some gc ->
                       Printf.sprintf "opened (gc %s), "
                         (Online.gc_to_string gc))
                   feeds mx
                   (if closed then ", closed" else ""))
        end
  in
  let run dir verbose =
    let files = Array.to_list (Sys.readdir dir) |> List.sort compare in
    let snaps =
      List.filter (fun f -> String.length f > 5 && String.sub f 0 5 = "snap-")
        files
    in
    let wals =
      List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "wal-")
        files
    in
    if snaps = [] && wals = [] then begin
      Printf.eprintf "%s: no wal-* or snap-* files\n" dir;
      exit exit_error
    end;
    List.iter (fun f -> dump_snapshot (Filename.concat dir f)) snaps;
    List.iter (fun f -> dump_wal verbose (Filename.concat dir f)) wals;
    exit exit_pass
  in
  Cmd.v
    (Cmd.info "wal-dump"
       ~doc:
         "Inspect an $(b,mtc serve --wal-dir) persistence directory: \
          snapshot contents and write-ahead-log records per shard, \
          including torn-tail and corruption diagnostics.")
    Term.(const run $ dir_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* mtc swarm — hold many idle connections open at once. *)

let swarm_cmd =
  let addr_arg =
    Arg.(
      value
      & opt addr_conv (Server.A_unix "/tmp/mtc.sock")
      & info [ "addr"; "a" ] ~docv:"ADDR"
          ~doc:"Server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let count_arg =
    Arg.(
      value & opt int 10_000
      & info [ "n" ] ~docv:"COUNT" ~doc:"Connections to open.")
  in
  let hold_arg =
    Arg.(
      value & opt float 2.0
      & info [ "hold" ] ~docv:"SECONDS"
          ~doc:"How long to hold the herd open before closing it.")
  in
  let run addr count hold =
    let t0 = Unix.gettimeofday () in
    let conns = ref [] in
    let opened = ref 0 in
    (try
       for _ = 1 to count do
         match Client.connect addr with
         | Ok c ->
             conns := c :: !conns;
             incr opened
         | Error e -> failwith e
       done
     with Failure e ->
       Printf.eprintf "mtc swarm: connection %d failed: %s\n" (!opened + 1) e);
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "mtc swarm: %d/%d connections open in %.2fs (%.0f conn/s)\n%!"
      !opened count dt
      (float_of_int !opened /. Float.max dt 1e-9);
    (* the server's own view, through one more (briefly-used) connection *)
    (match Client.connect addr with
    | Ok probe ->
        (match Client.stats probe with
        | Ok json -> (
            match
              List.assoc_opt "open_conns" (parse_stats_json json)
            with
            | Some v ->
                Printf.printf "mtc swarm: server reports open_conns=%d\n%!"
                  (int_of_float v)
            | None | (exception Bad_stats_json) -> ())
        | Error _ -> ());
        Client.close probe
    | Error _ -> ());
    if hold > 0.0 then Unix.sleepf hold;
    List.iter Client.close !conns;
    exit (if !opened = count then exit_pass else exit_error)
  in
  Cmd.v
    (Cmd.info "swarm"
       ~doc:
         "Open $(b,--n) idle connections to a running daemon and hold \
          them — a load probe for the event loop: connections cost file \
          descriptors, not threads.  Exits non-zero if the herd could \
          not be fully established.")
    Term.(const run $ addr_arg $ count_arg $ hold_arg)

(* ------------------------------------------------------------------ *)
(* mtc anomalies *)

let anomalies_cmd =
  let run () =
    List.iter
      (fun kind ->
        Format.printf "%-26s %s@." (Anomaly.name kind)
          (Anomaly.description kind))
      Anomaly.all
  in
  Cmd.v
    (Cmd.info "anomalies"
       ~doc:"List the 14 isolation anomalies of the MT catalogue.")
    Term.(const run $ const ())

let () =
  let doc = "black-box database isolation checking via mini-transactions" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "mtc" ~version:"1.0.0" ~doc ~exits:verdict_exits)
          [
            check_cmd; run_cmd; gen_cmd; hunt_cmd; graph_cmd; anomalies_cmd;
            serve_cmd; feed_cmd; stats_cmd; top_cmd; wal_dump_cmd; swarm_cmd;
          ]))
