bench/kernels.ml: Analyze Bechamel Bench_util Benchmark Checker Cobra Dbcop Hashtbl Instance Isolation List Lwt_checker Lwt_gen Measure Polysi Printf Scheduler Staged Test Time Toolkit
