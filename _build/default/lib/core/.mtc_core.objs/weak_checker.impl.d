lib/core/weak_checker.ml: Array Bytes Char Cycle Deps Digraph Format Hashtbl History Index Int_check List Op Printf Reach Txn
