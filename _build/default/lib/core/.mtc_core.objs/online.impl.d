lib/core/online.ml: Array Checker Deps Divergence Hashtbl History Index Int_check List Op Option Pearce_kelly Printf Stdlib Txn
