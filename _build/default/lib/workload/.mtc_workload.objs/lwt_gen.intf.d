lib/workload/lwt_gen.mli: Lwt
