(** Small statistics helpers for the benchmark harness. *)

val mean : float array -> float
val median : float array -> float
val stddev : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; nearest-rank on a sorted copy. *)

val min : float array -> float
val max : float array -> float

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f ()] and returns its result with elapsed wall-clock
    seconds. *)

val time_repeat : ?warmup:int -> repeat:int -> (unit -> 'a) -> float array
(** Run [f] [warmup] times unmeasured, then [repeat] times, returning the
    elapsed seconds of each measured run. *)

val live_words : unit -> int
(** Live heap words after a full major collection — used as the memory
    metric in the end-to-end benchmarks (Figures 10d–f, 17). *)
